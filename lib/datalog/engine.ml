(** A semi-naive Datalog engine over int tuples.

    This is the substrate standing in for the Doop framework (DESIGN.md S5):
    the declarative version of the pointer analysis is expressed as rules
    evaluated here. Features: automatic stratification, stratified negation
    (a negated atom may only mention relations of strictly lower strata),
    lazily-built hash indices per (relation, bound-column mask), and
    semi-naive delta iteration inside each stratum. *)

open Csc_common
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr

type term =
  | V of string  (** variable *)
  | C of int     (** constant *)

type atom = {
  rel : string;
  args : term array;
  neg : bool;
  builtin : bool;
      (** builtin atoms call a registered function: all arguments except the
          last must be bound; the last is unified with the result. They act
          like Soufflé functors (used to construct contexts / project
          abstract objects in the context-sensitive analyses). *)
}

(** [head :- body]. The head must be positive. *)
type rule = {
  head : atom;
  body : atom list;
}

let atom ?(neg = false) rel args =
  { rel; args = Array.of_list args; neg; builtin = false }

let fn rel args = { rel; args = Array.of_list args; neg = false; builtin = true }
let ( <-- ) head body : rule = { head; body }

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------- relations *)

type relation = {
  r_name : string;
  r_arity : int;
  r_tuples : (int array, unit) Hashtbl.t;
  (* indices: key = bitmask of bound columns; value maps the projected key
     to the list of matching tuples *)
  mutable r_indices : (int * (int list, int array list ref) Hashtbl.t) list;
}

let key_of mask (tup : int array) : int list =
  let k = ref [] in
  for i = Array.length tup - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then k := tup.(i) :: !k
  done;
  !k

type t = {
  rels : (string, relation) Hashtbl.t;
  builtins : (string, int array -> int) Hashtbl.t;
  mutable rules : rule list;
  mutable n_derived : int;
}

let create () =
  { rels = Hashtbl.create 64; builtins = Hashtbl.create 8; rules = [];
    n_derived = 0 }

(** Register a builtin function callable from rules via {!fn}. *)
let add_builtin t name (f : int array -> int) = Hashtbl.replace t.builtins name f

let relation t name arity : relation =
  match Hashtbl.find_opt t.rels name with
  | Some r ->
    if r.r_arity <> arity then
      error "relation %s declared with arity %d and %d" name r.r_arity arity;
    r
  | None ->
    let r =
      { r_name = name; r_arity = arity; r_tuples = Hashtbl.create 64;
        r_indices = [] }
    in
    Hashtbl.add t.rels name r;
    r

let mem_tuple (r : relation) tup = Hashtbl.mem r.r_tuples tup

(* insert into the tuple set and every built index; returns true if new *)
let insert (r : relation) (tup : int array) : bool =
  if Hashtbl.mem r.r_tuples tup then false
  else begin
    Hashtbl.add r.r_tuples tup ();
    List.iter
      (fun (mask, idx) ->
        let k = key_of mask tup in
        match Hashtbl.find_opt idx k with
        | Some l -> l := tup :: !l
        | None -> Hashtbl.add idx k (ref [ tup ]))
      r.r_indices;
    true
  end

let index_for (r : relation) (mask : int) =
  match List.assoc_opt mask r.r_indices with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create (max 64 (Hashtbl.length r.r_tuples)) in
    Hashtbl.iter
      (fun tup () ->
        let k = key_of mask tup in
        match Hashtbl.find_opt idx k with
        | Some l -> l := tup :: !l
        | None -> Hashtbl.add idx k (ref [ tup ]))
      r.r_tuples;
    r.r_indices <- (mask, idx) :: r.r_indices;
    idx

(** Add an EDB fact. *)
let fact t name args =
  let args = Array.of_list args in
  let r = relation t name (Array.length args) in
  ignore (insert r args)

let add_rule t (rule : rule) =
  if rule.head.neg then error "negative head in rule for %s" rule.head.rel;
  ignore (relation t rule.head.rel (Array.length rule.head.args));
  List.iter
    (fun a ->
      if a.builtin then begin
        if not (Hashtbl.mem t.builtins a.rel) then
          error "unknown builtin %s" a.rel
      end
      else ignore (relation t a.rel (Array.length a.args)))
    rule.body;
  (* safety: every head / negated variable must occur in a positive atom
     (builtin outputs count as bound) *)
  let positive_vars =
    List.concat_map
      (fun a ->
        if a.neg then []
        else
          Array.to_list a.args
          |> List.filter_map (function V v -> Some v | C _ -> None))
      rule.body
  in
  let check_bound what args =
    Array.iter
      (function
        | V v when not (List.mem v positive_vars) ->
          error "unbound variable %s in %s" v what
        | _ -> ())
      args
  in
  check_bound ("head of " ^ rule.head.rel) rule.head.args;
  List.iter (fun a -> if a.neg then check_bound ("negated " ^ a.rel) a.args) rule.body;
  t.rules <- rule :: t.rules

(* --------------------------------------------------------- stratification *)

(* stratum(r) >= stratum(b) for positive deps, > for negated deps *)
let stratify t : (string, int) Hashtbl.t =
  let strata = Hashtbl.create 32 in
  Hashtbl.iter (fun name _ -> Hashtbl.replace strata name 0) t.rels;
  let n_rels = Hashtbl.length t.rels in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n_rels + 1 then
      error "negation inside a recursive cycle: program is not stratifiable";
    List.iter
      (fun rule ->
        let hs = Hashtbl.find strata rule.head.rel in
        List.iter
          (fun a ->
            if a.builtin then ()
            else
            let bs = Hashtbl.find strata a.rel in
            let need = if a.neg then bs + 1 else bs in
            if hs < need then begin
              Hashtbl.replace strata rule.head.rel need;
              changed := true
            end)
          rule.body)
      t.rules
  done;
  strata

(* ------------------------------------------------------------- evaluation *)

(* Rules are compiled once per [solve]: variables become integer slots in a
   flat environment array (the sentinel [unbound] marks free slots), and each
   body atom is resolved to its relation / builtin up front. *)

let unbound = min_int

(* candidate-scan budget accounting: huge joins can spend a long time without
   deriving anything, so the deadline is also checked per scanned tuple
   (set by [solve]; engines are evaluated one at a time). *)
let scan_budget : Timer.budget ref = ref Timer.no_budget
let scan_count = ref 0

let tick () =
  incr scan_count;
  if !scan_count land 0x7ffff = 0 then Timer.check !scan_budget

type slot = S_const of int | S_var of int

type catom = {
  ca_neg : bool;
  ca_rel : relation option;            (* None for builtins *)
  ca_fn : (int array -> int) option;
  ca_args : slot array;
}

type crule = {
  cr_head_rel : relation;
  cr_head : slot array;
  cr_body : catom array;
  cr_nvars : int;
  cr_rule : rule;  (* original, for delta-atom positions *)
  cr_label : string;  (* "Head :- Body, ..." for spans and attribution *)
  mutable cr_time : float;  (* cumulative evaluation time, for profiling *)
  mutable cr_arule : Attr.rule option;  (* attribution row, when profiling *)
}

let compile_rule t (rule : rule) : crule =
  let vars = Hashtbl.create 8 in
  let slot_of = function
    | C c -> S_const c
    | V v -> (
      match Hashtbl.find_opt vars v with
      | Some i -> S_var i
      | None ->
        let i = Hashtbl.length vars in
        Hashtbl.add vars v i;
        S_var i)
  in
  let body =
    List.map
      (fun a ->
        {
          ca_neg = a.neg;
          ca_rel = (if a.builtin then None else Some (Hashtbl.find t.rels a.rel));
          ca_fn = (if a.builtin then Some (Hashtbl.find t.builtins a.rel) else None);
          ca_args = Array.map slot_of a.args;
        })
      rule.body
  in
  let head = Array.map slot_of rule.head.args in
  let label =
    match rule.body with
    | [] -> rule.head.rel ^ "."
    | body ->
      rule.head.rel ^ " :- "
      ^ String.concat ", "
          (List.map
             (fun a ->
               (if a.neg then "!" else "")
               ^ a.rel
               ^ if a.builtin then "()" else "")
             body)
  in
  {
    cr_head_rel = Hashtbl.find t.rels rule.head.rel;
    cr_head = head;
    cr_body = Array.of_list body;
    cr_nvars = Hashtbl.length vars;
    cr_rule = rule;
    cr_label = label;
    cr_time = 0.;
    cr_arule = None;
  }

(* greedy join ordering: among the remaining atoms, prefer builtins and
   negations whose inputs are bound, then the positive atom with the most
   bound columns (ties: smallest relation). Without this, rules whose
   textual order leaves an unbound atom early degenerate to full scans per
   delta tuple. *)
let pick_next (env : int array) (atoms : catom array) (remaining : int list) :
    int option =
  let bound_slot = function
    | S_const _ -> true
    | S_var v -> env.(v) <> unbound
  in
  let best = ref None in
  let best_score = ref min_int in
  List.iter
    (fun i ->
      let a = atoms.(i) in
      let n = Array.length a.ca_args in
      let nbound = ref 0 in
      Array.iter (fun s -> if bound_slot s then incr nbound) a.ca_args;
      let score =
        match a.ca_rel with
        | None ->
          (* builtin: runnable once all inputs are bound *)
          let inputs_bound =
            let ok = ref true in
            for j = 0 to n - 2 do
              if not (bound_slot a.ca_args.(j)) then ok := false
            done;
            !ok
          in
          if inputs_bound then max_int else min_int
        | Some r ->
          if a.ca_neg then if !nbound = n then max_int else min_int
          else if !nbound = n then max_int - 1
          else
            (* bound columns dominate: an indexed probe beats any full scan,
               regardless of relation size *)
            (1_000_000 * !nbound)
            - min 999_999 (Hashtbl.length r.r_tuples)
      in
      if score > !best_score then begin
        best_score := score;
        best := Some i
      end)
    remaining;
  !best

(* evaluate the remaining body atoms under [env], calling [k] on success *)
let rec eval_body (env : int array) (atoms : catom array) (remaining : int list)
    (k : unit -> unit) =
  match remaining with
  | [] -> k ()
  | _ ->
    let i =
      match pick_next env atoms remaining with
      | Some i -> i
      | None -> error "no evaluable atom (unbound builtin inputs?)"
    in
    let rest = List.filter (fun j -> j <> i) remaining in
    let a = atoms.(i) in
    let n = Array.length a.ca_args in
    match a.ca_rel with
    | None ->
      (* builtin: inputs bound, last arg unified with the result *)
      let f = Option.get a.ca_fn in
      let inputs =
        Array.init (n - 1) (fun j ->
            match a.ca_args.(j) with
            | S_const c -> c
            | S_var v ->
              let x = env.(v) in
              if x = unbound then error "builtin: unbound input" else x)
      in
      let out = f inputs in
      (match a.ca_args.(n - 1) with
      | S_const c -> if out = c then eval_body env atoms rest k
      | S_var v ->
        let cur = env.(v) in
        if cur = unbound then begin
          env.(v) <- out;
          eval_body env atoms rest k;
          env.(v) <- unbound
        end
        else if cur = out then eval_body env atoms rest k)
    | Some r ->
      (* bound-column mask *)
      let mask = ref 0 in
      let fully_bound = ref true in
      for j = 0 to n - 1 do
        match a.ca_args.(j) with
        | S_const _ -> mask := !mask lor (1 lsl j)
        | S_var v ->
          if env.(v) <> unbound then mask := !mask lor (1 lsl j)
          else fully_bound := false
      done;
      let concrete j =
        match a.ca_args.(j) with S_const c -> c | S_var v -> env.(v)
      in
      if a.ca_neg || !fully_bound then begin
        let tup = Array.init n concrete in
        let present = mem_tuple r tup in
        if present <> a.ca_neg then eval_body env atoms rest k
      end
      else begin
        let candidates =
          if !mask = 0 then
            Hashtbl.fold (fun tup () acc -> tup :: acc) r.r_tuples []
          else begin
            let key = ref [] in
            for j = n - 1 downto 0 do
              if !mask land (1 lsl j) <> 0 then key := concrete j :: !key
            done;
            let idx = index_for r !mask in
            match Hashtbl.find_opt idx !key with Some l -> !l | None -> []
          end
        in
        List.iter
          (fun tup ->
            tick ();
            (* bind free slots, backtracking on mismatch *)
            let rec go j undo =
              if j >= n then begin
                eval_body env atoms rest k;
                List.iter (fun v -> env.(v) <- unbound) undo
              end
              else
                match a.ca_args.(j) with
                | S_const c ->
                  if tup.(j) = c then go (j + 1) undo
                  else List.iter (fun v -> env.(v) <- unbound) undo
                | S_var v ->
                  let cur = env.(v) in
                  if cur = unbound then begin
                    env.(v) <- tup.(j);
                    go (j + 1) (v :: undo)
                  end
                  else if cur = tup.(j) then go (j + 1) undo
                  else List.iter (fun v -> env.(v) <- unbound) undo
            in
            go 0 [])
          candidates
      end

(* evaluate one compiled rule with a designated delta atom (index into the
   original body, or -1 to use full relations), emitting head tuples *)
let eval_rule (cr : crule) ~(delta_idx : int)
    ~(delta : (string, (int array, unit) Hashtbl.t) Hashtbl.t)
    ~(emit : relation -> int array -> unit) =
  let env = Array.make (max cr.cr_nvars 1) unbound in
  let emit_head () =
    let out =
      Array.map
        (function S_const c -> c | S_var v -> env.(v))
        cr.cr_head
    in
    emit cr.cr_head_rel out
  in
  let all_idx = List.init (Array.length cr.cr_body) (fun i -> i) in
  if Array.length cr.cr_body = 0 then emit_head ()
  else if delta_idx < 0 then eval_body env cr.cr_body all_idx emit_head
  else begin
    (* iterate the delta of the designated atom, then the rest *)
    let datom = cr.cr_body.(delta_idx) in
    let rest = List.filter (fun i -> i <> delta_idx) all_idx in
    let rel = Option.get datom.ca_rel in
    match Hashtbl.find_opt delta rel.r_name with
    | None -> ()
    | Some d ->
      let n = Array.length datom.ca_args in
      Hashtbl.iter
        (fun tup () ->
          Array.fill env 0 (Array.length env) unbound;
          let rec go j =
            if j >= n then eval_body env cr.cr_body rest emit_head
            else
              match datom.ca_args.(j) with
              | S_const c -> if tup.(j) = c then go (j + 1)
              | S_var v ->
                let cur = env.(v) in
                if cur = unbound then begin
                  env.(v) <- tup.(j);
                  go (j + 1)
                end
                else if cur = tup.(j) then go (j + 1)
          in
          go 0)
        d
  end

(** Run all rules to fixpoint, stratum by stratum. [attr] records per-rule
    and per-stratum tuple counts and wall time; [progress_s] emits a stderr
    heartbeat line every that-many seconds. Both default to off. *)
let solve ?(budget = Timer.no_budget) ?attr ?progress_s (t : t) : unit =
  scan_budget := budget;
  let t_solve0 = Timer.now () in
  let last_progress = ref t_solve0 in
  let strata = stratify t in
  let max_stratum = Hashtbl.fold (fun _ s acc -> max s acc) strata 0 in
  let rules = List.rev t.rules in
  for stratum = 0 to max_stratum do
    let srules =
      List.filter (fun r -> Hashtbl.find strata r.head.rel = stratum) rules
      |> List.map (compile_rule t)
    in
    (match attr with
    | None -> ()
    | Some a ->
      List.iter (fun cr -> cr.cr_arule <- Some (Attr.rule a cr.cr_label)) srules);
    let recursive r = Hashtbl.find strata r = stratum in
    (* delta = tuples derived in the previous round, per relation *)
    let delta : (string, (int array, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 16
    in
    let next : (string, (int array, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 16
    in
    let attempts = ref 0 in
    let round = ref 0 in
    let emit cr (r : relation) tup =
      incr attempts;
      if !attempts land 0xffff = 0 then Timer.check budget;
      if insert r tup then begin
        t.n_derived <- t.n_derived + 1;
        (match cr.cr_arule with
        | None -> ()
        | Some ar -> Attr.rule_tuples ar);
        let d =
          match Hashtbl.find_opt next r.r_name with
          | Some d -> d
          | None ->
            let d = Hashtbl.create 64 in
            Hashtbl.add next r.r_name d;
            d
        in
        Hashtbl.replace d tup ()
      end
    in
    (* one rule evaluation = one span, one attribution fire *)
    let timed cr f =
      Trace.with_span ~cat:"datalog" ("rule:" ^ cr.cr_label) (fun () ->
          let t0 = Timer.now () in
          Fun.protect
            ~finally:(fun () ->
              let dt = Timer.now () -. t0 in
              cr.cr_time <- cr.cr_time +. dt;
              match cr.cr_arule with
              | None -> ()
              | Some r ->
                Attr.rule_fire r;
                Attr.rule_time r dt)
            f)
    in
    let heartbeat () =
      (match progress_s with
      | None -> ()
      | Some iv ->
        let now = Timer.now () in
        if now -. !last_progress >= iv then begin
          last_progress := now;
          Fmt.epr
            "[progress] datalog %.1fs: stratum %d/%d round %d, %d tuples derived@."
            (now -. t_solve0) stratum max_stratum !round t.n_derived
        end);
      Trace.counter "datalog" [ ("derived", float_of_int t.n_derived) ]
    in
    let profile () =
      if Sys.getenv_opt "CSC_DATALOG_PROFILE" <> None then
        List.iter
          (fun cr ->
            if cr.cr_time > 0.2 then
              Fmt.epr "[datalog] %6.2fs %8d %s@." cr.cr_time
                (Hashtbl.length cr.cr_head_rel.r_tuples)
                cr.cr_label)
          srules
    in
    if srules <> [] then begin
      let derived0 = t.n_derived in
      let st0 = Timer.now () in
      let st_finish () =
        match attr with
        | None -> ()
        | Some a ->
          let r = Attr.rule a (Printf.sprintf "stratum:%d" stratum) in
          Attr.rule_fire r;
          Attr.rule_tuples ~by:(t.n_derived - derived0) r;
          Attr.rule_time r (Timer.now () -. st0)
      in
      Trace.with_span ~cat:"datalog"
        (Printf.sprintf "stratum:%d" stratum)
        (fun () ->
          (* the stratum row is recorded even when the budget expires
             mid-stratum, so timed-out profiles stay meaningful *)
          Fun.protect ~finally:st_finish @@ fun () ->
          Fun.protect ~finally:profile (fun () ->
              (* round 0: run every rule of the stratum naively *)
              List.iter
                (fun cr ->
                  timed cr (fun () ->
                      eval_rule cr ~delta_idx:(-1) ~delta ~emit:(emit cr)))
                srules;
              (* semi-naive rounds *)
              let continue_ = ref (Hashtbl.length next > 0) in
              while !continue_ do
                Timer.check budget;
                incr round;
                heartbeat ();
                Hashtbl.reset delta;
                Hashtbl.iter (fun k v -> Hashtbl.add delta k v) next;
                Hashtbl.reset next;
                List.iter
                  (fun cr ->
                    List.iteri
                      (fun i (a : atom) ->
                        if
                          (not a.builtin) && (not a.neg) && recursive a.rel
                          && Hashtbl.mem delta a.rel
                        then
                          timed cr (fun () ->
                              eval_rule cr ~delta_idx:i ~delta ~emit:(emit cr)))
                      cr.cr_rule.body)
                  srules;
                continue_ := Hashtbl.length next > 0
              done))
    end
  done

(* ---------------------------------------------------------------- queries *)

let tuples t name : int array list =
  match Hashtbl.find_opt t.rels name with
  | None -> []
  | Some r -> Hashtbl.fold (fun tup () acc -> tup :: acc) r.r_tuples []

let count t name =
  match Hashtbl.find_opt t.rels name with
  | None -> 0
  | Some r -> Hashtbl.length r.r_tuples

let derived_count t = t.n_derived

let iter_tuples t name f =
  match Hashtbl.find_opt t.rels name with
  | None -> ()
  | Some r -> Hashtbl.iter (fun tup () -> f tup) r.r_tuples

(** The declarative pointer analyses (the Doop analog, DESIGN.md S5):
    Andersen context-insensitive analysis, Cut-Shortcut, and context
    sensitivity (2obj / 2type / selective 2obj) expressed as Datalog rules
    over the EDB of {!Facts}.

    Faithful to the paper's Doop implementation, the declarative Cut-Shortcut
    omits the field-*load* pattern ([CutPropLoad] needs negation inside the
    recursive cycle, §5 "Implementation"); its [cutStores]/[cutReturns] are
    static relations of stratum 0, so every negation is stratified. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module E = Engine
module Snapshot = Csc_obs.Snapshot
open E

(* the Datalog engines expose a small fixed metric set; building the
   snapshot directly keeps them registry-free *)
let dl_snapshot (t : E.t) ~time : Snapshot.t =
  Snapshot.of_metrics
    [ Snapshot.Counter { name = "derived"; labels = []; value = E.derived_count t };
      Snapshot.Gauge { name = "time_s"; labels = []; value = time } ]

let v x = V x
let c x = C x

type kind =
  | Ci
  | Csc_doop  (** store + container + local-flow patterns, no load pattern *)
  | Obj2
  | Type2
  | Selective2obj of Bits.t  (** Zipper^e main analysis: selected methods *)

let kind_name = function
  | Ci -> "doop-ci"
  | Csc_doop -> "doop-csc"
  | Obj2 -> "doop-2obj"
  | Type2 -> "doop-2type"
  | Selective2obj _ -> "doop-zipper-e"

(* ------------------------------------------------------- CI core rules *)

let ci_rules (t : E.t) =
  let r h b = add_rule t (h <-- b) in
  r (atom "Reachable" [ v "M" ]) [ atom "EntryMethod" [ v "M" ] ];
  r (atom "VPT" [ v "V"; v "H" ])
    [ atom "Reachable" [ v "M" ]; atom "AllocIn" [ v "M"; v "V"; v "H" ] ];
  r (atom "VPT" [ v "To"; v "H" ])
    [ atom "Assign" [ v "To"; v "From" ]; atom "VPT" [ v "From"; v "H" ] ];
  r (atom "VPT" [ v "To"; v "H" ])
    [ atom "CastAssign" [ v "To"; v "From"; v "X" ];
      atom "VPT" [ v "From"; v "H" ]; atom "CastOk" [ v "X"; v "H" ] ];
  (* field store, suppressed for cutStores *)
  r (atom "FPT" [ v "H"; v "F"; v "H2" ])
    [ atom "Store" [ v "S"; v "B"; v "F"; v "Y" ];
      atom ~neg:true "CutStore" [ v "S" ];
      atom "VPT" [ v "B"; v "H" ]; atom "VPT" [ v "Y"; v "H2" ] ];
  r (atom "VPT" [ v "To"; v "H2" ])
    [ atom "Load" [ v "To"; v "B"; v "F" ]; atom "VPT" [ v "B"; v "H" ];
      atom "FPT" [ v "H"; v "F"; v "H2" ] ];
  (* arrays *)
  r (atom "APT" [ v "H"; v "H2" ])
    [ atom "AStoreR" [ v "Arr"; v "Y" ]; atom "VPT" [ v "Arr"; v "H" ];
      atom "HeapIsArray" [ v "H" ]; atom "VPT" [ v "Y"; v "H2" ] ];
  r (atom "VPT" [ v "To"; v "H2" ])
    [ atom "ALoadR" [ v "To"; v "Arr" ]; atom "VPT" [ v "Arr"; v "H" ];
      atom "APT" [ v "H"; v "H2" ] ];
  (* statics *)
  r (atom "SPT" [ v "F"; v "H" ])
    [ atom "SStoreR" [ v "F"; v "Y" ]; atom "VPT" [ v "Y"; v "H" ] ];
  r (atom "VPT" [ v "To"; v "H" ])
    [ atom "SLoadR" [ v "To"; v "F" ]; atom "SPT" [ v "F"; v "H" ] ];
  (* calls: virtual dispatch *)
  r (atom "VDisp" [ v "Site"; v "H"; v "Callee" ])
    [ atom "Reachable" [ v "M" ];
      atom "VCallIn" [ v "M"; v "Site"; v "Recv"; v "Name" ];
      atom "VPT" [ v "Recv"; v "H" ]; atom "HeapClass" [ v "H"; v "C" ];
      atom "Dispatch" [ v "C"; v "Name"; v "Callee" ] ];
  r (atom "CallEdge" [ v "Site"; v "Callee" ])
    [ atom "VDisp" [ v "Site"; v "H"; v "Callee" ] ];
  r (atom "VPT" [ v "This"; v "H" ])
    [ atom "VDisp" [ v "Site"; v "H"; v "Callee" ];
      atom "FormalParam" [ v "Callee"; c 0; v "This" ] ];
  (* calls: constructors *)
  r (atom "CallEdge" [ v "Site"; v "Callee" ])
    [ atom "Reachable" [ v "M" ];
      atom "SpecialIn" [ v "M"; v "Site"; v "Recv"; v "Callee" ] ];
  r (atom "VPT" [ v "This"; v "H" ])
    [ atom "Reachable" [ v "M" ];
      atom "SpecialIn" [ v "M"; v "Site"; v "Recv"; v "Callee" ];
      atom "VPT" [ v "Recv"; v "H" ];
      atom "FormalParam" [ v "Callee"; c 0; v "This" ] ];
  (* calls: statics *)
  r (atom "CallEdge" [ v "Site"; v "Callee" ])
    [ atom "Reachable" [ v "M" ];
      atom "StaticIn" [ v "M"; v "Site"; v "Callee" ] ];
  r (atom "Reachable" [ v "Callee" ]) [ atom "CallEdge" [ v "Site"; v "Callee" ] ];
  (* parameter passing *)
  r (atom "VPT" [ v "P"; v "H" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom "ArgVar" [ v "Site"; v "K"; v "A" ];
      atom "FormalParam" [ v "Callee"; v "K"; v "P" ];
      atom "VPT" [ v "A"; v "H" ] ];
  (* returns, suppressed for cutReturns *)
  r (atom "VPT" [ v "Lhs"; v "H" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom ~neg:true "CutReturn" [ v "Callee" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "MethodRet" [ v "Callee"; v "Ret" ]; atom "VPT" [ v "Ret"; v "H" ] ]

(* ------------------------------------------------ Cut-Shortcut rules *)

let csc_rules (t : E.t) =
  let r h b = add_rule t (h <-- b) in
  (* ---- field store pattern (Fig. 8) ---- *)
  r (atom "TempStore" [ v "M"; v "K1"; v "F"; v "K2" ])
    [ atom "StorePattern" [ v "M"; v "K1"; v "F"; v "K2" ] ];
  (* PropStore: both arguments are never-redefined caller parameters *)
  r (atom "TempStore" [ v "M2"; v "K1p"; v "F"; v "K2p" ])
    [ atom "TempStore" [ v "M"; v "K1"; v "F"; v "K2" ];
      atom "CallEdge" [ v "Site"; v "M" ]; atom "SiteIn" [ v "Site"; v "M2" ];
      atom "ArgParamIdx" [ v "Site"; v "K1"; v "K1p" ];
      atom "ArgParamIdx" [ v "Site"; v "K2"; v "K2p" ] ];
  (* ShortcutStore: propagation stops at this call site *)
  r (atom "SCStore" [ v "Site"; v "K1"; v "F"; v "K2" ])
    [ atom "TempStore" [ v "M"; v "K1"; v "F"; v "K2" ];
      atom "CallEdge" [ v "Site"; v "M" ];
      atom "ArgNotParam" [ v "Site"; v "K1" ] ];
  r (atom "SCStore" [ v "Site"; v "K1"; v "F"; v "K2" ])
    [ atom "TempStore" [ v "M"; v "K1"; v "F"; v "K2" ];
      atom "CallEdge" [ v "Site"; v "M" ];
      atom "ArgNotParam" [ v "Site"; v "K2" ] ];
  r (atom "FPT" [ v "H"; v "F"; v "H2" ])
    [ atom "SCStore" [ v "Site"; v "K1"; v "F"; v "K2" ];
      atom "ArgOrRecv" [ v "Site"; v "K1"; v "B" ];
      atom "ArgOrRecv" [ v "Site"; v "K2"; v "Y" ];
      atom "VPT" [ v "B"; v "H" ]; atom "VPT" [ v "Y"; v "H2" ] ];
  (* ---- local flow pattern (Fig. 11) ---- *)
  r (atom "VPT" [ v "Lhs"; v "H" ])
    [ atom "CallEdge" [ v "Site"; v "M" ]; atom "LFlowSrc" [ v "M"; v "K" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "ArgOrRecv" [ v "Site"; v "K"; v "A" ]; atom "VPT" [ v "A"; v "H" ] ];
  (* ---- container pattern (Fig. 10) ---- *)
  (* ColHost / MapHost *)
  r (atom "PtHV" [ v "V"; v "HH" ])
    [ atom "VPT" [ v "V"; v "HH" ]; atom "HostHeap" [ v "HH" ] ];
  (* PropHost along each PFG edge family *)
  r (atom "PtHV" [ v "To"; v "HH" ])
    [ atom "Assign" [ v "To"; v "From" ]; atom "PtHV" [ v "From"; v "HH" ] ];
  r (atom "PtHV" [ v "To"; v "HH" ])
    [ atom "CastAssign" [ v "To"; v "From"; v "X" ];
      atom "PtHV" [ v "From"; v "HH" ] ];
  r (atom "PtHF" [ v "H"; v "F"; v "HH" ])
    [ atom "Store" [ v "S"; v "B"; v "F"; v "Y" ];
      atom ~neg:true "CutStore" [ v "S" ]; atom "VPT" [ v "B"; v "H" ];
      atom "PtHV" [ v "Y"; v "HH" ] ];
  r (atom "PtHV" [ v "To"; v "HH" ])
    [ atom "Load" [ v "To"; v "B"; v "F" ]; atom "VPT" [ v "B"; v "H" ];
      atom "PtHF" [ v "H"; v "F"; v "HH" ] ];
  r (atom "PtHA" [ v "H"; v "HH" ])
    [ atom "AStoreR" [ v "Arr"; v "Y" ]; atom "VPT" [ v "Arr"; v "H" ];
      atom "PtHV" [ v "Y"; v "HH" ] ];
  r (atom "PtHV" [ v "To"; v "HH" ])
    [ atom "ALoadR" [ v "To"; v "Arr" ]; atom "VPT" [ v "Arr"; v "H" ];
      atom "PtHA" [ v "H"; v "HH" ] ];
  r (atom "PtHS" [ v "F"; v "HH" ])
    [ atom "SStoreR" [ v "F"; v "Y" ]; atom "PtHV" [ v "Y"; v "HH" ] ];
  r (atom "PtHV" [ v "To"; v "HH" ])
    [ atom "SLoadR" [ v "To"; v "F" ]; atom "PtHS" [ v "F"; v "HH" ] ];
  r (atom "PtHV" [ v "P"; v "HH" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom "ArgVar" [ v "Site"; v "K"; v "A" ];
      atom "FormalParam" [ v "Callee"; v "K"; v "P" ];
      atom "PtHV" [ v "A"; v "HH" ] ];
  r (atom "PtHV" [ v "This"; v "HH" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom "SiteRecv" [ v "Site"; v "Recv" ];
      atom "FormalParam" [ v "Callee"; c 0; v "This" ];
      atom "PtHV" [ v "Recv"; v "HH" ] ];
  (* PropHost along return edges, excluding Transfers and cut returns *)
  r (atom "PtHV" [ v "Lhs"; v "HH" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom ~neg:true "TransferR" [ v "Callee" ];
      atom ~neg:true "CutReturn" [ v "Callee" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "MethodRet" [ v "Callee"; v "Ret" ]; atom "PtHV" [ v "Ret"; v "HH" ] ];
  (* TransferHost *)
  r (atom "PtHV" [ v "Lhs"; v "HH" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ]; atom "TransferR" [ v "Callee" ];
      atom "SiteRecv" [ v "Site"; v "Recv" ]; atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "PtHV" [ v "Recv"; v "HH" ] ];
  (* HostSource / HostTarget / ShortcutContainer *)
  r (atom "SrcOf" [ v "HH"; v "Cat"; v "A" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom "Entrance" [ v "Callee"; v "K"; v "Cat" ];
      atom "SiteRecv" [ v "Site"; v "Recv" ]; atom "PtHV" [ v "Recv"; v "HH" ];
      atom "ArgOrRecv" [ v "Site"; v "K"; v "A" ] ];
  r (atom "TgtOf" [ v "HH"; v "Cat"; v "Lhs" ])
    [ atom "CallEdge" [ v "Site"; v "Callee" ];
      atom "ExitR" [ v "Callee"; v "Cat" ];
      atom "SiteRecv" [ v "Site"; v "Recv" ]; atom "PtHV" [ v "Recv"; v "HH" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ] ];
  r (atom "VPT" [ v "T"; v "H" ])
    [ atom "SrcOf" [ v "HH"; v "Cat"; v "S" ];
      atom "TgtOf" [ v "HH"; v "Cat"; v "T" ]; atom "VPT" [ v "S"; v "H" ] ];
  (* PropHost along shortcut edges *)
  r (atom "PtHV" [ v "T"; v "HH2" ])
    [ atom "SrcOf" [ v "HH"; v "Cat"; v "S" ];
      atom "TgtOf" [ v "HH"; v "Cat"; v "T" ]; atom "PtHV" [ v "S"; v "HH2" ] ];
  r (atom "PtHV" [ v "Lhs"; v "HH" ])
    [ atom "CallEdge" [ v "Site"; v "M" ]; atom "LFlowSrc" [ v "M"; v "K" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "ArgOrRecv" [ v "Site"; v "K"; v "A" ]; atom "PtHV" [ v "A"; v "HH" ] ];
  r (atom "PtHF" [ v "H"; v "F"; v "HH" ])
    [ atom "SCStore" [ v "Site"; v "K1"; v "F"; v "K2" ];
      atom "ArgOrRecv" [ v "Site"; v "K1"; v "B" ];
      atom "ArgOrRecv" [ v "Site"; v "K2"; v "Y" ];
      atom "VPT" [ v "B"; v "H" ]; atom "PtHV" [ v "Y"; v "HH" ] ]

(* When Cut-Shortcut is off, the cut relations must stay empty: CI declares
   them (via Facts.load ~csc:false) and never populates them. *)

(* --------------------------------------- context-sensitive rules (2obj+) *)

(* Contexts and context-sensitive objects are interned on the fly through
   builtin functors, like Doop's context constructors. *)

type cs_policy = {
  cp_name : string;
  cp_obj_elem : Ir.program -> Ir.alloc_id -> int;
      (** context element contributed by a receiver object's allocation:
          the allocation site (object sensitivity) or the class containing
          it (type sensitivity) *)
  cp_selected : Ir.method_id -> bool;
}

let policy_2obj : cs_policy =
  { cp_name = "2obj"; cp_obj_elem = (fun _ a -> a); cp_selected = (fun _ -> true) }

let policy_2type : cs_policy =
  {
    cp_name = "2type";
    cp_obj_elem =
      (fun p a -> (Ir.metho p (Ir.alloc p a).a_method).m_class);
    cp_selected = (fun _ -> true);
  }

let policy_selective (selected : Bits.t) : cs_policy =
  { policy_2obj with cp_name = "sel-2obj"; cp_selected = Bits.mem selected }

let cs_rules (t : E.t) (p : Ir.program) (pol : cs_policy) =
  let k_limit = 2 and hk_limit = 1 in
  let ctxs : int list Interner.t = Interner.create [] in
  let objs : (int * int) Interner.t = Interner.create (-1, -1) in
  let empty_ctx = Interner.intern ctxs [] in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: r -> x :: take (k - 1) r
  in
  (* builtins *)
  add_builtin t "mkobj" (fun args ->
      (* mkobj(C, H) -> O : allocate H under method context C *)
      let mctx = args.(0) and h = args.(1) in
      let hctx =
        if pol.cp_selected (Ir.alloc p h).a_method then
          Interner.intern ctxs (take hk_limit (Interner.get ctxs mctx))
        else empty_ctx
      in
      Interner.intern objs (hctx, h));
  add_builtin t "objalloc" (fun args -> snd (Interner.get objs args.(0)));
  add_builtin t "calleectx" (fun args ->
      (* calleectx(O, Callee) -> C2 *)
      let o = args.(0) and callee = args.(1) in
      if pol.cp_selected callee then begin
        let hctx, h = Interner.get objs o in
        Interner.intern ctxs
          (take k_limit (pol.cp_obj_elem p h :: Interner.get ctxs hctx))
      end
      else empty_ctx);
  add_builtin t "staticctx" (fun args ->
      let ctx = args.(0) and callee = args.(1) in
      if pol.cp_selected callee then
        Interner.intern ctxs (take k_limit (Interner.get ctxs ctx))
      else empty_ctx);
  let r h b = add_rule t (h <-- b) in
  r (atom "ReachCS" [ c empty_ctx; v "M" ]) [ atom "EntryMethod" [ v "M" ] ];
  r (atom "CVPT" [ v "C"; v "V"; v "O" ])
    [ atom "ReachCS" [ v "C"; v "M" ]; atom "AllocIn" [ v "M"; v "V"; v "H" ];
      fn "mkobj" [ v "C"; v "H"; v "O" ] ];
  r (atom "CVPT" [ v "C"; v "To"; v "O" ])
    [ atom "Assign" [ v "To"; v "From" ]; atom "CVPT" [ v "C"; v "From"; v "O" ] ];
  r (atom "CVPT" [ v "C"; v "To"; v "O" ])
    [ atom "CastAssign" [ v "To"; v "From"; v "X" ];
      atom "CVPT" [ v "C"; v "From"; v "O" ]; fn "objalloc" [ v "O"; v "H" ];
      atom "CastOk" [ v "X"; v "H" ] ];
  r (atom "CFPT" [ v "O"; v "F"; v "O2" ])
    [ atom "Store" [ v "S"; v "B"; v "F"; v "Y" ];
      atom "CVPT" [ v "C"; v "B"; v "O" ]; atom "CVPT" [ v "C"; v "Y"; v "O2" ] ];
  r (atom "CVPT" [ v "C"; v "To"; v "O2" ])
    [ atom "Load" [ v "To"; v "B"; v "F" ]; atom "CVPT" [ v "C"; v "B"; v "O" ];
      atom "CFPT" [ v "O"; v "F"; v "O2" ] ];
  r (atom "CAPT" [ v "O"; v "O2" ])
    [ atom "AStoreR" [ v "Arr"; v "Y" ]; atom "CVPT" [ v "C"; v "Arr"; v "O" ];
      atom "CVPT" [ v "C"; v "Y"; v "O2" ] ];
  r (atom "CVPT" [ v "C"; v "To"; v "O2" ])
    [ atom "ALoadR" [ v "To"; v "Arr" ]; atom "CVPT" [ v "C"; v "Arr"; v "O" ];
      fn "objalloc" [ v "O"; v "H" ]; atom "HeapIsArray" [ v "H" ];
      atom "CAPT" [ v "O"; v "O2" ] ];
  r (atom "CSPT" [ v "F"; v "O" ])
    [ atom "SStoreR" [ v "F"; v "Y" ]; atom "CVPT" [ v "C"; v "Y"; v "O" ] ];
  (* static loads need the loading variable's method contexts *)
  r (atom "CVPT" [ v "C"; v "To"; v "O" ])
    [ atom "SLoadR" [ v "To"; v "F" ]; atom "VarMeth" [ v "To"; v "M" ];
      atom "ReachCS" [ v "C"; v "M" ]; atom "CSPT" [ v "F"; v "O" ] ];
  r (atom "CVDisp" [ v "C"; v "Site"; v "O"; v "Callee" ])
    [ atom "ReachCS" [ v "C"; v "M" ];
      atom "VCallIn" [ v "M"; v "Site"; v "Recv"; v "Name" ];
      atom "CVPT" [ v "C"; v "Recv"; v "O" ]; fn "objalloc" [ v "O"; v "H" ];
      atom "HeapClass" [ v "H"; v "Cl" ];
      atom "Dispatch" [ v "Cl"; v "Name"; v "Callee" ] ];
  r (atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "Callee" ])
    [ atom "CVDisp" [ v "C"; v "Site"; v "O"; v "Callee" ];
      fn "calleectx" [ v "O"; v "Callee"; v "C2" ] ];
  r (atom "CVPT" [ v "C2"; v "This"; v "O" ])
    [ atom "CVDisp" [ v "C"; v "Site"; v "O"; v "Callee" ];
      fn "calleectx" [ v "O"; v "Callee"; v "C2" ];
      atom "FormalParam" [ v "Callee"; c 0; v "This" ] ];
  r (atom "CSpecial" [ v "C"; v "Site"; v "O"; v "Callee" ])
    [ atom "ReachCS" [ v "C"; v "M" ];
      atom "SpecialIn" [ v "M"; v "Site"; v "Recv"; v "Callee" ];
      atom "CVPT" [ v "C"; v "Recv"; v "O" ] ];
  r (atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "Callee" ])
    [ atom "CSpecial" [ v "C"; v "Site"; v "O"; v "Callee" ];
      fn "calleectx" [ v "O"; v "Callee"; v "C2" ] ];
  r (atom "CVPT" [ v "C2"; v "This"; v "O" ])
    [ atom "CSpecial" [ v "C"; v "Site"; v "O"; v "Callee" ];
      fn "calleectx" [ v "O"; v "Callee"; v "C2" ];
      atom "FormalParam" [ v "Callee"; c 0; v "This" ] ];
  r (atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "Callee" ])
    [ atom "ReachCS" [ v "C"; v "M" ];
      atom "StaticIn" [ v "M"; v "Site"; v "Callee" ];
      fn "staticctx" [ v "C"; v "Callee"; v "C2" ] ];
  r (atom "ReachCS" [ v "C2"; v "M2" ])
    [ atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "M2" ] ];
  r (atom "CVPT" [ v "C2"; v "P"; v "O" ])
    [ atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "Callee" ];
      atom "ArgVar" [ v "Site"; v "K"; v "A" ];
      atom "FormalParam" [ v "Callee"; v "K"; v "P" ];
      atom "CVPT" [ v "C"; v "A"; v "O" ] ];
  r (atom "CVPT" [ v "C"; v "Lhs"; v "O" ])
    [ atom "CallEdgeCS" [ v "C"; v "Site"; v "C2"; v "Callee" ];
      atom "CallLhs" [ v "Site"; v "Lhs" ];
      atom "MethodRet" [ v "Callee"; v "Ret" ];
      atom "CVPT" [ v "C2"; v "Ret"; v "O" ] ];
  objs

(* -------------------------------------------------------------- results *)

let result_of_ci (t : E.t) (p : Ir.program) ~name ~time : Solver.result =
  let reach = Bits.create () in
  E.iter_tuples t "Reachable" (fun tup -> ignore (Bits.add reach tup.(0)));
  let edges = ref [] in
  E.iter_tuples t "CallEdge" (fun tup -> edges := (tup.(0), tup.(1)) :: !edges);
  let var_pt : (Ir.var_id, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
  E.iter_tuples t "VPT" (fun tup ->
      let b =
        match Hashtbl.find_opt var_pt tup.(0) with
        | Some b -> b
        | None ->
          let b = Bits.create () in
          Hashtbl.add var_pt tup.(0) b;
          b
      in
      ignore (Bits.add b tup.(1)));
  let empty = Bits.create () in
  ignore p;
  {
    Solver.r_name = name;
    r_time = time;
    r_reach = reach;
    r_edges = !edges;
    r_pt =
      (fun vr -> match Hashtbl.find_opt var_pt vr with Some b -> b | None -> empty);
    r_snapshot = dl_snapshot t ~time;
  }

let result_of_cs (t : E.t) (objs : (int * int) Interner.t) ~name ~time :
    Solver.result =
  let reach = Bits.create () in
  E.iter_tuples t "ReachCS" (fun tup -> ignore (Bits.add reach tup.(1)));
  let edge_set = Hashtbl.create 1024 in
  E.iter_tuples t "CallEdgeCS" (fun tup ->
      Hashtbl.replace edge_set (tup.(1), tup.(3)) ());
  let var_pt : (Ir.var_id, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
  E.iter_tuples t "CVPT" (fun tup ->
      let b =
        match Hashtbl.find_opt var_pt tup.(1) with
        | Some b -> b
        | None ->
          let b = Bits.create () in
          Hashtbl.add var_pt tup.(1) b;
          b
      in
      ignore (Bits.add b (snd (Interner.get objs tup.(2)))));
  let empty = Bits.create () in
  {
    Solver.r_name = name;
    r_time = time;
    r_reach = reach;
    r_edges = Hashtbl.fold (fun k () acc -> k :: acc) edge_set [];
    r_pt =
      (fun vr -> match Hashtbl.find_opt var_pt vr with Some b -> b | None -> empty);
    r_snapshot = dl_snapshot t ~time;
  }

exception Timeout = Timer.Out_of_budget

(** Run a declarative analysis end to end. Raises {!Timeout} on budget
    expiry. [attr] collects per-rule/per-stratum cost attribution;
    [progress_s] enables the engine's heartbeat. *)
let run ?(budget = Timer.no_budget) ?attr ?progress_s (p : Ir.program)
    (kind : kind) : Solver.result =
  let t0 = Timer.now () in
  let t = create () in
  match kind with
  | Ci | Csc_doop ->
    let csc = kind = Csc_doop in
    ignore (Facts.load ~csc t p);
    ci_rules t;
    if csc then csc_rules t;
    solve ~budget ?attr ?progress_s t;
    result_of_ci t p ~name:(kind_name kind) ~time:(Timer.now () -. t0)
  | Obj2 | Type2 | Selective2obj _ ->
    ignore (Facts.load ~csc:false t p);
    let pol =
      match kind with
      | Obj2 -> policy_2obj
      | Type2 -> policy_2type
      | Selective2obj sel -> policy_selective sel
      | _ -> assert false
    in
    let objs = cs_rules t p pol in
    solve ~budget ?attr ?progress_s t;
    result_of_cs t objs ~name:(kind_name kind) ~time:(Timer.now () -. t0)

(** The declarative pointer analyses (the Doop analog): Andersen CI,
    Cut-Shortcut, and context sensitivity expressed as Datalog rules over
    the EDB of {!Facts}, evaluated by {!Engine}.

    Faithful to the paper's Doop implementation, the declarative Cut-Shortcut
    omits the field-*load* pattern (its [CutPropLoad] needs negation inside
    the recursive pt cycle, §5 "Implementation"); [cutStores]/[cutReturns]
    are static relations of stratum 0, so every negation is stratified.
    Context-sensitive variants intern contexts and abstract objects through
    builtin functors, like Doop's context constructors. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type kind =
  | Ci
  | Csc_doop  (** store + container + local-flow patterns, no load pattern *)
  | Obj2
  | Type2
  | Selective2obj of Bits.t  (** Zipper^e main analysis: selected methods *)

val kind_name : kind -> string

exception Timeout

(** Run a declarative analysis end to end, producing the same
    engine-agnostic result shape as the imperative solver (tested to be
    *identical* to it for CI / 2obj / 2type). [attr] collects per-rule and
    per-stratum cost attribution (tuple counts and wall time); [progress_s]
    emits a heartbeat line to stderr every that-many seconds. *)
val run :
  ?budget:Timer.budget ->
  ?attr:Csc_obs.Attr.t ->
  ?progress_s:float ->
  Ir.program ->
  kind ->
  Solver.result

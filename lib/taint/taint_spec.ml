(** Declarative taint specifications: which methods produce tainted values
    (sources), which must never receive them (sinks), and which launder them
    (sanitizers).

    Methods are named by [Class.method] patterns with [*] globbing, so a spec
    stays stable across programs that share a naming convention. A builtin
    table covers the surface the generator and the examples use ([Flow],
    [Request]/[Db]/[Sanitizer]); a JSON file extends or replaces it via the
    CLI's [--spec].

    Conventions the analysis relies on (see DESIGN.md): sources return a
    freshly allocated object, and sanitizers return a fresh (clean) object
    rather than their argument. Identity-style sanitizers are still sound to
    declare — the static side may then over-report, never under-report. *)

module Json = Csc_obs.Json
module Ir = Csc_ir.Ir

type t = {
  sources : string list;
  sinks : string list;
  sanitizers : string list;
}

type role = Source | Sink | Sanitizer

let role_name = function
  | Source -> "source"
  | Sink -> "sink"
  | Sanitizer -> "sanitizer"

(** The builtin table: the generator's [Flow] surface plus the
    [Request]/[Db]/[Sanitizer] web-ish vocabulary of the examples. *)
let builtin =
  {
    sources = [ "Flow.source*"; "Request.read*"; "Source.*" ];
    sinks = [ "Flow.sink*"; "Db.exec*"; "Sink.*" ];
    sanitizers = [ "Flow.scrub*"; "Sanitizer.*" ];
  }

(** Classic glob match; [*] matches any (possibly empty) substring,
    everything else is literal. *)
let matches (pat : string) (name : string) : bool =
  let np = String.length pat and nn = String.length name in
  let rec go i j =
    if i = np then j = nn
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < nn && go i (j + 1))
      | c -> j < nn && name.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let matches_any pats name = List.exists (fun p -> matches p name) pats

let is_source t p mid = matches_any t.sources (Ir.method_name p mid)
let is_sink t p mid = matches_any t.sinks (Ir.method_name p mid)
let is_sanitizer t p mid = matches_any t.sanitizers (Ir.method_name p mid)

(** First matching role, sanitizers binding tightest (a method that both
    matches a sanitizer and a source pattern launders, not leaks). *)
let classify t p mid : role option =
  if is_sanitizer t p mid then Some Sanitizer
  else if is_sink t p mid then Some Sink
  else if is_source t p mid then Some Source
  else None

(* ------------------------------------------------------------------ JSON *)

let strings_of (j : Json.t) (key : string) : (string list, string) result =
  match Json.member key j with
  | None -> Ok []
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "spec: %S must be a list of strings" key)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "spec: %S must be a list of strings" key)

(** Parse [{"sources": [...], "sinks": [...], "sanitizers": [...]}]; each key
    is optional and defaults to empty. *)
let of_json (j : Json.t) : (t, string) result =
  match j with
  | Json.Obj _ -> (
    match (strings_of j "sources", strings_of j "sinks", strings_of j "sanitizers")
    with
    | Ok sources, Ok sinks, Ok sanitizers -> Ok { sources; sinks; sanitizers }
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ -> Error "spec: expected a JSON object"

let of_string (s : string) : (t, string) result =
  match Json.parse s with Ok j -> of_json j | Error e -> Error ("spec: " ^ e)

let load (path : string) : (t, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

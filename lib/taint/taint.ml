(** Source→sink taint analysis over the PTA-resolved call graph.

    IFDS-style structure: intraprocedural propagation is a forward
    flow-sensitive {!Csc_checks.Dataflow} instance per reachable method
    (domain: the set of tainted reference variables), and the
    interprocedural half is factored through the points-to relation instead
    of explicit summary edges. Concretely:

    - [TO], the tainted abstract objects, is the union of the points-to sets
      of the return variables of reachable source methods (sources return
      freshly allocated objects, so these are exactly the source-born
      allocation sites);
    - a store through a tainted value taints the abstract objects the base
      PTA says the value may occupy — which is automatic, since those
      objects are in [TO] already and the PTA propagates them to wherever
      the value flows (fields, containers, arrays, parameters, returns);
    - a load (or a call returning a value) picks taint back up iff the
      points-to set of its target intersects [TO].

    Because every interprocedural step rides on the points-to relation, the
    precision of the underlying analysis transfers one-for-one: a
    context-sensitive or cut-shortcut result with smaller points-to sets
    yields strictly fewer spurious leak reports than a context-insensitive
    one, on the same spec and program. That is the paper's precision claim
    restated as user-visible findings (experiment E13).

    A leak is reported at every reachable call site with an edge to a sink
    whose arguments include a tainted reference variable. [t_leak_sites]
    keeps the unfiltered site set — the fuzz oracle checks that every
    dynamic sink hit (interpreter taint tags) is contained in it. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Diagnostic = Csc_checks.Diagnostic
module Cfg = Csc_checks.Cfg
module Dataflow = Csc_checks.Dataflow
module Registry = Csc_obs.Registry
module Interp = Csc_interp.Interp
module Spec = Taint_spec

let check_name = "taint"

(** Per-program role sets, precomputed from the spec's patterns. *)
type roles = { r_src : Bits.t; r_snk : Bits.t; r_san : Bits.t }

let roles (spec : Spec.t) (p : Ir.program) : roles =
  let src = Bits.create () and snk = Bits.create () and san = Bits.create () in
  Array.iter
    (fun (m : Ir.metho) ->
      let name = Ir.method_name p m.m_id in
      if Spec.matches_any spec.sanitizers name then ignore (Bits.add san m.m_id)
      else begin
        if Spec.matches_any spec.sources name then ignore (Bits.add src m.m_id);
        if Spec.matches_any spec.sinks name then ignore (Bits.add snk m.m_id)
      end)
    p.methods;
  { r_src = src; r_snk = snk; r_san = san }

(** Whether the spec can produce any finding on [p] at all — used by the
    fuzzer to skip programs without both a source and a sink. *)
let relevant (spec : Spec.t) (p : Ir.program) : bool =
  let rl = roles spec p in
  (not (Bits.is_empty rl.r_src)) && not (Bits.is_empty rl.r_snk)

(** Interpreter instrumentation for the same spec (dynamic counterpart). *)
let hooks (spec : Spec.t) (p : Ir.program) : Interp.taint_hooks =
  let rl = roles spec p in
  {
    th_source = Bits.mem rl.r_src;
    th_sink = Bits.mem rl.r_snk;
    th_sanitizer = Bits.mem rl.r_san;
  }

type result_t = {
  t_diags : Diagnostic.t list;
      (** leak diagnostics, unfiltered (JDK included); see {!diagnostics} *)
  t_leak_sites : Bits.t;  (** call sites of all reported leaks *)
  t_tainted_objs : Bits.t;  (** [TO]: source-born allocation sites *)
  t_snapshot : Csc_obs.Snapshot.t;  (** [taint_*] counters *)
}

module Dom = struct
  type t = Bits.t

  let equal = Bits.equal

  let join a b =
    let c = Bits.copy a in
    Bits.union_quiet ~into:c b;
    c
end

module DF = Dataflow.Make (Dom)

let is_ref (p : Ir.program) v = Ir.is_ref_type (Ir.var p v).v_ty

let analyze ?(spec = Spec.builtin) (p : Ir.program) (r : Solver.result) :
    result_t =
  let reg = Registry.create () in
  let c_sources = Registry.counter reg "taint_source_methods"
  and c_sinks = Registry.counter reg "taint_sink_methods"
  and c_sans = Registry.counter reg "taint_sanitizer_methods"
  and c_objs = Registry.counter reg "taint_tainted_objs"
  and c_methods = Registry.counter reg "taint_methods_analyzed"
  and c_sink_sites = Registry.counter reg "taint_sink_sites"
  and c_leaks = Registry.counter reg "taint_leaks" in
  let rl = roles spec p in
  Registry.incr ~by:(Bits.cardinal rl.r_src) c_sources;
  Registry.incr ~by:(Bits.cardinal rl.r_snk) c_sinks;
  Registry.incr ~by:(Bits.cardinal rl.r_san) c_sans;
  (* resolved callees per call site, from the analysis' call graph *)
  let edges_at : (Ir.call_id, Ir.method_id list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (site, callee) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt edges_at site) in
      Hashtbl.replace edges_at site (callee :: prev))
    r.Solver.r_edges;
  let callees site =
    Option.value ~default:[] (Hashtbl.find_opt edges_at site)
  in
  (* TO: every allocation site a reachable source's return variable may hold *)
  let to_set = Bits.create () in
  Bits.iter
    (fun mid ->
      if Bits.mem rl.r_src mid then
        match (Ir.metho p mid).m_ret_var with
        | Some rv -> Bits.union_quiet ~into:to_set (r.Solver.r_pt rv)
        | None -> ())
    r.Solver.r_reach;
  Registry.incr ~by:(Bits.cardinal to_set) c_objs;
  let heap_tainted v = Bits.inter_nonempty (r.Solver.r_pt v) to_set in
  let set_bit d v on =
    if Bits.mem d v = on then d
    else begin
      let c = Bits.copy d in
      if on then ignore (Bits.add c v) else Bits.remove c v;
      c
    end
  in
  let transfer _path (s : Ir.stmt) (d : Bits.t) : Bits.t =
    match s with
    | New { lhs; _ }
    | NewArray { lhs; _ }
    | StrConst { lhs; _ }
    | ConstInt { lhs; _ }
    | ConstBool { lhs; _ }
    | ConstNull { lhs }
    | Binop { lhs; _ }
    | Unop { lhs; _ }
    | ALen { lhs; _ }
    | InstanceOf { lhs; _ } -> set_bit d lhs false
    | Copy { lhs; rhs } | Cast { lhs; rhs; _ } ->
      set_bit d lhs (is_ref p lhs && Bits.mem d rhs)
    | Load { lhs; _ } | ALoad { lhs; _ } | SLoad { lhs; _ } ->
      (* taint picked back up from the heap via the points-to join *)
      set_bit d lhs (is_ref p lhs && heap_tainted lhs)
    | Invoke { lhs = Some lhs; site; _ } ->
      let cs = callees site in
      let tainted =
        is_ref p lhs
        && (List.exists (Bits.mem rl.r_src) cs
           || (List.exists (fun c -> not (Bits.mem rl.r_san c)) cs
              && heap_tainted lhs))
      in
      set_bit d lhs tainted
    | _ -> d
  in
  let leak_sites = Bits.create () in
  let diags = ref [] in
  let check_method mid =
    let m = Ir.metho p mid in
    (* only methods that can reach a sink need the var-level fixpoint *)
    let has_sink_call = ref false in
    Ir.iter_stmts
      (function
        | Ir.Invoke { site; _ }
          when List.exists (Bits.mem rl.r_snk) (callees site) ->
          has_sink_call := true
        | _ -> ())
      m.m_body;
    if !has_sink_call then begin
      Registry.incr c_methods;
      let cfg = Cfg.of_method p mid in
      let boundary =
        let d = Bits.create () in
        (match m.m_this with
        | Some t -> if heap_tainted t then ignore (Bits.add d t)
        | None -> ());
        Array.iter
          (fun v -> if is_ref p v && heap_tainted v then ignore (Bits.add d v))
          m.m_params;
        d
      in
      let spec_df =
        DF.{ dir = Dataflow.Forward; boundary; bottom = Bits.create (); transfer }
      in
      let res = DF.solve spec_df cfg in
      DF.iter_stmt_facts spec_df cfg res (fun path s ~before ~after:_ ->
          match s with
          | Invoke { args; site; _ } -> (
            let sinks = List.filter (Bits.mem rl.r_snk) (callees site) in
            if sinks <> [] then begin
              Registry.incr c_sink_sites;
              let tainted_args =
                Array.to_list args
                |> List.filter (fun a -> is_ref p a && Bits.mem before a)
              in
              match tainted_args with
              | [] -> ()
              | args ->
                Registry.incr c_leaks;
                ignore (Bits.add leak_sites site);
                let sink_names =
                  List.sort_uniq String.compare
                    (List.map (Ir.method_name p) sinks)
                in
                let arg_names =
                  List.sort_uniq String.compare (List.map (Ir.var_name p) args)
                in
                let witness =
                  let srcs =
                    List.concat_map
                      (fun a ->
                        Bits.fold
                          (fun s acc ->
                            if Bits.mem to_set s then s :: acc else acc)
                          (r.Solver.r_pt a) [])
                      args
                    |> List.sort_uniq Int.compare
                  in
                  Printf.sprintf "source alloc sites {%s} under %s"
                    (String.concat ", "
                       (List.map (fun s -> "a" ^ string_of_int s) srcs))
                    r.Solver.r_name
                in
                diags :=
                  Diagnostic.
                    {
                      d_check = check_name;
                      d_severity = Error;
                      d_method = mid;
                      d_path = path;
                      d_message =
                        Printf.sprintf "tainted value may reach sink %s via %s"
                          (String.concat ", " sink_names)
                          (String.concat ", " arg_names);
                      d_witness = Some witness;
                    }
                  :: !diags
            end)
          | _ -> ())
    end
  in
  Bits.iter check_method r.Solver.r_reach;
  {
    t_diags = List.sort_uniq Diagnostic.compare !diags;
    t_leak_sites = leak_sites;
    t_tainted_objs = to_set;
    t_snapshot = Registry.snapshot reg;
  }

(** The reportable diagnostics: [include_jdk] (default off) mirrors
    {!Csc_checks.Checks.run_all} — leaks whose sink call sits inside a
    mini-JDK method are hidden, the oracle-facing [t_leak_sites] is not. *)
let diagnostics ?(include_jdk = false) (p : Ir.program) (res : result_t) :
    Diagnostic.t list =
  if include_jdk then res.t_diags
  else
    List.filter
      (fun (d : Diagnostic.t) ->
        not
          (Csc_lang.Jdk.is_jdk_class
             (Ir.class_name p (Ir.metho p d.Diagnostic.d_method).Ir.m_class)))
      res.t_diags

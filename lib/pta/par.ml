(** Parallel imperative solver: sharded bulk-synchronous propagation over
    OCaml 5 Domains (DESIGN.md S18).

    The sequential solver ({!Solver}) is a single worklist loop; this module
    re-runs the same fixpoint as a sequence of {e rounds}. Every pointer node
    is owned by exactly one of [jobs] shards — {!Solver.shard_of} hashes the
    owning method of the canonical representative, so intra-method copy
    chains (where most propagation happens) stay shard-local. A round is:

    + {b distribute} (sequential): drain the global coalescing worklist,
      routing each dirty representative to its owner's private queue;
    + {b propagate} (parallel): each domain drains its own queue — pop a
      pointer, merge its pending delta into its points-to set, flow the
      delta along the frozen successor edges. Same-shard destinations are
      pushed locally (with the usual subset guard against the owner's
      points-to table); cross-shard destinations are buffered into a
      per-(src,dst)-shard {e outbox} without reading any remote state;
    + {b exchange} (sequential, at the barrier): deliver outboxes through
      the ordinary {!Solver.wl_push}, replay statement watches and plugin
      notifications, then run lazy cycle detection on the candidates the
      workers recorded.

    Everything that mutates shared structure — interning, edge insertion,
    call-graph growth, union-find collapsing, CSC cut/shortcut installs and
    the pin API — runs sequentially between rounds, so the plugin observes
    exactly the sequential protocol. During the parallel phase the graph is
    frozen and workers write only to the [pts]/[pending] slots of pointers
    they own; the only shared reads are immutable-for-the-round tables plus
    {!Csc_common.Uf.find_ro} (no path halving). The pool barrier provides
    the happens-before edges, so there is not a single lock or atomic on the
    propagation hot path.

    Delivery orders are fixed (worker index, then first-push order), so a
    run is bit-deterministic for a given [jobs], and the fixpoint itself —
    points-to sets, reachability, call edges, relay classification — is
    identical for {e every} [jobs], including the sequential solver: the
    rounds compute the same monotone closure, only in a different order.

    Falls back to {!Solver.run} when [jobs <= 1] or when provenance
    recording is enabled (derivation order is inherently sequential); the
    driver surfaces that fallback to the user. On OCaml 4.x builds
    {!Csc_common.Domains_compat} runs every slice in the caller, so the same
    code compiles and agrees with the sequential result, just without
    speedup. *)

open Csc_common
module Ir = Csc_ir.Ir
module Registry = Csc_obs.Registry
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr
module Pool = Domains_compat.Pool
module S = Solver

let log_src = Logs.Src.create "csc.par" ~doc:"parallel pointer analysis driver"

module Log = (val Logs.src_log log_src)

(* cross-shard delta buffer: per destination representative, in first-push
   order so barrier delivery is deterministic *)
type outbox = {
  ob_order : int Vec.t;
  ob_deltas : (int, Bits.t) Hashtbl.t;
}

type worker = {
  w_id : int;
  w_queue : int Queue.t;        (* this shard's coalescing worklist (FIFO) *)
  w_dirty : Bits.t;             (* members of [w_queue] *)
  mutable w_spare : Bits.t list;  (* recycled pending buffers, worker-private *)
  w_out : outbox array;         (* one per destination shard *)
  mutable w_notify : (int * Bits.t) list;  (* (rep, delta) for the barrier, reversed *)
  mutable w_lcd : (int * int) list;        (* LCD candidates (src, dst), reversed *)
  (* round-local counter cells, merged into the registry at the barrier *)
  mutable w_pops : int;
  mutable w_props : int;
  mutable w_pushes : int;
  mutable w_coalesced : int;
  w_attr : Attr.t option;       (* domain-private cost attribution *)
  mutable w_heap : int;         (* this domain's heap words, sampled per round *)
}

type t = {
  p_jobs : int;
  p_workers : worker array;
}

let make (t : S.t) ~jobs : t =
  let worker k =
    {
      w_id = k;
      w_queue = Queue.create ();
      w_dirty = Bits.create ();
      w_spare = [];
      w_out =
        Array.init jobs (fun _ ->
            { ob_order = Vec.create (-1); ob_deltas = Hashtbl.create 64 });
      w_notify = [];
      w_lcd = [];
      w_pops = 0;
      w_props = 0;
      w_pushes = 0;
      w_coalesced = 0;
      w_attr =
        (match t.S.attr with None -> None | Some _ -> Some (Attr.create ()));
      w_heap = 0;
    }
  in
  { p_jobs = jobs; p_workers = Array.init jobs worker }

(* worker-side twin of [S.shard_of]: canonicalizes through the read-only
   find so it is safe while the union-find is frozen mid-round *)
let shard_ro (t : S.t) ~jobs p : int =
  let key =
    match Interner.get t.S.ptrs (Uf.find_ro t.S.uf p) with
    | S.PVar (_, v) -> (Ir.var t.S.prog v).Ir.v_method
    | S.PField (o, _) | S.PArr o ->
      (Ir.alloc t.S.prog (S.obj_alloc t o)).Ir.a_method
    | S.PStatic fld -> lnot fld
  in
  S.mix_int key mod jobs

(* route the global worklist to the owners' private queues. [collapse_class]
   scrubs absorbed members from [dirty] and re-pushes the representative, so
   every dirty entry here is canonical. *)
let distribute (par : t) (t : S.t) =
  while not (Queue.is_empty t.S.wl) do
    let p = Queue.pop t.S.wl in
    if Bits.mem t.S.dirty p then begin
      Bits.remove t.S.dirty p;
      let w = par.p_workers.(shard_ro t ~jobs:par.p_jobs p) in
      if not (Bits.mem w.w_dirty p) then begin
        ignore (Bits.add w.w_dirty p);
        Queue.push p w.w_queue
      end
    end
  done

(* owner-local push: the worker owns [dst]'s pts/pending slots, so the
   subset guard and the pending merge are ordinary sequential code *)
let local_push (t : S.t) w dst d =
  w.w_pushes <- w.w_pushes + 1;
  let slot = Vec.get t.S.pending dst in
  let slot =
    if slot != t.S.empty_pending then slot
    else begin
      let b =
        match w.w_spare with
        | b :: rest ->
          w.w_spare <- rest;
          b
        | [] -> Bits.create ~capacity:8 ()
      in
      Vec.set t.S.pending dst b;
      b
    end
  in
  Bits.union_quiet ~into:slot d;
  if Bits.mem w.w_dirty dst then w.w_coalesced <- w.w_coalesced + 1
  else begin
    ignore (Bits.add w.w_dirty dst);
    Queue.push dst w.w_queue
  end

let outbox_push w sh dst d =
  let ob = w.w_out.(sh) in
  match Hashtbl.find_opt ob.ob_deltas dst with
  | Some b -> Bits.union_quiet ~into:b d
  | None ->
    let b = Bits.create ~capacity:8 () in
    Bits.union_quiet ~into:b d;
    Hashtbl.add ob.ob_deltas dst b;
    Vec.push ob.ob_order dst

(* one worklist pop, worker-side. Reads: frozen succs/watches/pinned tables,
   owner's pts/pending, remote *nothing*. Writes: owner's pts/pending slots
   and worker-private state only. *)
let process_ptr (par : t) (t : S.t) w p =
  let objs = Vec.get t.S.pending p in
  if objs != t.S.empty_pending then begin
    Vec.set t.S.pending p t.S.empty_pending;
    let cur = Vec.get t.S.pts p in
    (match Bits.union_into ~into:cur objs with
    | None -> ()
    | Some delta ->
      let dn = Bits.cardinal delta in
      w.w_props <- w.w_props + dn;
      (match w.w_attr with
      | None -> ()
      | Some a -> Attr.observe_pop a ~meth:(S.meth_of_ptr t p) ~ptr:p ~delta:dn);
      List.iter
        (fun (e : S.edge) ->
          let dst = Uf.find_ro t.S.uf e.S.e_dst in
          if dst <> p then begin
            let d = S.filter_delta t e.S.e_filter delta in
            if not (Bits.is_empty d) then begin
              let sh = shard_ro t ~jobs:par.p_jobs dst in
              if sh = w.w_id then begin
                if Bits.subset d (Vec.get t.S.pts dst) then begin
                  (* fully redundant flow along a collapsible edge: record
                     the LCD trigger; the cycle walk runs at the barrier *)
                  if
                    t.S.collapse && S.collapsible e
                    && (not (Bits.mem t.S.pinned p))
                    && not (Bits.mem t.S.pinned dst)
                  then w.w_lcd <- (p, dst) :: w.w_lcd
                end
                else local_push t w dst d
              end
              else outbox_push w sh dst d
            end
          end)
        (Vec.get t.S.succs p);
      (* watches and plugin callbacks mutate the graph — defer to barrier *)
      if Vec.get t.S.watches p <> [] || t.S.plugin != S.no_plugin then
        w.w_notify <- (p, delta) :: w.w_notify);
    Bits.clear objs;
    w.w_spare <- objs :: w.w_spare
  end

let worker (par : t) (t : S.t) k =
  let w = par.p_workers.(k) in
  let n = ref 0 in
  while not (Queue.is_empty w.w_queue) do
    incr n;
    if !n land 1023 = 0 then Timer.check t.S.budget;
    let p = Queue.pop w.w_queue in
    Bits.remove w.w_dirty p;
    w.w_pops <- w.w_pops + 1;
    process_ptr par t w p
  done;
  w.w_heap <- (Gc.quick_stat ()).Gc.heap_words

(* sequential barrier epilogue; returns the pops this round (drives the
   periodic Tarjan sweep cadence). Every loop below runs in worker-index
   order over insertion-ordered buffers — fixed order, deterministic run. *)
let barrier (par : t) (t : S.t) : int =
  let pops = ref 0 in
  Array.iter
    (fun w ->
      pops := !pops + w.w_pops;
      if w.w_props > 0 then Registry.incr ~by:w.w_props t.S.c_prop;
      if w.w_pushes > 0 then Registry.incr ~by:w.w_pushes t.S.c_wl_pushes;
      if w.w_coalesced > 0 then
        Registry.incr ~by:w.w_coalesced t.S.c_wl_coalesced;
      w.w_pops <- 0;
      w.w_props <- 0;
      w.w_pushes <- 0;
      w.w_coalesced <- 0)
    par.p_workers;
  (* cross-shard deltas through the ordinary push (canon + subset guard),
     recycling the buffers into the solver's spare list *)
  Array.iter
    (fun w ->
      Array.iter
        (fun ob ->
          Vec.iter
            (fun dst ->
              let d = Hashtbl.find ob.ob_deltas dst in
              S.wl_push t dst d;
              Bits.clear d;
              t.S.spare <- d :: t.S.spare)
            ob.ob_order;
          Vec.clear ob.ob_order;
          Hashtbl.reset ob.ob_deltas)
        w.w_out)
    par.p_workers;
  Array.iter
    (fun w ->
      List.iter
        (fun (p, delta) ->
          List.iter
            (fun wch -> S.process_watch t wch delta)
            (Vec.get t.S.watches p);
          t.S.plugin.S.pl_on_new_pts p delta)
        (List.rev w.w_notify);
      w.w_notify <- [])
    par.p_workers;
  Array.iter
    (fun w ->
      List.iter (fun (src, dst) -> S.try_lcd t ~src ~dst) (List.rev w.w_lcd);
      w.w_lcd <- [])
    par.p_workers;
  !pops

let merge_attrs (par : t) (t : S.t) =
  match t.S.attr with
  | None -> ()
  | Some into ->
    Array.iter
      (fun w ->
        match w.w_attr with Some a -> Attr.merge ~into a | None -> ())
      par.p_workers

let run_rounds (t : S.t) (pool : Pool.t) : unit =
  let jobs = Pool.jobs pool in
  let par = make t ~jobs in
  (* [Gc.quick_stat] sees the calling domain only on OCaml 5; fold in the
     workers' last per-round samples so heap_words_peak stays process-wide *)
  t.S.extra_heap_words <-
    (fun () ->
      let s = ref 0 in
      for k = 1 to jobs - 1 do
        s := !s + par.p_workers.(k).w_heap
      done;
      !s);
  let t0 = Timer.now () in
  let entry_ctx = Interner.intern t.S.ctxs [] in
  let round = ref 0 in
  let pops_since_sweep = ref 0 in
  (try
     Timer.check t.S.budget;
     S.add_reachable t ~ctx:entry_ctx ~mid:t.S.prog.Ir.main;
     while (not (Queue.is_empty t.S.wl)) || t.S.pending_collapse <> [] do
       incr round;
       Timer.check t.S.budget;
       if t.S.progress_s > 0. then S.maybe_progress t ~t0 ~iter:!round;
       if !round land 7 = 0 then S.sample_heap t;
       (* cycles recorded at the previous barrier collapse here, before the
          graph re-freezes — mirrors the sequential between-pops slot *)
       if t.S.pending_collapse <> [] then begin
         let cs = t.S.pending_collapse in
         t.S.pending_collapse <- [];
         List.iter (S.collapse_class t) cs
       end;
       if t.S.collapse && !pops_since_sweep >= 65536 then begin
         pops_since_sweep := 0;
         S.scc_sweep t
       end;
       distribute par t;
       Pool.run pool (worker par t);
       pops_since_sweep := !pops_since_sweep + barrier par t
     done
   with Timer.Out_of_budget ->
     Registry.set t.S.g_time (Timer.now () -. t0);
     S.sample_heap t;
     merge_attrs par t;
     Log.info (fun m ->
         m "%s+%s@j%d: out of budget after %.1fs (%d rounds)"
           t.S.sel.Context.sel_name t.S.plugin.S.pl_name jobs
           (Registry.gauge_value t.S.g_time)
           !round);
     raise S.Timeout);
  merge_attrs par t;
  Registry.set t.S.g_time (Timer.now () -. t0);
  S.sample_heap t;
  Log.info (fun m ->
      m
        "%s+%s@j%d: done in %.3fs (%d rounds, %d methods, %d ptrs, %d props, %d cycles collapsed)"
        t.S.sel.Context.sel_name t.S.plugin.S.pl_name jobs
        (Registry.gauge_value t.S.g_time)
        !round
        (Bits.cardinal t.S.reached_methods)
        (Registry.value t.S.c_ptrs)
        (Registry.value t.S.c_prop)
        (Registry.value t.S.c_cycles))

(** [run ?jobs t] solves [t] to the same fixpoint as {!Solver.run} —
    identical points-to sets, reachability, call edges and plugin-visible
    protocol for every [jobs] value. [jobs <= 1] and provenance-recording
    solves take the sequential path directly. *)
let run ?(jobs = 1) (t : S.t) : unit =
  let jobs = max 1 jobs in
  if jobs <= 1 || t.S.prov <> None then S.run t
  else
    Trace.with_span ~cat:"solver"
      (Printf.sprintf "solve:%s+%s@j%d" t.S.sel.Context.sel_name
         t.S.plugin.S.pl_name jobs)
      (fun () -> Pool.with_pool ~jobs (fun pool -> run_rounds t pool))

(** Incremental re-analysis over the imperative solver (DESIGN.md S20).

    Strategy: {b transplant + re-run} — retraction by non-transplant,
    deletion via rederivation. Given the solved state of an old program
    revision and a new revision, we

    + {b diff} the two programs at method granularity (classes, fields and
      hierarchy must match by name, or we fall back to a fresh solve);
      matched methods are fingerprinted by signature, by a name-based body
      rendering (dense ids differ across compiles, names don't) and by an
      optional analysis-specific classification fingerprint (the
      Cut-Shortcut pattern classification is a whole-program property, so a
      method whose patterns change is "edited" even when its text is not);
    + compute a {b dirtiness closure} over the old solver's pointer flow
      graph: every pointer whose facts might not hold in the new program's
      least fixpoint. Seeds are the pointers and heap objects of dirty
      methods plus the lhs/params of virtual sites whose dispatch key names
      an added or removed method; the closure follows PFG successor edges,
      replays the solver's watch rules in "retraction direction" (a dirty
      watched base dirties whatever the watch derived), and consults an
      optional plugin {!type-hook} for analysis-specific derived state;
    + compute {b NR}, an under-approximation of the new program's reachable
      methods (statics unconditionally, virtual/special sites in clean
      methods through clean receivers by re-dispatching the old points-to
      sets on the {e new} class table). Old-reachable methods without an NR
      match might have lost reachability, so they join the dirty set and the
      closure re-runs — to a (monotone, terminating) fixpoint;
    + {b preseed} a fresh solver on the new program with every clean,
      translatable fact, pushed through {!Solver.seed} so each preloaded set
      arrives as an ordinary worklist delta: all watches, call-graph rules
      and plugin subscriptions replay over it exactly as over derived
      facts. The subsequent run re-derives everything retracted and reaches
      the same fixpoint a from-scratch solve would — the
      [Soundness.check_incremental] oracle asserts bit-identity.

    Union-find interaction: dirtiness is tracked on canonical
    representatives, so one dirty member retracts its whole collapsed class
    (over-dirtying is always sound); clean absorbed members are
    transplanted individually with their representative's set, which at the
    old fixpoint is exactly each member's own set. *)

open Csc_common
module Ir = Csc_ir.Ir
module Registry = Csc_obs.Registry
module S = Solver

(* ------------------------------------------------------------- edits *)

type edit =
  | Replace_method of { cls : string; meth : string; body : string }
  | Add_method of { cls : string; meth_src : string }
  | Remove_method of { cls : string; meth : string }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

(* index of the '}' matching the '{' at [open_i], skipping string literals
   and line comments *)
let match_brace src open_i : int option =
  let n = String.length src in
  let depth = ref 0 in
  let i = ref open_i in
  let res = ref (-1) in
  let in_str = ref false and in_cmt = ref false in
  while !res < 0 && !i < n do
    let c = src.[!i] in
    if !in_cmt then (if c = '\n' then in_cmt := false)
    else if !in_str then (if c = '"' then in_str := false)
    else begin
      match c with
      | '"' -> in_str := true
      | '/' when !i + 1 < n && src.[!i + 1] = '/' -> in_cmt := true
      | '{' -> incr depth
      | '}' ->
        decr depth;
        if !depth = 0 then res := !i
      | _ -> ()
    end;
    incr i
  done;
  if !res < 0 then None else Some !res

let skip_ws src i =
  let n = String.length src in
  let i = ref i in
  while !i < n && (src.[!i] = ' ' || src.[!i] = '\n' || src.[!i] = '\t' || src.[!i] = '\r') do
    incr i
  done;
  !i

(* (class_start, body_open, body_close) of [class <cls> ... { ... }] *)
let find_class src cls : (int * int * int) option =
  let n = String.length src in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i + 5 < n do
    if
      String.sub src !i 5 = "class"
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && not (is_ident_char src.[!i + 5])
    then begin
      let j = skip_ws src (!i + 5) in
      let k = ref j in
      while !k < n && is_ident_char src.[!k] do
        incr k
      done;
      if String.sub src j (!k - j) = cls then begin
        (* skip optional "extends X" up to the opening brace *)
        let b = ref !k in
        while !b < n && src.[!b] <> '{' do
          incr b
        done;
        if !b < n then
          match match_brace src !b with
          | Some e -> result := Some (!i, !b, e)
          | None -> ()
      end
    end;
    incr i
  done;
  !result

(* (header_start, body_open, body_close) of method [meth] declared directly
   in the class body spanning [cls_open+1 .. cls_close-1] *)
let find_method src ~cls_open ~cls_close meth : (int * int * int) option =
  let result = ref None in
  let depth = ref 0 in
  let i = ref (cls_open + 1) in
  let member_start = ref (cls_open + 1) in
  let in_str = ref false and in_cmt = ref false in
  let ml = String.length meth in
  while !result = None && !i < cls_close do
    let c = src.[!i] in
    if !in_cmt then begin
      (if c = '\n' then in_cmt := false);
      incr i
    end
    else if !in_str then begin
      (if c = '"' then in_str := false);
      incr i
    end
    else
      match c with
      | '"' ->
        in_str := true;
        incr i
      | '/' when !i + 1 < cls_close && src.[!i + 1] = '/' ->
        in_cmt := true;
        incr i
      | '{' ->
        incr depth;
        incr i
      | '}' ->
        decr depth;
        if !depth = 0 then member_start := skip_ws src (!i + 1);
        incr i
      | ';' when !depth = 0 ->
        member_start := skip_ws src (!i + 1);
        incr i
      | _
        when !depth = 0 && is_ident_char c
             && (!i = 0 || not (is_ident_char src.[!i - 1]))
             && !i + ml < cls_close
             && String.sub src !i ml = meth
             && not (is_ident_char src.[!i + ml]) -> (
        (* method name at class depth: expect '(' next (fields end in ';') *)
        let p = skip_ws src (!i + ml) in
        if p < cls_close && src.[p] = '(' then begin
          let q = ref p in
          while !q < cls_close && src.[!q] <> ')' do
            incr q
          done;
          let b = skip_ws src (!q + 1) in
          if b < cls_close && src.[b] = '{' then
            match match_brace src b with
            | Some e -> result := Some (!member_start, b, e)
            | None -> ()
          else i := !i + ml
        end
        else i := !i + ml)
      | _ -> incr i
  done;
  !result

let apply_edit (src : string) (e : edit) : (string, string) result =
  let cls_of = function
    | Replace_method { cls; _ } | Add_method { cls; _ } | Remove_method { cls; _ }
      -> cls
  in
  match find_class src (cls_of e) with
  | None -> Error (Printf.sprintf "edit: class %s not found" (cls_of e))
  | Some (_, copen, cclose) -> (
    match e with
    | Add_method { meth_src; _ } ->
      Ok
        (String.sub src 0 cclose
        ^ "  " ^ meth_src ^ "\n"
        ^ String.sub src cclose (String.length src - cclose))
    | Replace_method { cls; meth; body } -> (
      match find_method src ~cls_open:copen ~cls_close:cclose meth with
      | None -> Error (Printf.sprintf "edit: method %s.%s not found" cls meth)
      | Some (_, bopen, bclose) ->
        Ok
          (String.sub src 0 (bopen + 1)
          ^ "\n" ^ body ^ "\n  "
          ^ String.sub src bclose (String.length src - bclose)))
    | Remove_method { cls; meth } -> (
      match find_method src ~cls_open:copen ~cls_close:cclose meth with
      | None -> Error (Printf.sprintf "edit: method %s.%s not found" cls meth)
      | Some (hstart, _, bclose) ->
        Ok
          (String.sub src 0 hstart
          ^ String.sub src (bclose + 1) (String.length src - bclose - 1))))

let apply_edits (src : string) (edits : edit list) : (string, string) result =
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok s -> apply_edit s e)
    (Ok src) edits

(* ------------------------------------------------- name fingerprints *)

let rec typ_str (p : Ir.program) = function
  | Ir.Tint -> "I"
  | Ir.Tbool -> "Z"
  | Ir.Tvoid -> "V"
  | Ir.Tnull -> "0"
  | Ir.Tclass c -> Ir.class_name p c
  | Ir.Tarray t -> "[" ^ typ_str p t

let vn p v = (Ir.var p v).Ir.v_name
let fn p f =
  let fl = Ir.field p f in
  Ir.class_name p fl.Ir.f_class ^ "." ^ fl.Ir.f_name

let mn p m =
  let mt = Ir.metho p m in
  Ir.class_name p mt.Ir.m_class ^ "." ^ mt.Ir.m_name

(* stable, id-free rendering of a method body: variable/field/class/method
   names instead of dense ids, site ids and line numbers omitted *)
let body_fp (p : Ir.program) (m : Ir.metho) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ov = function Some v -> vn p v | None -> "_" in
  let rec stmt (s : Ir.stmt) =
    match s with
    | Ir.New { lhs; cls; _ } -> pf "new %s %s;" (vn p lhs) (Ir.class_name p cls)
    | Ir.NewArray { lhs; elem; len; _ } ->
      pf "newarr %s %s %s;" (vn p lhs) (typ_str p elem) (vn p len)
    | Ir.StrConst { lhs; value; _ } -> pf "str %s %S;" (vn p lhs) value
    | Ir.ConstInt { lhs; value } -> pf "ci %s %d;" (vn p lhs) value
    | Ir.ConstBool { lhs; value } -> pf "cb %s %b;" (vn p lhs) value
    | Ir.ConstNull { lhs } -> pf "cn %s;" (vn p lhs)
    | Ir.Copy { lhs; rhs } -> pf "cp %s %s;" (vn p lhs) (vn p rhs)
    | Ir.Cast { lhs; ty; rhs; _ } ->
      pf "cast %s (%s) %s;" (vn p lhs) (typ_str p ty) (vn p rhs)
    | Ir.InstanceOf { lhs; ty; rhs; _ } ->
      pf "iof %s (%s) %s;" (vn p lhs) (typ_str p ty) (vn p rhs)
    | Ir.Load { lhs; base; fld } -> pf "ld %s %s %s;" (vn p lhs) (vn p base) (fn p fld)
    | Ir.Store { base; fld; rhs } -> pf "st %s %s %s;" (vn p base) (fn p fld) (vn p rhs)
    | Ir.ALoad { lhs; arr; idx } -> pf "ald %s %s %s;" (vn p lhs) (vn p arr) (vn p idx)
    | Ir.AStore { arr; idx; rhs } -> pf "ast %s %s %s;" (vn p arr) (vn p idx) (vn p rhs)
    | Ir.ALen { lhs; arr } -> pf "alen %s %s;" (vn p lhs) (vn p arr)
    | Ir.SLoad { lhs; fld } -> pf "sld %s %s;" (vn p lhs) (fn p fld)
    | Ir.SStore { fld; rhs } -> pf "sst %s %s;" (fn p fld) (vn p rhs)
    | Ir.Binop { lhs; op; a; b } ->
      pf "bin %s %d %s %s;" (vn p lhs) (Hashtbl.hash op) (vn p a) (vn p b)
    | Ir.Unop { lhs; op; a } ->
      pf "un %s %d %s;" (vn p lhs) (Hashtbl.hash op) (vn p a)
    | Ir.Invoke { lhs; kind; recv; target; args; _ } ->
      pf "inv %s %s %s %s("
        (match lhs with Some l -> vn p l | None -> "_")
        (match kind with Ir.Virtual -> "v" | Ir.Special -> "s" | Ir.Static -> "c")
        (ov recv) (mn p target);
      Array.iter (fun a -> pf "%s," (vn p a)) args;
      pf ");"
    | Ir.Return v -> pf "ret %s;" (ov v)
    | Ir.If { cond; cond_pre; then_; else_ } ->
      pf "if %s pre{" (vn p cond);
      Array.iter stmt cond_pre;
      pf "}{";
      Array.iter stmt then_;
      pf "}else{";
      Array.iter stmt else_;
      pf "}"
    | Ir.While { cond; cond_pre; body } ->
      pf "while %s pre{" (vn p cond);
      Array.iter stmt cond_pre;
      pf "}{";
      Array.iter stmt body;
      pf "}"
    | Ir.Print { arg } -> pf "print %s;" (vn p arg)
    | Ir.Nop -> pf "nop;"
  in
  Array.iter stmt m.Ir.m_body;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let sig_fp (p : Ir.program) (m : Ir.metho) : string =
  let buf = Buffer.create 64 in
  Buffer.add_string buf m.Ir.m_name;
  Buffer.add_string buf (if m.Ir.m_static then "/s/" else "/i/");
  (match m.Ir.m_this with
  | Some v -> Buffer.add_string buf (vn p v)
  | None -> ());
  Array.iter
    (fun v ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (vn p v);
      Buffer.add_char buf ':';
      Buffer.add_string buf (typ_str p (Ir.var p v).Ir.v_ty))
    m.Ir.m_params;
  Buffer.add_char buf '>';
  Buffer.add_string buf (typ_str p m.Ir.m_ret_ty);
  (match m.Ir.m_ret_var with
  | Some v -> Buffer.add_string buf (vn p v)
  | None -> ());
  Buffer.contents buf

(* ------------------------------------------------------ program diff *)

type dmatch = {
  d_ok : bool;
  d_reason : string;
  class_map : int array; (* old -> new (total when d_ok) *)
  field_map : int array; (* old -> new (total when d_ok) *)
  meth_map : int array; (* old -> new, -1 for removed *)
  meth_rmap : int array; (* new -> old, -1 for added *)
  var_map : int array; (* old -> new, -1 outside matched-clean methods *)
  alloc_map : int array;
  call_rmap : int array; (* new call site -> old call site, -1 unknown *)
  dirty_seed : Bits.t; (* old method ids: edited or removed *)
  n_edited : int; (* |dirty_seed| + added methods, for the K% policy *)
  vt_names : (string, unit) Hashtbl.t; (* dispatch keys that may change *)
}

let no_match reason =
  {
    d_ok = false;
    d_reason = reason;
    class_map = [||];
    field_map = [||];
    meth_map = [||];
    meth_rmap = [||];
    var_map = [||];
    alloc_map = [||];
    call_rmap = [||];
    dirty_seed = Bits.create ();
    n_edited = 0;
    vt_names = Hashtbl.create 1;
  }

(* group a flat entity array by a method projection, preserving creation
   order within each method *)
let by_method (arr : 'a array) (meth : 'a -> int) : (int, 'a list) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  for i = Array.length arr - 1 downto 0 do
    let m = meth arr.(i) in
    Hashtbl.replace tbl m (arr.(i) :: (try Hashtbl.find tbl m with Not_found -> []))
  done;
  tbl

let diff ?classify_old ?classify_new (op : Ir.program) (np : Ir.program) : dmatch =
  let exception Mismatch of string in
  try
    (* ---- classes: same name set, same hierarchy, same fields ---- *)
    let ncls = Hashtbl.create 64 in
    Array.iter (fun (c : Ir.klass) -> Hashtbl.replace ncls c.Ir.c_name c.Ir.c_id) np.Ir.classes;
    if Array.length op.Ir.classes <> Array.length np.Ir.classes then
      raise (Mismatch "class set changed");
    let class_map =
      Array.map
        (fun (c : Ir.klass) ->
          match Hashtbl.find_opt ncls c.Ir.c_name with
          | Some id -> id
          | None -> raise (Mismatch ("class removed: " ^ c.Ir.c_name)))
        op.Ir.classes
    in
    let field_map = Array.make (Array.length op.Ir.fields) (-1) in
    Array.iteri
      (fun ci (c : Ir.klass) ->
        let nc = Ir.klass np class_map.(ci) in
        (match (c.Ir.c_super, nc.Ir.c_super) with
        | None, None -> ()
        | Some a, Some b when class_map.(a) = b -> ()
        | _ -> raise (Mismatch ("superclass changed: " ^ c.Ir.c_name)));
        let ofs = List.map (Ir.field op) c.Ir.c_fields in
        let nfs = List.map (Ir.field np) nc.Ir.c_fields in
        if List.length ofs <> List.length nfs then
          raise (Mismatch ("fields changed: " ^ c.Ir.c_name));
        List.iter2
          (fun (f : Ir.field) (g : Ir.field) ->
            if
              f.Ir.f_name <> g.Ir.f_name
              || f.Ir.f_static <> g.Ir.f_static
              || typ_str op f.Ir.f_ty <> typ_str np g.Ir.f_ty
            then raise (Mismatch ("fields changed: " ^ c.Ir.c_name));
            field_map.(f.Ir.f_id) <- g.Ir.f_id)
          ofs nfs)
      op.Ir.classes;
    if Array.exists (fun f -> f < 0) field_map then
      raise (Mismatch "field set changed");
    (* ---- methods: match by (class, name) ---- *)
    let nmeth = Hashtbl.create 256 in
    Array.iter
      (fun (m : Ir.metho) ->
        Hashtbl.replace nmeth
          (Ir.class_name np m.Ir.m_class, m.Ir.m_name)
          m.Ir.m_id)
      np.Ir.methods;
    let n_old = Array.length op.Ir.methods in
    let n_new = Array.length np.Ir.methods in
    let meth_map = Array.make n_old (-1) in
    let meth_rmap = Array.make n_new (-1) in
    Array.iteri
      (fun i (m : Ir.metho) ->
        match Hashtbl.find_opt nmeth (Ir.class_name op m.Ir.m_class, m.Ir.m_name) with
        | Some j ->
          meth_map.(i) <- j;
          meth_rmap.(j) <- i
        | None -> ())
      op.Ir.methods;
    let dirty_seed = Bits.create () in
    let vt_names = Hashtbl.create 8 in
    let n_added = ref 0 in
    Array.iteri
      (fun i (m : Ir.metho) ->
        let j = meth_map.(i) in
        if j < 0 then begin
          ignore (Bits.add dirty_seed i);
          Hashtbl.replace vt_names m.Ir.m_name ()
        end
        else begin
          let nm = Ir.metho np j in
          let clean =
            sig_fp op m = sig_fp np nm
            && body_fp op m = body_fp np nm
            && (match (classify_old, classify_new) with
               | Some f, Some g -> f i = g j
               | _ -> true)
          in
          if not clean then ignore (Bits.add dirty_seed i)
        end)
      op.Ir.methods;
    Array.iteri
      (fun j (m : Ir.metho) ->
        if meth_rmap.(j) < 0 then begin
          incr n_added;
          Hashtbl.replace vt_names m.Ir.m_name ()
        end)
      np.Ir.methods;
    (* ---- positional var/alloc/call maps for matched-clean methods ---- *)
    let var_map = Array.make (Array.length op.Ir.vars) (-1) in
    let alloc_map = Array.make (Array.length op.Ir.allocs) (-1) in
    let call_rmap = Array.make (Array.length np.Ir.calls) (-1) in
    let ovars = by_method op.Ir.vars (fun (v : Ir.var) -> v.Ir.v_method) in
    let nvars = by_method np.Ir.vars (fun (v : Ir.var) -> v.Ir.v_method) in
    let oallocs = by_method op.Ir.allocs (fun (a : Ir.alloc_site) -> a.Ir.a_method) in
    let nallocs = by_method np.Ir.allocs (fun (a : Ir.alloc_site) -> a.Ir.a_method) in
    let ocalls = by_method op.Ir.calls (fun (c : Ir.call_site) -> c.Ir.cs_method) in
    let ncalls = by_method np.Ir.calls (fun (c : Ir.call_site) -> c.Ir.cs_method) in
    let get tbl m = try Hashtbl.find tbl m with Not_found -> [] in
    let demote i =
      (* positional maps inconsistent despite equal fingerprints: treat the
         method as edited rather than risk a wrong translation *)
      ignore (Bits.add dirty_seed i)
    in
    for i = 0 to n_old - 1 do
      let j = meth_map.(i) in
      if j >= 0 && not (Bits.mem dirty_seed i) then begin
        let ov = get ovars i and nv = get nvars j in
        let oa = get oallocs i and na = get nallocs j in
        let oc = get ocalls i and nc = get ncalls j in
        if
          List.length ov <> List.length nv
          || List.length oa <> List.length na
          || List.length oc <> List.length nc
        then demote i
        else begin
          List.iter2
            (fun (a : Ir.var) (b : Ir.var) ->
              if a.Ir.v_name = b.Ir.v_name && a.Ir.v_kind = b.Ir.v_kind then
                var_map.(a.Ir.v_id) <- b.Ir.v_id
              else demote i)
            ov nv;
          List.iter2
            (fun (a : Ir.alloc_site) (b : Ir.alloc_site) ->
              let same =
                match (a.Ir.a_kind, b.Ir.a_kind) with
                | `Class ca, `Class cb -> class_map.(ca) = cb
                | `Array ta, `Array tb -> typ_str op ta = typ_str np tb
                | `String, `String -> true
                | _ -> false
              in
              if same then alloc_map.(a.Ir.a_id) <- b.Ir.a_id else demote i)
            oa na;
          List.iter2
            (fun (a : Ir.call_site) (b : Ir.call_site) ->
              if
                a.Ir.cs_kind = b.Ir.cs_kind
                && mn op a.Ir.cs_target = mn np b.Ir.cs_target
              then call_rmap.(b.Ir.cs_id) <- a.Ir.cs_id
              else demote i)
            oc nc
        end
      end
    done;
    {
      d_ok = true;
      d_reason = "";
      class_map;
      field_map;
      meth_map;
      meth_rmap;
      var_map;
      alloc_map;
      call_rmap;
      dirty_seed;
      n_edited = Bits.cardinal dirty_seed + !n_added;
      vt_names;
    }
  with Mismatch reason -> no_match reason

(* ------------------------------------------------- planning the update *)

(** Analysis-specific dirtiness rules (Cut-Shortcut installs shortcut edges
    and relay seeds whose derivations the generic closure cannot see). The
    hook is called once per closure round with membership tests over the
    {e old} solver's id spaces and must [mark] every old pointer whose
    plugin-derived facts might not persist; it runs until it marks nothing
    new. *)
type hook =
  dirty_ptr:(int -> bool) ->
  dirty_obj:(int -> bool) ->
  dirty_meth:(int -> bool) ->
  mark:(int -> unit) ->
  unit

type info = {
  i_mode : [ `Incremental | `Fresh ];
  i_reason : string;
  mutable i_dirty_methods : int;
  mutable i_dirty_ptrs : int;
  mutable i_preloaded : int; (* (ptr, obj) facts carried over *)
  mutable i_retracted : int; (* old facts not carried over *)
  mutable i_rounds : int; (* dirtiness-closure rounds *)
  mutable i_reuse : float; (* preloaded / old facts *)
}

let fresh_info reason =
  {
    i_mode = `Fresh;
    i_reason = reason;
    i_dirty_methods = 0;
    i_dirty_ptrs = 0;
    i_preloaded = 0;
    i_retracted = 0;
    i_rounds = 0;
    i_reuse = 0.;
  }

type plan = Fallback of string | Preseed of (S.t -> unit) * info

let plan ?(k_percent = 20) ?classify_old ?classify_new ?(hook : hook option)
    ~(old : S.t) (np : Ir.program) : plan =
  let op = old.S.prog in
  if Interner.count old.S.ctxs <> 1 then
    Fallback "context-sensitive solver state"
  else begin
    let d = diff ?classify_old ?classify_new op np in
    if not d.d_ok then Fallback d.d_reason
    else if
      d.n_edited * 100 > k_percent * max 1 (Array.length op.Ir.methods)
    then
      Fallback
        (Printf.sprintf "edit touches %d of %d methods (> %d%%)" d.n_edited
           (Array.length op.Ir.methods) k_percent)
    else begin
      let rounds = ref 0 in
      (* per-variable pointer index over the old solver (all contexts) *)
      let var_ptrs : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
      Interner.iteri
        (fun id desc ->
          match desc with
          | S.PVar (_, v) ->
            Hashtbl.replace var_ptrs v
              (id :: (try Hashtbl.find var_ptrs v with Not_found -> []))
          | _ -> ())
        old.S.ptrs;
      (* old projected call graph, per site *)
      let site_callees : (int, int list) Hashtbl.t = Hashtbl.create 256 in
      Hashtbl.iter
        (fun k () ->
          let site = k / old.S.n_methods and callee = k mod old.S.n_methods in
          Hashtbl.replace site_callees site
            (callee :: (try Hashtbl.find site_callees site with Not_found -> [])))
        old.S.call_edges_proj;
      (* outer fixpoint: dirty methods -> dirty pointers -> guaranteed
         reachability -> possibly-unreachable methods -> dirty methods *)
      let dm = Bits.copy d.dirty_seed in
      let final = ref None in
      while !final = None do
        let dobj = Bits.create () in
        Interner.iteri
          (fun o (_, site) ->
            if Bits.mem dm (Ir.alloc op site).Ir.a_method then
              ignore (Bits.add dobj o))
          old.S.objs;
        let dirtyp = Bits.create () in
        let q = Queue.create () in
        let mark p =
          let p = S.canon old p in
          if Bits.add dirtyp p then Queue.push p q
        in
        let mark_var v =
          match Hashtbl.find_opt var_ptrs v with
          | Some l -> List.iter mark l
          | None -> ()
        in
        let mark_callee_params callee =
          let m = Ir.metho op callee in
          (match m.Ir.m_this with Some th -> mark_var th | None -> ());
          Array.iter mark_var m.Ir.m_params
        in
        (* seeds: pointers and heap nodes of dirty methods *)
        Interner.iteri
          (fun id desc ->
            match desc with
            | S.PVar (_, v) ->
              if Bits.mem dm (Ir.var op v).Ir.v_method then mark id
            | S.PField (o, _) | S.PArr o -> if Bits.mem dobj o then mark id
            | S.PStatic _ -> ())
          old.S.ptrs;
        (* virtual sites whose dispatch key names an added/removed method:
           dispatch may change, so the call's lhs and every old callee's
           this/params are suspect (reachability is handled by NR, which
           re-dispatches on the new class table) *)
        if Hashtbl.length d.vt_names > 0 then
          Array.iter
            (fun (cs : Ir.call_site) ->
              if
                cs.Ir.cs_kind = Ir.Virtual
                && Hashtbl.mem d.vt_names (Ir.metho op cs.Ir.cs_target).Ir.m_name
              then begin
                (match cs.Ir.cs_lhs with Some l -> mark_var l | None -> ());
                match Hashtbl.find_opt site_callees cs.Ir.cs_id with
                | Some callees -> List.iter mark_callee_params callees
                | None -> ()
              end)
            op.Ir.calls;
        (* closure: follow PFG successors; replay watch rules in retraction
           direction (dirty watched pointer -> whatever the watch derived) *)
        let drain () =
          while not (Queue.is_empty q) do
            let p = Queue.pop q in
            List.iter (fun (e : S.edge) -> mark e.S.e_dst) (S.succs old p);
            List.iter
              (fun (w : S.watch) ->
                match w with
                | S.WLoad { lhs; _ } | S.WALoad { lhs; _ } -> mark_var lhs
                | S.WStore { fld; _ } ->
                  Bits.iter
                    (fun o ->
                      if S.obj_class old o <> None then
                        match
                          Interner.find_opt old.S.ptrs (S.PField (o, fld))
                        with
                        | Some fp -> mark fp
                        | None -> ())
                    (S.pts old p)
                | S.WAStore _ ->
                  Bits.iter
                    (fun o ->
                      match Interner.find_opt old.S.ptrs (S.PArr o) with
                      | Some ap -> mark ap
                      | None -> ())
                    (S.pts old p)
                | S.WInvoke { site; _ } -> (
                  let cs = Ir.call op site in
                  (match cs.Ir.cs_lhs with Some l -> mark_var l | None -> ());
                  match Hashtbl.find_opt site_callees site with
                  | Some callees -> List.iter mark_callee_params callees
                  | None -> ()))
              (Vec.get old.S.watches p)
          done
        in
        incr rounds;
        drain ();
        (match hook with
        | None -> ()
        | Some h ->
          let again = ref true in
          while !again do
            incr rounds;
            h
              ~dirty_ptr:(fun p -> Bits.mem dirtyp (S.canon old p))
              ~dirty_obj:(fun o -> Bits.mem dobj o)
              ~dirty_meth:(fun m -> Bits.mem dm m)
              ~mark;
            if Queue.is_empty q then again := false else drain ()
          done);
        (* NR: guaranteed-reachable methods of the new program *)
        let nr = Bits.create () in
        ignore (Bits.add nr np.Ir.main);
        let obj_translatable o =
          let _, site = Interner.get old.S.objs o in
          let a = Ir.alloc op site in
          (not (Bits.mem dm a.Ir.a_method))
          && d.alloc_map.(site) >= 0
          &&
          let nm = d.meth_map.(a.Ir.a_method) in
          nm >= 0 && Bits.mem nr nm
        in
        let clean_recv_pts (r : Ir.var_id) : Bits.t option =
          (* receiver pointer of an *old* site, if provably unchanged *)
          match Interner.find_opt old.S.ptrs (S.PVar (0, r)) with
          | Some rp when not (Bits.mem dirtyp (S.canon old rp)) ->
            Some (S.pts old rp)
          | _ -> None
        in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun m ->
              let mm = Ir.metho np m in
              let om = if m < Array.length d.meth_rmap then d.meth_rmap.(m) else -1 in
              let m_clean = om >= 0 && not (Bits.mem dm om) in
              Ir.iter_method_stmts
                (fun s ->
                  match s with
                  | Ir.Invoke { kind = Ir.Static; target; _ } ->
                    if Bits.add nr target then changed := true
                  | Ir.Invoke { kind = Ir.Virtual | Ir.Special; site; target; args; _ }
                    when m_clean && d.call_rmap.(site) >= 0 -> (
                    let ocs = Ir.call op d.call_rmap.(site) in
                    match ocs.Ir.cs_recv with
                    | None -> ()
                    | Some r -> (
                      match clean_recv_pts r with
                      | None -> ()
                      | Some pts ->
                        Bits.iter
                          (fun o ->
                            if obj_translatable o then
                              let callee =
                                match ocs.Ir.cs_kind with
                                | Ir.Special -> Some target
                                | Ir.Virtual -> (
                                  match S.obj_class old o with
                                  | Some ocls ->
                                    Ir.dispatch np d.class_map.(ocls)
                                      (Ir.metho np target).Ir.m_name
                                  | None -> None)
                                | Ir.Static -> None
                              in
                              match callee with
                              | Some callee
                                when Array.length (Ir.metho np callee).Ir.m_params
                                     = Array.length args ->
                                if Bits.add nr callee then changed := true
                              | _ -> ())
                          pts))
                  | _ -> ())
                mm)
            (Bits.to_list nr)
        done;
        (* methods that may have lost reachability become dirty; iterate *)
        let grew = ref false in
        Bits.iter
          (fun om ->
            let nm = if om < Array.length d.meth_map then d.meth_map.(om) else -1 in
            if (nm < 0 || not (Bits.mem nr nm)) && Bits.add dm om then
              grew := true)
          old.S.reached_methods;
        if not !grew then final := Some (dirtyp, dobj, nr)
      done;
      let dirtyp, dobj, nr =
        match !final with Some x -> x | None -> assert false
      in
      let info =
        {
          i_mode = `Incremental;
          i_reason = "";
          i_dirty_methods = Bits.cardinal dm;
          i_dirty_ptrs = Bits.cardinal dirtyp;
          i_preloaded = 0;
          i_retracted = 0;
          i_rounds = !rounds;
          i_reuse = 0.;
        }
      in
      let preseed (nt : S.t) =
        let entry_new = Interner.intern nt.S.ctxs [] in
        (* old object -> new object id (or -1), memoized *)
        let obj_tr : (int, int) Hashtbl.t = Hashtbl.create 1024 in
        let tr_obj o =
          match Hashtbl.find_opt obj_tr o with
          | Some r -> r
          | None ->
            let r =
              if Bits.mem dobj o then -1
              else
                let _, site = Interner.get old.S.objs o in
                let a = Ir.alloc op site in
                if Bits.mem dm a.Ir.a_method || d.alloc_map.(site) < 0 then -1
                else
                  let nm = d.meth_map.(a.Ir.a_method) in
                  if nm < 0 || not (Bits.mem nr nm) then -1
                  else S.intern_obj nt ~hctx:entry_new ~site:d.alloc_map.(site)
            in
            Hashtbl.add obj_tr o r;
            r
        in
        (* representative set -> translated set, memoized (clean absorbed
           members all transplant their representative's set) *)
        let set_tr : (int, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
        let tr_set rep =
          match Hashtbl.find_opt set_tr rep with
          | Some s -> s
          | None ->
            let out = Bits.create () in
            Bits.iter
              (fun o ->
                let o' = tr_obj o in
                if o' >= 0 then ignore (Bits.add out o'))
              (Vec.get old.S.pts rep);
            Hashtbl.add set_tr rep out;
            out
        in
        let preloaded = ref 0 and total = ref 0 in
        Interner.iteri
          (fun pid desc ->
            let rep = S.canon old pid in
            let sz = Bits.cardinal (Vec.get old.S.pts rep) in
            total := !total + sz;
            if sz > 0 && not (Bits.mem dirtyp rep) then begin
              let dst =
                match desc with
                | S.PVar (_, v) ->
                  let v' = d.var_map.(v) in
                  if v' < 0 then None
                  else
                    let nm = d.meth_map.((Ir.var op v).Ir.v_method) in
                    if nm >= 0 && Bits.mem nr nm then
                      Some (S.ptr_var nt ~ctx:entry_new v')
                    else None
                | S.PField (o, fld) ->
                  let o' = tr_obj o and f' = d.field_map.(fld) in
                  if o' >= 0 && f' >= 0 then
                    Some (S.ptr_field nt ~obj:o' ~fld:f')
                  else None
                | S.PArr o ->
                  let o' = tr_obj o in
                  if o' >= 0 then Some (S.ptr_arr nt ~obj:o') else None
                | S.PStatic fld ->
                  let f' = d.field_map.(fld) in
                  if f' >= 0 then Some (S.ptr_static nt ~fld:f') else None
              in
              match dst with
              | Some dp ->
                let s = tr_set rep in
                preloaded := !preloaded + Bits.cardinal s;
                S.seed ~why:"inc" nt dp s
              | None -> ()
            end)
          old.S.ptrs;
        info.i_preloaded <- !preloaded;
        info.i_retracted <- !total - !preloaded;
        info.i_reuse <-
          (if !total = 0 then 1. else float_of_int !preloaded /. float_of_int !total)
      in
      Preseed (preseed, info)
    end
  end

(* ----------------------------------------------------------- telemetry *)

(** Publish the update's telemetry as [inc_*] metrics on a solver registry
    (so they ride along in snapshots and outcome JSON). *)
let record (reg : Registry.t) (i : info) =
  Registry.incr ~by:i.i_dirty_methods (Registry.counter reg "inc_dirty_methods");
  Registry.incr ~by:i.i_dirty_ptrs (Registry.counter reg "inc_dirty_ptrs");
  Registry.incr ~by:i.i_preloaded (Registry.counter reg "inc_preloaded");
  Registry.incr ~by:i.i_retracted (Registry.counter reg "inc_retracted");
  Registry.incr ~by:i.i_rounds (Registry.counter reg "inc_rounds");
  Registry.set (Registry.gauge reg "inc_reuse_pct") (100. *. i.i_reuse)

let info_json (i : info) : (string * Csc_obs.Json.t) list =
  let open Csc_obs.Json in
  [
    ("mode", Str (match i.i_mode with `Incremental -> "incremental" | `Fresh -> "fresh"));
    ("reason", Str i.i_reason);
    ("dirty_methods", Int i.i_dirty_methods);
    ("dirty_ptrs", Int i.i_dirty_ptrs);
    ("preloaded", Int i.i_preloaded);
    ("retracted", Int i.i_retracted);
    ("rounds", Int i.i_rounds);
    ("reuse_pct", Float (100. *. i.i_reuse));
  ]

(** The pointer-analysis engine (the "Tai-e analog" of DESIGN.md S4).

    A worklist-driven Andersen-style solver over an explicit pointer flow
    graph (PFG), with on-the-fly call-graph construction. It is parameterized
    by a {!Context.t} selector — the empty selector gives the
    context-insensitive analysis — and by an optional {!type-plugin} through
    which Cut-Shortcut observes the analysis and manipulates the PFG
    (cutting = refusing edges before they are added, shortcutting = adding
    extra edges), exactly as in Figure 7 of the paper. *)

open Csc_common
module Ir = Csc_ir.Ir
module Registry = Csc_obs.Registry
module Snapshot = Csc_obs.Snapshot
module Prov = Csc_obs.Provenance
module Trace = Csc_obs.Trace

(* ------------------------------------------------------------- pointers *)

type ptr_desc =
  | PVar of int * Ir.var_id        (** context id, variable *)
  | PField of int * Ir.field_id    (** abstract object id, instance field *)
  | PArr of int                    (** abstract object id: its array cells *)
  | PStatic of Ir.field_id

type edge_kind =
  | KNormal
  | KReturn of Ir.method_id  (** return edge out of this callee *)
  | KShortcut

type edge = { e_dst : int; e_filter : Ir.typ option; e_kind : edge_kind }

(* --------------------------------------------------------------- plugin *)

type plugin = {
  pl_name : string;
  pl_on_reachable : Ir.method_id -> unit;
      (** a method became reachable (first time, any context) *)
  pl_on_call_edge : Ir.call_id -> Ir.method_id -> unit;
      (** a (site, callee) call edge appeared (first time, any context) *)
  pl_on_new_pts : int -> Bits.t -> unit;
      (** pointer id, delta of newly added objects *)
  pl_on_edge : src:int -> edge -> unit;
      (** a PFG edge was added *)
  pl_is_cut_store : base:Ir.var_id -> fld:Ir.field_id -> rhs:Ir.var_id -> bool;
      (** [cutStores]: refuse the store edges of this statement *)
  pl_is_cut_return : Ir.method_id -> bool;
      (** [cutReturns]: refuse return edges out of this callee *)
}

let no_plugin : plugin =
  {
    pl_name = "none";
    pl_on_reachable = (fun _ -> ());
    pl_on_call_edge = (fun _ _ -> ());
    pl_on_new_pts = (fun _ _ -> ());
    pl_on_edge = (fun ~src:_ _ -> ());
    pl_is_cut_store = (fun ~base:_ ~fld:_ ~rhs:_ -> false);
    pl_is_cut_return = (fun _ -> false);
  }

(* -------------------------------------------------------------- watches *)

type watch =
  | WLoad of { ctx : int; lhs : Ir.var_id; fld : Ir.field_id }
  | WStore of { ctx : int; fld : Ir.field_id; rhs : Ir.var_id }
  | WALoad of { ctx : int; lhs : Ir.var_id }
  | WAStore of { ctx : int; rhs : Ir.var_id }
  | WInvoke of { ctx : int; site : Ir.call_id }

(* ---------------------------------------------------------------- state *)

type t = {
  prog : Ir.program;
  sel : Context.t;
  mutable plugin : plugin;
  budget : Timer.budget;
  (* interners *)
  ctxs : int list Interner.t;
  objs : (int * Ir.alloc_id) Interner.t;  (* (hctx, site) *)
  ptrs : ptr_desc Interner.t;
  (* per-pointer tables *)
  pts : Bits.t Vec.t;
  succs : edge list Vec.t;
  edge_seen : (int * int, unit) Hashtbl.t;
  watches : watch list Vec.t;
  (* worklist *)
  wl : (int * Bits.t) Queue.t;
  (* reachability / call graph *)
  reached : (int * Ir.method_id, unit) Hashtbl.t;
  reached_methods : Bits.t;
  call_edges : (int * Ir.call_id * int * Ir.method_id, unit) Hashtbl.t;
  call_edges_proj : (Ir.call_id * Ir.method_id, unit) Hashtbl.t;
  (* observability: the registry owns all engine metrics; the handles below
     are direct-mutation aliases so hot-path updates cost a field write *)
  reg : Registry.t;
  c_ptrs : Registry.counter;
  c_edges : Registry.counter;
  c_prop : Registry.counter;        (* total objects propagated *)
  c_call_edges : Registry.counter;  (* context-full call edges *)
  c_reach_ctx : Registry.counter;   (* (ctx, method) pairs *)
  g_time : Registry.gauge;
  g_heap : Registry.gauge;          (* peak major-heap words observed *)
  mutable prov : Prov.t option;     (* opt-in derivation recorder *)
}

exception Timeout

let log_src = Logs.Src.create "csc.solver" ~doc:"pointer analysis solver"

module Log = (val Logs.src_log log_src)

let create ?(budget = Timer.no_budget) ?(sel = Context.ci) (prog : Ir.program) : t
    =
  let reg = Registry.create () in
  {
    prog;
    sel;
    plugin = no_plugin;
    budget;
    ctxs = Interner.create [];
    objs = Interner.create (-1, -1);
    ptrs = Interner.create (PStatic (-1));
    pts = Vec.create (Bits.create ());
    succs = Vec.create [];
    edge_seen = Hashtbl.create 4096;
    watches = Vec.create [];
    wl = Queue.create ();
    reached = Hashtbl.create 256;
    reached_methods = Bits.create ();
    call_edges = Hashtbl.create 1024;
    call_edges_proj = Hashtbl.create 1024;
    reg;
    c_ptrs = Registry.counter reg "ptrs";
    c_edges = Registry.counter reg "pfg_edges";
    c_prop = Registry.counter reg "propagated";
    c_call_edges = Registry.counter reg "cs_call_edges";
    c_reach_ctx = Registry.counter reg "ctx_methods";
    g_time = Registry.gauge reg "time_s";
    g_heap = Registry.gauge reg "heap_words_peak";
    prov = None;
  }

let set_plugin t p = t.plugin <- p

(** Start recording derivations. Must be called before {!run} to get complete
    chains; idempotent. *)
let enable_provenance t =
  if t.prov = None then t.prov <- Some (Prov.create ())

let provenance t = t.prov

(* environment handed to context selectors *)
let env_of t : Context.env =
  {
    prog = t.prog;
    ctx_elems = (fun c -> Interner.get t.ctxs c);
    intern_ctx = (fun l -> Interner.intern t.ctxs l);
    obj_alloc = (fun o -> snd (Interner.get t.objs o));
    obj_hctx = (fun o -> fst (Interner.get t.objs o));
  }

(* ------------------------------------------------------------ accessors *)

let intern_ptr t d : int =
  let n_before = Interner.count t.ptrs in
  let id = Interner.intern t.ptrs d in
  if Interner.count t.ptrs > n_before then begin
    Vec.push t.pts (Bits.create ~capacity:8 ());
    Vec.push t.succs [];
    Vec.push t.watches [];
    Registry.incr t.c_ptrs
  end;
  id

let ptr_var t ~ctx v = intern_ptr t (PVar (ctx, v))
let ptr_field t ~obj ~fld = intern_ptr t (PField (obj, fld))
let ptr_arr t ~obj = intern_ptr t (PArr obj)
let ptr_static t ~fld = intern_ptr t (PStatic fld)

let pts t p = Vec.get t.pts p
let succs t p = Vec.get t.succs p
let ptr_desc t p = Interner.get t.ptrs p

let intern_obj t ~hctx ~site : int = Interner.intern t.objs (hctx, site)
let obj_alloc t o = snd (Interner.get t.objs o)
let obj_hctx t o = fst (Interner.get t.objs o)

(** Object's runtime class, [None] for arrays. *)
let obj_class t o = Ir.alloc_class t.prog (obj_alloc t o)

let obj_typ t o = Ir.alloc_typ t.prog (obj_alloc t o)

let filter_delta t (filter : Ir.typ option) (delta : Bits.t) : Bits.t =
  match filter with
  | None -> delta
  | Some ty ->
    let out = Bits.create () in
    Bits.iter
      (fun o -> if Ir.subtype t.prog (obj_typ t o) ty then ignore (Bits.add out o))
      delta;
    out

let wl_push t p (objs : Bits.t) =
  if not (Bits.is_empty objs) then Queue.push (p, objs) t.wl

let via_of_kind = function
  | KNormal -> "flow"
  | KReturn _ -> "return"
  | KShortcut -> "shortcut"

(* record a flow derivation for every object about to be pushed to [dst];
   a single branch when provenance is off *)
let prov_flow t ~src ~dst kind (objs : Bits.t) =
  match t.prov with
  | None -> ()
  | Some pr ->
    let via = via_of_kind kind in
    Bits.iter (fun o -> Prov.record_flow pr ~ptr:dst ~obj:o ~src ~via) objs

(** Add an edge src->dst to the PFG; existing points-to facts of [src] flow
    immediately. No-op if the edge exists. *)
let add_edge ?(kind = KNormal) ?filter t ~src ~dst =
  if src <> dst && not (Hashtbl.mem t.edge_seen (src, dst)) then begin
    Hashtbl.add t.edge_seen (src, dst) ();
    let e = { e_dst = dst; e_filter = filter; e_kind = kind } in
    Vec.set t.succs src (e :: Vec.get t.succs src);
    Registry.incr t.c_edges;
    t.plugin.pl_on_edge ~src e;
    let cur = pts t src in
    if not (Bits.is_empty cur) then begin
      let d = filter_delta t filter cur in
      prov_flow t ~src ~dst kind d;
      wl_push t dst d
    end
  end

let seed ?(why = "seed") t p (objs : Bits.t) =
  (match t.prov with
  | None -> ()
  | Some pr ->
    Bits.iter (fun o -> Prov.record_seed pr ~ptr:p ~obj:o ~label:why) objs);
  wl_push t p objs

let seed1 ?(why = "seed") t p o =
  (match t.prov with
  | None -> ()
  | Some pr -> Prov.record_seed pr ~ptr:p ~obj:o ~label:why);
  let b = Bits.create () in
  ignore (Bits.add b o);
  wl_push t p b

(* --------------------------------------------------- reachable methods *)

let add_watch t p w =
  Vec.set t.watches p (w :: Vec.get t.watches p)

let rec add_reachable t ~ctx ~(mid : Ir.method_id) =
  if not (Hashtbl.mem t.reached (ctx, mid)) then begin
    Hashtbl.add t.reached (ctx, mid) ();
    Registry.incr t.c_reach_ctx;
    (* context-explosion cascades can spend a long time inside one worklist
       iteration; keep the budget honest here too *)
    if Registry.value t.c_reach_ctx land 255 = 0 then Timer.check t.budget;
    if Bits.add t.reached_methods mid then t.plugin.pl_on_reachable mid;
    let m = Ir.metho t.prog mid in
    Ir.iter_stmts (process_stmt t ~ctx) m.m_body
  end

and process_stmt t ~ctx (s : Ir.stmt) =
  let pv v = ptr_var t ~ctx v in
  match s with
  | New { lhs; site; _ } | NewArray { lhs; site; _ } | StrConst { lhs; site; _ }
    ->
    let hctx = t.sel.sel_heap_ctx (env_of t) ~mctx:ctx ~site in
    let o = intern_obj t ~hctx ~site in
    seed1 ~why:"alloc" t (pv lhs) o
  | Copy { lhs; rhs } ->
    if Ir.is_ref_type (Ir.var t.prog rhs).v_ty || Ir.is_ref_type (Ir.var t.prog lhs).v_ty
    then add_edge t ~src:(pv rhs) ~dst:(pv lhs)
  | Cast { lhs; ty; rhs; _ } -> add_edge ~filter:ty t ~src:(pv rhs) ~dst:(pv lhs)
  | Load { lhs; base; fld } ->
    let bp = pv base in
    add_watch t bp (WLoad { ctx; lhs; fld });
    process_watch t (WLoad { ctx; lhs; fld }) (pts t bp)
  | Store { base; fld; rhs } ->
    if not (t.plugin.pl_is_cut_store ~base ~fld ~rhs) then begin
      let bp = pv base in
      add_watch t bp (WStore { ctx; fld; rhs });
      process_watch t (WStore { ctx; fld; rhs }) (pts t bp)
    end
  | ALoad { lhs; arr; _ } ->
    let ap = pv arr in
    add_watch t ap (WALoad { ctx; lhs });
    process_watch t (WALoad { ctx; lhs }) (pts t ap)
  | AStore { arr; rhs; _ } ->
    let ap = pv arr in
    add_watch t ap (WAStore { ctx; rhs });
    process_watch t (WAStore { ctx; rhs }) (pts t ap)
  | SLoad { lhs; fld } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(ptr_static t ~fld) ~dst:(pv lhs)
  | SStore { fld; rhs } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(pv rhs) ~dst:(ptr_static t ~fld)
  | Invoke { kind = Static; target; site; _ } ->
    let cctx =
      t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site ~recv:None
        ~callee:target
    in
    add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee:target
      ~recv_obj:None
  | Invoke { kind = Virtual | Special; recv; site; _ } -> (
    match recv with
    | Some r ->
      let rp = pv r in
      add_watch t rp (WInvoke { ctx; site });
      process_watch t (WInvoke { ctx; site }) (pts t rp)
    | None -> ())
  | Return _ | If _ | While _ | Print _ | Nop | ConstInt _ | ConstBool _
  | ConstNull _ | Binop _ | Unop _ | ALen _ | InstanceOf _ ->
    ()

and process_watch t (w : watch) (delta : Bits.t) =
  if not (Bits.is_empty delta) then
    match w with
    | WLoad { ctx; lhs; fld } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_field t ~obj:o ~fld) ~dst:(ptr_var t ~ctx lhs))
        delta
    | WStore { ctx; fld; rhs } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_field t ~obj:o ~fld))
        delta
    | WALoad { ctx; lhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_arr t ~obj:o) ~dst:(ptr_var t ~ctx lhs)
          | _ -> ())
        delta
    | WAStore { ctx; rhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_arr t ~obj:o)
          | _ -> ())
        delta
    | WInvoke { ctx; site } ->
      let cs = Ir.call t.prog site in
      Bits.iter
        (fun o ->
          let callee =
            match cs.cs_kind with
            | Special -> Some cs.cs_target
            | Static -> None (* unreachable: statics have no receiver watch *)
            | Virtual -> (
              match obj_class t o with
              | Some cls ->
                Ir.dispatch t.prog cls (Ir.metho t.prog cs.cs_target).m_name
              | None -> None)
          in
          match callee with
          | Some callee
            when Array.length (Ir.metho t.prog callee).m_params
                 = Array.length cs.cs_args ->
            let cctx =
              t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site
                ~recv:(Some o) ~callee
            in
            add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee
              ~recv_obj:(Some o)
          | _ -> ())
        delta

and add_call_edge t ~caller_ctx ~site ~callee_ctx ~callee ~recv_obj =
  let key = (caller_ctx, site, callee_ctx, callee) in
  let first_full = not (Hashtbl.mem t.call_edges key) in
  if first_full then begin
    Hashtbl.add t.call_edges key ();
    Registry.incr t.c_call_edges;
    if not (Hashtbl.mem t.call_edges_proj (site, callee)) then begin
      Hashtbl.add t.call_edges_proj (site, callee) ();
      (match t.prov with
      | None -> ()
      | Some pr -> Prov.record_call pr ~site ~callee ~recv:recv_obj);
      t.plugin.pl_on_call_edge site callee
    end;
    add_reachable t ~ctx:callee_ctx ~mid:callee;
    let cs = Ir.call t.prog site in
    let m = Ir.metho t.prog callee in
    (* arguments *)
    Array.iteri
      (fun i arg ->
        if Ir.is_ref_type (Ir.var t.prog arg).v_ty then
          add_edge t
            ~src:(ptr_var t ~ctx:caller_ctx arg)
            ~dst:(ptr_var t ~ctx:callee_ctx m.m_params.(i)))
      cs.cs_args;
    (* return edge, unless cut *)
    (match (cs.cs_lhs, m.m_ret_var) with
    | Some lhs, Some rv when Ir.is_ref_type (Ir.var t.prog rv).v_ty ->
      if not (t.plugin.pl_is_cut_return callee) then
        add_edge ~kind:(KReturn callee) t
          ~src:(ptr_var t ~ctx:callee_ctx rv)
          ~dst:(ptr_var t ~ctx:caller_ctx lhs)
    | _ -> ())
  end;
  (* the triggering receiver flows to `this` even on a repeat edge *)
  match (recv_obj, (Ir.metho t.prog callee).m_this) with
  | Some o, Some this -> seed1 ~why:"receiver" t (ptr_var t ~ctx:callee_ctx this) o
  | _ -> ()

(* ------------------------------------------------------------ main loop *)

let sample_heap t =
  let st = Gc.quick_stat () in
  Registry.set_max t.g_heap (float_of_int st.Gc.heap_words);
  Trace.sample_gc ()

let run_loop (t : t) : unit =
  let t0 = Timer.now () in
  let entry_ctx = Interner.intern t.ctxs [] in
  let iter = ref 0 in
  (try
     Timer.check t.budget;
     add_reachable t ~ctx:entry_ctx ~mid:t.prog.main;
     while not (Queue.is_empty t.wl) do
       incr iter;
       if !iter land 255 = 0 then begin
         Timer.check t.budget;
         if !iter land 4095 = 0 then sample_heap t
       end;
       let p, objs = Queue.pop t.wl in
       let cur = pts t p in
       match Bits.union_into ~into:cur objs with
       | None -> ()
       | Some delta ->
         Registry.incr ~by:(Bits.cardinal delta) t.c_prop;
         (* flow along PFG edges *)
         List.iter
           (fun e ->
             let d = filter_delta t e.e_filter delta in
             prov_flow t ~src:p ~dst:e.e_dst e.e_kind d;
             wl_push t e.e_dst d)
           (succs t p);
         (* statement watches *)
         List.iter (fun w -> process_watch t w delta) (Vec.get t.watches p);
         t.plugin.pl_on_new_pts p delta
     done
   with Timer.Out_of_budget ->
     Registry.set t.g_time (Timer.now () -. t0);
     sample_heap t;
     Log.info (fun m ->
         m "%s+%s: out of budget after %.1fs (%d ctx-methods, %d edges)"
           t.sel.sel_name t.plugin.pl_name
           (Registry.gauge_value t.g_time)
           (Registry.value t.c_reach_ctx)
           (Registry.value t.c_edges));
     raise Timeout);
  Registry.set t.g_time (Timer.now () -. t0);
  sample_heap t;
  Log.info (fun m ->
      m "%s+%s: done in %.3fs (%d methods, %d ptrs, %d pfg edges, %d props)"
        t.sel.sel_name t.plugin.pl_name
        (Registry.gauge_value t.g_time)
        (Bits.cardinal t.reached_methods)
        (Registry.value t.c_ptrs) (Registry.value t.c_edges)
        (Registry.value t.c_prop))

let run (t : t) : unit =
  Trace.with_span ~cat:"solver"
    ("solve:" ^ t.sel.sel_name ^ "+" ^ t.plugin.pl_name)
    (fun () -> run_loop t)

(* --------------------------------------------------------------- results *)

(** Context-projected analysis results, shared with the Datalog engine so the
    precision clients are engine-agnostic. *)
type result = {
  r_name : string;
  r_time : float;
  r_reach : Bits.t;                               (** reachable methods *)
  r_edges : (Ir.call_id * Ir.method_id) list;     (** projected call edges *)
  r_pt : Ir.var_id -> Bits.t;                     (** var -> alloc sites *)
  r_snapshot : Snapshot.t;                        (** structured engine metrics *)
}

(** Freeze the engine metrics; callable at any time, including after a
    {!Timeout} (the driver attaches the aborted-state snapshot to timed-out
    outcomes). *)
let snapshot (t : t) : Snapshot.t =
  let s = Registry.snapshot t.reg in
  match t.prov with
  | None -> s
  | Some pr -> Snapshot.with_counter s "prov_records" (Prov.size pr)

let result (t : t) : result =
  (* project pointer facts onto variables, merging contexts and abstracting
     objects to their allocation sites *)
  let var_pt : (Ir.var_id, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
  Interner.iteri
    (fun p desc ->
      match desc with
      | PVar (_, v) ->
        let tgt =
          match Hashtbl.find_opt var_pt v with
          | Some b -> b
          | None ->
            let b = Bits.create () in
            Hashtbl.add var_pt v b;
            b
        in
        Bits.iter (fun o -> ignore (Bits.add tgt (obj_alloc t o))) (pts t p)
      | _ -> ())
    t.ptrs;
  let empty = Bits.create () in
  {
    r_name =
      (if t.plugin.pl_name = "none" then t.sel.sel_name
       else t.sel.sel_name ^ "+" ^ t.plugin.pl_name);
    r_time = Registry.gauge_value t.g_time;
    r_reach = Bits.copy t.reached_methods;
    r_edges = Hashtbl.fold (fun k () acc -> k :: acc) t.call_edges_proj [];
    r_pt =
      (fun v -> match Hashtbl.find_opt var_pt v with Some b -> b | None -> empty);
    r_snapshot = snapshot t;
  }

(* ------------------------------------------------------- explain helpers *)

let iter_ptrs t f = Interner.iteri f t.ptrs

let ptr_to_string t p =
  match ptr_desc t p with
  | PVar (ctx, v) ->
    let vr = Ir.var t.prog v in
    let m = Ir.method_name t.prog vr.v_method in
    if ctx = Interner.intern t.ctxs [] then Printf.sprintf "%s.%s" m vr.v_name
    else Printf.sprintf "%s.%s@ctx%d" m vr.v_name ctx
  | PField (o, fld) ->
    Printf.sprintf "obj#%d.%s" o (Ir.field t.prog fld).f_name
  | PArr o -> Printf.sprintf "obj#%d[*]" o
  | PStatic fld ->
    let f = Ir.field t.prog fld in
    Printf.sprintf "%s.%s" (Ir.class_name t.prog f.f_class) f.f_name

let obj_to_string t o =
  let site = obj_alloc t o in
  let a = Ir.alloc t.prog site in
  Fmt.str "obj#%d(new %a in %s)" o (Ir.pp_typ t.prog)
    (Ir.alloc_typ t.prog site)
    (Ir.method_name t.prog a.a_method)

(** Render the derivation chain of [(ptr, obj)], one step per line, ending in
    the seed event that introduced the object. Empty when provenance was not
    enabled or the fact does not hold. *)
let explain_chain t ~ptr ~obj : string list =
  match t.prov with
  | None -> []
  | Some pr ->
    List.map
      (fun (p, r) ->
        match r with
        | Prov.Seed { label } ->
          Printf.sprintf "%s <- %s  [%s]" (ptr_to_string t p)
            (obj_to_string t obj) label
        | Prov.Flow { src; via } ->
          Printf.sprintf "%s <- %s  [%s]" (ptr_to_string t p)
            (ptr_to_string t src) via)
      (Prov.chain pr ~ptr ~obj)

(** Run an analysis end to end. Raises {!Timeout} if the budget expires. *)
let analyze ?budget ?sel ?plugin_of (prog : Ir.program) : t =
  let t = create ?budget ?sel prog in
  (match plugin_of with Some f -> set_plugin t (f t) | None -> ());
  run t;
  t

(** The pointer-analysis engine (the "Tai-e analog" of DESIGN.md S4).

    A worklist-driven Andersen-style solver over an explicit pointer flow
    graph (PFG), with on-the-fly call-graph construction. It is parameterized
    by a {!Context.t} selector — the empty selector gives the
    context-insensitive analysis — and by an optional {!type-plugin} through
    which Cut-Shortcut observes the analysis and manipulates the PFG
    (cutting = refusing edges before they are added, shortcutting = adding
    extra edges), exactly as in Figure 7 of the paper.

    The propagation core runs three cooperating optimizations (DESIGN.md S8):

    - {b Online cycle collapsing.} PFG cycles made only of unfiltered
      {!KNormal} edges are semantic equivalence classes: at fixpoint every
      member holds the same points-to set. A union-find ({!Csc_common.Uf})
      merges such cycles online into one representative whose
      pts/succs/watches are the union of the members'; every later lookup is
      redirected through [find]. Cycles are found two ways: lazily, when a
      propagation along a collapsible edge turns out fully redundant (the
      classic LCD trigger), and by a periodic Tarjan sweep over the whole
      graph. Filtered (cast) edges, return edges and shortcut edges are never
      collapsed across — their endpoints are not equivalent. When a class is
      merged the united set re-enters the worklist as one delta against an
      emptied representative, so every merged watch, successor and plugin
      subscription observes exactly the union (idempotent for whatever it
      had already seen).
    - {b Coalescing worklist.} Instead of a FIFO of [(ptr, delta)] pairs, a
      per-pointer pending-delta table plus a dirty set: N pushes to the same
      pointer merge into one entry processed once per round. FIFO order of
      first-dirtying is kept for determinism; drained delta sets are
      recycled through a spare list, so steady-state pushes allocate
      nothing.
    - {b Unboxed hot keys.} Edge dedup, reachability and call-edge
      projection use packed-int keys over the dense interned ids instead of
      boxed tuples, so the hot-path [Hashtbl] lookups hash an immediate
      int. *)

open Csc_common
module Ir = Csc_ir.Ir
module Registry = Csc_obs.Registry
module Snapshot = Csc_obs.Snapshot
module Prov = Csc_obs.Provenance
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr

(* ------------------------------------------------------------- pointers *)

type ptr_desc =
  | PVar of int * Ir.var_id        (** context id, variable *)
  | PField of int * Ir.field_id    (** abstract object id, instance field *)
  | PArr of int                    (** abstract object id: its array cells *)
  | PStatic of Ir.field_id

type edge_kind =
  | KNormal
  | KReturn of Ir.method_id  (** return edge out of this callee *)
  | KShortcut

type edge = { e_dst : int; e_filter : Ir.typ option; e_kind : edge_kind }

(* --------------------------------------------------------------- plugin *)

type plugin = {
  pl_name : string;
  pl_on_reachable : Ir.method_id -> unit;
      (** a method became reachable (first time, any context) *)
  pl_on_call_edge : Ir.call_id -> Ir.method_id -> unit;
      (** a (site, callee) call edge appeared (first time, any context) *)
  pl_on_new_pts : int -> Bits.t -> unit;
      (** pointer id (always a representative), delta of newly added objects *)
  pl_on_edge : src:int -> edge -> unit;
      (** a PFG edge was added; [src] and [e_dst] are representatives *)
  pl_on_merge : rep:int -> other:int -> unit;
      (** cycle collapsing absorbed pointer [other] into representative
          [rep]; plugins keeping pointer-keyed state must migrate it *)
  pl_is_cut_store : base:Ir.var_id -> fld:Ir.field_id -> rhs:Ir.var_id -> bool;
      (** [cutStores]: refuse the store edges of this statement *)
  pl_is_cut_return : Ir.method_id -> bool;
      (** [cutReturns]: refuse return edges out of this callee *)
}

let no_plugin : plugin =
  {
    pl_name = "none";
    pl_on_reachable = (fun _ -> ());
    pl_on_call_edge = (fun _ _ -> ());
    pl_on_new_pts = (fun _ _ -> ());
    pl_on_edge = (fun ~src:_ _ -> ());
    pl_on_merge = (fun ~rep:_ ~other:_ -> ());
    pl_is_cut_store = (fun ~base:_ ~fld:_ ~rhs:_ -> false);
    pl_is_cut_return = (fun _ -> false);
  }

(* -------------------------------------------------------------- watches *)

type watch =
  | WLoad of { ctx : int; lhs : Ir.var_id; fld : Ir.field_id }
  | WStore of { ctx : int; fld : Ir.field_id; rhs : Ir.var_id }
  | WALoad of { ctx : int; lhs : Ir.var_id }
  | WAStore of { ctx : int; rhs : Ir.var_id }
  | WInvoke of { ctx : int; site : Ir.call_id }

(* ---------------------------------------------------------------- state *)

type t = {
  prog : Ir.program;
  sel : Context.t;
  mutable plugin : plugin;
  budget : Timer.budget;
  mutable collapse : bool;  (* online cycle collapsing enabled? *)
  n_methods : int;          (* key-packing radix for (ctx, method) pairs *)
  (* interners *)
  ctxs : int list Interner.t;
  objs : (int * Ir.alloc_id) Interner.t;  (* (hctx, site) *)
  ptrs : ptr_desc Interner.t;
  (* union-find over pointer ids; absorbed ids redirect to representatives *)
  uf : Uf.t;
  pinned : Bits.t;  (* pointers excluded from collapsing (see {!pin}) *)
  (* per-pointer tables (indexed by representative) *)
  pts : Bits.t Vec.t;
  succs : edge list Vec.t;
  edge_seen : (int, unit) Hashtbl.t;  (* packed (src lsl 31) lor dst *)
  watches : watch list Vec.t;
  (* coalescing worklist: per-pointer pending delta + dirty set + FIFO of
     first-dirtying; [empty_pending] is the shared "no pending" sentinel
     (compared physically), [spare] recycles drained deltas *)
  pending : Bits.t Vec.t;
  dirty : Bits.t;
  wl : int Queue.t;
  empty_pending : Bits.t;
  mutable spare : Bits.t list;
  (* cycle collapsing state *)
  mutable pending_collapse : int list list;  (* classes found mid-iteration *)
  lcd_done : (int, unit) Hashtbl.t;  (* packed (dst lsl 31) lor src tried *)
  (* reachability / call graph (packed-int keys) *)
  reached : (int, unit) Hashtbl.t;   (* ctx * n_methods + mid *)
  reached_methods : Bits.t;
  call_edges : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (site * n_methods + callee) -> {(caller_ctx lsl 31) lor callee_ctx} *)
  call_edges_proj : (int, unit) Hashtbl.t;  (* site * n_methods + callee *)
  (* observability: the registry owns all engine metrics; the handles below
     are direct-mutation aliases so hot-path updates cost a field write *)
  reg : Registry.t;
  c_ptrs : Registry.counter;
  c_edges : Registry.counter;
  c_prop : Registry.counter;        (* total objects propagated *)
  c_call_edges : Registry.counter;  (* context-full call edges *)
  c_reach_ctx : Registry.counter;   (* (ctx, method) pairs *)
  c_wl_pushes : Registry.counter;   (* non-empty worklist pushes *)
  c_wl_coalesced : Registry.counter;(* pushes merged into a pending entry *)
  c_cycles : Registry.counter;      (* cycles collapsed *)
  c_merged : Registry.counter;      (* pointer nodes merged away *)
  g_time : Registry.gauge;
  g_heap : Registry.gauge;          (* peak major-heap words observed *)
  mutable prov : Prov.t option;     (* opt-in derivation recorder *)
  mutable attr : Attr.t option;     (* opt-in cost-attribution tables *)
  (* heap words held by domains other than the sampling one. [Gc.quick_stat]
     reports the calling domain only on OCaml 5, so the parallel driver
     installs an aggregator over its workers' last samples; sequential runs
     keep the zero default *)
  mutable extra_heap_words : unit -> int;
  (* [--progress] heartbeat: 0. = off *)
  mutable progress_s : float;
  mutable last_progress : float;
}

exception Timeout

let log_src = Logs.Src.create "csc.solver" ~doc:"pointer analysis solver"

module Log = (val Logs.src_log log_src)

let create ?(budget = Timer.no_budget) ?(sel = Context.ci) ?(collapse = true)
    (prog : Ir.program) : t =
  let reg = Registry.create () in
  let empty_pending = Bits.create ~capacity:1 () in
  {
    prog;
    sel;
    plugin = no_plugin;
    budget;
    collapse;
    n_methods = Array.length prog.methods;
    ctxs = Interner.create [];
    objs = Interner.create (-1, -1);
    ptrs = Interner.create (PStatic (-1));
    uf = Uf.create ();
    pinned = Bits.create ();
    pts = Vec.create (Bits.create ());
    succs = Vec.create [];
    edge_seen = Hashtbl.create 4096;
    watches = Vec.create [];
    pending = Vec.create empty_pending;
    dirty = Bits.create ();
    wl = Queue.create ();
    empty_pending;
    spare = [];
    pending_collapse = [];
    lcd_done = Hashtbl.create 256;
    reached = Hashtbl.create 256;
    reached_methods = Bits.create ();
    call_edges = Hashtbl.create 1024;
    call_edges_proj = Hashtbl.create 1024;
    reg;
    c_ptrs = Registry.counter reg "ptrs";
    c_edges = Registry.counter reg "pfg_edges";
    c_prop = Registry.counter reg "propagated";
    c_call_edges = Registry.counter reg "cs_call_edges";
    c_reach_ctx = Registry.counter reg "ctx_methods";
    c_wl_pushes = Registry.counter reg "wl_pushes";
    c_wl_coalesced = Registry.counter reg "wl_coalesced";
    c_cycles = Registry.counter reg "cycles_collapsed";
    c_merged = Registry.counter reg "ptrs_merged";
    g_time = Registry.gauge reg "time_s";
    g_heap = Registry.gauge reg "heap_words_peak";
    prov = None;
    attr = None;
    extra_heap_words = (fun () -> 0);
    progress_s = 0.;
    last_progress = 0.;
  }

let set_plugin t p = t.plugin <- p

(** Start recording derivations. Must be called before {!run} to get complete
    chains; idempotent. Disables online cycle collapsing: derivation chains
    are reported in terms of original (pre-merge) pointer names, which only
    the uncollapsed graph preserves exactly. Returns [true] iff this call
    just turned collapsing off — callers surface that to the user instead of
    silently running slower. [max_records] caps the recorder's memory
    (default 1M facts; overflow counts into the [prov_dropped] counter of
    {!snapshot}). *)
let enable_provenance ?(max_records = 1_000_000) t =
  if t.prov = None then begin
    t.prov <- Some (Prov.create ~max_records ());
    let was_collapsing = t.collapse in
    t.collapse <- false;
    was_collapsing
  end
  else false

let provenance t = t.prov

(** Start cost attribution (per-method/per-pointer tables, delta histogram);
    must precede {!run} to cover the whole solve. Idempotent; unlike
    provenance it perturbs nothing, it only records. *)
let enable_attr t = if t.attr = None then t.attr <- Some (Attr.create ())

let attr t = t.attr

(** Emit a heartbeat line to stderr every [interval_s] seconds while
    solving. *)
let set_progress t interval_s =
  t.progress_s <- interval_s;
  t.last_progress <- Timer.now ()

(* environment handed to context selectors *)
let env_of t : Context.env =
  {
    prog = t.prog;
    ctx_elems = (fun c -> Interner.get t.ctxs c);
    intern_ctx = (fun l -> Interner.intern t.ctxs l);
    obj_alloc = (fun o -> snd (Interner.get t.objs o));
    obj_hctx = (fun o -> fst (Interner.get t.objs o));
  }

(* ------------------------------------------------------------ accessors *)

let intern_ptr t d : int =
  let n_before = Interner.count t.ptrs in
  let id = Interner.intern t.ptrs d in
  if Interner.count t.ptrs > n_before then begin
    Vec.push t.pts (Bits.create ~capacity:8 ());
    Vec.push t.succs [];
    Vec.push t.watches [];
    Vec.push t.pending t.empty_pending;
    Registry.incr t.c_ptrs
  end;
  id

let ptr_var t ~ctx v = intern_ptr t (PVar (ctx, v))
let ptr_field t ~obj ~fld = intern_ptr t (PField (obj, fld))
let ptr_arr t ~obj = intern_ptr t (PArr obj)
let ptr_static t ~fld = intern_ptr t (PStatic fld)

(** Representative of [p]'s collapsed class ([p] itself when uncollapsed).
    Every pointer-keyed query below redirects through this, so callers may
    freely hold stale ids. *)
let canon t p = Uf.find t.uf p

(** Exclude [p] from cycle collapsing from now on. Plugins pin pointers whose
    exact identity is semantically load-bearing — e.g. Cut-Shortcut's cut
    return variables, whose in-edge relay classification keys on the precise
    destination pointer. *)
let pin t p = ignore (Bits.add t.pinned (canon t p))

let pts t p = Vec.get t.pts (canon t p)
let succs t p = Vec.get t.succs (canon t p)
let ptr_desc t p = Interner.get t.ptrs p

let intern_obj t ~hctx ~site : int = Interner.intern t.objs (hctx, site)
let obj_alloc t o = snd (Interner.get t.objs o)
let obj_hctx t o = fst (Interner.get t.objs o)

(* owning method for cost attribution: variables belong to their declaring
   method, heap nodes to the allocating method, statics to none (-1) *)
let meth_of_ptr t p : int =
  match Interner.get t.ptrs p with
  | PVar (_, v) -> (Ir.var t.prog v).v_method
  | PField (o, _) | PArr o -> (Ir.alloc t.prog (obj_alloc t o)).a_method
  | PStatic _ -> -1

(* finalizing avalanche mixer (murmur3 fmix32) so consecutive method ids
   spread evenly across shards *)
let mix_int x =
  let x = x land max_int in
  let x = x lxor (x lsr 16) in
  let x = x * 0x85ebca6b land max_int in
  let x = x lxor (x lsr 13) in
  let x = x * 0xc2b2ae35 land max_int in
  x lxor (x lsr 16)

(** Shard owner of pointer [p] under a [jobs]-way partition of the PFG:
    variables follow their declaring method, heap nodes (field/array
    pointers) the allocating method, statics their field id. Method-cohesive
    by construction, so the intra-method copy chains that carry most
    propagation stay shard-local. Computed on the canonical representative,
    hence the assignment is a total function that respects union-find
    collapsing: [shard_of t ~jobs p = shard_of t ~jobs (canon t p)]. *)
let shard_of t ~jobs p : int =
  if jobs <= 1 then 0
  else
    let key =
      match Interner.get t.ptrs (canon t p) with
      | PVar (_, v) -> (Ir.var t.prog v).v_method
      | PField (o, _) | PArr o ->
        (Ir.alloc t.prog (obj_alloc t o)).a_method
      | PStatic fld -> lnot fld
    in
    mix_int key mod jobs

(** Object's runtime class, [None] for arrays. *)
let obj_class t o = Ir.alloc_class t.prog (obj_alloc t o)

let obj_typ t o = Ir.alloc_typ t.prog (obj_alloc t o)

let filter_delta t (filter : Ir.typ option) (delta : Bits.t) : Bits.t =
  match filter with
  | None -> delta
  | Some ty ->
    let out = Bits.create () in
    Bits.iter
      (fun o -> if Ir.subtype t.prog (obj_typ t o) ty then ignore (Bits.add out o))
      delta;
    out

(* ------------------------------------------------- coalescing worklist *)

(* pending slot of [p] (a representative), materializing it from the spare
   list on first use *)
let pending_slot t p =
  let slot = Vec.get t.pending p in
  if slot != t.empty_pending then slot
  else begin
    let b =
      match t.spare with
      | b :: rest ->
        t.spare <- rest;
        b
      | [] -> Bits.create ~capacity:8 ()
    in
    Vec.set t.pending p b;
    b
  end

let mark_dirty t p =
  if Bits.mem t.dirty p then Registry.incr t.c_wl_coalesced
  else begin
    ignore (Bits.add t.dirty p);
    Queue.push p t.wl
  end

let wl_push t p (objs : Bits.t) =
  if not (Bits.is_empty objs) then begin
    let p = canon t p in
    (* fully redundant pushes never enqueue (the fast subset early-exits on
       the first fresh word); keeps merge re-deliveries and repeat receiver
       seeds off the queue *)
    if not (Bits.subset objs (Vec.get t.pts p)) then begin
      Registry.incr t.c_wl_pushes;
      Bits.union_quiet ~into:(pending_slot t p) objs;
      mark_dirty t p
    end
  end

(* single-object push: the coalescing table makes this allocation-free *)
let wl_push1 t p o =
  let p = canon t p in
  if not (Bits.mem (Vec.get t.pts p) o) then begin
    Registry.incr t.c_wl_pushes;
    ignore (Bits.add (pending_slot t p) o);
    mark_dirty t p
  end

let via_of_kind = function
  | KNormal -> "flow"
  | KReturn _ -> "return"
  | KShortcut -> "shortcut"

(* record a flow derivation for every object about to be pushed to [dst];
   a single branch when provenance is off *)
let prov_flow t ~src ~dst kind (objs : Bits.t) =
  match t.prov with
  | None -> ()
  | Some pr ->
    let via = via_of_kind kind in
    Bits.iter (fun o -> Prov.record_flow pr ~ptr:dst ~obj:o ~src ~via) objs

(** Add an edge src->dst to the PFG; existing points-to facts of [src] flow
    immediately. No-op if the edge exists (endpoints compared as
    representatives). *)
let add_edge ?(kind = KNormal) ?filter t ~src ~dst =
  let src = canon t src and dst = canon t dst in
  if src <> dst then begin
    let key = (src lsl 31) lor dst in
    if not (Hashtbl.mem t.edge_seen key) then begin
      Hashtbl.add t.edge_seen key ();
      let e = { e_dst = dst; e_filter = filter; e_kind = kind } in
      Vec.set t.succs src (e :: Vec.get t.succs src);
      Registry.incr t.c_edges;
      (match (t.attr, kind) with
      | Some a, KShortcut ->
        Attr.observe_shortcut a ~meth:(meth_of_ptr t dst) ~ptr:dst
      | _ -> ());
      t.plugin.pl_on_edge ~src e;
      let cur = Vec.get t.pts src in
      if not (Bits.is_empty cur) then begin
        let d = filter_delta t filter cur in
        prov_flow t ~src ~dst kind d;
        wl_push t dst d
      end
    end
  end

let seed ?(why = "seed") t p (objs : Bits.t) =
  (match t.prov with
  | None -> ()
  | Some pr ->
    Bits.iter (fun o -> Prov.record_seed pr ~ptr:p ~obj:o ~label:why) objs);
  wl_push t p objs

let seed1 ?(why = "seed") t p o =
  (match t.prov with
  | None -> ()
  | Some pr -> Prov.record_seed pr ~ptr:p ~obj:o ~label:why);
  wl_push1 t p o

(* ----------------------------------------------------- cycle collapsing *)

(* only unfiltered normal edges connect pointers that are equivalent at
   fixpoint; casts filter, and return/shortcut edges carry plugin semantics
   (cut classification, transfer-return host exclusion) *)
let collapsible (e : edge) = e.e_kind = KNormal && e.e_filter = None

(* recycle a drained pending slot *)
let recycle_pending t p =
  let pnd = Vec.get t.pending p in
  if pnd != t.empty_pending then begin
    Vec.set t.pending p t.empty_pending;
    Bits.clear pnd;
    t.spare <- pnd :: t.spare
  end

(* bounded DFS over collapsible edges searching a path [from ->* target];
   used by lazy cycle detection (the [target -> from] edge exists) *)
let find_cycle t ~from ~target : int list option =
  let visited = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let budget = ref 256 in
  let stack = ref [ from ] in
  Hashtbl.add visited from ();
  let found = ref false in
  while (not !found) && !stack <> [] && !budget > 0 do
    decr budget;
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      List.iter
        (fun e ->
          if (not !found) && collapsible e then begin
            let d = canon t e.e_dst in
            if d = target then begin
              Hashtbl.replace parent target n;
              found := true
            end
            else if
              d <> n
              && (not (Hashtbl.mem visited d))
              && not (Bits.mem t.pinned d)
            then begin
              Hashtbl.add visited d ();
              Hashtbl.replace parent d n;
              stack := d :: !stack
            end
          end)
        (Vec.get t.succs n)
  done;
  if not !found then None
  else begin
    let rec walk acc n =
      if n = from then n :: acc else walk (n :: acc) (Hashtbl.find parent n)
    in
    Some (walk [] target)
  end

(* lazy cycle detection: a fully redundant propagation along a collapsible
   edge src->dst suggests dst ->* src; try (once per edge) to find it.
   Collapsing is deferred to the top of the main loop so it never runs while
   a delta is mid-processing. *)
let try_lcd t ~src ~dst =
  let key = (dst lsl 31) lor src in
  if not (Hashtbl.mem t.lcd_done key) then begin
    Hashtbl.add t.lcd_done key ();
    match find_cycle t ~from:dst ~target:src with
    | Some path -> t.pending_collapse <- path :: t.pending_collapse
    | None -> ()
  end

(** Collapsed classes of size [>= 2] as [(representative, members)] pairs —
    the provenance-facing representative→members mapping. *)
let collapse_classes t : (int * int list) list =
  Uf.members t.uf ~universe:(Vec.length t.pts)

(* --------------------------------------------------- reachable methods *)

let add_watch t p w =
  let p = canon t p in
  Vec.set t.watches p (w :: Vec.get t.watches p)

let rec add_reachable t ~ctx ~(mid : Ir.method_id) =
  let key = (ctx * t.n_methods) + mid in
  if not (Hashtbl.mem t.reached key) then begin
    Hashtbl.add t.reached key ();
    Registry.incr t.c_reach_ctx;
    (* context-explosion cascades can spend a long time inside one worklist
       iteration; keep the budget honest here too *)
    if Registry.value t.c_reach_ctx land 255 = 0 then Timer.check t.budget;
    if Bits.add t.reached_methods mid then t.plugin.pl_on_reachable mid;
    let m = Ir.metho t.prog mid in
    Ir.iter_stmts (process_stmt t ~ctx) m.m_body
  end

and process_stmt t ~ctx (s : Ir.stmt) =
  let pv v = ptr_var t ~ctx v in
  match s with
  | New { lhs; site; _ } | NewArray { lhs; site; _ } | StrConst { lhs; site; _ }
    ->
    let hctx = t.sel.sel_heap_ctx (env_of t) ~mctx:ctx ~site in
    let o = intern_obj t ~hctx ~site in
    seed1 ~why:"alloc" t (pv lhs) o
  | Copy { lhs; rhs } ->
    if Ir.is_ref_type (Ir.var t.prog rhs).v_ty || Ir.is_ref_type (Ir.var t.prog lhs).v_ty
    then add_edge t ~src:(pv rhs) ~dst:(pv lhs)
  | Cast { lhs; ty; rhs; _ } -> add_edge ~filter:ty t ~src:(pv rhs) ~dst:(pv lhs)
  | Load { lhs; base; fld } ->
    let bp = pv base in
    add_watch t bp (WLoad { ctx; lhs; fld });
    process_watch t (WLoad { ctx; lhs; fld }) (pts t bp)
  | Store { base; fld; rhs } ->
    if not (t.plugin.pl_is_cut_store ~base ~fld ~rhs) then begin
      let bp = pv base in
      add_watch t bp (WStore { ctx; fld; rhs });
      process_watch t (WStore { ctx; fld; rhs }) (pts t bp)
    end
  | ALoad { lhs; arr; _ } ->
    let ap = pv arr in
    add_watch t ap (WALoad { ctx; lhs });
    process_watch t (WALoad { ctx; lhs }) (pts t ap)
  | AStore { arr; rhs; _ } ->
    let ap = pv arr in
    add_watch t ap (WAStore { ctx; rhs });
    process_watch t (WAStore { ctx; rhs }) (pts t ap)
  | SLoad { lhs; fld } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(ptr_static t ~fld) ~dst:(pv lhs)
  | SStore { fld; rhs } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(pv rhs) ~dst:(ptr_static t ~fld)
  | Invoke { kind = Static; target; site; _ } ->
    let cctx =
      t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site ~recv:None
        ~callee:target
    in
    add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee:target
      ~recv_obj:None
  | Invoke { kind = Virtual | Special; recv; site; _ } -> (
    match recv with
    | Some r ->
      let rp = pv r in
      add_watch t rp (WInvoke { ctx; site });
      process_watch t (WInvoke { ctx; site }) (pts t rp)
    | None -> ())
  | Return _ | If _ | While _ | Print _ | Nop | ConstInt _ | ConstBool _
  | ConstNull _ | Binop _ | Unop _ | ALen _ | InstanceOf _ ->
    ()

and process_watch t (w : watch) (delta : Bits.t) =
  if not (Bits.is_empty delta) then
    match w with
    | WLoad { ctx; lhs; fld } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_field t ~obj:o ~fld) ~dst:(ptr_var t ~ctx lhs))
        delta
    | WStore { ctx; fld; rhs } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_field t ~obj:o ~fld))
        delta
    | WALoad { ctx; lhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_arr t ~obj:o) ~dst:(ptr_var t ~ctx lhs)
          | _ -> ())
        delta
    | WAStore { ctx; rhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_arr t ~obj:o)
          | _ -> ())
        delta
    | WInvoke { ctx; site } ->
      let cs = Ir.call t.prog site in
      Bits.iter
        (fun o ->
          let callee =
            match cs.cs_kind with
            | Special -> Some cs.cs_target
            | Static -> None (* unreachable: statics have no receiver watch *)
            | Virtual -> (
              match obj_class t o with
              | Some cls ->
                Ir.dispatch t.prog cls (Ir.metho t.prog cs.cs_target).m_name
              | None -> None)
          in
          match callee with
          | Some callee
            when Array.length (Ir.metho t.prog callee).m_params
                 = Array.length cs.cs_args ->
            let cctx =
              t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site
                ~recv:(Some o) ~callee
            in
            add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee
              ~recv_obj:(Some o)
          | _ -> ())
        delta

and add_call_edge t ~caller_ctx ~site ~callee_ctx ~callee ~recv_obj =
  let sc = (site * t.n_methods) + callee in
  let cc = (caller_ctx lsl 31) lor callee_ctx in
  let ctx_tbl =
    match Hashtbl.find_opt t.call_edges sc with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.add t.call_edges sc tbl;
      tbl
  in
  let first_full = not (Hashtbl.mem ctx_tbl cc) in
  if first_full then begin
    Hashtbl.add ctx_tbl cc ();
    Registry.incr t.c_call_edges;
    if not (Hashtbl.mem t.call_edges_proj sc) then begin
      Hashtbl.add t.call_edges_proj sc ();
      (match t.prov with
      | None -> ()
      | Some pr -> Prov.record_call pr ~site ~callee ~recv:recv_obj);
      t.plugin.pl_on_call_edge site callee
    end;
    add_reachable t ~ctx:callee_ctx ~mid:callee;
    let cs = Ir.call t.prog site in
    let m = Ir.metho t.prog callee in
    (* arguments *)
    Array.iteri
      (fun i arg ->
        if Ir.is_ref_type (Ir.var t.prog arg).v_ty then
          add_edge t
            ~src:(ptr_var t ~ctx:caller_ctx arg)
            ~dst:(ptr_var t ~ctx:callee_ctx m.m_params.(i)))
      cs.cs_args;
    (* return edge, unless cut *)
    (match (cs.cs_lhs, m.m_ret_var) with
    | Some lhs, Some rv when Ir.is_ref_type (Ir.var t.prog rv).v_ty ->
      if not (t.plugin.pl_is_cut_return callee) then
        add_edge ~kind:(KReturn callee) t
          ~src:(ptr_var t ~ctx:callee_ctx rv)
          ~dst:(ptr_var t ~ctx:caller_ctx lhs)
    | _ -> ())
  end;
  (* the triggering receiver flows to `this` even on a repeat edge *)
  match (recv_obj, (Ir.metho t.prog callee).m_this) with
  | Some o, Some this -> seed1 ~why:"receiver" t (ptr_var t ~ctx:callee_ctx this) o
  | _ -> ()

(* ------------------------------------------ cycle collapsing, part two *)

(** Merge the class [nodes] (a cycle of collapsible edges) into one
    representative. At fixpoint every member of such a cycle holds the same
    points-to set, so the representative takes the union of the members'
    sets, out-edges and watches — and the union is immediately re-delivered
    to every merged successor, watch and plugin subscription, so each
    observes the whole set at least once (idempotent for whatever it had
    already seen from its own member). Called only between worklist pops,
    never while a delta is mid-processing. *)
let collapse_class t (nodes : int list) =
  let members = List.sort_uniq compare (List.map (canon t) nodes) in
  match members with
  | [] | [ _ ] -> ()
  | _ when List.exists (fun m -> Bits.mem t.pinned m) members -> ()
  | first :: rest ->
    Registry.incr t.c_cycles;
    Registry.incr ~by:(List.length rest) t.c_merged;
    let rep =
      List.fold_left
        (fun r n ->
          match Uf.union t.uf r n with Some (rep, _) -> rep | None -> r)
        first rest
    in
    (match t.attr with
    | None -> ()
    | Some a ->
      Attr.observe_merge a ~meth:(meth_of_ptr t rep) ~ptr:rep
        ~absorbed:(List.length rest));
    (* union of the members' points-to sets, and of their pending deltas *)
    let u = Bits.create () in
    let pend = Bits.create () in
    let succs_acc = ref [] and watches_acc = ref [] in
    List.iter
      (fun m ->
        Bits.union_quiet ~into:u (Vec.get t.pts m);
        Bits.union_quiet ~into:pend (Vec.get t.pending m);
        succs_acc := Vec.get t.succs m :: !succs_acc;
        watches_acc := Vec.get t.watches m :: !watches_acc;
        recycle_pending t m;
        Bits.remove t.dirty m;
        (* absorbed slots are never read again (queries canonicalize) *)
        if m <> rep then begin
          Vec.set t.pts m t.empty_pending;
          Vec.set t.succs m [];
          Vec.set t.watches m []
        end)
      members;
    Vec.set t.pts rep u;
    (* merged out-edges; edges that now point inside the class are no-ops *)
    let merged_succs =
      List.concat !succs_acc |> List.filter (fun e -> canon t e.e_dst <> rep)
    in
    Vec.set t.succs rep merged_succs;
    List.iter
      (fun e -> Hashtbl.replace t.edge_seen ((rep lsl 31) lor canon t e.e_dst) ())
      merged_succs;
    Vec.set t.watches rep (List.concat !watches_acc);
    (* plugins migrate their pointer-keyed state before the re-delivery *)
    List.iter
      (fun m -> if m <> rep then t.plugin.pl_on_merge ~rep ~other:m)
      members;
    (* re-deliver the union as one delta; not counted into [propagated] —
       these objects are already in the representative's set, the delivery
       only re-runs the subscribers *)
    if not (Bits.is_empty u) then begin
      List.iter
        (fun e ->
          let dst = canon t e.e_dst in
          if dst <> rep then wl_push t dst (filter_delta t e.e_filter u))
        merged_succs;
      List.iter (fun w -> process_watch t w u) (Vec.get t.watches rep);
      t.plugin.pl_on_new_pts rep u
    end;
    (* undelivered deltas go back through the worklist *)
    wl_push t rep pend

(* periodic Tarjan sweep (iterative) over the collapsible subgraph; catches
   cycles the lazy trigger misses. Runs between worklist pops, and pops each
   SCC's members off the Tarjan stack before collapsing them, so the merges
   are safe to execute immediately. *)
let scc_sweep t =
  let n = Vec.length t.pts in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let s = ref [] in
  let next = ref 0 in
  let frames = ref [] in
  let push_node v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    s := v :: !s;
    on_stack.(v) <- true;
    frames := (v, ref (Vec.get t.succs v)) :: !frames
  in
  for root = 0 to n - 1 do
    if
      index.(root) = -1
      && Uf.find t.uf root = root
      && not (Bits.mem t.pinned root)
    then begin
      push_node root;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, es) :: rest -> (
          match !es with
          | e :: tl ->
            es := tl;
            if collapsible e then begin
              let w = canon t e.e_dst in
              if w <> v && w < n && not (Bits.mem t.pinned w) then begin
                if index.(w) = -1 then push_node w
                else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
              end
            end
          | [] ->
            frames := rest;
            (match rest with
            | (u, _) :: _ -> low.(u) <- min low.(u) low.(v)
            | [] -> ());
            if low.(v) = index.(v) then begin
              let comp = ref [] in
              let brk = ref false in
              while not !brk do
                match !s with
                | w :: tl ->
                  s := tl;
                  on_stack.(w) <- false;
                  comp := w :: !comp;
                  if w = v then brk := true
                | [] -> brk := true
              done;
              match !comp with
              | _ :: _ :: _ -> collapse_class t !comp
              | _ -> ()
            end)
      done
    end
  done

(* ------------------------------------------------------------ main loop *)

let sample_heap t =
  let st = Gc.quick_stat () in
  Registry.set_max t.g_heap
    (float_of_int (st.Gc.heap_words + t.extra_heap_words ()));
  Trace.sample_gc ();
  (* solver counter series merged into the span stream ([--trace]); a single
     branch inside Trace when tracing is off *)
  Trace.counter "solver"
    [
      ("ptrs", float_of_int (Registry.value t.c_ptrs));
      ("pfg_edges", float_of_int (Registry.value t.c_edges));
      ("propagated", float_of_int (Registry.value t.c_prop));
      ("ctx_methods", float_of_int (Registry.value t.c_reach_ctx));
    ]

(* [--progress] heartbeat: one stderr line per interval, cheap enough to
   check from the 255-iteration cadence *)
let maybe_progress t ~t0 ~iter =
  let now = Timer.now () in
  if now -. t.last_progress >= t.progress_s then begin
    t.last_progress <- now;
    Fmt.epr
      "[progress] %s+%s %.1fs: %d iters, %d ptrs, %d pfg-edges, %d propagated, %d ctx-methods, wl=%d@."
      t.sel.sel_name t.plugin.pl_name (now -. t0) iter
      (Registry.value t.c_ptrs) (Registry.value t.c_edges)
      (Registry.value t.c_prop)
      (Registry.value t.c_reach_ctx)
      (Queue.length t.wl)
  end

let run_loop (t : t) : unit =
  let t0 = Timer.now () in
  let entry_ctx = Interner.intern t.ctxs [] in
  let iter = ref 0 in
  (try
     Timer.check t.budget;
     add_reachable t ~ctx:entry_ctx ~mid:t.prog.main;
     while (not (Queue.is_empty t.wl)) || t.pending_collapse <> [] do
       incr iter;
       if !iter land 255 = 0 then begin
         Timer.check t.budget;
         if t.progress_s > 0. then maybe_progress t ~t0 ~iter:!iter;
         if !iter land 4095 = 0 then sample_heap t;
         if t.collapse && !iter land 65535 = 0 then scc_sweep t
       end;
       (* cycles found during the previous pop's propagation collapse here,
          between pops, so no delta is ever mid-processing during a merge
          (the loop condition keeps running for collapses found on the last
          pop — the LCD trigger is a fully redundant propagation, which is
          often the final one) *)
       if t.pending_collapse <> [] then begin
         let cs = t.pending_collapse in
         t.pending_collapse <- [];
         List.iter (collapse_class t) cs
       end;
       (* the queue may be empty here when only trailing collapses remained *)
       if not (Queue.is_empty t.wl) then begin
         let p = Queue.pop t.wl in
         (* a stale entry when p was absorbed or already drained this round *)
         if Bits.mem t.dirty p then begin
           Bits.remove t.dirty p;
           let objs = Vec.get t.pending p in
           Vec.set t.pending p t.empty_pending;
           let cur = Vec.get t.pts p in
           (match Bits.union_into ~into:cur objs with
           | None -> ()
           | Some delta ->
             let dn = Bits.cardinal delta in
             Registry.incr ~by:dn t.c_prop;
             (match t.attr with
             | None -> ()
             | Some a ->
               Attr.observe_pop a ~meth:(meth_of_ptr t p) ~ptr:p ~delta:dn);
             (* flow along PFG edges *)
             List.iter
               (fun e ->
                 let dst = canon t e.e_dst in
                 if dst <> p then begin
                   let d = filter_delta t e.e_filter delta in
                   prov_flow t ~src:p ~dst e.e_kind d;
                   wl_push t dst d;
                   (* fully redundant flow along a collapsible edge: the LCD
                      trigger (subset early-exits on the first fresh word) *)
                   if
                     t.collapse && collapsible e
                     && (not (Bits.is_empty d))
                     && (not (Bits.mem t.pinned p))
                     && (not (Bits.mem t.pinned dst))
                     && Bits.subset d (Vec.get t.pts dst)
                   then try_lcd t ~src:p ~dst
                 end)
               (Vec.get t.succs p);
             (* statement watches *)
             List.iter (fun w -> process_watch t w delta) (Vec.get t.watches p);
             t.plugin.pl_on_new_pts p delta);
           Bits.clear objs;
           t.spare <- objs :: t.spare
         end
       end
     done
   with Timer.Out_of_budget ->
     Registry.set t.g_time (Timer.now () -. t0);
     sample_heap t;
     Log.info (fun m ->
         m "%s+%s: out of budget after %.1fs (%d ctx-methods, %d edges)"
           t.sel.sel_name t.plugin.pl_name
           (Registry.gauge_value t.g_time)
           (Registry.value t.c_reach_ctx)
           (Registry.value t.c_edges));
     raise Timeout);
  Registry.set t.g_time (Timer.now () -. t0);
  sample_heap t;
  Log.info (fun m ->
      m "%s+%s: done in %.3fs (%d methods, %d ptrs, %d pfg edges, %d props, %d cycles collapsed / %d ptrs merged)"
        t.sel.sel_name t.plugin.pl_name
        (Registry.gauge_value t.g_time)
        (Bits.cardinal t.reached_methods)
        (Registry.value t.c_ptrs) (Registry.value t.c_edges)
        (Registry.value t.c_prop) (Registry.value t.c_cycles)
        (Registry.value t.c_merged))

let run (t : t) : unit =
  Trace.with_span ~cat:"solver"
    ("solve:" ^ t.sel.sel_name ^ "+" ^ t.plugin.pl_name)
    (fun () -> run_loop t)

(* --------------------------------------------------------------- results *)

(** Context-projected analysis results, shared with the Datalog engine so the
    precision clients are engine-agnostic. *)
type result = {
  r_name : string;
  r_time : float;
  r_reach : Bits.t;                               (** reachable methods *)
  r_edges : (Ir.call_id * Ir.method_id) list;     (** projected call edges *)
  r_pt : Ir.var_id -> Bits.t;                     (** var -> alloc sites *)
  r_snapshot : Snapshot.t;                        (** structured engine metrics *)
}

(** Freeze the engine metrics; callable at any time, including after a
    {!Timeout} (the driver attaches the aborted-state snapshot to timed-out
    outcomes). *)
let snapshot (t : t) : Snapshot.t =
  let s = Registry.snapshot t.reg in
  match t.prov with
  | None -> s
  | Some pr ->
    let s = Snapshot.with_counter s "prov_records" (Prov.size pr) in
    Snapshot.with_counter s "prov_dropped" (Prov.dropped pr)

let result (t : t) : result =
  (* project pointer facts onto variables, merging contexts and abstracting
     objects to their allocation sites *)
  let var_pt : (Ir.var_id, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
  Interner.iteri
    (fun p desc ->
      match desc with
      | PVar (_, v) ->
        let tgt =
          match Hashtbl.find_opt var_pt v with
          | Some b -> b
          | None ->
            let b = Bits.create () in
            Hashtbl.add var_pt v b;
            b
        in
        Bits.iter (fun o -> ignore (Bits.add tgt (obj_alloc t o))) (pts t p)
      | _ -> ())
    t.ptrs;
  let empty = Bits.create () in
  {
    r_name =
      (if t.plugin.pl_name = "none" then t.sel.sel_name
       else t.sel.sel_name ^ "+" ^ t.plugin.pl_name);
    r_time = Registry.gauge_value t.g_time;
    r_reach = Bits.copy t.reached_methods;
    r_edges =
      Hashtbl.fold
        (fun sc () acc -> (sc / t.n_methods, sc mod t.n_methods) :: acc)
        t.call_edges_proj [];
    r_pt =
      (fun v -> match Hashtbl.find_opt var_pt v with Some b -> b | None -> empty);
    r_snapshot = snapshot t;
  }

(* ------------------------------------------------------- explain helpers *)

let iter_ptrs t f = Interner.iteri f t.ptrs

let ptr_to_string t p =
  match ptr_desc t p with
  | PVar (ctx, v) ->
    let vr = Ir.var t.prog v in
    let m = Ir.method_name t.prog vr.v_method in
    if ctx = Interner.intern t.ctxs [] then Printf.sprintf "%s.%s" m vr.v_name
    else Printf.sprintf "%s.%s@ctx%d" m vr.v_name ctx
  | PField (o, fld) ->
    Printf.sprintf "obj#%d.%s" o (Ir.field t.prog fld).f_name
  | PArr o -> Printf.sprintf "obj#%d[*]" o
  | PStatic fld ->
    let f = Ir.field t.prog fld in
    Printf.sprintf "%s.%s" (Ir.class_name t.prog f.f_class) f.f_name

let obj_to_string t o =
  let site = obj_alloc t o in
  let a = Ir.alloc t.prog site in
  Fmt.str "obj#%d(new %a in %s)" o (Ir.pp_typ t.prog)
    (Ir.alloc_typ t.prog site)
    (Ir.method_name t.prog a.a_method)

(** Render the derivation chain of [(ptr, obj)], one step per line, ending in
    the seed event that introduced the object. Empty when provenance was not
    enabled or the fact does not hold. *)
let explain_chain t ~ptr ~obj : string list =
  match t.prov with
  | None -> []
  | Some pr ->
    List.map
      (fun (p, r) ->
        match r with
        | Prov.Seed { label } ->
          Printf.sprintf "%s <- %s  [%s]" (ptr_to_string t p)
            (obj_to_string t obj) label
        | Prov.Flow { src; via } ->
          Printf.sprintf "%s <- %s  [%s]" (ptr_to_string t p)
            (ptr_to_string t src) via)
      (Prov.chain pr ~ptr ~obj)

(** Rendered cost-attribution profile ([None] unless {!enable_attr} preceded
    the run). Ids resolve through {!Ir.method_name} / {!ptr_to_string}, so
    the result is deterministic for a deterministic run. *)
let profile ?top (t : t) : Attr.profile option =
  match t.attr with
  | None -> None
  | Some a ->
    Some
      (Attr.render ?top a ~engine:"imperative"
         ~meth_name:(fun m ->
           if m < 0 then "<static>" else Ir.method_name t.prog m)
         ~ptr_name:(ptr_to_string t))

(** Run an analysis end to end. Raises {!Timeout} if the budget expires. *)
let analyze ?budget ?sel ?collapse ?plugin_of (prog : Ir.program) : t =
  let t = create ?budget ?sel ?collapse prog in
  (match plugin_of with Some f -> set_plugin t (f t) | None -> ());
  run t;
  t

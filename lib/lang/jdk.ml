(** The mini-JDK: container classes and small utilities written in MiniJava.

    This stands in for JDK 1.6 (DESIGN.md, substitution 2). The containers are
    *real implementations* — an array-backed [ArrayList], a node-based
    [LinkedList], an entry-chain [HashMap], a delegating [HashSet], iterators
    and map views — so a context-insensitive analysis genuinely merges element
    flows inside them, which is precisely what the container access pattern
    has to repair. The API classification (Entrances / Exits / Transfers)
    lives in [Csc_core.Spec]. *)

let source =
  {|
class Object { }
class String { }

// ------------------------------------------------------------- collections

class Collection {
  void add(Object e) { }
  Object get(int i) { return null; }
  int size() { return 0; }
  boolean isEmpty() { return true; }
  boolean contains(Object e) { return false; }
  Iterator iterator() { return null; }
}

class Iterator {
  boolean hasNext() { return false; }
  Object next() { return null; }
}

class ArrayList extends Collection {
  Object[] elems;
  int size;

  ArrayList() {
    this.elems = new Object[8];
    this.size = 0;
  }

  void add(Object e) {
    if (this.size == this.elems.length) {
      this.grow();
    }
    this.elems[this.size] = e;
    this.size = this.size + 1;
  }

  void set(int i, Object e) {
    this.elems[i] = e;
  }

  void grow() {
    Object[] bigger = new Object[this.size + this.size];
    int i = 0;
    while (i < this.size) {
      bigger[i] = this.elems[i];
      i = i + 1;
    }
    this.elems = bigger;
  }

  Object get(int i) {
    Object r = this.elems[i];
    return r;
  }

  Object removeLast() {
    this.size = this.size - 1;
    Object r = this.elems[this.size];
    return r;
  }

  int size() { return this.size; }
  boolean isEmpty() { return this.size == 0; }

  boolean contains(Object e) {
    int i = 0;
    boolean found = false;
    while (i < this.size) {
      if (this.elems[i] == e) {
        found = true;
      }
      i = i + 1;
    }
    return found;
  }

  Iterator iterator() {
    ArrayListIterator it = new ArrayListIterator(this);
    return it;
  }
}

class ArrayListIterator extends Iterator {
  ArrayList list;
  int idx;

  ArrayListIterator(ArrayList l) {
    this.list = l;
    this.idx = 0;
  }

  boolean hasNext() { return this.idx < this.list.size; }

  Object next() {
    Object r = this.list.get(this.idx);
    this.idx = this.idx + 1;
    return r;
  }
}

class ListNode {
  Object item;
  ListNode next;
}

class LinkedList extends Collection {
  ListNode head;
  int size;

  LinkedList() {
    this.head = null;
    this.size = 0;
  }

  void add(Object e) {
    ListNode n = new ListNode();
    n.item = e;
    n.next = this.head;
    this.head = n;
    this.size = this.size + 1;
  }

  Object get(int i) {
    ListNode n = this.head;
    int k = this.size - 1;
    while (k > i) {
      n = n.next;
      k = k - 1;
    }
    Object r = n.item;
    return r;
  }

  int size() { return this.size; }
  boolean isEmpty() { return this.size == 0; }

  boolean contains(Object e) {
    ListNode n = this.head;
    boolean found = false;
    while (n != null) {
      if (n.item == e) {
        found = true;
      }
      n = n.next;
    }
    return found;
  }

  // removes and returns the oldest element (index 0)
  Object removeFirst() {
    Object r;
    if (this.size == 1) {
      r = this.head.item;
      this.head = null;
    } else {
      ListNode n = this.head;
      while (n.next.next != null) {
        n = n.next;
      }
      r = n.next.item;
      n.next = null;
    }
    this.size = this.size - 1;
    return r;
  }

  Iterator iterator() {
    LinkedListIterator it = new LinkedListIterator(this.head);
    return it;
  }
}

class LinkedListIterator extends Iterator {
  ListNode cur;

  LinkedListIterator(ListNode h) { this.cur = h; }

  boolean hasNext() { return this.cur != null; }

  Object next() {
    Object r = this.cur.item;
    this.cur = this.cur.next;
    return r;
  }
}

class HashSet extends Collection {
  ArrayList inner;

  HashSet() { this.inner = new ArrayList(); }

  void add(Object e) {
    boolean c = this.inner.contains(e);
    if (!c) {
      this.inner.add(e);
    }
  }

  int size() { return this.inner.size(); }
  boolean isEmpty() { return this.inner.isEmpty(); }
  boolean contains(Object e) { return this.inner.contains(e); }

  Iterator iterator() { return this.inner.iterator(); }
}

// -------------------------------------------------------------------- maps

class Map {
  void put(Object k, Object v) { }
  Object get(Object k) { return null; }
  boolean containsKey(Object k) { return false; }
  int size() { return 0; }
  KeySetView keySet() { return null; }
  ValuesView values() { return null; }
}

class MapEntry {
  Object key;
  Object val;
  MapEntry next;
}

class HashMap extends Map {
  MapEntry head;
  int size;

  HashMap() {
    this.head = null;
    this.size = 0;
  }

  void put(Object k, Object v) {
    MapEntry e = this.findEntry(k);
    if (e == null) {
      MapEntry fresh = new MapEntry();
      fresh.key = k;
      fresh.val = v;
      fresh.next = this.head;
      this.head = fresh;
      this.size = this.size + 1;
    } else {
      e.val = v;
    }
  }

  MapEntry findEntry(Object k) {
    MapEntry e = this.head;
    MapEntry found = null;
    while (e != null) {
      if (e.key == k) {
        found = e;
      }
      e = e.next;
    }
    return found;
  }

  Object get(Object k) {
    MapEntry e = this.findEntry(k);
    Object r = null;
    if (e != null) {
      r = e.val;
    }
    return r;
  }

  boolean containsKey(Object k) {
    MapEntry e = this.findEntry(k);
    return e != null;
  }

  int size() { return this.size; }

  KeySetView keySet() {
    KeySetView v = new KeySetView(this);
    return v;
  }

  ValuesView values() {
    ValuesView v = new ValuesView(this);
    return v;
  }
}

class KeySetView {
  HashMap map;
  KeySetView(HashMap m) { this.map = m; }
  int size() { return this.map.size(); }
  Iterator iterator() {
    KeyIterator it = new KeyIterator(this.map);
    return it;
  }
}

class ValuesView {
  HashMap map;
  ValuesView(HashMap m) { this.map = m; }
  int size() { return this.map.size(); }
  Iterator iterator() {
    ValueIterator it = new ValueIterator(this.map);
    return it;
  }
}

class KeyIterator extends Iterator {
  MapEntry cur;
  KeyIterator(HashMap m) { this.cur = m.head; }
  boolean hasNext() { return this.cur != null; }
  Object next() {
    Object r = this.cur.key;
    this.cur = this.cur.next;
    return r;
  }
}

class ValueIterator extends Iterator {
  MapEntry cur;
  ValueIterator(HashMap m) { this.cur = m.head; }
  boolean hasNext() { return this.cur != null; }
  Object next() {
    Object r = this.cur.val;
    this.cur = this.cur.next;
    return r;
  }
}

// -------------------------------------------------- more container classes

class Stack extends Collection {
  ArrayList items;
  Stack() { this.items = new ArrayList(); }
  void push(Object e) { this.items.add(e); }
  Object pop() { return this.items.removeLast(); }
  Object peek() { return this.items.get(this.items.size() - 1); }
  int size() { return this.items.size(); }
  boolean isEmpty() { return this.items.isEmpty(); }
  Iterator iterator() { return this.items.iterator(); }
}

class DequeNode {
  Object elem;
  DequeNode prev;
  DequeNode next;
}

class ArrayDeque extends Collection {
  DequeNode head;
  DequeNode tail;
  int size;

  ArrayDeque() {
    this.head = null;
    this.tail = null;
    this.size = 0;
  }

  void addFirst(Object e) {
    DequeNode n = new DequeNode();
    n.elem = e;
    n.next = this.head;
    if (this.head != null) {
      this.head.prev = n;
    } else {
      this.tail = n;
    }
    this.head = n;
    this.size = this.size + 1;
  }

  void addLast(Object e) {
    DequeNode n = new DequeNode();
    n.elem = e;
    n.prev = this.tail;
    if (this.tail != null) {
      this.tail.next = n;
    } else {
      this.head = n;
    }
    this.tail = n;
    this.size = this.size + 1;
  }

  void add(Object e) { this.addLast(e); }

  Object removeFirst() {
    DequeNode n = this.head;
    this.head = n.next;
    if (this.head == null) {
      this.tail = null;
    } else {
      this.head.prev = null;
    }
    this.size = this.size - 1;
    return n.elem;
  }

  Object removeLast() {
    DequeNode n = this.tail;
    this.tail = n.prev;
    if (this.tail == null) {
      this.head = null;
    } else {
      this.tail.next = null;
    }
    this.size = this.size - 1;
    return n.elem;
  }

  Object peekFirst() {
    Object r = null;
    if (this.head != null) {
      r = this.head.elem;
    }
    return r;
  }

  Object peekLast() {
    Object r = null;
    if (this.tail != null) {
      r = this.tail.elem;
    }
    return r;
  }

  int size() { return this.size; }
  boolean isEmpty() { return this.size == 0; }

  Iterator iterator() {
    DequeIterator it = new DequeIterator(this.head);
    return it;
  }
}

class DequeIterator extends Iterator {
  DequeNode cur;
  DequeIterator(DequeNode h) { this.cur = h; }
  boolean hasNext() { return this.cur != null; }
  Object next() {
    Object r = this.cur.elem;
    this.cur = this.cur.next;
    return r;
  }
}

class Queue extends Collection {
  LinkedList items;
  Queue() { this.items = new LinkedList(); }
  void enqueue(Object e) { this.items.add(e); }
  void add(Object e) { this.items.add(e); }
  Object dequeue() { return this.items.removeFirst(); }
  Object front() { return this.items.get(0); }
  int size() { return this.items.size(); }
  boolean isEmpty() { return this.items.isEmpty(); }
  Iterator iterator() { return this.items.iterator(); }
}

// --------------------------------------------------------------- utilities

class Optional {
  Object value;

  static Optional of(Object v) {
    Optional o = new Optional();
    o.set(v);
    return o;
  }

  static Optional empty() { return new Optional(); }

  void set(Object v) { this.value = v; }

  Object get() { return this.value; }

  boolean isPresent() { return this.value != null; }

  Object orElse(Object dflt) {
    Object r = dflt;
    if (this.value != null) {
      r = this.value;
    }
    return r;
  }
}

class StringBuilder {
  ArrayList parts;
  StringBuilder() { this.parts = new ArrayList(); }
  StringBuilder append(Object part) {
    this.parts.add(part);
    return this;
  }
  int length() { return this.parts.size(); }
  Object part(int i) { return this.parts.get(i); }
}

class Collections {
  static void copyAll(Collection dst, Collection src) {
    Iterator it = src.iterator();
    while (it.hasNext()) {
      dst.add(it.next());
    }
  }

  static Object firstOf(Collection c) {
    Object r = null;
    if (!c.isEmpty()) {
      r = c.get(0);
    }
    return r;
  }

  static void fill(Collection dst, Object v, int n) {
    for (int i = 0; i < n; i = i + 1) {
      dst.add(v);
    }
  }
}

// --------------------------------------------------------------- utilities

class Box {
  Object val;
  Box(Object v) { this.set(v); }
  void set(Object v) { this.val = v; }
  Object get() { return this.val; }
}

class Pair {
  Object fst;
  Object snd;
  Pair(Object f, Object s) {
    this.fst = f;
    this.snd = s;
  }
  Object getFst() { return this.fst; }
  Object getSnd() { return this.snd; }
}

class Util {
  static Object id(Object x) { return x; }

  static Object select(boolean c, Object a, Object b) {
    Object r = b;
    if (c) {
      r = a;
    }
    return r;
  }

  static Object firstNonNull(Object a, Object b) {
    Object r = b;
    if (a != null) {
      r = a;
    }
    return r;
  }
}
|}

(* The class inventory is derived from [source] itself so it can never drift
   from the actual mini-JDK contents. *)
let class_names =
  lazy
    (let names = ref [] in
     let lines = String.split_on_char '\n' source in
     List.iter
       (fun line ->
         let line = String.trim line in
         let pfx = "class " in
         let plen = String.length pfx in
         if String.length line > plen && String.sub line 0 plen = pfx then begin
           let rest = String.sub line plen (String.length line - plen) in
           let stop = ref (String.length rest) in
           String.iteri
             (fun i c ->
               if !stop = String.length rest && (c = ' ' || c = '{') then
                 stop := i)
             rest;
           names := String.sub rest 0 !stop :: !names
         end)
       lines;
     List.rev !names)

let class_names () = Lazy.force class_names
let is_jdk_class name = List.mem name (class_names ())

(** Entry points: compile MiniJava source text (plus the mini-JDK) into an
    {!Csc_ir.Ir.program}. *)

(** [compile ~with_jdk sources] parses, resolves and lowers the given
    [(unit_name, source_text)] pairs. The mini-JDK is prepended unless
    [with_jdk:false]. Raises {!Ast.Syntax_error} / {!Ast.Semantic_error}. *)
let compile ?(with_jdk = true) (sources : (string * string) list) :
    Csc_ir.Ir.program =
  let sources = if with_jdk then ("jdk", Jdk.source) :: sources else sources in
  Csc_obs.Trace.with_span ~cat:"frontend" "compile" (fun () ->
      Resolver.compile sources)

(** Convenience for a single compilation unit. *)
let compile_string ?with_jdk ?(name = "input") src =
  compile ?with_jdk [ (name, src) ]

(** The mini-JDK: container classes and utilities written in MiniJava,
    standing in for JDK 1.6 (DESIGN.md, substitution 2).

    Real implementations — an array-backed [ArrayList], node-based
    [LinkedList] and [ArrayDeque], entry-chain [HashMap] with [keySet]/
    [values] views, delegating [HashSet]/[Stack]/[Queue], iterators,
    [Optional], [StringBuilder], [Collections], [Box]/[Pair]/[Util] — so a
    context-insensitive analysis genuinely merges element flows inside them.
    The Entrance/Exit/Transfer classification lives in {!Csc_core.Spec}. *)

val source : string

(** Names of every class declared in {!source}, in declaration order. *)
val class_names : unit -> string list

(** Is [name] a mini-JDK class? Lets clients (call-graph export, the
    {!Csc_checks} diagnostics) hide library internals from user output. *)
val is_jdk_class : string -> bool

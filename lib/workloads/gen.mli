(** Deterministic generator of executable MiniJava workloads (DESIGN.md,
    substitution 3).

    Each program mixes the shapes the paper's three patterns target —
    setter/getter entities, nested-constructor wrappers, polymorphic
    hierarchies, registry classes over containers, direct container use with
    iterators/views/downcasts, local-flow utilities — plus two calibrated
    "context bombs": a single-class factory web (blows up object-sensitive
    contexts; type sensitivity is immune) and a multi-class mesh (blows up
    both). Same shape + seed, byte-identical source; all loops are bounded
    so every program terminates under the interpreter. *)

type shape = {
  seed : int;
  n_entity : int;       (** entity classes *)
  n_fields : int;       (** fields (and accessor pairs) per entity *)
  n_wrap : int;         (** wrapper classes *)
  n_hier : int;         (** polymorphic hierarchies *)
  hier_width : int;     (** subclasses per hierarchy *)
  n_registry : int;     (** container-owning classes *)
  n_util : int;         (** static utility classes *)
  n_driver : int;       (** driver classes *)
  ops_per_driver : int; (** operation methods per driver *)
  loop_iters : int;     (** runtime loop bound in main *)
  fork_sites : int;     (** size of the object-sensitivity context bomb *)
  mesh_classes : int;   (** size of the type-sensitivity context bomb *)
}

(** A small shape used by tests and micro-benchmarks. *)
val small_shape : shape

(** Generate a full MiniJava program (the frontend prepends the JDK).
    [variant > 0] appends fixed, variant-keyed statements to the body of
    [Driver0.op0_0] without consuming RNG draws, so two variants of the same
    shape differ in exactly that one method body — a single-method edit for
    the incremental engine and bench E17. *)
val generate : ?variant:int -> shape -> string

(** Randomized, type-correct program generation for the soundness fuzzer.

    [Rand] draws a random *plan* — a tree of typed statements (allocations,
    widening copies, virtual calls, accessor calls, guarded and unguarded
    casts, containers, arrays, bounded loops, round-varying branches) over a
    random class table with inheritance — and renders it to MiniJava source.
    Variables are globally numbered and defined exactly once, receivers are
    always definitely non-null, and container reads only target definitely
    populated containers, so generated programs compile, validate and
    (almost always) run to completion; the rare unguarded downcast may fail
    at runtime, which the fuzzer's partial-trace oracle tolerates.

    Shrinking operates on plans, not source text: removing a statement
    cascades through its def-use closure and rendering garbage-collects
    classes and methods no surviving statement needs, so every candidate is
    again a well-formed program. Same seed, same plan, byte-identical
    source. *)
module Rand : sig
  type plan

  (** Seed the plan was generated from (echoed into fuzz reports). *)
  val seed_of : plan -> int

  (** Ground-truth taint flows planted at generation time (a leaking
      source->pipe->sink chain / a sanitized source->scrub->sink chain, at
      the end of the program). Counts describe the *original* plan —
      shrinking may remove the chains without updating them. *)
  val planted_leaks : plan -> int

  val planted_sanitized : plan -> int

  (** Number of plan statements (nested bodies included). *)
  val stmt_count : plan -> int

  (** [generate ~seed ~max_size] draws a plan of roughly [max_size]
      statements (floored at 8, so the coverage prelude always fits). *)
  val generate : seed:int -> max_size:int -> plan

  (** Render to MiniJava source (the frontend prepends the JDK). *)
  val render : plan -> string

  (** Simplified variants of a failing plan, roughly most-aggressive first:
      rounds-loop collapse, top-level chunk removal, then single-statement
      removal anywhere in the tree. Every candidate is well-formed. *)
  val shrink_candidates : plan -> plan list
end

(** Seeded edit-sequence generator over [Rand] plans, for the incremental
    fuzz oracle. Each step applies one random mutation — swapping adjacent
    independent statements or duplicating a side-effecting write
    (semantics-preserving), dropping a statement with its def-use cascade or
    changing the rounds bound (semantics-changing) — and every resulting
    plan is again well-formed. *)
module Edit : sig
  (** [sequence ~seed ~steps p] returns the [steps] successive revisions of
      [p] (each derived from the previous one). Deterministic in [seed]. *)
  val sequence : seed:int -> steps:int -> Rand.plan -> Rand.plan list
end

(** The benchmark suite: ten generated programs named after the paper's
    evaluation subjects (DESIGN.md, substitution 3). Sizes are chosen to
    mirror the paper's *relative* hardness (hsqldb/findbugs smallest,
    soot/columba largest); see EXPERIMENTS.md for the calibration. *)

open Gen

let scaled ~seed ~u ~fork ~mesh : shape =
  {
    seed;
    n_entity = 8 + (6 * u);
    n_fields = 3;
    n_wrap = 3 + (2 * u);
    n_hier = 2 + u;
    hier_width = 3 + (u / 2);
    n_registry = 2 + (2 * u);
    n_util = 2 + (u / 2);
    n_driver = 3 + (2 * u);
    ops_per_driver = 5 + u;
    loop_iters = 3;
    fork_sites = fork;
    mesh_classes = mesh;
  }

(* (name, scale unit, context-bomb sizes): units roughly track the paper's CI
   times on Tai-e (hsqldb 4s ... columba 117s); [fork]/[mesh] control whether
   2obj / 2type scale on each program, mirroring which programs they scale on
   in the paper (2obj: eclipse, jedit, findbugs; 2type: those + hsqldb). *)
let programs : (string * shape) list =
  [
    ("hsqldb", scaled ~seed:101 ~u:1 ~fork:120 ~mesh:6);
    ("findbugs", scaled ~seed:102 ~u:2 ~fork:30 ~mesh:6);
    ("jython", scaled ~seed:103 ~u:3 ~fork:130 ~mesh:40);
    ("eclipse", scaled ~seed:104 ~u:5 ~fork:40 ~mesh:8);
    ("jedit", scaled ~seed:105 ~u:4 ~fork:35 ~mesh:7);
    ("briss", scaled ~seed:106 ~u:8 ~fork:150 ~mesh:50);
    ("gruntspud", scaled ~seed:107 ~u:9 ~fork:150 ~mesh:55);
    ("freecol", scaled ~seed:108 ~u:10 ~fork:160 ~mesh:55);
    ("soot", scaled ~seed:109 ~u:13 ~fork:180 ~mesh:60);
    ("columba", scaled ~seed:110 ~u:14 ~fork:180 ~mesh:65);
  ]

let names = List.map fst programs

let shape_of name =
  match List.assoc_opt name programs with
  | Some s -> s
  | None -> invalid_arg ("unknown workload: " ^ name)

let source name = Gen.generate (shape_of name)

(** An "edited" revision of a suite program: identical except for the body
    of [Driver0.op0_0] (see [Gen.generate ?variant]). Used by bench E17 and
    the incremental-smoke CI lane as a reproducible single-method edit. *)
let source_variant name variant = Gen.generate ~variant (shape_of name)

(** Compile a suite program (with the mini-JDK). *)
let compile name : Csc_ir.Ir.program =
  Csc_lang.Frontend.compile_string ~name (source name)

(** Deterministic generator of executable MiniJava workloads (DESIGN.md S11,
    substitution 3).

    Each generated program mixes the precision-loss shapes the paper's three
    patterns target, at a controlled scale:
    - an *entity* layer: classes with fields wrapped in setters/getters
      (field access pattern), some in small inheritance chains;
    - a *wrapper* layer: Box-like classes whose constructors delegate to an
      init method (nested calls for field access, Figure 3);
    - a *hierarchy* layer: polymorphic base/sub classes driving virtual
      dispatch and the #poly-call client;
    - a *registry* layer: classes owning ArrayLists/HashMaps of entities
      (container access pattern), plus direct container usage with iterators
      and map views in driver code;
    - a *utility* layer: static methods whose return values flow from their
      parameters (local flow pattern, Figure 5);
    - *driver* classes + a main that populate and query everything inside
      bounded loops, with downcasts after container reads (#fail-cast).

    Programs are generated from a {!shape} and a seed; the same inputs yield
    byte-identical sources. Every program terminates under the interpreter
    (all loops are bounded), which the recall experiment requires. *)

open Csc_common

type shape = {
  seed : int;
  n_entity : int;      (** entity classes *)
  n_fields : int;      (** fields (and setter/getter pairs) per entity *)
  n_wrap : int;        (** wrapper classes *)
  n_hier : int;        (** polymorphic hierarchies *)
  hier_width : int;    (** subclasses per hierarchy *)
  n_registry : int;    (** container-owning classes *)
  n_util : int;        (** static utility classes *)
  n_driver : int;      (** driver classes *)
  ops_per_driver : int;(** operation methods per driver *)
  loop_iters : int;    (** runtime loop bound in main *)
  fork_sites : int;
      (** size of the single-class factory web: quadratic context blow-up
          for object sensitivity (type sensitivity is immune: one class) *)
  mesh_classes : int;
      (** size of the multi-class factory mesh: context blow-up for type
          sensitivity too *)
}

let small_shape =
  { seed = 42; n_entity = 6; n_fields = 2; n_wrap = 3; n_hier = 2;
    hier_width = 3; n_registry = 3; n_util = 2; n_driver = 3;
    ops_per_driver = 4; loop_iters = 3; fork_sites = 6; mesh_classes = 4 }

(* ------------------------------------------------------------ emission *)

type ctx = {
  buf : Buffer.t;
  rng : Rng.t;
  shape : shape;
  variant : int;
}

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let entity c k = Printf.sprintf "Ent%d_%d" c k
(* class names are namespaced by a numeric component id [c] so that multiple
   generated units could coexist; we use c = 0 throughout *)

let ent ctx k = entity 0 (k mod ctx.shape.n_entity)
let wrap_cls k = Printf.sprintf "Wrap%d" k
let base_cls h = Printf.sprintf "Base%d" h
let sub_cls h i = Printf.sprintf "Sub%d_%d" h i
let reg_cls k = Printf.sprintf "Reg%d" k
let util_cls k = Printf.sprintf "Util%d" k
let driver_cls k = Printf.sprintf "Driver%d" k

(* ---- entity layer ---- *)

let emit_entities ctx =
  let s = ctx.shape in
  for k = 0 to s.n_entity - 1 do
    let name = ent ctx k in
    (* a third of the entities extend the previous one, forming chains *)
    let extends =
      if k > 0 && Rng.chance ctx.rng 33 then
        Printf.sprintf " extends %s" (ent ctx (k - 1))
      else ""
    in
    pf ctx "class %s%s {\n" name extends;
    for f = 0 to s.n_fields - 1 do
      pf ctx "  Object fld%d_%d;\n" k f;
      pf ctx "  void set%d(Object v) { this.fld%d_%d = v; }\n" f k f;
      pf ctx "  Object get%d() { return this.fld%d_%d; }\n" f k f
    done;
    (* an identity-ish method: direct flow through an instance method *)
    pf ctx "  Object self%d(Object x) { Object r = x; return r; }\n" k;
    pf ctx "}\n\n"
  done

(* ---- wrapper layer (nested constructor stores, Figure 3) ---- *)

let emit_wrappers ctx =
  let s = ctx.shape in
  for k = 0 to s.n_wrap - 1 do
    pf ctx "class %s {\n" (wrap_cls k);
    pf ctx "  Object value%d;\n" k;
    pf ctx "  %s(Object v) { this.init%d(v); }\n" (wrap_cls k) k;
    pf ctx "  void init%d(Object v) { this.value%d = v; }\n" k k;
    pf ctx "  Object unwrap%d() { return this.value%d; }\n" k k;
    (* a re-wrapping helper: deepens call chains *)
    pf ctx "  Object viaUtil%d(Object x) { return Util%d.ident(x); }\n" k
      (k mod (max 1 s.n_util));
    pf ctx "}\n\n"
  done

(* ---- polymorphic hierarchies ---- *)

let emit_hierarchies ctx =
  let s = ctx.shape in
  for h = 0 to s.n_hier - 1 do
    pf ctx "class %s {\n" (base_cls h);
    pf ctx "  Object payload%d;\n" h;
    pf ctx "  Object act() { return this.payload%d; }\n" h;
    pf ctx "  void load(Object p) { this.payload%d = p; }\n" h;
    pf ctx "  int kindId() { return 0; }\n";
    pf ctx "}\n\n";
    for i = 0 to s.hier_width - 1 do
      pf ctx "class %s extends %s {\n" (sub_cls h i) (base_cls h);
      pf ctx "  Object state%d_%d;\n" h i;
      if i mod 2 = 0 then
        pf ctx "  Object act() { Object r = this.state%d_%d; if (r == null) { r = new Object(); } return r; }\n"
          h i
      else
        (* odd subclasses defer to the superclass implementation *)
        pf ctx "  Object act() { Object r = super.act(); if (r == null) { r = this.state%d_%d; } return r; }\n"
          h i;
      pf ctx "  void prime() { this.state%d_%d = new Object(); }\n" h i;
      pf ctx "  int kindId() { return %d; }\n" (i + 1);
      pf ctx "}\n\n"
    done
  done

(* ---- registry layer (containers behind methods) ---- *)

let emit_registries ctx =
  let s = ctx.shape in
  for k = 0 to s.n_registry - 1 do
    let name = reg_cls k in
    pf ctx "class %s {\n" name;
    pf ctx "  ArrayList items%d;\n" k;
    pf ctx "  HashMap index%d;\n" k;
    pf ctx "  %s() { this.items%d = new ArrayList(); this.index%d = new HashMap(); }\n"
      name k k;
    pf ctx "  void register(Object o) { this.items%d.add(o); }\n" k;
    pf ctx "  void assoc(Object key, Object v) { this.index%d.put(key, v); }\n" k;
    pf ctx "  Object at(int i) { return this.items%d.get(i); }\n" k;
    pf ctx "  Object find(Object key) { return this.index%d.get(key); }\n" k;
    pf ctx "  int count() { return this.items%d.size(); }\n" k;
    pf ctx "  Iterator all() { return this.items%d.iterator(); }\n" k;
    pf ctx "  Iterator keys() { return this.index%d.keySet().iterator(); }\n" k;
    pf ctx "}\n\n"
  done

(* ---- utility layer (local flow) ---- *)

let emit_utils ctx =
  let s = ctx.shape in
  for k = 0 to s.n_util - 1 do
    pf ctx "class %s {\n" (util_cls k);
    pf ctx "  static Object ident(Object x) { return x; }\n";
    pf ctx "  static Object choose(boolean c, Object a, Object b) { Object r = b; if (c) { r = a; } return r; }\n";
    pf ctx "  static Object orElse(Object a, Object b) { Object r = b; if (a != null) { r = a; } return r; }\n";
    pf ctx "}\n\n"
  done

(* ---- factory web: the object-sensitivity context bomb ----

   A single class whose [fork_k] methods allocate fresh [Web] nodes, copy
   per-object state across, and call further forks on them. Under 2obj the
   abstract objects are (site, allocator-site) pairs, so the web induces
   quadratically many contexts, each re-analyzing stores/loads of [cargo] -
   the cost profile that makes conventional object sensitivity explode on
   real code. Context insensitivity (and Cut-Shortcut, which adds no
   contexts) walks this code once. Type sensitivity collapses it to a single
   context element (one class). Runtime recursion is bounded by [d]. *)

let emit_fork_web ctx =
  let s = ctx.shape in
  let n = s.fork_sites in
  if n > 0 then begin
    pf ctx "class Web {\n";
    pf ctx "  Object cargo;\n";
    pf ctx "  Object grab() { return this.cargo; }\n";
    pf ctx "  void put(Object c) { this.cargo = c; }\n";
    for k = 0 to n - 1 do
      let j1 = ((k * 7) + 1) mod n in
      pf ctx "  Web fork%d(int d) {\n" k;
      pf ctx "    Web n = new Web();\n";
      pf ctx "    n.put(this.grab());\n";
      pf ctx "    if (d > 0) {\n";
      pf ctx "      Web a = n.fork%d(d - 1);\n" j1;
      pf ctx "      n.put(a.grab());\n";
      pf ctx "    }\n";
      pf ctx "    return n;\n";
      pf ctx "  }\n"
    done;
    pf ctx "}\n\n";
    (* the driver: all webs live in one ArrayList, so every fork call site
       dispatches on every web variant - under 2obj that saturates the
       (site, allocator-site) context product, while CI/CSC walk the code
       once. The payload pool scales per-context work. *)
    pf ctx "class WebMain {\n";
    pf ctx "  static void drive() {\n";
    pf ctx "    ArrayList webs = new ArrayList();\n";
    pf ctx "    ArrayList pool = new ArrayList();\n";
    for _ = 0 to (n / 2) - 1 do
      pf ctx "    pool.add(new Object());\n"
    done;
    for k = 0 to n - 1 do
      pf ctx "    Web w%d = new Web();\n" k;
      pf ctx "    w%d.put(pool.get(%d));\n" k (k mod max 1 (n / 2));
      pf ctx "    webs.add(w%d);\n" k
    done;
    for k = 0 to n - 1 do
      pf ctx "    Web x%d = (Web) webs.get(%d);\n" k (k mod n);
      pf ctx "    Web y%d = x%d.fork%d(1);\n" k k k;
      pf ctx "    y%d.put(x%d.grab());\n" k k;
      pf ctx "    webs.add(y%d);\n" k
    done;
    pf ctx "    System.print(webs.size());\n";
    pf ctx "  }\n";
    pf ctx "}\n\n"
  end

(* ---- factory mesh: the type-sensitivity context bomb ----

   As above but across many classes, so type contexts (class pairs) multiply
   as well. *)

let mesh_cls i = Printf.sprintf "Mesh%d" i

(* The shared [MeshCore] is allocated by each of the [mesh_classes] spawner
   classes (so core objects carry distinct *type* context elements: the
   allocating class). All cores live in one merged list, and every [spin_k]
   call site dispatches on all of them: both 2obj and 2type saturate their
   context products here, while CI/CSC stay linear. *)
let emit_mesh ctx =
  let s = ctx.shape in
  let n = s.mesh_classes in
  if n > 0 then begin
    pf ctx "class MeshCore {\n";
    pf ctx "  Object freight;\n";
    pf ctx "  Object pull() { return this.freight; }\n";
    pf ctx "  void push(Object c) { this.freight = c; }\n";
    for k = 0 to n - 1 do
      let j = ((k * 7) + 1) mod n in
      pf ctx "  MeshCore spin%d(int d) {\n" k;
      pf ctx "    MeshCore n = new MeshCore();\n";
      pf ctx "    n.push(this.pull());\n";
      pf ctx "    if (d > 0) {\n";
      pf ctx "      MeshCore a = n.spin%d(d - 1);\n" j;
      pf ctx "      n.push(a.pull());\n";
      pf ctx "    }\n";
      pf ctx "    return n;\n";
      pf ctx "  }\n"
    done;
    pf ctx "}\n\n";
    for i = 0 to n - 1 do
      pf ctx "class %s {\n" (mesh_cls i);
      pf ctx "  MeshCore spawn(Object payload) {\n";
      pf ctx "    MeshCore core = new MeshCore();\n";
      pf ctx "    core.push(payload);\n";
      pf ctx "    return core;\n";
      pf ctx "  }\n";
      pf ctx "}\n\n"
    done;
    pf ctx "class MeshMain {\n";
    pf ctx "  static void drive() {\n";
    pf ctx "    ArrayList cores = new ArrayList();\n";
    pf ctx "    ArrayList pool = new ArrayList();\n";
    for _ = 0 to (n / 2) - 1 do
      pf ctx "    pool.add(new Object());\n"
    done;
    for i = 0 to n - 1 do
      pf ctx "    %s g%d = new %s();\n" (mesh_cls i) i (mesh_cls i);
      pf ctx "    cores.add(g%d.spawn(pool.get(%d)));\n" i
        (i mod max 1 (n / 2))
    done;
    for i = 0 to n - 1 do
      pf ctx "    MeshCore c%d = (MeshCore) cores.get(%d);\n" i (i mod n);
      pf ctx "    MeshCore k%d = c%d.spin%d(1);\n" i i i;
      pf ctx "    k%d.push(c%d.pull());\n" i i;
      pf ctx "    cores.add(k%d);\n" i
    done;
    pf ctx "    System.print(cores.size());\n";
    pf ctx "  }\n";
    pf ctx "}\n\n"
  end

(* ---- driver layer ---- *)

(* Fixed statements appended to Driver0.op0_0 when generating an "edited"
   revision of a shape program (see [generate ?variant]). Keyed only by the
   variant integer and consuming no RNG draws, so every other method of the
   variant-k rendering is byte-identical to the variant-0 one — exactly a
   single-method body edit, which is what the incremental engine (lib/pta
   Inc) and bench E17 want to measure. *)
let emit_variant_stmts ctx =
  let v = ctx.variant in
  let s = ctx.shape in
  if s.n_entity > 0 && s.n_fields > 0 then begin
    let f = v mod s.n_fields in
    pf ctx "    %s ev%d = new %s();\n" (ent ctx 0) v (ent ctx 0);
    pf ctx "    ev%d.set%d(new Object());\n" v f;
    pf ctx "    Object er%d = ev%d.get%d();\n" v v f;
    pf ctx "    Object es%d = ev%d.self0(er%d);\n" v v v
  end;
  pf ctx "    if (salt > %d) { System.print(\"variant%d\"); }\n" (v + 1000) v

(* Each driver op method exercises one scenario. They receive an int salt so
   the interpreter runs them with slightly different data. *)
let emit_driver_op ctx ~d ~j =
  let s = ctx.shape in
  let rng = ctx.rng in
  let e1 = Rng.int rng s.n_entity and e2 = Rng.int rng s.n_entity in
  let f1 = Rng.int rng s.n_fields in
  let w = Rng.int rng (max 1 s.n_wrap) in
  let h = Rng.int rng (max 1 s.n_hier) in
  let sub1 = Rng.int rng s.hier_width and sub2 = Rng.int rng s.hier_width in
  let r1 = Rng.int rng (max 1 s.n_registry) in
  let u = Rng.int rng (max 1 s.n_util) in
  let scenario = Rng.int rng 8 in
  pf ctx "  void op%d_%d(int salt) {\n" d j;
  (match scenario with
  | 0 ->
    (* setter/getter pairs on two distinct entities *)
    pf ctx "    %s a = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s b = new %s();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    a.set%d(new Object());\n" f1;
    pf ctx "    b.set%d(\"tag%d_%d\");\n" f1 d j;
    pf ctx "    Object ra = a.get%d();\n" f1;
    pf ctx "    Object rb = b.get%d();\n" f1;
    pf ctx "    if (ra == rb) { System.print(\"alias%d_%d\"); }\n" d j
  | 1 ->
    (* wrappers + nested constructor stores *)
    pf ctx "    %s ent = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s w1 = new %s(ent);\n" (wrap_cls w) (wrap_cls w);
    pf ctx "    %s w2 = new %s(new Object());\n" (wrap_cls w) (wrap_cls w);
    pf ctx "    Object u1 = w1.unwrap%d();\n" w;
    pf ctx "    Object u2 = w2.unwrap%d();\n" w;
    pf ctx "    %s back = (%s) u1;\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    back.set%d(u2);\n" f1
  | 2 ->
    (* direct container usage with iterator + cast *)
    pf ctx "    ArrayList list = new ArrayList();\n";
    pf ctx "    int i = 0;\n";
    pf ctx "    while (i < 2 + (salt %% 3)) {\n";
    pf ctx "      list.add(new %s());\n" (ent ctx e1);
    pf ctx "      i = i + 1;\n";
    pf ctx "    }\n";
    pf ctx "    %s first = (%s) list.get(0);\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    first.set%d(list.get(list.size() - 1));\n" f1;
    pf ctx "    Iterator it = list.iterator();\n";
    pf ctx "    while (it.hasNext()) {\n";
    pf ctx "      %s cur = (%s) it.next();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      Object got = cur.get%d();\n" f1;
    pf ctx "      if (got != null) { System.print(\"hit%d_%d\"); }\n" d j;
    pf ctx "    }\n"
  | 3 ->
    (* registries + maps + key iteration *)
    pf ctx "    %s reg = new %s();\n" (reg_cls r1) (reg_cls r1);
    pf ctx "    %s k1 = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s v1 = new %s();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    reg.register(v1);\n";
    pf ctx "    reg.register(new %s());\n" (ent ctx e2);
    pf ctx "    reg.assoc(k1, v1);\n";
    pf ctx "    %s out = (%s) reg.at(0);\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    Object hit = reg.find(k1);\n";
    pf ctx "    Iterator keys = reg.keys();\n";
    pf ctx "    while (keys.hasNext()) {\n";
    pf ctx "      %s kk = (%s) keys.next();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      kk.set%d(hit);\n" f1;
    pf ctx "    }\n";
    pf ctx "    out.set%d(hit);\n" (f1 mod s.n_fields)
  | 5 ->
    (* stacks and queues of entities *)
    pf ctx "    Stack st = new Stack();\n";
    pf ctx "    Queue qu = new Queue();\n";
    pf ctx "    for (int i = 0; i < 2 + (salt %% 2); i = i + 1) {\n";
    pf ctx "      st.push(new %s());\n" (ent ctx e1);
    pf ctx "      qu.enqueue(new %s());\n" (ent ctx e2);
    pf ctx "    }\n";
    pf ctx "    %s top = (%s) st.pop();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s head = (%s) qu.dequeue();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    top.set%d(head);\n" f1;
    pf ctx "    Object back = top.get%d();\n" f1;
    pf ctx "    if (back instanceof %s) { System.print(\"q%d_%d\"); }\n"
      (ent ctx e2) d j
  | 6 ->
    (* deques + builders *)
    pf ctx "    ArrayDeque dq = new ArrayDeque();\n";
    pf ctx "    dq.addFirst(new %s());\n" (ent ctx e1);
    pf ctx "    dq.addLast(new %s());\n" (ent ctx e2);
    pf ctx "    StringBuilder sb = new StringBuilder();\n";
    pf ctx "    sb.append(dq.peekFirst()).append(dq.peekLast());\n";
    pf ctx "    Object first = sb.part(0);\n";
    pf ctx "    if (first instanceof %s) {\n" (ent ctx e1);
    pf ctx "      %s fe = (%s) first;\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      fe.set%d(dq.removeLast());\n" f1;
    pf ctx "    }\n"
  | 7 ->
    (* optionals wrapping registry lookups *)
    pf ctx "    %s reg7 = new %s();\n" (reg_cls r1) (reg_cls r1);
    pf ctx "    %s key7 = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    reg7.assoc(key7, new %s());\n" (ent ctx e2);
    pf ctx "    Optional found = Optional.of(reg7.find(key7));\n";
    pf ctx "    Object v7 = found.orElse(new %s());\n" (ent ctx e2);
    pf ctx "    if (v7 instanceof %s) {\n" (ent ctx e2);
    pf ctx "      %s typed = (%s) v7;\n" (ent ctx e2) (ent ctx e2);
    pf ctx "      typed.set%d(key7);\n" f1;
    pf ctx "    }\n"
  | _ ->
    (* polymorphism + local flow utilities *)
    pf ctx "    %s n1 = new %s();\n" (sub_cls h sub1) (sub_cls h sub1);
    pf ctx "    %s n2 = new %s();\n" (sub_cls h sub2) (sub_cls h sub2);
    pf ctx "    n1.prime();\n";
    pf ctx "    n2.load(new Object());\n";
    pf ctx "    %s pick = (%s) %s.choose(salt %% 2 == 0, n1, n2);\n" (base_cls h)
      (base_cls h) (util_cls u);
    pf ctx "    Object res = pick.act();\n";
    pf ctx "    Object res2 = %s.orElse(res, new Object());\n" (util_cls u);
    pf ctx "    ArrayList bag = new ArrayList();\n";
    pf ctx "    bag.add(n1);\n";
    pf ctx "    bag.add(n2);\n";
    pf ctx "    Iterator bit = bag.iterator();\n";
    pf ctx "    while (bit.hasNext()) {\n";
    pf ctx "      %s node = (%s) bit.next();\n" (base_cls h) (base_cls h);
    pf ctx "      if (node.kindId() > %d) { node.load(res2); }\n" (s.hier_width / 2);
    pf ctx "    }\n");
  if d = 0 && j = 0 && ctx.variant > 0 then emit_variant_stmts ctx;
  pf ctx "  }\n"

let emit_drivers ctx =
  let s = ctx.shape in
  for d = 0 to s.n_driver - 1 do
    pf ctx "class %s {\n" (driver_cls d);
    for j = 0 to s.ops_per_driver - 1 do
      emit_driver_op ctx ~d ~j
    done;
    pf ctx "  void runAll%d(int salt) {\n" d;
    for j = 0 to s.ops_per_driver - 1 do
      pf ctx "    this.op%d_%d(salt + %d);\n" d j j
    done;
    pf ctx "  }\n";
    pf ctx "}\n\n"
  done

let emit_main ctx =
  let s = ctx.shape in
  pf ctx "class Main {\n";
  pf ctx "  static void main() {\n";
  pf ctx "    int round = 0;\n";
  pf ctx "    while (round < %d) {\n" s.loop_iters;
  for d = 0 to s.n_driver - 1 do
    pf ctx "      %s d%d = new %s();\n" (driver_cls d) d (driver_cls d);
    pf ctx "      d%d.runAll%d(round);\n" d d
  done;
  pf ctx "      round = round + 1;\n";
  pf ctx "    }\n";
  if s.fork_sites > 0 then pf ctx "    WebMain.drive();\n";
  if s.mesh_classes > 0 then pf ctx "    MeshMain.drive();\n";
  pf ctx "    System.print(\"done\");\n";
  pf ctx "  }\n";
  pf ctx "}\n"

(** Generate a full MiniJava program (without the mini-JDK, which the
    frontend prepends). [variant > 0] appends fixed, variant-keyed statements
    to [Driver0.op0_0] without consuming RNG draws, so two variants of the
    same shape differ in exactly that one method body. *)
let generate ?(variant = 0) (shape : shape) : string =
  let ctx =
    { buf = Buffer.create 65536; rng = Rng.create shape.seed; shape; variant }
  in
  emit_entities ctx;
  emit_wrappers ctx;
  emit_hierarchies ctx;
  emit_registries ctx;
  emit_utils ctx;
  emit_fork_web ctx;
  emit_mesh ctx;
  emit_drivers ctx;
  emit_main ctx;
  Buffer.contents ctx.buf

(* ================================================================== *)
(* Randomized, type-correct program generation for the soundness      *)
(* fuzzer (lib/fuzz). Unlike the shape-based generator above, which   *)
(* emits a fixed architecture, [Rand] draws a random *plan* — a tree  *)
(* of typed statements over a random class table — and renders it to  *)
(* MiniJava source. Plans, not source text, are what the fuzzer       *)
(* shrinks: removing a plan statement cascades through its def-use    *)
(* closure, so every shrink candidate is again a well-formed program. *)
(* ================================================================== *)

module Rand = struct
  (* ---- class table ---- *)

  type cls = {
    k_parent : int option;  (* index of superclass, always a lower index *)
    k_nf : int;             (* own Object fields f<c>_<j>, j < k_nf *)
    k_act : int;            (* act() body variant, see [render_act] *)
  }

  (* ---- statement plans ----

     Variables are numbered globally and defined exactly once (SSA-ish at
     the source level); compound statements open lexical scopes, so a var
     defined inside an [if]/loop body is invisible outside it. *)

  type cond = CEven | COdd  (* round % 2 == 0 / 1: varies across rounds *)

  type pstmt =
    | PNew of { v : int; cls : int }
    | PNewObj of { v : int }
    | PStr of { v : int; tag : int }
    | PMake of { v : int; cls : int }  (* static factory: local-flow shape *)
    | PPipe of { v : int; src : int }  (* static identity chain *)
    | PWiden of { v : int; anc : int; src : int }  (* Anc v = src; *)
    | PChoice of { v : int; anc : int option; a : int; b : int; cond : cond }
    | PSet of { recv : int; acc : int * int; arg : int }  (* recv.set<c>_<j>(arg) *)
    | PGet of { v : int; recv : int; acc : int * int }
    | PVirt of { v : int; recv : int }  (* Object v = recv.act(); *)
    | PCast of { v : int; cls : int; src : int; guarded : bool }
    | PListNew of { v : int }
    | PListAdd of { list : int; arg : int }
    | PListGet of { v : int; list : int }
    | PIter of { it : int; elem : int; list : int; body : pstmt list }
    | PMapNew of { v : int }
    | PMapPut of { map : int; key : int; value : int }
    | PMapGet of { v : int; map : int; key : int }
    | PArrNew of { v : int; len : int }
    | PArrStore of { arr : int; idx : int; arg : int }
    | PArrLoad of { v : int; arr : int; idx : int }
    | PIf of { cond : cond; body : pstmt list }
    | PLoop of { i : int; n : int; body : pstmt list }
    | PPrint of { arg : int }
    | PSource of { v : int }  (* Object v = Flow.source();  taint source *)
    | PScrub of { v : int; src : int }  (* Object v = Flow.scrub(src); *)
    | PSink of { arg : int }  (* Flow.sink(arg);  taint sink *)

  type plan = {
    p_seed : int;
    p_classes : cls array;
    p_stmts : pstmt list;
    p_rounds : int;
    p_taint_leaks : int;  (* planted source->sink chains (ground truth) *)
    p_taint_sanitized : int;  (* planted source->scrub->sink chains *)
  }

  let seed_of p = p.p_seed
  let planted_leaks p = p.p_taint_leaks
  let planted_sanitized p = p.p_taint_sanitized

  (* ---- class-table helpers ---- *)

  let rec ancestors classes c =
    match classes.(c).k_parent with
    | None -> []
    | Some p -> p :: ancestors classes p

  let descendants classes c =
    let out = ref [] in
    Array.iteri
      (fun d _ -> if d <> c && List.mem c (ancestors classes d) then
          out := d :: !out)
      classes;
    !out

  (* accessors callable through a receiver of static class [c]:
     own fields plus every ancestor's *)
  let accessors classes c =
    List.concat_map
      (fun k -> List.init classes.(k).k_nf (fun j -> (k, j)))
      (c :: ancestors classes c)

  (* ---- def/use, for shrink-time cascade removal ---- *)

  let defs = function
    | PNew { v; _ } | PNewObj { v } | PStr { v; _ } | PMake { v; _ }
    | PPipe { v; _ } | PWiden { v; _ } | PChoice { v; _ } | PGet { v; _ }
    | PVirt { v; _ } | PCast { v; _ } | PListNew { v } | PListGet { v; _ }
    | PMapNew { v } | PMapGet { v; _ } | PArrNew { v; _ }
    | PArrLoad { v; _ } | PSource { v } | PScrub { v; _ } -> [ v ]
    | PIter { it; elem; _ } -> [ it; elem ]
    | PLoop { i; _ } -> [ i ]
    | PSet _ | PListAdd _ | PMapPut _ | PArrStore _ | PIf _ | PPrint _
    | PSink _ -> []

  let uses = function
    | PPipe { src; _ } | PWiden { src; _ } | PCast { src; _ }
    | PScrub { src; _ } -> [ src ]
    | PChoice { a; b; _ } -> [ a; b ]
    | PSet { recv; arg; _ } -> [ recv; arg ]
    | PGet { recv; _ } | PVirt { recv; _ } -> [ recv ]
    | PListAdd { list; arg } -> [ list; arg ]
    | PListGet { list; _ } | PIter { list; _ } -> [ list ]
    | PMapPut { map; key; value } -> [ map; key; value ]
    | PMapGet { map; key; _ } -> [ map; key ]
    | PArrStore { arr; arg; _ } -> [ arr; arg ]
    | PArrLoad { arr; _ } -> [ arr ]
    | PPrint { arg } | PSink { arg } -> [ arg ]
    | PNew _ | PNewObj _ | PStr _ | PMake _ | PListNew _ | PMapNew _
    | PArrNew _ | PIf _ | PLoop _ | PSource _ -> []

  let body_of = function
    | PIter { body; _ } | PIf { body; _ } | PLoop { body; _ } -> Some body
    | _ -> None

  let with_body s body =
    match s with
    | PIter r -> PIter { r with body }
    | PIf r -> PIf { r with body }
    | PLoop r -> PLoop { r with body }
    | s -> s

  let rec count_stmts stmts =
    List.fold_left
      (fun acc s ->
        acc + 1
        + match body_of s with Some b -> count_stmts b | None -> 0)
      0 stmts

  let stmt_count p = count_stmts p.p_stmts

  (* ---- generation ---- *)

  type rtyp = RObj | RCls of int | RStr | RList | RMap | RArr of int

  type entry = {
    e_id : int;
    e_ty : rtyp;
    e_nn : bool;  (* definitely non-null: eligible as a receiver *)
    mutable e_filled : bool;  (* lists: definitely non-empty *)
    mutable e_keys : int list;  (* maps: keys definitely put *)
  }

  type genv = {
    g_rng : Rng.t;
    g_classes : cls array;
    mutable g_next : int;  (* fresh var counter *)
    mutable g_budget : int;
  }

  let fresh g =
    let v = g.g_next in
    g.g_next <- v + 1;
    v

  let random_classes rng =
    let n = Rng.range rng 2 5 in
    Array.init n (fun c ->
        {
          k_parent =
            (if c > 0 && Rng.chance rng 60 then Some (Rng.int rng c) else None);
          k_nf = Rng.range rng 1 2;
          k_act = Rng.int rng 3;
        })

  (* pick a var satisfying [pred] from [scope], newest-biased *)
  let pick_var g scope pred =
    let cands = List.filter pred scope in
    match cands with
    | [] -> None
    | _ ->
      let arr = Array.of_list cands in
      (* bias towards recent definitions to create longer flow chains *)
      let i = min (Rng.int g (Array.length arr)) (Rng.int g (Array.length arr)) in
      Some arr.(i)

  let is_ref e = match e.e_ty with RObj | RCls _ | RStr -> true | _ -> false
  let is_cls e = match e.e_ty with RCls _ -> true | _ -> false
  let is_list e = e.e_ty = RList
  let is_map e = e.e_ty = RMap
  let is_arr e = match e.e_ty with RArr _ -> true | _ -> false

  (* Generate one statement given the in-scope entries (innermost first).
     [definite] is true when the current program point is executed
     unconditionally relative to the enclosing scope's entry — only then may
     container population facts be recorded. Returns the statement plus the
     entries it brings into scope. *)
  let rec gen_stmt g ~scope ~definite ~depth : (pstmt * entry list) option =
    let rng = g.g_rng in
    let entry ?(nn = true) id ty = { e_id = id; e_ty = ty; e_nn = nn;
                                     e_filled = false; e_keys = [] } in
    let cond () = if Rng.bool rng then CEven else COdd in
    (* candidate productions as (weight, thunk); thunks may still give up *)
    let productions =
      [
        (6, fun () ->
            let cls = Rng.int rng (Array.length g.g_classes) in
            let v = fresh g in
            Some (PNew { v; cls }, [ entry v (RCls cls) ]));
        (3, fun () ->
            let v = fresh g in
            Some (PNewObj { v }, [ entry v RObj ]));
        (2, fun () ->
            let v = fresh g in
            Some (PStr { v; tag = Rng.int rng 100 }, [ entry v RStr ]));
        (2, fun () ->
            let cls = Rng.int rng (Array.length g.g_classes) in
            let v = fresh g in
            Some (PMake { v; cls }, [ entry v (RCls cls) ]));
        (3, fun () ->
            match pick_var rng scope is_ref with
            | Some src ->
              (* rendered with a declared type of Object: pipe erases the
                 static type, so class-typed use again needs a cast *)
              let v = fresh g in
              Some (PPipe { v; src = src.e_id }, [ entry ~nn:src.e_nn v RObj ])
            | None -> None);
        (4, fun () ->
            match pick_var rng scope is_cls with
            | Some src ->
              let c = (match src.e_ty with RCls c -> c | _ -> assert false) in
              (match ancestors g.g_classes c with
              | [] -> None
              | ancs ->
                let anc = Rng.pick_list rng ancs in
                let v = fresh g in
                Some (PWiden { v; anc; src = src.e_id },
                      [ entry ~nn:src.e_nn v (RCls anc) ]))
            | None -> None);
        (3, fun () ->
            match (pick_var rng scope is_ref, pick_var rng scope is_ref) with
            | Some a, Some b when a.e_id <> b.e_id ->
              (* join two values under a round-varying condition; the static
                 type is the closest common class ancestor, or Object *)
              let anc =
                match (a.e_ty, b.e_ty) with
                | RCls ca, RCls cb ->
                  let ancs_a = ca :: ancestors g.g_classes ca in
                  let ancs_b = cb :: ancestors g.g_classes cb in
                  List.find_opt (fun x -> List.mem x ancs_b) ancs_a
                | _ -> None
              in
              let v = fresh g in
              Some (PChoice { v; anc; a = a.e_id; b = b.e_id; cond = cond () },
                    [ entry ~nn:(a.e_nn && b.e_nn) v
                        (match anc with Some c -> RCls c | None -> RObj) ])
            | _ -> None);
        (6, fun () ->
            match pick_var rng scope (fun e -> is_cls e && e.e_nn) with
            | Some recv ->
              let c = (match recv.e_ty with RCls c -> c | _ -> assert false) in
              (match (accessors g.g_classes c, pick_var rng scope is_ref) with
              | [], _ | _, None -> None
              | accs, Some arg ->
                Some (PSet { recv = recv.e_id; acc = Rng.pick_list rng accs;
                             arg = arg.e_id }, []))
            | None -> None);
        (5, fun () ->
            match pick_var rng scope (fun e -> is_cls e && e.e_nn) with
            | Some recv ->
              let c = (match recv.e_ty with RCls c -> c | _ -> assert false) in
              (match accessors g.g_classes c with
              | [] -> None
              | accs ->
                let v = fresh g in
                Some (PGet { v; recv = recv.e_id; acc = Rng.pick_list rng accs },
                      [ entry ~nn:false v RObj ]))
            | None -> None);
        (5, fun () ->
            match pick_var rng scope (fun e -> is_cls e && e.e_nn) with
            | Some recv ->
              let v = fresh g in
              Some (PVirt { v; recv = recv.e_id }, [ entry ~nn:false v RObj ])
            | None -> None);
        (4, fun () ->
            (* guarded downcast: always safe, always leaves v non-null *)
            match pick_var rng scope is_ref with
            | Some src ->
              let cls = Rng.int rng (Array.length g.g_classes) in
              let v = fresh g in
              Some (PCast { v; cls; src = src.e_id; guarded = true },
                    [ entry v (RCls cls) ])
            | None -> None);
        (1, fun () ->
            (* unguarded downcast to a strict subclass: may genuinely fail at
               runtime, exercising the failed-cast ground truth (the trace
               halts there, which the oracle tolerates) *)
            match pick_var rng scope is_cls with
            | Some src ->
              let c = (match src.e_ty with RCls c -> c | _ -> assert false) in
              (match descendants g.g_classes c with
              | [] -> None
              | ds ->
                let cls = Rng.pick_list rng ds in
                let v = fresh g in
                Some (PCast { v; cls; src = src.e_id; guarded = false },
                      [ entry ~nn:src.e_nn v (RCls cls) ]))
            | None -> None);
        (4, fun () ->
            let v = fresh g in
            Some (PListNew { v }, [ entry v RList ]));
        (5, fun () ->
            match (pick_var rng scope is_list, pick_var rng scope is_ref) with
            | Some l, Some arg ->
              if definite then l.e_filled <- true;
              Some (PListAdd { list = l.e_id; arg = arg.e_id }, [])
            | _ -> None);
        (4, fun () ->
            match pick_var rng scope (fun e -> is_list e && e.e_filled) with
            | Some l ->
              let v = fresh g in
              Some (PListGet { v; list = l.e_id }, [ entry ~nn:false v RObj ])
            | None -> None);
        (2, fun () ->
            let v = fresh g in
            Some (PMapNew { v }, [ entry v RMap ]));
        (3, fun () ->
            match
              (pick_var rng scope is_map,
               pick_var rng scope (fun e -> is_ref e && e.e_nn),
               pick_var rng scope is_ref)
            with
            | Some m, Some key, Some value ->
              if definite then m.e_keys <- key.e_id :: m.e_keys;
              Some (PMapPut { map = m.e_id; key = key.e_id;
                              value = value.e_id }, [])
            | _ -> None);
        (3, fun () ->
            match pick_var rng scope (fun e -> is_map e && e.e_keys <> []) with
            | Some m ->
              let key = Rng.pick_list rng m.e_keys in
              (* the key may have gone out of scope if it was defined in a
                 nested block; only use keys still visible here *)
              if List.exists (fun e -> e.e_id = key) scope then begin
                let v = fresh g in
                Some (PMapGet { v; map = m.e_id; key }, [ entry ~nn:false v RObj ])
              end
              else None
            | None -> None);
        (2, fun () ->
            let v = fresh g in
            let len = Rng.range rng 2 4 in
            Some (PArrNew { v; len }, [ entry v (RArr len) ]));
        (3, fun () ->
            match (pick_var rng scope is_arr, pick_var rng scope is_ref) with
            | Some a, Some arg ->
              let len = (match a.e_ty with RArr l -> l | _ -> assert false) in
              Some (PArrStore { arr = a.e_id; idx = Rng.int rng len;
                                arg = arg.e_id }, [])
            | _ -> None);
        (2, fun () ->
            match pick_var rng scope is_arr with
            | Some a ->
              let len = (match a.e_ty with RArr l -> l | _ -> assert false) in
              let v = fresh g in
              Some (PArrLoad { v; arr = a.e_id; idx = Rng.int rng len },
                    [ entry ~nn:false v RObj ])
            | None -> None);
        (3, fun () ->
            match pick_var rng scope is_list with
            | Some l ->
              if depth >= 2 then None
              else begin
                let it = fresh g and elem = fresh g in
                let body_scope =
                  { e_id = elem; e_ty = RObj; e_nn = false; e_filled = false;
                    e_keys = [] } :: scope
                in
                let body =
                  gen_body g ~scope:body_scope ~definite:false ~depth:(depth + 1)
                    ~len:(Rng.range rng 1 2)
                in
                Some (PIter { it; elem; list = l.e_id; body }, [])
              end
            | None -> None);
        (3, fun () ->
            if depth >= 2 then None
            else
              let body =
                gen_body g ~scope ~definite:false ~depth:(depth + 1)
                  ~len:(Rng.range rng 1 3)
              in
              if body = [] then None
              else Some (PIf { cond = cond (); body }, []));
        (3, fun () ->
            if depth >= 2 then None
            else begin
              let i = fresh g in
              let body =
                (* fixed bound >= 1, so the body always executes: population
                   facts established inside remain definite *)
                gen_body g ~scope ~definite ~depth:(depth + 1)
                  ~len:(Rng.range rng 1 3)
              in
              if body = [] then None
              else Some (PLoop { i; n = Rng.range rng 1 3; body }, [])
            end);
        (1, fun () ->
            match pick_var rng scope is_ref with
            | Some x -> Some (PPrint { arg = x.e_id }, [])
            | None -> None);
        (2, fun () ->
            (* taint source: a fresh, tainted Object *)
            let v = fresh g in
            Some (PSource { v }, [ entry v RObj ]));
        (2, fun () ->
            (* sanitizer: launders whatever flows in (returns a fresh clean
               object, so the result is never tainted) *)
            match pick_var rng scope is_ref with
            | Some src ->
              let v = fresh g in
              Some (PScrub { v; src = src.e_id }, [ entry v RObj ])
            | None -> None);
        (2, fun () ->
            (* sink: a dynamic leak iff the argument carries taint here *)
            match pick_var rng scope is_ref with
            | Some x -> Some (PSink { arg = x.e_id }, [])
            | None -> None);
      ]
    in
    let total = List.fold_left (fun a (w, _) -> a + w) 0 productions in
    (* rejection-sample: try a few draws before giving up on this slot *)
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let roll = Rng.int rng total in
        let rec pick acc = function
          | [] -> assert false
          | (w, th) :: rest ->
            if roll < acc + w then th () else pick (acc + w) rest
        in
        match pick 0 productions with
        | Some r -> Some r
        | None -> attempt (tries - 1)
      end
    in
    attempt 4

  and gen_body g ~scope ~definite ~depth ~len : pstmt list =
    let scope = ref scope in
    let out = ref [] in
    let n = ref len in
    while !n > 0 && g.g_budget > 0 do
      (match gen_stmt g ~scope:!scope ~definite ~depth with
      | Some (s, news) ->
        g.g_budget <- g.g_budget - 1;
        out := s :: !out;
        scope := news @ !scope
      | None -> ());
      decr n
    done;
    List.rev !out

  (* a fixed prelude so every program exercises allocation, widening,
     virtual dispatch, containers and a guarded cast regardless of the
     random draw *)
  let gen_prelude g : pstmt list * entry list =
    let entry ?(nn = true) id ty = { e_id = id; e_ty = ty; e_nn = nn;
                                     e_filled = false; e_keys = [] } in
    let rng = g.g_rng in
    let nclasses = Array.length g.g_classes in
    (* prefer a class with a parent, to guarantee a widening exists *)
    let with_parent =
      List.filter (fun c -> g.g_classes.(c).k_parent <> None)
        (List.init nclasses Fun.id)
    in
    let c0 =
      match with_parent with
      | [] -> Rng.int rng nclasses
      | cs -> Rng.pick_list rng cs
    in
    let v_obj = fresh g in
    let v0 = fresh g in
    let stmts = ref [ PNewObj { v = v_obj }; PNew { v = v0; cls = c0 } ] in
    let scope = ref [ entry v0 (RCls c0); entry v_obj RObj ] in
    (match g.g_classes.(c0).k_parent with
    | Some anc ->
      let vw = fresh g in
      stmts := PWiden { v = vw; anc; src = v0 } :: !stmts;
      scope := entry vw (RCls anc) :: !scope
    | None -> ());
    let va = fresh g in
    stmts := PVirt { v = va; recv = v0 } :: !stmts;
    scope := entry ~nn:false va RObj :: !scope;
    let vl = fresh g in
    stmts := PListNew { v = vl } :: !stmts;
    let le = entry vl RList in
    le.e_filled <- true;
    scope := le :: !scope;
    stmts := PListAdd { list = vl; arg = v0 } :: !stmts;
    let vg = fresh g in
    stmts := PListGet { v = vg; list = vl } :: !stmts;
    scope := entry ~nn:false vg RObj :: !scope;
    let vc = fresh g in
    stmts := PCast { v = vc; cls = c0; src = vg; guarded = true } :: !stmts;
    scope := entry vc (RCls c0) :: !scope;
    (List.rev !stmts, !scope)

  let generate ~seed ~max_size : plan =
    let rng = Rng.create seed in
    let classes = random_classes rng in
    let g = { g_rng = rng; g_classes = classes; g_next = 0;
              g_budget = max max_size 8 } in
    let prelude, scope = gen_prelude g in
    g.g_budget <- g.g_budget - List.length prelude;
    let scope = ref scope in
    let out = ref (List.rev prelude) in
    while g.g_budget > 0 do
      (match gen_stmt g ~scope:!scope ~definite:true ~depth:0 with
      | Some (s, news) ->
        out := s :: !out;
        scope := news @ !scope
      | None -> ());
      g.g_budget <- g.g_budget - 1
    done;
    (* plant ground-truth flows at the end of the program, where every value
       they produce is guaranteed to reach the sink: one leaking
       source->pipe->sink chain and one sanitized source->scrub->sink chain
       (each with independent probability, so programs without planted flows
       keep exercising the organic source/sink productions) *)
    let planted_leaks = ref 0 and planted_san = ref 0 in
    if Rng.chance rng 60 then begin
      let vs = fresh g and vp = fresh g in
      out := PSink { arg = vp } :: PPipe { v = vp; src = vs }
             :: PSource { v = vs } :: !out;
      incr planted_leaks
    end;
    if Rng.chance rng 60 then begin
      let vs = fresh g and vc = fresh g in
      out := PSink { arg = vc } :: PScrub { v = vc; src = vs }
             :: PSource { v = vs } :: !out;
      incr planted_san
    end;
    { p_seed = seed; p_classes = classes; p_stmts = List.rev !out;
      p_rounds = Rng.range rng 2 3; p_taint_leaks = !planted_leaks;
      p_taint_sanitized = !planted_san }

  (* ---- rendering ---- *)

  let cls_name c = Printf.sprintf "A%d" c
  let fld_name c j = Printf.sprintf "f%d_%d" c j
  let vn v = Printf.sprintf "v%d" v

  let cond_src = function
    | CEven -> "round % 2 == 0"
    | COdd -> "round % 2 == 1"

  (* features actually used by the surviving statements; rendering emits
     only these, so shrinking a plan sheds classes and methods too *)
  type used = {
    mutable u_classes : int list;
    mutable u_accs : (int * int) list;
    mutable u_act : bool;
    mutable u_makes : int list;
    mutable u_pipe : bool;
    mutable u_source : bool;
    mutable u_sink : bool;
    mutable u_scrub : bool;
  }

  let collect_used classes stmts =
    let u = { u_classes = []; u_accs = []; u_act = false; u_makes = [];
              u_pipe = false; u_source = false; u_sink = false;
              u_scrub = false } in
    let add_cls c = if not (List.mem c u.u_classes) then
        u.u_classes <- c :: u.u_classes in
    let rec go s =
      (match s with
      | PNew { cls; _ } | PCast { cls; _ } -> add_cls cls
      | PMake { cls; _ } ->
        add_cls cls;
        if not (List.mem cls u.u_makes) then u.u_makes <- cls :: u.u_makes
      | PWiden { anc; _ } -> add_cls anc
      | PChoice { anc = Some c; _ } -> add_cls c
      | PSet { acc; _ } | PGet { acc; _ } ->
        add_cls (fst acc);
        if not (List.mem acc u.u_accs) then u.u_accs <- acc :: u.u_accs
      | PVirt _ -> u.u_act <- true
      | PPipe _ -> u.u_pipe <- true
      | PSource _ -> u.u_source <- true
      | PSink _ -> u.u_sink <- true
      | PScrub _ -> u.u_scrub <- true
      | _ -> ());
      match body_of s with Some b -> List.iter go b | None -> ()
    in
    List.iter go stmts;
    (* close under superclasses: extends-clauses and widened receivers need
       every ancestor present *)
    let rec close c =
      add_cls c;
      match classes.(c).k_parent with Some p -> close p | None -> ()
    in
    List.iter close u.u_classes;
    u

  let render_class buf classes u c =
    let k = classes.(c) in
    let ext =
      match k.k_parent with
      | Some p -> Printf.sprintf " extends %s" (cls_name p)
      | None -> ""
    in
    Printf.bprintf buf "class %s%s {\n" (cls_name c) ext;
    for j = 0 to k.k_nf - 1 do
      Printf.bprintf buf "  Object %s;\n" (fld_name c j)
    done;
    List.iter
      (fun (ac, j) ->
        if ac = c then begin
          Printf.bprintf buf "  void set%d_%d(Object x) { this.%s = x; }\n" c j
            (fld_name c j);
          Printf.bprintf buf "  Object get%d_%d() { return this.%s; }\n" c j
            (fld_name c j)
        end)
      u.u_accs;
    if u.u_act then begin
      match k.k_act with
      | 0 ->
        Printf.bprintf buf "  Object act() { return this.%s; }\n" (fld_name c 0)
      | 2 when k.k_parent <> None ->
        Printf.bprintf buf "  Object act() { Object r = super.act(); return r; }\n"
      | _ ->
        Printf.bprintf buf "  Object act() { Object r = new Object(); return r; }\n"
    end;
    Buffer.add_string buf "}\n\n"

  let rec render_stmt buf ~indent s =
    let pad = String.make indent ' ' in
    let pf fmt = Printf.bprintf buf fmt in
    match s with
    | PNew { v; cls } ->
      pf "%s%s %s = new %s();\n" pad (cls_name cls) (vn v) (cls_name cls)
    | PNewObj { v } -> pf "%sObject %s = new Object();\n" pad (vn v)
    | PStr { v; tag } -> pf "%sString %s = \"s%d\";\n" pad (vn v) tag
    | PMake { v; cls } ->
      pf "%s%s %s = Fact.make%d();\n" pad (cls_name cls) (vn v) cls
    | PPipe { v; src } ->
      (* declared Object: pipe erases the static type on purpose, so getting
         it back needs a cast — the local-flow pattern's bread and butter *)
      pf "%sObject %s = Flow.pipe(%s);\n" pad (vn v) (vn src)
    | PWiden { v; anc; src } ->
      pf "%s%s %s = %s;\n" pad (cls_name anc) (vn v) (vn src)
    | PChoice { v; anc; a; b; cond } ->
      let ty = match anc with Some c -> cls_name c | None -> "Object" in
      pf "%s%s %s = %s;\n" pad ty (vn v) (vn a);
      pf "%sif (%s) { %s = %s; }\n" pad (cond_src cond) (vn v) (vn b)
    | PSet { recv; acc = (c, j); arg } ->
      pf "%s%s.set%d_%d(%s);\n" pad (vn recv) c j (vn arg)
    | PGet { v; recv; acc = (c, j) } ->
      pf "%sObject %s = %s.get%d_%d();\n" pad (vn v) (vn recv) c j
    | PVirt { v; recv } -> pf "%sObject %s = %s.act();\n" pad (vn v) (vn recv)
    | PCast { v; cls; src; guarded = true } ->
      pf "%s%s %s = new %s();\n" pad (cls_name cls) (vn v) (cls_name cls);
      pf "%sif (%s instanceof %s) { %s = (%s) %s; }\n" pad (vn src)
        (cls_name cls) (vn v) (cls_name cls) (vn src)
    | PCast { v; cls; src; guarded = false } ->
      pf "%s%s %s = (%s) %s;\n" pad (cls_name cls) (vn v) (cls_name cls) (vn src)
    | PListNew { v } -> pf "%sArrayList %s = new ArrayList();\n" pad (vn v)
    | PListAdd { list; arg } -> pf "%s%s.add(%s);\n" pad (vn list) (vn arg)
    | PListGet { v; list } ->
      pf "%sObject %s = %s.get(0);\n" pad (vn v) (vn list)
    | PIter { it; elem; list; body } ->
      pf "%sIterator it%d = %s.iterator();\n" pad it (vn list);
      pf "%swhile (it%d.hasNext()) {\n" pad it;
      pf "%s  Object %s = it%d.next();\n" pad (vn elem) it;
      List.iter (render_stmt buf ~indent:(indent + 2)) body;
      pf "%s}\n" pad
    | PMapNew { v } -> pf "%sHashMap %s = new HashMap();\n" pad (vn v)
    | PMapPut { map; key; value } ->
      pf "%s%s.put(%s, %s);\n" pad (vn map) (vn key) (vn value)
    | PMapGet { v; map; key } ->
      pf "%sObject %s = %s.get(%s);\n" pad (vn v) (vn map) (vn key)
    | PArrNew { v; len } ->
      pf "%sObject[] %s = new Object[%d];\n" pad (vn v) len
    | PArrStore { arr; idx; arg } ->
      pf "%s%s[%d] = %s;\n" pad (vn arr) idx (vn arg)
    | PArrLoad { v; arr; idx } ->
      pf "%sObject %s = %s[%d];\n" pad (vn v) (vn arr) idx
    | PIf { cond; body } ->
      pf "%sif (%s) {\n" pad (cond_src cond);
      List.iter (render_stmt buf ~indent:(indent + 2)) body;
      pf "%s}\n" pad
    | PLoop { i; n; body } ->
      pf "%sfor (int i%d = 0; i%d < %d; i%d = i%d + 1) {\n" pad i i n i i;
      List.iter (render_stmt buf ~indent:(indent + 2)) body;
      pf "%s}\n" pad
    | PPrint { arg } -> pf "%sSystem.print(%s);\n" pad (vn arg)
    | PSource { v } -> pf "%sObject %s = Flow.source();\n" pad (vn v)
    | PScrub { v; src } -> pf "%sObject %s = Flow.scrub(%s);\n" pad (vn v) (vn src)
    | PSink { arg } -> pf "%sFlow.sink(%s);\n" pad (vn arg)

  let render (p : plan) : string =
    let buf = Buffer.create 4096 in
    let u = collect_used p.p_classes p.p_stmts in
    Array.iteri
      (fun c _ -> if List.mem c u.u_classes then
          render_class buf p.p_classes u c)
      p.p_classes;
    if u.u_makes <> [] then begin
      Buffer.add_string buf "class Fact {\n";
      List.iter
        (fun c ->
          Printf.bprintf buf
            "  static %s make%d() { %s t = new %s(); %s r = t; return r; }\n"
            (cls_name c) c (cls_name c) (cls_name c) (cls_name c))
        (List.sort compare u.u_makes);
      Buffer.add_string buf "}\n\n"
    end;
    if u.u_pipe || u.u_source || u.u_sink || u.u_scrub then begin
      Buffer.add_string buf "class Flow {\n";
      if u.u_pipe then
        Buffer.add_string buf
          "  static Object pipe(Object x) { Object y = Flow.pipe2(x); return y; }\n\
          \  static Object pipe2(Object x) { return x; }\n";
      if u.u_source then
        Buffer.add_string buf
          "  static Object source() { Object s = new Object(); return s; }\n";
      if u.u_sink then
        Buffer.add_string buf "  static void sink(Object x) { }\n";
      if u.u_scrub then
        Buffer.add_string buf
          "  static Object scrub(Object x) { Object c = new Object(); return c; }\n";
      Buffer.add_string buf "}\n\n"
    end;
    Buffer.add_string buf "class Main {\n  static void main() {\n";
    Buffer.add_string buf "    int round = 0;\n";
    if p.p_rounds > 1 then begin
      Printf.bprintf buf "    while (round < %d) {\n" p.p_rounds;
      List.iter (render_stmt buf ~indent:6) p.p_stmts;
      Buffer.add_string buf "      round = round + 1;\n    }\n"
    end
    else List.iter (render_stmt buf ~indent:4) p.p_stmts;
    Buffer.add_string buf "  }\n}\n";
    Buffer.contents buf

  (* ---- shrinking ---- *)

  (* Remove every statement that (transitively) uses a variable in [dead],
     recursing into compound bodies; removing a statement kills its own
     definitions too. Iterates to a fixpoint so any def-use cascade is
     followed; the result is always a renderable plan. *)
  let purge stmts dead =
    let dead = ref dead in
    let changed = ref true in
    let alive = ref stmts in
    let is_dead s = List.exists (fun v -> List.mem v !dead) (uses s) in
    let rec sweep ss =
      List.filter_map
        (fun s ->
          if is_dead s then begin
            changed := true;
            let rec kill s =
              dead := defs s @ !dead;
              match body_of s with
              | Some b -> List.iter kill b
              | None -> ()
            in
            kill s;
            None
          end
          else
            match body_of s with
            | Some b -> Some (with_body s (sweep b))
            | None -> Some s)
        ss
    in
    while !changed do
      changed := false;
      alive := sweep !alive
    done;
    !alive

  (* Candidate plans, roughly most-aggressive first: drop whole chunks of the
     top level, drop any single statement anywhere in the tree (cascading
     through its users), and collapse the rounds loop. The fuzzer greedily
     re-applies these until no candidate still fails the oracle. *)
  let shrink_candidates (p : plan) : plan list =
    let out = ref [] in
    let push stmts = out := { p with p_stmts = stmts } :: !out in
    if p.p_rounds > 1 then out := { p with p_rounds = 1 } :: !out;
    (* chunk removal at the top level *)
    let top = Array.of_list p.p_stmts in
    let n = Array.length top in
    let chunk = ref (max 1 (n / 2)) in
    while !chunk >= 1 do
      let k = !chunk in
      let i = ref 0 in
      while !i < n do
        let keep = ref [] in
        let removed = ref [] in
        Array.iteri
          (fun j s ->
            if j >= !i && j < !i + k then begin
              let rec kill s =
                removed := defs s @ !removed;
                match body_of s with Some b -> List.iter kill b | None -> ()
              in
              kill s
            end
            else keep := s :: !keep)
          top;
        if !removed <> [] || k > 0 then
          push (purge (List.rev !keep) !removed);
        i := !i + k
      done;
      if k = 1 then chunk := 0 else chunk := max 1 (k / 2)
    done;
    (* unwrap a compound statement: splice its body in place of the header.
       Escapes local minima where the body must stay but the wrapper need
       not — e.g. an [if (round % 2 == 1)] guard whose body keeps the
       violation alive forces [p_rounds >= 2]; hoisting the body lets the
       rounds loop collapse on a later pass. Only offered when the body
       never reads the header's own defs (the foreach element, the loop
       index). *)
    List.iteri
      (fun j s ->
        match body_of s with
        | Some b when b <> [] ->
          let rec body_uses acc ss =
            List.fold_left
              (fun acc bs ->
                let acc = uses bs @ acc in
                match body_of bs with Some bb -> body_uses acc bb | None -> acc)
              acc ss
          in
          let used = body_uses [] b in
          if List.for_all (fun v -> not (List.mem v used)) (defs s) then
            push
              (List.concat
                 (List.mapi (fun x t -> if x = j then b else [ t ]) p.p_stmts))
        | _ -> ())
      p.p_stmts;
    (* single-statement removal inside compound bodies *)
    let rec nested prefix ss =
      List.iteri
        (fun j s ->
          match body_of s with
          | Some b ->
            List.iteri
              (fun bj bs ->
                let removed = ref [] in
                let rec kill s =
                  removed := defs s @ !removed;
                  match body_of s with
                  | Some b -> List.iter kill b
                  | None -> ()
                in
                kill bs;
                let b' = List.filteri (fun x _ -> x <> bj) b in
                let s' = with_body s b' in
                let top' =
                  List.mapi (fun x t -> if x = j then s' else t) ss
                in
                let rebuilt = prefix top' in
                push (purge rebuilt !removed))
              b;
            nested
              (fun inner ->
                prefix
                  (List.mapi (fun x t -> if x = j then with_body s inner else t)
                     ss))
              b
          | None -> ())
        ss
    in
    nested (fun x -> x) p.p_stmts;
    List.rev !out
end

(* ================================================================== *)
(* Seeded edit-sequence generator over [Rand] plans, for the          *)
(* incremental-analysis fuzz oracle (Soundness.check_incremental).    *)
(* Each step applies one mutation to the previous plan; every         *)
(* resulting plan is well-formed (defs still precede uses), so the    *)
(* oracle can compile each revision and compare the incremental       *)
(* update against a from-scratch solve. Mutations deliberately mix    *)
(* semantics-preserving moves (swapping independent statements,       *)
(* duplicating a side-effecting write) with semantics-changing ones   *)
(* (dropping a def-use cone, changing the rounds bound).              *)
(* ================================================================== *)

module Edit = struct
  open Rand

  (* uses of a statement including its nested body (variables are globally
     numbered and defined exactly once, so there is no shadowing) *)
  let rec deep_uses s =
    uses s
    @ (match body_of s with
      | Some b -> List.concat_map deep_uses b
      | None -> [])

  (* semantics-preserving: swap two adjacent independent top-level
     statements (the second must not read what the first defines) *)
  let swap_adjacent rng (p : plan) =
    let arr = Array.of_list p.p_stmts in
    let n = Array.length arr in
    let ok i =
      let d = defs arr.(i) in
      List.for_all (fun v -> not (List.mem v d)) (deep_uses arr.(i + 1))
    in
    let cands = ref [] in
    for i = 0 to n - 2 do
      if ok i then cands := i :: !cands
    done;
    match !cands with
    | [] -> None
    | cs ->
      let i = List.nth cs (Rng.int rng (List.length cs)) in
      let t = arr.(i) in
      arr.(i) <- arr.(i + 1);
      arr.(i + 1) <- t;
      Some { p with p_stmts = Array.to_list arr }

  (* analysis-neutral growth: duplicate a side-effecting statement
     (re-running a store or container write defines no new variable) *)
  let duplicate rng (p : plan) =
    let dup = function
      | PSet _ | PListAdd _ | PMapPut _ | PArrStore _ -> true
      | _ -> false
    in
    let idxs = ref [] in
    List.iteri (fun i s -> if dup s then idxs := i :: !idxs) p.p_stmts;
    match !idxs with
    | [] -> None
    | cs ->
      let i = List.nth cs (Rng.int rng (List.length cs)) in
      let stmts =
        List.concat
          (List.mapi (fun j s -> if j = i then [ s; s ] else [ s ]) p.p_stmts)
      in
      Some { p with p_stmts = stmts }

  (* semantics-changing: a different rounds bound (dynamic schedule change) *)
  let bump_rounds rng (p : plan) =
    let r = 1 + Rng.int rng 4 in
    if r = p.p_rounds then None else Some { p with p_rounds = r }

  (* semantics-changing: remove a random statement together with its
     def-use cascade (delegates to the shrinker, whose candidates are
     well-formed by construction) *)
  let drop rng (p : plan) =
    match shrink_candidates p with
    | [] -> None
    | cs -> Some (List.nth cs (Rng.int rng (List.length cs)))

  let step rng (p : plan) : plan =
    let ops = [| drop; duplicate; swap_adjacent; bump_rounds |] in
    let n = Array.length ops in
    let k = Rng.int rng n in
    let rec try_from i =
      if i = n then p (* nothing applicable: edit-to-same-program *)
      else
        match ops.((k + i) mod n) rng p with
        | Some p' -> p'
        | None -> try_from (i + 1)
    in
    try_from 0

  let sequence ~seed ~steps (p : Rand.plan) : Rand.plan list =
    let rng = Rng.create seed in
    let rec go acc p n =
      if n = 0 then List.rev acc
      else
        let p' = step rng p in
        go (p' :: acc) p' (n - 1)
    in
    go [] p (max 0 steps)
end

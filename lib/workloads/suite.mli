(** The benchmark suite: ten generated programs named after the paper's
    evaluation subjects, with sizes mirroring the paper's relative hardness
    (hsqldb/findbugs smallest, soot/columba largest) and context-bomb knobs
    calibrated so the paper's scalability pattern reproduces (see
    EXPERIMENTS.md). *)

(** Program names, smallest first:
    hsqldb, findbugs, jython, eclipse, jedit, briss, gruntspud, freecol,
    soot, columba. *)
val names : string list

val programs : (string * Gen.shape) list

(** Raises [Invalid_argument] for unknown names. *)
val shape_of : string -> Gen.shape

(** Deterministic MiniJava source of a suite program (without the JDK). *)
val source : string -> string

(** [source_variant name v] is [source name] with fixed variant-[v] keyed
    statements appended to the body of [Driver0.op0_0] — a reproducible
    single-method edit (identical to [source name] when [v = 0]). *)
val source_variant : string -> int -> string

(** Compile a suite program (with the mini-JDK). *)
val compile : string -> Csc_ir.Ir.program

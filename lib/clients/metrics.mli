(** The four precision clients of the paper's evaluation (§5), plus recall
    scoring and one extension client. Engine-agnostic: both the imperative
    and the Datalog analyses produce {!Csc_pta.Solver.result}. Smaller is
    better on every metric. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type t = {
  fail_cast : int;  (** reachable casts that may fail *)
  reach_mtd : int;  (** reachable methods *)
  poly_call : int;  (** virtual sites with >= 2 targets *)
  call_edge : int;  (** call-graph edges *)
}

val compute : Ir.program -> Solver.result -> t
val pp : Format.formatter -> t -> unit

(** The sites of the [fail_cast] client as a set — reachable casts whose
    points-to set contains an allocation incompatible with the target type.
    [compute] counts this set; the soundness fuzzer checks dynamically
    observed cast failures are contained in it. *)
val may_fail_casts : Ir.program -> Solver.result -> Csc_common.Bits.t

(** Extension client (not in the paper): reachable [instanceof] sites whose
    outcome is not statically resolved. *)
val unresolved_instanceof : Ir.program -> Solver.result -> int

(** [better_or_equal a b] iff [a] is at least as precise as [b] on every
    metric. *)
val better_or_equal : t -> t -> bool

type recall = {
  recall_methods : float;  (** 1.0 = every dynamic method covered *)
  recall_edges : float;
}

(** Recall of a static result against a dynamic run; a sound analysis scores
    1.0 on both components. *)
val recall :
  Solver.result ->
  dyn_reach:Csc_common.Bits.t ->
  dyn_edges:(Ir.call_id * Ir.method_id) list ->
  recall

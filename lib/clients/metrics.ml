(** The four precision clients used throughout the paper's evaluation (§5):

    - [#fail-cast]: casts that may fail (cast-resolution client);
    - [#reach-mtd]: reachable methods;
    - [#poly-call]: virtual call sites that cannot be devirtualized;
    - [#call-edge]: call-graph edges.

    All four are computed from the engine-agnostic {!Csc_pta.Solver.result},
    so the imperative and the Datalog engines share this code. Smaller is
    better for every metric. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type t = {
  fail_cast : int;
  reach_mtd : int;
  poly_call : int;
  call_edge : int;
}

(** Sites of the [#fail-cast] client, as a set: a reachable cast (T) x may
    fail if some allocation in pt(x) is not a subtype of T. Exposed for the
    soundness fuzzer, which checks dynamically-failed casts against it. *)
let may_fail_casts (p : Ir.program) (r : Solver.result) : Bits.t =
  let sites = Bits.create () in
  Ir.iter_all_stmts
    (fun mid s ->
      if Bits.mem r.r_reach mid then
        match s with
        | Cast { ty; rhs; site; _ } ->
          let may_fail =
            Bits.exists
              (fun a -> not (Ir.subtype p (Ir.alloc_typ p a) ty))
              (r.r_pt rhs)
          in
          if may_fail then ignore (Bits.add sites site)
        | _ -> ())
    p;
  sites

let compute (p : Ir.program) (r : Solver.result) : t =
  let fail_cast = Bits.cardinal (may_fail_casts p r) in
  (* #poly-call and #call-edge from the projected call graph *)
  let targets_by_site : (Ir.call_id, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (site, _) ->
      Hashtbl.replace targets_by_site site
        (1 + Option.value ~default:0 (Hashtbl.find_opt targets_by_site site)))
    r.r_edges;
  let poly_call = ref 0 in
  Hashtbl.iter
    (fun site n ->
      if n >= 2 && (Ir.call p site).cs_kind = Virtual then incr poly_call)
    targets_by_site;
  {
    fail_cast;
    reach_mtd = Bits.cardinal r.r_reach;
    poly_call = !poly_call;
    call_edge = List.length r.r_edges;
  }

let pp ppf m =
  Fmt.pf ppf "#fail-cast=%d #reach-mtd=%d #poly-call=%d #call-edge=%d"
    m.fail_cast m.reach_mtd m.poly_call m.call_edge

(** Extension client (not in the paper's four): the number of reachable
    [instanceof] sites whose outcome is *not* statically resolved, i.e. the
    points-to set contains both passing and failing allocations. A precise
    analysis lets more type tests be folded away. *)
let unresolved_instanceof (p : Ir.program) (r : Solver.result) : int =
  let n = ref 0 in
  Ir.iter_all_stmts
    (fun mid s ->
      if Bits.mem r.r_reach mid then
        match s with
        | InstanceOf { ty; rhs; _ } ->
          let pass = ref false and fail = ref false in
          Bits.iter
            (fun a ->
              if Ir.subtype p (Ir.alloc_typ p a) ty then pass := true
              else fail := true)
            (r.r_pt rhs);
          if !pass && !fail then incr n
        | _ -> ())
    p;
  !n

(** Precision comparison: [better_or_equal a b] iff [a] is at least as
    precise as [b] on every metric. *)
let better_or_equal a b =
  a.fail_cast <= b.fail_cast
  && a.reach_mtd <= b.reach_mtd
  && a.poly_call <= b.poly_call
  && a.call_edge <= b.call_edge

(** Recall of a static result against a dynamic run: fraction of dynamic
    reachable methods / call edges that the static analysis covers. A sound
    analysis scores 1.0 on both. *)
type recall = { recall_methods : float; recall_edges : float }

let recall (r : Solver.result) ~(dyn_reach : Bits.t)
    ~(dyn_edges : (Ir.call_id * Ir.method_id) list) : recall =
  let total_m = Bits.cardinal dyn_reach in
  let hit_m =
    Bits.fold (fun m acc -> if Bits.mem r.r_reach m then acc + 1 else acc)
      dyn_reach 0
  in
  let total_e = List.length dyn_edges in
  let hit_e = List.length (List.filter (fun e -> List.mem e r.r_edges) dyn_edges) in
  {
    recall_methods = (if total_m = 0 then 1.0 else float hit_m /. float total_m);
    recall_edges = (if total_e = 0 then 1.0 else float hit_e /. float total_e);
  }

(** Growable union-find over dense non-negative ints (see the mli). *)

type t = {
  mutable parent : int array;  (* parent.(i) = i for roots *)
  mutable rank : int array;
  mutable n : int;             (* ids < n are materialized *)
  mutable merged : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { parent = Array.init capacity (fun i -> i); rank = Array.make capacity 0;
    n = 0; merged = 0 }

let ensure t i =
  if i >= Array.length t.parent then begin
    let cap = ref (Array.length t.parent * 2) in
    while i >= !cap do cap := !cap * 2 done;
    let parent = Array.init !cap (fun j -> j) in
    Array.blit t.parent 0 parent 0 (Array.length t.parent);
    let rank = Array.make !cap 0 in
    Array.blit t.rank 0 rank 0 (Array.length t.rank);
    t.parent <- parent;
    t.rank <- rank
  end;
  if i >= t.n then t.n <- i + 1

let find t i =
  if i >= t.n then i
  else begin
    (* path halving *)
    let p = t.parent in
    let x = ref i in
    while p.(!x) <> !x do
      let g = p.(p.(!x)) in
      p.(!x) <- g;
      x := g
    done;
    !x
  end

(* read-only find: walks parents without halving, so concurrent readers on
   other domains never observe a write. Paths stay short because every
   sequential phase between parallel rounds goes through [find]. *)
let find_ro t i =
  if i >= t.n then i
  else begin
    let p = t.parent in
    let x = ref i in
    while p.(!x) <> !x do
      x := p.(!x)
    done;
    !x
  end

let union t a b =
  ensure t a;
  ensure t b;
  let ra = find t a and rb = find t b in
  if ra = rb then None
  else begin
    let rep, absorbed =
      if t.rank.(ra) > t.rank.(rb) then (ra, rb)
      else if t.rank.(ra) < t.rank.(rb) then (rb, ra)
      else begin
        t.rank.(ra) <- t.rank.(ra) + 1;
        (ra, rb)
      end
    in
    t.parent.(absorbed) <- rep;
    t.merged <- t.merged + 1;
    Some (rep, absorbed)
  end

let is_rep t i = find t i = i
let merged_count t = t.merged

let members t ~universe =
  let acc = Hashtbl.create 16 in
  for i = 0 to universe - 1 do
    let r = find t i in
    Hashtbl.replace acc r
      (i :: (match Hashtbl.find_opt acc r with Some l -> l | None -> []))
  done;
  Hashtbl.fold
    (fun r l out -> if List.length l >= 2 then (r, List.rev l) :: out else out)
    acc []
  |> List.sort compare

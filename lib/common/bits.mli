(** Growable bitsets over dense non-negative ints.

    These back every points-to set, host set and relation projection in the
    analyses. All operations keep the cached cardinality exact; [add] and
    [union_into] report what changed, which drives the solver's delta
    propagation. *)

type t

(** [create ?capacity ()] is an empty set; [capacity] pre-sizes the backing
    words (elements may exceed it freely). *)
val create : ?capacity:int -> unit -> t

(** [add t i] inserts [i]; returns [true] iff it was not already present. *)
val add : t -> int -> bool

(** [remove t i] deletes [i] if present. *)
val remove : t -> int -> unit

val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val copy : t -> t

(** Iterates elements in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [iter_diff f src excl] visits every element of [src \ excl] in increasing
    order. No allocation — the solver's hot path uses it to walk fresh deltas
    without materializing the difference. *)
val iter_diff : (int -> unit) -> t -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int list -> t
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool

(** Smallest element, if any. *)
val choose : t -> int option

(** [union_into ~into src] adds every element of [src] to [into]; returns
    the delta (elements newly added) or [None] if nothing changed. The delta
    is fresh and owned by the caller. *)
val union_into : into:t -> t -> t option

(** [union_quiet ~into src] adds every element of [src] to [into] without
    materializing a delta. (No allocation beyond growing [into].) *)
val union_quiet : into:t -> t -> unit

(** Do the two sets share an element? (No allocation.) *)
val inter_nonempty : t -> t -> bool

val equal : t -> t -> bool

(** [subset a b] : is every element of [a] in [b]? *)
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit

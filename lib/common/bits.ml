(** Growable bitsets over dense non-negative ints.

    These back every points-to set, host set and relation column in the
    analyses, so the representation is kept flat: an [int array] of 63-bit
    words plus a cached cardinality. All mutating operations keep the
    cardinality exact. *)

type t = {
  mutable words : int array;
  mutable card : int;
}

let word_bits = Sys.int_size (* 63 on 64-bit *)

let create ?(capacity = 64) () =
  let nwords = (capacity + word_bits - 1) / word_bits in
  { words = Array.make (max nwords 1) 0; card = 0 }

let ensure t i =
  let w = i / word_bits in
  if w >= Array.length t.words then begin
    let n = ref (Array.length t.words * 2) in
    while w >= !n do n := !n * 2 done;
    let words = Array.make !n 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let mem t i =
  let w = i / word_bits in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (i mod word_bits)) <> 0

(** [add t i] returns [true] iff [i] was not already present. *)
let add t i =
  ensure t i;
  let w = i / word_bits and b = i mod word_bits in
  let old = t.words.(w) in
  let nw = old lor (1 lsl b) in
  if nw = old then false
  else begin
    t.words.(w) <- nw;
    t.card <- t.card + 1;
    true
  end

let remove t i =
  let w = i / word_bits and b = i mod word_bits in
  if w < Array.length t.words then begin
    let old = t.words.(w) in
    let nw = old land lnot (1 lsl b) in
    if nw <> old then begin
      t.words.(w) <- nw;
      t.card <- t.card - 1
    end
  end

let cardinal t = t.card
let is_empty t = t.card = 0

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let copy t = { words = Array.copy t.words; card = t.card }

let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let x = ref words.(w) in
    let base = w * word_bits in
    while !x <> 0 do
      let b = !x land - !x in
      (* index of lowest set bit *)
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      f (base + log2 b 0);
      x := !x land lnot b
    done
  done

(** [iter_diff f src excl] visits every element of [src \ excl] in increasing
    order without allocating a difference set. *)
let iter_diff f src excl =
  let words = src.words and ew = excl.words in
  let ne = Array.length ew in
  for w = 0 to Array.length words - 1 do
    let x = ref (words.(w) land lnot (if w < ne then ew.(w) else 0)) in
    let base = w * word_bits in
    while !x <> 0 do
      let b = !x land - !x in
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      f (base + log2 b 0);
      x := !x land lnot b
    done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i l -> i :: l) t [])

let of_list l =
  let t = create () in
  List.iter (fun i -> ignore (add t i)) l;
  t

let exists p t =
  try
    iter (fun i -> if p i then raise Exit) t;
    false
  with Exit -> true

let for_all p t = not (exists (fun i -> not (p i)) t)

let choose t =
  if is_empty t then None
  else
    let r = ref (-1) in
    (try iter (fun i -> r := i; raise Exit) t with Exit -> ());
    Some !r

(** [union_into ~into src] adds every element of [src] to [into] and returns
    the delta (elements newly added), or [None] when nothing changed. *)
let union_into ~into src =
  let delta = ref None in
  let get_delta () =
    match !delta with
    | Some d -> d
    | None ->
      let d = create () in
      delta := Some d;
      d
  in
  let n = Array.length src.words in
  ensure into ((n * word_bits) - 1);
  for w = 0 to n - 1 do
    let s = src.words.(w) and d = into.words.(w) in
    let fresh = s land lnot d in
    if fresh <> 0 then begin
      into.words.(w) <- d lor fresh;
      let x = ref fresh in
      let cnt = ref 0 in
      while !x <> 0 do
        incr cnt;
        x := !x land (!x - 1)
      done;
      into.card <- into.card + !cnt;
      let dl = get_delta () in
      ensure dl ((w + 1) * word_bits - 1);
      dl.words.(w) <- fresh;
      dl.card <- dl.card + !cnt
    end
  done;
  !delta

(** [union_quiet ~into src] adds every element of [src] to [into] without
    materializing a delta — the no-allocation variant of {!union_into} for
    callers that don't need to know what changed. *)
let union_quiet ~into src =
  let n = Array.length src.words in
  ensure into ((n * word_bits) - 1);
  for w = 0 to n - 1 do
    let s = src.words.(w) and d = into.words.(w) in
    let fresh = s land lnot d in
    if fresh <> 0 then begin
      into.words.(w) <- d lor fresh;
      let x = ref fresh in
      let cnt = ref 0 in
      while !x <> 0 do
        incr cnt;
        x := !x land (!x - 1)
      done;
      into.card <- into.card + !cnt
    end
  done

let inter_nonempty a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go w = w < n && (a.words.(w) land b.words.(w) <> 0 || go (w + 1)) in
  go 0

let equal a b =
  let n = max (Array.length a.words) (Array.length b.words) in
  let word t w = if w < Array.length t.words then t.words.(w) else 0 in
  a.card = b.card
  &&
  let rec go w = w >= n || (word a w = word b w && go (w + 1)) in
  go 0

let subset a b =
  (* cardinality early-exit, then a word loop that stops scanning [b] at its
     own length: any word of [a] beyond [b]'s words must be zero *)
  a.card <= b.card
  &&
  let aw = a.words and bw = b.words in
  let na = Array.length aw and nb = Array.length bw in
  let shared = if na < nb then na else nb in
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < shared do
    if aw.(!w) land lnot bw.(!w) <> 0 then ok := false;
    incr w
  done;
  while !ok && !w < na do
    if aw.(!w) <> 0 then ok := false;
    incr w
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (to_list t)

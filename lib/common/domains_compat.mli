(** Build-time shim over OCaml 5 Domains.

    The parallel solver ({!Csc_pta}) is written against this interface only.
    On OCaml >= 5 it is backed by a persistent pool of worker Domains with a
    mutex/condition barrier ([domains_compat_multicore.ml-in]); on 4.14 the
    serial twin runs every slice in the caller, so the same bulk-synchronous
    algorithms compile and produce identical results — just without speedup
    ([domains_compat_serial.ml-in]). The implementation is chosen by a dune
    rule on [%{ocaml_version}].

    {b Memory-model contract} (what makes the solver's rounds race-free):
    everything a task writes before returning from its slice is visible to
    the caller after {!Pool.run} returns, and everything the caller wrote
    before {!Pool.run} is visible to every slice — the pool's mutex
    establishes the happens-before edges on 5.x; trivially true serially. *)

(** [true] iff Pool.run can actually execute slices concurrently (OCaml 5
    build). Callers use this to warn rather than silently run [--jobs N]
    sequentially on a 4.14 build. *)
val available : bool

(** Suggested parallelism for this machine: [Domain.recommended_domain_count]
    on 5.x, [1] on 4.14. *)
val recommended : unit -> int

module Pool : sig
  type t

  (** [create ~jobs] starts [jobs - 1] worker domains (none on 4.14, none
      when [jobs <= 1]). The caller itself acts as worker [0]. *)
  val create : jobs:int -> t

  val jobs : t -> int

  (** [run t f] executes [f 0 .. f (jobs-1)], worker [k] running slice [k],
      and returns when {e all} slices finished (a barrier). The caller runs
      slice [0]. If any slice raises, the first exception is re-raised after
      the barrier — no slice is still running when [run] returns. Not
      reentrant: do not call [run] from inside a slice. *)
  val run : t -> (int -> unit) -> unit

  (** Terminate and join the worker domains. The pool must not be used
      afterwards. Idempotent on 4.14; required before process exit on 5.x
      (joining is also what flushes worker-side effects for tools like
      coverage). *)
  val shutdown : t -> unit

  (** [with_pool ~jobs f] = create, run [f], always shutdown. *)
  val with_pool : jobs:int -> (t -> 'a) -> 'a
end

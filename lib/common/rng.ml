(** Deterministic splitmix64 PRNG.

    The workload generator must be reproducible across runs and platforms, so
    we avoid [Random] and implement splitmix64 (Steele et al.) directly. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

(* splitmix's defining operation: derive an independent generator from the
   parent's next output re-mixed with a distinct odd constant, advancing the
   parent exactly once. Each domain of a parallel run gets its own stream
   (deterministic in the fork order), so no generator instance is ever
   shared across domains. *)
let split t =
  let open Int64 in
  let z = next t in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  { state = logxor z (shift_right_logical z 33) }

(** [chance t p] is true with probability [p] (percent, 0-100). *)
let chance t p = int t 100 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let pick_list t l = pick t (Array.of_list l)

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Deterministic splitmix64 PRNG (Steele et al.).

    The workload generator must be reproducible across runs and platforms,
    so [Stdlib.Random] is avoided. Same seed, same sequence, everywhere.

    {b Domain safety.} There is no global generator: all state lives in the
    [t] handle, which callers thread explicitly (the fuzzer derives one
    generator per program from the campaign seed). A single [t] must not be
    shared across domains — give each domain its own via {!split} (or an
    independent {!create}); both are deterministic, so fuzz campaigns and
    generated workloads replay identically under [--jobs N]. *)

type t

val create : int -> t

(** Independent copy: same state, same future sequence. *)
val copy : t -> t

(** [split t] advances [t] once and returns a new generator whose stream is
    statistically independent of [t]'s remainder (splitmix64's split).
    Deterministic: same parent state, same child. Use one child per domain. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next : t -> int64

(** Uniform in [0, bound); raises on [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** True with probability [p] percent. *)
val chance : t -> int -> bool

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Growable union-find over dense non-negative ints.

    Backs the solver's online cycle collapsing: pointer nodes found on an
    unfiltered copy cycle are merged into one representative and every
    subsequent table access is redirected through {!find}. Ids outside the
    current capacity are implicitly singleton roots, so the structure can be
    created empty and grown lazily as ids are interned. *)

type t

(** [create ?capacity ()] — every id starts as its own root. *)
val create : ?capacity:int -> unit -> t

(** Representative of [i]'s class (path-halving; amortized ~O(1)).
    Ids never unioned are their own representative. *)
val find : t -> int -> int

(** Like {!find} but strictly read-only (no path halving), so it is safe to
    call concurrently from several domains while the structure is frozen
    (i.e. no {!union} in flight). The parallel solver's workers canonicalize
    edge targets through this during a round; the sequential phases between
    rounds re-compress paths via {!find}. *)
val find_ro : t -> int -> int

(** [union t a b] merges the classes of [a] and [b]. Returns
    [Some (rep, absorbed)] where [rep] is the surviving representative and
    [absorbed] the root that lost (union by rank), or [None] when the two
    were already in the same class. *)
val union : t -> int -> int -> (int * int) option

(** Is [i] its own representative? (True for never-unioned ids.) *)
val is_rep : t -> int -> bool

(** Number of ids merged away so far (= unions that returned [Some _]). *)
val merged_count : t -> int

(** [members t ~universe] groups the ids [0 .. universe-1] by class:
    every representative with a class of size [>= 2] is paired with all its
    members (itself included), in increasing id order. *)
val members : t -> universe:int -> (int * int list) list

(** Fuzzing campaigns: generate → execute → check → (on violation) shrink.

    Deterministic for a fixed seed: the campaign seed derives every
    per-program generator seed, and nothing in the pipeline consults wall
    clock or ambient randomness. Counterexamples are written to the corpus
    directory as minimized source + JSON metadata. *)

module Gen = Csc_workloads.Gen
module Ir = Csc_ir.Ir
module Snapshot = Csc_obs.Snapshot

type cfg = {
  n : int;            (** programs to generate *)
  seed : int;         (** campaign seed: same seed, same campaign *)
  max_size : int;     (** target plan size per program *)
  minimize : bool;    (** delta-debug failing programs *)
  out_dir : string option;  (** corpus directory for counterexamples *)
  max_shrink_checks : int;  (** oracle-run budget per minimization *)
  inject_unsound : bool;
      (** enable {!Csc_core.Csc.sabotage_drop_shortcuts} for the whole
          campaign — a self-test that the oracle catches a real bug *)
  progress : bool;    (** print a progress line every few hundred programs *)
  jobs : int;
      (** domains per imperative solve (see {!Soundness.check}); campaigns
          replay identically for any value, so [--jobs N] fuzzing is a
          scheduling-differential test of the parallel solver *)
  edits : int;
      (** when positive, fuzz edit *sessions* instead of single programs:
          each case derives that many successive revisions of a base plan
          ({!Gen.Edit.sequence}) and runs {!Soundness.check_incremental}
          over the chain, requiring every incrementally-updated result to be
          bit-identical to a from-scratch solve. Counterexamples are pinned
          to a failing consecutive revision pair when possible. *)
}

(** n=100, seed=42, max_size=30, minimize, no corpus, 300 shrink checks,
    jobs=1, edits=0. *)
val default_cfg : cfg

type case = {
  c_seed : int;  (** per-program generator seed (replays the case) *)
  c_violations : Soundness.violation list;
  c_source : string;
  c_min_source : string option;
  c_min_app_stmts : int option;
  c_planted_leaks : int;      (** taint chains planted by the generator *)
  c_planted_sanitized : int;  (** sanitized chains planted by the generator *)
  c_edit_pair : (string * string) option;
      (** edit campaigns: the minimal failing consecutive revision pair,
          written to the corpus as [case_<seed>.rev0.mjava] / [.rev1.mjava] *)
}

type report = {
  r_total : int;
  r_failed : case list;
  r_gen_errors : int;  (** programs that failed to compile/validate *)
  r_halted : int;      (** traces that ended in a runtime error *)
  r_elapsed : float;
  r_progs_per_s : float;
  r_snapshot : Snapshot.t;  (** fuzz_* counters for telemetry consumers *)
}

(** Shrink [plan] while [oracle] keeps failing on the compiled program,
    spending at most [max_checks] (default 300) oracle runs; returns the
    smallest failing plan found and the number of checks used. *)
val minimize :
  ?max_checks:int ->
  oracle:(Ir.program -> bool) ->
  Gen.Rand.plan ->
  Gen.Rand.plan * int

(** Run a campaign. Restores {!Csc_core.Csc.sabotage_drop_shortcuts} on
    exit even if a check raises. *)
val run : cfg -> report

(** The soundness oracle: concrete execution vs. the static analysis matrix.

    A pointer analysis is sound iff everything observed in a concrete run is
    over-approximated by the static result: reachable methods, call edges,
    per-variable points-to sets and failing casts. The oracle executes the
    program once under {!Csc_interp.Interp.run_trace} (partial traces from
    runtime errors are still valid lower bounds) and checks that containment
    for every engine/configuration in {!default_matrix}; on top it
    cross-checks results that must agree exactly — the imperative vs. the
    Datalog context-insensitive baseline, and cycle collapsing on vs. off. *)

open Csc_common
module Ir = Csc_ir.Ir
module Interp = Csc_interp.Interp
module Solver = Csc_pta.Solver
module Run = Csc_driver.Run
module Metrics = Csc_clients.Metrics
module Jdk = Csc_lang.Jdk
module Taint = Csc_taint.Taint
module Taint_spec = Csc_taint.Taint_spec

type kind =
  | Unsound_reach  (** dynamically entered method not statically reachable *)
  | Unsound_edge   (** dynamic call edge missing from the static call graph *)
  | Unsound_pt     (** observed allocation site missing from a points-to set *)
  | Unsound_cast   (** cast failed at runtime but not in [may_fail_casts] *)
  | Unsound_taint  (** dynamic sink hit missing from the static leak report *)
  | Engine_mismatch    (** imperative and Datalog CI results differ *)
  | Collapse_mismatch  (** cycle collapsing changed an observable result *)
  | Incremental_mismatch
      (** updating a solved state over an edit differs from a fresh solve *)
  | Analysis_crash     (** an analysis raised or timed out on a tiny program *)

let kind_name = function
  | Unsound_reach -> "unsound-reach"
  | Unsound_edge -> "unsound-edge"
  | Unsound_pt -> "unsound-pt"
  | Unsound_cast -> "unsound-cast"
  | Unsound_taint -> "unsound-taint"
  | Engine_mismatch -> "engine-mismatch"
  | Collapse_mismatch -> "collapse-mismatch"
  | Incremental_mismatch -> "incremental-mismatch"
  | Analysis_crash -> "analysis-crash"

type violation = {
  v_kind : kind;
  v_analysis : string;  (** analysis (or pair of analyses) implicated *)
  v_detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %s" (kind_name v.v_kind) v.v_analysis v.v_detail

(** The engine/configuration matrix every generated program is checked
    against: imperative and Datalog engines, CSC off and on, and (for the
    imperative engine) cycle collapsing off and on. *)
let default_matrix : Run.analysis list =
  [
    Run.Imp_ci;
    Run.Imp_csc;
    Run.Imp_no_collapse Run.Imp_ci;
    Run.Imp_no_collapse Run.Imp_csc;
    Run.Doop_ci;
    Run.Doop_csc;
  ]

(** IR statements in application (non-JDK) methods — the size metric for
    minimized counterexamples. The prepended mini-JDK contributes hundreds
    of statements that no shrink can remove, so it is excluded. *)
let app_stmt_count (p : Ir.program) : int =
  let n = ref 0 in
  Ir.iter_all_stmts
    (fun mid _ ->
      let cname = Ir.class_name p (Ir.metho p mid).m_class in
      if not (Jdk.is_jdk_class cname) then incr n)
    p;
  !n

(* ---- containment checks: dynamic ⊆ static ---- *)

let check_result (p : Ir.program) (dyn : Interp.outcome) aname
    (r : Solver.result) : violation list =
  let out = ref [] in
  let push v_kind v_detail =
    out := { v_kind; v_analysis = aname; v_detail } :: !out
  in
  Bits.iter
    (fun m ->
      if not (Bits.mem r.Solver.r_reach m) then
        push Unsound_reach
          (Fmt.str "dynamic method %s not statically reachable"
             (Ir.method_name p m)))
    dyn.Interp.dyn_reachable;
  List.iter
    (fun (site, callee) ->
      if not (List.mem (site, callee) r.Solver.r_edges) then
        push Unsound_edge
          (Fmt.str "dynamic call edge cs%d -> %s missing" site
             (Ir.method_name p callee)))
    dyn.Interp.dyn_edges;
  Array.iteri
    (fun v obs ->
      if not (Bits.subset obs (r.Solver.r_pt v)) then begin
        let missing =
          Bits.fold
            (fun a acc ->
              if Bits.mem (r.Solver.r_pt v) a then acc else a :: acc)
            obs []
        in
        let vr = p.Ir.vars.(v) in
        push Unsound_pt
          (Fmt.str "var %s of %s: observed sites {%s} missing from pt"
             vr.Ir.v_name
             (Ir.method_name p vr.Ir.v_method)
             (String.concat "," (List.map string_of_int missing)))
      end)
    dyn.Interp.dyn_pt;
  let static_fail = Metrics.may_fail_casts p r in
  Bits.iter
    (fun site ->
      if not (Bits.mem static_fail site) then
        push Unsound_cast
          (Fmt.str "cast site x%d failed at runtime but is statically safe"
             site))
    dyn.Interp.dyn_fail_casts;
  List.rev !out

(* ---- taint oracle: dynamic sink hits ⊆ static leak sites ---- *)

let check_taint (p : Ir.program) (dyn : Interp.outcome) aname
    (r : Solver.result) : violation list =
  if Bits.is_empty dyn.Interp.dyn_taint_sinks then []
  else
    match Taint.analyze p r with
    | tres ->
      Bits.fold
        (fun site acc ->
          if Bits.mem tres.Taint.t_leak_sites site then acc
          else
            {
              v_kind = Unsound_taint;
              v_analysis = aname;
              v_detail =
                Fmt.str
                  "tainted value reached sink at cs%d but no leak is reported"
                  site;
            }
            :: acc)
        dyn.Interp.dyn_taint_sinks []
      |> List.rev
    | exception e ->
      [
        {
          v_kind = Analysis_crash;
          v_analysis = aname ^ "+taint";
          v_detail = Printexc.to_string e;
        };
      ]

(* ---- cross-checks: results that must agree exactly ---- *)

let sorted_edges (r : Solver.result) = List.sort compare r.Solver.r_edges

let identical (p : Ir.program) (a : Solver.result) (b : Solver.result) :
    string option =
  if not (Bits.equal a.Solver.r_reach b.Solver.r_reach) then
    Some "reachable methods differ"
  else if sorted_edges a <> sorted_edges b then Some "call edges differ"
  else begin
    let diff = ref None in
    Array.iter
      (fun (v : Ir.var) ->
        if
          !diff = None
          && not (Bits.equal (a.Solver.r_pt v.Ir.v_id) (b.Solver.r_pt v.Ir.v_id))
        then
          diff :=
            Some
              (Fmt.str "points-to of %s differs" v.Ir.v_name))
      p.Ir.vars;
    !diff
  end

let cross_check p aname bname a b kind : violation list =
  match identical p a b with
  | None -> []
  | Some detail ->
    [ { v_kind = kind; v_analysis = aname ^ " vs " ^ bname; v_detail = detail } ]

(** Run the full oracle on one program: execute it, run every analysis in
    [matrix] (default {!default_matrix}), check dynamic ⊆ static for each,
    and cross-check the pairs that must agree exactly. An empty list means
    the program exposes no bug. [max_steps] bounds the concrete run. *)
let check ?(matrix = default_matrix) ?(max_steps = 2_000_000) ?(jobs = 1)
    (p : Ir.program) : violation list =
  (* dynamic taint tags ride along whenever the program has both a source
     and a sink under the builtin spec (the generator's [Flow] surface) *)
  let taint =
    if Taint.relevant Taint_spec.builtin p then
      Some (Taint.hooks Taint_spec.builtin p)
    else None
  in
  let dyn = Interp.run_trace ~max_steps ?taint p in
  let results =
    List.map
      (fun a ->
        let aname = Run.name a in
        match Run.run ~validate:false ~jobs p a with
        | { Run.o_result = Some r; _ } -> (a, aname, Ok r)
        | { Run.o_timeout; _ } ->
          ( a,
            aname,
            Error
              {
                v_kind = Analysis_crash;
                v_analysis = aname;
                v_detail =
                  (if o_timeout then "timed out" else "produced no result");
              } )
        | exception e ->
          ( a,
            aname,
            Error
              {
                v_kind = Analysis_crash;
                v_analysis = aname;
                v_detail = Printexc.to_string e;
              } ))
      matrix
  in
  let violations =
    List.concat_map
      (fun (_, aname, res) ->
        match res with
        | Ok r -> check_result p dyn aname r @ check_taint p dyn aname r
        | Error v -> [ v ])
      results
  in
  let find a =
    List.find_map
      (fun (a', _, res) ->
        if a' = a then match res with Ok r -> Some r | Error _ -> None
        else None)
      results
  in
  let pair a b kind =
    match (find a, find b) with
    | Some ra, Some rb -> cross_check p (Run.name a) (Run.name b) ra rb kind
    | _ -> []
  in
  violations
  @ pair Run.Imp_ci Run.Doop_ci Engine_mismatch
  @ pair Run.Imp_ci (Run.Imp_no_collapse Run.Imp_ci) Collapse_mismatch
  @ pair Run.Imp_csc (Run.Imp_no_collapse Run.Imp_csc) Collapse_mismatch

(* ---- incremental oracle: update ≡ fresh solve, bit for bit ---- *)

let inc_mode_str (info : Csc_pta.Inc.info) =
  match info.Csc_pta.Inc.i_mode with
  | `Incremental -> "incremental"
  | `Fresh -> "fresh: " ^ info.Csc_pta.Inc.i_reason

(** Walk a chain of program revisions, carrying the incremental engine's
    retained state across each edit, and require the updated result to be
    bit-identical ({!identical}) to a from-scratch solve of the same
    revision. Because every step is checked against scratch, a reported
    mismatch at step [k] pins the failure to the single edit
    [(rev k-1, rev k)] — the state entering step [k] was itself verified
    identical to a fresh solve. *)
let check_incremental ?(analyses = [ Run.Imp_ci; Run.Imp_csc ]) ?(jobs = 1)
    (revs : Ir.program list) : violation list =
  match revs with
  | [] -> []
  | p0 :: rest ->
    List.concat_map
      (fun a ->
        let aname = Run.name a in
        let spec = { (Run.spec a) with Run.sp_jobs = jobs } in
        let out = ref [] in
        let crash k e =
          out :=
            {
              v_kind = Analysis_crash;
              v_analysis = aname;
              v_detail = Fmt.str "rev %d: %s" k e;
            }
            :: !out
        in
        let st = ref None in
        (match Run.run_spec_keep spec p0 with
        | _, (Some _ as s) -> st := s
        | _, None -> crash 0 "retained no state (timeout or unsupported)"
        | exception e -> crash 0 (Printexc.to_string e));
        List.iteri
          (fun i p ->
            let k = i + 1 in
            let step () =
              match !st with
              | Some prev -> Run.update spec ~prev p
              | None ->
                let o, s = Run.run_spec_keep spec p in
                (o, s, Csc_pta.Inc.fresh_info "no retained state")
            in
            match step () with
            | exception e ->
              st := None;
              crash k (Printexc.to_string e)
            | o, s, info -> (
              st := s;
              let fresh = Run.run_spec spec p in
              match (o.Run.o_result, fresh.Run.o_result) with
              | Some ri, Some rf -> (
                match identical p ri rf with
                | None -> ()
                | Some detail ->
                  out :=
                    {
                      v_kind = Incremental_mismatch;
                      v_analysis = aname;
                      v_detail =
                        Fmt.str "rev %d (%s): %s" k (inc_mode_str info) detail;
                    }
                    :: !out)
              | _ -> crash k "a solve produced no result"))
          rest;
        List.rev !out)
      analyses

(** The soundness oracle: concrete execution vs. the static analysis matrix.

    Executes a program once (partial traces from runtime errors are still
    valid lower bounds), then checks dynamic ⊆ static — reachable methods,
    call edges, per-variable points-to sets, failing casts, and taint sink
    hits vs. the static leak report — for every engine/configuration in
    {!default_matrix}, plus exact-agreement cross-checks (imperative vs.
    Datalog CI, cycle collapsing on vs. off). *)

module Ir = Csc_ir.Ir
module Run = Csc_driver.Run

(** Violation taxonomy (documented in EXPERIMENTS.md E12). *)
type kind =
  | Unsound_reach  (** dynamically entered method not statically reachable *)
  | Unsound_edge   (** dynamic call edge missing from the static call graph *)
  | Unsound_pt     (** observed allocation site missing from a points-to set *)
  | Unsound_cast   (** cast failed at runtime but not in [may_fail_casts] *)
  | Unsound_taint  (** dynamic sink hit missing from the static leak report *)
  | Engine_mismatch    (** imperative and Datalog CI results differ *)
  | Collapse_mismatch  (** cycle collapsing changed an observable result *)
  | Incremental_mismatch
      (** updating a solved state over an edit differs from a fresh solve *)
  | Analysis_crash     (** an analysis raised or timed out on a tiny program *)

val kind_name : kind -> string

type violation = {
  v_kind : kind;
  v_analysis : string;  (** analysis (or pair of analyses) implicated *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Imperative × Datalog × CSC on/off × collapse on/off. *)
val default_matrix : Run.analysis list

(** IR statements in application (non-JDK) methods — the size metric for
    minimized counterexamples. *)
val app_stmt_count : Ir.program -> int

(** Run the full oracle on one program; empty list = no bug exposed.
    [matrix] defaults to {!default_matrix}; [max_steps] (default 2M) bounds
    the concrete run. [jobs] (default 1) solves the imperative analyses on
    that many domains — the oracle then doubles as a differential check of
    the parallel solver, since every containment and cross-check must hold
    regardless of how the fixpoint was scheduled. *)
val check :
  ?matrix:Run.analysis list ->
  ?max_steps:int ->
  ?jobs:int ->
  Ir.program ->
  violation list

(** Exact equality of two results on the same program — reachable methods,
    call edges and every variable's points-to set; [None] means identical,
    [Some detail] names the first difference. This is the comparison behind
    the engine/collapse cross-checks and {!check_incremental}. *)
val identical :
  Ir.program ->
  Csc_pta.Solver.result ->
  Csc_pta.Solver.result ->
  string option

(** The incremental oracle: walk a chain of program revisions (each the
    edited successor of the previous), carry the incremental engine's
    retained state across every step ({!Run.update}), and require each
    updated result to be bit-identical to a from-scratch solve of the same
    revision. Since the state entering a step was itself verified against
    scratch, a mismatch at step [k] pins the failure to the single edit
    [(rev k-1, rev k)]. [analyses] defaults to [Imp_ci; Imp_csc]; [jobs]
    solves on that many domains, so the oracle also exercises preseeding
    under the parallel engine. Empty list = no divergence. *)
val check_incremental :
  ?analyses:Run.analysis list ->
  ?jobs:int ->
  Ir.program list ->
  violation list

(** The soundness oracle: concrete execution vs. the static analysis matrix.

    Executes a program once (partial traces from runtime errors are still
    valid lower bounds), then checks dynamic ⊆ static — reachable methods,
    call edges, per-variable points-to sets, failing casts, and taint sink
    hits vs. the static leak report — for every engine/configuration in
    {!default_matrix}, plus exact-agreement cross-checks (imperative vs.
    Datalog CI, cycle collapsing on vs. off). *)

module Ir = Csc_ir.Ir
module Run = Csc_driver.Run

(** Violation taxonomy (documented in EXPERIMENTS.md E12). *)
type kind =
  | Unsound_reach  (** dynamically entered method not statically reachable *)
  | Unsound_edge   (** dynamic call edge missing from the static call graph *)
  | Unsound_pt     (** observed allocation site missing from a points-to set *)
  | Unsound_cast   (** cast failed at runtime but not in [may_fail_casts] *)
  | Unsound_taint  (** dynamic sink hit missing from the static leak report *)
  | Engine_mismatch    (** imperative and Datalog CI results differ *)
  | Collapse_mismatch  (** cycle collapsing changed an observable result *)
  | Analysis_crash     (** an analysis raised or timed out on a tiny program *)

val kind_name : kind -> string

type violation = {
  v_kind : kind;
  v_analysis : string;  (** analysis (or pair of analyses) implicated *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Imperative × Datalog × CSC on/off × collapse on/off. *)
val default_matrix : Run.analysis list

(** IR statements in application (non-JDK) methods — the size metric for
    minimized counterexamples. *)
val app_stmt_count : Ir.program -> int

(** Run the full oracle on one program; empty list = no bug exposed.
    [matrix] defaults to {!default_matrix}; [max_steps] (default 2M) bounds
    the concrete run. [jobs] (default 1) solves the imperative analyses on
    that many domains — the oracle then doubles as a differential check of
    the parallel solver, since every containment and cross-check must hold
    regardless of how the fixpoint was scheduled. *)
val check :
  ?matrix:Run.analysis list ->
  ?max_steps:int ->
  ?jobs:int ->
  Ir.program ->
  violation list

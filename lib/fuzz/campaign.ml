(** Fuzzing campaigns: generate → execute → check → (on violation) shrink.

    A campaign draws [n] random programs from {!Csc_workloads.Gen.Rand}
    (deterministically: the campaign seed derives every per-program seed),
    runs the {!Soundness} oracle on each, and on a violation delta-debugs
    the *plan* down to a minimal program that still fails, writing the
    counterexample (source + JSON metadata) to the corpus directory.
    Telemetry goes through {!Csc_obs}: counters for programs, violations
    and shrink checks, plus trace spans when a Chrome trace is active. *)

open Csc_common
module Gen = Csc_workloads.Gen
module Frontend = Csc_lang.Frontend
module Ir = Csc_ir.Ir
module Validate = Csc_ir.Validate
module Registry = Csc_obs.Registry
module Snapshot = Csc_obs.Snapshot
module Trace = Csc_obs.Trace
module Json = Csc_obs.Json

type cfg = {
  n : int;            (** programs to generate *)
  seed : int;         (** campaign seed: same seed, same campaign *)
  max_size : int;     (** target plan size per program *)
  minimize : bool;    (** delta-debug failing programs *)
  out_dir : string option;  (** corpus directory for counterexamples *)
  max_shrink_checks : int;  (** oracle-run budget per minimization *)
  inject_unsound : bool;
      (** enable {!Csc_core.Csc.sabotage_drop_shortcuts} for the whole
          campaign — a self-test that the oracle catches a real bug *)
  progress : bool;    (** print a progress line every few hundred programs *)
  jobs : int;         (** domains per imperative solve (Soundness.check) *)
  edits : int;
      (** when positive, fuzz edit *sessions* instead of single programs:
          each case derives that many successive revisions of a base plan
          ({!Gen.Edit.sequence}) and runs {!Soundness.check_incremental}
          over the chain *)
}

let default_cfg =
  {
    n = 100;
    seed = 42;
    max_size = 30;
    minimize = true;
    out_dir = None;
    max_shrink_checks = 300;
    inject_unsound = false;
    progress = false;
    jobs = 1;
    edits = 0;
  }

type case = {
  c_seed : int;  (** per-program generator seed (replays the case) *)
  c_violations : Soundness.violation list;
  c_source : string;          (** original failing source *)
  c_min_source : string option;   (** minimized source, when [minimize] *)
  c_min_app_stmts : int option;   (** app IR statements of the minimized program *)
  c_planted_leaks : int;      (** taint chains planted by the generator *)
  c_planted_sanitized : int;  (** sanitized chains planted by the generator *)
  c_edit_pair : (string * string) option;
      (** edit campaigns: the minimal failing consecutive revision pair *)
}

type report = {
  r_total : int;
  r_failed : case list;
  r_gen_errors : int;  (** generated programs that failed to compile/validate *)
  r_halted : int;      (** traces that ended in a runtime error (informational) *)
  r_elapsed : float;
  r_progs_per_s : float;
  r_snapshot : Snapshot.t;
}

let compile_plan plan =
  let src = Gen.Rand.render plan in
  let p =
    Frontend.compile_string
      ~name:(Printf.sprintf "fuzz-%d" (Gen.Rand.seed_of plan))
      src
  in
  Validate.check_exn p;
  (src, p)

(* ---- minimization: greedy first-improvement delta debugging ---- *)

(** Shrink [plan] while the oracle still reports a violation, spending at
    most [max_checks] oracle runs. Greedy: take the first simplification
    that still fails and restart from it; stop when none does (the result
    is 1-minimal w.r.t. the candidate moves) or the budget runs out.
    Candidates that no longer compile are skipped — the plan-level moves
    keep programs well-formed, so that indicates a generator bug, but it
    must not derail a minimization. *)
let minimize ?(max_checks = 300) ~(oracle : Ir.program -> bool)
    (plan : Gen.Rand.plan) : Gen.Rand.plan * int =
  let checks = ref 0 in
  let still_fails cand =
    if !checks >= max_checks then false
    else begin
      incr checks;
      match compile_plan cand with
      | _, p -> oracle p
      | exception _ -> false
    end
  in
  let cur = ref plan in
  let progressed = ref true in
  while !progressed && !checks < max_checks do
    progressed := false;
    let cands = Gen.Rand.shrink_candidates !cur in
    (try
       List.iter
         (fun cand ->
           if still_fails cand then begin
             cur := cand;
             progressed := true;
             raise Exit
           end)
         cands
     with Exit -> ())
  done;
  (!cur, !checks)

(* ---- corpus ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let case_meta (c : case) : Json.t =
  Json.Obj
    [
      ("seed", Json.Int c.c_seed);
      ( "violations",
        Json.List
          (List.map
             (fun (v : Soundness.violation) ->
               Json.Obj
                 [
                   ("kind", Json.Str (Soundness.kind_name v.v_kind));
                   ("analysis", Json.Str v.v_analysis);
                   ("detail", Json.Str v.v_detail);
                 ])
             c.c_violations) );
      ("minimized", Json.Bool (c.c_min_source <> None));
      ( "min_app_stmts",
        match c.c_min_app_stmts with Some n -> Json.Int n | None -> Json.Null );
      ("planted_leaks", Json.Int c.c_planted_leaks);
      ("planted_sanitized", Json.Int c.c_planted_sanitized);
      ("edit_pair", Json.Bool (c.c_edit_pair <> None));
    ]

let write_case dir (c : case) =
  mkdir_p dir;
  let base = Filename.concat dir (Printf.sprintf "case_%d" c.c_seed) in
  write_file (base ^ ".mjava")
    (Option.value ~default:c.c_source c.c_min_source);
  if c.c_min_source <> None then write_file (base ^ ".orig.mjava") c.c_source;
  (match c.c_edit_pair with
  | Some (prev, next) ->
    (* the two-revision replay: analyze rev0, update to rev1, compare *)
    write_file (base ^ ".rev0.mjava") prev;
    write_file (base ^ ".rev1.mjava") next
  | None -> ());
  write_file (base ^ ".json") (Json.to_string ~pretty:true (case_meta c))

(* ---- the campaign itself ---- *)

let run_programs (cfg : cfg) : report =
  let reg = Registry.create () in
  let c_programs = Registry.counter reg "fuzz_programs" in
  let c_violating = Registry.counter reg "fuzz_violating_programs" in
  let c_violations = Registry.counter reg "fuzz_violations" in
  let c_gen_errors = Registry.counter reg "fuzz_gen_errors" in
  let c_halted = Registry.counter reg "fuzz_halted_traces" in
  let c_shrink = Registry.counter reg "fuzz_shrink_checks" in
  let c_taint_progs = Registry.counter reg "fuzz_taint_programs" in
  let c_taint_hits = Registry.counter reg "fuzz_taint_sink_hits" in
  let g_pps = Registry.gauge reg "fuzz_progs_per_s" in
  let master = Rng.create cfg.seed in
  let failed = ref [] in
  let saved_sabotage = !Csc_core.Csc.sabotage_drop_shortcuts in
  if cfg.inject_unsound then Csc_core.Csc.sabotage_drop_shortcuts := true;
  let t0 = Timer.now () in
  Fun.protect
    ~finally:(fun () ->
      Csc_core.Csc.sabotage_drop_shortcuts := saved_sabotage)
    (fun () ->
      for i = 0 to cfg.n - 1 do
        (* 30 positive bits: plenty of seeds, and they replay on 32-bit *)
        let seed = Int64.to_int (Rng.next master) land 0x3FFFFFFF in
        Trace.with_span ~cat:"fuzz"
          ~args:[ ("seed", Json.Int seed) ]
          "fuzz.case"
          (fun () ->
            Registry.incr c_programs;
            let plan = Gen.Rand.generate ~seed ~max_size:cfg.max_size in
            match compile_plan plan with
            | exception e ->
              Registry.incr c_gen_errors;
              failed :=
                {
                  c_seed = seed;
                  c_violations =
                    [
                      {
                        Soundness.v_kind = Soundness.Analysis_crash;
                        v_analysis = "frontend";
                        v_detail = Printexc.to_string e;
                      };
                    ];
                  c_source = Gen.Rand.render plan;
                  c_min_source = None;
                  c_min_app_stmts = None;
                  c_planted_leaks = Gen.Rand.planted_leaks plan;
                  c_planted_sanitized = Gen.Rand.planted_sanitized plan;
                  c_edit_pair = None;
                }
                :: !failed
            | src, p -> (
              let taint =
                if Csc_taint.Taint.relevant Csc_taint.Taint_spec.builtin p
                then begin
                  Registry.incr c_taint_progs;
                  Some (Csc_taint.Taint.hooks Csc_taint.Taint_spec.builtin p)
                end
                else None
              in
              let dyn =
                Csc_interp.Interp.run_trace ~max_steps:2_000_000 ?taint p
              in
              if dyn.Csc_interp.Interp.halted <> None then
                Registry.incr c_halted;
              Registry.incr
                ~by:(Bits.cardinal dyn.Csc_interp.Interp.dyn_taint_sinks)
                c_taint_hits;
              match Soundness.check ~jobs:cfg.jobs p with
              | [] -> ()
              | violations ->
                Registry.incr c_violating;
                Registry.incr ~by:(List.length violations) c_violations;
                Trace.instant ~args:[ ("seed", Json.Int seed) ]
                  "fuzz.violation";
                let min_source, min_stmts =
                  if cfg.minimize then begin
                    let oracle q = Soundness.check ~jobs:cfg.jobs q <> [] in
                    let small, used =
                      minimize ~max_checks:cfg.max_shrink_checks ~oracle plan
                    in
                    Registry.incr ~by:used c_shrink;
                    match compile_plan small with
                    | msrc, mp ->
                      (Some msrc, Some (Soundness.app_stmt_count mp))
                    | exception _ -> (None, None)
                  end
                  else (None, None)
                in
                let case =
                  {
                    c_seed = seed;
                    c_violations = violations;
                    c_source = src;
                    c_min_source = min_source;
                    c_min_app_stmts = min_stmts;
                    c_planted_leaks = Gen.Rand.planted_leaks plan;
                    c_planted_sanitized = Gen.Rand.planted_sanitized plan;
                    c_edit_pair = None;
                  }
                in
                Option.iter (fun dir -> write_case dir case) cfg.out_dir;
                failed := case :: !failed));
        if cfg.progress && (i + 1) mod 250 = 0 then
          Fmt.epr "[fuzz] %d/%d programs, %d violating@." (i + 1) cfg.n
            (Registry.value c_violating)
      done;
      let elapsed = Timer.now () -. t0 in
      let pps = if elapsed > 0. then float cfg.n /. elapsed else 0. in
      Registry.set g_pps pps;
      {
        r_total = cfg.n;
        r_failed = List.rev !failed;
        r_gen_errors = Registry.value c_gen_errors;
        r_halted = Registry.value c_halted;
        r_elapsed = elapsed;
        r_progs_per_s = pps;
        r_snapshot = Registry.snapshot reg;
      })

(* ---- edit-session campaign (cfg.edits > 0) ---- *)

(** Fuzz the incremental engine: per case, derive [cfg.edits] successive
    revisions of a random base plan and require {!Soundness.check_incremental}
    to find updated results bit-identical to from-scratch solves along the
    whole chain. On failure, scan consecutive revision pairs for one that
    fails on its own — since every chain step is verified against scratch,
    the failing edit is almost always reproducible as a 2-revision session —
    and record it as the minimal counterexample. *)
let run_edits (cfg : cfg) : report =
  let reg = Registry.create () in
  let c_sessions = Registry.counter reg "fuzz_edit_sessions" in
  let c_steps = Registry.counter reg "fuzz_edit_steps" in
  let c_violating = Registry.counter reg "fuzz_violating_programs" in
  let c_violations = Registry.counter reg "fuzz_violations" in
  let c_gen_errors = Registry.counter reg "fuzz_gen_errors" in
  let c_pair = Registry.counter reg "fuzz_edit_pair_cases" in
  let g_pps = Registry.gauge reg "fuzz_progs_per_s" in
  let master = Rng.create cfg.seed in
  let failed = ref [] in
  let t0 = Timer.now () in
  for i = 0 to cfg.n - 1 do
    let seed = Int64.to_int (Rng.next master) land 0x3FFFFFFF in
    Trace.with_span ~cat:"fuzz"
      ~args:[ ("seed", Json.Int seed) ]
      "fuzz.edit-session"
      (fun () ->
        Registry.incr c_sessions;
        let base = Gen.Rand.generate ~seed ~max_size:cfg.max_size in
        let plans =
          base :: Gen.Edit.sequence ~seed:(seed lxor 0x5EED) ~steps:cfg.edits base
        in
        match List.map compile_plan plans with
        | exception e ->
          Registry.incr c_gen_errors;
          failed :=
            {
              c_seed = seed;
              c_violations =
                [
                  {
                    Soundness.v_kind = Soundness.Analysis_crash;
                    v_analysis = "frontend";
                    v_detail = Printexc.to_string e;
                  };
                ];
              c_source = Gen.Rand.render base;
              c_min_source = None;
              c_min_app_stmts = None;
              c_planted_leaks = Gen.Rand.planted_leaks base;
              c_planted_sanitized = Gen.Rand.planted_sanitized base;
              c_edit_pair = None;
            }
            :: !failed
        | compiled -> (
          Registry.incr ~by:(List.length compiled - 1) c_steps;
          let progs = List.map snd compiled in
          match Soundness.check_incremental ~jobs:cfg.jobs progs with
          | [] -> ()
          | violations ->
            Registry.incr c_violating;
            Registry.incr ~by:(List.length violations) c_violations;
            Trace.instant ~args:[ ("seed", Json.Int seed) ] "fuzz.violation";
            let srcs = Array.of_list (List.map fst compiled) in
            let parr = Array.of_list progs in
            let pair = ref None in
            if cfg.minimize then begin
              try
                for k = 1 to Array.length parr - 1 do
                  if
                    Soundness.check_incremental ~jobs:cfg.jobs
                      [ parr.(k - 1); parr.(k) ]
                    <> []
                  then begin
                    pair := Some (srcs.(k - 1), srcs.(k));
                    raise Exit
                  end
                done
              with Exit -> ()
            end;
            if !pair <> None then Registry.incr c_pair;
            let case =
              {
                c_seed = seed;
                c_violations = violations;
                c_source = srcs.(0);
                c_min_source = None;
                c_min_app_stmts = None;
                c_planted_leaks = Gen.Rand.planted_leaks base;
                c_planted_sanitized = Gen.Rand.planted_sanitized base;
                c_edit_pair = !pair;
              }
            in
            Option.iter (fun dir -> write_case dir case) cfg.out_dir;
            failed := case :: !failed));
    if cfg.progress && (i + 1) mod 50 = 0 then
      Fmt.epr "[fuzz] %d/%d edit sessions, %d violating@." (i + 1) cfg.n
        (Registry.value c_violating)
  done;
  let elapsed = Timer.now () -. t0 in
  let pps = if elapsed > 0. then float cfg.n /. elapsed else 0. in
  Registry.set g_pps pps;
  {
    r_total = cfg.n;
    r_failed = List.rev !failed;
    r_gen_errors = Registry.value c_gen_errors;
    r_halted = 0;
    r_elapsed = elapsed;
    r_progs_per_s = pps;
    r_snapshot = Registry.snapshot reg;
  }

let run (cfg : cfg) : report =
  if cfg.edits > 0 then run_edits cfg else run_programs cfg

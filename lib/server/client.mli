(** Minimal client for the analysis server: connect to the unix socket,
    send one newline-delimited JSON request, read one reply line. This is
    what the [client] CLI subcommand and the CI smoke test script against;
    richer clients can keep a connection open and pipeline requests
    themselves — the protocol is plain NDJSON either way. *)

(** Poll until [socket] accepts a connection; [false] if [timeout_s]
    (default 10) elapses first. For scripts that just started the daemon in
    the background. *)
val wait_for_socket : ?timeout_s:float -> string -> bool

(** One round-trip: connect, send [request] (a JSON object on one line),
    return the reply line. [Error] on connection failure or a server that
    hung up without replying. *)
val request : socket:string -> string -> (string, string) result

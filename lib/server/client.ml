(** One-shot NDJSON client over a unix socket (see the interface). *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let wait_for_socket ?(timeout_s = 10.) socket =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match connect socket with
    | Ok fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      true
    | Error _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        Unix.sleepf 0.05;
        poll ()
      end
  in
  poll ()

let request ~socket (req : string) : (string, string) result =
  match connect socket with
  | Error e -> Error (Printf.sprintf "cannot connect to %s: %s" socket e)
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let oc = Unix.out_channel_of_descr fd in
        let ic = Unix.in_channel_of_descr fd in
        output_string oc req;
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | reply -> Ok reply
        | exception End_of_file ->
          Error "server closed the connection without replying")

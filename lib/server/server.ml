(** Request router + accept loop of the resident analysis server. The
    interface documents the wire protocol; everything here is mechanism.

    Every handler goes through the same three steps — build a {!Run.spec}
    from the request (server defaults underneath), resolve the program
    through the session's digest-keyed program cache, and (for the
    result-bearing commands) fetch the outcome through the session's result
    cache — so a warm cache short-circuits straight to the client layer
    whatever the command. *)

module Json = Csc_obs.Json
module Registry = Csc_obs.Registry
module Snapshot = Csc_obs.Snapshot
module Run = Csc_driver.Run
module Session = Csc_driver.Session
module Report = Csc_driver.Report
module Export = Csc_driver.Export
module Explain = Csc_driver.Explain
module Ir = Csc_ir.Ir

type t = {
  sess : Session.t;
  reg : Registry.t;
  defaults : Run.spec;
  lat : Registry.histogram;
  g_inflight : Registry.gauge;
  mutable served : int;
  mutable stop : bool;
}

let create ?max_mem_bytes ?(defaults = Run.spec Run.Imp_csc) () =
  let reg = Registry.create () in
  {
    sess = Session.create ?max_mem_bytes ~registry:reg ();
    reg;
    defaults;
    lat =
      Registry.histogram reg
        ~buckets:[ 0.0001; 0.001; 0.01; 0.1; 1.; 10.; 100. ]
        "server_latency_s";
    g_inflight = Registry.gauge reg "server_inflight";
    served = 0;
    stop = false;
  }

let session t = t.sess
let stopped t = t.stop

(* ---------------------------------------------------------------- replies *)

(* the "id" member is echoed verbatim so pipelined clients can match
   replies to requests *)
let id_field req =
  match Option.bind req (Json.member "id") with
  | Some id -> [ ("id", id) ]
  | None -> []

let ok_reply ?req ?cached fields =
  Json.to_string
    (Json.with_schema
       (id_field req
       @ [ ("ok", Json.Bool true) ]
       @ (match cached with
         | Some c -> [ ("cached", Json.Bool c) ]
         | None -> [])
       @ fields))

let error_reply ?req ~code msg =
  Json.to_string
    (Json.with_schema
       (id_field req
       @ [ ("ok", Json.Bool false); ("error", Json.error ~code msg) ]))

exception Reject of string * string  (* code, message *)

let reject code msg = raise (Reject (code, msg))
let rejectf code fmt = Printf.ksprintf (reject code) fmt

(* ------------------------------------------------------- request decoding *)

let str_member k req = Option.bind (Json.member k req) Json.get_string
let bool_member k req = Option.bind (Json.member k req) Json.get_bool
let int_member k req = Option.bind (Json.member k req) Json.get_int
let float_member k req = Option.bind (Json.member k req) Json.get_float

(* server defaults overridden by whatever the request names *)
let spec_of_request t req : Run.spec =
  let d = t.defaults in
  let analysis =
    match str_member "analysis" req with
    | None -> d.Run.sp_analysis
    | Some s -> (
      match Run.analysis_of_string s with
      | Ok a -> a
      | Error msg -> reject "bad-request" msg)
  in
  {
    Run.sp_analysis = analysis;
    sp_budget_s =
      (match float_member "budget_s" req with
      | Some b -> if b <= 0. then None else Some b
      | None -> d.Run.sp_budget_s);
    sp_validate =
      Option.value ~default:d.Run.sp_validate (bool_member "validate" req);
    sp_explain = false;
    sp_collapse =
      Option.value ~default:d.Run.sp_collapse (bool_member "collapse" req);
    sp_profile =
      Option.value ~default:d.Run.sp_profile (bool_member "profile" req);
    sp_profile_top =
      Option.value ~default:d.Run.sp_profile_top
        (int_member "profile_top" req);
    sp_progress_s =
      (match float_member "progress_s" req with
      | Some s -> if s <= 0. then None else Some s
      | None -> d.Run.sp_progress_s);
    sp_jobs = Option.value ~default:d.Run.sp_jobs (int_member "jobs" req);
  }

let program_of_request t req : Ir.program * string =
  match (str_member "program" req, str_member "source" req) with
  | Some _, Some _ ->
    reject "bad-request" "give either \"program\" or \"source\", not both"
  | None, None ->
    reject "bad-request" "missing \"program\" (suite name or .mjava path) or \
                          inline \"source\""
  | Some spec, None -> (
    match Session.load t.sess spec with
    | Ok pd -> pd
    | Error msg -> reject "not-found" msg)
  | None, Some src -> (
    let name = Option.value ~default:"<inline>" (str_member "name" req) in
    match Session.load_source t.sess ~name src with
    | Ok pd -> pd
    | Error msg -> reject "compile" msg)

(* commands that need a solved state: fetch through the cache and insist
   the solve finished *)
let solved t req : Run.spec * Ir.program * Run.outcome * bool =
  let spec = spec_of_request t req in
  let p, digest = program_of_request t req in
  let o, cached = Session.outcome t.sess ~digest spec p in
  (spec, p, o, cached)

let result_of (o : Run.outcome) =
  match o.Run.o_result with
  | Some r -> r
  | None ->
    rejectf "timeout" "analysis %s timed out after %.1fs" o.Run.o_analysis
      o.Run.o_time

(* ---------------------------------------------------------------- handlers *)

let handle_analyze t req =
  let spec = spec_of_request t req in
  let p, digest = program_of_request t req in
  let o, cached = Session.outcome t.sess ~digest spec p in
  (* the digest is the handle [update] requests use to name this program *)
  ok_reply ~req ~cached
    [ ("digest", Json.Str digest); ("result", Report.outcome_json o) ]

let handle_pt t req =
  let _, p, o, cached = solved t req in
  let r = result_of o in
  let include_jdk = Option.value ~default:false (bool_member "include_jdk" req) in
  let vars = Export.pts_json ?var:(str_member "var" req) ~include_jdk p r in
  ok_reply ~req ~cached
    [ ( "result",
        Json.Obj
          [ ("analysis", Json.Str o.Run.o_analysis); ("vars", vars) ] ) ]

let handle_callgraph t req =
  let _, p, o, cached = solved t req in
  let r = result_of o in
  let include_jdk = Option.value ~default:false (bool_member "include_jdk" req) in
  ok_reply ~req ~cached
    [ ( "result",
        Json.Obj
          [ ("analysis", Json.Str o.Run.o_analysis);
            ("dot", Json.Str (Export.callgraph_dot ~include_jdk p r)) ] ) ]

let handle_check t req =
  let _, p, o, cached = solved t req in
  let r = result_of o in
  let include_jdk = Option.value ~default:false (bool_member "include_jdk" req) in
  let checks =
    match Option.bind (Json.member "checks" req) Json.get_list with
    | None | Some [] -> None
    | Some l -> Some (List.filter_map Json.get_string l)
  in
  let ds = Csc_checks.Checks.run_all ?checks ~include_jdk p r in
  ok_reply ~req ~cached
    [ ( "result",
        Json.Obj
          [ ("analysis", Json.Str o.Run.o_analysis);
            ("count", Json.Int (List.length ds));
            ( "diagnostics",
              (* render_json is the one deterministic diagnostics shape;
                 re-parsing it embeds the same objects in the reply *)
              Json.parse_exn (Csc_checks.Diagnostic.render_json p ds) ) ] ) ]

let handle_taint t req =
  let tspec =
    match str_member "spec" req with
    | None -> Csc_taint.Taint_spec.builtin
    | Some f -> (
      match Csc_taint.Taint_spec.load f with
      | Ok s -> s
      | Error e -> rejectf "not-found" "cannot load taint spec %s: %s" f e)
  in
  let _, p, o, cached = solved t req in
  let r = result_of o in
  let include_jdk = Option.value ~default:false (bool_member "include_jdk" req) in
  let res = Csc_taint.Taint.analyze ~spec:tspec p r in
  let ds = Csc_taint.Taint.diagnostics ~include_jdk p res in
  ok_reply ~req ~cached
    [ ( "result",
        Json.Obj
          [ ("analysis", Json.Str o.Run.o_analysis);
            ("count", Json.Int (List.length ds));
            ( "tainted_objects",
              Json.Int
                (Csc_common.Bits.cardinal res.Csc_taint.Taint.t_tainted_objs)
            );
            ( "diagnostics",
              Json.parse_exn (Csc_checks.Diagnostic.render_json p ds) ) ] ) ]

let handle_explain t req =
  (* provenance needs the live solver handle and disables collapsing, so
     this command bypasses the session result cache on purpose *)
  let spec = spec_of_request t req in
  let p, _ = program_of_request t req in
  let limit = Option.value ~default:5 (int_member "limit" req) in
  match
    Explain.run ?budget_s:spec.Run.sp_budget_s ?var:(str_member "var" req)
      ~limit p spec.Run.sp_analysis
  with
  | Error msg -> reject "bad-request" msg
  | Ok facts ->
    ok_reply ~req
      [ ( "result",
          Json.Obj
            [ ("analysis", Json.Str (Run.name spec.Run.sp_analysis));
              ( "facts",
                Json.List
                  (List.map
                     (fun (f : Explain.fact) ->
                       Json.Obj
                         [ ("ptr", Json.Str f.Explain.x_ptr);
                           ("obj", Json.Str f.Explain.x_obj);
                           ( "chain",
                             Json.List
                               (List.map
                                  (fun l -> Json.Str l)
                                  f.Explain.x_chain) ) ])
                     facts) ) ] ) ]

let handle_profile t req =
  let spec = spec_of_request t req in
  let spec =
    {
      spec with
      Run.sp_profile = true;
      sp_profile_top =
        Option.value ~default:spec.Run.sp_profile_top (int_member "top" req);
    }
  in
  let p, digest = program_of_request t req in
  let o, cached = Session.outcome t.sess ~digest spec p in
  ok_reply ~req ~cached
    [ ( "result",
        Json.Obj
          [ ("analysis", Json.Str o.Run.o_analysis);
            ("timeout", Json.Bool o.Run.o_timeout);
            ("time_s", Json.Float o.Run.o_time);
            ( "profile",
              match o.Run.o_profile with
              | None -> Json.Null
              | Some pr -> Csc_obs.Attr.profile_json pr ) ] ) ]

let handle_update t req =
  let spec = spec_of_request t req in
  let digest =
    match str_member "digest" req with
    | Some d -> d
    | None -> reject "bad-request" "missing \"digest\" of the base program"
  in
  let edits =
    match Json.member "edits" req with
    | None -> None
    | Some j -> (
      match Json.get_list j with
      | None -> reject "bad-request" "\"edits\" must be an array"
      | Some l ->
        Some
          (List.map
             (fun e ->
               let field k =
                 match Option.bind (Json.member k e) Json.get_string with
                 | Some s -> s
                 | None -> rejectf "bad-request" "edit missing %S" k
               in
               match Option.bind (Json.member "op" e) Json.get_string with
               | Some "replace" ->
                 Csc_pta.Inc.Replace_method
                   {
                     cls = field "class";
                     meth = field "method";
                     body = field "body";
                   }
               | Some "add" ->
                 Csc_pta.Inc.Add_method
                   { cls = field "class"; meth_src = field "src" }
               | Some "remove" ->
                 Csc_pta.Inc.Remove_method
                   { cls = field "class"; meth = field "method" }
               | Some op ->
                 rejectf "bad-request"
                   "unknown edit op %S (replace, add, remove)" op
               | None -> reject "bad-request" "edit missing \"op\"")
             l))
  in
  let source = str_member "source" req in
  (match (edits, source) with
  | None, None ->
    reject "bad-request" "missing \"edits\" array or full \"source\""
  | Some _, Some _ ->
    reject "bad-request" "give either \"edits\" or \"source\", not both"
  | _ -> ());
  match Session.update t.sess ~digest ?source ?edits spec with
  | Error msg -> reject "bad-request" msg
  | Ok u ->
    ok_reply ~req ~cached:u.Session.up_cached
      [ ( "result",
          Json.Obj
            [ ("digest", Json.Str u.Session.up_digest);
              ("inc", Json.Obj (Csc_pta.Inc.info_json u.Session.up_info));
              ("outcome", Report.outcome_json u.Session.up_outcome) ] ) ]

let handle_stats t req =
  ok_reply ~req
    [ ( "result",
        Json.Obj
          [ ("requests", Json.Int t.served);
            ("session", Session.stats_json t.sess);
            ("snapshot", Snapshot.to_json (Registry.snapshot t.reg)) ] ) ]

let handle_shutdown t req =
  t.stop <- true;
  ok_reply ~req
    [ ("result", Json.Obj [ ("stopping", Json.Bool true) ]) ]

(* ----------------------------------------------------------------- router *)

let dispatch t req = function
  | "analyze" -> handle_analyze t req
  | "pt" -> handle_pt t req
  | "callgraph" -> handle_callgraph t req
  | "check" -> handle_check t req
  | "taint" -> handle_taint t req
  | "explain" -> handle_explain t req
  | "profile" -> handle_profile t req
  | "update" -> handle_update t req
  | "stats" -> handle_stats t req
  | "shutdown" -> handle_shutdown t req
  | cmd ->
    rejectf "unknown-cmd"
      "unknown cmd %S (analyze, pt, callgraph, check, taint, explain, \
       profile, update, stats, shutdown)"
      cmd

let handle_line t (line : string) : string =
  let t0 = Unix.gettimeofday () in
  Registry.set t.g_inflight 1.;
  t.served <- t.served + 1;
  let reply =
    match Json.parse line with
    | Error msg -> error_reply ~code:"parse" msg
    | Ok req -> (
      match str_member "cmd" req with
      | None -> error_reply ~req ~code:"bad-request" "missing \"cmd\""
      | Some cmd -> (
        Registry.incr
          (Registry.counter t.reg ~labels:[ ("cmd", cmd) ] "server_requests");
        try dispatch t req cmd with
        | Reject (code, msg) -> error_reply ~req ~code msg
        | Failure msg -> error_reply ~req ~code:"bad-request" msg))
  in
  Registry.observe t.lat (Unix.gettimeofday () -. t0);
  Registry.set t.g_inflight 0.;
  reply

(* ------------------------------------------------------------ accept loop *)

let serve t ~socket =
  let previous_sigpipe =
    (* a client vanishing mid-reply must error the write, not kill the
       daemon *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 16;
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket with Unix.Unix_error _ -> ());
    match previous_sigpipe with
    | Some b -> Sys.set_signal Sys.sigpipe b
    | None -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  while not t.stop do
    let cfd, _ = Unix.accept fd in
    let ic = Unix.in_channel_of_descr cfd in
    let oc = Unix.out_channel_of_descr cfd in
    (try
       (* one connection at a time, strictly in request order (S19) *)
       while not t.stop do
         let line = input_line ic in
         if String.trim line <> "" then begin
           output_string oc (handle_line t line);
           output_char oc '\n';
           flush oc
         end
       done
     with End_of_file | Sys_error _ -> ());
    try Unix.close cfd with Unix.Unix_error _ -> ()
  done

(** The resident analysis server: a single-process daemon answering
    newline-delimited JSON requests over a unix socket, backed by one
    {!Csc_driver.Session} so repeat queries are served from the digest-keyed
    result cache instead of re-solving.

    {2 Wire protocol}

    One JSON object per line in each direction. Requests name a command and
    a program, plus optional run-spec overrides:

    {v
    {"cmd": "analyze", "program": "findbugs", "analysis": "csc"}
    {"cmd": "pt", "program": "hello.mjava", "analysis": "csc", "var": "main.x"}
    {"cmd": "stats"}
    {"cmd": "shutdown"}
    v}

    - [cmd] (required): one of [analyze], [pt], [callgraph], [check],
      [taint], [explain], [profile], [update], [stats], [shutdown].
    - [program]: a workload-suite name or a [.mjava] path (resolved
      server-side); alternatively [source] carries inline MiniJava text
      (with an optional [name] for error positions).
    - [analysis]: any spelling {!Csc_driver.Run.analysis_of_string} accepts.
    - run-spec overrides, all optional: [budget_s], [jobs], [collapse],
      [validate], [profile], [profile_top], [progress_s] — defaults come
      from the spec the server was created with.
    - command-specific: [var] (pt, explain), [limit] (explain),
      [include_jdk] (pt, callgraph, check, taint), [checks] (check, a list
      of checker names), [spec] (taint, a JSON taint-spec path), [top]
      (profile).
    - [id]: any JSON value, echoed verbatim in the reply.

    [update] analyzes an edited revision of an already-loaded program,
    incrementally when the server's retained state anchors on it
    ({!Csc_driver.Session.update}): [digest] (required) names the base
    program (every [analyze] reply carries the program's [digest] beside
    [result]), and either [edits] — an array of
    [{"op": "replace", "class": C, "method": M, "body": "<statements>"}] /
    [{"op": "add", "class": C, "src": "..."}] /
    [{"op": "remove", "class": C, "method": M}] objects applied in order to
    the base source — or [source], the full edited text. The result carries
    the new revision's [digest] (the base for subsequent updates), an [inc]
    block ([mode] "incremental"/"fresh", [reason], dirty/preload/reuse
    statistics) and the ordinary analyze [outcome]; the outcome is
    bit-identical to a from-scratch [analyze] of the edited source.

    Replies are versioned envelopes: [{"schema": 1, "id": ..., "ok": true,
    "cmd": ..., "cached": ..., "result": {...}}] on success — [cached] is
    present on session-backed commands and true when the answer came from
    the result cache — and [{"schema": 1, "id": ..., "ok": false, "error":
    {"code": ..., "message": ...}}] on failure (codes: [parse],
    [bad-request], [unknown-cmd], [not-found], [compile], [timeout]).

    {2 Concurrency model}

    Single-writer by construction: one thread, one connection at a time,
    requests handled strictly in arrival order (DESIGN.md S19). Telemetry
    rides on an internal {!Csc_obs.Registry}: per-command request counters,
    session cache hits/misses, a request-latency histogram and an in-flight
    gauge, all exposed by the [stats] command. *)

type t

(** [create ()] builds a server state with a fresh session. [max_mem_bytes]
    bounds the session's result cache (default 1 GiB); [defaults] seeds the
    per-request run spec (its [sp_analysis] is the analysis used when a
    request names none). *)
val create : ?max_mem_bytes:int -> ?defaults:Csc_driver.Run.spec -> unit -> t

(** The session behind the server (tests assert on its counters). *)
val session : t -> Csc_driver.Session.t

(** True once a [shutdown] request has been handled. *)
val stopped : t -> bool

(** Handle one request line, producing one reply line (no trailing
    newline). Total: every failure mode is an error reply, never an
    exception. This is the full router — the socket loop and the tests both
    sit on it. *)
val handle_line : t -> string -> string

(** Bind [socket] (an existing file is unlinked first), listen, and serve
    connections one at a time until a [shutdown] request arrives; the socket
    file is removed on exit. Ignores SIGPIPE for the duration. *)
val serve : t -> socket:string -> unit

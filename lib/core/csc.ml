(** The Cut-Shortcut analysis (the paper's contribution, §3–§4).

    Implemented as a {!Csc_pta.Solver.plugin} over the context-insensitive
    solver: the solver consults [pl_is_cut_store]/[pl_is_cut_return] *before*
    adding PFG edges (so cut edges are never added, as §3.1 requires), and the
    plugin reacts to points-to deltas, new call edges and new PFG edges by
    adding shortcut edges ([E_SC]).

    Pattern machinery, rule by rule:
    - Field stores (Fig. 8): [cutStores] = stores whose base and rhs are
      never-redefined parameters (decided statically); [tempStores] becomes
      per-method (k_base, field, k_rhs) triples propagated caller-wards along
      discovered call edges ([PropStore]); when propagation stops,
      subscriptions on the base argument's points-to set emit
      [from -> o.f] shortcut edges ([ShortcutStore]).
    - Field loads (Fig. 9): [cutReturns] is pre-approximated by the CHA
      closure of {!Static.load_info} (over-cutting is sound thanks to
      [RelayEdge]); [tempLoads] propagate along call edges; subscriptions
      emit [o.f -> lhs] shortcuts ([ShortcutLoad]); every in-edge of a cut
      return variable that is not classified as a returnLoadEdge — including
      allocations directly into it — is relayed to the call-site LHS
      ([RelayEdge]).
    - Containers (Fig. 10): Exit methods' returns are cut ([CutContainer]);
      the pointer-host map [pt_H] is propagated along PFG edges except
      Transfer-return edges ([ColHost]/[MapHost]/[TransferHost]/[PropHost]);
      matching Source/Target pairs per (host, category) yield shortcuts
      ([HostSource]/[HostTarget]/[ShortcutContainer]).
    - Local flow (Fig. 11): methods whose return values all come from
      parameters are cut ([CutLFlow]) and each call site gets
      [arg_k -> lhs] shortcuts ([ShortcutLFlow]). *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Registry = Csc_obs.Registry
module Attr = Csc_obs.Attr

type config = {
  field_pattern : bool;
  container_pattern : bool;
  local_flow : bool;
}

let default_config =
  { field_pattern = true; container_pattern = true; local_flow = true }

let config_name cfg =
  match (cfg.field_pattern, cfg.container_pattern, cfg.local_flow) with
  | true, true, true -> "csc"
  | true, false, false -> "csc-field"
  | false, true, false -> "csc-container"
  | false, false, true -> "csc-localflow"
  | f, c, l -> Printf.sprintf "csc-%b-%b-%b" f c l

(* per cut-load-method relay bookkeeping *)
type relay = {
  mutable rl_in_edges : (int * Ir.typ option) list;  (* (src ptr, filter) *)
  mutable rl_lhs : int list;                         (* call-site LHS ptrs *)
  rl_seeds : Bits.t;  (* objects allocated directly into m_ret *)
}

(* subscriptions fired when pt(base ptr) grows *)
type sub =
  | Sub_store of { fld : Ir.field_id; from_ptr : int }
      (** ShortcutStore: from_ptr -> o.fld for o in pt(base) *)
  | Sub_load of { fld : Ir.field_id; to_ptr : int; tag : bool }
      (** ShortcutLoad: o.fld -> to_ptr for o in pt(base); [tag] marks the
          emitted edges as returnLoadEdges (exempt from relaying) *)

(* container roles attached to a receiver pointer, applied to each host *)
type role =
  | R_entrance of { arg_ptr : int; cat : Spec.category }
  | R_exit of { lhs_ptr : int; cat : Spec.category }
  | R_transfer of { lhs_ptr : int }

type t = {
  solver : Solver.t;
  prog : Ir.program;
  cfg : config;
  spec : Spec.t;
  ci : int;  (* the (only) context id *)
  (* ---- static cut sets ---- *)
  li : Static.load_info;
  cut_load : Bits.t;  (* li_cut minus container exits/transfers *)
  cut_lflow : Bits.t;
  lflow_srcs : (Ir.method_id, int list) Hashtbl.t;
  (* ---- field pattern dynamic state ---- *)
  store_pats : (Ir.method_id, (int * Ir.field_id * int) list ref) Hashtbl.t;
  load_pats : (Ir.method_id, (int * Ir.field_id) list ref) Hashtbl.t;
  callers : (Ir.method_id, Ir.call_id list ref) Hashtbl.t;
  subs : (int, sub list ref) Hashtbl.t;  (* base ptr -> subscriptions *)
  sub_seen : (int * sub, unit) Hashtbl.t;
  (* returnLoadEdges classification *)
  retload_pats : (int, (int * Ir.field_id) list ref) Hashtbl.t;
      (* cut ret-var ptr -> (base ptr, field): in-method load edges *)
  tagged : (int * int, unit) Hashtbl.t;  (* plugin-added returnLoad edges *)
  relays : (Ir.method_id, relay) Hashtbl.t;
  ret_ptr_owner : (int, Ir.method_id) Hashtbl.t;  (* m_ret ptr -> cut-load m *)
  (* ---- container pattern dynamic state ---- *)
  pt_h : (int, Bits.t) Hashtbl.t;  (* ptr -> host objects *)
  roles : (int, role list ref) Hashtbl.t;  (* receiver ptr -> roles *)
  role_seen : (int * role, unit) Hashtbl.t;
  sources : (int * Spec.category, int list ref) Hashtbl.t;  (* host -> srcs *)
  targets : (int * Spec.category, int list ref) Hashtbl.t;
  (* ---- statistics ---- *)
  involved : Bits.t;  (* methods touched by cut or shortcut edges *)
  mutable n_shortcuts : int;
  mutable n_cut_stores : int;
  (* per-rule counters in the solver's registry: which pattern fired *)
  c_sc_store : Registry.counter;
  c_sc_load : Registry.counter;
  c_sc_relay : Registry.counter;
  c_sc_container : Registry.counter;
  c_sc_lflow : Registry.counter;
  c_cut_stores : Registry.counter;
  c_cut_ret_load : Registry.counter;
  c_cut_ret_lflow : Registry.counter;
  c_cut_ret_exit : Registry.counter;
}

(* ----------------------------------------------------------- small utils *)

let get_list tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl key r;
    r

let ptr_var t v = Solver.ptr_var t.solver ~ctx:t.ci v

(** Parameter variable of [m] at position [k] (0 = this). *)
let param_at (m : Ir.metho) k : Ir.var_id option =
  if k = 0 then m.m_this
  else if k <= Array.length m.m_params then Some m.m_params.(k - 1)
  else None

let method_of_ptr t (ptr : int) : Ir.method_id option =
  match Solver.ptr_desc t.solver ptr with
  | Solver.PVar (_, v) -> Some (Ir.var t.prog v).v_method
  | PField (o, _) | PArr o ->
    Some (Ir.alloc t.prog (Solver.obj_alloc t.solver o)).a_method
  | PStatic _ -> None

let mark_involved t ptr =
  match method_of_ptr t ptr with
  | Some m -> ignore (Bits.add t.involved m)
  | None -> ()

(** Fault-injection hook for the soundness fuzzer: when set, store-pattern
    shortcut edges are silently dropped while the matching cuts still apply —
    a deliberate unsoundness the fuzzer must catch and minimize. Never set
    outside tests and the hidden [fuzz --inject-unsound] flag. *)
let sabotage_drop_shortcuts = ref false

(** Add a shortcut edge (E_SC); [rule] is the per-pattern counter of the
    rule that emitted it. *)
let shortcut ?filter t rule ~src ~dst =
  if src <> dst && not (!sabotage_drop_shortcuts && rule == t.c_sc_store) then begin
    t.n_shortcuts <- t.n_shortcuts + 1;
    Registry.incr rule;
    (match Solver.attr t.solver with
    | None -> ()
    | Some a ->
      (* attribution rule row keyed by the CSC pattern (the counters all
         share one name and differ by their "pattern" label) *)
      let pat =
        match List.assoc_opt "pattern" (Registry.counter_labels rule) with
        | Some p -> p
        | None -> Registry.counter_name rule
      in
      Attr.rule_fire (Attr.rule a ("csc:" ^ pat)));
    mark_involved t src;
    mark_involved t dst;
    Solver.add_edge ~kind:Solver.KShortcut ?filter t.solver ~src ~dst
  end

(* -------------------------------------------------- field store pattern *)

(* Fire one store pattern of [callee] at one of its call sites
   ([PropStore] / [ShortcutStore]). *)
let rec apply_store_pattern t (site : Ir.call_id) (k1, fld, k2) =
  let cs = Ir.call t.prog site in
  match (Static.arg_at t.prog cs k1, Static.arg_at t.prog cs k2) with
  | Some base_v, Some from_v -> (
    match (Static.param_index t.prog base_v, Static.param_index t.prog from_v) with
    | Some k1', Some k2' ->
      (* both args are never-redefined parameters of the caller: propagate
         the temp store one level up *)
      add_store_pattern t cs.cs_method (k1', fld, k2')
    | _ ->
      (* propagation stops: emit shortcuts from the rhs argument to the
         fields of everything the base argument points to, now and later *)
      add_sub t (ptr_var t base_v)
        (Sub_store { fld; from_ptr = ptr_var t from_v }))
  | _ -> ()

and add_store_pattern t (m : Ir.method_id) pat =
  let pats = get_list t.store_pats m in
  if not (List.mem pat !pats) then begin
    pats := pat :: !pats;
    ignore (Bits.add t.involved m);
    List.iter (fun site -> apply_store_pattern t site pat) !(get_list t.callers m)
  end

(* ---------------------------------------------------- field load pattern *)

and apply_load_pattern t (site : Ir.call_id) (k, fld) =
  let cs = Ir.call t.prog site in
  match (cs.cs_lhs, Static.arg_at t.prog cs k) with
  | Some lhs, Some base_v ->
    let lhs_ptr = ptr_var t lhs in
    let base_ptr = ptr_var t base_v in
    (* ShortcutLoad subscription; its edges are returnLoadEdges only when
       the classification is unambiguous for this site *)
    let tag = Hashtbl.mem t.li.Static.li_site_ok (site, fld) in
    add_sub t base_ptr (Sub_load { fld; to_ptr = lhs_ptr; tag });
    (* CutPropLoad: propagate the temp load if lhs is the caller's return
       variable and the base argument a never-redefined parameter *)
    let caller = Ir.metho t.prog cs.cs_method in
    (match (caller.m_ret_var, Static.param_index t.prog base_v) with
    | Some rv, Some k' when rv = lhs -> add_load_pattern t cs.cs_method (k', fld)
    | _ -> ())
  | _ -> ()

and add_load_pattern t (m : Ir.method_id) pat =
  let pats = get_list t.load_pats m in
  if not (List.mem pat !pats) then begin
    pats := pat :: !pats;
    ignore (Bits.add t.involved m);
    List.iter (fun site -> apply_load_pattern t site pat) !(get_list t.callers m)
  end

(* ---------------------------------------------------------- subscriptions *)

and add_sub t (base_ptr : int) (s : sub) =
  (* key on the representative so merged base pointers keep firing *)
  let base_ptr = Solver.canon t.solver base_ptr in
  if not (Hashtbl.mem t.sub_seen (base_ptr, s)) then begin
    Hashtbl.add t.sub_seen (base_ptr, s) ();
    (get_list t.subs base_ptr) := s :: !(get_list t.subs base_ptr);
    fire_sub t s (Solver.pts t.solver base_ptr)
  end

and fire_sub t (s : sub) (objs : Bits.t) =
  Bits.iter
    (fun o ->
      if Solver.obj_class t.solver o <> None then
        match s with
        | Sub_store { fld; from_ptr } ->
          shortcut t t.c_sc_store ~src:from_ptr
            ~dst:(Solver.ptr_field t.solver ~obj:o ~fld)
        | Sub_load { fld; to_ptr; tag } ->
          let src = Solver.ptr_field t.solver ~obj:o ~fld in
          (* [tagged] keys stay canonical (see [on_merge]); [on_edge] looks
             them up with the representative ids the solver hands it *)
          if tag then
            Hashtbl.replace t.tagged
              (Solver.canon t.solver src, Solver.canon t.solver to_ptr)
              ();
          shortcut t t.c_sc_load ~src ~dst:to_ptr)
    objs

(* ------------------------------------------------------------------ relay *)

(* [RelayEdge]: in-edges of a cut return variable that are not
   returnLoadEdges are forwarded to every call-site LHS; objects allocated
   directly into the return variable are forwarded as seeds. *)

let relay_of t (m : Ir.method_id) : relay =
  match Hashtbl.find_opt t.relays m with
  | Some r -> r
  | None ->
    let r = { rl_in_edges = []; rl_lhs = []; rl_seeds = Bits.create () } in
    Hashtbl.add t.relays m r;
    r

let relay_in_edge t (m : Ir.method_id) ~(src : int) ~(filter : Ir.typ option) =
  let r = relay_of t m in
  if not (List.mem (src, filter) r.rl_in_edges) then begin
    r.rl_in_edges <- (src, filter) :: r.rl_in_edges;
    List.iter (fun lhs -> shortcut ?filter t t.c_sc_relay ~src ~dst:lhs) r.rl_lhs
  end

let relay_call_site t (m : Ir.method_id) (lhs_ptr : int) =
  let r = relay_of t m in
  if not (List.mem lhs_ptr r.rl_lhs) then begin
    r.rl_lhs <- lhs_ptr :: r.rl_lhs;
    List.iter
      (fun (src, filter) -> shortcut ?filter t t.c_sc_relay ~src ~dst:lhs_ptr)
      r.rl_in_edges;
    Solver.seed ~why:"relay" t.solver lhs_ptr (Bits.copy r.rl_seeds)
  end

let relay_seed t (m : Ir.method_id) (o : int) =
  let r = relay_of t m in
  if Bits.add r.rl_seeds o then
    List.iter (fun lhs -> Solver.seed1 ~why:"relay" t.solver lhs o) r.rl_lhs

(* ------------------------------------------------------ container pattern *)

let pt_h_of t ptr =
  let ptr = Solver.canon t.solver ptr in
  match Hashtbl.find_opt t.pt_h ptr with
  | Some b -> b
  | None ->
    let b = Bits.create () in
    Hashtbl.add t.pt_h ptr b;
    b

let rec add_source t host cat (src_ptr : int) =
  let srcs = get_list t.sources (host, cat) in
  if not (List.mem src_ptr !srcs) then begin
    srcs := src_ptr :: !srcs;
    List.iter
      (fun tgt -> shortcut t t.c_sc_container ~src:src_ptr ~dst:tgt)
      !(get_list t.targets (host, cat))
  end

and add_target t host cat (tgt_ptr : int) =
  let tgts = get_list t.targets (host, cat) in
  if not (List.mem tgt_ptr !tgts) then begin
    tgts := tgt_ptr :: !tgts;
    List.iter
      (fun src -> shortcut t t.c_sc_container ~src ~dst:tgt_ptr)
      !(get_list t.sources (host, cat))
  end

(* host propagation: ColHost/MapHost seeds arrive via [on_new_pts];
   PropHost follows PFG edges except Transfer-return edges; TransferHost and
   the Source/Target registration are driven by roles. *)
and add_hosts t (ptr : int) (delta : Bits.t) =
  let ptr = Solver.canon t.solver ptr in
  let cur = pt_h_of t ptr in
  match Bits.union_into ~into:cur delta with
  | None -> ()
  | Some fresh ->
    (* roles on this pointer as a receiver *)
    (match Hashtbl.find_opt t.roles ptr with
    | Some roles ->
      List.iter (fun role -> apply_role t role fresh) !roles
    | None -> ());
    (* PropHost along PFG successors *)
    List.iter
      (fun (e : Solver.edge) ->
        match e.e_kind with
        | Solver.KReturn callee when Spec.is_transfer t.spec callee -> ()
        | _ -> add_hosts t e.e_dst fresh)
      (Solver.succs t.solver ptr)

and apply_role t (role : role) (hosts : Bits.t) =
  Bits.iter
    (fun h ->
      match role with
      | R_entrance { arg_ptr; cat } -> add_source t h cat arg_ptr
      | R_exit { lhs_ptr; cat } -> add_target t h cat lhs_ptr
      | R_transfer { lhs_ptr } ->
        let one = Bits.create () in
        ignore (Bits.add one h);
        add_hosts t lhs_ptr one)
    hosts

(* ---------------------------------------------------- local flow pattern *)

let apply_lflow t (site : Ir.call_id) (callee : Ir.method_id) =
  let cs = Ir.call t.prog site in
  match (cs.cs_lhs, Hashtbl.find_opt t.lflow_srcs callee) with
  | Some lhs, Some srcs ->
    let lhs_ptr = ptr_var t lhs in
    List.iter
      (fun k ->
        match Static.arg_at t.prog cs k with
        | Some arg when Ir.is_ref_type (Ir.var t.prog arg).v_ty ->
          shortcut t t.c_sc_lflow ~src:(ptr_var t arg) ~dst:lhs_ptr
        | _ -> ())
      srcs
  | _ -> ()

let add_role t (recv_ptr : int) (role : role) =
  let recv_ptr = Solver.canon t.solver recv_ptr in
  if not (Hashtbl.mem t.role_seen (recv_ptr, role)) then begin
    Hashtbl.add t.role_seen (recv_ptr, role) ();
    (get_list t.roles recv_ptr) := role :: !(get_list t.roles recv_ptr);
    apply_role t role (pt_h_of t recv_ptr)
  end

(* ------------------------------------------------------------ collapsing *)

(* The solver merged pointer [other] into representative [rep]: migrate every
   pointer-keyed table. Cut return variables are pinned (see [on_reachable]),
   so [ret_ptr_owner] and [retload_pats] keys can never be absorbed and need
   no handling here. The solver re-delivers the merged points-to union (and
   we re-deliver the merged host union below), so migrated subscriptions and
   roles observe everything at least once. *)
let on_merge t ~rep ~other =
  (* field-pattern subscriptions *)
  (match Hashtbl.find_opt t.subs other with
  | Some l ->
    Hashtbl.remove t.subs other;
    List.iter
      (fun s ->
        if not (Hashtbl.mem t.sub_seen (rep, s)) then begin
          Hashtbl.add t.sub_seen (rep, s) ();
          get_list t.subs rep := s :: !(get_list t.subs rep)
        end)
      !l
  | None -> ());
  (* returnLoad-tagged edges: rewrite endpoints to stay canonical *)
  let stale =
    Hashtbl.fold
      (fun (a, b) () acc ->
        if a = other || b = other then (a, b) :: acc else acc)
      t.tagged []
  in
  List.iter
    (fun (a, b) ->
      Hashtbl.remove t.tagged (a, b);
      let a = if a = other then rep else a in
      let b = if b = other then rep else b in
      Hashtbl.replace t.tagged (a, b) ())
    stale;
  (* container roles *)
  (match Hashtbl.find_opt t.roles other with
  | Some l ->
    Hashtbl.remove t.roles other;
    List.iter
      (fun r ->
        if not (Hashtbl.mem t.role_seen (rep, r)) then begin
          Hashtbl.add t.role_seen (rep, r) ();
          get_list t.roles rep := r :: !(get_list t.roles rep)
        end)
      !l
  | None -> ());
  (* host sets: rebuild the representative's from the union and re-deliver,
     so merged roles and merged successors observe every host *)
  if t.cfg.container_pattern then begin
    let u = Bits.create () in
    (match Hashtbl.find_opt t.pt_h rep with
    | Some b ->
      Bits.union_quiet ~into:u b;
      Hashtbl.remove t.pt_h rep
    | None -> ());
    (match Hashtbl.find_opt t.pt_h other with
    | Some b ->
      Bits.union_quiet ~into:u b;
      Hashtbl.remove t.pt_h other
    | None -> ());
    if not (Bits.is_empty u) then add_hosts t rep u
  end

(* --------------------------------------------------------------- events *)

let on_reachable t (mid : Ir.method_id) =
  let m = Ir.metho t.prog mid in
  if t.cfg.field_pattern then begin
    (* seed static store patterns *)
    List.iter (add_store_pattern t mid) (Static.store_patterns t.prog m);
    (* seed static load patterns + in-method returnLoad classification *)
    if Bits.mem t.cut_load mid then begin
      ignore (Bits.add t.involved mid);
      let rv = Option.get m.m_ret_var in
      let rp = Solver.canon t.solver (ptr_var t rv) in
      (* the relay classification in [on_edge] keys on this exact pointer;
         pin it so cycle collapsing never absorbs it into another node *)
      Solver.pin t.solver rp;
      Hashtbl.replace t.ret_ptr_owner rp mid;
      List.iter
        (fun (k, fld) ->
          (* classify the in-method load edges o.f -> rv as returnLoads,
             when unambiguous *)
          (if Hashtbl.mem t.li.Static.li_static_ok (mid, fld) then
             match param_at m k with
             | Some base_v ->
               let pats = get_list t.retload_pats rp in
               pats := (ptr_var t base_v, fld) :: !pats
             | None -> ());
          add_load_pattern t mid (k, fld))
        (Static.load_patterns t.prog m);
      (* allocations directly into the return variable must be relayed *)
      Ir.iter_stmts
        (fun s ->
          match s with
          | (New { lhs; site; _ } | NewArray { lhs; site; _ }
            | StrConst { lhs; site; _ })
            when lhs = rv ->
            relay_seed t mid (Solver.intern_obj t.solver ~hctx:t.ci ~site)
          | _ -> ())
        m.m_body
    end
  end;
  if
    t.cfg.local_flow
    && (not (Bits.mem t.cut_lflow mid))
    && (not (Spec.is_exit t.spec mid))
    && not (t.cfg.field_pattern && Bits.mem t.cut_load mid)
  then begin
    match Static.local_flow_sources t.prog m with
    | Some srcs ->
      ignore (Bits.add t.cut_lflow mid);
      Hashtbl.replace t.lflow_srcs mid srcs;
      ignore (Bits.add t.involved mid);
      (* the first call edge fires before the method is processed *)
      List.iter (fun site -> apply_lflow t site mid) !(get_list t.callers mid)
    | None -> ()
  end

let on_call_edge t (site : Ir.call_id) (callee : Ir.method_id) =
  (get_list t.callers callee) := site :: !(get_list t.callers callee);
  let cs = Ir.call t.prog site in
  if t.cfg.field_pattern then begin
    List.iter
      (fun pat -> apply_store_pattern t site pat)
      !(get_list t.store_pats callee);
    List.iter
      (fun pat -> apply_load_pattern t site pat)
      !(get_list t.load_pats callee);
    (* relay plumbing for cut-load callees *)
    if Bits.mem t.cut_load callee then
      match cs.cs_lhs with
      | Some lhs when Ir.is_ref_type (Ir.var t.prog lhs).v_ty ->
        relay_call_site t callee (ptr_var t lhs)
      | _ -> ()
  end;
  if t.cfg.local_flow && Bits.mem t.cut_lflow callee then
    apply_lflow t site callee;
  if t.cfg.container_pattern then begin
    match cs.cs_recv with
    | None -> ()
    | Some recv ->
      let recv_ptr = ptr_var t recv in
      List.iter
        (fun (k, cat) ->
          match Static.arg_at t.prog cs k with
          | Some arg when Ir.is_ref_type (Ir.var t.prog arg).v_ty ->
            add_role t recv_ptr (R_entrance { arg_ptr = ptr_var t arg; cat })
          | _ -> ())
        (Spec.entrance_roles t.spec callee);
      (match (Spec.exit_category t.spec callee, cs.cs_lhs) with
      | Some cat, Some lhs ->
        ignore (Bits.add t.involved callee);
        add_role t recv_ptr (R_exit { lhs_ptr = ptr_var t lhs; cat })
      | _ -> ());
      if Spec.is_transfer t.spec callee then
        match cs.cs_lhs with
        | Some lhs -> add_role t recv_ptr (R_transfer { lhs_ptr = ptr_var t lhs })
        | None -> ()
  end

let on_new_pts t (ptr : int) (delta : Bits.t) =
  (* subscriptions of the field patterns *)
  (match Hashtbl.find_opt t.subs ptr with
  | Some subs -> List.iter (fun s -> fire_sub t s delta) !subs
  | None -> ());
  (* ColHost / MapHost: container objects flowing anywhere become hosts *)
  if t.cfg.container_pattern then begin
    let hosts = ref None in
    Bits.iter
      (fun o ->
        match Solver.obj_class t.solver o with
        | Some c when Spec.is_host_class t.spec c ->
          let b =
            match !hosts with
            | Some b -> b
            | None ->
              let b = Bits.create () in
              hosts := Some b;
              b
          in
          ignore (Bits.add b o)
        | _ -> ())
      delta;
    match !hosts with Some b -> add_hosts t ptr b | None -> ()
  end

let on_edge t ~(src : int) (e : Solver.edge) =
  (* PropHost across late-added edges *)
  (if t.cfg.container_pattern then
     match e.e_kind with
     | Solver.KReturn callee when Spec.is_transfer t.spec callee -> ()
     | _ ->
       let hosts = pt_h_of t src in
       if not (Bits.is_empty hosts) then add_hosts t e.e_dst (Bits.copy hosts));
  (* RelayEdge: classify in-edges of cut return variables *)
  if t.cfg.field_pattern then begin
    match Hashtbl.find_opt t.ret_ptr_owner e.e_dst with
    | None -> ()
    | Some m ->
      let is_return_load =
        Hashtbl.mem t.tagged (src, e.e_dst)
        ||
        match Solver.ptr_desc t.solver src with
        | Solver.PField (o, fld) -> (
          match Hashtbl.find_opt t.retload_pats e.e_dst with
          | Some pats ->
            List.exists
              (fun (base_ptr, f) ->
                f = fld && Bits.mem (Solver.pts t.solver base_ptr) o)
              !pats
          | None -> false)
        | _ -> false
      in
      if not is_return_load then relay_in_edge t m ~src ~filter:e.e_filter
  end

(* ---------------------------------------------------------------- public *)

let is_cut_return t (m : Ir.method_id) : bool =
  if t.cfg.field_pattern && Bits.mem t.cut_load m then begin
    Registry.incr t.c_cut_ret_load;
    true
  end
  else if t.cfg.local_flow && Bits.mem t.cut_lflow m then begin
    Registry.incr t.c_cut_ret_lflow;
    true
  end
  else if t.cfg.container_pattern && Spec.is_exit t.spec m then begin
    Registry.incr t.c_cut_ret_exit;
    true
  end
  else false

let is_cut_store t ~base ~fld ~rhs : bool =
  ignore fld;
  t.cfg.field_pattern
  && Static.is_cut_store t.prog ~base ~rhs
  &&
  (t.n_cut_stores <- t.n_cut_stores + 1;
   Registry.incr t.c_cut_stores;
   ignore (Bits.add t.involved (Ir.var t.prog base).v_method);
   true)

(** Build the plugin (and its inspection handle) for a solver. *)
let plugin_with_handle ?(config = default_config) (solver : Solver.t) :
    Solver.plugin * t =
  let prog = solver.Solver.prog in
  let spec = Spec.of_program prog in
  let li =
    if config.field_pattern then Static.load_info prog
    else
      Static.
        { li_pats = Hashtbl.create 1; li_cut = Bits.create ();
          li_static_ok = Hashtbl.create 1; li_site_ok = Hashtbl.create 1 }
  in
  let cut_load = Bits.copy li.Static.li_cut in
  (* exit methods get their precision from container shortcuts and their
     soundness from Assumption 1; transfer methods must keep their return
     edges so pt_H's transfer-return exclusion stays exact *)
  if config.container_pattern then begin
    Hashtbl.iter (fun m _ -> Bits.remove cut_load m) spec.Spec.exits;
    Bits.iter (fun m -> Bits.remove cut_load m) spec.Spec.transfers
  end;
  let t =
    {
      solver;
      prog;
      cfg = config;
      spec;
      ci = Interner.intern solver.Solver.ctxs [];
      li;
      cut_load;
      cut_lflow = Bits.create ();
      lflow_srcs = Hashtbl.create 64;
      store_pats = Hashtbl.create 64;
      load_pats = Hashtbl.create 64;
      callers = Hashtbl.create 256;
      subs = Hashtbl.create 256;
      sub_seen = Hashtbl.create 256;
      retload_pats = Hashtbl.create 64;
      tagged = Hashtbl.create 256;
      relays = Hashtbl.create 64;
      ret_ptr_owner = Hashtbl.create 64;
      pt_h = Hashtbl.create 256;
      roles = Hashtbl.create 256;
      role_seen = Hashtbl.create 256;
      sources = Hashtbl.create 256;
      targets = Hashtbl.create 256;
      involved = Bits.create ();
      n_shortcuts = 0;
      n_cut_stores = 0;
      c_sc_store =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "store") ]
          "csc_shortcuts";
      c_sc_load =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "load") ]
          "csc_shortcuts";
      c_sc_relay =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "relay") ]
          "csc_shortcuts";
      c_sc_container =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "container") ]
          "csc_shortcuts";
      c_sc_lflow =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "lflow") ]
          "csc_shortcuts";
      c_cut_stores = Registry.counter solver.Solver.reg "csc_cut_stores";
      c_cut_ret_load =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "load") ]
          "csc_cut_returns";
      c_cut_ret_lflow =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "lflow") ]
          "csc_cut_returns";
      c_cut_ret_exit =
        Registry.counter solver.Solver.reg
          ~labels:[ ("pattern", "exit") ]
          "csc_cut_returns";
    }
  in
  ( {
      Solver.pl_name = config_name config;
      pl_on_reachable = on_reachable t;
      pl_on_call_edge = on_call_edge t;
      pl_on_new_pts = on_new_pts t;
      pl_on_edge = (fun ~src e -> on_edge t ~src e);
      pl_on_merge = (fun ~rep ~other -> on_merge t ~rep ~other);
      pl_is_cut_store = (fun ~base ~fld ~rhs -> is_cut_store t ~base ~fld ~rhs);
      pl_is_cut_return = is_cut_return t;
    },
    t )

let plugin ?config (solver : Solver.t) : Solver.plugin =
  fst (plugin_with_handle ?config solver)

let involved_methods t = t.involved
let shortcut_count t = t.n_shortcuts
let cut_store_count t = t.n_cut_stores

(* ------------------------------------------------ incremental interface *)

let cat_code = function
  | Spec.Coll_val -> "cv"
  | Spec.Map_key -> "mk"
  | Spec.Map_val -> "mv"

(** Name-based summary of every CSC-relevant *static* property of a method:
    cut-set membership, per-method temp-store/temp-load patterns, local-flow
    sources, container roles and the returnLoadEdge whitelists. Two matched
    methods that classify identically are governed by identical cut/shortcut
    rules, so {!Csc_pta.Inc} may keep their derived facts; a classification
    change (e.g. an added override shifting the CHA closure of
    {!Static.load_info}) demotes the method to dirty even when its body
    fingerprint is unchanged. The encoding uses names and per-method
    positional site indices only — never ids — so it is stable across
    recompilation of an edited source. *)
let classifier ?(config = default_config) (p : Ir.program) :
    Ir.method_id -> string =
  let spec = Spec.of_program p in
  let li =
    if config.field_pattern then Static.load_info p
    else
      Static.
        { li_pats = Hashtbl.create 1; li_cut = Bits.create ();
          li_static_ok = Hashtbl.create 1; li_site_ok = Hashtbl.create 1 }
  in
  let cut_load = Bits.copy li.Static.li_cut in
  if config.container_pattern then begin
    Hashtbl.iter (fun m _ -> Bits.remove cut_load m) spec.Spec.exits;
    Bits.iter (fun m -> Bits.remove cut_load m) spec.Spec.transfers
  end;
  let fname f =
    let fl = Ir.field p f in
    Ir.class_name p fl.Ir.f_class ^ "." ^ fl.Ir.f_name
  in
  let static_ok : (Ir.method_id, string list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (m, f) () ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt static_ok m) in
      Hashtbl.replace static_ok m (fname f :: cur))
    li.Static.li_static_ok;
  (* per-method positional index of every call site *)
  let site_pos = Hashtbl.create 64 in
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun (cs : Ir.call_site) ->
      let m = cs.Ir.cs_method in
      let k = Option.value ~default:0 (Hashtbl.find_opt counts m) in
      Hashtbl.replace counts m (k + 1);
      Hashtbl.replace site_pos cs.Ir.cs_id (m, k))
    p.Ir.calls;
  let site_ok : (Ir.method_id, string list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (c, f) () ->
      match Hashtbl.find_opt site_pos c with
      | Some (m, k) ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt site_ok m) in
        Hashtbl.replace site_ok m (Printf.sprintf "%d:%s" k (fname f) :: cur)
      | None -> ())
    li.Static.li_site_ok;
  fun (m : Ir.method_id) ->
    let me = Ir.metho p m in
    let b = Buffer.create 128 in
    let add tag items =
      match items with
      | [] -> ()
      | l ->
        Buffer.add_string b tag;
        Buffer.add_char b '=';
        Buffer.add_string b (String.concat "," (List.sort compare l));
        Buffer.add_char b ';'
    in
    if config.field_pattern then begin
      if Bits.mem cut_load m then Buffer.add_string b "cut;";
      add "pat"
        (List.map
           (fun (k, f) -> Printf.sprintf "%d:%s" k (fname f))
           (Option.value ~default:[] (Hashtbl.find_opt li.Static.li_pats m)));
      add "st"
        (List.map
           (fun (k1, f, k2) -> Printf.sprintf "%d:%s:%d" k1 (fname f) k2)
           (Static.store_patterns p me));
      add "sok" (Option.value ~default:[] (Hashtbl.find_opt static_ok m));
      add "kok" (Option.value ~default:[] (Hashtbl.find_opt site_ok m))
    end;
    (if config.local_flow then
       match Static.local_flow_sources p me with
       | Some srcs -> add "lf" (List.map string_of_int srcs)
       | None -> ());
    if config.container_pattern then begin
      add "en"
        (List.map
           (fun (k, c) -> Printf.sprintf "%d:%s" k (cat_code c))
           (Spec.entrance_roles spec m));
      (match Spec.exit_category spec m with
      | Some c -> Buffer.add_string b ("ex=" ^ cat_code c ^ ";")
      | None -> ());
      if Spec.is_transfer spec m then Buffer.add_string b "tr;"
    end;
    Buffer.contents b

(** Incremental-retraction hook ({!Csc_pta.Inc.hook}) over a solved handle.
    Flow *through* shortcut edges is already covered by [Inc]'s generic edge
    rule — shortcuts are ordinary [KShortcut] PFG edges in [succs] — so this
    hook only marks pointers whose facts rest on a *classification* that may
    be stale after the edit: pattern-propagation chains (DIRTYPAT),
    store/load subscriptions, relay classification of cut return variables,
    local-flow shortcuts and container host bookkeeping. *)
let inc_hook (t : t) : Csc_pta.Inc.hook =
 fun ~dirty_ptr ~dirty_obj ~dirty_meth ~mark ->
  let s = t.solver in
  let ptr_of_var v = Interner.find_opt s.Solver.ptrs (Solver.PVar (t.ci, v)) in
  (* DIRTYPAT: M's propagated patterns (and the subscriptions they placed)
     may differ if some call edge from M reaches a pattern-bearing callee
     that is edited, pattern-dirty itself, or reached through a dirty edge
     (edited calling method / dirty receiver set). *)
  let has_pats m =
    Hashtbl.mem t.store_pats m || Hashtbl.mem t.load_pats m
    || Bits.mem t.cut_load m
  in
  let edge_dirty site =
    let cs = Ir.call t.prog site in
    dirty_meth cs.Ir.cs_method
    || (match cs.Ir.cs_recv with
       | Some r -> (
         match ptr_of_var r with Some p -> dirty_ptr p | None -> false)
       | None -> false)
  in
  let dpat = Bits.create () in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun callee sites ->
        let callee_stale =
          Bits.mem dpat callee || (has_pats callee && dirty_meth callee)
        in
        List.iter
          (fun site ->
            let caller = (Ir.call t.prog site).Ir.cs_method in
            if
              (not (Bits.mem dpat caller))
              && (callee_stale || (has_pats callee && edge_dirty site))
            then begin
              ignore (Bits.add dpat caller);
              changed := true
            end)
          !sites)
      t.callers
  done;
  let meth_stale m = Bits.mem dpat m || dirty_meth m in
  (* subscriptions: a stale base invalidates what its subs wrote *)
  Hashtbl.iter
    (fun base subs ->
      if
        dirty_ptr base
        || (match method_of_ptr t base with
           | Some m -> meth_stale m
           | None -> false)
      then
        List.iter
          (function
            | Sub_store { fld; from_ptr = _ } ->
              Bits.iter
                (fun o ->
                  if Solver.obj_class s o <> None then
                    match
                      Interner.find_opt s.Solver.ptrs (Solver.PField (o, fld))
                    with
                    | Some p -> mark p
                    | None -> ())
                (Solver.pts s base)
            | Sub_load { to_ptr; _ } -> mark to_ptr)
          !subs)
    t.subs;
  (* RelayEdge: stale classification inputs of a cut return variable taint
     every call-site LHS it relays into *)
  Hashtbl.iter
    (fun rp m ->
      let stale =
        meth_stale m || dirty_ptr rp
        || (match Hashtbl.find_opt t.retload_pats rp with
           | Some pats -> List.exists (fun (bp, _) -> dirty_ptr bp) !pats
           | None -> false)
      in
      if stale then
        match Hashtbl.find_opt t.relays m with
        | Some rl -> List.iter mark rl.rl_lhs
        | None -> ())
    t.ret_ptr_owner;
  (* local flow: the cut/shortcut decision reads the callee body, so an
     edited callee taints the LHS at every one of its call sites *)
  if t.cfg.local_flow then
    Bits.iter
      (fun m ->
        if dirty_meth m then
          match Hashtbl.find_opt t.callers m with
          | Some sites ->
            List.iter
              (fun site ->
                match (Ir.call t.prog site).Ir.cs_lhs with
                | Some lhs -> (
                  match ptr_of_var lhs with Some p -> mark p | None -> ())
                | None -> ())
              !sites
          | None -> ())
      t.cut_lflow;
  (* containers: hosts whose pt_H bookkeeping flowed through dirty pointers
     (or which are dirty objects themselves) taint their target pointers *)
  if t.cfg.container_pattern then begin
    let dhosts = Bits.create () in
    Hashtbl.iter
      (fun p hs -> if dirty_ptr p then Bits.union_quiet ~into:dhosts hs)
      t.pt_h;
    Hashtbl.iter
      (fun (h, _cat) ptrs ->
        if Bits.mem dhosts h || dirty_obj h then List.iter mark !ptrs)
      t.targets
  end

(** Resident analysis session: digest-keyed program cache + LRU result cache.
    See the interface for the contract; the representation notes here cover
    what the interface leaves open.

    LRU is a monotone tick stamped on every touch; eviction scans for the
    minimum — caches hold tens of entries, so O(n) eviction is irrelevant
    next to the solves it guards. The just-inserted entry is never evicted
    (a single outcome larger than the bound still has to be answered), so
    the cache holds at least one result. *)

module Ir = Csc_ir.Ir
module Json = Csc_obs.Json
module Registry = Csc_obs.Registry

let word_bytes = Sys.word_size / 8
let max_programs = 64

type prog_entry = {
  pe_prog : Ir.program;
  pe_src : string;  (** retained so [update] can apply textual edits *)
  mutable pe_tick : int;
}

type res_entry = {
  re_outcome : Run.outcome;
  re_bytes : int;
  mutable re_tick : int;
}

type t = {
  progs : (string, prog_entry) Hashtbl.t;
  results : (string * Run.spec, res_entry) Hashtbl.t;
  (* retained engine state of the most recent solve of a supported analysis:
     (source digest, normalized spec, state). One anchor only — a solver is
     far larger than a cached outcome, so we keep exactly the one an editing
     session extends; a non-matching [update] falls back to a fresh solve. *)
  mutable anchor : (string * Run.spec * Run.state) option;
  max_mem_bytes : int;
  mutable tick : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* optional mirrors into an obs registry (the server's stats surface) *)
  c_hits : Registry.counter option;
  c_misses : Registry.counter option;
  c_evictions : Registry.counter option;
  g_entries : Registry.gauge option;
  g_bytes : Registry.gauge option;
}

let create ?(max_mem_bytes = 1 lsl 30) ?registry () =
  let counter name = Option.map (fun r -> Registry.counter r name) registry in
  let gauge name = Option.map (fun r -> Registry.gauge r name) registry in
  {
    progs = Hashtbl.create 16;
    results = Hashtbl.create 32;
    anchor = None;
    max_mem_bytes;
    tick = 0;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = counter "session_cache_hits";
    c_misses = counter "session_cache_misses";
    c_evictions = counter "session_cache_evictions";
    g_entries = gauge "session_cache_entries";
    g_bytes = gauge "session_cache_bytes";
  }

let bump c = Option.iter (fun c -> Registry.incr c) c
let set g v = Option.iter (fun g -> Registry.set g (float_of_int v)) g

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let digest_of_source (src : string) : string =
  Digest.to_hex (Digest.string src)

(* ----------------------------------------------------------- program cache *)

let evict_programs t =
  while Hashtbl.length t.progs > max_programs do
    let victim = ref None in
    Hashtbl.iter
      (fun d (e : prog_entry) ->
        match !victim with
        | Some (_, tick) when tick <= e.pe_tick -> ()
        | _ -> victim := Some (d, e.pe_tick))
      t.progs;
    match !victim with
    | Some (d, _) -> Hashtbl.remove t.progs d
    | None -> ()
  done

let load_source t ~name (src : string) : (Ir.program * string, string) result =
  let digest = digest_of_source src in
  match Hashtbl.find_opt t.progs digest with
  | Some e ->
    e.pe_tick <- next_tick t;
    Ok (e.pe_prog, digest)
  | None -> (
    match Csc_lang.Frontend.compile_string ~name src with
    | p ->
      Hashtbl.replace t.progs digest
        { pe_prog = p; pe_src = src; pe_tick = next_tick t };
      evict_programs t;
      Ok (p, digest)
    | exception e -> Error (Printexc.to_string e))

let load t (spec : string) : (Ir.program * string, string) result =
  if List.mem spec Csc_workloads.Suite.names then begin
    (* suite programs compile with the mini-JDK like compile_string does;
       keying on the rendered source keeps one digest space for both *)
    let src = Csc_workloads.Suite.source spec in
    let digest = digest_of_source src in
    match Hashtbl.find_opt t.progs digest with
    | Some e ->
      e.pe_tick <- next_tick t;
      Ok (e.pe_prog, digest)
    | None ->
      let p = Csc_workloads.Suite.compile spec in
      Hashtbl.replace t.progs digest
        { pe_prog = p; pe_src = src; pe_tick = next_tick t };
      evict_programs t;
      Ok (p, digest)
  end
  else if Sys.file_exists spec then begin
    let ic = open_in_bin spec in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    load_source t ~name:spec src
  end
  else
    Error
      (Printf.sprintf "unknown program %S (not a suite name or a file)" spec)

(* ------------------------------------------------------------ result cache *)

let entry_bytes (o : Run.outcome) : int =
  (* [reachable_words] follows the closures in the outcome (r_pt captures
     the solver), so this measures real residency; sharing across entries
     makes it an over-estimate, which only evicts sooner *)
  Obj.reachable_words (Obj.repr o) * word_bytes

let evict_results t =
  (* evict LRU entries until under the bound, but never the newest (the
     caller is about to use it) *)
  let continue = ref true in
  while !continue && t.bytes > t.max_mem_bytes && Hashtbl.length t.results > 1
  do
    let victim = ref None in
    Hashtbl.iter
      (fun k (e : res_entry) ->
        if e.re_tick <> t.tick then
          match !victim with
          | Some (_, _, tick) when tick <= e.re_tick -> ()
          | _ -> victim := Some (k, e.re_bytes, e.re_tick))
      t.results;
    match !victim with
    | Some (k, b, _) ->
      Hashtbl.remove t.results k;
      t.bytes <- t.bytes - b;
      t.evictions <- t.evictions + 1;
      bump t.c_evictions
    | None -> continue := false
  done

let publish t =
  set t.g_entries (Hashtbl.length t.results);
  set t.g_bytes t.bytes

let cache_result t key o =
  let b = entry_bytes o in
  Hashtbl.replace t.results key
    { re_outcome = o; re_bytes = b; re_tick = next_tick t };
  t.bytes <- t.bytes + b;
  evict_results t;
  publish t

let set_anchor t ~digest key st =
  match st with
  | Some st -> t.anchor <- Some (digest, snd key, st)
  | None -> ()

let outcome t ~digest (spec : Run.spec) (p : Ir.program) :
    Run.outcome * bool =
  let key = (digest, Run.spec_key spec) in
  match Hashtbl.find_opt t.results key with
  | Some e ->
    e.re_tick <- next_tick t;
    t.hits <- t.hits + 1;
    bump t.c_hits;
    (e.re_outcome, true)
  | None ->
    t.misses <- t.misses + 1;
    bump t.c_misses;
    let o, st = Run.run_spec_keep spec p in
    set_anchor t ~digest key st;
    cache_result t key o;
    (o, false)

(* ------------------------------------------------------------------ update *)

type update_result = {
  up_outcome : Run.outcome;
  up_digest : string;  (** digest of the edited program *)
  up_info : Csc_pta.Inc.info;
  up_cached : bool;  (** the edited program's outcome was already cached *)
}

let update t ~digest ?source ?(edits = []) (spec : Run.spec) :
    (update_result, string) result =
  match Hashtbl.find_opt t.progs digest with
  | None -> Error (Printf.sprintf "unknown program digest %S" digest)
  | Some base -> (
    base.pe_tick <- next_tick t;
    let src_r =
      match source with
      | Some s -> Ok s
      | None -> Csc_pta.Inc.apply_edits base.pe_src edits
    in
    match src_r with
    | Error e -> Error e
    | Ok src -> (
      match load_source t ~name:"<update>" src with
      | Error e -> Error e
      | Ok (p, up_digest) -> (
        let key = (up_digest, Run.spec_key spec) in
        match Hashtbl.find_opt t.results key with
        | Some e ->
          e.re_tick <- next_tick t;
          t.hits <- t.hits + 1;
          bump t.c_hits;
          Ok
            {
              up_outcome = e.re_outcome;
              up_digest;
              up_info = Csc_pta.Inc.fresh_info "cached outcome";
              up_cached = true;
            }
        | None ->
          t.misses <- t.misses + 1;
          bump t.c_misses;
          let o, st, info =
            match t.anchor with
            | Some (ad, akey, prev)
              when ad = digest && akey = Run.spec_key spec ->
              Run.update spec ~prev p
            | Some _ ->
              let o, st = Run.run_spec_keep spec p in
              (o, st, Csc_pta.Inc.fresh_info "anchor is for another program")
            | None ->
              let o, st = Run.run_spec_keep spec p in
              (o, st, Csc_pta.Inc.fresh_info "no retained state")
          in
          set_anchor t ~digest:up_digest key st;
          cache_result t key o;
          Ok { up_outcome = o; up_digest; up_info = info; up_cached = false })))

(* ---------------------------------------------------------- introspection *)

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let entries t = Hashtbl.length t.results
let programs t = Hashtbl.length t.progs
let bytes_used t = t.bytes
let max_bytes t = t.max_mem_bytes

let stats_json t : Json.t =
  Obj
    [ ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("evictions", Json.Int t.evictions);
      ("entries", Json.Int (entries t));
      ("programs", Json.Int (programs t));
      ("bytes", Json.Int t.bytes);
      ("max_bytes", Json.Int t.max_mem_bytes) ]

(** "Why does x point to o": provenance-backed derivation chains.

    Hoisted out of the CLI so the [explain] subcommand and the analysis
    server share one implementation. Explaining needs the live solver handle
    (the provenance recorder lives inside it), so this module drives
    {!Csc_pta.Solver} directly instead of going through {!Run} — and it is
    deliberately not cached by [Session]: provenance recording disables
    cycle collapsing, so an explained solve is never the solve you want to
    keep resident. *)

module Ir = Csc_ir.Ir

type fact = {
  x_ptr : string;   (** rendered pointer, e.g. ["Main.main.x"] *)
  x_obj : string;   (** rendered object, e.g. ["Item/o16"] *)
  x_chain : string list;  (** derivation chain, root first; [[]] if none *)
}

(** [run p a] solves [p] under imperative analysis [a] with provenance on
    and returns up to [limit] (default 5) explained facts. [var] restricts
    to variables whose qualified [Class.method.var] name ends with it;
    without it, application (non-mini-JDK) variables are scanned. [Error]
    for Datalog/Zipper analyses (no provenance recorder there) and for
    solver timeouts. Prints the provenance-disables-collapsing note to
    stderr, like the CLI always has. *)
val run :
  ?budget_s:float ->
  ?var:string ->
  ?limit:int ->
  Ir.program ->
  Run.analysis ->
  (fact list, string) result

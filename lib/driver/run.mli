(** Analysis driver: run any of the evaluated analyses on a program and
    collect time + precision metrics in one uniform record. The CLI, the
    examples and the benchmark harness all sit on this layer. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Csc = Csc_core.Csc
module Metrics = Csc_clients.Metrics

(** The analyses of the paper's evaluation plus extensions. [Imp_*] run on
    the imperative engine (Tai-e analog, Table 2), [Doop_*] on the Datalog
    engine (Doop analog, Table 1). *)
type analysis =
  | Imp_ci
  | Imp_csc
  | Imp_csc_cfg of Csc.config  (** ablations (§5.1 pattern-impact study) *)
  | Imp_kobj of int
  | Imp_ktype of int
  | Imp_kcall of int
  | Imp_2obj
  | Imp_2type
  | Imp_2call
  | Imp_zipper
  | Imp_no_collapse of analysis
      (** same analysis with the solver's online cycle collapsing disabled
          (differential testing, the E11 bench comparison) *)
  | Doop_ci
  | Doop_csc
  | Doop_2obj
  | Doop_2type
  | Doop_zipper

val name : analysis -> string
val all_imperative : analysis list
val all_datalog : analysis list

(** The canonical analysis spellings (for help text); {!analysis_of_string}
    accepts these plus the generalized forms below. *)
val analysis_names : string list

(** Parse an analysis name. Grammar (one shared parser for the CLI, the
    bench harness and the analysis server):

    {v
    analysis ::= "ci" | "csc" | "csc-field" | "csc-container"
               | "csc-localflow" | "zipper-e"
               | <K>"obj" | <K>"type" | <K>"call"        (positive K)
               | "kobj:"<K> | "ktype:"<K> | "kcall:"<K>  (same, colon form)
               | "doop-"<d> | "doop:"<d>                 (d: ci, csc, 2obj,
                                                          2type, zipper-e)
               | "no-collapse:"<analysis>                (imperative only)
    v}

    [Error msg] describes the failure and restates the grammar. The parse is
    compatible with {!name}: [analysis_of_string (name a) = Ok a] for every
    [a] the CLI can spell. *)
val analysis_of_string : string -> (analysis, string) result

(** True for the Doop-engine analyses (their times are not comparable with
    the imperative engine's; dispatch on this, not on name prefixes). *)
val is_datalog : analysis -> bool

type outcome = {
  o_analysis : string;
  o_timeout : bool;
  o_time : float;       (** total wall-clock (pre + main) *)
  o_pre_time : float;   (** pre-analysis + selection (Zipper only) *)
  o_main_time : float;
  o_result : Solver.result option;  (** None on timeout *)
  o_metrics : Metrics.t option;
  o_selected : Bits.t option;  (** Zipper: selected methods *)
  o_involved : Bits.t option;  (** CSC: methods in cut/shortcut edges *)
  o_shortcuts : int;
  o_snapshot : Csc_obs.Snapshot.t option;
      (** structured engine metrics; present even when the imperative engine
          timed out (the aborted state), [None] only for Datalog timeouts *)
  o_profile : Csc_obs.Attr.profile option;
      (** cost attribution (hot methods/pointers/rules), present iff the run
          was started with [~profile:true] and did not time out *)
}

(** An explicit run request: the analysis to run plus every knob {!run_spec}
    honours. This record is the driver's session-facing API — the CLI
    subcommands, the bench harness and the analysis server all build a
    [spec] and hand it to {!run_spec} (or to [Session.outcome], which caches
    on it). Construct with {!spec} and override fields with [{ ... with }]
    so new knobs don't break callers. *)
type spec = {
  sp_analysis : analysis;
  sp_budget_s : float option;  (** wall-clock budget, [None] = unlimited *)
  sp_validate : bool;          (** IR validation before analyzing *)
  sp_explain : bool;           (** record points-to provenance *)
  sp_collapse : bool;          (** online cycle collapsing (imperative) *)
  sp_profile : bool;           (** cost attribution into [o_profile] *)
  sp_profile_top : int;        (** rows per rendered profile table *)
  sp_progress_s : float option;  (** stderr heartbeat cadence *)
  sp_jobs : int;               (** imperative solver domains *)
}

(** [spec a] is the default request for analysis [a]: no budget, no
    validation, no provenance, collapsing on, no profile (top 25), no
    heartbeat, one domain. *)
val spec : analysis -> spec

(** Cache-key normalization: fields that cannot change the outcome (today
    only [sp_progress_s], a pure stderr cadence) reset to their defaults, so
    a result cache keyed on [spec_key s] is shared across them. *)
val spec_key : spec -> spec

(** Run one analysis as described by the request record. Semantics of the
    individual knobs are documented on {!run}, which is a thin
    optional-argument wrapper over this function. *)
val run_spec : spec -> Ir.program -> outcome

(** Retained engine state of a completed run (program, solved solver, CSC
    plugin handle) — the anchor for {!update}. *)
type state

(** Analyses the incremental engine supports: CI and the CSC family
    (optionally under [no-collapse]). *)
val inc_supported : analysis -> bool

(** Like {!run_spec}, but also return the retained {!state} when
    [inc_supported] holds and the run completed without timeout. *)
val run_spec_keep : spec -> Ir.program -> outcome * state option

(** [update s ~prev p] analyzes [p] — an edited successor of [prev]'s
    program — reusing [prev]'s solved facts where the edit provably cannot
    have invalidated them ({!Csc_pta.Inc}: method-level diff, dirtiness
    closure over the old PFG, worklist preseeding). Falls back to a fresh
    solve when reuse is unsupported or not worthwhile; either way the
    outcome is bit-identical to [run_spec s p], and the returned info says
    which path ran and how much was reused. *)
val update :
  spec -> prev:state -> Ir.program -> outcome * state option * Csc_pta.Inc.info

(** Run one analysis under an optional wall-clock budget (seconds; a 4 GB
    heap cap applies too). Timeouts are reported in the outcome, not
    raised — like the paper's ">2h" cells. [validate] (default false) runs
    {!Csc_ir.Validate.check_exn} on the program first, so malformed IR fails
    fast (raising [Failure]) instead of corrupting analysis results; the
    test suite keeps it always on. [explain] (default false) records
    points-to provenance on the imperative engine (adds a [prov_records]
    counter to the snapshot); it has no effect on Doop analyses.
    [collapse] (default true) controls the imperative solver's online cycle
    collapsing — semantics-preserving, so results only differ in speed;
    [Imp_no_collapse] is the same switch as an analysis value.

    [profile] (default false) collects cost attribution into [o_profile]:
    per-method/per-pointer propagation on the imperative engine (for Zipper,
    the main selective analysis), per-rule/per-stratum tuples and time on the
    Datalog engine (pre + main phases combined); [profile_top] (default 25)
    caps each rendered table. [progress_s] emits a heartbeat line to stderr
    every that-many seconds of solving on either engine.

    [jobs] (default 1) solves imperative analyses on that many domains via
    the sharded bulk-synchronous engine ({!Csc_pta.Par}) — the fixpoint,
    precision metrics and plugin behaviour are identical to the sequential
    solver for every value. When a requested [jobs > 1] cannot be honoured —
    a sequential-only build (OCaml < 5), provenance recording ([explain]),
    or a Datalog analysis — the run falls back to one domain and says why on
    stderr rather than degrading silently. *)
val run :
  ?budget_s:float ->
  ?validate:bool ->
  ?explain:bool ->
  ?collapse:bool ->
  ?profile:bool ->
  ?profile_top:int ->
  ?progress_s:float ->
  ?jobs:int ->
  Ir.program ->
  analysis ->
  outcome

type recall_report = {
  rc_analysis : string;
  rc_methods : float;
  rc_edges : float;
}

(** The §5.1 recall experiment: execute the program, then score how much of
    the dynamic behaviour each analysis over-approximates (1.0 = all). *)
val recall :
  ?budget_s:float ->
  ?max_steps:int ->
  Ir.program ->
  analysis list ->
  recall_report list

(** Fraction of CSC-involved methods also selected by Zipper^e (Table 3's
    "overlap" column). *)
val overlap : involved:Bits.t -> selected:Bits.t -> float

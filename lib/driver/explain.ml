(** Provenance-backed "why does x point to o" (see the interface). *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Context = Csc_pta.Context
module Csc = Csc_core.Csc

type fact = { x_ptr : string; x_obj : string; x_chain : string list }

(* the imperative context selector an analysis runs under, and the CSC
   plugin config if it uses one; [Error] for engines without provenance *)
let rec plan_of (a : Run.analysis) :
    (Context.t * Csc.config option, string) result =
  match a with
  | Run.Imp_ci -> Ok (Context.ci, None)
  | Run.Imp_csc -> Ok (Context.ci, Some Csc.default_config)
  | Run.Imp_csc_cfg cfg -> Ok (Context.ci, Some cfg)
  | Run.Imp_kobj k -> Ok (Context.kobj ~k ~hk:(max 1 (k - 1)), None)
  | Run.Imp_ktype k -> Ok (Context.ktype ~k ~hk:(max 1 (k - 1)), None)
  | Run.Imp_kcall k -> Ok (Context.kcall ~k ~hk:(max 1 (k - 1)), None)
  | Run.Imp_2obj -> Ok (Context.kobj ~k:2 ~hk:1, None)
  | Run.Imp_2type -> Ok (Context.ktype ~k:2 ~hk:1, None)
  | Run.Imp_2call -> Ok (Context.kcall ~k:2 ~hk:1, None)
  | Run.Imp_no_collapse inner ->
    (* provenance forces collapsing off anyway *)
    plan_of inner
  | Run.Imp_zipper ->
    Error "explain: zipper-e is two staged solves; explain its base instead"
  | Run.Doop_ci | Run.Doop_csc | Run.Doop_2obj | Run.Doop_2type
  | Run.Doop_zipper ->
    Error
      (Printf.sprintf
         "explain: %S runs on the Datalog engine, which has no provenance \
          recorder (imperative analyses only)"
         (Run.name a))

let is_suffix ~affix s =
  let la = String.length affix and ls = String.length s in
  la <= ls && String.sub s (ls - la) la = affix

let run ?budget_s ?var ?(limit = 5) (p : Ir.program) (a : Run.analysis) :
    (fact list, string) result =
  match plan_of a with
  | Error _ as e -> e
  | Ok (sel, plugin_cfg) -> (
    let budget =
      match budget_s with
      | Some s -> Timer.budget_of_seconds s
      | None -> Timer.no_budget
    in
    let t = Solver.create ~budget ~sel p in
    if Solver.enable_provenance t then
      Fmt.epr
        "note: provenance recording (explain) disables online cycle \
         collapsing for this run; expect a slower solve@.";
    (match plugin_cfg with
    | Some config -> Solver.set_plugin t (Csc.plugin ~config t)
    | None -> ());
    match Solver.run t with
    | exception Solver.Timeout ->
      Error (Printf.sprintf "explain: %s timed out" (Run.name a))
    | () ->
      let matches v =
        let vr = Ir.var p v in
        let qualified =
          Ir.method_name p vr.Ir.v_method ^ "." ^ vr.Ir.v_name
        in
        match var with
        | Some affix -> is_suffix ~affix qualified
        | None ->
          (* scan mode: application variables only, the mini-JDK's internals
             are noise *)
          not
            (Csc_lang.Jdk.is_jdk_class
               (Ir.class_name p (Ir.metho p vr.Ir.v_method).Ir.m_class))
      in
      let facts = ref [] in
      let shown = ref 0 in
      Solver.iter_ptrs t (fun ptr desc ->
          match desc with
          | Solver.PVar (_, v) when !shown < limit && matches v ->
            Bits.iter
              (fun o ->
                if !shown < limit then begin
                  incr shown;
                  facts :=
                    {
                      x_ptr = Solver.ptr_to_string t ptr;
                      x_obj = Solver.obj_to_string t o;
                      x_chain = Solver.explain_chain t ~ptr ~obj:o;
                    }
                    :: !facts
                end)
              (Solver.pts t ptr)
          | _ -> ());
      Ok (List.rev !facts))

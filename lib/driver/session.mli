(** A resident analysis session: compiled programs and solved outcomes kept
    warm across requests.

    This is the session-oriented face of the driver. Batch CLI runs create
    one, use it for the process lifetime and throw it away; the analysis
    server ([Csc_server]) keeps one alive across requests so a repeat query
    is answered straight from cache. Two caches sit inside:

    - programs, keyed by the MD5 digest of their MiniJava source (so an
      edited file re-compiles and an unchanged one never does), capped by
      entry count;
    - solved {!Run.outcome}s, keyed by [(source digest, Run.spec_key spec)],
      evicted least-recently-used once the estimated resident size exceeds
      the [max_mem_bytes] bound.

    Sizes are estimated with [Obj.reachable_words] on the cached outcome — an
    over-approximation (entries share the program and may share solver
    structure) that errs toward evicting early, never toward unbounded
    growth. The session is single-writer: callers serialize access (the
    server handles one request at a time; the CLI is sequential), so there
    is no internal locking. *)

module Ir = Csc_ir.Ir
module Json = Csc_obs.Json

type t

(** [create ()] with [max_mem_bytes] bounding the result cache (default
    1 GiB). [registry] mirrors the session counters (hits, misses,
    evictions, entries, bytes) into an observability registry so they show
    up in snapshots. *)
val create : ?max_mem_bytes:int -> ?registry:Csc_obs.Registry.t -> unit -> t

(** Hex MD5 of a source text — the program-cache key. *)
val digest_of_source : string -> string

(** Compile [source] (cached by digest). [name] is used in error positions
    only. [Error] carries the compiler's message. *)
val load_source :
  t -> name:string -> string -> (Ir.program * string, string) result

(** Resolve [spec] as a workload-suite name, else as a path to a [.mjava]
    file, and compile through the program cache. *)
val load : t -> string -> (Ir.program * string, string) result

(** [outcome t ~digest spec p] returns the cached outcome for
    [(digest, Run.spec_key spec)], solving (and caching) on a miss. The
    boolean is [true] on a cache hit. Timeout outcomes are cached too — the
    budget is part of the key.

    A miss on an incrementally-supported analysis ({!Run.inc_supported})
    also retains the solved engine state as the session's single *anchor*,
    the base that {!update} extends. *)
val outcome : t -> digest:string -> Run.spec -> Ir.program -> Run.outcome * bool

(** {2 Incremental updates} *)

type update_result = {
  up_outcome : Run.outcome;
  up_digest : string;  (** digest of the edited program *)
  up_info : Csc_pta.Inc.info;  (** which path ran, and reuse statistics *)
  up_cached : bool;  (** the edited program's outcome was already cached *)
}

(** [update t ~digest spec ~edits] analyzes an edited revision of the cached
    program [digest]: the new source is [?source] when given, else the base
    source with [edits] applied ({!Csc_pta.Inc.apply_edits}). When the
    session's anchor is that exact [(digest, spec)] solve, the analysis runs
    incrementally ({!Run.update}); otherwise it falls back to a fresh solve.
    Either way the outcome is bit-identical to a from-scratch [outcome] call
    on the edited source, it is cached under the new digest, and the anchor
    moves to the new revision (so edit chains stay incremental). [Error]s:
    unknown digest, unappliable edit, compile failure. *)
val update :
  t ->
  digest:string ->
  ?source:string ->
  ?edits:Csc_pta.Inc.edit list ->
  Run.spec ->
  (update_result, string) result

(** {2 Introspection} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** Cached result entries / programs. *)
val entries : t -> int

val programs : t -> int

(** Estimated resident bytes of the result cache, and its bound. *)
val bytes_used : t -> int

val max_bytes : t -> int

(** The session block of the server's [stats] reply:
    [{"hits": _, "misses": _, "evictions": _, "entries": _, "programs": _,
      "bytes": _, "max_bytes": _}]. *)
val stats_json : t -> Json.t

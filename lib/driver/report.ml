(** Machine-readable reports: serialize driver outcomes as JSON. Shared by
    [bench --json] and the CLI so the two emit identical shapes. *)

module Json = Csc_obs.Json
module Snapshot = Csc_obs.Snapshot
module Metrics = Csc_clients.Metrics

let metrics_json (m : Metrics.t) : Json.t =
  Obj
    [ ("fail_cast", Json.Int m.fail_cast);
      ("reach_mtd", Json.Int m.reach_mtd);
      ("poly_call", Json.Int m.poly_call);
      ("call_edge", Json.Int m.call_edge) ]

let opt f = function None -> Json.Null | Some x -> f x

let outcome_json (o : Run.outcome) : Json.t =
  let base =
    [ ("schema", Json.Int Json.schema_version);
      ("analysis", Json.Str o.o_analysis);
      ("timeout", Json.Bool o.o_timeout);
      ("time_s", Json.Float o.o_time);
      ("pre_time_s", Json.Float o.o_pre_time);
      ("main_time_s", Json.Float o.o_main_time);
      ("metrics", opt metrics_json o.o_metrics);
      ("shortcuts", Json.Int o.o_shortcuts);
      ("snapshot", opt Snapshot.to_json o.o_snapshot) ]
  in
  (* the profile member only appears on profiled runs, so unprofiled report
     shapes — and the bench --compare gate, which only reads "metrics" —
     are unchanged *)
  match o.o_profile with
  | None -> Obj base
  | Some p -> Obj (base @ [ ("profile", Csc_obs.Attr.profile_json p) ])

(** One experiment: its name plus the (program, analysis) cells it ran.
    The schema envelope lives on the experiment document, not on every
    cell, so cells drop the member {!outcome_json} adds. *)
let cell_json ~program (o : Run.outcome) : Json.t =
  match outcome_json o with
  | Obj fields ->
    Obj
      (("program", Json.Str program)
      :: List.filter (fun (k, _) -> k <> "schema") fields)
  | j -> j

let experiment_json ~name (cells : (string * Run.outcome) list) : Json.t =
  Json.with_schema
    [ ("experiment", Json.Str name);
      ("cells", Json.List (List.map (fun (p, o) -> cell_json ~program:p o) cells))
    ]

let write_file path (j : Json.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true j);
      output_char oc '\n')

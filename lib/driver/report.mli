(** Machine-readable reports: serialize driver outcomes as JSON. Shared by
    [bench --json] and the CLI so both emit the same shape: each cell carries
    the wall-clock times, the timeout flag, the four precision metrics and
    the engine's structured metric {!Csc_obs.Snapshot} — no preformatted stat
    strings. *)

module Json = Csc_obs.Json
module Metrics = Csc_clients.Metrics

val metrics_json : Metrics.t -> Json.t

(** Carries the [("schema", _)] version member ({!Csc_obs.Json.schema_version})
    as its first field so clients can detect format drift. *)
val outcome_json : Run.outcome -> Json.t

(** {!outcome_json} with a ["program"] field prepended and the schema member
    dropped (the enclosing experiment document carries it once). *)
val cell_json : program:string -> Run.outcome -> Json.t

(** [{"schema": 1, "experiment": name, "cells": [...]}] over
    (program, outcome) pairs. *)
val experiment_json : name:string -> (string * Run.outcome) list -> Json.t

(** Write pretty-printed JSON plus a trailing newline. *)
val write_file : string -> Json.t -> unit

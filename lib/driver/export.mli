(** Result exporters for the CLI and debugging. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

(** Graphviz DOT rendering of the projected call graph (reachable methods
    as nodes, deduplicated caller->callee edges). Mini-JDK methods are
    hidden unless [include_jdk]. *)
val callgraph_dot : ?include_jdk:bool -> Ir.program -> Solver.result -> string

(** Human-readable points-to dump ("Method.var -> {Class:line, ...}") of
    every non-empty ref-typed variable, optionally restricted to one method
    (full name, e.g. "Main.main"). *)
val pts_dump :
  ?method_filter:string ->
  Ir.program ->
  Solver.result ->
  Format.formatter ->
  unit

(** Machine-readable points-to sets: a JSON array of
    [{"var": "Class.method.name", "objects": ["Class:line", ...]}] over
    non-empty ref-typed variables of reachable methods. [var] restricts to
    variables whose qualified name ends with it (e.g. ["main.x"]); without
    it, mini-JDK internals are skipped unless [include_jdk]. *)
val pts_json :
  ?var:string ->
  ?include_jdk:bool ->
  Ir.program ->
  Solver.result ->
  Csc_obs.Json.t

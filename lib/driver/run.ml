(** Analysis driver: run any of the evaluated analyses on a program and
    collect time + precision metrics in one uniform record. This is the layer
    the CLI, the examples and the benchmark harness sit on. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Par = Csc_pta.Par
module Context = Csc_pta.Context
module Inc = Csc_pta.Inc
module Csc = Csc_core.Csc
module Metrics = Csc_clients.Metrics
module Dl = Csc_datalog.Analysis
module Snapshot = Csc_obs.Snapshot
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr

(** The analyses of the paper's evaluation, on both engines. [Imp_*] run on
    the imperative engine (Tai-e analog, Table 2), [Doop_*] on the Datalog
    engine (Doop analog, Table 1). *)
type analysis =
  | Imp_ci
  | Imp_csc
  | Imp_csc_cfg of Csc.config  (** ablations (§5.1 pattern-impact study) *)
  | Imp_kobj of int            (** k-object-sensitive, heap depth k-1 min 1 *)
  | Imp_ktype of int
  | Imp_kcall of int
  | Imp_2obj
  | Imp_2type
  | Imp_2call
  | Imp_zipper
  | Imp_no_collapse of analysis
      (** same analysis with the solver's online cycle collapsing disabled;
          the differential tests and the E11 bench row are built on this *)
  | Doop_ci
  | Doop_csc
  | Doop_2obj
  | Doop_2type
  | Doop_zipper

let rec name = function
  | Imp_ci -> "ci"
  | Imp_csc -> "csc"
  | Imp_csc_cfg cfg -> Csc.config_name cfg
  | Imp_kobj k -> Printf.sprintf "%dobj" k
  | Imp_ktype k -> Printf.sprintf "%dtype" k
  | Imp_kcall k -> Printf.sprintf "%dcall" k
  | Imp_2obj -> "2obj"
  | Imp_2type -> "2type"
  | Imp_2call -> "2call"
  | Imp_zipper -> "zipper-e"
  | Imp_no_collapse a -> name a ^ "+nocollapse"
  | Doop_ci -> "doop-ci"
  | Doop_csc -> "doop-csc"
  | Doop_2obj -> "doop-2obj"
  | Doop_2type -> "doop-2type"
  | Doop_zipper -> "doop-zipper-e"

let all_imperative = [ Imp_ci; Imp_csc; Imp_2obj; Imp_2type; Imp_zipper ]
let all_datalog = [ Doop_ci; Doop_csc; Doop_2obj; Doop_2type; Doop_zipper ]

let rec is_datalog = function
  | Doop_ci | Doop_csc | Doop_2obj | Doop_2type | Doop_zipper -> true
  | Imp_no_collapse a -> is_datalog a
  | Imp_ci | Imp_csc | Imp_csc_cfg _ | Imp_kobj _ | Imp_ktype _ | Imp_kcall _
  | Imp_2obj | Imp_2type | Imp_2call | Imp_zipper ->
    false

(* --------------------------------------------------- analysis-name grammar *)

let analysis_names =
  [ "ci"; "csc"; "csc-field"; "csc-container"; "csc-localflow"; "1obj";
    "2obj"; "3obj"; "1type"; "2type"; "1call"; "2call"; "zipper-e"; "doop-ci";
    "doop-csc"; "doop-2obj"; "doop-2type"; "doop-zipper-e" ]

let grammar_help =
  "expected one of: ci, csc, csc-field, csc-container, csc-localflow, \
   zipper-e, <K>obj, <K>type, <K>call (or kobj:<K>, ktype:<K>, kcall:<K>), \
   doop-ci, doop-csc, doop-2obj, doop-2type, doop-zipper-e (or doop:<name>), \
   no-collapse:<imperative analysis>"

(* "<K>obj" / "<K>type" / "<K>call" with K a positive integer *)
let k_suffixed s ~suffix =
  let ls = String.length s and lx = String.length suffix in
  if ls <= lx || String.sub s (ls - lx) lx <> suffix then None
  else
    match int_of_string_opt (String.sub s 0 (ls - lx)) with
    | Some k when k >= 1 -> Some k
    | _ -> None

let kobj_of = function 2 -> Imp_2obj | k -> Imp_kobj k
let ktype_of = function 2 -> Imp_2type | k -> Imp_ktype k
let kcall_of = function 2 -> Imp_2call | k -> Imp_kcall k

let after_colon s prefix =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let rec analysis_of_string (s : string) : (analysis, string) result =
  let k_arg rest mk =
    match int_of_string_opt rest with
    | Some k when k >= 1 -> Ok (mk k)
    | _ -> Error (Printf.sprintf "bad context depth %S (want a positive integer)" rest)
  in
  match s with
  | "ci" -> Ok Imp_ci
  | "csc" -> Ok Imp_csc
  | "csc-field" ->
    Ok
      (Imp_csc_cfg
         { field_pattern = true; container_pattern = false; local_flow = false })
  | "csc-container" ->
    Ok
      (Imp_csc_cfg
         { field_pattern = false; container_pattern = true; local_flow = false })
  | "csc-localflow" ->
    Ok
      (Imp_csc_cfg
         { field_pattern = false; container_pattern = false; local_flow = true })
  | "zipper-e" -> Ok Imp_zipper
  | "doop-ci" -> Ok Doop_ci
  | "doop-csc" -> Ok Doop_csc
  | "doop-2obj" -> Ok Doop_2obj
  | "doop-2type" -> Ok Doop_2type
  | "doop-zipper-e" -> Ok Doop_zipper
  | s -> (
    match after_colon s "no-collapse:" with
    | Some rest -> (
      match analysis_of_string rest with
      | Error _ as e -> e
      | Ok a when is_datalog a ->
        Error
          (Printf.sprintf
             "no-collapse:%s — cycle collapsing is an imperative-engine \
              switch; it does not apply to Datalog analyses"
             rest)
      | Ok a -> Ok (Imp_no_collapse a))
    | None -> (
      match after_colon s "doop:" with
      | Some rest -> analysis_of_string ("doop-" ^ rest)
      | None -> (
        match after_colon s "kobj:" with
        | Some rest -> k_arg rest kobj_of
        | None -> (
          match after_colon s "ktype:" with
          | Some rest -> k_arg rest ktype_of
          | None -> (
            match after_colon s "kcall:" with
            | Some rest -> k_arg rest kcall_of
            | None -> (
              match k_suffixed s ~suffix:"obj" with
              | Some k -> Ok (kobj_of k)
              | None -> (
                match k_suffixed s ~suffix:"type" with
                | Some k -> Ok (ktype_of k)
                | None -> (
                  match k_suffixed s ~suffix:"call" with
                  | Some k -> Ok (kcall_of k)
                  | None ->
                    Error
                      (Printf.sprintf "unknown analysis %S; %s" s grammar_help)))))))))

type outcome = {
  o_analysis : string;
  o_timeout : bool;
  o_time : float;            (** total wall-clock (pre + main) *)
  o_pre_time : float;        (** pre-analysis + selection (Zipper only) *)
  o_main_time : float;
  o_result : Solver.result option;
  o_metrics : Metrics.t option;
  o_selected : Bits.t option;   (** Zipper: selected methods *)
  o_involved : Bits.t option;   (** CSC: methods in cut/shortcut edges *)
  o_shortcuts : int;
  o_snapshot : Snapshot.t option;
      (** engine metrics; present even on imperative-engine timeouts *)
  o_profile : Attr.profile option;
      (** cost attribution, present iff [run ~profile:true] *)
}

let timeout_outcome ?snapshot analysis elapsed =
  {
    o_analysis = name analysis;
    o_timeout = true;
    o_time = elapsed;
    o_pre_time = 0.;
    o_main_time = elapsed;
    o_result = None;
    o_metrics = None;
    o_selected = None;
    o_involved = None;
    o_shortcuts = 0;
    o_snapshot = snapshot;
    o_profile = None;
  }

let of_result ?(pre_time = 0.) ?selected ?involved ?(shortcuts = 0) analysis p
    (r : Solver.result) total_time =
  let metrics =
    Trace.with_span ~cat:"driver" "client-metrics" (fun () ->
        Metrics.compute p r)
  in
  {
    o_analysis = name analysis;
    o_timeout = false;
    o_time = total_time;
    o_pre_time = pre_time;
    o_main_time = total_time -. pre_time;
    o_result = Some r;
    o_metrics = Some metrics;
    o_selected = selected;
    o_involved = involved;
    o_shortcuts = shortcuts;
    o_snapshot = Some r.Solver.r_snapshot;
    o_profile = None;
  }

(* ------------------------------------------------------------------ spec *)

type spec = {
  sp_analysis : analysis;
  sp_budget_s : float option;
  sp_validate : bool;
  sp_explain : bool;
  sp_collapse : bool;
  sp_profile : bool;
  sp_profile_top : int;
  sp_progress_s : float option;
  sp_jobs : int;
}

let spec analysis =
  {
    sp_analysis = analysis;
    sp_budget_s = None;
    sp_validate = false;
    sp_explain = false;
    sp_collapse = true;
    sp_profile = false;
    sp_profile_top = 25;
    sp_progress_s = None;
    sp_jobs = 1;
  }

(* progress heartbeats only change stderr cadence, never the outcome, so the
   session result cache must not fragment on them *)
let spec_key s = { s with sp_progress_s = None }

(** Retained engine state of a completed run, for {!update}: the program,
    the (finished) solver and, for CSC analyses, the plugin handle. *)
type state = {
  st_prog : Ir.program;
  st_solver : Solver.t;
  st_csc : Csc.t option;
}

(** Run one analysis under an optional time budget (seconds). Timeouts are
    reported in the outcome, not raised — like the paper's ">2h" cells.
    [sp_validate] runs {!Csc_ir.Validate.check_exn} first so malformed IR
    fails fast instead of silently corrupting analysis results.

    [preseed] is applied to the created imperative solver after plugin
    installation and before solving (the incremental engine's fact
    transplant); [keep] receives the retained {!state} when the run
    completes without timeout. *)
let rec run_spec_inner ?preseed ?(keep : state option ref option) (s : spec)
    (p : Ir.program) : outcome =
  let {
    sp_analysis = analysis;
    sp_budget_s = budget_s;
    sp_validate = validate;
    sp_explain = explain;
    sp_collapse = collapse;
    sp_profile = profile;
    sp_profile_top = profile_top;
    sp_progress_s = progress_s;
    sp_jobs = jobs;
  } =
    s
  in
  if validate then Csc_ir.Validate.check_exn p;
  (* a requested --jobs N that cannot be honoured says so instead of
     silently running sequentially (the results are identical either way;
     only the wall-clock expectation differs) *)
  let jobs = max 1 jobs in
  let jobs =
    if jobs > 1 && not Domains_compat.available then begin
      Fmt.epr
        "note: this build has no multicore runtime (OCaml < 5); --jobs %d \
         runs on a single domain@."
        jobs;
      1
    end
    else jobs
  in
  let jobs =
    if jobs > 1 && explain then begin
      Fmt.epr
        "note: provenance recording (--explain) is inherently sequential; \
         --jobs %d runs on a single domain@."
        jobs;
      1
    end
    else jobs
  in
  let jobs =
    if jobs > 1 && is_datalog analysis then begin
      Fmt.epr
        "note: --jobs applies to the imperative engine only; %s runs \
         sequentially@."
        (name analysis);
      1
    end
    else jobs
  in
  let budget =
    match budget_s with
    | Some s -> Timer.budget_of_seconds s
    | None -> Timer.no_budget
  in
  let t0 = Timer.now () in
  let elapsed () = Timer.now () -. t0 in
  (* built via create/run (not [Solver.analyze]) to keep the solver handle:
     the timeout path still snapshots the aborted engine state *)
  let csc_handle : Csc.t option ref = ref None in
  let solve ?plugin_of sel =
    let t = Solver.create ~budget ~sel ~collapse p in
    if explain then
      if Solver.enable_provenance t then
        Fmt.epr
          "note: provenance recording (--explain) disables online cycle \
           collapsing for this run; expect a slower solve@.";
    if profile then Solver.enable_attr t;
    (match progress_s with Some s -> Solver.set_progress t s | None -> ());
    (match plugin_of with Some f -> Solver.set_plugin t (f t) | None -> ());
    (* incremental preloads enter through the ordinary worklist, after the
       plugin is installed, so every watch and plugin hook replays on them *)
    (match preseed with Some f -> f t | None -> ());
    match Par.run ~jobs t with
    | () -> Ok t
    | exception Solver.Timeout -> Error (Solver.snapshot t)
  in
  let imperative ?plugin_of sel finish =
    match solve ?plugin_of sel with
    | Ok t ->
      (match keep with
      | Some r -> r := Some { st_prog = p; st_solver = t; st_csc = !csc_handle }
      | None -> ());
      let o = finish (Solver.result t) in
      if profile then { o with o_profile = Solver.profile ~top:profile_top t }
      else o
    | Error snapshot -> timeout_outcome ~snapshot analysis (elapsed ())
  in
  (* Datalog runs share one attribution table across pre + main phases *)
  let dl_attr = if profile then Some (Attr.create ()) else None in
  let dl_profile (o : outcome) : outcome =
    match dl_attr with
    | None -> o
    | Some a ->
      let prof =
        Attr.render ~top:profile_top a ~engine:"datalog"
          ~meth_name:string_of_int ~ptr_name:string_of_int
      in
      { o with o_profile = Some prof }
  in
  match analysis with
  | Imp_no_collapse inner ->
    let o =
      run_spec_inner ?preseed ?keep
        { s with sp_analysis = inner; sp_collapse = false }
        p
    in
    { o with o_analysis = name analysis }
  | Imp_ci ->
    imperative Context.ci (fun r -> of_result analysis p r (elapsed ()))
  | Imp_csc | Imp_csc_cfg _ ->
    let config =
      match analysis with Imp_csc_cfg c -> c | _ -> Csc.default_config
    in
    let plugin_of s =
      let pl, h = Csc.plugin_with_handle ~config s in
      csc_handle := Some h;
      pl
    in
    imperative ~plugin_of Context.ci (fun r ->
        let involved, shortcuts =
          match !csc_handle with
          | Some h -> (Some (Csc.involved_methods h), Csc.shortcut_count h)
          | None -> (None, 0)
        in
        of_result ?involved ~shortcuts analysis p r (elapsed ()))
  | Imp_kobj k ->
    imperative (Context.kobj ~k ~hk:(max 1 (k - 1))) (fun r ->
        of_result analysis p r (elapsed ()))
  | Imp_ktype k ->
    imperative (Context.ktype ~k ~hk:(max 1 (k - 1))) (fun r ->
        of_result analysis p r (elapsed ()))
  | Imp_kcall k ->
    imperative (Context.kcall ~k ~hk:(max 1 (k - 1))) (fun r ->
        of_result analysis p r (elapsed ()))
  | Imp_2obj ->
    imperative (Context.kobj ~k:2 ~hk:1) (fun r -> of_result analysis p r (elapsed ()))
  | Imp_2type ->
    imperative (Context.ktype ~k:2 ~hk:1) (fun r ->
        of_result analysis p r (elapsed ()))
  | Imp_2call ->
    imperative (Context.kcall ~k:2 ~hk:1) (fun r ->
        of_result analysis p r (elapsed ()))
  | Imp_zipper -> (
    (* pre-analysis (CI) + selection, then selective 2obj *)
    match solve Context.ci with
    | Error snapshot -> timeout_outcome ~snapshot analysis (elapsed ())
    | Ok pre ->
      let pre_r = Solver.result pre in
      let sel =
        Trace.with_span ~cat:"driver" "zipper-select" (fun () ->
            Zipper.select p pre_r)
      in
      let pre_time = elapsed () in
      let selector =
        Context.selective ~selected:sel.Zipper.selected
          ~base:(Context.kobj ~k:2 ~hk:1)
      in
      imperative selector (fun r ->
          of_result ~pre_time ~selected:sel.Zipper.selected analysis p r
            (elapsed ())))
  | Doop_ci | Doop_csc | Doop_2obj | Doop_2type -> (
    let kind =
      match analysis with
      | Doop_ci -> Dl.Ci
      | Doop_csc -> Dl.Csc_doop
      | Doop_2obj -> Dl.Obj2
      | _ -> Dl.Type2
    in
    let dl_run kind =
      Trace.with_span ~cat:"driver" ("datalog:" ^ Dl.kind_name kind) (fun () ->
          Dl.run ~budget ?attr:dl_attr ?progress_s p kind)
    in
    match dl_run kind with
    | r -> dl_profile (of_result analysis p r (elapsed ()))
    | exception Dl.Timeout -> timeout_outcome analysis (elapsed ()))
  | Doop_zipper -> (
    let dl_run kind =
      Trace.with_span ~cat:"driver" ("datalog:" ^ Dl.kind_name kind) (fun () ->
          Dl.run ~budget ?attr:dl_attr ?progress_s p kind)
    in
    match dl_run Dl.Ci with
    | exception Dl.Timeout -> timeout_outcome analysis (elapsed ())
    | pre_r -> (
      let sel =
        Trace.with_span ~cat:"driver" "zipper-select" (fun () ->
            Zipper.select p pre_r)
      in
      let pre_time = elapsed () in
      match dl_run (Dl.Selective2obj sel.Zipper.selected) with
      | r ->
        dl_profile
          (of_result ~pre_time ~selected:sel.Zipper.selected analysis p r
             (elapsed ()))
      | exception Dl.Timeout -> timeout_outcome analysis (elapsed ())))

let run_spec (s : spec) (p : Ir.program) : outcome = run_spec_inner s p

(* ------------------------------------------------------------ incremental *)

(** Analyses the incremental engine supports: the context-insensitive lattice
    (CI and the CSC family), optionally without collapsing. Context-sensitive
    analyses fall back to a fresh solve ({!Inc.plan} re-checks this). *)
let rec inc_supported = function
  | Imp_ci | Imp_csc | Imp_csc_cfg _ -> true
  | Imp_no_collapse a -> inc_supported a
  | Imp_kobj _ | Imp_ktype _ | Imp_kcall _ | Imp_2obj | Imp_2type | Imp_2call
  | Imp_zipper | Doop_ci | Doop_csc | Doop_2obj | Doop_2type | Doop_zipper ->
    false

let rec csc_config_of = function
  | Imp_csc -> Some Csc.default_config
  | Imp_csc_cfg c -> Some c
  | Imp_no_collapse a -> csc_config_of a
  | _ -> None

(** Like {!run_spec}, but also return the retained engine {!state} when the
    analysis supports incremental updates and the run completed. *)
let run_spec_keep (s : spec) (p : Ir.program) : outcome * state option =
  if not (inc_supported s.sp_analysis) then (run_spec s p, None)
  else begin
    let keep = ref None in
    let o = run_spec_inner ~keep s p in
    (o, if o.o_timeout then None else !keep)
  end

(** [update s ~prev p] analyzes [p] — the edited successor of [prev]'s
    program — reusing [prev]'s solved state where the edit provably cannot
    have changed it (see {!Csc_pta.Inc}). Falls back to a fresh solve (and
    says why in the returned info) whenever reuse is unsupported or not
    worthwhile; either way the outcome is bit-identical to [run_spec s p]. *)
let update (s : spec) ~(prev : state) (p : Ir.program) :
    outcome * state option * Inc.info =
  let fallback reason =
    let o, st = run_spec_keep s p in
    (o, st, Inc.fresh_info reason)
  in
  if not (inc_supported s.sp_analysis) then
    fallback ("analysis " ^ name s.sp_analysis ^ " has no incremental mode")
  else
    let config = csc_config_of s.sp_analysis in
    if (config = None) <> (prev.st_csc = None) then
      fallback "retained state is for a different analysis"
    else
      let classify_old, classify_new, hook =
        match (config, prev.st_csc) with
        | Some c, Some h ->
          ( Some (Csc.classifier ~config:c prev.st_prog),
            Some (Csc.classifier ~config:c p),
            Some (Csc.inc_hook h) )
        | _ -> (None, None, None)
      in
      match Inc.plan ?classify_old ?classify_new ?hook ~old:prev.st_solver p with
      | Inc.Fallback reason -> fallback reason
      | Inc.Preseed (pre, info) ->
        let keep = ref None in
        let o = run_spec_inner ~preseed:pre ~keep s p in
        let st = if o.o_timeout then None else !keep in
        (match st with
        | Some st -> Inc.record st.st_solver.Solver.reg info
        | None -> ());
        (o, st, info)

(** Optional-argument convenience over {!run_spec}; the two are equivalent
    by construction. *)
let run ?budget_s ?(validate = false) ?(explain = false) ?(collapse = true)
    ?(profile = false) ?(profile_top = 25) ?progress_s ?(jobs = 1)
    (p : Ir.program) (analysis : analysis) : outcome =
  run_spec
    {
      sp_analysis = analysis;
      sp_budget_s = budget_s;
      sp_validate = validate;
      sp_explain = explain;
      sp_collapse = collapse;
      sp_profile = profile;
      sp_profile_top = profile_top;
      sp_progress_s = progress_s;
      sp_jobs = jobs;
    }
    p

(* ------------------------------------------------------------- recall *)

type recall_report = {
  rc_analysis : string;
  rc_methods : float;
  rc_edges : float;
}

(** The §5.1 recall experiment: execute the program, then check how much of
    the dynamic behaviour each analysis over-approximates. *)
let recall ?budget_s ?(max_steps = 50_000_000) (p : Ir.program)
    (analyses : analysis list) : recall_report list =
  let dyn = Csc_interp.Interp.run ~max_steps p in
  List.filter_map
    (fun a ->
      match (run ?budget_s p a).o_result with
      | None -> None
      | Some r ->
        let rc =
          Metrics.recall r ~dyn_reach:dyn.dyn_reachable ~dyn_edges:dyn.dyn_edges
        in
        Some
          {
            rc_analysis = name a;
            rc_methods = rc.recall_methods;
            rc_edges = rc.recall_edges;
          })
    analyses

(** Overlap of Zipper-selected methods with CSC-involved methods (Table 3's
    last column): the fraction of CSC-involved methods also selected by
    Zipper^e. *)
let overlap ~(involved : Bits.t) ~(selected : Bits.t) : float =
  let total = Bits.cardinal involved in
  if total = 0 then 0.
  else
    let inter =
      Bits.fold
        (fun m acc -> if Bits.mem selected m then acc + 1 else acc)
        involved 0
    in
    float inter /. float total

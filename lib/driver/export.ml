(** Result exporters: Graphviz call graphs and human-readable points-to
    dumps, for the CLI and for debugging analyses. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

(** Graphviz DOT rendering of the (projected) call graph. [include_jdk]
    keeps mini-JDK internal methods (they dominate visually, default off;
    membership comes from {!Csc_lang.Jdk.is_jdk_class}). *)
let callgraph_dot ?(include_jdk = false) (p : Ir.program) (r : Solver.result) :
    string =
  let is_jdk m =
    Csc_lang.Jdk.is_jdk_class (Ir.class_name p (Ir.metho p m).m_class)
  in
  let keep m = include_jdk || not (is_jdk m) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  Bits.iter
    (fun m ->
      if keep m then
        Buffer.add_string buf
          (Printf.sprintf "  m%d [label=%S];\n" m (Ir.method_name p m)))
    r.r_reach;
  let edge_seen = Hashtbl.create 256 in
  List.iter
    (fun (site, callee) ->
      let caller = (Ir.call p site).cs_method in
      if keep caller && keep callee && not (Hashtbl.mem edge_seen (caller, callee))
      then begin
        Hashtbl.add edge_seen (caller, callee) ();
        Buffer.add_string buf (Printf.sprintf "  m%d -> m%d;\n" caller callee)
      end)
    r.r_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Textual dump of points-to sets, optionally restricted to one method. *)
let pts_dump ?method_filter (p : Ir.program) (r : Solver.result) ppf =
  Array.iter
    (fun (v : Ir.var) ->
      let mname = Ir.method_name p v.v_method in
      let keep =
        match method_filter with Some f -> f = mname | None -> true
      in
      if keep && Ir.is_ref_type v.v_ty && Bits.mem r.r_reach v.v_method then begin
        let allocs = r.r_pt v.v_id in
        if not (Bits.is_empty allocs) then
          Fmt.pf ppf "%s.%s -> {%s}@." mname v.v_name
            (String.concat ", "
               (List.map
                  (fun a ->
                    let s = Ir.alloc p a in
                    Printf.sprintf "%s:%d"
                      (match s.a_kind with
                      | `Class c -> Ir.class_name p c
                      | `Array _ -> "array"
                      | `String -> "String")
                      s.a_line)
                  (Bits.to_list allocs)))
      end)
    p.vars

(* qualified-name suffix matching, shared with [Explain] ("main.x" matches
   "Main.main.x") *)
let is_suffix ~affix s =
  let la = String.length affix and ls = String.length s in
  la <= ls && String.sub s (ls - la) la = affix

let obj_name (p : Ir.program) (a : int) : string =
  let s = Ir.alloc p a in
  Printf.sprintf "%s:%d"
    (match s.Ir.a_kind with
    | `Class c -> Ir.class_name p c
    | `Array _ -> "array"
    | `String -> "String")
    s.Ir.a_line

(** JSON points-to sets for the [pt] server request and scripting clients;
    deterministic (variable-id order, ascending object ids). *)
let pts_json ?var ?(include_jdk = false) (p : Ir.program) (r : Solver.result) :
    Csc_obs.Json.t =
  let module Json = Csc_obs.Json in
  let rows = ref [] in
  Array.iter
    (fun (v : Ir.var) ->
      if Ir.is_ref_type v.v_ty && Bits.mem r.r_reach v.v_method then begin
        let qualified = Ir.method_name p v.v_method ^ "." ^ v.v_name in
        let keep =
          match var with
          | Some affix -> is_suffix ~affix qualified
          | None ->
            include_jdk
            || not
                 (Csc_lang.Jdk.is_jdk_class
                    (Ir.class_name p (Ir.metho p v.v_method).m_class))
        in
        if keep then
          let allocs = r.r_pt v.v_id in
          if not (Bits.is_empty allocs) then
            rows :=
              Json.Obj
                [ ("var", Json.Str qualified);
                  ( "objects",
                    Json.List
                      (List.map
                         (fun a -> Json.Str (obj_name p a))
                         (Bits.to_list allocs)) ) ]
              :: !rows
      end)
    p.vars;
  Json.List (List.rev !rows)

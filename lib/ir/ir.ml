(** Typed three-address IR shared by every analysis and the interpreter.

    All entities are dense ints: classes, fields, methods, variables,
    allocation sites, call sites and cast sites each have their own id space,
    with side tables in {!type-program}. Control flow stays structured
    ([If]/[While]) so the concrete interpreter can execute it; the
    flow-insensitive analyses simply walk every statement recursively. *)

type class_id = int
type field_id = int
type method_id = int
type var_id = int
type alloc_id = int
type call_id = int
type cast_id = int

type typ =
  | Tint
  | Tbool
  | Tvoid
  | Tnull
  | Tclass of class_id
  | Tarray of typ

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Not | Neg

type invoke_kind =
  | Virtual  (** dynamic dispatch on the receiver *)
  | Special  (** constructor invocation: exact target *)
  | Static   (** no receiver *)

type stmt =
  | New of { lhs : var_id; cls : class_id; site : alloc_id }
  | NewArray of { lhs : var_id; elem : typ; len : var_id; site : alloc_id }
  | StrConst of { lhs : var_id; value : string; site : alloc_id }
  | ConstInt of { lhs : var_id; value : int }
  | ConstBool of { lhs : var_id; value : bool }
  | ConstNull of { lhs : var_id }
  | Copy of { lhs : var_id; rhs : var_id }
  | Cast of { lhs : var_id; ty : typ; rhs : var_id; site : cast_id }
  | InstanceOf of { lhs : var_id; ty : typ; rhs : var_id; site : cast_id }
      (** lhs = rhs instanceof ty (lhs is boolean; site shares the cast-site
          table, with [x_kind = `InstanceOf]) *)
  | Load of { lhs : var_id; base : var_id; fld : field_id }
  | Store of { base : var_id; fld : field_id; rhs : var_id }
  | ALoad of { lhs : var_id; arr : var_id; idx : var_id }
      (** lhs = arr[idx]; the analyses smash indices, the interpreter doesn't *)
  | AStore of { arr : var_id; idx : var_id; rhs : var_id }
  | ALen of { lhs : var_id; arr : var_id }
  | SLoad of { lhs : var_id; fld : field_id }    (** static field load *)
  | SStore of { fld : field_id; rhs : var_id }
  | Binop of { lhs : var_id; op : binop; a : var_id; b : var_id }
  | Unop of { lhs : var_id; op : unop; a : var_id }
  | Invoke of {
      lhs : var_id option;
      kind : invoke_kind;
      recv : var_id option;              (** None iff Static *)
      target : method_id;
          (** Static/Special: exact callee. Virtual: the method found in the
              receiver's static type, used as the dispatch key (name lookup
              happens on the runtime class). *)
      args : var_id array;
      site : call_id;
    }
  | Return of var_id option
  | If of { cond : var_id; cond_pre : stmt array; then_ : stmt array; else_ : stmt array }
      (** [cond_pre] recomputes the condition; needed only by [While] re-tests,
          kept uniform here. *)
  | While of { cond : var_id; cond_pre : stmt array; body : stmt array }
  | Print of { arg : var_id }
  | Nop

type var = {
  v_id : var_id;
  v_name : string;
  v_ty : typ;
  v_method : method_id;
  v_kind : [ `Param of int | `This | `Local | `Temp | `Ret ];
}

type metho = {
  m_id : method_id;
  m_class : class_id;
  m_name : string;
  m_static : bool;
  m_this : var_id option;               (** Some for instance methods *)
  m_params : var_id array;              (** excludes this *)
  m_ret_ty : typ;
  m_ret_var : var_id option;
      (** single-return-variable convention, see DESIGN.md §3 *)
  m_body : stmt array;
}

type field = {
  f_id : field_id;
  f_class : class_id;                   (** declaring class *)
  f_name : string;
  f_ty : typ;
  f_static : bool;
}

type klass = {
  c_id : class_id;
  c_name : string;
  c_super : class_id option;            (** None only for Object *)
  c_fields : field_id list;             (** declared (not inherited) *)
  c_methods : method_id list;           (** declared *)
}

type alloc_site = {
  a_id : alloc_id;
  a_kind : [ `Class of class_id | `Array of typ | `String ];
  a_method : method_id;
  a_line : int;
}

type call_site = {
  cs_id : call_id;
  cs_method : method_id;                (** containing method *)
  cs_line : int;
  cs_kind : invoke_kind;
  cs_lhs : var_id option;
  cs_recv : var_id option;
  cs_args : var_id array;
  cs_target : method_id;
}

type cast_site = {
  x_id : cast_id;
  x_method : method_id;
  x_ty : typ;
  x_line : int;
  x_kind : [ `Cast | `InstanceOf ];
}

type program = {
  classes : klass array;
  fields : field array;
  methods : metho array;
  vars : var array;
  allocs : alloc_site array;
  calls : call_site array;
  casts : cast_site array;
  main : method_id;
  object_cls : class_id;
  string_cls : class_id;
  (* ---- derived tables (computed once by Build.finish) ---- *)
  def_counts : int array;               (** per-var number of defining stmts *)
  vtables : (string, method_id) Hashtbl.t array;
      (** per-class: method name -> most-derived implementation *)
  subtypes : Csc_common.Bits.t array;   (** per-class: set of subclasses (incl. self) *)
}

(* ------------------------------------------------------------- accessors *)

let klass p c = p.classes.(c)
let metho p m = p.methods.(m)
let var p v = p.vars.(v)
let field p f = p.fields.(f)
let alloc p a = p.allocs.(a)
let call p c = p.calls.(c)
let cast p x = p.casts.(x)

let class_name p c = p.classes.(c).c_name
let method_name p m =
  let mm = p.methods.(m) in
  Printf.sprintf "%s.%s" (class_name p mm.m_class) mm.m_name

let var_name p v = p.vars.(v).v_name

(** [subclass_of p a b] : is class [a] a subclass of (or equal to) [b]? *)
let subclass_of p a b = Csc_common.Bits.mem p.subtypes.(b) a

(** Reference-type subtyping, covariant arrays, null <: everything. *)
let rec subtype p (a : typ) (b : typ) : bool =
  match (a, b) with
  | Tnull, (Tclass _ | Tarray _ | Tnull) -> true
  | Tclass ca, Tclass cb -> subclass_of p ca cb
  | Tarray _, Tclass cb -> cb = p.object_cls
  | Tarray ea, Tarray eb -> subtype p ea eb || ea = eb
  | Tint, Tint | Tbool, Tbool | Tvoid, Tvoid -> true
  | _ -> false

(** Dynamic dispatch: the implementation of [name] seen from class [c]. *)
let dispatch p (c : class_id) (name : string) : method_id option =
  Hashtbl.find_opt p.vtables.(c) name

let is_ref_type = function
  | Tclass _ | Tarray _ | Tnull -> true
  | Tint | Tbool | Tvoid -> false

(** Class of an allocation site's objects, for dispatch/subtype checks.
    Arrays and strings are handled by the caller where it matters. *)
let alloc_class p (a : alloc_id) : class_id option =
  match p.allocs.(a).a_kind with
  | `Class c -> Some c
  | `String -> Some p.string_cls
  | `Array _ -> None

let alloc_typ p (a : alloc_id) : typ =
  match p.allocs.(a).a_kind with
  | `Class c -> Tclass c
  | `String -> Tclass p.string_cls
  | `Array elem -> Tarray elem

(* ---------------------------------------------------------------- walking *)

(** Statement paths: a stable address for any statement inside a method body,
    through the structured [If]/[While] nesting. A path alternates statement
    indices ([Sstmt]) with block selectors descending into the statement just
    selected. Example: [[Sstmt 3; Sthen; Sstmt 0]] is the first statement of
    the then-branch of the fourth top-level statement. The flow-sensitive
    checkers ({!Csc_checks}) anchor every diagnostic to such a path. *)
type path_step =
  | Sstmt of int  (** statement index within the current block *)
  | Scond         (** descend into [cond_pre] of the selected [If]/[While] *)
  | Sthen         (** descend into [then_] of the selected [If] *)
  | Selse         (** descend into [else_] of the selected [If] *)
  | Sbody         (** descend into [body] of the selected [While] *)

type stmt_path = path_step list

let path_to_string (p : stmt_path) : string =
  String.concat "/"
    (List.map
       (function
         | Sstmt i -> string_of_int i
         | Scond -> "cond"
         | Sthen -> "then"
         | Selse -> "else"
         | Sbody -> "body")
       p)

let pp_path ppf p = Fmt.string ppf (path_to_string p)

(** [stmt_at body path] resolves a path back to its statement, [None] if the
    path does not address a statement of [body]. *)
let rec stmt_at (body : stmt array) (path : stmt_path) : stmt option =
  match path with
  | Sstmt i :: rest when i >= 0 && i < Array.length body -> (
    let s = body.(i) in
    match (rest, s) with
    | [], _ -> Some s
    | Scond :: rest, (If { cond_pre; _ } | While { cond_pre; _ }) ->
      stmt_at cond_pre rest
    | Sthen :: rest, If { then_; _ } -> stmt_at then_ rest
    | Selse :: rest, If { else_; _ } -> stmt_at else_ rest
    | Sbody :: rest, While { body; _ } -> stmt_at body rest
    | _ -> None)
  | _ -> None

(** [iter_stmts f body] visits every statement including nested blocks and
    condition-recomputation prefixes; flow-insensitive consumers use this. *)
let rec iter_stmts f (body : stmt array) =
  Array.iter
    (fun s ->
      f s;
      match s with
      | If { cond_pre; then_; else_; _ } ->
        iter_stmts f cond_pre;
        iter_stmts f then_;
        iter_stmts f else_
      | While { cond_pre; body; _ } ->
        iter_stmts f cond_pre;
        iter_stmts f body
      | _ -> ())
    body

(** [iter_stmts_path f body] is {!iter_stmts} with each statement's
    {!type-stmt_path} (same visit order). *)
let iter_stmts_path f (body : stmt array) =
  let rec go rev_prefix body =
    Array.iteri
      (fun i s ->
        let here = Sstmt i :: rev_prefix in
        f (List.rev here) s;
        match s with
        | If { cond_pre; then_; else_; _ } ->
          go (Scond :: here) cond_pre;
          go (Sthen :: here) then_;
          go (Selse :: here) else_
        | While { cond_pre; body; _ } ->
          go (Scond :: here) cond_pre;
          go (Sbody :: here) body
        | _ -> ())
      body
  in
  go [] body

let iter_method_stmts f (m : metho) = iter_stmts f m.m_body

let iter_all_stmts f (p : program) =
  Array.iter (fun m -> iter_method_stmts (f m.m_id) m) p.methods

(** The variable defined by a statement, if any. *)
let def_of = function
  | New { lhs; _ }
  | NewArray { lhs; _ }
  | StrConst { lhs; _ }
  | ConstInt { lhs; _ }
  | ConstBool { lhs; _ }
  | ConstNull { lhs }
  | Copy { lhs; _ }
  | Cast { lhs; _ }
  | InstanceOf { lhs; _ }
  | Load { lhs; _ }
  | ALoad { lhs; _ }
  | ALen { lhs; _ }
  | SLoad { lhs; _ }
  | Binop { lhs; _ }
  | Unop { lhs; _ } ->
    Some lhs
  | Invoke { lhs; _ } -> lhs
  | Store _ | AStore _ | SStore _ | Return _ | If _ | While _ | Print _ | Nop ->
    None

(** The variables a statement reads. [If]/[While] contribute only their
    condition — nested blocks are separate statements (see {!iter_stmts}). *)
let uses_of = function
  | New _ | StrConst _ | ConstInt _ | ConstBool _ | ConstNull _ | SLoad _
  | Nop ->
    []
  | NewArray { len; _ } -> [ len ]
  | Copy { rhs; _ } -> [ rhs ]
  | Cast { rhs; _ } | InstanceOf { rhs; _ } -> [ rhs ]
  | Load { base; _ } -> [ base ]
  | Store { base; rhs; _ } -> [ base; rhs ]
  | ALoad { arr; idx; _ } -> [ arr; idx ]
  | AStore { arr; idx; rhs } -> [ arr; idx; rhs ]
  | ALen { arr; _ } -> [ arr ]
  | SStore { rhs; _ } -> [ rhs ]
  | Binop { a; b; _ } -> [ a; b ]
  | Unop { a; _ } -> [ a ]
  | Invoke { recv; args; _ } ->
    Option.to_list recv @ Array.to_list args
  | Return v -> Option.to_list v
  | If { cond; _ } | While { cond; _ } -> [ cond ]
  | Print { arg } -> [ arg ]

(* --------------------------------------------------------- pretty printing *)

let rec pp_typ p ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "boolean"
  | Tvoid -> Fmt.string ppf "void"
  | Tnull -> Fmt.string ppf "null"
  | Tclass c -> Fmt.string ppf (class_name p c)
  | Tarray t -> Fmt.pf ppf "%a[]" (pp_typ p) t

let pp_var p ppf v = Fmt.string ppf (var_name p v)

let rec pp_stmt p ppf (s : stmt) =
  let v = pp_var p in
  match s with
  | New { lhs; cls; site } ->
    Fmt.pf ppf "%a = new %s /*o%d*/" v lhs (class_name p cls) site
  | NewArray { lhs; elem; len; site } ->
    Fmt.pf ppf "%a = new %a[%a] /*o%d*/" v lhs (pp_typ p) elem v len site
  | StrConst { lhs; value; site } -> Fmt.pf ppf "%a = %S /*o%d*/" v lhs value site
  | ConstInt { lhs; value } -> Fmt.pf ppf "%a = %d" v lhs value
  | ConstBool { lhs; value } -> Fmt.pf ppf "%a = %b" v lhs value
  | ConstNull { lhs } -> Fmt.pf ppf "%a = null" v lhs
  | Copy { lhs; rhs } -> Fmt.pf ppf "%a = %a" v lhs v rhs
  | Cast { lhs; ty; rhs; _ } -> Fmt.pf ppf "%a = (%a) %a" v lhs (pp_typ p) ty v rhs
  | InstanceOf { lhs; ty; rhs; _ } ->
    Fmt.pf ppf "%a = %a instanceof %a" v lhs v rhs (pp_typ p) ty
  | Load { lhs; base; fld } ->
    Fmt.pf ppf "%a = %a.%s" v lhs v base (field p fld).f_name
  | Store { base; fld; rhs } ->
    Fmt.pf ppf "%a.%s = %a" v base (field p fld).f_name v rhs
  | ALoad { lhs; arr; idx } -> Fmt.pf ppf "%a = %a[%a]" v lhs v arr v idx
  | AStore { arr; idx; rhs } -> Fmt.pf ppf "%a[%a] = %a" v arr v idx v rhs
  | ALen { lhs; arr } -> Fmt.pf ppf "%a = %a.length" v lhs v arr
  | SLoad { lhs; fld } ->
    let f = field p fld in
    Fmt.pf ppf "%a = %s.%s" v lhs (class_name p f.f_class) f.f_name
  | SStore { fld; rhs } ->
    let f = field p fld in
    Fmt.pf ppf "%s.%s = %a" (class_name p f.f_class) f.f_name v rhs
  | Binop { lhs; a; b; _ } -> Fmt.pf ppf "%a = %a <op> %a" v lhs v a v b
  | Unop { lhs; a; _ } -> Fmt.pf ppf "%a = <op> %a" v lhs v a
  | Invoke { lhs; recv; target; args; site; _ } ->
    Fmt.pf ppf "%a%a%s(%a) /*cs%d*/"
      (Fmt.option (fun ppf l -> Fmt.pf ppf "%a = " v l)) lhs
      (Fmt.option (fun ppf r -> Fmt.pf ppf "%a." v r)) recv
      (method_name p target)
      (Fmt.array ~sep:(Fmt.any ", ") v) args
      site
  | Return None -> Fmt.string ppf "return"
  | Return (Some x) -> Fmt.pf ppf "return %a" v x
  | If { cond; then_; else_; _ } ->
    Fmt.pf ppf "if (%a) { %a } else { %a }" v cond
      (Fmt.array ~sep:(Fmt.any "; ") (pp_stmt p)) then_
      (Fmt.array ~sep:(Fmt.any "; ") (pp_stmt p)) else_
  | While { cond; body; _ } ->
    Fmt.pf ppf "while (%a) { %a }" v cond
      (Fmt.array ~sep:(Fmt.any "; ") (pp_stmt p)) body
  | Print { arg } -> Fmt.pf ppf "print(%a)" v arg
  | Nop -> Fmt.string ppf "nop"

let pp_method p ppf (m : metho) =
  Fmt.pf ppf "@[<v 2>%s%s(%a) {@,%a@]@,}"
    (if m.m_static then "static " else "")
    (method_name p m.m_id)
    (Fmt.array ~sep:(Fmt.any ", ") (pp_var p)) m.m_params
    (Fmt.array ~sep:Fmt.cut (pp_stmt p)) m.m_body

let pp_program ppf (p : program) =
  Array.iter (fun m -> Fmt.pf ppf "%a@." (pp_method p) m) p.methods

(* ------------------------------------------------------------- statistics *)

type stats = {
  n_classes : int;
  n_methods : int;
  n_vars : int;
  n_allocs : int;
  n_calls : int;
  n_casts : int;
  n_stmts : int;
}

let stats (p : program) : stats =
  let n = ref 0 in
  iter_all_stmts (fun _ _ -> incr n) p;
  {
    n_classes = Array.length p.classes;
    n_methods = Array.length p.methods;
    n_vars = Array.length p.vars;
    n_allocs = Array.length p.allocs;
    n_calls = Array.length p.calls;
    n_casts = Array.length p.casts;
    n_stmts = !n;
  }

let pp_stats ppf s =
  Fmt.pf ppf "classes=%d methods=%d vars=%d allocs=%d calls=%d casts=%d stmts=%d"
    s.n_classes s.n_methods s.n_vars s.n_allocs s.n_calls s.n_casts s.n_stmts

(** Flow-sensitive null-dereference checker.

    A forward {!Dataflow} instance tracking, per reference variable, the
    four-point nullness lattice

    {v        MaybeNull  (= may-null and may-non-null)
             /        \
           Null      NonNull
             \        /
            Unassigned  (bottom: no definition reaches)         v}

    encoded as two bitsets ([may-null], [may-non-null]). Transfer is exact
    for [ConstNull], allocations and copies/casts; values coming out of the
    heap or out of calls are where the pointer analysis joins in: if the
    points-to set of the defined variable is *empty*, no allocation can ever
    reach it, so its value can only be null ([Null]); otherwise the checker
    optimistically assumes [NonNull] (the conventional lint trade-off, which
    keeps heap reads from drowning the report in maybe-null noise).

    At every dereference (field/array access, [.length], virtual/special
    call receiver) of variable [x]:
    - state [Null]       -> Error: the dereference must NPE;
    - state [MaybeNull]  -> Warning: an explicit null assignment reaches;
    - state [Unassigned] -> Warning: no assignment to [x] reaches on any
      path (MiniJava locals declared without initializer default to null;
      being the lattice bottom, this is only reported when *no* reaching
      path assigns — partial initialization folds into the assigned state).

    Precision of the underlying analysis shows up directly: a more precise
    points-to result proves more loads empty (finding more definite NPEs)
    and, through fewer spuriously-reachable methods, drops alarms a
    context-insensitive analysis reports in dead code. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type state = { mnull : Bits.t; mnn : Bits.t }

module Dom = struct
  type t = state

  let equal a b = Bits.equal a.mnull b.mnull && Bits.equal a.mnn b.mnn

  let join a b =
    let mnull = Bits.copy a.mnull and mnn = Bits.copy a.mnn in
    ignore (Bits.union_into ~into:mnull b.mnull);
    ignore (Bits.union_into ~into:mnn b.mnn);
    { mnull; mnn }
end

module DF = Dataflow.Make (Dom)

type nullness = Unassigned | Null | NonNull | MaybeNull

let nullness_of (d : state) (v : Ir.var_id) : nullness =
  match (Bits.mem d.mnull v, Bits.mem d.mnn v) with
  | false, false -> Unassigned
  | true, false -> Null
  | false, true -> NonNull
  | true, true -> MaybeNull

let set (d : state) v (n : nullness) : state =
  let mnull = Bits.copy d.mnull and mnn = Bits.copy d.mnn in
  Bits.remove mnull v;
  Bits.remove mnn v;
  (match n with
  | Null -> ignore (Bits.add mnull v)
  | NonNull -> ignore (Bits.add mnn v)
  | MaybeNull ->
    ignore (Bits.add mnull v);
    ignore (Bits.add mnn v)
  | Unassigned -> ());
  { mnull; mnn }

let is_ref (p : Ir.program) v = Ir.is_ref_type (Ir.var p v).v_ty

(** Transfer: only reference-typed definitions move the state. *)
let transfer (p : Ir.program) (r : Solver.result) _path (s : Ir.stmt)
    (d : state) : state =
  let from_heap lhs =
    (* the points-to join: empty pt => only null can flow here *)
    if Bits.is_empty (r.Solver.r_pt lhs) then Null else NonNull
  in
  match s with
  | ConstNull { lhs } -> set d lhs Null
  | New { lhs; _ } | NewArray { lhs; _ } | StrConst { lhs; _ } ->
    set d lhs NonNull
  | Copy { lhs; rhs } when is_ref p lhs ->
    set d lhs (match nullness_of d rhs with Unassigned -> Null | n -> n)
  | Cast { lhs; rhs; _ } when is_ref p lhs ->
    (* a cast preserves nullness; an unassigned operand reads as null *)
    set d lhs (match nullness_of d rhs with Unassigned -> Null | n -> n)
  | Load { lhs; _ } | ALoad { lhs; _ } | SLoad { lhs; _ }
    when is_ref p lhs ->
    set d lhs (from_heap lhs)
  | Invoke { lhs = Some lhs; _ } when is_ref p lhs -> set d lhs (from_heap lhs)
  | _ -> d

(** The variable a statement dereferences, if any. *)
let deref_of (s : Ir.stmt) : Ir.var_id option =
  match s with
  | Load { base; _ } | Store { base; _ } -> Some base
  | ALoad { arr; _ } | AStore { arr; _ } | ALen { arr; _ } -> Some arr
  | Invoke { kind = Virtual | Special; recv = Some r; _ } -> Some r
  | _ -> None

let check_name = "null-deref"

(** Diagnostics for one method. *)
let check_method (p : Ir.program) (r : Solver.result) (mid : Ir.method_id) :
    Diagnostic.t list =
  let m = Ir.metho p mid in
  let cfg = Cfg.of_method p mid in
  let boundary =
    (* this and parameters are assumed non-null at entry (the caller's
       responsibility — checked at the call site's receiver, not here) *)
    let d = { mnull = Bits.create (); mnn = Bits.create () } in
    (match m.m_this with Some t -> ignore (Bits.add d.mnn t) | None -> ());
    Array.iter (fun v -> if is_ref p v then ignore (Bits.add d.mnn v)) m.m_params;
    d
  in
  let spec =
    DF.
      {
        dir = Dataflow.Forward;
        boundary;
        bottom = { mnull = Bits.create (); mnn = Bits.create () };
        transfer = transfer p r;
      }
  in
  let res = DF.solve spec cfg in
  let out = ref [] in
  let emit path sev msg witness =
    out :=
      Diagnostic.
        {
          d_check = check_name;
          d_severity = sev;
          d_method = mid;
          d_path = path;
          d_message = msg;
          d_witness = witness;
        }
      :: !out
  in
  DF.iter_stmt_facts spec cfg res (fun path s ~before ~after:_ ->
      match deref_of s with
      | None -> ()
      | Some v when not (is_ref p v) -> ()
      | Some v -> (
        let name = Ir.var_name p v in
        match nullness_of before v with
        | NonNull -> ()
        | Null ->
          let why =
            if Bits.is_empty (r.Solver.r_pt v) then
              Printf.sprintf "pt(%s) = {} under %s" name r.Solver.r_name
            else Printf.sprintf "a null assignment to %s reaches" name
          in
          emit path Diagnostic.Error
            (Printf.sprintf "dereference of %s, which is null here" name)
            (Some why)
        | MaybeNull ->
          emit path Diagnostic.Warning
            (Printf.sprintf "dereference of %s, which may be null here" name)
            (Some (Printf.sprintf "a null assignment to %s reaches on some path" name))
        | Unassigned ->
          emit path Diagnostic.Warning
            (Printf.sprintf
               "dereference of %s, which is never assigned on this path \
                (defaults to null)"
               name)
            None));
  List.rev !out

let check (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  Bits.fold
    (fun mid acc -> List.rev_append (check_method p r mid) acc)
    r.Solver.r_reach []
  |> List.sort Diagnostic.compare

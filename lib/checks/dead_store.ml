(** Dead-store / unused-variable lint, driven by {!Liveness}.

    - A *dead store* is a side-effect-free definition of a variable that is
      not live afterwards (the value can never be observed). Definitions
      with their own effects — calls, casts (which may throw) — are skipped.
    - An *unused variable* is a named local that is never read anywhere in
      its method; its stores are reported once, at method level, instead of
      per store.

    Compiler temporaries ([`Temp]), [this] and the synthetic return variable
    are excluded; parameters are only checked for dead stores (an unused
    parameter is part of the method's signature, not a local mistake).
    This checker is independent of the pointer analysis: its counts are
    identical under CI and CSC, which the bench table shows as a control. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

let check_name = "dead-store"

(** May the statement's definition be dropped without losing behaviour?
    Allocations are kept reportable (the object is unreachable anyway if the
    variable is dead and never aliased — which a dead store guarantees at
    this definition point). *)
let pure_def (s : Ir.stmt) : bool =
  match s with
  | New _ | NewArray _ | StrConst _ | ConstInt _ | ConstBool _ | ConstNull _
  | Copy _ | Load _ | ALoad _ | ALen _ | SLoad _ | Binop _ | Unop _
  | InstanceOf _ ->
    true
  | Cast _ (* may throw *) | Invoke _ (* callee effects *) -> false
  | Store _ | AStore _ | SStore _ | Return _ | If _ | While _ | Print _ | Nop
    ->
    false

let check_method (p : Ir.program) (mid : Ir.method_id) : Diagnostic.t list =
  let m = Ir.metho p mid in
  let cfg = Cfg.of_method p mid in
  let live = Liveness.compute cfg in
  let out = ref [] in
  let checkable v =
    let vi = Ir.var p v in
    vi.Ir.v_method = mid
    &&
    match vi.Ir.v_kind with
    | `Local -> true
    | `Param _ -> true
    | `Temp | `This | `Ret -> false
  in
  (* variables read anywhere in the method *)
  let used = Bits.create () in
  Ir.iter_stmts
    (fun s -> List.iter (fun v -> ignore (Bits.add used v)) (Ir.uses_of s))
    m.Ir.m_body;
  (* method-level: named locals never read at all *)
  let unused_vars = Bits.create () in
  Array.iter
    (fun (vi : Ir.var) ->
      if
        vi.Ir.v_method = mid && vi.Ir.v_kind = `Local
        && (not (Bits.mem used vi.Ir.v_id))
        && p.Ir.def_counts.(vi.Ir.v_id) > 0
      then begin
        ignore (Bits.add unused_vars vi.Ir.v_id);
        out :=
          Diagnostic.
            {
              d_check = check_name;
              d_severity = Warning;
              d_method = mid;
              d_path = [];
              d_message =
                Printf.sprintf "variable %s is assigned but never read"
                  vi.Ir.v_name;
              d_witness = None;
            }
          :: !out
      end)
    p.Ir.vars;
  (* per-statement dead stores (skipping wholly-unused vars, reported above) *)
  Liveness.iter live cfg (fun path s ~live_before:_ ~live_after ->
      match Ir.def_of s with
      | Some v
        when pure_def s && checkable v
             && (not (Bits.mem unused_vars v))
             && not (Bits.mem live_after v) ->
        out :=
          Diagnostic.
            {
              d_check = check_name;
              d_severity = Warning;
              d_method = mid;
              d_path = path;
              d_message =
                Printf.sprintf "value assigned to %s is never used"
                  (Ir.var_name p v);
              d_witness = None;
            }
          :: !out
      | _ -> ());
  List.rev !out

let check (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  Bits.fold
    (fun mid acc -> List.rev_append (check_method p mid) acc)
    r.Solver.r_reach []
  |> List.sort Diagnostic.compare

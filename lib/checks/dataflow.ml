(** Generic monotone dataflow framework over {!Cfg}.

    A classic worklist fixpoint, parameterized by a join-semilattice and a
    per-statement transfer function, running forward or backward. Liveness,
    reaching definitions and the null-state analysis are all instances.

    Domain values are treated as immutable: [join] and [transfer] must return
    fresh values (or share safely) and never mutate their arguments — the
    solver aliases values freely. *)

module Ir = Csc_ir.Ir

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  (** Least upper bound; must not mutate its arguments. *)
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (D : DOMAIN) = struct
  type spec = {
    dir : direction;
    boundary : D.t;
        (** fact at method entry (Forward) or method exit (Backward) *)
    bottom : D.t;  (** initial fact everywhere; the lattice's least element *)
    transfer : Ir.stmt_path -> Ir.stmt -> D.t -> D.t;
  }

  type result = {
    input : D.t array;
        (** per block: fact at the block's analysis-direction entry
            (execution entry for Forward, execution exit for Backward) *)
    output : D.t array;  (** [input] pushed through the block's transfer *)
  }

  let block_transfer spec (b : Cfg.block) (d : D.t) : D.t =
    match spec.dir with
    | Forward ->
      Array.fold_left (fun d (p, s) -> spec.transfer p s d) d b.b_stmts
    | Backward ->
      let d = ref d in
      for i = Array.length b.b_stmts - 1 downto 0 do
        let p, s = b.b_stmts.(i) in
        d := spec.transfer p s !d
      done;
      !d

  let solve spec (cfg : Cfg.t) : result =
    let n = Cfg.n_blocks cfg in
    let input = Array.make n spec.bottom in
    let output = Array.make n spec.bottom in
    let flow_preds, flow_succs, start =
      match spec.dir with
      | Forward -> (Cfg.preds cfg, Cfg.succs cfg, Cfg.entry cfg)
      | Backward -> (Cfg.succs cfg, Cfg.preds cfg, Cfg.exit_ cfg)
    in
    let on_wl = Array.make n true in
    let wl = Queue.create () in
    for i = 0 to n - 1 do
      Queue.push i wl
    done;
    while not (Queue.is_empty wl) do
      let b = Queue.pop wl in
      on_wl.(b) <- false;
      let inp =
        List.fold_left
          (fun acc p -> D.join acc output.(p))
          (if b = start then spec.boundary else spec.bottom)
          (flow_preds b)
      in
      input.(b) <- inp;
      let out = block_transfer spec (Cfg.block cfg b) inp in
      if not (D.equal out output.(b)) then begin
        output.(b) <- out;
        List.iter
          (fun s ->
            if not on_wl.(s) then begin
              on_wl.(s) <- true;
              Queue.push s wl
            end)
          (flow_succs b)
      end
    done;
    { input; output }

  (** Per-statement facts. [f path stmt ~before ~after] receives the facts in
      *execution* order on both directions (for Backward, [before] is the
      fact holding just before the statement executes, i.e. the transfer's
      result). *)
  let iter_stmt_facts spec (cfg : Cfg.t) (res : result) f =
    Array.iteri
      (fun bid (b : Cfg.block) ->
        match spec.dir with
        | Forward ->
          let d = ref res.input.(bid) in
          Array.iter
            (fun (p, s) ->
              let before = !d in
              let after = spec.transfer p s before in
              f p s ~before ~after;
              d := after)
            b.b_stmts
        | Backward ->
          let d = ref res.input.(bid) in
          for i = Array.length b.b_stmts - 1 downto 0 do
            let p, s = b.b_stmts.(i) in
            let after = !d in
            let before = spec.transfer p s after in
            f p s ~before ~after;
            d := before
          done)
      cfg.Cfg.c_blocks
end

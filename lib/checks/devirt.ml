(** Devirtualization: the paper's #poly-call client as a per-site pass.

    From the analysis call graph, every reachable [Virtual] call site is
    classified by its number of possible targets:

    - exactly one target: the site is monomorphic and can be devirtualized
      (inlined / statically bound) — surfaced through {!sites} for
      optimizers, e.g. [examples/devirtualizer.ml];
    - two or more targets: a missed-optimization diagnostic (Info) — this is
      what the checker emits, so a more precise analysis (CSC vs CI) shows
      up as strictly fewer diagnostics, mirroring #poly-call.

    Sites with zero targets (dead receivers) are skipped. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type site_info = {
  si_site : Ir.call_id;
  si_method : Ir.method_id;          (** containing method *)
  si_targets : Ir.method_id list;    (** possible callees, sorted *)
}

let check_name = "poly-call"

(** All reachable virtual call sites with at least one target. *)
let sites (p : Ir.program) (r : Solver.result) : site_info list =
  let by_site : (Ir.call_id, Ir.method_id list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (site, callee) ->
      Hashtbl.replace by_site site
        (callee :: Option.value ~default:[] (Hashtbl.find_opt by_site site)))
    r.Solver.r_edges;
  Hashtbl.fold
    (fun site callees acc ->
      let cs = Ir.call p site in
      if cs.Ir.cs_kind = Ir.Virtual then
        {
          si_site = site;
          si_method = cs.Ir.cs_method;
          si_targets = List.sort_uniq compare callees;
        }
        :: acc
      else acc)
    by_site []
  |> List.sort (fun a b -> compare a.si_site b.si_site)

(** Path of a call site's statement within its containing method. *)
let site_path (p : Ir.program) (site : Ir.call_id) : Ir.stmt_path =
  let cs = Ir.call p site in
  let found = ref [] in
  Ir.iter_stmts_path
    (fun path s ->
      match s with
      | Ir.Invoke { site = s'; _ } when s' = site -> found := path
      | _ -> ())
    (Ir.metho p cs.Ir.cs_method).Ir.m_body;
  !found

let check (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  List.filter_map
    (fun si ->
      match si.si_targets with
      | [] | [ _ ] -> None
      | targets ->
        let cs = Ir.call p si.si_site in
        Some
          Diagnostic.
            {
              d_check = check_name;
              d_severity = Info;
              d_method = si.si_method;
              d_path = site_path p si.si_site;
              d_message =
                Printf.sprintf "virtual call %s cannot be devirtualized: %d targets"
                  (Ir.method_name p cs.Ir.cs_target)
                  (List.length targets);
              d_witness =
                Some
                  (String.concat ", "
                     (List.map (Ir.method_name p) targets));
            })
    (sites p r)
  |> List.sort Diagnostic.compare

(** Flow-refined fail-cast checker.

    The paper's #fail-cast client ({!Csc_clients.Metrics}) counts a reachable
    [Cast] as may-fail when some allocation in the operand's points-to set is
    not a subtype of the target type. That is flow-*in*sensitive: the
    points-to set merges every assignment to the operand anywhere in the
    method. This checker re-checks each cast against the *reaching
    definitions* of its operand:

    - if every reaching definition has a statically known type (allocation,
      string or null constant), the cast is judged purely flow-sensitively —
      alarm iff some reaching type fails the subtype test;
    - otherwise (a reaching definition reads the heap, calls a method, or the
      operand is a parameter) the points-to test decides, as in [Metrics].

    Every alarm this checker raises is also raised by [Metrics.fail_cast];
    the flow refinement only removes alarms (e.g. a cast dominated by a
    same-method allocation of the right class). Precision of the pointer
    analysis shows up as fewer alarms on the PTA-decided casts — the paper's
    CI-vs-CSC gap, per diagnostic. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

let check_name = "fail-cast"

(** Statically known type of a defining statement, [None] if it must be
    resolved through the points-to set. [ConstNull] yields [Tnull]: casting
    null never fails. *)
let def_type (p : Ir.program) (s : Ir.stmt) : Ir.typ option =
  match s with
  | New { cls; _ } -> Some (Ir.Tclass cls)
  | NewArray { elem; _ } -> Some (Ir.Tarray elem)
  | StrConst _ -> Some (Ir.Tclass p.Ir.string_cls)
  | ConstNull _ -> Some Ir.Tnull
  | _ -> None

let pp_typ_str p ty = Fmt.str "%a" (Ir.pp_typ p) ty

let check_method (p : Ir.program) (r : Solver.result) (mid : Ir.method_id) :
    Diagnostic.t list =
  let cfg = Cfg.of_method p mid in
  let reach = Reaching.compute cfg in
  let out = ref [] in
  Reaching.iter reach cfg (fun path s ~reaching ->
      match s with
      | Cast { ty; rhs; _ } when Ir.is_ref_type ty -> (
        let defs = Reaching.defs_of_var reach reaching rhs in
        let types = List.map (fun d -> def_type p d.Reaching.def_stmt) defs in
        let all_known = defs <> [] && List.for_all Option.is_some types in
        let alarm =
          if all_known then
            (* pure flow-sensitive judgement *)
            let failing =
              List.filter_map
                (fun t ->
                  match t with
                  | Some t when not (Ir.subtype p t ty) -> Some (pp_typ_str p t)
                  | _ -> None)
                types
            in
            if failing = [] then None
            else
              Some
                (Printf.sprintf "reaching definitions of type %s"
                   (String.concat ", " (List.sort_uniq compare failing)))
          else
            (* points-to judgement, as in Metrics.fail_cast *)
            let failing = ref [] in
            Bits.iter
              (fun a ->
                let t = Ir.alloc_typ p a in
                if not (Ir.subtype p t ty) then failing := pp_typ_str p t :: !failing)
              (r.Solver.r_pt rhs);
            if !failing = [] then None
            else
              let names = List.sort_uniq compare !failing in
              let shown =
                match names with
                | a :: b :: c :: _ :: _ -> [ a; b; c; "..." ]
                | l -> l
              in
              Some
                (Printf.sprintf "pt under %s contains %s" r.Solver.r_name
                   (String.concat ", " shown))
        in
        match alarm with
        | None -> ()
        | Some witness ->
          out :=
            Diagnostic.
              {
                d_check = check_name;
                d_severity = Warning;
                d_method = mid;
                d_path = path;
                d_message =
                  Printf.sprintf "cast to %s may fail" (pp_typ_str p ty);
                d_witness = Some witness;
              }
            :: !out)
      | _ -> ());
  List.rev !out

let check (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  Bits.fold
    (fun mid acc -> List.rev_append (check_method p r mid) acc)
    r.Solver.r_reach []
  |> List.sort Diagnostic.compare

(** Control-flow graphs over the structured IR.

    The IR keeps control flow structured ([If]/[While] own their blocks, see
    {!Csc_ir.Ir.stmt}); the flow-sensitive checkers need basic blocks with
    pred/succ edges instead. This module linearizes a method body:

    - every statement lands in exactly one block, labelled with its
      {!Csc_ir.Ir.stmt_path}, so the statement multiset equals
      [iter_stmts]'s and diagnostics can point back into the source;
    - an [If] terminates its block ([cond_pre], empty in frontend output, is
      linearized just before it); the branches join in a fresh block;
    - a [While] becomes a loop header holding [cond_pre] plus the [While]
      itself as the test, with a back edge from the body and an exit edge to
      the continuation — matching the interpreter, which re-runs [cond_pre]
      before every test;
    - [Return] edges to the dedicated exit block; trailing statements go to a
      fresh, unreachable block (dead code keeps its place in the multiset).

    Blocks [c_entry] and [c_exit] are always present and empty. *)

module Ir = Csc_ir.Ir

type block = {
  b_id : int;
  mutable b_stmts : (Ir.stmt_path * Ir.stmt) array;
  mutable b_succs : int list;
  mutable b_preds : int list;
}

type t = {
  c_blocks : block array;
  c_entry : int;
  c_exit : int;
}

let block t i = t.c_blocks.(i)
let n_blocks t = Array.length t.c_blocks
let entry t = t.c_entry
let exit_ t = t.c_exit
let succs t i = t.c_blocks.(i).b_succs
let preds t i = t.c_blocks.(i).b_preds

let build (body : Ir.stmt array) : t =
  let blocks = ref [] and n = ref 0 in
  (* statements accumulate reversed per block; finalized below *)
  let stmts : (int, (Ir.stmt_path * Ir.stmt) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let fresh () =
    let b = { b_id = !n; b_stmts = [||]; b_succs = []; b_preds = [] } in
    incr n;
    blocks := b :: !blocks;
    Hashtbl.add stmts b.b_id (ref []);
    b
  in
  let push b ps =
    let l = Hashtbl.find stmts b.b_id in
    l := ps :: !l
  in
  let edge a b =
    if not (List.mem b.b_id a.b_succs) then begin
      a.b_succs <- b.b_id :: a.b_succs;
      b.b_preds <- a.b_id :: b.b_preds
    end
  in
  let entry = fresh () in
  let exit_b = fresh () in
  (* [go start prefix stmts] appends [stmts] starting in block [start];
     returns the open block control falls out of, [None] after a [Return].
     Statements following a [Return] land in a fresh unreachable block. *)
  let rec go (start : block) prefix (ss : Ir.stmt array) : block option =
    let current = ref (Some start) in
    Array.iteri
      (fun i s ->
        let path = prefix @ [ Ir.Sstmt i ] in
        let b =
          match !current with
          | Some b -> b
          | None ->
            let b = fresh () in
            current := Some b;
            b
        in
        match s with
        | Ir.Return _ ->
          push b (path, s);
          edge b exit_b;
          current := None
        | Ir.If { cond_pre; then_; else_; _ } ->
          let b =
            match go b (path @ [ Ir.Scond ]) cond_pre with
            | Some b -> b
            | None -> fresh ()
          in
          push b (path, s);
          let join = fresh () in
          let branch sel ss =
            if Array.length ss = 0 then edge b join
            else begin
              let e = fresh () in
              edge b e;
              match go e (path @ [ sel ]) ss with
              | Some last -> edge last join
              | None -> ()
            end
          in
          branch Ir.Sthen then_;
          branch Ir.Selse else_;
          current := Some join
        | Ir.While { cond_pre; body; _ } ->
          let header = fresh () in
          edge b header;
          let h_end =
            match go header (path @ [ Ir.Scond ]) cond_pre with
            | Some x -> x
            | None -> fresh ()
          in
          push h_end (path, s);
          let after = fresh () in
          edge h_end after;
          if Array.length body = 0 then edge h_end header
          else begin
            let be = fresh () in
            edge h_end be;
            match go be (path @ [ Ir.Sbody ]) body with
            | Some last -> edge last header
            | None -> ()
          end;
          current := Some after
        | _ -> push b (path, s))
      ss;
    !current
  in
  let first = fresh () in
  edge entry first;
  (match go first [] body with Some last -> edge last exit_b | None -> ());
  let arr = Array.of_list (List.rev !blocks) in
  Array.iter
    (fun b ->
      b.b_stmts <- Array.of_list (List.rev !(Hashtbl.find stmts b.b_id));
      (* deterministic edge order: as discovered *)
      b.b_succs <- List.rev b.b_succs;
      b.b_preds <- List.rev b.b_preds)
    arr;
  { c_blocks = arr; c_entry = entry.b_id; c_exit = exit_b.b_id }

let of_method (p : Ir.program) (mid : Ir.method_id) : t =
  build (Ir.metho p mid).m_body

(** Visit every statement with its path, in block order (execution order
    within each block). *)
let iter_stmts f (t : t) =
  Array.iter
    (fun b -> Array.iter (fun (path, s) -> f path s) b.b_stmts)
    t.c_blocks

let stmt_count (t : t) =
  Array.fold_left (fun acc b -> acc + Array.length b.b_stmts) 0 t.c_blocks

let pp ppf (t : t) =
  Array.iter
    (fun b ->
      Fmt.pf ppf "B%d%s%s  preds=[%a] succs=[%a]@."
        b.b_id
        (if b.b_id = t.c_entry then " (entry)" else "")
        (if b.b_id = t.c_exit then " (exit)" else "")
        Fmt.(list ~sep:(any ",") int)
        b.b_preds
        Fmt.(list ~sep:(any ",") int)
        b.b_succs;
      Array.iter
        (fun (path, _) -> Fmt.pf ppf "  %s@." (Ir.path_to_string path))
        b.b_stmts)
    t.c_blocks

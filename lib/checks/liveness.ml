(** Live-variable analysis: a backward {!Dataflow} instance over variable
    bitsets. Drives the dead-store / unused-variable lint. *)

open Csc_common
module Ir = Csc_ir.Ir

module BitsDom = struct
  type t = Bits.t

  let equal = Bits.equal

  let join a b =
    let c = Bits.copy a in
    ignore (Bits.union_into ~into:c b);
    c
end

module DF = Dataflow.Make (BitsDom)

type t = { df : DF.result; spec : DF.spec }

let transfer _path (s : Ir.stmt) (live : Bits.t) : Bits.t =
  let out = Bits.copy live in
  (match Ir.def_of s with Some v -> Bits.remove out v | None -> ());
  List.iter (fun v -> ignore (Bits.add out v)) (Ir.uses_of s);
  out

let compute (cfg : Cfg.t) : t =
  let spec =
    DF.
      {
        dir = Dataflow.Backward;
        boundary = Bits.create ();
        bottom = Bits.create ();
        transfer;
      }
  in
  { df = DF.solve spec cfg; spec }

(** [f path stmt ~live_before ~live_after] in execution order:
    [live_after] is the set of variables live just after [stmt]. *)
let iter (t : t) (cfg : Cfg.t) f =
  DF.iter_stmt_facts t.spec cfg t.df (fun p s ~before ~after ->
      f p s ~live_before:before ~live_after:after)

(** Variables live at method entry (used before any definition, e.g.
    parameters — or reads of uninitialized locals). With the backward
    direction, a block's [output] is its execution-entry fact. *)
let live_at_entry (t : t) (cfg : Cfg.t) : Bits.t =
  Bits.copy t.df.DF.output.(Cfg.entry cfg)

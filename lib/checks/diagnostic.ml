(** The shared diagnostic record every checker emits, with text and JSON
    renderers. Diagnostics address statements by method + {!Ir.stmt_path},
    so they survive re-compilation as long as the source does not move. *)

module Ir = Csc_ir.Ir

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  d_check : string;           (** checker name, e.g. "null-deref" *)
  d_severity : severity;
  d_method : Ir.method_id;
  d_path : Ir.stmt_path;      (** [] for method-level diagnostics *)
  d_message : string;
  d_witness : string option;  (** supporting evidence, e.g. the alloc sites *)
}

(** Stable order: method, path, severity, check, message. *)
let compare (a : t) (b : t) : int =
  let c = Int.compare a.d_method b.d_method in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.d_path b.d_path in
    if c <> 0 then c
    else
      let c = Int.compare (severity_rank a.d_severity) (severity_rank b.d_severity) in
      if c <> 0 then c
      else
        let c = String.compare a.d_check b.d_check in
        if c <> 0 then c else String.compare a.d_message b.d_message

let pp_text (p : Ir.program) ppf (d : t) =
  Fmt.pf ppf "%s: [%s] %s at %s%s: %s%a"
    (severity_name d.d_severity)
    d.d_check
    (Ir.method_name p d.d_method)
    (if d.d_path = [] then "<method>" else "stmt ")
    (Ir.path_to_string d.d_path)
    d.d_message
    (Fmt.option (fun ppf w -> Fmt.pf ppf " (%s)" w))
    d.d_witness

(* ------------------------------------------------------------------ JSON *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One diagnostic as a JSON object; see README.md for the schema. *)
let to_json (p : Ir.program) (d : t) : string =
  Printf.sprintf
    "{\"check\":\"%s\",\"severity\":\"%s\",\"method\":\"%s\",\"path\":\"%s\",\
     \"message\":\"%s\"%s}"
    (json_escape d.d_check)
    (severity_name d.d_severity)
    (json_escape (Ir.method_name p d.d_method))
    (json_escape (Ir.path_to_string d.d_path))
    (json_escape d.d_message)
    (match d.d_witness with
    | None -> ""
    | Some w -> Printf.sprintf ",\"witness\":\"%s\"" (json_escape w))

(** A diagnostic list as a JSON array, deterministic: stable-sorted by
    (method, path, severity, check, message) with identical findings
    deduplicated, one object per line. *)
let render_json (p : Ir.program) (ds : t list) : string =
  let ds = List.sort_uniq compare ds in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (to_json p d))
    ds;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(** Count per (check, severity), sorted by check name. *)
let summary (ds : t list) : (string * severity * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let k = (d.d_check, d.d_severity) in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    ds;
  Hashtbl.fold (fun (c, s) n acc -> (c, s, n) :: acc) tbl []
  |> List.sort Stdlib.compare

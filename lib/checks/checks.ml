(** Checker registry: the flow-sensitive, PTA-backed diagnostics suite.

    Every checker consumes the engine-agnostic {!Csc_pta.Solver.result}, so
    any analysis the driver can run (CI, CSC, 2obj, Datalog variants...) can
    back the diagnostics — running a more precise analysis yields fewer
    false alarms, which is the paper's precision claim restated per
    diagnostic instead of per aggregate metric. *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver

type checker = {
  ck_name : string;
  ck_doc : string;
  ck_run : Ir.program -> Solver.result -> Diagnostic.t list;
}

let all : checker list =
  [
    {
      ck_name = Null_check.check_name;
      ck_doc = "flow-sensitive null dereferences (PTA-backed emptiness)";
      ck_run = Null_check.check;
    };
    {
      ck_name = Cast_check.check_name;
      ck_doc = "casts that may fail, flow-refined by reaching definitions";
      ck_run = Cast_check.check;
    };
    {
      ck_name = Devirt.check_name;
      ck_doc = "virtual call sites that cannot be devirtualized";
      ck_run = Devirt.check;
    };
    {
      ck_name = Dead_store.check_name;
      ck_doc = "dead stores and unused variables (PTA-independent)";
      ck_run = Dead_store.check;
    };
  ]

let names = List.map (fun c -> c.ck_name) all

let by_name (name : string) : checker option =
  List.find_opt (fun c -> c.ck_name = name) all

(** Run the selected checkers (default: all). [include_jdk] keeps
    diagnostics located in mini-JDK methods (default off: users cannot fix
    library internals, and the JDK's intentional [return null] defaults
    would dominate the report). *)
let run_all ?(checks : string list option) ?(include_jdk = false)
    (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  let selected =
    match checks with
    | None -> all
    | Some names ->
      List.map
        (fun n ->
          match by_name n with
          | Some c -> c
          | None ->
            Fmt.invalid_arg "unknown checker %S (available: %s)" n
              (String.concat ", " (List.map (fun c -> c.ck_name) all)))
        names
  in
  let ds =
    List.concat_map
      (fun c ->
        Csc_obs.Trace.with_span ~cat:"checks" ("check:" ^ c.ck_name) (fun () ->
            c.ck_run p r))
      selected
  in
  let ds =
    if include_jdk then ds
    else
      List.filter
        (fun (d : Diagnostic.t) ->
          not
            (Csc_lang.Jdk.is_jdk_class
               (Ir.class_name p (Ir.metho p d.Diagnostic.d_method).Ir.m_class)))
        ds
  in
  (* sort_uniq: keep output deterministic and free of duplicate findings *)
  List.sort_uniq Diagnostic.compare ds

(** Diagnostic count per checker, over the given list. *)
let count_by_check (ds : Diagnostic.t list) : (string * int) list =
  List.map
    (fun c ->
      ( c.ck_name,
        List.length
          (List.filter (fun d -> d.Diagnostic.d_check = c.ck_name) ds) ))
    all

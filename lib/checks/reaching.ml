(** Reaching definitions: a forward {!Dataflow} instance over bitsets of
    definition ids. Each statement that defines a variable gets a dense id;
    the fact at a point is the set of definitions that may reach it. Drives
    the flow-refined fail-cast checker. *)

open Csc_common
module Ir = Csc_ir.Ir

type def = {
  def_id : int;
  def_path : Ir.stmt_path;
  def_stmt : Ir.stmt;
  def_var : Ir.var_id;
}

module DF = Dataflow.Make (Liveness.BitsDom)

type t = {
  defs : def array;
  by_var : (Ir.var_id, Bits.t) Hashtbl.t;  (** kill sets *)
  by_path : (Ir.stmt_path, int) Hashtbl.t;
  df : DF.result;
  spec : DF.spec;
}

let compute (cfg : Cfg.t) : t =
  let defs = ref [] and ndefs = ref 0 in
  let by_var = Hashtbl.create 32 in
  let by_path = Hashtbl.create 32 in
  Cfg.iter_stmts
    (fun path s ->
      match Ir.def_of s with
      | Some v ->
        let id = !ndefs in
        incr ndefs;
        defs := { def_id = id; def_path = path; def_stmt = s; def_var = v }
                :: !defs;
        Hashtbl.replace by_path path id;
        let kill =
          match Hashtbl.find_opt by_var v with
          | Some b -> b
          | None ->
            let b = Bits.create () in
            Hashtbl.add by_var v b;
            b
        in
        ignore (Bits.add kill id)
      | None -> ())
    cfg;
  let defs = Array.of_list (List.rev !defs) in
  let transfer path (s : Ir.stmt) (d : Bits.t) : Bits.t =
    match Ir.def_of s with
    | None -> d
    | Some v ->
      let out = Bits.copy d in
      (match Hashtbl.find_opt by_var v with
      | Some kill -> Bits.iter (fun i -> Bits.remove out i) kill
      | None -> ());
      (match Hashtbl.find_opt by_path path with
      | Some id -> ignore (Bits.add out id)
      | None -> ());
      out
  in
  let spec =
    DF.
      {
        dir = Dataflow.Forward;
        boundary = Bits.create ();
        bottom = Bits.create ();
        transfer;
      }
  in
  { defs; by_var; by_path; df = DF.solve spec cfg; spec }

(** [f path stmt ~reaching] with the definitions reaching *before* [stmt]. *)
let iter (t : t) (cfg : Cfg.t) f =
  DF.iter_stmt_facts t.spec cfg t.df (fun p s ~before ~after:_ ->
      f p s ~reaching:before)

(** The definitions of [v] within a reaching set. *)
let defs_of_var (t : t) (reaching : Bits.t) (v : Ir.var_id) : def list =
  match Hashtbl.find_opt t.by_var v with
  | None -> []
  | Some mine ->
    Bits.fold
      (fun id acc -> if Bits.mem mine id then t.defs.(id) :: acc else acc)
      reaching []
    |> List.rev

(** Control-flow graphs: basic blocks with pred/succ edges, linearized from
    the structured [If]/[While] IR. Every statement lands in exactly one
    block, labelled with its {!Csc_ir.Ir.stmt_path}; loop headers re-run
    [cond_pre] exactly like the interpreter does. *)

module Ir = Csc_ir.Ir

type block = {
  b_id : int;
  mutable b_stmts : (Ir.stmt_path * Ir.stmt) array;
  mutable b_succs : int list;
  mutable b_preds : int list;
}

type t = {
  c_blocks : block array;
  c_entry : int;  (** dedicated empty entry block *)
  c_exit : int;   (** dedicated empty exit block; [Return] edges here *)
}

val build : Ir.stmt array -> t
val of_method : Ir.program -> Ir.method_id -> t

val block : t -> int -> block
val n_blocks : t -> int
val entry : t -> int
val exit_ : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list

(** Visit every statement with its path, in block order. *)
val iter_stmts : (Ir.stmt_path -> Ir.stmt -> unit) -> t -> unit

val stmt_count : t -> int
val pp : Format.formatter -> t -> unit

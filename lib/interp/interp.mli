(** Concrete interpreter for the IR — the substrate of the paper's §5.1
    recall experiment and of the runnable examples.

    Executes a program from its [main], recording output, dynamically
    reachable methods and dynamic call edges. Any sound static analysis must
    over-approximate the latter two. *)

module Ir = Csc_ir.Ir

type value =
  | VNull
  | VInt of int
  | VBool of bool
  | VRef of int  (** heap address *)

type outcome = {
  output : string list;  (** [System.print] lines, in order *)
  dyn_reachable : Csc_common.Bits.t;  (** method ids entered at least once *)
  dyn_edges : (Ir.call_id * Ir.method_id) list;  (** dynamic call edges *)
  steps : int;
  dyn_pt : Csc_common.Bits.t array;
      (** per-variable observed allocation sites, indexed by [var_id] —
          the dynamic counterpart of a solver's [r_pt]. [[||]] unless
          points-to recording was enabled. *)
  dyn_fail_casts : Csc_common.Bits.t;
      (** cast sites observed to fail at least once *)
  dyn_taint_sinks : Csc_common.Bits.t;
      (** call sites where a dynamically tainted value reached a sink
          argument; empty unless taint hooks were installed *)
  halted : string option;
      (** [Some msg] iff execution stopped on a runtime error (only
          {!run_trace} produces this — {!run} raises instead). Facts
          recorded before the halt remain valid ground truth. *)
}

(** Raised on runtime errors: null dereference, failing cast, index out of
    bounds, division by zero, or an exhausted step budget. *)
exception Runtime_error of string

(** Dynamic taint instrumentation, keyed by the *resolved* callee of every
    call: a source call taints the address it returns, a sanitizer call
    untaints the address it returns, and a sink call records its call site
    in [dyn_taint_sinks] whenever some reference argument is tainted at
    entry. Taint lives on heap addresses, so it follows the value through
    copies, fields, containers and arrays for free. *)
type taint_hooks = {
  th_source : Ir.method_id -> bool;
  th_sink : Ir.method_id -> bool;
  th_sanitizer : Ir.method_id -> bool;
}

(** [run ?max_steps prog] executes [prog.main] to completion.
    [max_steps] (default 50M) bounds execution so generator or frontend bugs
    surface as {!Runtime_error} instead of hangs. [record_pts] (default
    [false] — it costs on the interpreter hot path) additionally fills
    [dyn_pt]. [taint] installs dynamic taint instrumentation. *)
val run :
  ?max_steps:int -> ?record_pts:bool -> ?taint:taint_hooks -> Ir.program ->
  outcome

(** [run_trace ?max_steps prog] is {!run} with points-to recording always on
    and runtime errors captured rather than raised: on a runtime error the
    partial trace observed so far is returned with [halted = Some msg]. The
    soundness fuzzer uses this so generated programs that trip over an
    unguarded cast or null field still contribute ground truth. *)
val run_trace : ?max_steps:int -> ?taint:taint_hooks -> Ir.program -> outcome

(** Concrete interpreter for the IR.

    This is the substrate for the paper's §5.1 recall experiment: it executes
    a program and records the *dynamically* reachable methods and call-graph
    edges, which every sound static analysis must over-approximate. It also
    powers the runnable examples (MiniJava programs actually run) and the
    soundness fuzzer ({!Csc_fuzz}), which additionally needs per-variable
    allocation-site ground truth and observed cast outcomes. *)

open Csc_common
module Ir = Csc_ir.Ir

type value =
  | VNull
  | VInt of int
  | VBool of bool
  | VRef of int  (** heap address *)

type heap_cell =
  | HObj of { cls : Ir.class_id; fields : (Ir.field_id, value) Hashtbl.t }
  | HArr of { elems : value array }
  | HStr of string

type outcome = {
  output : string list;              (** [System.print] lines, in order *)
  dyn_reachable : Bits.t;            (** method ids entered at least once *)
  dyn_edges : (Ir.call_id * Ir.method_id) list;  (** dynamic call edges *)
  steps : int;
  dyn_pt : Bits.t array;
      (** per-variable observed allocation sites (indexed by [var_id]);
          [[||]] unless [record_pts] was set *)
  dyn_fail_casts : Bits.t;           (** cast sites observed to fail *)
  dyn_taint_sinks : Bits.t;
      (** call sites where a dynamically tainted value reached a sink
          argument; empty unless taint hooks were installed *)
  halted : string option;
      (** [Some msg] iff execution stopped on a runtime error; everything
          recorded up to the halt is still valid ground truth *)
}

(** Dynamic taint instrumentation: classifies callees by method id. A call
    to a source taints the returned address, a call to a sanitizer untaints
    it, and a call to a sink records the call site in [dyn_taint_sinks]
    whenever some reference argument carries taint. *)
type taint_hooks = {
  th_source : Ir.method_id -> bool;
  th_sink : Ir.method_id -> bool;
  th_sanitizer : Ir.method_id -> bool;
}

exception Runtime_error of string
exception Return_value of value

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type state = {
  prog : Ir.program;
  heap : heap_cell Vec.t;
  sites : int Vec.t;  (* heap address -> allocation site, parallel to heap *)
  statics : (Ir.field_id, value) Hashtbl.t;
  mutable out : string list;
  reach : Bits.t;
  edges : (Ir.call_id * Ir.method_id, unit) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
  var_pts : Bits.t array;  (* per-var observed alloc sites; [||] = off *)
  fail_casts : Bits.t;
  taint : taint_hooks option;
  tainted : Bits.t;        (* heap addresses currently carrying taint *)
  taint_sinks : Bits.t;    (* call sites where taint reached a sink arg *)
}

let alloc st cell site =
  let addr = Vec.push_idx st.heap cell in
  Vec.set_grow st.sites addr site;
  addr

let default_value (ty : Ir.typ) : value =
  match ty with
  | Tint -> VInt 0
  | Tbool -> VBool false
  | _ -> VNull

let cell st addr = Vec.get st.heap addr

let obj_fields st addr =
  match cell st addr with
  | HObj o -> o.fields
  | _ -> error "not an object"

let value_class st (v : value) : Ir.class_id option =
  match v with
  | VRef a -> (
    match cell st a with
    | HObj o -> Some o.cls
    | HStr _ -> Some st.prog.string_cls
    | HArr _ -> None)
  | _ -> None

(** Runtime type check for casts: conservative nominal check mirroring
    {!Ir.subtype}. *)
let cast_ok st (v : value) (ty : Ir.typ) : bool =
  match v with
  | VNull -> true
  | VRef a -> (
    match (cell st a, ty) with
    | HObj o, Tclass c -> Ir.subclass_of st.prog o.cls c
    | HStr _, Tclass c -> Ir.subclass_of st.prog st.prog.string_cls c
    | HArr _, Tclass c -> c = st.prog.object_cls
    | HArr _, Tarray _ -> true (* element types are erased at runtime *)
    | _ -> false)
  | VInt _ | VBool _ -> false

let string_of_value st = function
  | VNull -> "null"
  | VInt n -> string_of_int n
  | VBool b -> string_of_bool b
  | VRef a -> (
    match cell st a with
    | HObj o -> Printf.sprintf "%s@%d" (Ir.class_name st.prog o.cls) a
    | HArr r -> Printf.sprintf "array[%d]@%d" (Array.length r.elems) a
    | HStr s -> s)

(* frames map global var ids to values *)
type frame = (Ir.var_id, value) Hashtbl.t

let get_var (fr : frame) v =
  match Hashtbl.find_opt fr v with Some x -> x | None -> VNull

(* the fuzzer's ground truth: every ref-valued assignment contributes the
   value's allocation site to the (context-insensitively merged) observed
   points-to set of the variable — the dynamic counterpart of [r_pt] *)
let set_var st (fr : frame) v x =
  (if Array.length st.var_pts > 0 then
     match x with
     | VRef a -> ignore (Bits.add st.var_pts.(v) (Vec.get st.sites a))
     | _ -> ());
  Hashtbl.replace fr v x

let rec exec_stmts st fr (body : Ir.stmt array) : unit =
  Array.iter (exec_stmt st fr) body

and exec_stmt st fr (s : Ir.stmt) : unit =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step budget exhausted (non-termination?)";
  match s with
  | Nop -> ()
  | New { lhs; cls; site } ->
    let addr = alloc st (HObj { cls; fields = Hashtbl.create 4 }) site in
    set_var st fr lhs (VRef addr)
  | NewArray { lhs; len; site; _ } -> (
    match get_var fr len with
    | VInt n when n >= 0 ->
      let addr = alloc st (HArr { elems = Array.make n VNull }) site in
      set_var st fr lhs (VRef addr)
    | VInt n -> error "negative array size %d" n
    | _ -> error "array size is not an int")
  | StrConst { lhs; value; site } ->
    let addr = alloc st (HStr value) site in
    set_var st fr lhs (VRef addr)
  | ConstInt { lhs; value } -> set_var st fr lhs (VInt value)
  | ConstBool { lhs; value } -> set_var st fr lhs (VBool value)
  | ConstNull { lhs } -> set_var st fr lhs VNull
  | Copy { lhs; rhs } -> set_var st fr lhs (get_var fr rhs)
  | Cast { lhs; ty; rhs; site } ->
    let v = get_var fr rhs in
    if cast_ok st v ty then set_var st fr lhs v
    else begin
      ignore (Bits.add st.fail_casts site);
      error "ClassCastException: cannot cast %s" (string_of_value st v)
    end
  | InstanceOf { lhs; ty; rhs; _ } ->
    (* null instanceof T is false, unlike casts *)
    let v = get_var fr rhs in
    set_var st fr lhs (VBool (v <> VNull && cast_ok st v ty))
  | Load { lhs; base; fld } -> (
    match get_var fr base with
    | VRef a ->
      let fields = obj_fields st a in
      let v =
        match Hashtbl.find_opt fields fld with
        | Some v -> v
        | None -> default_value (Ir.field st.prog fld).f_ty
      in
      set_var st fr lhs v
    | VNull -> error "NullPointerException: load of field %s"
                 (Ir.field st.prog fld).f_name
    | _ -> error "field load on non-object")
  | Store { base; fld; rhs } -> (
    match get_var fr base with
    | VRef a -> Hashtbl.replace (obj_fields st a) fld (get_var fr rhs)
    | VNull -> error "NullPointerException: store to field %s"
                 (Ir.field st.prog fld).f_name
    | _ -> error "field store on non-object")
  | ALoad { lhs; arr; idx } -> (
    match (get_var fr arr, get_var fr idx) with
    | VRef a, VInt i -> (
      match cell st a with
      | HArr r ->
        if i < 0 || i >= Array.length r.elems then
          error "ArrayIndexOutOfBounds: %d of %d" i (Array.length r.elems);
        set_var st fr lhs r.elems.(i)
      | _ -> error "indexing a non-array")
    | VNull, _ -> error "NullPointerException: array load"
    | _ -> error "bad array load")
  | AStore { arr; idx; rhs } -> (
    match (get_var fr arr, get_var fr idx) with
    | VRef a, VInt i -> (
      match cell st a with
      | HArr r ->
        if i < 0 || i >= Array.length r.elems then
          error "ArrayIndexOutOfBounds: %d of %d" i (Array.length r.elems);
        r.elems.(i) <- get_var fr rhs
      | _ -> error "storing into a non-array")
    | VNull, _ -> error "NullPointerException: array store"
    | _ -> error "bad array store")
  | ALen { lhs; arr } -> (
    match get_var fr arr with
    | VRef a -> (
      match cell st a with
      | HArr r -> set_var st fr lhs (VInt (Array.length r.elems))
      | HStr s -> set_var st fr lhs (VInt (String.length s))
      | _ -> error "length of non-array")
    | VNull -> error "NullPointerException: array length"
    | _ -> error "bad array length")
  | SLoad { lhs; fld } ->
    let v =
      match Hashtbl.find_opt st.statics fld with
      | Some v -> v
      | None -> default_value (Ir.field st.prog fld).f_ty
    in
    set_var st fr lhs v
  | SStore { fld; rhs } -> Hashtbl.replace st.statics fld (get_var fr rhs)
  | Binop { lhs; op; a; b } ->
    set_var st fr lhs (eval_binop st op (get_var fr a) (get_var fr b))
  | Unop { lhs; op; a } -> (
    match (op, get_var fr a) with
    | Not, VBool b -> set_var st fr lhs (VBool (not b))
    | Neg, VInt n -> set_var st fr lhs (VInt (-n))
    | _ -> error "bad unary operand")
  | Invoke { lhs; kind; recv; target; args; site } ->
    let argv = Array.map (get_var fr) args in
    let recv_v = Option.map (get_var fr) recv in
    let callee =
      match kind with
      | Static | Special -> target
      | Virtual -> (
        match recv_v with
        | Some (VRef a) -> (
          match value_class st (VRef a) with
          | Some cls -> (
            let name = (Ir.metho st.prog target).m_name in
            match Ir.dispatch st.prog cls name with
            | Some m -> m
            | None -> error "no implementation of %s in %s" name
                        (Ir.class_name st.prog cls))
          | None -> error "virtual call on array")
        | Some VNull -> error "NullPointerException: call to %s"
                          (Ir.method_name st.prog target)
        | _ -> error "virtual call on non-object")
    in
    Hashtbl.replace st.edges (site, callee) ();
    (match st.taint with
    | Some h when h.th_sink callee ->
      if
        Array.exists
          (function VRef a -> Bits.mem st.tainted a | _ -> false)
          argv
      then ignore (Bits.add st.taint_sinks site)
    | _ -> ());
    let result = call_method st callee recv_v argv in
    (match (st.taint, result) with
    | Some h, VRef a ->
      if h.th_source callee then ignore (Bits.add st.tainted a)
      else if h.th_sanitizer callee then Bits.remove st.tainted a
    | _ -> ());
    (match lhs with Some l -> set_var st fr l result | None -> ())
  | Return None -> raise (Return_value VNull)
  | Return (Some v) -> raise (Return_value (get_var fr v))
  | If { cond; then_; else_; _ } -> (
    match get_var fr cond with
    | VBool true -> exec_stmts st fr then_
    | VBool false -> exec_stmts st fr else_
    | _ -> error "non-boolean condition")
  | While { cond; cond_pre; body } ->
    let rec loop () =
      exec_stmts st fr cond_pre;
      match get_var fr cond with
      | VBool true ->
        exec_stmts st fr body;
        loop ()
      | VBool false -> ()
      | _ -> error "non-boolean condition"
    in
    loop ()
  | Print { arg } -> st.out <- string_of_value st (get_var fr arg) :: st.out

and eval_binop st op (a : value) (b : value) : value =
  let int_op f =
    match (a, b) with
    | VInt x, VInt y -> VInt (f x y)
    | _ -> error "non-int operands"
  in
  let cmp_op f =
    match (a, b) with
    | VInt x, VInt y -> VBool (f x y)
    | _ -> error "non-int comparison"
  in
  ignore st;
  match op with
  | Add -> int_op ( + )
  | Sub -> int_op ( - )
  | Mul -> int_op ( * )
  | Div -> int_op (fun x y -> if y = 0 then error "division by zero" else x / y)
  | Mod -> int_op (fun x y -> if y = 0 then error "modulo by zero" else x mod y)
  | Lt -> cmp_op ( < )
  | Le -> cmp_op ( <= )
  | Gt -> cmp_op ( > )
  | Ge -> cmp_op ( >= )
  | Eq -> VBool (a = b)
  | Ne -> VBool (a <> b)
  | And -> (
    match (a, b) with VBool x, VBool y -> VBool (x && y) | _ -> error "non-bool &&")
  | Or -> (
    match (a, b) with VBool x, VBool y -> VBool (x || y) | _ -> error "non-bool ||")

and call_method st (mid : Ir.method_id) (recv : value option) (argv : value array)
    : value =
  ignore (Bits.add st.reach mid);
  let m = Ir.metho st.prog mid in
  let fr : frame = Hashtbl.create 16 in
  (match (m.m_this, recv) with
  | Some this, Some v -> set_var st fr this v
  | Some _, None -> error "instance method without receiver"
  | None, _ -> ());
  if Array.length m.m_params <> Array.length argv then
    error "arity mismatch calling %s" (Ir.method_name st.prog mid);
  Array.iteri (fun i p -> set_var st fr p argv.(i)) m.m_params;
  match exec_stmts st fr m.m_body with
  | () -> VNull (* fell off the end *)
  | exception Return_value v -> v

let make_state ~max_steps ~record_pts ?taint (prog : Ir.program) : state =
  {
    prog;
    heap = Vec.create (HStr "");
    sites = Vec.create (-1);
    statics = Hashtbl.create 16;
    out = [];
    reach = Bits.create ();
    edges = Hashtbl.create 256;
    steps = 0;
    max_steps;
    var_pts =
      (if record_pts then
         Array.init (Array.length prog.vars) (fun _ -> Bits.create ())
       else [||]);
    fail_casts = Bits.create ();
    taint;
    tainted = Bits.create ();
    taint_sinks = Bits.create ();
  }

let outcome_of_state st ~halted : outcome =
  {
    output = List.rev st.out;
    dyn_reachable = st.reach;
    dyn_edges = Hashtbl.fold (fun k () acc -> k :: acc) st.edges [];
    steps = st.steps;
    dyn_pt = st.var_pts;
    dyn_fail_casts = st.fail_casts;
    dyn_taint_sinks = st.taint_sinks;
    halted;
  }

(** Run [prog] from its [main]. [max_steps] bounds execution (default 50M);
    [record_pts] (default false, it costs on the hot path) additionally
    fills [dyn_pt]. [taint] installs dynamic taint instrumentation. *)
let run ?(max_steps = 50_000_000) ?(record_pts = false) ?taint
    (prog : Ir.program) : outcome =
  let st = make_state ~max_steps ~record_pts ?taint prog in
  ignore (call_method st prog.main None [||]);
  outcome_of_state st ~halted:None

(** Like {!run} with [record_pts], but a runtime error halts execution
    instead of raising: the outcome carries everything observed up to the
    halt (still a valid under-approximation of any sound static analysis)
    plus the error in [halted]. The soundness fuzzer is built on this. *)
let run_trace ?(max_steps = 50_000_000) ?taint (prog : Ir.program) : outcome =
  let st = make_state ~max_steps ~record_pts:true ?taint prog in
  match ignore (call_method st prog.main None [||]) with
  | () -> outcome_of_state st ~halted:None
  | exception Runtime_error msg -> outcome_of_state st ~halted:(Some msg)

type metric =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      labels : (string * string) list;
      bounds : float list;
      counts : int list;
      sum : float;
      count : int;
    }

type t = { sn_metrics : metric list }

let metric_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let metric_labels = function
  | Counter { labels; _ } | Gauge { labels; _ } | Histogram { labels; _ } ->
    labels

let metric_key m = (metric_name m, metric_labels m)

let of_metrics (ms : metric list) : t =
  { sn_metrics = List.stable_sort (fun a b -> compare (metric_key a) (metric_key b)) ms }

let metrics t = t.sn_metrics
let is_empty t = t.sn_metrics = []

let with_counter t name value =
  of_metrics (Counter { name; labels = []; value } :: t.sn_metrics)

let counter_value ?labels t name =
  let hits =
    List.filter_map
      (function
        | Counter c when c.name = name -> (
          match labels with
          | None -> Some c.value
          | Some l when l = c.labels -> Some c.value
          | Some _ -> None)
        | _ -> None)
      t.sn_metrics
  in
  match hits with [] -> None | vs -> Some (List.fold_left ( + ) 0 vs)

let gauge_value ?labels t name =
  List.find_map
    (function
      | Gauge g when g.name = name -> (
        match labels with
        | None -> Some g.value
        | Some l when l = g.labels -> Some g.value
        | Some _ -> None)
      | _ -> None)
    t.sn_metrics

(* ------------------------------------------------------------------ JSON *)

let labels_json labels : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let metric_json (m : metric) : Json.t =
  let base kind name labels rest =
    Json.Obj
      (("type", Json.Str kind) :: ("name", Json.Str name)
      :: (if labels = [] then rest else ("labels", labels_json labels) :: rest))
  in
  match m with
  | Counter { name; labels; value } ->
    base "counter" name labels [ ("value", Json.Int value) ]
  | Gauge { name; labels; value } ->
    base "gauge" name labels [ ("value", Json.Float value) ]
  | Histogram { name; labels; bounds; counts; sum; count } ->
    base "histogram" name labels
      [
        ("bounds", Json.List (List.map (fun b -> Json.Float b) bounds));
        ("counts", Json.List (List.map (fun c -> Json.Int c) counts));
        ("sum", Json.Float sum);
        ("count", Json.Int count);
      ]

let to_json t : Json.t =
  Json.Obj [ ("metrics", Json.List (List.map metric_json t.sn_metrics)) ]

let metric_of_json (j : Json.t) : (metric, string) result =
  let ( let* ) = Result.bind in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "metric: missing or bad %S" name)
  in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.get_string v))
        kvs
    | _ -> []
  in
  let* kind = req "type" Json.get_string in
  let* name = req "name" Json.get_string in
  match kind with
  | "counter" ->
    let* value = req "value" Json.get_int in
    Ok (Counter { name; labels; value })
  | "gauge" ->
    let* value = req "value" Json.get_float in
    Ok (Gauge { name; labels; value })
  | "histogram" ->
    let* bounds = req "bounds" Json.get_list in
    let* counts = req "counts" Json.get_list in
    let* sum = req "sum" Json.get_float in
    let* count = req "count" Json.get_int in
    let floats l = List.filter_map Json.get_float l in
    let ints l = List.filter_map Json.get_int l in
    Ok
      (Histogram
         { name; labels; bounds = floats bounds; counts = ints counts; sum; count })
  | k -> Error ("unknown metric type " ^ k)

let of_json (j : Json.t) : (t, string) result =
  match Json.member "metrics" j with
  | Some (Json.List ms) ->
    let rec go acc = function
      | [] -> Ok { sn_metrics = List.rev acc }
      | m :: rest -> (
        match metric_of_json m with
        | Ok m -> go (m :: acc) rest
        | Error e -> Error e)
    in
    go [] ms
  | _ -> Error "snapshot: missing \"metrics\" array"

let of_json_exn j =
  match of_json j with Ok t -> t | Error e -> failwith ("Snapshot.of_json: " ^ e)

(* ------------------------------------------------------------------ text *)

let label_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else Printf.sprintf "%.3f" f

let metric_line (m : metric) : string =
  match m with
  | Counter { name; labels; value } ->
    Printf.sprintf "%s%s=%d" name (label_str labels) value
  | Gauge { name; labels; value } ->
    Printf.sprintf "%s%s=%s" name (label_str labels) (float_str value)
  | Histogram { name; labels; sum; count; _ } ->
    Printf.sprintf "%s%s=%d/%s" name (label_str labels) count (float_str sum)

let to_line t = String.concat " " (List.map metric_line t.sn_metrics)

let to_text t =
  let rows =
    List.map
      (fun m ->
        let k = metric_name m ^ label_str (metric_labels m) in
        let v =
          match m with
          | Counter { value; _ } -> string_of_int value
          | Gauge { value; _ } -> float_str value
          | Histogram { sum; count; _ } ->
            Printf.sprintf "count=%d sum=%s" count (float_str sum)
        in
        (k, v))
      t.sn_metrics
  in
  let w = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows in
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "%-*s %s" w k v) rows)

let equal a b = a = b
let pp ppf t = Format.pp_print_string ppf (to_line t)

(** A registry of typed metrics with direct-mutation handles.

    Hot loops obtain a {!counter}/{!gauge} handle once (at solver creation)
    and update it with a single field write — no hashing on the hot path, so
    instrumentation costs the same as the mutable-record stats it replaces.
    {!snapshot} freezes the registry into a {!Snapshot.t} at any time, even
    mid-run (the solver's timeout path snapshots the aborted state). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** Handles are memoized per (name, labels): a second registration returns
    the same handle. *)
val counter : t -> ?labels:(string * string) list -> string -> counter

val gauge : t -> ?labels:(string * string) list -> string -> gauge

(** [buckets] are ascending upper bounds; an overflow bucket is implicit. *)
val histogram :
  t -> ?labels:(string * string) list -> buckets:float list -> string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int

(** The identity a handle was registered under (e.g. to key attribution
    rows off an existing counter's name/labels). *)
val counter_name : counter -> string

val counter_labels : counter -> (string * string) list
val set : gauge -> float -> unit

(** Keep the maximum of all observations (e.g. peak heap). *)
val set_max : gauge -> float -> unit

val gauge_value : gauge -> float
val observe : histogram -> float -> unit
val snapshot : t -> Snapshot.t

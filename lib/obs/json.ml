type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- printer *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* shortest decimal form that re-parses to the same IEEE double, always with
   a '.' or exponent so the parser keeps it a Float *)
let float_repr (f : float) : string =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf (v : t) =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf x)
      kvs;
    Buffer.add_char buf '}'

let rec pretty_buffer buf indent (v : t) =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | List (_ :: _ as l) ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        pretty_buffer buf (indent + 2) x)
      l;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj (_ :: _ as kvs) ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        pretty_buffer buf (indent + 2) x)
      kvs;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'
  | v -> to_buffer buf v

let to_string ?(pretty = false) (v : t) : string =
  let buf = Buffer.create 256 in
  if pretty then pretty_buffer buf 0 v else to_buffer buf v;
  Buffer.contents buf

(* ----------------------------------------------------------------- parser *)

exception Parse_error of int * string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape"
               else begin
                 let code =
                   try int_of_string ("0x" ^ String.sub s !pos 4)
                   with _ -> fail "bad \\u escape"
                 in
                 pos := !pos + 4;
                 (* encode as UTF-8 (the escaper only emits control chars,
                    but accept the full BMP for robustness) *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                 end
               end
             | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some '.' ->
      is_float := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let tok = String.sub s start (!pos - start) in
    if tok = "" || tok = "-" then fail "bad number"
    else if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string_body () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some '"' -> Str (parse_string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage" else v
  with Parse_error (p, msg) ->
    failwith (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let parse (s : string) : (t, string) result =
  match parse_exn s with v -> Ok v | exception Failure msg -> Error msg

(* -------------------------------------------------------------- accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

(* ----------------------------------------------------- versioned envelopes *)

let schema_version = 1

let with_schema (fields : (string * t) list) : t =
  Obj (("schema", Int schema_version) :: fields)

let error ~code msg : t =
  Obj [ ("code", Str code); ("message", Str msg) ]

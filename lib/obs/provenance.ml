type reason = Seed of { label : string } | Flow of { src : int; via : string }

type t = {
  pts : (int * int, reason) Hashtbl.t;  (* (ptr, obj) -> first derivation *)
  calls : (int * int, int option) Hashtbl.t;  (* (site, callee) -> receiver *)
  max_records : int;
  mutable dropped : int;
}

let create ?(max_records = max_int) () =
  {
    pts = Hashtbl.create 4096;
    calls = Hashtbl.create 256;
    max_records = (if max_records < 0 then 0 else max_records);
    dropped = 0;
  }

let full t = Hashtbl.length t.pts + Hashtbl.length t.calls >= t.max_records

let record_seed t ~ptr ~obj ~label =
  if not (Hashtbl.mem t.pts (ptr, obj)) then
    if full t then t.dropped <- t.dropped + 1
    else Hashtbl.add t.pts (ptr, obj) (Seed { label })

let record_flow t ~ptr ~obj ~src ~via =
  if not (Hashtbl.mem t.pts (ptr, obj)) then
    if full t then t.dropped <- t.dropped + 1
    else Hashtbl.add t.pts (ptr, obj) (Flow { src; via })

let record_call t ~site ~callee ~recv =
  if not (Hashtbl.mem t.calls (site, callee)) then
    if full t then t.dropped <- t.dropped + 1
    else Hashtbl.add t.calls (site, callee) recv

let reason t ~ptr ~obj = Hashtbl.find_opt t.pts (ptr, obj)
let call_reason t ~site ~callee = Hashtbl.find_opt t.calls (site, callee)

let chain ?(limit = 64) t ~ptr ~obj : (int * reason) list =
  let visited = Hashtbl.create 16 in
  let rec go acc p n =
    if n >= limit || Hashtbl.mem visited p then List.rev acc
    else begin
      Hashtbl.add visited p ();
      match Hashtbl.find_opt t.pts (p, obj) with
      | None -> List.rev acc
      | Some (Seed _ as r) -> List.rev ((p, r) :: acc)
      | Some (Flow { src; _ } as r) -> go ((p, r) :: acc) src (n + 1)
    end
  in
  go [] ptr 0

let iter_calls t f =
  Hashtbl.iter (fun (site, callee) recv -> f ~site ~callee ~recv) t.calls

let size t = Hashtbl.length t.pts + Hashtbl.length t.calls
let dropped t = t.dropped

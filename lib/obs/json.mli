(** A minimal JSON tree with a printer and a parser.

    The repo deliberately carries no external JSON dependency; this module is
    the single JSON substrate shared by metric snapshots, trace files, bench
    reports and the diagnostics of [csc_checks]-style clients. The printer
    emits floats so that they re-parse to the identical IEEE value, which is
    what makes [Snapshot.of_json (Snapshot.to_json s) = s] hold exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** printed with a ['.'] or exponent, never as an int *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact by default; [~pretty:true] indents with two spaces. Non-finite
    floats are not representable in JSON and print as [null]. *)
val to_string : ?pretty:bool -> t -> string

(** Append the compact form. *)
val to_buffer : Buffer.t -> t -> unit

(** Escape a string body (no surrounding quotes). *)
val escape : string -> string

(** Parse one JSON document (trailing whitespace allowed). *)
val parse : string -> (t, string) result

(** Like {!parse}; raises [Failure] with a position message. *)
val parse_exn : string -> t

(** {2 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
val get_int : t -> int option

(** Accepts [Int] too. *)
val get_float : t -> float option

val get_string : t -> string option
val get_list : t -> t list option
val get_bool : t -> bool option

(** {2 Versioned envelopes}

    Every top-level machine-readable document this repo emits (driver
    outcomes, check/taint diagnostics, profile reports, bench experiment
    files, server replies) carries a [("schema", Int schema_version)] first
    member so clients can detect format drift. *)

(** Current wire/report schema version: [1]. *)
val schema_version : int

(** [with_schema fields] is [Obj] with [("schema", Int schema_version)]
    prepended. *)
val with_schema : (string * t) list -> t

(** The one shared error-object shape:
    [{"code": code, "message": msg}]. *)
val error : code:string -> string -> t

(** An immutable, structured view of a metrics registry.

    Snapshots replace the preformatted one-line stat strings the engines used
    to carry: every consumer (CLI, bench JSON, tests, trace args) reads typed
    metrics instead of re-parsing text. [of_json (to_json s) = s] holds
    exactly for snapshots built from finite floats. *)

type metric =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      labels : (string * string) list;
      bounds : float list;  (** upper bucket bounds, ascending *)
      counts : int list;    (** per-bucket counts + one overflow bucket *)
      sum : float;
      count : int;
    }

type t

val metric_name : metric -> string
val metric_labels : metric -> (string * string) list

(** Build a snapshot; metrics are ordered by (name, labels) so renderings
    and comparisons are deterministic. *)
val of_metrics : metric list -> t

val metrics : t -> metric list
val is_empty : t -> bool

(** Append a counter (used for registry-external facts, e.g. the provenance
    record count). *)
val with_counter : t -> string -> int -> t

(** Counter value; with [labels] matches exactly, otherwise the sum over all
    label sets of that name. [None] if no such counter exists. *)
val counter_value : ?labels:(string * string) list -> t -> string -> int option

val gauge_value : ?labels:(string * string) list -> t -> string -> float option

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val of_json_exn : Json.t -> t

(** One metric per line, aligned — for verbose/text reports. *)
val to_text : t -> string

(** Compact [name=value name{k=v}=value ...] single line — for CLI output. *)
val to_line : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type state = { file : string; t0 : float; buf : Buffer.t; mutable n : int }

let state : state option ref = ref None

let start ~file =
  state := Some { file; t0 = Unix.gettimeofday (); buf = Buffer.create 4096; n = 0 }

let active () = !state <> None

let ts st = (Unix.gettimeofday () -. st.t0) *. 1e6

let emit st (fields : (string * Json.t) list) =
  if st.n > 0 then Buffer.add_string st.buf ",\n";
  st.n <- st.n + 1;
  Json.to_buffer st.buf (Json.Obj fields)

let common name ph ~ts:t =
  [
    ("name", Json.Str name);
    ("ph", Json.Str ph);
    ("ts", Json.Float t);
    ("pid", Json.Int 1);
    ("tid", Json.Int 1);
  ]

let with_span ?cat ?(args = []) name f =
  match !state with
  | None -> f ()
  | Some st ->
    let t_start = ts st in
    let finish () =
      let dur = ts st -. t_start in
      emit st
        (common name "X" ~ts:t_start
        @ [ ("dur", Json.Float dur) ]
        @ (match cat with Some c -> [ ("cat", Json.Str c) ] | None -> [])
        @ if args = [] then [] else [ ("args", Json.Obj args) ])
    in
    Fun.protect ~finally:finish f

let instant ?(args = []) name =
  match !state with
  | None -> ()
  | Some st ->
    emit st
      (common name "i" ~ts:(ts st)
      @ [ ("s", Json.Str "t") ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])

let counter name series =
  match !state with
  | None -> ()
  | Some st ->
    emit st
      (common name "C" ~ts:(ts st)
      @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) series)) ])

let sample_gc () =
  match !state with
  | None -> ()
  | Some _ ->
    let s = Gc.quick_stat () in
    counter "gc"
      [
        ("heap_MB", float_of_int (s.Gc.heap_words * (Sys.word_size / 8)) /. 1e6);
        ("major_collections", float_of_int s.Gc.major_collections);
        ("minor_collections", float_of_int s.Gc.minor_collections);
      ]

let finish () =
  match !state with
  | None -> ()
  | Some st ->
    state := None;
    let oc = open_out st.file in
    output_string oc "{\"traceEvents\":[\n";
    output_string oc (Buffer.contents st.buf);
    output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
    close_out oc

(** Cost-attribution tables: where does the solver spend its effort?

    Global counters ({!Registry}) say *how much* work a run did; this layer
    says *where* — per method, per pointer, and per rule. Engines that hold a
    [t option] record every worklist pop (with its delta cardinality),
    union-find merge, shortcut firing, and rule evaluation into int-keyed
    mutable rows; a disabled engine pays one [None] branch per site and a
    profiled one no allocation after the first touch of a key.

    The raw tables are keyed by opaque engine ids; {!render} resolves them to
    names and produces an immutable, deterministically-ordered {!profile}
    for text/JSON output ([profile] subcommand, [--profile FILE],
    [bench --json] embedding). *)

type t

val create : unit -> t

(** {1 Recording} *)

(** One worklist pop of pointer [ptr] (owned by method [meth], [-1] for
    statics) whose coalesced delta carried [delta] objects. *)
val observe_pop : t -> meth:int -> ptr:int -> delta:int -> unit

(** A union-find collapse into representative [ptr]: [absorbed] pointers were
    merged away. *)
val observe_merge : t -> meth:int -> ptr:int -> absorbed:int -> unit

(** A CSC shortcut edge was installed with target [ptr]. *)
val observe_shortcut : t -> meth:int -> ptr:int -> unit

(** Per-rule cost rows (CSC patterns, Datalog rules and strata). Handles are
    memoized per name — hold one and bump it with field writes. *)
type rule

val rule : t -> string -> rule
val rule_fire : rule -> unit
val rule_tuples : ?by:int -> rule -> unit
val rule_time : rule -> float -> unit

(** {1 Delta-size histogram}

    Log2-bucketed: bucket [0] holds deltas [<= 1], bucket [i > 0] holds
    cardinalities in [(2^(i-1), 2^i]] (i.e. [ceil (log2 delta)]), clamped to
    the last bucket. *)

val n_buckets : int
val bucket_of : int -> int
val bucket_label : int -> string

(** {1 Totals} *)

val pops : t -> int
val props : t -> int
val merges : t -> int
val shortcuts : t -> int

(** [merge ~into src] adds every cell of [src] (method/pointer rows, rules,
    histogram, totals) into [into]; [src] is left untouched. The parallel
    solver records into one private table per domain and merges them at the
    end of the solve — addition commutes and {!render} orders totally, so the
    combined profile is deterministic regardless of merge order. *)
val merge : into:t -> t -> unit

(** {1 Rendering} *)

type entry = {
  e_name : string;
  e_pops : int;
  e_props : int;
  e_merges : int;
  e_shortcuts : int;
}

type rule_entry = {
  re_name : string;
  re_fires : int;
  re_tuples : int;
  re_time : float;
}

type profile = {
  p_engine : string;
  p_methods : entry list;  (** hottest first *)
  p_pointers : entry list;
  p_rules : rule_entry list;
  p_hist : (string * int) list;  (** (bucket label, pop count), ascending *)
  p_pops : int;
  p_props : int;
  p_merges : int;
  p_shortcuts : int;
}

(** Resolve ids through [meth_name]/[ptr_name] and keep the [top] hottest
    rows of each table (default 10). Ordering is total (props desc, pops
    desc, merges desc, name asc; rules: tuples desc, fires desc, name asc),
    so the result is deterministic for a deterministic run. *)
val render :
  ?top:int ->
  t ->
  engine:string ->
  meth_name:(int -> string) ->
  ptr_name:(int -> string) ->
  profile

(** Stable key order; lists stay in [render]'s sorted order. *)
val profile_json : profile -> Json.t

(** Human-readable tables; [top] trims each section further. *)
val profile_text : ?top:int -> profile -> string

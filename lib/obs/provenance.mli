(** A first-derivation recorder for fixpoint engines.

    The solver (opt-in, [--explain]) records, for every points-to fact
    [(ptr, obj)] and call edge [(site, callee)], the event that first derived
    it. Because facts only enter the engine through recorded events and the
    first record wins, following {!reason} parents always terminates in a
    {!reason.Seed}, giving a (worklist-order, hence near-shortest) derivation
    chain — the "why does [x] point to [o]" answer Doop and Tai-e users get
    from their provenance tooling.

    Identifiers are opaque ints (pointer ids, object ids, site ids); the
    engine renders them. *)

type reason =
  | Seed of { label : string }
      (** the fact entered directly: ["alloc"], ["receiver"], ["relay"] … *)
  | Flow of { src : int; via : string }
      (** flowed from pointer [src] along a PFG edge of kind [via] *)

type t

(** [max_records] bounds the recorder's memory (default: unbounded). Once
    [size t] reaches the bound, *new* facts are counted in {!dropped} instead
    of being stored — re-records of already-held facts are still no-ops, so
    everything recorded below the bound keeps its full chain. Chains through
    a dropped fact simply end early, exactly like a chain queried for an
    unrecorded fact. *)
val create : ?max_records:int -> unit -> t

(** First write wins; later records of the same fact are ignored. *)
val record_seed : t -> ptr:int -> obj:int -> label:string -> unit

val record_flow : t -> ptr:int -> obj:int -> src:int -> via:string -> unit

(** First deriving receiver for a call edge ([recv = None] for static
    calls). *)
val record_call : t -> site:int -> callee:int -> recv:int option -> unit

val reason : t -> ptr:int -> obj:int -> reason option
val call_reason : t -> site:int -> callee:int -> int option option

(** Derivation chain from [(ptr, obj)] back to its seed: the queried pointer
    first. Empty if the fact was never recorded; truncated at [limit]
    (default 64) or on a (theoretically impossible) cycle. *)
val chain : ?limit:int -> t -> ptr:int -> obj:int -> (int * reason) list

(** All recorded call edges, unordered: (site, callee, receiver). *)
val iter_calls : t -> (site:int -> callee:int -> recv:int option -> unit) -> unit

(** Number of recorded facts (points-to + call edges). *)
val size : t -> int

(** Number of facts refused because the [max_records] bound was hit. *)
val dropped : t -> int

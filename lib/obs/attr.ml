(* Cost-attribution tables. All recording paths are allocation-free after
   the first touch of a key (rows are mutable records found by hash), so a
   profiled run stays close to an unprofiled one; an unprofiled run pays a
   single [None] branch at each instrumentation site. *)

type row = {
  mutable k_pops : int;
  mutable k_props : int;
  mutable k_merges : int;
  mutable k_shortcuts : int;
}

type rule = {
  r_name : string;
  mutable r_fires : int;
  mutable r_tuples : int;
  mutable r_time : float;
}

let n_buckets = 24

type t = {
  meths : (int, row) Hashtbl.t;
  ptrs : (int, row) Hashtbl.t;
  rules : (string, rule) Hashtbl.t;
  hist : int array;  (* delta-cardinality histogram, log2 buckets *)
  mutable t_pops : int;
  mutable t_props : int;
  mutable t_merges : int;
  mutable t_shortcuts : int;
}

let create () =
  {
    meths = Hashtbl.create 256;
    ptrs = Hashtbl.create 1024;
    rules = Hashtbl.create 32;
    hist = Array.make n_buckets 0;
    t_pops = 0;
    t_props = 0;
    t_merges = 0;
    t_shortcuts = 0;
  }

(* bucket 0 holds deltas <= 1; bucket i>0 holds (2^(i-1), 2^i], i.e.
   ceil(log2 delta), clamped to the last bucket *)
let bucket_of d =
  if d <= 1 then 0
  else begin
    let b = ref 0 and v = ref (d - 1) in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    if !b >= n_buckets then n_buckets - 1 else !b
  end

let bucket_label i =
  if i >= n_buckets - 1 then Printf.sprintf ">%d" (1 lsl (n_buckets - 2))
  else Printf.sprintf "<=%d" (1 lsl i)

let row tbl id =
  match Hashtbl.find_opt tbl id with
  | Some r -> r
  | None ->
    let r = { k_pops = 0; k_props = 0; k_merges = 0; k_shortcuts = 0 } in
    Hashtbl.add tbl id r;
    r

let observe_pop t ~meth ~ptr ~delta =
  t.t_pops <- t.t_pops + 1;
  t.t_props <- t.t_props + delta;
  let b = bucket_of delta in
  t.hist.(b) <- t.hist.(b) + 1;
  let m = row t.meths meth in
  m.k_pops <- m.k_pops + 1;
  m.k_props <- m.k_props + delta;
  let p = row t.ptrs ptr in
  p.k_pops <- p.k_pops + 1;
  p.k_props <- p.k_props + delta

let observe_merge t ~meth ~ptr ~absorbed =
  t.t_merges <- t.t_merges + absorbed;
  let m = row t.meths meth in
  m.k_merges <- m.k_merges + absorbed;
  let p = row t.ptrs ptr in
  p.k_merges <- p.k_merges + absorbed

let observe_shortcut t ~meth ~ptr =
  t.t_shortcuts <- t.t_shortcuts + 1;
  let m = row t.meths meth in
  m.k_shortcuts <- m.k_shortcuts + 1;
  let p = row t.ptrs ptr in
  p.k_shortcuts <- p.k_shortcuts + 1

let rule t name =
  match Hashtbl.find_opt t.rules name with
  | Some r -> r
  | None ->
    let r = { r_name = name; r_fires = 0; r_tuples = 0; r_time = 0. } in
    Hashtbl.add t.rules name r;
    r

let rule_fire r = r.r_fires <- r.r_fires + 1
let rule_tuples ?(by = 1) r = r.r_tuples <- r.r_tuples + by
let rule_time r dt = r.r_time <- r.r_time +. dt
let pops t = t.t_pops
let props t = t.t_props
let merges t = t.t_merges
let shortcuts t = t.t_shortcuts

(* fold [src] into [into], summing every table cell. The parallel solver
   gives each domain a private table and merges them at the end; addition is
   commutative, and [render]'s total orders make the combined profile
   deterministic whatever the merge order. *)
let merge ~into src =
  let add_rows dst src =
    Hashtbl.iter
      (fun id (s : row) ->
        let d = row dst id in
        d.k_pops <- d.k_pops + s.k_pops;
        d.k_props <- d.k_props + s.k_props;
        d.k_merges <- d.k_merges + s.k_merges;
        d.k_shortcuts <- d.k_shortcuts + s.k_shortcuts)
      src
  in
  add_rows into.meths src.meths;
  add_rows into.ptrs src.ptrs;
  Hashtbl.iter
    (fun name (s : rule) ->
      let d = rule into name in
      d.r_fires <- d.r_fires + s.r_fires;
      d.r_tuples <- d.r_tuples + s.r_tuples;
      d.r_time <- d.r_time +. s.r_time)
    src.rules;
  for i = 0 to n_buckets - 1 do
    into.hist.(i) <- into.hist.(i) + src.hist.(i)
  done;
  into.t_pops <- into.t_pops + src.t_pops;
  into.t_props <- into.t_props + src.t_props;
  into.t_merges <- into.t_merges + src.t_merges;
  into.t_shortcuts <- into.t_shortcuts + src.t_shortcuts

(* --------------------------------------------------------- rendered form *)

type entry = {
  e_name : string;
  e_pops : int;
  e_props : int;
  e_merges : int;
  e_shortcuts : int;
}

type rule_entry = {
  re_name : string;
  re_fires : int;
  re_tuples : int;
  re_time : float;
}

type profile = {
  p_engine : string;
  p_methods : entry list;
  p_pointers : entry list;
  p_rules : rule_entry list;
  p_hist : (string * int) list;
  p_pops : int;
  p_props : int;
  p_merges : int;
  p_shortcuts : int;
}

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n xs

(* hottest first: objects propagated, then pops, then name — a total order,
   so output is deterministic for a deterministic run *)
let entry_compare a b =
  match compare b.e_props a.e_props with
  | 0 -> (
    match compare b.e_pops a.e_pops with
    | 0 -> (
      match compare b.e_merges a.e_merges with
      | 0 -> String.compare a.e_name b.e_name
      | c -> c)
    | c -> c)
  | c -> c

let rule_compare a b =
  match compare b.re_tuples a.re_tuples with
  | 0 -> (
    match compare b.re_fires a.re_fires with
    | 0 -> String.compare a.re_name b.re_name
    | c -> c)
  | c -> c

let render ?(top = 10) t ~engine ~meth_name ~ptr_name : profile =
  let entries tbl name_of =
    Hashtbl.fold
      (fun id (r : row) acc ->
        {
          e_name = name_of id;
          e_pops = r.k_pops;
          e_props = r.k_props;
          e_merges = r.k_merges;
          e_shortcuts = r.k_shortcuts;
        }
        :: acc)
      tbl []
    |> List.sort entry_compare
    |> take top
  in
  let rules =
    Hashtbl.fold
      (fun _ (r : rule) acc ->
        {
          re_name = r.r_name;
          re_fires = r.r_fires;
          re_tuples = r.r_tuples;
          re_time = r.r_time;
        }
        :: acc)
      t.rules []
    |> List.sort rule_compare
    |> take top
  in
  let hist = ref [] in
  for i = n_buckets - 1 downto 0 do
    (* drop empty tail buckets but keep interior zeros so the shape reads *)
    if t.hist.(i) > 0 || !hist <> [] then
      hist := (bucket_label i, t.hist.(i)) :: !hist
  done;
  {
    p_engine = engine;
    p_methods = entries t.meths meth_name;
    p_pointers = entries t.ptrs ptr_name;
    p_rules = rules;
    p_hist = !hist;
    p_pops = t.t_pops;
    p_props = t.t_props;
    p_merges = t.t_merges;
    p_shortcuts = t.t_shortcuts;
  }

let entry_json (e : entry) : Json.t =
  Json.Obj
    [
      ("name", Json.Str e.e_name);
      ("pops", Json.Int e.e_pops);
      ("props", Json.Int e.e_props);
      ("merges", Json.Int e.e_merges);
      ("shortcuts", Json.Int e.e_shortcuts);
    ]

let rule_json (r : rule_entry) : Json.t =
  Json.Obj
    [
      ("rule", Json.Str r.re_name);
      ("fires", Json.Int r.re_fires);
      ("tuples", Json.Int r.re_tuples);
      ("time_s", Json.Float r.re_time);
    ]

let profile_json (p : profile) : Json.t =
  Json.Obj
    [
      ("engine", Json.Str p.p_engine);
      ( "totals",
        Json.Obj
          [
            ("pops", Json.Int p.p_pops);
            ("props", Json.Int p.p_props);
            ("merges", Json.Int p.p_merges);
            ("shortcuts", Json.Int p.p_shortcuts);
          ] );
      ("methods", Json.List (List.map entry_json p.p_methods));
      ("pointers", Json.List (List.map entry_json p.p_pointers));
      ("rules", Json.List (List.map rule_json p.p_rules));
      ( "delta_hist",
        Json.Obj (List.map (fun (l, c) -> (l, Json.Int c)) p.p_hist) );
    ]

let profile_text ?top (p : profile) : string =
  let cut xs = match top with None -> xs | Some n -> take n xs in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "engine: %s\n" p.p_engine;
  pf "totals: pops=%d props=%d merges=%d shortcuts=%d\n" p.p_pops p.p_props
    p.p_merges p.p_shortcuts;
  let section title xs =
    if xs <> [] then begin
      pf "%s:\n" title;
      pf "  %10s %10s %8s %9s  name\n" "props" "pops" "merges" "shortcuts";
      List.iter
        (fun e ->
          pf "  %10d %10d %8d %9d  %s\n" e.e_props e.e_pops e.e_merges
            e.e_shortcuts e.e_name)
        (cut xs)
    end
  in
  section "hot methods (by objects propagated)" p.p_methods;
  section "hot pointers" p.p_pointers;
  if p.p_rules <> [] then begin
    pf "rules:\n";
    pf "  %10s %10s %9s  rule\n" "tuples" "fires" "time(s)";
    List.iter
      (fun r ->
        pf "  %10d %10d %9.3f  %s\n" r.re_tuples r.re_fires r.re_time r.re_name)
      (cut p.p_rules)
  end;
  if p.p_hist <> [] then begin
    pf "delta size histogram (pops per delta cardinality):\n";
    let max_c = List.fold_left (fun m (_, c) -> max m c) 1 p.p_hist in
    List.iter
      (fun (l, c) ->
        let stars = c * 40 / max_c in
        pf "  %10s %8d %s\n" l c (String.make stars '*'))
      p.p_hist
  end;
  Buffer.contents b

(** A process-wide span tracer emitting Chrome [trace_event] JSON.

    [--trace FILE] on the CLIs calls {!start}; instrumented phases wrap work
    in {!with_span}; {!finish} writes the file. The output loads directly in
    [chrome://tracing] / Perfetto / [about:tracing] viewers (an object with a
    ["traceEvents"] array of complete ["ph":"X"] events, timestamps in
    microseconds).

    When tracing is inactive every operation is a single branch, so
    instrumentation can stay on unconditionally in library code. *)

(** Reset the buffer and start recording; events are written to [file] by
    {!finish}. *)
val start : file:string -> unit

val active : unit -> bool

(** [with_span name f] times [f ()] as a complete event. Exceptions
    propagate; the span still closes. [args] appear in the viewer's detail
    pane. *)
val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** A zero-duration instant event. *)
val instant : ?args:(string * Json.t) list -> string -> unit

(** A ["ph":"C"] counter event — series plotted over time. *)
val counter : string -> (string * float) list -> unit

(** Emit a ["gc"] counter event with major-heap words and collection counts
    (no-op when inactive). Cheap enough for solver-loop cadence. *)
val sample_gc : unit -> unit

(** Write the trace file and stop recording. No-op if {!start} was never
    called. *)
val finish : unit -> unit

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_bounds : float array;
  h_counts : int array;  (* length = bounds + 1 (overflow) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type entry = E_counter of counter | E_gauge of gauge | E_histogram of histogram

type t = {
  entries : (string * (string * string) list, entry) Hashtbl.t;
  mutable order : entry list;  (* reverse registration order *)
}

let create () = { entries = Hashtbl.create 32; order = [] }

let register t key entry =
  Hashtbl.add t.entries key entry;
  t.order <- entry :: t.order

let counter t ?(labels = []) name : counter =
  match Hashtbl.find_opt t.entries (name, labels) with
  | Some (E_counter c) -> c
  | Some _ -> invalid_arg ("Registry.counter: " ^ name ^ " registered as non-counter")
  | None ->
    let c = { c_name = name; c_labels = labels; c_value = 0 } in
    register t (name, labels) (E_counter c);
    c

let gauge t ?(labels = []) name : gauge =
  match Hashtbl.find_opt t.entries (name, labels) with
  | Some (E_gauge g) -> g
  | Some _ -> invalid_arg ("Registry.gauge: " ^ name ^ " registered as non-gauge")
  | None ->
    let g = { g_name = name; g_labels = labels; g_value = 0. } in
    register t (name, labels) (E_gauge g);
    g

let histogram t ?(labels = []) ~buckets name : histogram =
  match Hashtbl.find_opt t.entries (name, labels) with
  | Some (E_histogram h) -> h
  | Some _ ->
    invalid_arg ("Registry.histogram: " ^ name ^ " registered as non-histogram")
  | None ->
    let bounds = Array.of_list buckets in
    let h =
      {
        h_name = name;
        h_labels = labels;
        h_bounds = bounds;
        h_counts = Array.make (Array.length bounds + 1) 0;
        h_sum = 0.;
        h_count = 0;
      }
    in
    register t (name, labels) (E_histogram h);
    h

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let value c = c.c_value
let counter_name c = c.c_name
let counter_labels c = c.c_labels
let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let snapshot t : Snapshot.t =
  Snapshot.of_metrics
    (List.rev_map
       (function
         | E_counter c ->
           Snapshot.Counter { name = c.c_name; labels = c.c_labels; value = c.c_value }
         | E_gauge g ->
           Snapshot.Gauge { name = g.g_name; labels = g.g_labels; value = g.g_value }
         | E_histogram h ->
           Snapshot.Histogram
             {
               name = h.h_name;
               labels = h.h_labels;
               bounds = Array.to_list h.h_bounds;
               counts = Array.to_list h.h_counts;
               sum = h.h_sum;
               count = h.h_count;
             })
       t.order)

(** cutshortcut — command-line front door.

    Subcommands:
    - [list]      : show the workload suite with program statistics
    - [gen]       : print a generated workload's MiniJava source
    - [run]       : execute a program with the concrete interpreter
    - [dump-ir]   : print the lowered IR
    - [analyze]   : run one or more pointer analyses, print time + metrics
    - [explain]   : answer "why does x point to o" with derivation chains
    - [check]     : run the flow-sensitive checkers backed by an analysis
    - [profile]   : cost attribution — hot methods, pointers and rules
    - [recall]    : the §5.1 recall experiment for one program
    - [serve]     : resident analysis server on a unix socket
    - [client]    : send one JSON request to a running server

    [--trace FILE] on the analysis commands records a Chrome trace_event
    timeline of the phases (open in chrome://tracing or Perfetto).

    The batch analysis subcommands ([analyze]/[check]/[taint]/[profile]) and
    the server share one code path: a {!Csc_driver.Run.spec} built from the
    common flag set, executed through a {!Csc_driver.Session} — batch mode
    simply uses a session that lives for one process. *)

module Ir = Csc_ir.Ir
module Run = Csc_driver.Run
module Session = Csc_driver.Session
module Report = Csc_driver.Report
module Suite = Csc_workloads.Suite
module Snapshot = Csc_obs.Snapshot
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr
module Json = Csc_obs.Json
module Campaign = Csc_fuzz.Campaign
module Soundness = Csc_fuzz.Soundness

(* the process-lifetime session: batch subcommands run every analysis
   through it, so repeated (program, spec) pairs in one invocation are
   solved once — the same cache the server keeps across requests *)
let session = lazy (Session.create ())

let load_program_d (spec : string) : Ir.program * string =
  match Session.load (Lazy.force session) spec with
  | Ok pd -> pd
  | Error msg -> Fmt.failwith "%s" msg

let load_program (spec : string) : Ir.program = fst (load_program_d spec)

let analysis_of_string s =
  match Run.analysis_of_string s with
  | Ok a -> a
  | Error msg -> Fmt.failwith "%s" msg

let all_analysis_names = Run.analysis_names

let print_outcome (o : Run.outcome) =
  if o.o_timeout then
    Fmt.pr "%-14s TIMEOUT after %.1fs" o.o_analysis o.o_time
  else begin
    Fmt.pr "%-14s %8.3fs" o.o_analysis o.o_time;
    match o.o_metrics with
    | Some m -> Fmt.pr "  %a" Csc_clients.Metrics.pp m
    | None -> ()
  end;
  (match o.o_snapshot with
  | Some s -> Fmt.pr "  [%s]" (Snapshot.to_line s)
  | None -> ());
  Fmt.pr "@."

(* ------------------------------------------------------------- commands *)

open Cmdliner

let program_arg =
  let doc = "Program to analyze: a suite name (see `list`) or a .mjava file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let budget_arg =
  let doc = "Per-analysis time budget in seconds (0 = unlimited)." in
  Arg.(value & opt float 60.0 & info [ "budget" ] ~doc)

let budget_opt b = if b <= 0. then None else Some b

let validate_arg =
  let doc = "Validate the lowered IR before analyzing (fail fast on malformed IR)." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let trace_arg =
  let doc =
    "Record a Chrome trace_event timeline of the run to $(docv) (open in \
     chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let no_collapse_arg =
  let doc =
    "Disable the solver's online cycle collapsing (escape hatch; results are \
     identical, only slower)."
  in
  Arg.(value & flag & info [ "no-collapse" ] ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
    Trace.start ~file;
    Fun.protect ~finally:Trace.finish f

let profile_file_arg =
  let doc =
    "Collect cost attribution (hot methods, pointers, rules) during the run \
     and write the profile report as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a heartbeat line to stderr every $(docv) seconds of solving \
     (long runs under nightly CI; 0 = off)."
  in
  Arg.(value & opt float 0. & info [ "progress" ] ~docv:"SECS" ~doc)

let progress_opt s = if s <= 0. then None else Some s

let jobs_arg =
  let doc =
    "Solve imperative analyses on $(docv) domains (sharded bulk-synchronous \
     solver; results are identical for every value, including 1). 0 = this \
     machine's recommended domain count. Parallel execution needs an OCaml 5 \
     build; otherwise the run falls back to one domain with a note."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs j =
  if j = 0 then Csc_common.Domains_compat.recommended () else max 1 j

(* The run-spec flags shared by analyze/check/taint/profile/serve: one
   Cmdliner term, so the flag set cannot drift between subcommands again
   (--budget/--jobs/--progress used to exist on some and not others). *)
type common = {
  cm_budget : float;
  cm_validate : bool;
  cm_no_collapse : bool;
  cm_jobs : int;
  cm_progress : float;
  cm_trace : string option;
}

let common_term =
  let mk budget validate no_collapse jobs progress trace =
    {
      cm_budget = budget;
      cm_validate = validate;
      cm_no_collapse = no_collapse;
      cm_jobs = jobs;
      cm_progress = progress;
      cm_trace = trace;
    }
  in
  Cmdliner.Term.(
    const mk $ budget_arg $ validate_arg $ no_collapse_arg $ jobs_arg
    $ progress_arg $ trace_arg)

let spec_of_common ?(profile = false) ?(profile_top = 25) c analysis =
  {
    (Run.spec analysis) with
    Run.sp_budget_s = budget_opt c.cm_budget;
    sp_validate = c.cm_validate;
    sp_collapse = not c.cm_no_collapse;
    sp_profile = profile;
    sp_profile_top = profile_top;
    sp_progress_s = progress_opt c.cm_progress;
    sp_jobs = resolve_jobs c.cm_jobs;
  }

(* every batch analysis goes through the session cache — same code path as
   the server *)
let run_cached (spec : Run.spec) (p : Ir.program) (digest : string) :
    Run.outcome =
  fst (Session.outcome (Lazy.force session) ~digest spec p)

(* check/taint --json: diagnostics under the versioned envelope, keeping
   Diagnostic.render_json's deterministic one-object-per-line body *)
let print_diagnostics_json p ds =
  Printf.printf "{\"schema\":%d,\n\"diagnostics\": %s}\n" Json.schema_version
    (String.trim (Csc_checks.Diagnostic.render_json p ds))

let list_cmd =
  let run () =
    Fmt.pr "%-12s %8s %8s %8s %8s %8s@." "program" "classes" "methods" "stmts"
      "allocs" "calls";
    List.iter
      (fun name ->
        let p = Suite.compile name in
        let s = Ir.stats p in
        Fmt.pr "%-12s %8d %8d %8d %8d %8d@." name s.n_classes s.n_methods
          s.n_stmts s.n_allocs s.n_calls)
      Suite.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workload suite with statistics")
    Term.(const run $ const ())

let gen_cmd =
  let rand_arg =
    Arg.(value & opt (some int) None
         & info [ "rand" ] ~docv:"SEED"
             ~doc:"Print the fuzzer's randomized program for $(docv) instead \
                   of a suite workload (reproduces fuzz cases by hand).")
  in
  let size_arg =
    Arg.(value & opt int 30
         & info [ "max-size" ] ~docv:"STMTS"
             ~doc:"Plan size for --rand.")
  in
  let opt_program_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PROGRAM" ~doc:"Suite workload to print.")
  in
  let run name rand max_size =
    match (rand, name) with
    | Some seed, _ ->
      print_string
        (Csc_workloads.Gen.Rand.render
           (Csc_workloads.Gen.Rand.generate ~seed ~max_size))
    | None, Some name -> print_string (Suite.source name)
    | None, None ->
      Fmt.epr "gen: need a suite workload name or --rand SEED@.";
      exit 2
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print a generated workload's source")
    Term.(const run $ opt_program_arg $ rand_arg $ size_arg)

let run_cmd =
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress program output.")
  in
  let run spec quiet =
    let p = load_program spec in
    let o = Csc_interp.Interp.run p in
    if not quiet then List.iter print_endline o.output;
    Fmt.pr "; %d steps, %d methods reached dynamically, %d dynamic call edges@."
      o.steps
      (Csc_common.Bits.cardinal o.dyn_reachable)
      (List.length o.dyn_edges)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program with the interpreter")
    Term.(const run $ program_arg $ quiet)

let dump_ir_cmd =
  let run spec =
    let p = load_program spec in
    Fmt.pr "%a@." Ir.pp_program p
  in
  Cmd.v (Cmd.info "dump-ir" ~doc:"Print the lowered IR")
    Term.(const run $ program_arg)

let analyze_cmd =
  let analyses =
    let doc =
      Printf.sprintf "Analyses to run (repeatable). One of: %s, or 'all'."
        (String.concat ", " all_analysis_names)
    in
    Arg.(value & opt_all string [ "ci"; "csc" ] & info [ "analysis"; "a" ] ~doc)
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:
               "Record points-to provenance (imperative engine; adds a \
                prov_records counter to the snapshot).")
  in
  let run spec analyses explain profile common =
    with_trace common.cm_trace @@ fun () ->
    let p, digest = load_program_d spec in
    let s = Ir.stats p in
    Fmt.pr "program: %s (%a)@." spec Ir.pp_stats s;
    let analyses =
      if List.mem "all" analyses then all_analysis_names else analyses
    in
    let outcomes =
      List.map
        (fun a ->
          let rspec =
            {
              (spec_of_common ~profile:(profile <> None) common
                 (analysis_of_string a))
              with
              Run.sp_explain = explain;
            }
          in
          let o = run_cached rspec p digest in
          print_outcome o;
          o)
        analyses
    in
    match profile with
    | None -> ()
    | Some file ->
      Report.write_file file
        (Json.with_schema
           [ ("program", Json.Str spec);
             ("outcomes", Json.List (List.map Report.outcome_json outcomes)) ]);
      Fmt.pr "profile written to %s@." file
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run pointer analyses and print time + metrics")
    Term.(const run $ program_arg $ analyses $ explain $ profile_file_arg
          $ common_term)

(* --------------------------------------------------------------- explain *)

let explain_cmd =
  let analysis =
    Arg.(value & opt string "csc"
         & info [ "analysis"; "a" ]
             ~doc:"Imperative analysis to explain under (ci, csc, 2obj, ...).")
  in
  let var =
    Arg.(value & opt (some string) None
         & info [ "var" ] ~docv:"NAME"
             ~doc:
               "Explain only this variable; matched as a suffix of \
                Class.method.var (e.g. Main.main.x or just main.x).")
  in
  let limit =
    Arg.(value & opt int 5
         & info [ "limit" ] ~doc:"Maximum number of facts explained.")
  in
  let run spec analysis var limit budget trace =
    with_trace trace @@ fun () ->
    let p = load_program spec in
    match
      Csc_driver.Explain.run ?budget_s:(budget_opt budget) ?var ~limit p
        (analysis_of_string analysis)
    with
    | Error msg -> Fmt.failwith "%s" msg
    | Ok [] ->
      Fmt.pr "no points-to facts matched%a@."
        Fmt.(option (fmt " variable %S"))
        var
    | Ok facts ->
      List.iter
        (fun (f : Csc_driver.Explain.fact) ->
          Fmt.pr "why %s -> %s:@." f.x_ptr f.x_obj;
          (match f.x_chain with
          | [] -> Fmt.pr "  (no recorded derivation)@."
          | lines -> List.iter (fun l -> Fmt.pr "  %s@." l) lines);
          Fmt.pr "@.")
        facts
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain points-to facts: print the derivation chain (provenance) \
          of why a variable points to an object")
    Term.(const run $ program_arg $ analysis $ var $ limit $ budget_arg
          $ trace_arg)

(* --fail-on SEVERITY: the checkers as a CI gate *)
let severity_of_string s =
  match s with
  | "error" -> Csc_checks.Diagnostic.Error
  | "warning" -> Csc_checks.Diagnostic.Warning
  | "info" -> Csc_checks.Diagnostic.Info
  | _ -> Fmt.invalid_arg "unknown severity %S (error, warning, info)" s

let fail_on_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fail-on" ] ~docv:"SEVERITY"
        ~doc:
          "Exit with code 1 if any diagnostic at $(docv) (error, warning, \
           info) or a more severe level is present — the checkers as a CI \
           gate.")

let exit_fail_on fail_on (ds : Csc_checks.Diagnostic.t list) =
  match fail_on with
  | None -> ()
  | Some s ->
    let rank = Csc_checks.Diagnostic.severity_rank (severity_of_string s) in
    if
      List.exists
        (fun (d : Csc_checks.Diagnostic.t) ->
          Csc_checks.Diagnostic.severity_rank d.d_severity <= rank)
        ds
    then exit 1

let check_cmd =
  let analysis =
    let doc =
      "Analysis backing the checkers (precision = fewer false alarms)."
    in
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc)
  in
  let checks =
    let doc =
      Printf.sprintf "Checkers to run (repeatable). One of: %s. Default: all."
        (String.concat ", " Csc_checks.Checks.names)
    in
    Arg.(value & opt_all string [] & info [ "check"; "c" ] ~doc)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let include_jdk =
    Arg.(value & flag
         & info [ "include-jdk" ] ~doc:"Report diagnostics in mini-JDK code too.")
  in
  let run spec analysis checks json include_jdk fail_on profile common =
    with_trace common.cm_trace @@ fun () ->
    let p, digest = load_program_d spec in
    let o =
      run_cached
        (spec_of_common ~profile:(profile <> None) common
           (analysis_of_string analysis))
        p digest
    in
    (match profile with
    | None -> ()
    | Some file ->
      Report.write_file file
        (Json.with_schema
           [ ("program", Json.Str spec);
             ("outcomes", Json.List [ Report.outcome_json o ]) ]);
      Fmt.epr "profile written to %s@." file);
    match o.Run.o_result with
    | None -> Fmt.epr "analysis %s timed out after %.1fs@." analysis o.Run.o_time
    | Some r ->
      let checks = if checks = [] then None else Some checks in
      let ds = Csc_checks.Checks.run_all ?checks ~include_jdk p r in
      if json then print_diagnostics_json p ds
      else begin
        List.iter
          (fun d -> Fmt.pr "%a@." (Csc_checks.Diagnostic.pp_text p) d)
          ds;
        Fmt.pr "%d diagnostic(s) under %s:" (List.length ds) o.Run.o_analysis;
        List.iter
          (fun (c, n) -> Fmt.pr " %s=%d" c n)
          (Csc_checks.Checks.count_by_check ds);
        Fmt.pr "@."
      end;
      exit_fail_on fail_on ds
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the flow-sensitive checkers (null-deref, fail-cast, poly-call, \
          dead-store) backed by a pointer analysis")
    Term.(const run $ program_arg $ analysis $ checks $ json $ include_jdk
          $ fail_on_arg $ profile_file_arg $ common_term)

let profile_cmd =
  let analyses =
    let doc =
      Printf.sprintf
        "Analyses to profile (repeatable). One of: %s, or 'all'."
        (String.concat ", " all_analysis_names)
    in
    Arg.(value & opt_all string [ "ci"; "csc" ] & info [ "analysis"; "a" ] ~doc)
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows per table (hot methods, pointers, rules).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the profiles as JSON.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON report to $(docv) instead of stdout \
                   (implies --json).")
  in
  let run spec analyses top json out common =
    with_trace common.cm_trace @@ fun () ->
    let p, digest = load_program_d spec in
    let analyses =
      if List.mem "all" analyses then all_analysis_names else analyses
    in
    let outcomes =
      List.map
        (fun a ->
          ( a,
            run_cached
              (spec_of_common ~profile:true ~profile_top:top common
                 (analysis_of_string a))
              p digest ))
        analyses
    in
    if json || out <> None then begin
      let doc =
        Json.with_schema
          [ ("program", Json.Str spec);
            ( "profiles",
              Json.List
                (List.map
                   (fun (a, (o : Run.outcome)) ->
                     Json.Obj
                       [ ("analysis", Json.Str a);
                         ("timeout", Json.Bool o.o_timeout);
                         ("time_s", Json.Float o.o_time);
                         ( "profile",
                           match o.o_profile with
                           | None -> Json.Null
                           | Some pr -> Attr.profile_json pr ) ])
                   outcomes) ) ]
      in
      match out with
      | Some file ->
        Report.write_file file doc;
        Fmt.pr "profile written to %s@." file
      | None -> print_string (Json.to_string ~pretty:true doc ^ "\n")
    end
    else
      List.iter
        (fun (a, (o : Run.outcome)) ->
          if o.o_timeout then
            Fmt.pr "== %s: TIMEOUT after %.1fs ==@.@." a o.o_time
          else begin
            Fmt.pr "== %s (%.3fs) ==@." a o.o_time;
            match o.o_profile with
            | Some pr -> Fmt.pr "%s@." (Attr.profile_text ~top pr)
            | None -> Fmt.pr "(no profile collected)@.@."
          end)
        outcomes
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Cost attribution: run analyses with solver telemetry enabled and \
          report the hot methods, pointers and rules driving solve time")
    Term.(const run $ program_arg $ analyses $ top $ json $ out $ common_term)

let taint_cmd =
  let analysis =
    let doc =
      "Analysis backing the taint propagation (a more precise analysis \
       reports fewer spurious leaks)."
    in
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc)
  in
  let spec_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "JSON taint spec: an object with \"sources\", \"sinks\" and \
             \"sanitizers\" lists of Class.method patterns (* globs). \
             Default: the builtin Flow/Request/Db/Sanitizer table.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let include_jdk =
    Arg.(value & flag
         & info [ "include-jdk" ] ~doc:"Report leaks in mini-JDK code too.")
  in
  let run spec analysis spec_file json include_jdk fail_on common =
    with_trace common.cm_trace @@ fun () ->
    let tspec =
      match spec_file with
      | None -> Csc_taint.Taint_spec.builtin
      | Some f -> (
        match Csc_taint.Taint_spec.load f with
        | Ok s -> s
        | Error e ->
          Fmt.epr "cannot load taint spec %s: %s@." f e;
          exit 2)
    in
    let p, digest = load_program_d spec in
    let o =
      run_cached (spec_of_common common (analysis_of_string analysis)) p digest
    in
    match o.Run.o_result with
    | None -> Fmt.epr "analysis %s timed out after %.1fs@." analysis o.Run.o_time
    | Some r ->
      let res = Csc_taint.Taint.analyze ~spec:tspec p r in
      let ds = Csc_taint.Taint.diagnostics ~include_jdk p res in
      if json then print_diagnostics_json p ds
      else begin
        List.iter
          (fun d -> Fmt.pr "%a@." (Csc_checks.Diagnostic.pp_text p) d)
          ds;
        Fmt.pr "%d leak(s) under %s, %d tainted object(s)@." (List.length ds)
          o.Run.o_analysis
          (Csc_common.Bits.cardinal res.Csc_taint.Taint.t_tainted_objs)
      end;
      exit_fail_on fail_on ds
  in
  Cmd.v
    (Cmd.info "taint"
       ~doc:
         "Source→sink taint analysis over the PTA call graph: report call \
          sites where a tainted value may reach a sink")
    Term.(const run $ program_arg $ analysis $ spec_file $ json $ include_jdk
          $ fail_on_arg $ common_term)

let callgraph_cmd =
  let analysis =
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc:"Analysis to use.")
  in
  let include_jdk =
    Arg.(value & flag & info [ "include-jdk" ] ~doc:"Keep mini-JDK methods.")
  in
  let run spec analysis include_jdk =
    let p = load_program spec in
    let o = Run.run p (analysis_of_string analysis) in
    match o.o_result with
    | None -> Fmt.epr "analysis timed out@."
    | Some r -> print_string (Csc_driver.Export.callgraph_dot ~include_jdk p r)
  in
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Emit the call graph as Graphviz DOT on stdout")
    Term.(const run $ program_arg $ analysis $ include_jdk)

let pts_cmd =
  let analysis =
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc:"Analysis to use.")
  in
  let meth =
    Arg.(value & opt (some string) None
         & info [ "method"; "m" ] ~doc:"Restrict to one method, e.g. Main.main.")
  in
  let run spec analysis meth =
    let p = load_program spec in
    let o = Run.run p (analysis_of_string analysis) in
    match o.o_result with
    | None -> Fmt.epr "analysis timed out@."
    | Some r -> Csc_driver.Export.pts_dump ?method_filter:meth p r Fmt.stdout
  in
  Cmd.v (Cmd.info "pts" ~doc:"Dump points-to sets")
    Term.(const run $ program_arg $ analysis $ meth)

let recall_cmd =
  let run spec budget =
    let p = load_program spec in
    let reports =
      Run.recall ?budget_s:(budget_opt budget) p
        [ Run.Imp_ci; Run.Imp_csc; Run.Imp_2obj; Run.Doop_csc ]
    in
    Fmt.pr "%-14s %10s %10s@." "analysis" "methods" "edges";
    List.iter
      (fun (r : Run.recall_report) ->
        Fmt.pr "%-14s %9.1f%% %9.1f%%@." r.rc_analysis (100. *. r.rc_methods)
          (100. *. r.rc_edges))
      reports
  in
  Cmd.v
    (Cmd.info "recall" ~doc:"Recall experiment: dynamic vs static coverage")
    Term.(const run $ program_arg $ budget_arg)

let fuzz_cmd =
  let n_arg =
    Arg.(value & opt int 500
         & info [ "n" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Campaign seed; fixed seed, identical campaign.")
  in
  let max_size_arg =
    Arg.(value & opt int 30
         & info [ "max-size" ] ~docv:"STMTS"
             ~doc:"Target plan size per generated program.")
  in
  let minimize_arg =
    Arg.(value & opt bool true
         & info [ "minimize" ] ~docv:"BOOL"
             ~doc:"Delta-debug violating programs to minimal counterexamples.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write (minimized) counterexamples and their JSON metadata \
                   to $(docv).")
  in
  let inject_arg =
    (* hidden self-test: drops store-pattern shortcut edges, which the
       oracle must catch *)
    Arg.(value & flag
         & info [ "inject-unsound" ]
             ~doc:"Deliberately drop CSC store-pattern shortcut edges to \
                   verify the oracle catches real unsoundness. The campaign \
                   is expected to FAIL."
             ~docs:Cmdliner.Manpage.s_none)
  in
  let edits_arg =
    Arg.(value & opt int 0
         & info [ "edits" ] ~docv:"STEPS"
             ~doc:"Fuzz edit sessions instead of single programs: derive \
                   $(docv) successive revisions per case and require \
                   incrementally-updated results to be bit-identical to \
                   from-scratch solves along the whole chain.")
  in
  let run n seed max_size minimize out inject edits trace jobs =
    with_trace trace @@ fun () ->
    let cfg =
      {
        Campaign.default_cfg with
        Campaign.n;
        seed;
        max_size;
        minimize;
        out_dir = out;
        inject_unsound = inject;
        progress = true;
        jobs = resolve_jobs jobs;
        edits;
      }
    in
    let r = Campaign.run cfg in
    Fmt.pr "fuzz: %d %s, %d violating, %d generator errors, %d halted \
            traces (%.1f progs/s, %.1fs)@."
      r.Campaign.r_total
      (if edits > 0 then "edit sessions" else "programs")
      (List.length r.Campaign.r_failed)
      r.Campaign.r_gen_errors r.Campaign.r_halted r.Campaign.r_progs_per_s
      r.Campaign.r_elapsed;
    List.iter
      (fun (c : Campaign.case) ->
        Fmt.pr "@.seed %d: %d violation(s)@." c.Campaign.c_seed
          (List.length c.Campaign.c_violations);
        List.iter
          (fun v -> Fmt.pr "  %a@." Soundness.pp_violation v)
          c.Campaign.c_violations;
        (match (c.Campaign.c_min_source, c.Campaign.c_min_app_stmts) with
        | Some src, Some stmts ->
          Fmt.pr "  minimized to %d app IR statements:@.%s@." stmts src
        | _ -> ());
        match c.Campaign.c_edit_pair with
        | Some _ ->
          Fmt.pr "  pinned to a single edit (see case_%d.rev0/.rev1.mjava)@."
            c.Campaign.c_seed
        | None -> ())
      r.Campaign.r_failed;
    if r.Campaign.r_failed <> [] then begin
      Fmt.epr "fuzz: FAILED (%d violating program(s))@."
        (List.length r.Campaign.r_failed);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Soundness fuzzing: random programs, interpreter ground truth, the \
          full engine/configuration matrix, delta-debugged counterexamples")
    Term.(const run $ n_arg $ seed_arg $ max_size_arg $ minimize_arg $ out_arg
          $ inject_arg $ edits_arg $ trace_arg $ jobs_arg)

(* ------------------------------------------------------- serve / client *)

let socket_arg =
  let doc = "Unix socket path the server listens on." in
  Arg.(value & opt string "/tmp/cutshortcut.sock"
       & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let max_mem =
    Arg.(value & opt int 1024
         & info [ "max-mem" ] ~docv:"MB"
             ~doc:
               "Resident result-cache bound in MiB; least-recently-used \
                solved states are evicted past it.")
  in
  let analysis =
    Arg.(value & opt string "csc"
         & info [ "analysis"; "a" ]
             ~doc:"Default analysis for requests that name none.")
  in
  let run socket max_mem analysis common =
    with_trace common.cm_trace @@ fun () ->
    let defaults = spec_of_common common (analysis_of_string analysis) in
    let t =
      Csc_server.Server.create
        ~max_mem_bytes:(max_mem * 1024 * 1024)
        ~defaults ()
    in
    Fmt.epr "cutshortcut serve: listening on %s (default analysis %s)@."
      socket analysis;
    Csc_server.Server.serve t ~socket;
    Fmt.epr "cutshortcut serve: shut down@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident analysis server: a daemon on a unix socket answering \
          newline-delimited JSON analyze/pt/callgraph/check/taint/explain/\
          profile/stats requests out of a digest-keyed result cache")
    Term.(const run $ socket_arg $ max_mem $ analysis $ common_term)

let client_cmd =
  let wait =
    Arg.(value & opt float 0.
         & info [ "wait" ] ~docv:"SECS"
             ~doc:
               "Wait up to $(docv) for the socket to accept connections \
                first (scripting a just-started daemon).")
  in
  let request =
    let doc =
      "The request: one JSON object, e.g. '{\"cmd\": \"analyze\", \
       \"program\": \"findbugs\", \"analysis\": \"csc\"}'."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REQUEST" ~doc)
  in
  let run socket wait request =
    if wait > 0. then
      if not (Csc_server.Client.wait_for_socket ~timeout_s:wait socket) then begin
        Fmt.epr "client: %s not accepting connections after %.1fs@." socket
          wait;
        exit 2
      end;
    match Csc_server.Client.request ~socket request with
    | Error msg ->
      Fmt.epr "client: %s@." msg;
      exit 2
    | Ok reply ->
      print_endline reply;
      (* scripting-friendly: error replies exit nonzero *)
      let ok =
        match Json.parse reply with
        | Ok j -> Option.bind (Json.member "ok" j) Json.get_bool = Some true
        | Error _ -> false
      in
      if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one JSON request to a running analysis server and print the \
          reply (exit 1 on an error reply)")
    Term.(const run $ socket_arg $ wait $ request)

let main_cmd =
  Cmd.group
    (Cmd.info "cutshortcut" ~version:"1.0.0"
       ~doc:"Cut-Shortcut pointer analysis (PLDI 2023) reproduction")
    [ list_cmd; gen_cmd; run_cmd; dump_ir_cmd; analyze_cmd; explain_cmd;
      check_cmd; profile_cmd; taint_cmd; recall_cmd; callgraph_cmd; pts_cmd;
      fuzz_cmd; serve_cmd; client_cmd ]

(* cmdliner reserves double-dash spellings for multi-char names, but the
   documented fuzz interface is `--n N`; accept it as an alias of `-n` *)
let argv =
  Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv

let () = exit (Cmd.eval ~argv main_cmd)

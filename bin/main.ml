(** cutshortcut — command-line front door.

    Subcommands:
    - [list]      : show the workload suite with program statistics
    - [gen]       : print a generated workload's MiniJava source
    - [run]       : execute a program with the concrete interpreter
    - [dump-ir]   : print the lowered IR
    - [analyze]   : run one or more pointer analyses, print time + metrics
    - [explain]   : answer "why does x point to o" with derivation chains
    - [check]     : run the flow-sensitive checkers backed by an analysis
    - [profile]   : cost attribution — hot methods, pointers and rules
    - [recall]    : the §5.1 recall experiment for one program

    [--trace FILE] on the analysis commands records a Chrome trace_event
    timeline of the phases (open in chrome://tracing or Perfetto). *)

module Ir = Csc_ir.Ir
module Run = Csc_driver.Run
module Report = Csc_driver.Report
module Suite = Csc_workloads.Suite
module Snapshot = Csc_obs.Snapshot
module Trace = Csc_obs.Trace
module Attr = Csc_obs.Attr
module Json = Csc_obs.Json
module Campaign = Csc_fuzz.Campaign
module Soundness = Csc_fuzz.Soundness

let load_program (spec : string) : Ir.program =
  if List.mem spec Suite.names then Suite.compile spec
  else if Sys.file_exists spec then begin
    let ic = open_in_bin spec in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Csc_lang.Frontend.compile_string ~name:spec src
  end
  else
    Fmt.failwith "unknown program %S (not a suite name or a file)" spec

let analysis_of_string = function
  | "ci" -> Run.Imp_ci
  | "csc" -> Run.Imp_csc
  | "csc-field" ->
    Run.Imp_csc_cfg
      { field_pattern = true; container_pattern = false; local_flow = false }
  | "csc-container" ->
    Run.Imp_csc_cfg
      { field_pattern = false; container_pattern = true; local_flow = false }
  | "csc-localflow" ->
    Run.Imp_csc_cfg
      { field_pattern = false; container_pattern = false; local_flow = true }
  | "2obj" -> Run.Imp_2obj
  | "2type" -> Run.Imp_2type
  | "2call" -> Run.Imp_2call
  | "1obj" -> Run.Imp_kobj 1
  | "3obj" -> Run.Imp_kobj 3
  | "1type" -> Run.Imp_ktype 1
  | "1call" -> Run.Imp_kcall 1
  | "zipper-e" -> Run.Imp_zipper
  | "doop-ci" -> Run.Doop_ci
  | "doop-csc" -> Run.Doop_csc
  | "doop-2obj" -> Run.Doop_2obj
  | "doop-2type" -> Run.Doop_2type
  | "doop-zipper-e" -> Run.Doop_zipper
  | s -> Fmt.failwith "unknown analysis %S" s

let all_analysis_names =
  [ "ci"; "csc"; "csc-field"; "csc-container"; "csc-localflow"; "1obj";
    "2obj"; "3obj"; "1type"; "2type"; "1call"; "2call"; "zipper-e"; "doop-ci";
    "doop-csc"; "doop-2obj"; "doop-2type"; "doop-zipper-e" ]

let print_outcome (o : Run.outcome) =
  if o.o_timeout then
    Fmt.pr "%-14s TIMEOUT after %.1fs" o.o_analysis o.o_time
  else begin
    Fmt.pr "%-14s %8.3fs" o.o_analysis o.o_time;
    match o.o_metrics with
    | Some m -> Fmt.pr "  %a" Csc_clients.Metrics.pp m
    | None -> ()
  end;
  (match o.o_snapshot with
  | Some s -> Fmt.pr "  [%s]" (Snapshot.to_line s)
  | None -> ());
  Fmt.pr "@."

(* ------------------------------------------------------------- commands *)

open Cmdliner

let program_arg =
  let doc = "Program to analyze: a suite name (see `list`) or a .mjava file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let budget_arg =
  let doc = "Per-analysis time budget in seconds (0 = unlimited)." in
  Arg.(value & opt float 60.0 & info [ "budget" ] ~doc)

let budget_opt b = if b <= 0. then None else Some b

let validate_arg =
  let doc = "Validate the lowered IR before analyzing (fail fast on malformed IR)." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let trace_arg =
  let doc =
    "Record a Chrome trace_event timeline of the run to $(docv) (open in \
     chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let no_collapse_arg =
  let doc =
    "Disable the solver's online cycle collapsing (escape hatch; results are \
     identical, only slower)."
  in
  Arg.(value & flag & info [ "no-collapse" ] ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
    Trace.start ~file;
    Fun.protect ~finally:Trace.finish f

let profile_file_arg =
  let doc =
    "Collect cost attribution (hot methods, pointers, rules) during the run \
     and write the profile report as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a heartbeat line to stderr every $(docv) seconds of solving \
     (long runs under nightly CI; 0 = off)."
  in
  Arg.(value & opt float 0. & info [ "progress" ] ~docv:"SECS" ~doc)

let progress_opt s = if s <= 0. then None else Some s

let jobs_arg =
  let doc =
    "Solve imperative analyses on $(docv) domains (sharded bulk-synchronous \
     solver; results are identical for every value, including 1). 0 = this \
     machine's recommended domain count. Parallel execution needs an OCaml 5 \
     build; otherwise the run falls back to one domain with a note."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs j =
  if j = 0 then Csc_common.Domains_compat.recommended () else max 1 j

let list_cmd =
  let run () =
    Fmt.pr "%-12s %8s %8s %8s %8s %8s@." "program" "classes" "methods" "stmts"
      "allocs" "calls";
    List.iter
      (fun name ->
        let p = Suite.compile name in
        let s = Ir.stats p in
        Fmt.pr "%-12s %8d %8d %8d %8d %8d@." name s.n_classes s.n_methods
          s.n_stmts s.n_allocs s.n_calls)
      Suite.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workload suite with statistics")
    Term.(const run $ const ())

let gen_cmd =
  let rand_arg =
    Arg.(value & opt (some int) None
         & info [ "rand" ] ~docv:"SEED"
             ~doc:"Print the fuzzer's randomized program for $(docv) instead \
                   of a suite workload (reproduces fuzz cases by hand).")
  in
  let size_arg =
    Arg.(value & opt int 30
         & info [ "max-size" ] ~docv:"STMTS"
             ~doc:"Plan size for --rand.")
  in
  let opt_program_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PROGRAM" ~doc:"Suite workload to print.")
  in
  let run name rand max_size =
    match (rand, name) with
    | Some seed, _ ->
      print_string
        (Csc_workloads.Gen.Rand.render
           (Csc_workloads.Gen.Rand.generate ~seed ~max_size))
    | None, Some name -> print_string (Suite.source name)
    | None, None ->
      Fmt.epr "gen: need a suite workload name or --rand SEED@.";
      exit 2
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print a generated workload's source")
    Term.(const run $ opt_program_arg $ rand_arg $ size_arg)

let run_cmd =
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress program output.")
  in
  let run spec quiet =
    let p = load_program spec in
    let o = Csc_interp.Interp.run p in
    if not quiet then List.iter print_endline o.output;
    Fmt.pr "; %d steps, %d methods reached dynamically, %d dynamic call edges@."
      o.steps
      (Csc_common.Bits.cardinal o.dyn_reachable)
      (List.length o.dyn_edges)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program with the interpreter")
    Term.(const run $ program_arg $ quiet)

let dump_ir_cmd =
  let run spec =
    let p = load_program spec in
    Fmt.pr "%a@." Ir.pp_program p
  in
  Cmd.v (Cmd.info "dump-ir" ~doc:"Print the lowered IR")
    Term.(const run $ program_arg)

let analyze_cmd =
  let analyses =
    let doc =
      Printf.sprintf "Analyses to run (repeatable). One of: %s, or 'all'."
        (String.concat ", " all_analysis_names)
    in
    Arg.(value & opt_all string [ "ci"; "csc" ] & info [ "analysis"; "a" ] ~doc)
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:
               "Record points-to provenance (imperative engine; adds a \
                prov_records counter to the snapshot).")
  in
  let run spec analyses budget validate explain no_collapse trace profile
      progress jobs =
    with_trace trace @@ fun () ->
    let p = load_program spec in
    let s = Ir.stats p in
    Fmt.pr "program: %s (%a)@." spec Ir.pp_stats s;
    let analyses =
      if List.mem "all" analyses then all_analysis_names else analyses
    in
    let outcomes =
      List.map
        (fun a ->
          let o =
            Run.run ?budget_s:(budget_opt budget) ~validate ~explain
              ~collapse:(not no_collapse) ~profile:(profile <> None)
              ?progress_s:(progress_opt progress) ~jobs:(resolve_jobs jobs) p
              (analysis_of_string a)
          in
          print_outcome o;
          o)
        analyses
    in
    match profile with
    | None -> ()
    | Some file ->
      Report.write_file file
        (Json.Obj
           [ ("program", Json.Str spec);
             ("outcomes", Json.List (List.map Report.outcome_json outcomes)) ]);
      Fmt.pr "profile written to %s@." file
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run pointer analyses and print time + metrics")
    Term.(const run $ program_arg $ analyses $ budget_arg $ validate_arg
          $ explain $ no_collapse_arg $ trace_arg $ profile_file_arg
          $ progress_arg $ jobs_arg)

(* --------------------------------------------------------------- explain *)

module Solver = Csc_pta.Solver
module Context = Csc_pta.Context

(* [explain] drives the imperative solver directly: it needs the live solver
   handle to walk provenance chains, which the driver does not expose *)
let selector_of = function
  | "ci" | "csc" | "csc-field" | "csc-container" | "csc-localflow" ->
    Context.ci
  | "1obj" -> Context.kobj ~k:1 ~hk:1
  | "2obj" -> Context.kobj ~k:2 ~hk:1
  | "3obj" -> Context.kobj ~k:3 ~hk:2
  | "1type" -> Context.ktype ~k:1 ~hk:1
  | "2type" -> Context.ktype ~k:2 ~hk:1
  | "1call" -> Context.kcall ~k:1 ~hk:1
  | "2call" -> Context.kcall ~k:2 ~hk:1
  | s -> Fmt.failwith "explain: unsupported analysis %S (imperative only)" s

let plugin_config_of = function
  | "csc" -> Some Csc_core.Csc.default_config
  | "csc-field" ->
    Some
      Csc_core.Csc.
        { field_pattern = true; container_pattern = false; local_flow = false }
  | "csc-container" ->
    Some
      Csc_core.Csc.
        { field_pattern = false; container_pattern = true; local_flow = false }
  | "csc-localflow" ->
    Some
      Csc_core.Csc.
        { field_pattern = false; container_pattern = false; local_flow = true }
  | _ -> None

let is_suffix ~affix s =
  let la = String.length affix and ls = String.length s in
  la <= ls && String.sub s (ls - la) la = affix

let explain_cmd =
  let analysis =
    Arg.(value & opt string "csc"
         & info [ "analysis"; "a" ]
             ~doc:"Imperative analysis to explain under (ci, csc, 2obj, ...).")
  in
  let var =
    Arg.(value & opt (some string) None
         & info [ "var" ] ~docv:"NAME"
             ~doc:
               "Explain only this variable; matched as a suffix of \
                Class.method.var (e.g. Main.main.x or just main.x).")
  in
  let limit =
    Arg.(value & opt int 5
         & info [ "limit" ] ~doc:"Maximum number of facts explained.")
  in
  let run spec analysis var limit budget trace =
    with_trace trace @@ fun () ->
    let p = load_program spec in
    let budget =
      match budget_opt budget with
      | Some s -> Csc_common.Timer.budget_of_seconds s
      | None -> Csc_common.Timer.no_budget
    in
    let t = Solver.create ~budget ~sel:(selector_of analysis) p in
    if Solver.enable_provenance t then
      Fmt.epr
        "note: provenance recording (explain) disables online cycle \
         collapsing for this run; expect a slower solve@.";
    (match plugin_config_of analysis with
    | Some config -> Solver.set_plugin t (Csc_core.Csc.plugin ~config t)
    | None -> ());
    Solver.run t;
    let matches v =
      let vr = Ir.var p v in
      match var with
      | Some pat ->
        is_suffix ~affix:pat (Ir.method_name p vr.Ir.v_method ^ "." ^ vr.Ir.v_name)
      | None ->
        (* scan mode: application variables only, the mini-JDK's internals
           are noise *)
        not
          (Csc_lang.Jdk.is_jdk_class
             (Ir.class_name p (Ir.metho p vr.Ir.v_method).Ir.m_class))
    in
    let shown = ref 0 in
    Solver.iter_ptrs t (fun ptr desc ->
        match desc with
        | Solver.PVar (_, v) when !shown < limit && matches v ->
          Csc_common.Bits.iter
            (fun o ->
              if !shown < limit then begin
                incr shown;
                Fmt.pr "why %s -> %s:@."
                  (Solver.ptr_to_string t ptr)
                  (Solver.obj_to_string t o);
                (match Solver.explain_chain t ~ptr ~obj:o with
                | [] -> Fmt.pr "  (no recorded derivation)@."
                | lines -> List.iter (fun l -> Fmt.pr "  %s@." l) lines);
                Fmt.pr "@."
              end)
            (Solver.pts t ptr)
        | _ -> ());
    if !shown = 0 then
      Fmt.pr "no points-to facts matched%a@."
        Fmt.(option (fmt " variable %S"))
        var
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain points-to facts: print the derivation chain (provenance) \
          of why a variable points to an object")
    Term.(const run $ program_arg $ analysis $ var $ limit $ budget_arg
          $ trace_arg)

(* --fail-on SEVERITY: the checkers as a CI gate *)
let severity_of_string s =
  match s with
  | "error" -> Csc_checks.Diagnostic.Error
  | "warning" -> Csc_checks.Diagnostic.Warning
  | "info" -> Csc_checks.Diagnostic.Info
  | _ -> Fmt.invalid_arg "unknown severity %S (error, warning, info)" s

let fail_on_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fail-on" ] ~docv:"SEVERITY"
        ~doc:
          "Exit with code 1 if any diagnostic at $(docv) (error, warning, \
           info) or a more severe level is present — the checkers as a CI \
           gate.")

let exit_fail_on fail_on (ds : Csc_checks.Diagnostic.t list) =
  match fail_on with
  | None -> ()
  | Some s ->
    let rank = Csc_checks.Diagnostic.severity_rank (severity_of_string s) in
    if
      List.exists
        (fun (d : Csc_checks.Diagnostic.t) ->
          Csc_checks.Diagnostic.severity_rank d.d_severity <= rank)
        ds
    then exit 1

let check_cmd =
  let analysis =
    let doc =
      "Analysis backing the checkers (precision = fewer false alarms)."
    in
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc)
  in
  let checks =
    let doc =
      Printf.sprintf "Checkers to run (repeatable). One of: %s. Default: all."
        (String.concat ", " Csc_checks.Checks.names)
    in
    Arg.(value & opt_all string [] & info [ "check"; "c" ] ~doc)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let include_jdk =
    Arg.(value & flag
         & info [ "include-jdk" ] ~doc:"Report diagnostics in mini-JDK code too.")
  in
  let run spec analysis checks json include_jdk fail_on budget validate
      no_collapse trace profile progress jobs =
    with_trace trace @@ fun () ->
    let p = load_program spec in
    let o =
      Run.run ?budget_s:(budget_opt budget) ~validate
        ~collapse:(not no_collapse) ~profile:(profile <> None)
        ?progress_s:(progress_opt progress) ~jobs:(resolve_jobs jobs) p
        (analysis_of_string analysis)
    in
    (match profile with
    | None -> ()
    | Some file ->
      Report.write_file file
        (Json.Obj
           [ ("program", Json.Str spec);
             ("outcomes", Json.List [ Report.outcome_json o ]) ]);
      Fmt.epr "profile written to %s@." file);
    match o.Run.o_result with
    | None -> Fmt.epr "analysis %s timed out after %.1fs@." analysis o.Run.o_time
    | Some r ->
      let checks = if checks = [] then None else Some checks in
      let ds = Csc_checks.Checks.run_all ?checks ~include_jdk p r in
      if json then print_string (Csc_checks.Diagnostic.render_json p ds)
      else begin
        List.iter
          (fun d -> Fmt.pr "%a@." (Csc_checks.Diagnostic.pp_text p) d)
          ds;
        Fmt.pr "%d diagnostic(s) under %s:" (List.length ds) o.Run.o_analysis;
        List.iter
          (fun (c, n) -> Fmt.pr " %s=%d" c n)
          (Csc_checks.Checks.count_by_check ds);
        Fmt.pr "@."
      end;
      exit_fail_on fail_on ds
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the flow-sensitive checkers (null-deref, fail-cast, poly-call, \
          dead-store) backed by a pointer analysis")
    Term.(const run $ program_arg $ analysis $ checks $ json $ include_jdk
          $ fail_on_arg $ budget_arg $ validate_arg $ no_collapse_arg
          $ trace_arg $ profile_file_arg $ progress_arg $ jobs_arg)

let profile_cmd =
  let analyses =
    let doc =
      Printf.sprintf
        "Analyses to profile (repeatable). One of: %s, or 'all'."
        (String.concat ", " all_analysis_names)
    in
    Arg.(value & opt_all string [ "ci"; "csc" ] & info [ "analysis"; "a" ] ~doc)
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows per table (hot methods, pointers, rules).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the profiles as JSON.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON report to $(docv) instead of stdout \
                   (implies --json).")
  in
  let run spec analyses top json out budget progress trace jobs =
    with_trace trace @@ fun () ->
    let p = load_program spec in
    let analyses =
      if List.mem "all" analyses then all_analysis_names else analyses
    in
    let outcomes =
      List.map
        (fun a ->
          ( a,
            Run.run ?budget_s:(budget_opt budget) ~profile:true
              ~profile_top:top ?progress_s:(progress_opt progress)
              ~jobs:(resolve_jobs jobs) p (analysis_of_string a) ))
        analyses
    in
    if json || out <> None then begin
      let doc =
        Json.Obj
          [ ("program", Json.Str spec);
            ( "profiles",
              Json.List
                (List.map
                   (fun (a, (o : Run.outcome)) ->
                     Json.Obj
                       [ ("analysis", Json.Str a);
                         ("timeout", Json.Bool o.o_timeout);
                         ("time_s", Json.Float o.o_time);
                         ( "profile",
                           match o.o_profile with
                           | None -> Json.Null
                           | Some pr -> Attr.profile_json pr ) ])
                   outcomes) ) ]
      in
      match out with
      | Some file ->
        Report.write_file file doc;
        Fmt.pr "profile written to %s@." file
      | None -> print_string (Json.to_string ~pretty:true doc ^ "\n")
    end
    else
      List.iter
        (fun (a, (o : Run.outcome)) ->
          if o.o_timeout then
            Fmt.pr "== %s: TIMEOUT after %.1fs ==@.@." a o.o_time
          else begin
            Fmt.pr "== %s (%.3fs) ==@." a o.o_time;
            match o.o_profile with
            | Some pr -> Fmt.pr "%s@." (Attr.profile_text ~top pr)
            | None -> Fmt.pr "(no profile collected)@.@."
          end)
        outcomes
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Cost attribution: run analyses with solver telemetry enabled and \
          report the hot methods, pointers and rules driving solve time")
    Term.(const run $ program_arg $ analyses $ top $ json $ out $ budget_arg
          $ progress_arg $ trace_arg $ jobs_arg)

let taint_cmd =
  let analysis =
    let doc =
      "Analysis backing the taint propagation (a more precise analysis \
       reports fewer spurious leaks)."
    in
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc)
  in
  let spec_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "JSON taint spec: an object with \"sources\", \"sinks\" and \
             \"sanitizers\" lists of Class.method patterns (* globs). \
             Default: the builtin Flow/Request/Db/Sanitizer table.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let include_jdk =
    Arg.(value & flag
         & info [ "include-jdk" ] ~doc:"Report leaks in mini-JDK code too.")
  in
  let run spec analysis spec_file json include_jdk fail_on budget validate
      no_collapse trace jobs =
    with_trace trace @@ fun () ->
    let tspec =
      match spec_file with
      | None -> Csc_taint.Taint_spec.builtin
      | Some f -> (
        match Csc_taint.Taint_spec.load f with
        | Ok s -> s
        | Error e ->
          Fmt.epr "cannot load taint spec %s: %s@." f e;
          exit 2)
    in
    let p = load_program spec in
    let o =
      Run.run ?budget_s:(budget_opt budget) ~validate
        ~collapse:(not no_collapse) ~jobs:(resolve_jobs jobs) p
        (analysis_of_string analysis)
    in
    match o.Run.o_result with
    | None -> Fmt.epr "analysis %s timed out after %.1fs@." analysis o.Run.o_time
    | Some r ->
      let res = Csc_taint.Taint.analyze ~spec:tspec p r in
      let ds = Csc_taint.Taint.diagnostics ~include_jdk p res in
      if json then print_string (Csc_checks.Diagnostic.render_json p ds)
      else begin
        List.iter
          (fun d -> Fmt.pr "%a@." (Csc_checks.Diagnostic.pp_text p) d)
          ds;
        Fmt.pr "%d leak(s) under %s, %d tainted object(s)@." (List.length ds)
          o.Run.o_analysis
          (Csc_common.Bits.cardinal res.Csc_taint.Taint.t_tainted_objs)
      end;
      exit_fail_on fail_on ds
  in
  Cmd.v
    (Cmd.info "taint"
       ~doc:
         "Source→sink taint analysis over the PTA call graph: report call \
          sites where a tainted value may reach a sink")
    Term.(const run $ program_arg $ analysis $ spec_file $ json $ include_jdk
          $ fail_on_arg $ budget_arg $ validate_arg $ no_collapse_arg
          $ trace_arg $ jobs_arg)

let callgraph_cmd =
  let analysis =
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc:"Analysis to use.")
  in
  let include_jdk =
    Arg.(value & flag & info [ "include-jdk" ] ~doc:"Keep mini-JDK methods.")
  in
  let run spec analysis include_jdk =
    let p = load_program spec in
    let o = Run.run p (analysis_of_string analysis) in
    match o.o_result with
    | None -> Fmt.epr "analysis timed out@."
    | Some r -> print_string (Csc_driver.Export.callgraph_dot ~include_jdk p r)
  in
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Emit the call graph as Graphviz DOT on stdout")
    Term.(const run $ program_arg $ analysis $ include_jdk)

let pts_cmd =
  let analysis =
    Arg.(value & opt string "csc" & info [ "analysis"; "a" ] ~doc:"Analysis to use.")
  in
  let meth =
    Arg.(value & opt (some string) None
         & info [ "method"; "m" ] ~doc:"Restrict to one method, e.g. Main.main.")
  in
  let run spec analysis meth =
    let p = load_program spec in
    let o = Run.run p (analysis_of_string analysis) in
    match o.o_result with
    | None -> Fmt.epr "analysis timed out@."
    | Some r -> Csc_driver.Export.pts_dump ?method_filter:meth p r Fmt.stdout
  in
  Cmd.v (Cmd.info "pts" ~doc:"Dump points-to sets")
    Term.(const run $ program_arg $ analysis $ meth)

let recall_cmd =
  let run spec budget =
    let p = load_program spec in
    let reports =
      Run.recall ?budget_s:(budget_opt budget) p
        [ Run.Imp_ci; Run.Imp_csc; Run.Imp_2obj; Run.Doop_csc ]
    in
    Fmt.pr "%-14s %10s %10s@." "analysis" "methods" "edges";
    List.iter
      (fun (r : Run.recall_report) ->
        Fmt.pr "%-14s %9.1f%% %9.1f%%@." r.rc_analysis (100. *. r.rc_methods)
          (100. *. r.rc_edges))
      reports
  in
  Cmd.v
    (Cmd.info "recall" ~doc:"Recall experiment: dynamic vs static coverage")
    Term.(const run $ program_arg $ budget_arg)

let fuzz_cmd =
  let n_arg =
    Arg.(value & opt int 500
         & info [ "n" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Campaign seed; fixed seed, identical campaign.")
  in
  let max_size_arg =
    Arg.(value & opt int 30
         & info [ "max-size" ] ~docv:"STMTS"
             ~doc:"Target plan size per generated program.")
  in
  let minimize_arg =
    Arg.(value & opt bool true
         & info [ "minimize" ] ~docv:"BOOL"
             ~doc:"Delta-debug violating programs to minimal counterexamples.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write (minimized) counterexamples and their JSON metadata \
                   to $(docv).")
  in
  let inject_arg =
    (* hidden self-test: drops store-pattern shortcut edges, which the
       oracle must catch *)
    Arg.(value & flag
         & info [ "inject-unsound" ]
             ~doc:"Deliberately drop CSC store-pattern shortcut edges to \
                   verify the oracle catches real unsoundness. The campaign \
                   is expected to FAIL."
             ~docs:Cmdliner.Manpage.s_none)
  in
  let run n seed max_size minimize out inject trace jobs =
    with_trace trace @@ fun () ->
    let cfg =
      {
        Campaign.default_cfg with
        Campaign.n;
        seed;
        max_size;
        minimize;
        out_dir = out;
        inject_unsound = inject;
        progress = true;
        jobs = resolve_jobs jobs;
      }
    in
    let r = Campaign.run cfg in
    Fmt.pr "fuzz: %d programs, %d violating, %d generator errors, %d halted \
            traces (%.1f progs/s, %.1fs)@."
      r.Campaign.r_total
      (List.length r.Campaign.r_failed)
      r.Campaign.r_gen_errors r.Campaign.r_halted r.Campaign.r_progs_per_s
      r.Campaign.r_elapsed;
    List.iter
      (fun (c : Campaign.case) ->
        Fmt.pr "@.seed %d: %d violation(s)@." c.Campaign.c_seed
          (List.length c.Campaign.c_violations);
        List.iter
          (fun v -> Fmt.pr "  %a@." Soundness.pp_violation v)
          c.Campaign.c_violations;
        match (c.Campaign.c_min_source, c.Campaign.c_min_app_stmts) with
        | Some src, Some stmts ->
          Fmt.pr "  minimized to %d app IR statements:@.%s@." stmts src
        | _ -> ())
      r.Campaign.r_failed;
    if r.Campaign.r_failed <> [] then begin
      Fmt.epr "fuzz: FAILED (%d violating program(s))@."
        (List.length r.Campaign.r_failed);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Soundness fuzzing: random programs, interpreter ground truth, the \
          full engine/configuration matrix, delta-debugged counterexamples")
    Term.(const run $ n_arg $ seed_arg $ max_size_arg $ minimize_arg $ out_arg
          $ inject_arg $ trace_arg $ jobs_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "cutshortcut" ~version:"1.0.0"
       ~doc:"Cut-Shortcut pointer analysis (PLDI 2023) reproduction")
    [ list_cmd; gen_cmd; run_cmd; dump_ir_cmd; analyze_cmd; explain_cmd;
      check_cmd; profile_cmd; taint_cmd; recall_cmd; callgraph_cmd; pts_cmd;
      fuzz_cmd ]

(* cmdliner reserves double-dash spellings for multi-char names, but the
   documented fuzz interface is `--n N`; accept it as an alias of `-n` *)
let argv =
  Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv

let () = exit (Cmd.eval ~argv main_cmd)

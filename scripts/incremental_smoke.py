#!/usr/bin/env python3
"""Incremental smoke for CI: a scripted 20-edit session through the
analysis server, every step diffed against a from-scratch solve.

Usage: incremental_smoke.py BIN BASE.mjava

Two daemons run on private sockets. Server A receives the whole edit
chain as `update` requests (with method-level "edits" ops, so the
server-side patcher is exercised) and must take the incremental path on
every step. Server B never sees an update: it gets each revision as full
inline source, so each of its solves is from scratch (a fresh digest per
step cannot hit its result cache). Both run with "validate": true. The
precision metrics of A's incrementally-updated outcome must equal B's
fresh outcome on all 20 revisions; any mismatch, error reply, or
fallback to a fresh solve on A fails the job."""

import json
import os
import subprocess
import sys
import time


def main():
    bin_path, base_path = sys.argv[1], sys.argv[2]
    base = open(base_path).read()
    pid = os.getpid()
    socks = {s: f"/tmp/csc-inc-{s}-{pid}.sock" for s in ("a", "b")}
    servers = {
        s: subprocess.Popen([bin_path, "serve", "--socket", sock])
        for s, sock in socks.items()
    }

    def ask(server, request, wait=False):
        cmd = [bin_path, "client", "--socket", socks[server]]
        if wait:
            cmd += ["--wait", "30"]
        out = subprocess.run(
            cmd + [json.dumps(request)], capture_output=True, text=True
        )
        if out.returncode != 0:
            raise SystemExit(
                f"server {server} rejected {request.get('cmd')}: "
                f"{out.stdout.strip() or out.stderr.strip()}"
            )
        return json.loads(out.stdout)

    try:
        # load the base revision on both servers (and learn A's digest)
        reply = ask(
            "a",
            {"cmd": "analyze", "source": base, "analysis": "csc",
             "validate": True},
            wait=True,
        )
        digest = reply["digest"]
        fresh = ask(
            "b",
            {"cmd": "analyze", "source": base, "analysis": "csc",
             "validate": True},
            wait=True,
        )
        assert (
            reply["result"]["metrics"] == fresh["result"]["metrics"]
        ), "servers disagree on the base revision"

        # the edit chain: single-method body replacements, with an
        # add-then-remove pair mixed in twice. [text] tracks the same
        # logical revision locally so server B can solve it from source.
        query_body = "return new Object();"
        text = base
        incremental_steps = 0
        for i in range(1, 21):
            if i in (7, 14):
                extra = f"Object extra{i}() {{ return new Object(); }}"
                edits = [{"op": "add", "class": "Conn", "src": extra}]
                text = text.replace(
                    "class Conn {", "class Conn {\n  " + extra, 1
                )
                last_extra = extra
            elif i in (8, 15):
                edits = [
                    {"op": "remove", "class": "Conn",
                     "method": f"extra{i - 1}"}
                ]
                text = text.replace("\n  " + last_extra, "", 1)
            else:
                body = f"Object o{i} = new Object(); return o{i};"
                edits = [
                    {"op": "replace", "class": "Conn", "method": "query",
                     "body": body}
                ]
                text = text.replace(query_body, body, 1)
                query_body = body

            upd = ask(
                "a",
                {"cmd": "update", "digest": digest, "edits": edits,
                 "analysis": "csc", "validate": True},
            )
            res = upd["result"]
            digest = res["digest"]
            mode = res["inc"]["mode"]
            if mode == "incremental":
                incremental_steps += 1
            else:
                raise SystemExit(
                    f"step {i}: fell back to a fresh solve "
                    f"({res['inc']['reason']})"
                )
            fresh = ask(
                "b",
                {"cmd": "analyze", "source": text, "analysis": "csc",
                 "validate": True},
            )
            # B may legitimately hit its cache when an add is undone and the
            # text returns to an earlier revision — that cached outcome was
            # itself a fresh solve of the same digest, so the diff stands
            a_m = res["outcome"]["metrics"]
            b_m = fresh["result"]["metrics"]
            if a_m != b_m:
                raise SystemExit(
                    f"step {i}: incremental metrics {a_m} != fresh {b_m}"
                )
            print(
                f"step {i:2d}: {mode}, dirty={res['inc']['dirty_methods']}, "
                f"reuse={res['inc']['reuse_pct']:.1f}%, metrics match"
            )
        print(f"incremental smoke: 20/20 edits, "
              f"{incremental_steps} incremental, all metrics match fresh")
    finally:
        for s in socks:
            try:
                ask(s, {"cmd": "shutdown"})
            except SystemExit:
                servers[s].kill()
        deadline = time.time() + 10
        for proc in servers.values():
            try:
                proc.wait(timeout=max(0.1, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    main()

(** Devirtualizer: use call-graph precision to find virtual call sites that
    can be devirtualized (a single possible target) — the paper's #poly-call
    client, framed as the program-optimization use case. Built on the
    {!Csc_checks.Devirt} pass: [sites] lists the devirtualization
    opportunities, [check] emits the poly-call diagnostics.

    The example also shows, honestly, where each approach earns its keep:
    - direct container access: Cut-Shortcut recovers per-container precision
      at context-insensitive cost;
    - container access wrapped behind a registry object: the registry's
      [this] merges inside the wrapper, which is context-*sensitivity*
      territory (2obj separates it, CSC does not claim to).

    Run with: dune exec examples/devirtualizer.exe *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Context = Csc_pta.Context
module Devirt = Csc_checks.Devirt
module Diagnostic = Csc_checks.Diagnostic

let source =
  {|
class Renderer {
  Object render() { return null; }
}
class HtmlRenderer extends Renderer {
  Object render() { return "html"; }
}
class TextRenderer extends Renderer {
  Object render() { return "text"; }
}
class PdfRenderer extends Renderer {
  Object render() { return "pdf"; }
}

class Registry {
  ArrayList renderers;
  Registry(ArrayList rs) { this.renderers = rs; }
  Renderer pick(int i) {
    Renderer r = (Renderer) this.renderers.get(i);
    return r;
  }
}

class Main {
  static void main() {
    // --- direct container access ---
    ArrayList webRenderers = new ArrayList();
    webRenderers.add(new HtmlRenderer());
    webRenderers.add(new TextRenderer());
    ArrayList exportRenderers = new ArrayList();
    exportRenderers.add(new PdfRenderer());

    Renderer w = (Renderer) webRenderers.get(0);
    Object page = w.render();       // 2 targets: genuinely polymorphic

    Renderer e = (Renderer) exportRenderers.get(0);
    Object doc = e.render();        // 1 target: devirtualizable

    // --- the same, behind a registry wrapper ---
    Registry webReg = new Registry(webRenderers);
    Registry exportReg = new Registry(exportRenderers);
    Renderer w2 = webReg.pick(0);
    Object page2 = w2.render();
    Renderer e2 = exportReg.pick(0);
    Object doc2 = e2.render();

    System.print(page);
    System.print(doc);
    System.print(page2);
    System.print(doc2);
  }
}
|}

let describe name (p : Ir.program) (r : Solver.result) =
  Fmt.pr "%-6s:@." name;
  (* the library pass: every reachable virtual site with its target count *)
  List.iter
    (fun (si : Devirt.site_info) ->
      let cs = Ir.call p si.si_site in
      if (Ir.metho p cs.cs_target).m_name = "render" then
        Fmt.pr "  render() at line %2d: %d target(s)%s@." cs.cs_line
          (List.length si.si_targets)
          (if List.length si.si_targets = 1 then "  -> devirtualize" else ""))
    (List.sort
       (fun (a : Devirt.site_info) b ->
         compare (Ir.call p a.si_site).cs_line (Ir.call p b.si_site).cs_line)
       (Devirt.sites p r));
  (* and the missed opportunities, as diagnostics *)
  List.iter
    (fun d -> Fmt.pr "  %a@." (Diagnostic.pp_text p) d)
    (Devirt.check p r)

let () =
  let p = Csc_lang.Frontend.compile_string source in
  describe "ci" p (Solver.result (Solver.analyze p));
  describe "csc" p (Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p));
  describe "2obj" p
    (Solver.result (Solver.analyze ~sel:(Context.kobj ~k:2 ~hk:1) p));
  Fmt.pr
    "@.CSC devirtualizes the direct export-path call at CI cost; the@.";
  Fmt.pr
    "registry-wrapped calls additionally need receiver contexts (2obj).@."

(** Taint tracking on top of pointer analysis — the "security analysis" use
    case from the paper's introduction (FlowDroid-style, massively
    simplified).

    Sources are the allocations inside [Request.read*] (untrusted input);
    sinks are the arguments of [Db.exec]. An object-flow from a source
    allocation into a sink argument's points-to set is a potential injection.
    Precision of the underlying pointer analysis translates directly into
    fewer false alarms: context insensitivity merges the sanitized and
    unsanitized pools, Cut-Shortcut keeps them apart.

    The client reports through {!Csc_checks.Diagnostic} — the same record,
    renderers and ordering the built-in checkers use — showing how an
    external analysis plugs into the diagnostics pipeline.

    Run with: dune exec examples/taint_tracker.exe *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits
module Diagnostic = Csc_checks.Diagnostic

let source =
  {|
class Request {
  Object readParam() {
    Object raw = new Object();    // tainted allocation
    return raw;
  }
}

class Sanitizer {
  static Object clean(Object dirty) {
    Object safe = new Object();   // fresh, untainted copy
    return safe;
  }
}

class Db {
  int execCount;
  void exec(Object query) { this.execCount = this.execCount + 1; }
}

class App {
  ArrayList cleanPool;
  ArrayList rawPool;
  App() {
    this.cleanPool = new ArrayList();
    this.rawPool = new ArrayList();
  }

  void ingest(Request req) {
    Object p = req.readParam();
    this.rawPool.add(p);
    this.cleanPool.add(Sanitizer.clean(p));
  }

  void runSafe(Db db) {
    Iterator it = this.cleanPool.iterator();
    while (it.hasNext()) {
      db.exec(it.next());         // only sanitized values: no alarm expected
    }
  }

  void runDangerous(Db db) {
    db.exec(this.rawPool.get(0)); // raw value: must alarm
  }
}

class Main {
  static void main() {
    App app = new App();
    app.ingest(new Request());
    Db db = new Db();
    app.runSafe(db);
    app.runDangerous(db);
    System.print(db.execCount);
  }
}
|}

(* taint sources: allocations inside Request.read* methods *)
let source_allocs (p : Ir.program) : Bits.t =
  let b = Bits.create () in
  Array.iter
    (fun (a : Ir.alloc_site) ->
      let m = Ir.metho p a.a_method in
      if
        Ir.class_name p m.m_class = "Request"
        && String.length m.m_name >= 4
        && String.sub m.m_name 0 4 = "read"
      then ignore (Bits.add b a.a_id))
    p.allocs;
  b

(* sink arguments: every argument of a reachable call to Db.exec *)
let sink_args (p : Ir.program) (r : Solver.result) : (Ir.call_id * Ir.var_id) list
    =
  List.concat_map
    (fun (site, callee) ->
      if Ir.method_name p callee = "Db.exec" then
        Array.to_list (Ir.call p site).cs_args
        |> List.map (fun arg -> (site, arg))
      else [])
    r.r_edges

(* one Diagnostic.t per tainted sink argument, in the shared format *)
let diagnostics (p : Ir.program) (r : Solver.result) : Diagnostic.t list =
  let sources = source_allocs p in
  List.filter_map
    (fun (site, arg) ->
      let tainted =
        List.rev
          (Bits.fold
             (fun a acc -> if Bits.mem sources a then a :: acc else acc)
             (r.r_pt arg) [])
      in
      if tainted = [] then None
      else
        let cs = Ir.call p site in
        Some
          Diagnostic.
            {
              d_check = "taint";
              d_severity = Error;
              d_method = cs.Ir.cs_method;
              d_path = Csc_checks.Devirt.site_path p site;
              d_message =
                Printf.sprintf
                  "possible injection: tainted value reaches %s (line %d)"
                  (Ir.method_name p cs.Ir.cs_target)
                  cs.Ir.cs_line;
              d_witness =
                Some
                  (Printf.sprintf "tainted alloc(s): %s"
                     (String.concat ", "
                        (List.map
                           (fun a ->
                             let site = Ir.alloc p a in
                             Printf.sprintf "%s:%d"
                               (Ir.method_name p site.Ir.a_method)
                               site.Ir.a_line)
                           tainted)));
            })
    (sink_args p r)
  |> List.sort_uniq Diagnostic.compare

let report name (p : Ir.program) (r : Solver.result) =
  let alarms = diagnostics p r in
  Fmt.pr "%-6s: %d sink call(s) reachable, %d tainted@." name
    (List.length (sink_args p r))
    (List.length alarms);
  List.iter (fun d -> Fmt.pr "    %a@." (Diagnostic.pp_text p) d) alarms

let () =
  let p = Csc_lang.Frontend.compile_string source in
  Fmt.pr
    "Taint client: Request.read* allocations -> Db.exec arguments@.@.";
  report "ci" p (Solver.result (Solver.analyze p));
  report "csc" p (Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p));
  Fmt.pr
    "@.CI merges the sanitized and raw pools inside ArrayList, flagging the@.";
  Fmt.pr
    "safe path too; Cut-Shortcut separates the pools and keeps only the@.";
  Fmt.pr "true alarm in runDangerous().@."

(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (§5) on the OCaml reproduction (see DESIGN.md §2 for the
    experiment index, EXPERIMENTS.md for paper-vs-measured):

    - fig12   : analysis-time bars per program (Doop engine)
    - table1  : time + 4 precision metrics, Datalog engine (Doop analog)
    - table2  : same on the imperative engine (Tai-e analog)
    - table3  : Zipper^e vs Cut-Shortcut detailed comparison
    - recall  : §5.1 soundness recall experiment
    - ablation: §5.1 per-pattern precision-impact study
    - checks  : flow-sensitive diagnostics counts per workload, CI vs CSC
    - collapse: solver cycle collapsing on/off (EXPERIMENTS.md E11)
    - taint   : taint-client leak reports on the ground-truth corpus
                (EXPERIMENTS.md E13)
    - profile : cost attribution vs precision, ci / csc / 2obj
                (EXPERIMENTS.md E14)
    - incremental : edit latency of the incremental layer vs from-scratch
                (EXPERIMENTS.md E17)
    - micro   : Bechamel micro-benchmarks of the substrates

    Usage: dune exec bench/main.exe -- [experiments...] [--quick] [--budget S]
                                       [--json [FILE]] [--out DIR]
                                       [--trace FILE]
                                       [--compare BASELINE.json] [--soft-time]
    Default runs a representative subset sized for a laptop; pass `all` (or
    individual experiment names) and a bigger budget to reproduce everything.

    [--json FILE] additionally writes every experiment's cells (times,
    timeout flags, the four precision metrics and the engine's structured
    metric snapshot) as one JSON document; bare [--json] writes one
    BENCH_<experiment>.json per experiment instead. [--out DIR] places all
    emitted JSON under DIR (created if missing) instead of the working
    directory. [--trace FILE] records a Chrome trace_event timeline of the
    whole run.

    [--compare BASELINE.json] is the regression gate: after running, every
    cell is matched against the baseline document by (experiment, program,
    analysis); any precision-metric change, or a >25% time regression, makes
    the run exit non-zero. [--soft-time] downgrades the time check to a
    warning (CI uses it: shared runners make wall-clock noisy, but precision
    must never drift). *)

module Ir = Csc_ir.Ir
module Run = Csc_driver.Run
module Report = Csc_driver.Report
module Suite = Csc_workloads.Suite
module Metrics = Csc_clients.Metrics
module Bits = Csc_common.Bits
module Csc = Csc_core.Csc
module Json = Csc_obs.Json
module Snapshot = Csc_obs.Snapshot
module Trace = Csc_obs.Trace

type config = {
  programs : string list;
  budget : float;       (* imperative engine, seconds *)
  doop_budget : float;  (* datalog engine, seconds *)
  quick : bool;         (* --quick: CI-sized grids *)
}

(* [--jobs N]: domains per imperative solve, whole run (the scaling
   experiment drives its own per-leg values instead). Precision is identical
   for every value, so the memo cache needs no jobs key — only wall clock
   moves, which the gate treats as soft under CI. *)
let run_jobs = ref 1

(* results are memoized so fig12/table1/table3 don't re-run analyses; the
   budget is part of the key so a re-run under a different budget (e.g. a
   later experiment raising it) can't be served a stale timeout *)
let cache : (string * string * float, Run.outcome) Hashtbl.t = Hashtbl.create 64
let programs_cache : (string, Ir.program) Hashtbl.t = Hashtbl.create 16

let program name =
  match Hashtbl.find_opt programs_cache name with
  | Some p -> p
  | None ->
    let p = Suite.compile name in
    Hashtbl.add programs_cache name p;
    p

let outcome cfg pname analysis : Run.outcome =
  let budget = if Run.is_datalog analysis then cfg.doop_budget else cfg.budget in
  let key = (pname, Run.name analysis, budget) in
  match Hashtbl.find_opt cache key with
  | Some o -> o
  | None ->
    Fmt.epr "  [%s / %s] ...@." pname (Run.name analysis);
    let o = Run.run ~budget_s:budget ~jobs:!run_jobs (program pname) analysis in
    (* keep full results only where a later experiment reads them (recall /
       extras / table3 overlap use CI and CSC); context-sensitive results can
       hold hundreds of MB of per-context tables *)
    let keep_result =
      match analysis with
      | Run.Imp_ci | Run.Imp_csc | Run.Doop_ci | Run.Doop_csc -> true
      | _ -> false
    in
    let o = if keep_result then o else { o with Run.o_result = None } in
    Hashtbl.add cache key o;
    (* the timed-out context-sensitive runs leave a bloated heap behind;
       without this, every analysis after a 2obj timeout crawls *)
    Gc.compact ();
    o

(* the budget shown for a timeout cell depends on the engine; dispatch on
   the analysis variant, not on the rendered name *)
let time_cell cfg (a : Run.analysis) (o : Run.outcome) =
  if o.o_timeout then
    Fmt.str ">%.0fs" (if Run.is_datalog a then cfg.doop_budget else cfg.budget)
  else Fmt.str "%.2f" o.o_time

let metric_cells (o : Run.outcome) =
  match o.o_metrics with
  | None -> ("-", "-", "-", "-")
  | Some m ->
    ( string_of_int m.fail_cast,
      string_of_int m.reach_mtd,
      string_of_int m.poly_call,
      string_of_int m.call_edge )

(* ------------------------------------------------------------- tables 1/2 *)

let efficiency_table cfg ~title (analyses : Run.analysis list) =
  Fmt.pr "@.=== %s ===@." title;
  Fmt.pr "%-11s %-14s %9s %11s %11s %11s %11s@." "program" "analysis" "time(s)"
    "#fail-cast" "#reach-mtd" "#poly-call" "#call-edge";
  List.iter
    (fun pname ->
      List.iter
        (fun a ->
          let o = outcome cfg pname a in
          let fc, rm, pc, ce = metric_cells o in
          Fmt.pr "%-11s %-14s %9s %11s %11s %11s %11s@." pname o.o_analysis
            (time_cell cfg a o) fc rm pc ce)
        analyses;
      Fmt.pr "@.")
    cfg.programs

let table2 cfg =
  efficiency_table cfg
    ~title:
      "Table 2: efficiency and precision on the imperative engine (Tai-e \
       analog)"
    [ Run.Imp_ci; Run.Imp_2obj; Run.Imp_2type; Run.Imp_zipper; Run.Imp_csc ]

let table1 cfg =
  efficiency_table cfg
    ~title:
      "Table 1: efficiency and precision on the Datalog engine (Doop analog)"
    [ Run.Doop_ci; Run.Doop_2obj; Run.Doop_2type; Run.Doop_zipper; Run.Doop_csc ]

(* ---------------------------------------------------------------- custom *)

(* [custom --analyses CSV]: an ad-hoc efficiency table over any analyses the
   grammar accepts (e.g. --analyses csc,kobj:3,no-collapse:csc). Parsed with
   Run.analysis_of_string so bench, the CLI and the server agree on names. *)
let custom_analyses : Run.analysis list ref = ref []

let custom_exp cfg =
  match !custom_analyses with
  | [] ->
    Fmt.epr
      "custom: no analyses given; pass --analyses CSV (e.g. --analyses \
       csc,2obj,kobj:3)@."
  | analyses ->
    efficiency_table cfg
      ~title:
        (Fmt.str "Custom: %s"
           (String.concat ", " (List.map Run.name analyses)))
      analyses

(* --------------------------------------------------------------- figure 12 *)

let fig12 cfg =
  Fmt.pr "@.=== Figure 12: analysis time (s) per program, Datalog engine ===@.";
  let analyses =
    [ Run.Doop_csc; Run.Doop_ci; Run.Doop_zipper; Run.Doop_2obj; Run.Doop_2type ]
  in
  (* bar chart, log-ish scale *)
  List.iter
    (fun pname ->
      Fmt.pr "@.%s:@." pname;
      List.iter
        (fun a ->
          let o = outcome cfg pname a in
          let t = if o.o_timeout then cfg.doop_budget else o.o_time in
          let bar = int_of_float (10. *. log10 (1. +. (t *. 100.))) in
          Fmt.pr "  %-14s %-8s |%s%s@." o.o_analysis (time_cell cfg a o)
            (String.make (max 1 bar) '#')
            (if o.o_timeout then "..." else ""))
        analyses)
    cfg.programs

(* ---------------------------------------------------------------- table 3 *)

let table3 cfg =
  Fmt.pr
    "@.=== Table 3: Zipper^e vs Cut-Shortcut (imperative engine \
     left, Datalog right in the paper; both engines below) ===@.";
  Fmt.pr "%-11s %-8s %9s %9s %9s %9s | %9s %9s %9s@." "program" "engine"
    "zip-total" "zip-pre" "zip-main" "selected" "csc-time" "involved" "overlap";
  List.iter
    (fun pname ->
      List.iter
        (fun (engine, zip_a, csc_a) ->
          let zo = outcome cfg pname zip_a in
          let co = outcome cfg pname csc_a in
          let selected =
            match zo.o_selected with Some b -> Bits.cardinal b | None -> 0
          in
          let involved =
            match co.o_involved with Some b -> Bits.cardinal b | None -> 0
          in
          let overlap =
            match (co.o_involved, zo.o_selected) with
            | Some i, Some s -> Fmt.str "%.1f%%" (100. *. Run.overlap ~involved:i ~selected:s)
            | _ -> "-"
          in
          Fmt.pr "%-11s %-8s %9s %9.2f %9.2f %9d | %9s %9d %9s@." pname engine
            (time_cell cfg zip_a zo) zo.o_pre_time zo.o_main_time selected
            (time_cell cfg csc_a co) involved overlap)
        [ ("tai-e", Run.Imp_zipper, Run.Imp_csc);
          ("doop", Run.Doop_zipper, Run.Doop_csc) ])
    cfg.programs

(* ----------------------------------------------------------------- recall *)

let recall cfg =
  Fmt.pr "@.=== Recall experiment (§5.1): dynamic coverage of each analysis ===@.";
  Fmt.pr "%-11s %10s %10s %-12s %10s %10s@." "program" "dyn-mtd" "dyn-edge"
    "analysis" "recall-m" "recall-e";
  List.iter
    (fun pname ->
      let p = program pname in
      let dyn = Csc_interp.Interp.run p in
      List.iter
        (fun a ->
          match (outcome cfg pname a).o_result with
          | None -> Fmt.pr "%-11s %10s %10s %-12s (timeout)@." pname "" "" (Run.name a)
          | Some r ->
            let rc =
              Metrics.recall r ~dyn_reach:dyn.dyn_reachable
                ~dyn_edges:dyn.dyn_edges
            in
            Fmt.pr "%-11s %10d %10d %-12s %9.1f%% %9.1f%%@." pname
              (Bits.cardinal dyn.dyn_reachable)
              (List.length dyn.dyn_edges)
              (Run.name a)
              (100. *. rc.recall_methods)
              (100. *. rc.recall_edges))
        [ Run.Imp_ci; Run.Imp_csc; Run.Doop_csc ])
    cfg.programs

(* --------------------------------------------------------------- ablation *)

let ablation_variants =
  Csc.
    [
      ("field", { field_pattern = true; container_pattern = false; local_flow = false });
      ("container", { field_pattern = false; container_pattern = true; local_flow = false });
      ("localflow", { field_pattern = false; container_pattern = false; local_flow = true });
    ]

let ablation cfg =
  Fmt.pr
    "@.=== Pattern-impact study (§5.1): share of CSC's precision improvement ===@.";
  let variants = ablation_variants in
  let clients =
    [
      ("#fail-cast", fun (m : Metrics.t) -> m.fail_cast);
      ("#reach-mtd", fun m -> m.reach_mtd);
      ("#poly-call", fun m -> m.poly_call);
      ("#call-edge", fun m -> m.call_edge);
    ]
  in
  (* average over programs of (CI - variant) / (CI - full CSC) *)
  let sums = Hashtbl.create 16 in
  let counts = ref 0 in
  List.iter
    (fun pname ->
      let ci = (outcome cfg pname Run.Imp_ci).o_metrics in
      let full = (outcome cfg pname Run.Imp_csc).o_metrics in
      match (ci, full) with
      | Some ci, Some full ->
        incr counts;
        List.iter
          (fun (vname, cfg_v) ->
            match (outcome cfg pname (Run.Imp_csc_cfg cfg_v)).o_metrics with
            | Some mv ->
              List.iter
                (fun (cname, f) ->
                  let denom = f ci - f full in
                  let share =
                    if denom <= 0 then 0.
                    else float (f ci - f mv) /. float denom
                  in
                  let key = (vname, cname) in
                  Hashtbl.replace sums key
                    (share
                    +. Option.value ~default:0. (Hashtbl.find_opt sums key)))
                clients
            | None -> ())
          variants
      | _ -> ())
    cfg.programs;
  Fmt.pr "%-11s" "pattern";
  List.iter (fun (cname, _) -> Fmt.pr " %11s" cname) clients;
  Fmt.pr "@.";
  List.iter
    (fun (vname, _) ->
      Fmt.pr "%-11s" vname;
      List.iter
        (fun (cname, _) ->
          let s = Option.value ~default:0. (Hashtbl.find_opt sums (vname, cname)) in
          Fmt.pr " %10.1f%%" (100. *. s /. float (max 1 !counts)))
        clients;
      Fmt.pr "@.")
    variants;
  Fmt.pr
    "(share of the CI->CSC improvement each pattern achieves alone, averaged \
     over programs;@. the three shares need not sum to 100%%: patterns \
     reinforce each other, §5.1)@."

(* ----------------------------------------------------------- extensions *)

(* Not in the paper: context-depth study on the programs where object
   sensitivity scales, showing the precision/cost curve CSC sidesteps. *)
let kstudy_programs cfg =
  List.filter
    (fun p -> List.mem p [ "hsqldb"; "findbugs"; "eclipse"; "jedit" ])
    cfg.programs

let kstudy cfg =
  Fmt.pr "@.=== Extension: context-depth study (kobj) vs CSC ===@.";
  Fmt.pr "%-11s %-10s %9s %11s %11s@." "program" "analysis" "time(s)"
    "#fail-cast" "#call-edge";
  let programs = kstudy_programs cfg in
  List.iter
    (fun pname ->
      List.iter
        (fun a ->
          let o = outcome cfg pname a in
          let fc, _, _, ce = metric_cells o in
          Fmt.pr "%-11s %-10s %9s %11s %11s@." pname o.o_analysis
            (time_cell cfg a o) fc ce)
        [ Run.Imp_ci; Run.Imp_kobj 1; Run.Imp_2obj; Run.Imp_kobj 3; Run.Imp_csc ])
    programs

(* Not in the paper: the instanceof-resolution client over CI vs CSC. *)
let extras cfg =
  Fmt.pr "@.=== Extension: unresolved instanceof sites (CI vs CSC) ===@.";
  Fmt.pr "%-11s %12s %12s@." "program" "ci" "csc";
  List.iter
    (fun pname ->
      let p = program pname in
      let get a =
        match (outcome cfg pname a).o_result with
        | Some r -> string_of_int (Metrics.unresolved_instanceof p r)
        | None -> "-"
      in
      Fmt.pr "%-11s %12s %12s@." pname (get Run.Imp_ci) (get Run.Imp_csc))
    cfg.programs

(* ----------------------------------------------------------------- checks *)

(* Not in the paper: the csc_checks diagnostic suite, CI vs CSC — the
   precision gain of Table 2 restated client-style as fewer false alarms
   (fail-cast, poly-call) on every workload. dead-store is PTA-independent
   and acts as a control column. *)
let checks cfg =
  Fmt.pr
    "@.=== Extension: flow-sensitive checker diagnostics (CI vs CSC) ===@.";
  Fmt.pr "%-11s %-9s %10s %10s %10s %10s %10s@." "program" "analysis" "total"
    "null-deref" "fail-cast" "poly-call" "dead-store";
  List.iter
    (fun pname ->
      let p = program pname in
      List.iter
        (fun a ->
          match (outcome cfg pname a).Run.o_result with
          | None -> Fmt.pr "%-11s %-9s (timeout)@." pname (Run.name a)
          | Some r ->
            let ds = Csc_checks.Checks.run_all p r in
            let count c =
              List.assoc c (Csc_checks.Checks.count_by_check ds)
            in
            Fmt.pr "%-11s %-9s %10d %10d %10d %10d %10d@." pname (Run.name a)
              (List.length ds) (count "null-deref") (count "fail-cast")
              (count "poly-call") (count "dead-store"))
        [ Run.Imp_ci; Run.Imp_csc ];
      Fmt.pr "@.")
    cfg.programs

(* --------------------------------------------------------- collapse (E11) *)

(* Not in the paper: the solver's online cycle collapsing + coalescing
   worklist, on vs off (EXPERIMENTS.md E11). Results are identical by
   construction — the differential test suite asserts it — so the table is
   about the work saved: propagation volume, worklist pressure and the
   collapsing counters themselves. *)
let collapse_analyses =
  [ Run.Imp_ci; Run.Imp_no_collapse Run.Imp_ci; Run.Imp_csc;
    Run.Imp_no_collapse Run.Imp_csc ]

let collapse_exp cfg =
  Fmt.pr "@.=== Extension: online cycle collapsing on/off (E11) ===@.";
  Fmt.pr "%-11s %-16s %9s %12s %12s %12s %9s %9s@." "program" "analysis"
    "time(s)" "propagated" "wl-pushes" "coalesced" "cycles" "merged";
  List.iter
    (fun pname ->
      List.iter
        (fun a ->
          let o = outcome cfg pname a in
          let c name =
            match o.Run.o_snapshot with
            | Some s -> (
              match Snapshot.counter_value s name with
              | Some v -> string_of_int v
              | None -> "-")
            | None -> "-"
          in
          Fmt.pr "%-11s %-16s %9s %12s %12s %12s %9s %9s@." pname o.o_analysis
            (time_cell cfg a o) (c "propagated") (c "wl_pushes")
            (c "wl_coalesced") (c "cycles_collapsed") (c "ptrs_merged"))
        collapse_analyses;
      Fmt.pr "@.")
    cfg.programs

(* ------------------------------------------------------------ taint (E13) *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

module Taint = Csc_taint.Taint

(* E13 (EXPERIMENTS.md): leak reports per analysis on the committed
   ground-truth corpus under examples/leaks. Programs named *_leak contain a
   flow every sound analysis must report; programs named *_ok are clean, so
   any report on them is a false positive. The paper's precision claim
   restated for the taint client: csc matches 2obj (zero false leaks) while
   ci over-reports on the field / container / dispatch merge patterns. *)

let leaks_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "examples/leaks"; "../examples/leaks"; "../../examples/leaks" ]

let leak_programs =
  lazy
    (match leaks_dir () with
    | None ->
      Fmt.epr "taint: examples/leaks not found (run from the repo root)@.";
      []
    | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".mjava")
      |> List.sort String.compare
      |> List.map (fun f ->
             ( Filename.chop_suffix f ".mjava",
               Csc_lang.Frontend.compile_string
                 (read_file (Filename.concat dir f)) )))

let taint_analyses = [ Run.Imp_ci; Run.Imp_csc; Run.Imp_2obj ]

(* corpus programs are tiny, so cells carry no timing: the regression gate
   compares leak counts only *)
let taint_cells_cache : (string * string * int) list option ref = ref None

let taint_cells cfg : (string * string * int) list =
  match !taint_cells_cache with
  | Some cells -> cells
  | None ->
    let cells =
      List.concat_map
        (fun (pname, p) ->
          List.map
            (fun a ->
              let o = Run.run ~budget_s:cfg.budget p a in
              let leaks =
                match o.Run.o_result with
                | None -> -1 (* timeout *)
                | Some r ->
                  List.length (Taint.diagnostics p (Taint.analyze p r))
              in
              (pname, Run.name a, leaks))
            taint_analyses)
        (Lazy.force leak_programs)
    in
    taint_cells_cache := Some cells;
    cells

let taint_exp cfg =
  Fmt.pr
    "@.=== Extension: taint leak reports on the ground-truth corpus (E13) \
     ===@.";
  Fmt.pr "%-24s %-9s %6s %9s@." "program" "analysis" "leaks" "expected";
  let cells = taint_cells cfg in
  List.iter
    (fun (pname, aname, leaks) ->
      let expected =
        if Filename.check_suffix pname "_ok" then
          if aname = "ci" then "0 or fp" else "0"
        else ">=1"
      in
      Fmt.pr "%-24s %-9s %6d %9s@." pname aname leaks expected)
    cells;
  Fmt.pr "@.";
  List.iter
    (fun a ->
      let aname = Run.name a in
      let mine = List.filter (fun (_, an, _) -> an = aname) cells in
      let false_leaks =
        List.fold_left
          (fun acc (p, _, n) ->
            if Filename.check_suffix p "_ok" then acc + max 0 n else acc)
          0 mine
      in
      let missed =
        List.length
          (List.filter
             (fun (p, _, n) -> Filename.check_suffix p "_leak" && n = 0)
             mine)
      in
      Fmt.pr "%-9s false leaks: %d   missed true leaks: %d@." aname
        false_leaks missed)
    taint_analyses

let taint_json cfg : Json.t =
  Json.Obj
    [ ("experiment", Json.Str "taint");
      ("cells",
       Json.List
         (List.map
            (fun (pname, aname, leaks) ->
              Json.Obj
                [ ("program", Json.Str pname);
                  ("analysis", Json.Str aname);
                  ("metrics", Json.Obj [ ("leaks", Json.Int leaks) ]) ])
            (taint_cells cfg))) ]

(* ---------------------------------------------------------- profile (E14) *)

module Attr = Csc_obs.Attr

(* E14 (EXPERIMENTS.md): cost attribution vs precision, ci / csc / 2obj.
   Profiled runs pay the telemetry overhead, so they keep their own cache —
   the timing experiments never see them — and their cells carry no time_s:
   the regression gate compares the precision metrics and ignores both the
   wall clock and the attribution payload. *)
let profile_analyses = [ Run.Imp_ci; Run.Imp_csc; Run.Imp_2obj ]

let profile_cells_cache : (string * string * Run.outcome) list option ref =
  ref None

let profile_cells cfg : (string * string * Run.outcome) list =
  match !profile_cells_cache with
  | Some cells -> cells
  | None ->
    let cells =
      List.concat_map
        (fun pname ->
          List.map
            (fun a ->
              Fmt.epr "  [%s / %s profiled] ...@." pname (Run.name a);
              let o =
                Run.run ~budget_s:cfg.budget ~profile:true ~profile_top:10
                  ~jobs:!run_jobs (program pname) a
              in
              let o = { o with Run.o_result = None } in
              Gc.compact ();
              (pname, Run.name a, o))
            profile_analyses)
        cfg.programs
    in
    profile_cells_cache := Some cells;
    cells

let profile_exp cfg =
  Fmt.pr "@.=== Extension: cost attribution vs precision (E14) ===@.";
  Fmt.pr "%-11s %-9s %11s %11s %12s %10s  %s@." "program" "analysis"
    "#fail-cast" "#call-edge" "propagated" "shortcuts" "hottest methods";
  List.iter
    (fun (pname, aname, (o : Run.outcome)) ->
      match o.o_profile with
      | None -> Fmt.pr "%-11s %-9s (timeout)@." pname aname
      | Some pr ->
        let fc, _, _, ce = metric_cells o in
        let hot =
          List.filteri (fun i _ -> i < 3) pr.Attr.p_methods
          |> List.map (fun (e : Attr.entry) -> e.e_name)
          |> String.concat ", "
        in
        Fmt.pr "%-11s %-9s %11s %11s %12d %10d  %s@." pname aname fc ce
          pr.Attr.p_props pr.Attr.p_shortcuts hot)
    (profile_cells cfg);
  Fmt.pr
    "(per-analysis hot-method attribution next to the precision it buys; \
     the shared hot set@. is where CSC's shortcut edges substitute for 2obj's \
     context duplication, E14)@."

let profile_json cfg : Json.t =
  Json.Obj
    [ ("experiment", Json.Str "profile");
      ( "cells",
        Json.List
          (List.map
             (fun (pname, aname, (o : Run.outcome)) ->
               Json.Obj
                 ([ ("program", Json.Str pname);
                    ("analysis", Json.Str aname);
                    ("timeout", Json.Bool o.o_timeout);
                    ( "metrics",
                      match o.o_metrics with
                      | None -> Json.Null
                      | Some m -> Report.metrics_json m ) ]
                 @
                 match o.o_profile with
                 | None -> []
                 | Some pr -> [ ("profile", Attr.profile_json pr) ]))
             (profile_cells cfg)) ) ]

(* ---------------------------------------------------------- scaling (E15) *)

(* E15 (EXPERIMENTS.md): multicore scaling of the imperative solver. Every
   (program, analysis) pair is solved once per jobs leg; the four precision
   metrics are asserted identical across legs inside this experiment — a
   divergence is a parallel-solver bug and fails the whole bench run, not
   just the gate. The serialized cells carry the wall clock as [wall_s]
   (never [time_s]): domain-count timings on shared runners are exactly what
   the regression gate must not compare, while the precision metrics stay
   byte-comparable. Own cache: legs are keyed by jobs, which the shared memo
   cache does not know about. *)
let scaling_analyses = [ Run.Imp_ci; Run.Imp_csc ]

let scaling_cells_cache :
    (string * string * int * Run.outcome) list option ref =
  ref None

let scaling_cells cfg : (string * string * int * Run.outcome) list =
  match !scaling_cells_cache with
  | Some cells -> cells
  | None ->
    let legs = if cfg.quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
    (* full mode measures the two largest workloads, where there is enough
       propagation to amortize round barriers; quick mode reuses the CI
       programs so the gate has cells to compare *)
    let programs = if cfg.quick then cfg.programs else [ "soot"; "freecol" ] in
    let cells =
      List.concat_map
        (fun pname ->
          List.concat_map
            (fun a ->
              List.map
                (fun jobs ->
                  Fmt.epr "  [%s / %s on %d domain(s)] ...@." pname
                    (Run.name a) jobs;
                  let o =
                    Run.run ~budget_s:cfg.budget ~jobs (program pname) a
                  in
                  let o = { o with Run.o_result = None } in
                  Gc.compact ();
                  (pname, Run.name a, jobs, o))
                legs)
            scaling_analyses)
        programs
    in
    (* schedule-independence is the whole contract: every leg must agree
       with the sequential solve on all four precision metrics *)
    List.iter
      (fun (pname, aname, jobs, (o : Run.outcome)) ->
        match
          List.find_opt
            (fun (p, a, j, _) -> p = pname && a = aname && j = 1)
            cells
        with
        | Some (_, _, _, base)
          when (not o.Run.o_timeout) && not base.Run.o_timeout ->
          if o.Run.o_metrics <> base.Run.o_metrics then begin
            Fmt.epr
              "scaling: FAIL %s/%s precision differs at --jobs %d vs \
               sequential@."
              pname aname jobs;
            exit 1
          end
        | _ -> ())
      cells;
    scaling_cells_cache := Some cells;
    cells

let scaling_exp cfg =
  Fmt.pr "@.=== Extension: multicore scaling of the solver, --jobs N (E15) ===@.";
  if not Csc_common.Domains_compat.available then
    Fmt.pr "(sequential build: OCaml < 5, every leg runs on one domain)@.";
  Fmt.pr "%-11s %-9s %5s %9s %8s %11s %11s@." "program" "analysis" "jobs"
    "time(s)" "speedup" "#fail-cast" "#call-edge";
  let base_times = Hashtbl.create 8 in
  List.iter
    (fun (pname, aname, jobs, (o : Run.outcome)) ->
      if jobs = 1 then Hashtbl.replace base_times (pname, aname) o.Run.o_time;
      let fc, _, _, ce = metric_cells o in
      let time =
        if o.Run.o_timeout then Fmt.str ">%.0fs" cfg.budget
        else Fmt.str "%.2f" o.Run.o_time
      in
      let speedup =
        match Hashtbl.find_opt base_times (pname, aname) with
        | Some base when (not o.Run.o_timeout) && o.Run.o_time > 0. ->
          Fmt.str "%.2fx" (base /. o.Run.o_time)
        | _ -> "-"
      in
      Fmt.pr "%-11s %-9s %5d %9s %8s %11s %11s@." pname aname jobs time speedup
        fc ce)
    (scaling_cells cfg);
  Fmt.pr
    "(precision metrics are asserted identical across every jobs leg; \
     speedup is wall-clock@. vs the sequential solver on this machine, E15)@."

let scaling_json cfg : Json.t =
  Json.Obj
    [ ("experiment", Json.Str "scaling");
      ( "cells",
        Json.List
          (List.map
             (fun (pname, aname, jobs, (o : Run.outcome)) ->
               Json.Obj
                 [ ("program", Json.Str pname);
                   ("analysis", Json.Str (Fmt.str "%s@j%d" aname jobs));
                   ("jobs", Json.Int jobs);
                   ("timeout", Json.Bool o.o_timeout);
                   ("wall_s", Json.Float o.o_time);
                   ( "metrics",
                     match o.o_metrics with
                     | None -> Json.Null
                     | Some m -> Report.metrics_json m ) ])
             (scaling_cells cfg)) ) ]

(* ------------------------------------------------------ incremental (E17) *)

(* E17 (EXPERIMENTS.md): edit latency of the incremental layer vs a
   from-scratch solve. For each (program, analysis) the base revision v0 is
   solved keeping state, then a reproducible single-method edit
   (v1 = [Suite.source_variant _ 1]) is analyzed twice — from scratch and
   through [Run.update] — and the update is hard-asserted to reproduce the
   scratch precision metrics. Edit-path independence is asserted too:
   reaching v1 directly and via a detour through v2 must agree on every
   precision metric, else the whole bench run fails. Wall clocks serialize
   as [fresh_s]/[update_s] (never [time_s]: the regression gate must not
   compare them); the deterministic quantities — the edited revision's
   precision metrics plus the update's mode, dirty-method count and reuse
   ratio — go under [metrics] and are gate-compared. The reuse statistics
   are deterministic for a fixed [--jobs]; the committed baseline is
   [--jobs 1], which is what CI runs. Own cache: update cells are outside
   the shared memo cache's (program, analysis) model. *)
let inc_analyses = [ Run.Imp_ci; Run.Imp_csc ]

type inc_cell = {
  ic_program : string;
  ic_analysis : string;
  ic_fresh : Run.outcome;   (* v1 solved from scratch *)
  ic_update : Run.outcome;  (* v1 reached incrementally from v0's state *)
  ic_info : Csc_pta.Inc.info;
}

let inc_cells_cache : inc_cell list option ref = ref None

let inc_cells cfg : inc_cell list =
  match !inc_cells_cache with
  | Some cells -> cells
  | None ->
    (* full mode measures the two largest workloads — the programs where
       edit latency matters; quick mode reuses the CI trio so the gate has
       cells to compare *)
    let programs = if cfg.quick then cfg.programs else [ "soot"; "columba" ] in
    let variant name v =
      Csc_lang.Frontend.compile_string (Suite.source_variant name v)
    in
    let cells =
      List.concat_map
        (fun pname ->
          let v0 = variant pname 0
          and v1 = variant pname 1
          and v2 = variant pname 2 in
          List.map
            (fun a ->
              Fmt.epr "  [%s / %s edit] ...@." pname (Run.name a);
              let spec =
                {
                  (Run.spec a) with
                  Run.sp_budget_s = Some cfg.budget;
                  sp_jobs = !run_jobs;
                }
              in
              let _, st0 = Run.run_spec_keep spec v0 in
              let st0 =
                match st0 with
                | Some st -> st
                | None ->
                  Fmt.epr "incremental: %s/%s base solve retained no state@."
                    pname (Run.name a);
                  exit 1
              in
              let fresh = Run.run_spec spec v1 in
              let upd, _, info = Run.update spec ~prev:st0 v1 in
              (* exactness: the update must land on scratch's metrics *)
              if
                (not fresh.Run.o_timeout)
                && (not upd.Run.o_timeout)
                && upd.Run.o_metrics <> fresh.Run.o_metrics
              then begin
                Fmt.epr "incremental: FAIL %s/%s update differs from scratch@."
                  pname (Run.name a);
                exit 1
              end;
              (* edit-path independence: v0 -> v2 -> v1 must agree with the
                 direct edit v0 -> v1 on every precision metric *)
              let o2, st2, _ = Run.update spec ~prev:st0 v2 in
              (match st2 with
              | Some st2 when not o2.Run.o_timeout ->
                let detour, _, _ = Run.update spec ~prev:st2 v1 in
                if
                  (not detour.Run.o_timeout)
                  && detour.Run.o_metrics <> upd.Run.o_metrics
                then begin
                  Fmt.epr
                    "incremental: FAIL %s/%s precision depends on the edit \
                     path@."
                    pname (Run.name a);
                  exit 1
                end
              | _ -> ());
              Gc.compact ();
              {
                ic_program = pname;
                ic_analysis = Run.name a;
                ic_fresh = fresh;
                ic_update = upd;
                ic_info = info;
              })
            inc_analyses)
        programs
    in
    inc_cells_cache := Some cells;
    cells

let incremental_exp cfg =
  Fmt.pr
    "@.=== Extension: incremental update latency after one edit (E17) ===@.";
  Fmt.pr "%-11s %-9s %9s %10s %8s %6s %7s@." "program" "analysis" "fresh(s)"
    "update(s)" "speedup" "dirty" "reuse";
  List.iter
    (fun c ->
      let speedup =
        if (not c.ic_update.Run.o_timeout) && c.ic_update.Run.o_time > 0. then
          Fmt.str "%.1fx" (c.ic_fresh.Run.o_time /. c.ic_update.Run.o_time)
        else "-"
      in
      Fmt.pr "%-11s %-9s %9.3f %10.3f %8s %6d %6.1f%%@." c.ic_program
        c.ic_analysis c.ic_fresh.Run.o_time c.ic_update.Run.o_time speedup
        c.ic_info.Csc_pta.Inc.i_dirty_methods
        (100. *. c.ic_info.Csc_pta.Inc.i_reuse);
      (* the acceptance target: a single-method edit under 25% of scratch.
         Soft — wall clock on shared runners is advisory — and only
         meaningful on the full-size workloads; on the --quick trio the
         constant diff/preseed overhead dominates a sub-100ms solve *)
      if
        (not cfg.quick)
        && (not c.ic_update.Run.o_timeout)
        && c.ic_update.Run.o_time > 0.25 *. c.ic_fresh.Run.o_time
      then
        Fmt.epr
          "incremental: warn %s/%s update %.3fs exceeds 25%% of scratch %.3fs \
           (soft)@."
          c.ic_program c.ic_analysis c.ic_update.Run.o_time
          c.ic_fresh.Run.o_time)
    (inc_cells cfg);
  Fmt.pr
    "(update = scratch asserted on every cell; reaching the same revision \
     along two edit@. paths is asserted metric-identical, E17)@."

let incremental_json cfg : Json.t =
  Json.Obj
    [ ("experiment", Json.Str "incremental");
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               let precision =
                 match c.ic_update.Run.o_metrics with
                 | None -> []
                 | Some m -> (
                   match Report.metrics_json m with
                   | Json.Obj l -> l
                   | j -> [ ("precision", j) ])
               in
               Json.Obj
                 [ ("program", Json.Str c.ic_program);
                   ("analysis", Json.Str c.ic_analysis);
                   ( "timeout",
                     Json.Bool
                       (c.ic_fresh.Run.o_timeout || c.ic_update.Run.o_timeout)
                   );
                   ("fresh_s", Json.Float c.ic_fresh.Run.o_time);
                   ("update_s", Json.Float c.ic_update.Run.o_time);
                   ( "metrics",
                     Json.Obj
                       (precision
                       @ [ ( "mode",
                             Json.Str
                               (match c.ic_info.Csc_pta.Inc.i_mode with
                               | `Incremental -> "incremental"
                               | `Fresh -> "fresh") );
                           ( "dirty_methods",
                             Json.Int c.ic_info.Csc_pta.Inc.i_dirty_methods );
                           ( "reuse_pct",
                             Json.Float
                               (Float.round
                                  (100_000. *. c.ic_info.Csc_pta.Inc.i_reuse)
                               /. 1000.) ) ]) ) ])
             (inc_cells cfg)) ) ]

(* ------------------------------------------------------------------ micro *)

let micro () =
  Fmt.pr "@.=== Micro-benchmarks (Bechamel) ===@.";
  let open Bechamel in
  let bits_union =
    Test.make ~name:"bits-union-1k"
      (Staged.stage (fun () ->
           let a = Bits.create () and b = Bits.create () in
           for i = 0 to 999 do
             ignore (Bits.add a (i * 3));
             ignore (Bits.add b (i * 5))
           done;
           ignore (Bits.union_into ~into:a b)))
  in
  let parse_jdk =
    Test.make ~name:"frontend-jdk"
      (Staged.stage (fun () ->
           ignore (Csc_lang.Parser.parse_program Csc_lang.Jdk.source)))
  in
  let small = Csc_workloads.Gen.(generate small_shape) in
  let small_prog = Csc_lang.Frontend.compile_string small in
  let solver_ci =
    Test.make ~name:"solver-ci-small"
      (Staged.stage (fun () ->
           ignore (Csc_pta.Solver.analyze small_prog)))
  in
  let solver_csc =
    Test.make ~name:"solver-csc-small"
      (Staged.stage (fun () ->
           ignore (Csc_pta.Solver.analyze ~plugin_of:Csc.plugin small_prog)))
  in
  let datalog_tc =
    Test.make ~name:"datalog-tc-500"
      (Staged.stage (fun () ->
           let t = Csc_datalog.Engine.create () in
           for i = 0 to 499 do
             Csc_datalog.Engine.fact t "edge" [ i; i + 1 ]
           done;
           Csc_datalog.Engine.fact t "reach" [ 0 ];
           Csc_datalog.Engine.(
             add_rule t
               (atom "reach" [ V "y" ]
               <-- [ atom "reach" [ V "x" ]; atom "edge" [ V "x"; V "y" ] ]));
           Csc_datalog.Engine.solve t))
  in
  let interp_small =
    Test.make ~name:"interp-small"
      (Staged.stage (fun () -> ignore (Csc_interp.Interp.run small_prog)))
  in
  let tests =
    [ bits_union; parse_jdk; solver_ci; solver_csc; datalog_tc; interp_small ]
  in
  let cfg_b =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg_b
          Toolkit.Instance.[ monotonic_clock ]
          (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Fmt.pr "%-24s %12.1f ns/run@." name t
          | _ -> Fmt.pr "%-24s (no estimate)@." name)
        ols)
    tests

(* ------------------------------------------------------------ bench JSON *)

let experiment_names =
  [ "fig12"; "table1"; "table2"; "table3"; "recall"; "ablation"; "kstudy";
    "extras"; "checks"; "collapse"; "taint"; "profile"; "scaling";
    "incremental"; "micro"; "custom" ]

(* the (program, analysis) cells each experiment reads. Serializing an
   experiment maps its grid through the memo cache, so the report re-runs
   nothing. micro has no analysis grid and is not serialized. *)
let grid_of_experiment cfg exp : (string * Run.analysis) list =
  let cross programs analyses =
    List.concat_map (fun p -> List.map (fun a -> (p, a)) analyses) programs
  in
  match exp with
  | "table2" ->
    cross cfg.programs
      [ Run.Imp_ci; Run.Imp_2obj; Run.Imp_2type; Run.Imp_zipper; Run.Imp_csc ]
  | "table1" | "fig12" ->
    cross cfg.programs
      [ Run.Doop_ci; Run.Doop_2obj; Run.Doop_2type; Run.Doop_zipper;
        Run.Doop_csc ]
  | "table3" ->
    cross cfg.programs
      [ Run.Imp_zipper; Run.Imp_csc; Run.Doop_zipper; Run.Doop_csc ]
  | "recall" -> cross cfg.programs [ Run.Imp_ci; Run.Imp_csc; Run.Doop_csc ]
  | "ablation" ->
    cross cfg.programs
      (Run.Imp_ci :: Run.Imp_csc
      :: List.map (fun (_, v) -> Run.Imp_csc_cfg v) ablation_variants)
  | "kstudy" ->
    cross (kstudy_programs cfg)
      [ Run.Imp_ci; Run.Imp_kobj 1; Run.Imp_2obj; Run.Imp_kobj 3; Run.Imp_csc ]
  | "extras" | "checks" -> cross cfg.programs [ Run.Imp_ci; Run.Imp_csc ]
  | "collapse" -> cross cfg.programs collapse_analyses
  | "custom" -> cross cfg.programs !custom_analyses
  | _ -> []

let experiment_json cfg exp : Json.t option =
  (* taint cells come from the on-disk corpus, not the Suite grid; profile
     cells re-run with telemetry on, bypassing the shared memo cache *)
  if exp = "taint" then Some (taint_json cfg)
  else if exp = "profile" then Some (profile_json cfg)
  else if exp = "scaling" then Some (scaling_json cfg)
  else if exp = "incremental" then Some (incremental_json cfg)
  else
  match grid_of_experiment cfg exp with
  | [] -> None
  | grid ->
    Some
      (Report.experiment_json ~name:exp
         (List.map (fun (p, a) -> (p, outcome cfg p a)) grid))

(* --------------------------------------------------------- regression gate *)

(* [--compare BASELINE.json]: match this run's cells against a committed
   baseline by (experiment, program, analysis). Precision metrics must be
   identical — any drift is a hard failure, since every solver optimization
   in this repo is required to be semantics-preserving. Time may regress up
   to 25% (plus a 50ms jitter floor); beyond that it is a failure too unless
   [soft_time] downgrades it to a warning. Cells absent on either side, or
   timed out on either side, are skipped with a note. Returns the number of
   hard failures. *)
let compare_reports ~soft_time ~baseline (reports : (string * Json.t) list) :
    int =
  let failures = ref 0 in
  let baseline_exps =
    match Json.member "experiments" baseline with
    | Some l -> Option.value ~default:[] (Json.get_list l)
    | None -> [ baseline ]  (* a bare single-experiment document *)
  in
  let exp_name j = Option.bind (Json.member "experiment" j) Json.get_string in
  let cells j =
    Option.value ~default:[]
      (Option.bind (Json.member "cells" j) Json.get_list)
  in
  let cell_key c =
    match
      ( Option.bind (Json.member "program" c) Json.get_string,
        Option.bind (Json.member "analysis" c) Json.get_string )
    with
    | Some p, Some a -> Some (p, a)
    | _ -> None
  in
  List.iter
    (fun (ename, j) ->
      match
        List.find_opt (fun b -> exp_name b = Some ename) baseline_exps
      with
      | None ->
        Fmt.epr "compare: no baseline for experiment %s (skipped)@." ename
      | Some b ->
        let base_cells = cells b in
        List.iter
          (fun cur ->
            match cell_key cur with
            | None -> ()
            | Some (p, a) -> (
              match
                List.find_opt (fun bc -> cell_key bc = Some (p, a)) base_cells
              with
              | None ->
                Fmt.epr "compare: %s/%s/%s not in baseline (skipped)@." ename p
                  a
              | Some bc ->
                let timed_out c =
                  Option.bind (Json.member "timeout" c) Json.get_bool
                  = Some true
                in
                if timed_out cur || timed_out bc then
                  Fmt.epr "compare: %s/%s/%s timed out (skipped)@." ename p a
                else begin
                  (match (Json.member "metrics" cur, Json.member "metrics" bc)
                   with
                  | Some mc, Some mb when mc <> mb ->
                    incr failures;
                    Fmt.epr
                      "compare: FAIL %s/%s/%s precision metrics changed@.  \
                       baseline %s@.  current  %s@."
                      ename p a (Json.to_string mb) (Json.to_string mc)
                  | _ -> ());
                  match
                    ( Option.bind (Json.member "time_s" cur) Json.get_float,
                      Option.bind (Json.member "time_s" bc) Json.get_float )
                  with
                  | Some tc, Some tb when tc > (tb *. 1.25) +. 0.05 ->
                    if soft_time then
                      Fmt.epr
                        "compare: warn %s/%s/%s time %.3fs vs baseline %.3fs \
                         (soft)@."
                        ename p a tc tb
                    else begin
                      incr failures;
                      Fmt.epr
                        "compare: FAIL %s/%s/%s time %.3fs vs baseline %.3fs \
                         (>25%% regression)@."
                        ename p a tc tb
                    end
                  | _ -> ()
                end))
          (cells j))
    reports;
  !failures

(* ------------------------------------------------------------------- main *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let has f = List.mem f args in
  let value ~default key =
    let rec go = function
      | k :: v :: _ when k = key -> float_of_string v
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let string_value key =
    let rec go = function
      | k :: v :: _ when k = key && String.length v > 0 && v.[0] <> '-' ->
        Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  (* --json FILE = one document; bare --json = BENCH_<exp>.json per
     experiment (an experiment name after --json is NOT a file) *)
  let json_mode =
    if not (has "--json") then None
    else
      match string_value "--json" with
      | Some v when not (List.mem v ("all" :: experiment_names)) -> Some (Some v)
      | _ -> Some None
  in
  (* --out DIR: directory for all emitted JSON (created if missing), so bare
     --json stops dropping BENCH_*.json into the working tree *)
  let out_dir = string_value "--out" in
  let out_path file =
    match out_dir with
    | None -> file
    | Some dir ->
      if not (Sys.file_exists dir) then
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      Filename.concat dir file
  in
  (match string_value "--trace" with
  | Some file -> Trace.start ~file
  | None -> ());
  let compare_file = string_value "--compare" in
  let soft_time = has "--soft-time" in
  let quick = has "--quick" in
  let cfg =
    {
      programs =
        (if quick then [ "hsqldb"; "findbugs"; "eclipse" ] else Suite.names);
      budget = value ~default:(if quick then 20. else 60.) "--budget";
      doop_budget =
        value ~default:(if quick then 60. else 150.) "--doop-budget";
      quick;
    }
  in
  run_jobs := max 1 (int_of_float (value ~default:1. "--jobs"));
  (match string_value "--analyses" with
  | None -> ()
  | Some csv ->
    custom_analyses :=
      List.map
        (fun s ->
          match Run.analysis_of_string (String.trim s) with
          | Ok a -> a
          | Error e ->
            Fmt.epr "bench: --analyses: %s@." e;
            exit 2)
        (String.split_on_char ',' csv));
  let experiments =
    List.filter
      (fun a -> not (String.length a > 1 && a.[0] = '-'))
      (List.filter (fun a -> a <> string_of_float cfg.budget) args)
    |> List.filter (fun a -> List.mem a ("all" :: experiment_names))
  in
  let experiments =
    if experiments = [] || List.mem "all" experiments then
      (* cheap (imperative) experiments first so interrupted runs still
         cover every experiment; the Datalog grid (table1/fig12) comes last *)
      [ "table2"; "collapse"; "recall"; "ablation"; "kstudy"; "extras";
        "checks"; "taint"; "profile"; "scaling"; "incremental"; "micro";
        "table3"; "table1"; "fig12" ]
    else experiments
  in
  Fmt.pr "cutshortcut bench: programs=[%s] budget=%.0fs doop-budget=%.0fs@."
    (String.concat ", " cfg.programs)
    cfg.budget cfg.doop_budget;
  let reports = ref [] in
  List.iter
    (fun e ->
      (match e with
      | "table2" -> table2 cfg
      | "table1" -> table1 cfg
      | "fig12" -> fig12 cfg
      | "table3" -> table3 cfg
      | "recall" -> recall cfg
      | "ablation" -> ablation cfg
      | "kstudy" -> kstudy cfg
      | "extras" -> extras cfg
      | "checks" -> checks cfg
      | "collapse" -> collapse_exp cfg
      | "taint" -> taint_exp cfg
      | "profile" -> profile_exp cfg
      | "scaling" -> scaling_exp cfg
      | "incremental" -> incremental_exp cfg
      | "micro" -> micro ()
      | "custom" -> custom_exp cfg
      | _ -> ());
      if json_mode <> None || compare_file <> None then
        match experiment_json cfg e with
        | Some j -> reports := (e, j) :: !reports
        | None -> ())
    experiments;
  (match json_mode with
  | None -> ()
  | Some (Some file) ->
    let file = out_path file in
    Report.write_file file
      (Json.Obj [ ("experiments", Json.List (List.rev_map snd !reports)) ]);
    Fmt.epr "wrote %s@." file
  | Some None ->
    List.iter
      (fun (e, j) ->
        let file = out_path ("BENCH_" ^ e ^ ".json") in
        Report.write_file file j;
        Fmt.epr "wrote %s@." file)
      (List.rev !reports));
  let gate_failures =
    match compare_file with
    | None -> 0
    | Some file -> (
      match Json.parse (read_file file) with
      | Error e ->
        Fmt.epr "compare: cannot parse %s: %s@." file e;
        1
      | Ok baseline ->
        let n =
          compare_reports ~soft_time ~baseline (List.rev !reports)
        in
        if n = 0 then Fmt.epr "compare: OK, no regressions vs %s@." file
        else Fmt.epr "compare: %d regression(s) vs %s@." n file;
        n)
  in
  Trace.finish ();
  if gate_failures > 0 then exit 1

(** Container audit: use the fail-cast client to find downcasts after
    container reads that a precise analysis can prove safe.

    This is the scenario the paper's intro motivates: context-insensitive
    analysis merges the contents of every ArrayList/HashMap, so casts on
    retrieved elements all look dangerous; Cut-Shortcut restores per-container
    precision at context-insensitive cost.

    Run with: dune exec examples/container_audit.exe *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Metrics = Csc_clients.Metrics
module Bits = Csc_common.Bits

let source =
  {|
class Invoice { int total; void stamp() { this.total = 1; } }
class Customer { Object name; }
class Shipment { }

class Ledger {
  ArrayList invoices;
  HashMap byCustomer;
  Ledger() {
    this.invoices = new ArrayList();
    this.byCustomer = new HashMap();
  }
  void book(Invoice inv, Customer c) {
    this.invoices.add(inv);
    this.byCustomer.put(c, inv);
  }
  Invoice lookup(Customer c) {
    Invoice r = (Invoice) this.byCustomer.get(c);
    return r;
  }
}

class Warehouse {
  ArrayList shipments;
  Warehouse() { this.shipments = new ArrayList(); }
  void accept(Shipment s) { this.shipments.add(s); }
}

class Main {
  static void main() {
    Ledger ledger = new Ledger();
    Warehouse wh = new Warehouse();

    Customer alice = new Customer();
    Invoice inv1 = new Invoice();
    ledger.book(inv1, alice);
    wh.accept(new Shipment());

    // the casts below are all dynamically safe; a merged analysis cannot
    // tell invoices from shipments and flags every one of them
    Invoice back = ledger.lookup(alice);
    back.stamp();

    Iterator it = ledger.invoices.iterator();
    while (it.hasNext()) {
      Invoice i = (Invoice) it.next();
      i.stamp();
    }

    Iterator st = wh.shipments.iterator();
    while (st.hasNext()) {
      Shipment s = (Shipment) st.next();
      System.print(s);
    }
    System.print(back);
  }
}
|}

let report name (p : Ir.program) (r : Solver.result) =
  let m = Metrics.compute p r in
  Fmt.pr "%-14s time=%.3fs  may-fail casts: %d / %d   poly calls: %d@." name
    r.r_time m.fail_cast (Array.length p.casts) m.poly_call;
  (* list the casts still flagged *)
  Ir.iter_all_stmts
    (fun mid s ->
      if Bits.mem r.r_reach mid then
        match s with
        | Ir.Cast { ty; rhs; site; _ } ->
          let may_fail =
            Bits.exists
              (fun a -> not (Ir.subtype p (Ir.alloc_typ p a) ty))
              (r.r_pt rhs)
          in
          if may_fail then
            Fmt.pr "    ! cast to %a at line %d of %s may fail@." (Ir.pp_typ p)
              ty (Ir.cast p site).x_line (Ir.method_name p mid)
        | _ -> ())
    p

let () =
  let p = Csc_lang.Frontend.compile_string source in
  let ci = Solver.result (Solver.analyze p) in
  let csc = Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p) in
  Fmt.pr "== context-insensitive ==@.";
  report "ci" p ci;
  Fmt.pr "@.== cut-shortcut ==@.";
  report "csc" p csc;
  Fmt.pr "@.(ground truth: the program runs with no cast failure)@.";
  let o = Csc_interp.Interp.run p in
  Fmt.pr "run ok, %d steps@." o.steps

examples/taint_tracker.ml: Array Csc_common Csc_core Csc_ir Csc_lang Csc_pta Fmt List String

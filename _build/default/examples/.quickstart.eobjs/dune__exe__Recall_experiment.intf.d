examples/recall_experiment.mli:

examples/devirtualizer.mli:

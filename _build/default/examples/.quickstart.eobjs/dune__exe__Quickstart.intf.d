examples/quickstart.mli:

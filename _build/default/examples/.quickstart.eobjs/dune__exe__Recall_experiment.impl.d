examples/recall_experiment.ml: Csc_clients Csc_common Csc_driver Csc_interp Csc_ir Csc_workloads Fmt List

examples/quickstart.ml: Array Csc_common Csc_core Csc_interp Csc_ir Csc_lang Csc_pta Fmt List String

examples/container_audit.mli:

examples/taint_tracker.mli:

examples/devirtualizer.ml: Csc_core Csc_ir Csc_lang Csc_pta Fmt Hashtbl List Option

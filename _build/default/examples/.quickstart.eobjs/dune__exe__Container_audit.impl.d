examples/container_audit.ml: Array Csc_clients Csc_common Csc_core Csc_interp Csc_ir Csc_lang Csc_pta Fmt

(** The paper's §5.1 recall experiment, end to end on one generated
    workload: execute the program, record dynamically reachable methods and
    call edges, and verify that every analysis over-approximates them
    (recall = 100%), while precision (here: spurious call edges) differs.

    Run with: dune exec examples/recall_experiment.exe *)

module Run = Csc_driver.Run
module Suite = Csc_workloads.Suite
module Bits = Csc_common.Bits

let () =
  let name = "hsqldb" in
  let p = Suite.compile name in
  Fmt.pr "workload %s: %a@.@." name Csc_ir.Ir.pp_stats (Csc_ir.Ir.stats p);

  let dyn = Csc_interp.Interp.run p in
  Fmt.pr "dynamic run: %d steps, %d reachable methods, %d call edges@.@."
    dyn.steps
    (Bits.cardinal dyn.dyn_reachable)
    (List.length dyn.dyn_edges);

  let analyses = [ Run.Imp_ci; Run.Imp_csc; Run.Imp_2type; Run.Doop_csc ] in
  Fmt.pr "%-12s %10s %10s %14s %14s@." "analysis" "recall-m" "recall-e"
    "static-mtd" "static-edges";
  List.iter
    (fun a ->
      let o = Run.run ~budget_s:120. p a in
      match o.o_result with
      | None -> Fmt.pr "%-12s (timeout)@." o.o_analysis
      | Some r ->
        let rc =
          Csc_clients.Metrics.recall r ~dyn_reach:dyn.dyn_reachable
            ~dyn_edges:dyn.dyn_edges
        in
        Fmt.pr "%-12s %9.1f%% %9.1f%% %14d %14d@." o.o_analysis
          (100. *. rc.recall_methods) (100. *. rc.recall_edges)
          (Bits.cardinal r.r_reach) (List.length r.r_edges))
    analyses;
  Fmt.pr
    "@.All analyses over-approximate the dynamic behaviour (100%% recall);@.";
  Fmt.pr "the differences in static counts are precision, not unsoundness.@."

(** Quickstart: compile a MiniJava snippet, run context-insensitive and
    Cut-Shortcut pointer analyses, and compare what a variable may point to.

    Run with: dune exec examples/quickstart.exe *)

module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Csc = Csc_core.Csc
module Bits = Csc_common.Bits

(* The paper's motivating example (Figure 1). *)
let source =
  {|
class Item { }

class Carton {
  Item item;
  void setItem(Item item) { this.item = item; }
  Item getItem() {
    Item r = this.item;
    return r;
  }
}

class Main {
  static void main() {
    Carton c1 = new Carton();
    Item item1 = new Item();
    c1.setItem(item1);
    Item result1 = c1.getItem();

    Carton c2 = new Carton();
    Item item2 = new Item();
    c2.setItem(item2);
    Item result2 = c2.getItem();
    System.print(result1);
    System.print(result2);
  }
}
|}

let find_var (p : Ir.program) name =
  let found = ref (-1) in
  Array.iter
    (fun (v : Ir.var) ->
      if v.v_name = name && Ir.method_name p v.v_method = "Main.main" then
        found := v.v_id)
    p.vars;
  !found

let show (p : Ir.program) (r : Solver.result) var_name =
  let v = find_var p var_name in
  let allocs = r.r_pt v in
  Fmt.pr "  pt(%s) under %-4s = {%s}@." var_name r.r_name
    (String.concat ", "
       (List.map
          (fun a ->
            let site = Ir.alloc p a in
            Fmt.str "%s@line%d"
              (match site.a_kind with
              | `Class c -> Ir.class_name p c
              | `Array _ -> "array"
              | `String -> "String")
              site.a_line)
          (Bits.to_list allocs)))

let () =
  (* 1. compile: the mini-JDK is linked in automatically *)
  let p = Csc_lang.Frontend.compile_string source in
  Fmt.pr "compiled: %a@.@." Ir.pp_stats (Ir.stats p);

  (* 2. the fast-but-imprecise baseline: Andersen context-insensitive *)
  let ci = Solver.result (Solver.analyze p) in
  Fmt.pr "Context insensitivity merges both cartons' items:@.";
  show p ci "result1";
  show p ci "result2";

  (* 3. Cut-Shortcut: same solver, but the plugin cuts the PFG edges that
     carry merged flows and adds precise shortcut edges instead *)
  let csc = Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p) in
  Fmt.pr "@.Cut-Shortcut separates them (without any contexts):@.";
  show p csc "result1";
  show p csc "result2";

  (* 4. it also runs the program, if you want ground truth *)
  let o = Csc_interp.Interp.run p in
  Fmt.pr "@.Concrete run printed: %s@." (String.concat ", " o.output)

(** More Datalog engine tests: builtin functors, degenerate relations,
    join-ordering stress, and cross-engine precision relations. *)

module E = Csc_datalog.Engine
open E

let v x = V x
let c x = C x

let test_builtin_functor () =
  let t = create () in
  add_builtin t "succ" (fun args -> args.(0) + 1);
  fact t "n" [ 1 ];
  fact t "n" [ 2 ];
  add_rule t (atom "m" [ v "y" ] <-- [ atom "n" [ v "x" ]; fn "succ" [ v "x"; v "y" ] ]);
  solve t;
  Alcotest.(check bool) "2 derived" true
    (List.exists (fun tup -> tup = [| 2 |]) (tuples t "m"));
  Alcotest.(check bool) "3 derived" true
    (List.exists (fun tup -> tup = [| 3 |]) (tuples t "m"))

let test_builtin_as_filter () =
  (* builtin output unified against an already-bound variable acts as a
     filter *)
  let t = create () in
  add_builtin t "double" (fun args -> 2 * args.(0));
  fact t "pair" [ 2; 4 ];
  fact t "pair" [ 3; 5 ];
  add_rule t
    (atom "ok" [ v "x" ]
    <-- [ atom "pair" [ v "x"; v "y" ]; fn "double" [ v "x"; v "y" ] ]);
  solve t;
  Alcotest.(check int) "only the doubling pair" 1 (count t "ok")

let test_builtin_interning () =
  (* the pattern used by the context-sensitive rules: an interning functor *)
  let interner = Csc_common.Interner.create (-1, -1) in
  let t = create () in
  add_builtin t "mkpair" (fun args ->
      Csc_common.Interner.intern interner (args.(0), args.(1)));
  fact t "e" [ 1; 2 ];
  fact t "e" [ 2; 3 ];
  fact t "e" [ 1; 2 ];
  add_rule t
    (atom "p" [ v "id" ]
    <-- [ atom "e" [ v "a"; v "b" ]; fn "mkpair" [ v "a"; v "b"; v "id" ] ]);
  solve t;
  Alcotest.(check int) "two interned pairs" 2 (count t "p");
  Alcotest.(check int) "interner has 2" 2 (Csc_common.Interner.count interner)

let test_zero_arity () =
  let t = create () in
  fact t "go" [];
  fact t "n" [ 7 ];
  add_rule t (atom "out" [ v "x" ] <-- [ atom "go" []; atom "n" [ v "x" ] ]);
  solve t;
  Alcotest.(check int) "fired" 1 (count t "out")

let test_join_order_stress () =
  (* a rule whose textual order is adversarial: the engine must reorder *)
  let t = create () in
  for i = 0 to 400 do
    fact t "big" [ i; i + 1 ]
  done;
  fact t "tiny" [ 5 ];
  (* textual order: big(x,y), big(y,z), big(z,w), tiny(x) *)
  add_rule t
    (atom "res" [ v "x"; v "w" ]
    <-- [ atom "big" [ v "x"; v "y" ]; atom "big" [ v "y"; v "z" ];
          atom "big" [ v "z"; v "w" ]; atom "tiny" [ v "x" ] ]);
  let _, dt = Csc_common.Timer.time (fun () -> solve t) in
  Alcotest.(check int) "one result" 1 (count t "res");
  Alcotest.(check bool) "fast (reordered joins)" true (dt < 1.0)

let test_same_var_twice_in_atom () =
  let t = create () in
  fact t "e" [ 1; 1 ];
  fact t "e" [ 1; 2 ];
  fact t "e" [ 3; 3 ];
  add_rule t (atom "diag" [ v "x" ] <-- [ atom "e" [ v "x"; v "x" ] ]);
  solve t;
  Alcotest.(check int) "diagonal only" 2 (count t "diag")

(* cross-engine relation: the Doop CSC (no load pattern) is never more
   precise than the imperative CSC on fail-cast *)
let test_doop_csc_at_most_imperative () =
  List.iter
    (fun (_, src) ->
      let p = Helpers.compile src in
      let imp =
        Csc_pta.Solver.(result (analyze ~plugin_of:Csc_core.Csc.plugin p))
      in
      let dl = Csc_datalog.Analysis.run p Csc_datalog.Analysis.Csc_doop in
      let mi = Csc_clients.Metrics.compute p imp in
      let md = Csc_clients.Metrics.compute p dl in
      if md.fail_cast < mi.fail_cast then
        Alcotest.fail "doop-csc more precise than imperative csc?")
    Fixtures.all

let suite =
  [
    ( "datalog.more",
      [
        Alcotest.test_case "builtin functor" `Quick test_builtin_functor;
        Alcotest.test_case "builtin as filter" `Quick test_builtin_as_filter;
        Alcotest.test_case "builtin interning" `Quick test_builtin_interning;
        Alcotest.test_case "zero arity" `Quick test_zero_arity;
        Alcotest.test_case "join-order stress" `Quick test_join_order_stress;
        Alcotest.test_case "repeated var in atom" `Quick
          test_same_var_twice_in_atom;
        Alcotest.test_case "doop-csc <= imperative csc" `Quick
          test_doop_csc_at_most_imperative;
      ] );
  ]

(** Tests for the extended mini-JDK (Stack, ArrayDeque, Queue, Optional,
    StringBuilder, Collections): concrete semantics via the interpreter and
    container-pattern precision via CSC. *)

open Helpers
module Csc = Csc_core.Csc
module Solver = Csc_pta.Solver

let run src = Csc_interp.Interp.run (compile src)

let csc_analyze src =
  let p = compile src in
  (p, Solver.result (Solver.analyze ~plugin_of:Csc.plugin p))

let test_stack_semantics () =
  let src =
    {|
class Main {
  static void main() {
    Stack s = new Stack();
    s.push("a");
    s.push("b");
    System.print(s.peek());
    System.print(s.pop());
    System.print(s.pop());
    System.print(s.isEmpty());
  }
}
|}
  in
  Alcotest.(check (list string)) "stack LIFO" [ "b"; "b"; "a"; "true" ]
    (run src).output

let test_deque_semantics () =
  let src =
    {|
class Main {
  static void main() {
    ArrayDeque d = new ArrayDeque();
    d.addLast("b");
    d.addFirst("a");
    d.addLast("c");
    System.print(d.peekFirst());
    System.print(d.peekLast());
    System.print(d.removeFirst());
    System.print(d.removeLast());
    System.print(d.removeFirst());
    System.print(d.size());
    d.add("x");
    Iterator it = d.iterator();
    while (it.hasNext()) {
      System.print(it.next());
    }
  }
}
|}
  in
  Alcotest.(check (list string)) "deque order"
    [ "a"; "c"; "a"; "c"; "b"; "0"; "x" ]
    (run src).output

let test_queue_semantics () =
  let src =
    {|
class Main {
  static void main() {
    Queue q = new Queue();
    q.enqueue("1");
    q.enqueue("2");
    q.enqueue("3");
    System.print(q.front());
    System.print(q.dequeue());
    System.print(q.dequeue());
    System.print(q.size());
  }
}
|}
  in
  Alcotest.(check (list string)) "queue FIFO" [ "1"; "1"; "2"; "1" ]
    (run src).output

let test_optional_semantics () =
  let src =
    {|
class Main {
  static void main() {
    Optional some = Optional.of("v");
    Optional none = Optional.empty();
    System.print(some.isPresent());
    System.print(none.isPresent());
    System.print(some.get());
    System.print(some.orElse("d"));
    System.print(none.orElse("d"));
  }
}
|}
  in
  Alcotest.(check (list string)) "optional"
    [ "true"; "false"; "v"; "v"; "d" ]
    (run src).output

let test_stringbuilder_semantics () =
  let src =
    {|
class Main {
  static void main() {
    StringBuilder sb = new StringBuilder();
    StringBuilder same = sb.append("a").append("b");
    System.print(sb.length());
    System.print(sb.part(0));
    System.print(same == sb);
  }
}
|}
  in
  Alcotest.(check (list string)) "builder fluent" [ "2"; "a"; "true" ]
    (run src).output

let test_collections_helpers () =
  let src =
    {|
class Main {
  static void main() {
    ArrayList a = new ArrayList();
    a.add("x");
    a.add("y");
    LinkedList b = new LinkedList();
    Collections.copyAll(b, a);
    System.print(b.size());
    System.print(Collections.firstOf(b));
    ArrayList c = new ArrayList();
    Collections.fill(c, "z", 3);
    System.print(c.size());
  }
}
|}
  in
  Alcotest.(check (list string)) "collections" [ "2"; "x"; "3" ] (run src).output

(* --- CSC precision on the new containers --- *)

let test_csc_stack_precise () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    Stack s1 = new Stack();
    s1.push(new A());
    Stack s2 = new Stack();
    s2.push(new B());
    Object x = s1.pop();
    Object y = s2.pop();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x only from s1" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y only from s2" 1 (pt_size r (var p "Main.main" "y"))

let test_csc_deque_precise () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    ArrayDeque d1 = new ArrayDeque();
    d1.addFirst(new A());
    ArrayDeque d2 = new ArrayDeque();
    d2.addLast(new B());
    Object x = d1.removeFirst();
    Object y = d2.peekLast();
    Iterator it = d1.iterator();
    Object z = it.next();
    System.print(x);
    System.print(y);
    System.print(z);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"));
  Alcotest.(check int) "iterator precise" 1 (pt_size r (var p "Main.main" "z"))

let test_csc_queue_precise () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    Queue q1 = new Queue();
    q1.enqueue(new A());
    Queue q2 = new Queue();
    q2.enqueue(new B());
    Object x = q1.dequeue();
    Object y = q2.front();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"))

let test_csc_stringbuilder_precise () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    StringBuilder sb1 = new StringBuilder();
    sb1.append(new A());
    StringBuilder sb2 = new StringBuilder();
    sb2.append(new B());
    Object x = sb1.part(0);
    Object y = sb2.part(0);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"))

let test_csc_optional_precise () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    Optional o1 = Optional.of(new A());
    Optional o2 = Optional.of(new B());
    Object x = o1.get();
    Object y = o2.get();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  (* both Optionals come from the ONE allocation site inside the static
     factory, so the heap abstraction itself merges them: neither CSC nor
     2obj can separate values stored in the same abstract object. This is a
     heap-abstraction limit, not a PFG one - assert the faithful result. *)
  Alcotest.(check int) "x merged (shared factory allocation)" 2
    (pt_size r (var p "Main.main" "x"));
  let r2obj =
    Solver.result (Solver.analyze ~sel:(Csc_pta.Context.kobj ~k:2 ~hk:1) p)
  in
  Alcotest.(check int) "2obj merges it too" 2
    (Csc_common.Bits.cardinal (r2obj.r_pt (var p "Main.main" "x")))

let test_csc_optional_distinct_sites () =
  (* with per-site allocations the field pattern separates them *)
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    Optional o1 = new Optional();
    o1.set(new A());
    Optional o2 = new Optional();
    o2.set(new B());
    Object x = o1.get();
    Object y = o2.get();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"))

let test_recall_new_containers () =
  (* soundness of all the new specs: static must cover dynamic *)
  List.iter
    (fun src ->
      let p = compile src in
      let r = Solver.result (Solver.analyze ~plugin_of:Csc.plugin p) in
      check_recall p r)
    [
      {|
class Main {
  static void main() {
    Stack s = new Stack();
    s.push(new Object());
    System.print(s.pop());
    ArrayDeque d = new ArrayDeque();
    d.addFirst(new Object());
    d.addLast(new Object());
    System.print(d.removeLast());
    Queue q = new Queue();
    q.enqueue(new Object());
    System.print(q.dequeue());
    StringBuilder sb = new StringBuilder();
    sb.append(new Object()).append(new Object());
    System.print(sb.part(1));
    System.print(Optional.of(new Object()).orElse(null));
  }
}
|};
    ]

let suite =
  [
    ( "jdk.extensions",
      [
        Alcotest.test_case "stack semantics" `Quick test_stack_semantics;
        Alcotest.test_case "deque semantics" `Quick test_deque_semantics;
        Alcotest.test_case "queue semantics" `Quick test_queue_semantics;
        Alcotest.test_case "optional semantics" `Quick test_optional_semantics;
        Alcotest.test_case "stringbuilder semantics" `Quick
          test_stringbuilder_semantics;
        Alcotest.test_case "collections helpers" `Quick test_collections_helpers;
        Alcotest.test_case "csc: stack precise" `Quick test_csc_stack_precise;
        Alcotest.test_case "csc: deque precise" `Quick test_csc_deque_precise;
        Alcotest.test_case "csc: queue precise" `Quick test_csc_queue_precise;
        Alcotest.test_case "csc: stringbuilder precise" `Quick
          test_csc_stringbuilder_precise;
        Alcotest.test_case "csc: optional factory merges" `Quick
          test_csc_optional_precise;
        Alcotest.test_case "csc: optional distinct sites" `Quick
          test_csc_optional_distinct_sites;
        Alcotest.test_case "recall: new containers" `Quick
          test_recall_new_containers;
      ] );
  ]

(** Unit tests for the context selectors, using a mock solver environment:
    k-limiting, heap-context truncation, selective gating. *)

module Context = Csc_pta.Context
module Interner = Csc_common.Interner
module Bits = Csc_common.Bits

(* a mock environment: objects are (hctx, alloc) pairs we control *)
let mk_env (p : Csc_ir.Ir.program) =
  let ctxs : int list Interner.t = Interner.create [] in
  let objs : (int * int) Interner.t = Interner.create (-1, -1) in
  let env : Context.env =
    {
      prog = p;
      ctx_elems = (fun c -> Interner.get ctxs c);
      intern_ctx = (fun l -> Interner.intern ctxs l);
      obj_alloc = (fun o -> snd (Interner.get objs o));
      obj_hctx = (fun o -> fst (Interner.get objs o));
    }
  in
  (env, ctxs, objs)

let program = Helpers.compile Fixtures.carton

let test_ci_always_empty () =
  let env, ctxs, _ = mk_env program in
  let empty = Interner.intern ctxs [] in
  let c =
    Context.ci.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some 0)
      ~callee:0
  in
  Alcotest.(check int) "empty ctx" empty c;
  Alcotest.(check int) "empty heap ctx" empty
    (Context.ci.sel_heap_ctx env ~mctx:c ~site:0)

let test_kobj_k_limiting () =
  let env, ctxs, objs = mk_env program in
  let sel = Context.kobj ~k:2 ~hk:1 in
  let empty = Interner.intern ctxs [] in
  (* receiver allocated at site 7 under heap context [3] *)
  let hctx = Interner.intern ctxs [ 3 ] in
  let recv = Interner.intern objs (hctx, 7) in
  let c = sel.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some recv) ~callee:0 in
  Alcotest.(check (list int)) "ctx = [alloc; hctx-elem]" [ 7; 3 ]
    (Interner.get ctxs c);
  (* a deeper receiver: k-limiting truncates to 2 *)
  let hctx2 = Interner.intern ctxs [ 9; 8 ] in
  let recv2 = Interner.intern objs (hctx2, 5) in
  let c2 = sel.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some recv2) ~callee:0 in
  Alcotest.(check (list int)) "truncated to k=2" [ 5; 9 ] (Interner.get ctxs c2);
  (* heap context keeps hk=1 most recent elements of the method context *)
  Alcotest.(check (list int)) "heap ctx = [5]" [ 5 ]
    (Interner.get ctxs (sel.sel_heap_ctx env ~mctx:c2 ~site:0))

let test_kobj_static_inherits () =
  let env, ctxs, _ = mk_env program in
  let sel = Context.kobj ~k:2 ~hk:1 in
  let caller = Interner.intern ctxs [ 4; 2 ] in
  let c = sel.sel_callee_ctx env ~caller_ctx:caller ~site:9 ~recv:None ~callee:0 in
  Alcotest.(check (list int)) "static call inherits caller ctx" [ 4; 2 ]
    (Interner.get ctxs c)

let test_kcall_uses_sites () =
  let env, ctxs, _ = mk_env program in
  let sel = Context.kcall ~k:2 ~hk:1 in
  let caller = Interner.intern ctxs [ 11 ] in
  let c = sel.sel_callee_ctx env ~caller_ctx:caller ~site:22 ~recv:None ~callee:0 in
  Alcotest.(check (list int)) "ctx = [site; prev]" [ 22; 11 ] (Interner.get ctxs c);
  let c2 = sel.sel_callee_ctx env ~caller_ctx:c ~site:33 ~recv:None ~callee:0 in
  Alcotest.(check (list int)) "k-limited" [ 33; 22 ] (Interner.get ctxs c2)

let test_ktype_uses_alloc_class () =
  let env, ctxs, objs = mk_env program in
  let sel = Context.ktype ~k:2 ~hk:1 in
  let empty = Interner.intern ctxs [] in
  (* pick a real allocation site of the program and compute its class *)
  let site = 0 in
  let expected_cls =
    (Csc_ir.Ir.metho program (Csc_ir.Ir.alloc program site).a_method).m_class
  in
  let recv = Interner.intern objs (empty, site) in
  let c = sel.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some recv) ~callee:0 in
  Alcotest.(check (list int)) "ctx element is the allocating class"
    [ expected_cls ] (Interner.get ctxs c)

let test_selective_gates () =
  let env, ctxs, objs = mk_env program in
  let selected = Bits.of_list [ 42 ] in
  let sel = Context.selective ~selected ~base:(Context.kobj ~k:2 ~hk:1) in
  let empty = Interner.intern ctxs [] in
  let recv = Interner.intern objs (empty, 7) in
  let c_sel =
    sel.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some recv) ~callee:42
  in
  Alcotest.(check (list int)) "selected method gets contexts" [ 7 ]
    (Interner.get ctxs c_sel);
  let c_unsel =
    sel.sel_callee_ctx env ~caller_ctx:empty ~site:0 ~recv:(Some recv) ~callee:41
  in
  Alcotest.(check (list int)) "unselected method stays CI" []
    (Interner.get ctxs c_unsel)

let suite =
  [
    ( "pta.context",
      [
        Alcotest.test_case "ci always empty" `Quick test_ci_always_empty;
        Alcotest.test_case "kobj k-limiting" `Quick test_kobj_k_limiting;
        Alcotest.test_case "kobj static inherit" `Quick test_kobj_static_inherits;
        Alcotest.test_case "kcall sites" `Quick test_kcall_uses_sites;
        Alcotest.test_case "ktype alloc class" `Quick test_ktype_uses_alloc_class;
        Alcotest.test_case "selective gating" `Quick test_selective_gates;
      ] );
  ]

(** Deeper container-pattern tests: every Entrance/Exit/Transfer spec entry
    exercised at least once, plus aliasing and flow-through-heap cases for
    the pointer-host map. *)

open Helpers
module Csc = Csc_core.Csc
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits

let csc src =
  let p = compile src in
  (p, Solver.result (Solver.analyze ~plugin_of:Csc.plugin p))

let two_containers_template ~mk ~add ~read =
  Printf.sprintf
    {|
class A { }
class B { }
class Main {
  static void main() {
    %s c1 = new %s();
    %s(c1, new A());
    %s c2 = new %s();
    %s(c2, new B());
    Object x = %s(c1);
    Object y = %s(c2);
    System.print(x);
    System.print(y);
  }
}
class H {
  static void put(%s c, Object v) { %s; }
  static Object take(%s c) { return %s; }
}
|}
    mk mk "H.put" mk mk "H.put" "H.take" "H.take" mk add mk read

(* NOTE: H.put/H.take wrappers have container calls with *parameter*
   receivers, so the pointer-host map must flow hosts through parameters. *)

let check_precise name src =
  let p, r = csc src in
  Alcotest.(check int) (name ^ ": x precise") 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) (name ^ ": y precise") 1 (pt_size r (var p "Main.main" "y"));
  Alcotest.(check bool) (name ^ ": disjoint") false
    (Bits.inter_nonempty
       (r.r_pt (var p "Main.main" "x"))
       (r.r_pt (var p "Main.main" "y")))

(* Wrapping add/get inside helper methods merges pt_H at the single inner
   call site: the container pattern is call-site precise, and (faithfully to
   the paper, whose nested-call handling covers only field accesses) it does
   not propagate Entrances/Exits through wrappers. Assert merged-but-sound. *)
let check_wrapper_merged name src =
  let p, r = csc src in
  let x = r.r_pt (var p "Main.main" "x") in
  Alcotest.(check int) (name ^ ": merged through wrapper") 2 (Bits.cardinal x);
  check_recall p r

let test_arraylist_via_params () =
  check_wrapper_merged "arraylist"
    (two_containers_template ~mk:"ArrayList" ~add:"c.add(v)" ~read:"c.get(0)")

let test_linkedlist_via_params () =
  check_wrapper_merged "linkedlist"
    (two_containers_template ~mk:"LinkedList" ~add:"c.add(v)" ~read:"c.get(0)")

let test_arraylist_set_and_removelast () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    ArrayList c1 = new ArrayList();
    c1.add(null);
    c1.set(0, new A());
    ArrayList c2 = new ArrayList();
    c2.add(new B());
    Object x = c1.get(0);
    Object y = c2.removeLast();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  check_precise "set/removeLast" src

let test_hashset_via_collection_type () =
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    Collection c1 = new HashSet();
    c1.add(new A());
    Collection c2 = new HashSet();
    c2.add(new B());
    Iterator i1 = c1.iterator();
    Iterator i2 = c2.iterator();
    Object x = i1.next();
    Object y = i2.next();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  check_precise "hashset-collection" src

let test_map_values_view () =
  let src =
    {|
class A { }
class B { }
class K { }
class Main {
  static void main() {
    HashMap m1 = new HashMap();
    m1.put(new K(), new A());
    HashMap m2 = new HashMap();
    m2.put(new K(), new B());
    Iterator v1 = m1.values().iterator();
    Iterator v2 = m2.values().iterator();
    Object x = v1.next();
    Object y = v2.next();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  check_precise "map-values" src

let test_iterator_stored_in_field () =
  (* host-dependent object stored in the heap and loaded back: pt_H must
     flow through field store/load edges *)
  let src =
    {|
class A { }
class B { }
class Holder {
  Iterator it;
}
class Main {
  static void main() {
    ArrayList c1 = new ArrayList();
    c1.add(new A());
    ArrayList c2 = new ArrayList();
    c2.add(new B());
    Holder h1 = new Holder();
    h1.it = c1.iterator();
    Holder h2 = new Holder();
    h2.it = c2.iterator();
    Object x = h1.it.next();
    Object y = h2.it.next();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  check_precise "iterator-in-field" src

let test_aliased_containers_stay_sound () =
  (* two variables aliasing ONE container: reads through either alias must
     see writes through both *)
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    ArrayList c = new ArrayList();
    ArrayList alias = c;
    c.add(new A());
    alias.add(new B());
    Object x = c.get(1);
    System.print(x);
  }
}
|}
  in
  let p, r = csc src in
  Alcotest.(check int) "x sees both (aliased writes)" 2
    (pt_size r (var p "Main.main" "x"))

let test_container_passed_through_localflow () =
  (* a container returned through a local-flow util keeps its host identity *)
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    ArrayList c1 = new ArrayList();
    c1.add(new A());
    ArrayList c2 = new ArrayList();
    c2.add(new B());
    ArrayList picked = (ArrayList) Util.id(c1);
    Object x = picked.get(0);
    System.print(x);
    Object y = c2.get(0);
    System.print(y);
  }
}
|}
  in
  check_precise "via-util-id" src

let test_map_key_collision_sound () =
  (* same key object used in two maps: each map's value stays its own *)
  let src =
    {|
class A { }
class B { }
class K { }
class Main {
  static void main() {
    K shared = new K();
    HashMap m1 = new HashMap();
    m1.put(shared, new A());
    HashMap m2 = new HashMap();
    m2.put(shared, new B());
    Object x = m1.get(shared);
    Object y = m2.get(shared);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  check_precise "shared-key" src

let test_stringbuilder_chain_fluency () =
  (* fluent chains: the local-flow cut on append's `return this` *)
  let src =
    {|
class A { }
class B { }
class Main {
  static void main() {
    A a1 = new A();
    StringBuilder sb1 = new StringBuilder();
    StringBuilder end1 = sb1.append(a1).append(a1);
    StringBuilder sb2 = new StringBuilder();
    StringBuilder end2 = sb2.append(new B());
    Object x = end1.part(0);
    Object y = end2.part(0);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc src in
  (* end1 must be exactly sb1 *)
  Alcotest.(check int) "fluent receiver precise" 1
    (pt_size r (var p "Main.main" "end1"));
  check_precise "builder-chain" src

let suite =
  [
    ( "csc.containers",
      [
        Alcotest.test_case "arraylist via params" `Quick test_arraylist_via_params;
        Alcotest.test_case "linkedlist via params" `Quick
          test_linkedlist_via_params;
        Alcotest.test_case "set + removeLast" `Quick
          test_arraylist_set_and_removelast;
        Alcotest.test_case "hashset via Collection" `Quick
          test_hashset_via_collection_type;
        Alcotest.test_case "map values view" `Quick test_map_values_view;
        Alcotest.test_case "iterator stored in field" `Quick
          test_iterator_stored_in_field;
        Alcotest.test_case "aliased containers sound" `Quick
          test_aliased_containers_stay_sound;
        Alcotest.test_case "through local-flow util" `Quick
          test_container_passed_through_localflow;
        Alcotest.test_case "shared map key" `Quick test_map_key_collision_sound;
        Alcotest.test_case "stringbuilder fluency" `Quick
          test_stringbuilder_chain_fluency;
      ] );
  ]

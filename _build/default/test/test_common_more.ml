(** Additional unit + property tests for Vec, Interner and parser
    precedence / disambiguation corners. *)

open Csc_common

(* ----------------------------------------------------------------- Vec *)

let test_vec_basic () =
  let v = Vec.create 0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Vec.push v 10;
  Vec.push v 20;
  Alcotest.(check int) "len" 2 (Vec.length v);
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.(check (list int)) "to_list" [ 99; 20 ] (Vec.to_list v)

let test_vec_growth_and_bounds () =
  let v = Vec.create ~capacity:1 0 in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "len" 1000 (Vec.length v);
  Alcotest.(check int) "last" 999 (Vec.get v 999);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 1000));
  Alcotest.(check int) "get_or default" 0 (Vec.get_or v 5000)

let test_vec_set_grow () =
  let v = Vec.create (-1) in
  Vec.set_grow v 5 42;
  Alcotest.(check int) "len grows" 6 (Vec.length v);
  Alcotest.(check int) "filled with dummy" (-1) (Vec.get v 2);
  Alcotest.(check int) "value" 42 (Vec.get v 5)

let test_vec_pop () =
  let v = Vec.of_list 0 [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check int) "len" 2 (Vec.length v);
  Vec.clear v;
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let prop_vec_model =
  QCheck2.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck2.Gen.(list (int_bound 1000))
    (fun l ->
      let v = Vec.of_list (-1) l in
      Vec.to_list v = l
      && Vec.length v = List.length l
      && Vec.fold (fun acc x -> acc + x) 0 v = List.fold_left ( + ) 0 l)

(* ------------------------------------------------------------- Interner *)

let test_interner_roundtrip () =
  let t = Interner.create "" in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  let a' = Interner.intern t "alpha" in
  Alcotest.(check int) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "reverse" "beta" (Interner.get t b);
  Alcotest.(check int) "count" 2 (Interner.count t);
  Alcotest.(check (option int)) "find" (Some a) (Interner.find_opt t "alpha");
  Alcotest.(check (option int)) "find missing" None (Interner.find_opt t "gamma")

let prop_interner_dense =
  QCheck2.Test.make ~name:"interner ids are dense from 0" ~count:100
    QCheck2.Gen.(list (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))
    (fun names ->
      let t = Interner.create "" in
      List.iter (fun n -> ignore (Interner.intern t n)) names;
      let distinct = List.sort_uniq compare names in
      Interner.count t = List.length distinct
      && List.for_all
           (fun n ->
             let i = Interner.intern t n in
             i >= 0 && i < Interner.count t && Interner.get t i = n)
           distinct)

(* ---------------------------------------------------------------- parser *)

let output src = (Csc_interp.Interp.run (Helpers.compile src)).output

let test_precedence () =
  let src =
    {|
class Main {
  static void main() {
    System.print(2 + 3 * 4);
    System.print((2 + 3) * 4);
    System.print(10 - 4 - 3);       // left assoc
    System.print(1 + 2 == 3);
    System.print(true || false && false);  // && binds tighter
    System.print(!(1 > 2));
    System.print(-3 + 5);
    System.print(7 % 3);
  }
}
|}
  in
  Alcotest.(check (list string)) "precedence"
    [ "14"; "20"; "3"; "true"; "true"; "true"; "2"; "1" ]
    (output src)

let test_cast_vs_paren_disambiguation () =
  let src =
    {|
class A { int v() { return 7; } }
class Main {
  static void main() {
    Object o = new A();
    A a = (A) o;              // cast
    int x = (1 + 2) * 2;      // parenthesized expr
    int y = (x) + 1;          // parens around a variable
    System.print(a.v());
    System.print(x);
    System.print(y);
  }
}
|}
  in
  Alcotest.(check (list string)) "disambiguation" [ "7"; "6"; "7" ] (output src)

let test_comments_and_strings () =
  let src =
    {|
class Main {
  // line comment with "quotes" and (T) casts
  /* block comment
     spanning lines */
  static void main() {
    System.print("semi ; colon // not a comment");
    System.print("esc\t\"quoted\"");
  }
}
|}
  in
  Alcotest.(check int) "two prints" 2 (List.length (output src))

let test_else_if_chain () =
  let src =
    {|
class Main {
  static int classify(int n) {
    if (n < 0) { return 0; }
    else if (n == 0) { return 1; }
    else if (n < 10) { return 2; }
    else { return 3; }
  }
  static void main() {
    System.print(Main.classify(-5));
    System.print(Main.classify(0));
    System.print(Main.classify(5));
    System.print(Main.classify(50));
  }
}
|}
  in
  Alcotest.(check (list string)) "else-if" [ "0"; "1"; "2"; "3" ] (output src)

let test_nested_calls_args () =
  let src =
    {|
class Main {
  static int add(int a, int b) { return a + b; }
  static void main() {
    System.print(Main.add(Main.add(1, 2), Main.add(3, Main.add(4, 5))));
  }
}
|}
  in
  Alcotest.(check (list string)) "nested args" [ "15" ] (output src)

let test_error_positions () =
  (* syntax errors carry line information *)
  let src = "class A {\n  void m() {\n    x =;\n  }\n}" in
  match Csc_lang.Parser.parse_program src with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Csc_lang.Ast.Syntax_error (pos, _) ->
    Alcotest.(check int) "line 3" 3 pos.line

let suite =
  [
    ( "common.vec",
      [
        Alcotest.test_case "basic" `Quick test_vec_basic;
        Alcotest.test_case "growth & bounds" `Quick test_vec_growth_and_bounds;
        Alcotest.test_case "set_grow" `Quick test_vec_set_grow;
        Alcotest.test_case "pop" `Quick test_vec_pop;
        QCheck_alcotest.to_alcotest prop_vec_model;
      ] );
    ( "common.interner",
      [
        Alcotest.test_case "roundtrip" `Quick test_interner_roundtrip;
        QCheck_alcotest.to_alcotest prop_interner_dense;
      ] );
    ( "lang.parser",
      [
        Alcotest.test_case "precedence" `Quick test_precedence;
        Alcotest.test_case "cast vs parens" `Quick test_cast_vs_paren_disambiguation;
        Alcotest.test_case "comments & strings" `Quick test_comments_and_strings;
        Alcotest.test_case "else-if chains" `Quick test_else_if_chain;
        Alcotest.test_case "nested call args" `Quick test_nested_calls_args;
        Alcotest.test_case "error positions" `Quick test_error_positions;
      ] );
  ]

(** Tests for the IR validator: all frontend outputs must be well-formed,
    and representative corruptions must be caught. *)

open Helpers
module V = Csc_ir.Validate

let test_fixtures_valid () =
  List.iter
    (fun (name, src) ->
      match V.check (compile src) with
      | [] -> ()
      | errs ->
        Alcotest.fail
          (Printf.sprintf "%s: %s" name (String.concat "; " errs)))
    Fixtures.all

let test_workloads_valid () =
  List.iter
    (fun name ->
      let p = Csc_workloads.Suite.compile name in
      match V.check p with
      | [] -> ()
      | errs ->
        Alcotest.fail (Printf.sprintf "%s: %s" name (List.hd errs)))
    [ "hsqldb"; "eclipse" ]

let test_detects_foreign_var () =
  let p = compile Fixtures.carton in
  (* corrupt: swap a variable's owner *)
  let victim =
    Array.to_list p.vars
    |> List.find (fun (v : Ir.var) -> v.v_kind = `Local || v.v_kind = `Temp)
  in
  let vars = Array.copy p.vars in
  vars.(victim.v_id) <- { victim with v_method = (victim.v_method + 1) mod Array.length p.methods };
  let corrupted = { p with vars } in
  Alcotest.(check bool) "caught" true (V.check corrupted <> [])

let test_detects_bad_main () =
  let p = compile Fixtures.carton in
  let setter = (find_method p "Carton.setItem").m_id in
  let corrupted = { p with main = setter } in
  (* setItem is neither static nor parameterless *)
  Alcotest.(check bool) "caught" true (V.check corrupted <> [])

let test_check_exn () =
  let p = compile Fixtures.carton in
  V.check_exn p;
  let corrupted = { p with main = Array.length p.methods + 5 } in
  match V.check_exn corrupted with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let suite =
  [
    ( "ir.validate",
      [
        Alcotest.test_case "fixtures valid" `Quick test_fixtures_valid;
        Alcotest.test_case "workloads valid" `Slow test_workloads_valid;
        Alcotest.test_case "detects foreign var" `Quick test_detects_foreign_var;
        Alcotest.test_case "detects bad main" `Quick test_detects_bad_main;
        Alcotest.test_case "check_exn" `Quick test_check_exn;
      ] );
  ]

(** Tests for the MiniJava lexer, parser, resolver and lowering. *)

module Ir = Csc_ir.Ir

let compile src = Csc_lang.Frontend.compile_string src

let find_method p name =
  let found = ref None in
  Array.iter
    (fun (m : Ir.metho) -> if Ir.method_name p m.m_id = name then found := Some m)
    p.Ir.methods;
  match !found with
  | Some m -> m
  | None -> Alcotest.fail ("method not found: " ^ name)

let find_class p name =
  let found = ref None in
  Array.iter
    (fun (k : Ir.klass) -> if k.c_name = name then found := Some k)
    p.Ir.classes;
  match !found with
  | Some k -> k
  | None -> Alcotest.fail ("class not found: " ^ name)

let test_lexer_basic () =
  let toks = Csc_lang.Lexer.tokenize "class A { int x; } // comment" in
  let kinds =
    Array.to_list toks
    |> List.map (fun (t : Csc_lang.Lexer.loc_token) -> t.tok)
  in
  Alcotest.(check int) "token count" 8 (List.length kinds);
  match kinds with
  | KW "class" :: IDENT "A" :: PUNCT "{" :: KW "int" :: IDENT "x"
    :: PUNCT ";" :: PUNCT "}" :: EOF :: _ ->
    ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_two_char_ops () =
  let toks = Csc_lang.Lexer.tokenize "a <= b == c && d" in
  let puncts =
    Array.to_list toks
    |> List.filter_map (fun (t : Csc_lang.Lexer.loc_token) ->
           match t.tok with Csc_lang.Lexer.PUNCT p -> Some p | _ -> None)
  in
  Alcotest.(check (list string)) "ops" [ "<="; "=="; "&&" ] puncts

let test_lexer_string_escape () =
  let toks = Csc_lang.Lexer.tokenize {|"a\nb"|} in
  match toks.(0).tok with
  | Csc_lang.Lexer.STRING s -> Alcotest.(check string) "escaped" "a\nb" s
  | _ -> Alcotest.fail "expected string literal"

let test_lexer_error () =
  Alcotest.check_raises "bad char"
    (Csc_lang.Ast.Syntax_error ({ line = 1; col = 1 }, "unexpected character '#'"))
    (fun () -> ignore (Csc_lang.Lexer.tokenize "#"))

let test_parse_carton () =
  let p = compile Fixtures.carton in
  let setter = find_method p "Carton.setItem" in
  Alcotest.(check int) "setItem params" 1 (Array.length setter.m_params);
  Alcotest.(check bool) "instance method" false setter.m_static;
  let getter = find_method p "Carton.getItem" in
  (match getter.m_ret_var with
  | Some v -> Alcotest.(check string) "single return var" "r" (Ir.var_name p v)
  | None -> Alcotest.fail "getter should have a return var");
  let main = find_method p "Main.main" in
  Alcotest.(check bool) "main static" true main.m_static;
  Alcotest.(check int) "program main" main.m_id p.Ir.main

let test_store_lowering () =
  (* setItem body must contain exactly one Store whose base is `this` and
     whose rhs is the parameter - no extra temps. *)
  let p = compile Fixtures.carton in
  let setter = find_method p "Carton.setItem" in
  let stores = ref [] in
  Ir.iter_stmts
    (fun s ->
      match s with
      | Ir.Store { base; rhs; _ } -> stores := (base, rhs) :: !stores
      | _ -> ())
    setter.m_body;
  match !stores with
  | [ (base, rhs) ] ->
    Alcotest.(check string) "base is this" "this" (Ir.var_name p base);
    Alcotest.(check string) "rhs is param" "item" (Ir.var_name p rhs)
  | _ -> Alcotest.fail "expected exactly one store"

let test_def_counts () =
  let p = compile Fixtures.carton in
  let setter = find_method p "Carton.setItem" in
  let param = setter.m_params.(0) in
  Alcotest.(check int) "param never redefined" 0 p.Ir.def_counts.(param);
  (match setter.m_this with
  | Some this -> Alcotest.(check int) "this never redefined" 0 p.Ir.def_counts.(this)
  | None -> Alcotest.fail "expected this");
  let getter = find_method p "Carton.getItem" in
  match getter.m_ret_var with
  | Some r -> Alcotest.(check int) "return var defined once" 1 p.Ir.def_counts.(r)
  | None -> Alcotest.fail "expected ret var"

let test_multi_return_funnel () =
  let src =
    {|
class A {
  Object pick(boolean b, Object x, Object y) {
    if (b) { return x; }
    return y;
  }
}
class Main { static void main() { A a = new A(); System.print(a); } }
|}
  in
  let p = compile src in
  let m = find_method p "A.pick" in
  match m.m_ret_var with
  | Some v -> Alcotest.(check string) "funnelled" "$ret" (Ir.var_name p v)
  | None -> Alcotest.fail "expected $ret"

let test_vtable_override () =
  let p = compile Fixtures.poly in
  let dog = find_class p "Dog" in
  let animal = find_class p "Animal" in
  let dog_speak = Ir.dispatch p dog.c_id "speak" in
  let animal_speak = Ir.dispatch p animal.c_id "speak" in
  (match (dog_speak, animal_speak) with
  | Some d, Some a ->
    Alcotest.(check bool) "override differs" true (d <> a);
    Alcotest.(check string) "dog impl" "Dog.speak" (Ir.method_name p d)
  | _ -> Alcotest.fail "dispatch failed");
  Alcotest.(check bool) "Dog <: Animal" true
    (Ir.subclass_of p dog.c_id animal.c_id);
  Alcotest.(check bool) "Animal not <: Dog" false
    (Ir.subclass_of p animal.c_id dog.c_id)

let test_subtyping () =
  let p = compile Fixtures.poly in
  let dog = find_class p "Dog" in
  let obj = p.Ir.object_cls in
  Alcotest.(check bool) "Dog <: Object" true
    (Ir.subtype p (Tclass dog.c_id) (Tclass obj));
  Alcotest.(check bool) "null <: Dog" true (Ir.subtype p Tnull (Tclass dog.c_id));
  Alcotest.(check bool) "Dog[] <: Object" true
    (Ir.subtype p (Tarray (Tclass dog.c_id)) (Tclass obj));
  Alcotest.(check bool) "Dog[] <: Animal[]" true
    (Ir.subtype p
       (Tarray (Tclass dog.c_id))
       (Tarray (Tclass (find_class p "Animal").c_id)))

let test_cast_sites () =
  let p = compile Fixtures.poly in
  Alcotest.(check int) "two ref casts" 2 (Array.length p.Ir.casts)

let test_jdk_compiles () =
  let p = compile Fixtures.containers in
  let al = find_class p "ArrayList" in
  let coll = find_class p "Collection" in
  Alcotest.(check bool) "ArrayList <: Collection" true
    (Ir.subclass_of p al.c_id coll.c_id);
  (* ArrayList.get dispatched from Collection *)
  match Ir.dispatch p al.c_id "get" with
  | Some m -> Alcotest.(check string) "dispatch get" "ArrayList.get" (Ir.method_name p m)
  | None -> Alcotest.fail "no dispatch for get"

let test_error_unknown_var () =
  let src = "class Main { static void main() { x = 1; } }" in
  match compile src with
  | exception Csc_lang.Ast.Semantic_error (_, msg) ->
    Alcotest.(check bool) "mentions var" true
      (Astring.String.is_infix ~affix:"x" msg)
  | _ -> Alcotest.fail "expected semantic error"

let test_error_bad_arity () =
  let src =
    {|
class A { void m(Object x) { } }
class Main { static void main() { A a = new A(); a.m(); } }
|}
  in
  match compile src with
  | exception Csc_lang.Ast.Semantic_error (_, _) -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_error_cycle () =
  let src =
    "class A extends B { } class B extends A { } class Main { static void main() { } }"
  in
  match compile src with
  | exception Csc_lang.Ast.Semantic_error (_, _) -> ()
  | _ -> Alcotest.fail "expected cycle error"

let test_all_fixtures_compile () =
  List.iter
    (fun (name, src) ->
      match compile src with
      | _ -> ()
      | exception e ->
        Alcotest.fail (Printf.sprintf "%s failed: %s" name (Printexc.to_string e)))
    Fixtures.all

let test_stats () =
  let p = compile Fixtures.carton in
  let s = Ir.stats p in
  Alcotest.(check bool) "has classes" true (s.n_classes > 20);
  Alcotest.(check bool) "has allocs" true (s.n_allocs >= 4);
  Alcotest.(check bool) "has calls" true (s.n_calls >= 4)

let suite =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
        Alcotest.test_case "two-char operators" `Quick test_lexer_two_char_ops;
        Alcotest.test_case "string escapes" `Quick test_lexer_string_escape;
        Alcotest.test_case "lex error" `Quick test_lexer_error;
      ] );
    ( "lang.frontend",
      [
        Alcotest.test_case "carton compiles" `Quick test_parse_carton;
        Alcotest.test_case "store lowering is direct" `Quick test_store_lowering;
        Alcotest.test_case "def counts" `Quick test_def_counts;
        Alcotest.test_case "multi-return funnel" `Quick test_multi_return_funnel;
        Alcotest.test_case "vtable override" `Quick test_vtable_override;
        Alcotest.test_case "subtyping" `Quick test_subtyping;
        Alcotest.test_case "cast sites" `Quick test_cast_sites;
        Alcotest.test_case "jdk compiles" `Quick test_jdk_compiles;
        Alcotest.test_case "error: unknown var" `Quick test_error_unknown_var;
        Alcotest.test_case "error: bad arity" `Quick test_error_bad_arity;
        Alcotest.test_case "error: inheritance cycle" `Quick test_error_cycle;
        Alcotest.test_case "all fixtures compile" `Quick test_all_fixtures_compile;
        Alcotest.test_case "program stats" `Quick test_stats;
      ] );
  ]

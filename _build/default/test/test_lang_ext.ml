(** Tests for the extended language features: for loops, instanceof,
    super calls (method + constructor). *)

open Helpers

let run src = Csc_interp.Interp.run (compile src)

let test_for_loop () =
  let src =
    {|
class Main {
  static void main() {
    int sum = 0;
    for (int i = 0; i < 5; i = i + 1) {
      sum = sum + i;
    }
    System.print(sum);
    // no-init / no-update forms
    int j = 3;
    for (; j > 0;) {
      j = j - 1;
    }
    System.print(j);
  }
}
|}
  in
  Alcotest.(check (list string)) "for loops" [ "10"; "0" ] (run src).output

let test_for_scoping () =
  let src =
    {|
class Main {
  static void main() {
    for (int i = 0; i < 2; i = i + 1) {
      System.print(i);
    }
    for (int i = 5; i < 6; i = i + 1) {   // re-declares i: separate scope
      System.print(i);
    }
  }
}
|}
  in
  Alcotest.(check (list string)) "scoped i" [ "0"; "1"; "5" ] (run src).output

let test_instanceof_runtime () =
  let src =
    {|
class A { }
class B extends A { }
class Main {
  static void main() {
    A a = new B();
    A a2 = new A();
    A n = null;
    System.print(a instanceof B);
    System.print(a instanceof A);
    System.print(a2 instanceof B);
    System.print(n instanceof A);    // null: false
    Object[] arr = new Object[1];
    System.print(arr instanceof Object);
  }
}
|}
  in
  Alcotest.(check (list string)) "instanceof"
    [ "true"; "true"; "false"; "false"; "true" ]
    (run src).output

let test_instanceof_in_condition () =
  let src =
    {|
class Shape { int area() { return 0; } }
class Square extends Shape { int area() { return 4; } }
class Main {
  static void main() {
    ArrayList shapes = new ArrayList();
    shapes.add(new Square());
    shapes.add(new Shape());
    for (int i = 0; i < shapes.size(); i = i + 1) {
      Object s = shapes.get(i);
      if (s instanceof Square) {
        Square sq = (Square) s;
        System.print(sq.area());
      }
    }
  }
}
|}
  in
  Alcotest.(check (list string)) "guarded cast" [ "4" ] (run src).output

let test_super_method_call () =
  let src =
    {|
class A {
  Object who() { return "A"; }
}
class B extends A {
  Object who() { return "B"; }
  Object parentWho() { return super.who(); }
}
class Main {
  static void main() {
    B b = new B();
    System.print(b.who());
    System.print(b.parentWho());
  }
}
|}
  in
  Alcotest.(check (list string)) "super dispatch" [ "B"; "A" ] (run src).output

let test_super_constructor () =
  let src =
    {|
class A {
  Object tag;
  A(Object t) { this.tag = t; }
}
class B extends A {
  B(Object t) { super(t); }
}
class Main {
  static void main() {
    B b = new B("hello");
    System.print(b.tag);
  }
}
|}
  in
  Alcotest.(check (list string)) "super ctor" [ "hello" ] (run src).output

let test_super_static_analysis () =
  (* super calls must be exact (Special), not re-dispatched *)
  let src =
    {|
class A {
  Object who() { return new Object(); }
}
class B extends A {
  Object who() { return "B"; }
  Object parentWho() { return super.who(); }
}
class Main {
  static void main() {
    B b = new B();
    Object x = b.parentWho();
    System.print(x);
  }
}
|}
  in
  let p, r = analyze src in
  (* A.who must be reachable even though dynamic dispatch on a B receiver
     would pick B.who *)
  Alcotest.(check bool) "A.who reachable via super" true (reaches p r "A.who")

let test_instanceof_sites_recorded () =
  let src =
    {|
class A { }
class Main {
  static void main() {
    Object o = new A();
    System.print(o instanceof A);
  }
}
|}
  in
  let p = compile src in
  let kinds = Array.map (fun (x : Ir.cast_site) -> x.x_kind) p.casts in
  Alcotest.(check int) "one site" 1 (Array.length kinds);
  Alcotest.(check bool) "instanceof kind" true (kinds.(0) = `InstanceOf);
  (* and it is not counted by the fail-cast client *)
  let r = Csc_pta.Solver.(result (analyze p)) in
  let m = Csc_clients.Metrics.compute p r in
  Alcotest.(check int) "no fail-cast" 0 m.fail_cast

let suite =
  [
    ( "lang.extensions",
      [
        Alcotest.test_case "for loop" `Quick test_for_loop;
        Alcotest.test_case "for scoping" `Quick test_for_scoping;
        Alcotest.test_case "instanceof runtime" `Quick test_instanceof_runtime;
        Alcotest.test_case "instanceof-guarded cast" `Quick
          test_instanceof_in_condition;
        Alcotest.test_case "super method call" `Quick test_super_method_call;
        Alcotest.test_case "super constructor" `Quick test_super_constructor;
        Alcotest.test_case "super is exact in analysis" `Quick
          test_super_static_analysis;
        Alcotest.test_case "instanceof sites recorded" `Quick
          test_instanceof_sites_recorded;
      ] );
  ]

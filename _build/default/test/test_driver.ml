(** Tests for the driver layer: Zipper^e selection, the uniform analysis
    runner, metrics, and the recall API. *)

open Helpers
module Run = Csc_driver.Run
module Zipper = Csc_driver.Zipper
module Metrics = Csc_clients.Metrics
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits

let test_zipper_selects_containers () =
  let p = compile Fixtures.containers in
  let pre = Solver.(result (analyze p)) in
  let sel = Zipper.select p pre in
  let is_selected name = Bits.mem sel.selected (find_method p name).m_id in
  Alcotest.(check bool) "ArrayList.add selected" true (is_selected "ArrayList.add");
  Alcotest.(check bool) "ArrayList.get selected" true (is_selected "ArrayList.get");
  Alcotest.(check bool) "ArrayList ctor selected" true
    (is_selected "ArrayList.<init>")

let test_zipper_selects_accessors () =
  let p = compile Fixtures.carton in
  let pre = Solver.(result (analyze p)) in
  let sel = Zipper.select p pre in
  Alcotest.(check bool) "setter selected" true
    (Bits.mem sel.selected (find_method p "Carton.setItem").m_id);
  Alcotest.(check bool) "getter selected" true
    (Bits.mem sel.selected (find_method p "Carton.getItem").m_id)

let test_zipper_skips_plain_code () =
  let src =
    {|
class Plain {
  int add(int a, int b) { return a + b; }
}
class Main {
  static void main() {
    Plain pl = new Plain();
    System.print(pl.add(1, 2));
  }
}
|}
  in
  let p = compile src in
  let pre = Solver.(result (analyze p)) in
  let sel = Zipper.select p pre in
  Alcotest.(check bool) "int-only method not selected" false
    (Bits.mem sel.selected (find_method p "Plain.add").m_id)

let test_zipper_main_analysis_precision () =
  let p = compile Fixtures.carton in
  let o = Run.run p Run.Imp_zipper in
  match o.o_metrics with
  | None -> Alcotest.fail "zipper timed out on a tiny program"
  | Some m ->
    let ci = Run.run p Run.Imp_ci in
    let ci_m = Option.get ci.o_metrics in
    Alcotest.(check bool) "zipper at least as precise as CI" true
      (Metrics.better_or_equal m ci_m)

let test_run_all_analyses_on_fixture () =
  let p = compile Fixtures.containers in
  List.iter
    (fun a ->
      let o = Run.run p a in
      Alcotest.(check bool)
        (Run.name a ^ " completes")
        true (not o.o_timeout);
      match o.o_metrics with
      | Some m -> Alcotest.(check bool) "reaches main" true (m.reach_mtd > 0)
      | None -> Alcotest.fail "no metrics")
    (Run.all_imperative @ Run.all_datalog)

let test_metrics_ordering () =
  (* CI is the least precise of all completing analyses, on every metric *)
  let p = compile Fixtures.containers in
  let ci = Option.get (Run.run p Run.Imp_ci).o_metrics in
  List.iter
    (fun a ->
      match (Run.run p a).o_metrics with
      | Some m ->
        Alcotest.(check bool)
          (Run.name a ^ " at least as precise as CI")
          true
          (Metrics.better_or_equal m ci)
      | None -> ())
    [ Run.Imp_csc; Run.Imp_2obj; Run.Imp_2type; Run.Imp_zipper; Run.Doop_csc ]

let test_recall_api () =
  let p = compile Fixtures.arith in
  let reports = Run.recall p [ Run.Imp_ci; Run.Imp_csc ] in
  Alcotest.(check int) "two reports" 2 (List.length reports);
  List.iter
    (fun (r : Run.recall_report) ->
      Alcotest.(check (float 0.0001)) (r.rc_analysis ^ " methods recall") 1.0
        r.rc_methods;
      Alcotest.(check (float 0.0001)) (r.rc_analysis ^ " edges recall") 1.0
        r.rc_edges)
    reports

let test_overlap () =
  let a = Bits.of_list [ 1; 2; 3; 4 ] in
  let b = Bits.of_list [ 3; 4; 5 ] in
  Alcotest.(check (float 0.0001)) "overlap" 0.5
    (Run.overlap ~involved:a ~selected:b)

let test_csc_outcome_extras () =
  let p = compile Fixtures.carton in
  let o = Run.run p Run.Imp_csc in
  Alcotest.(check bool) "has involved set" true (o.o_involved <> None);
  Alcotest.(check bool) "has shortcuts" true (o.o_shortcuts > 0)

let test_workload_end_to_end () =
  (* the full pipeline on the smallest workload: CI vs CSC *)
  let p = Csc_workloads.Suite.compile "hsqldb" in
  let ci = Run.run ~budget_s:60. p Run.Imp_ci in
  let csc = Run.run ~budget_s:60. p Run.Imp_csc in
  match (ci.o_metrics, csc.o_metrics) with
  | Some mi, Some mc ->
    Alcotest.(check bool) "csc more precise on fail-cast" true
      (mc.fail_cast < mi.fail_cast);
    Alcotest.(check bool) "csc call graph no larger" true
      (mc.call_edge <= mi.call_edge)
  | _ -> Alcotest.fail "timeout on hsqldb"

let suite =
  [
    ( "driver.zipper",
      [
        Alcotest.test_case "selects container methods" `Quick
          test_zipper_selects_containers;
        Alcotest.test_case "selects accessors" `Quick test_zipper_selects_accessors;
        Alcotest.test_case "skips plain code" `Quick test_zipper_skips_plain_code;
        Alcotest.test_case "main analysis precision" `Quick
          test_zipper_main_analysis_precision;
      ] );
    ( "driver.run",
      [
        Alcotest.test_case "all analyses complete" `Slow
          test_run_all_analyses_on_fixture;
        Alcotest.test_case "metrics ordering" `Slow test_metrics_ordering;
        Alcotest.test_case "recall API" `Quick test_recall_api;
        Alcotest.test_case "overlap" `Quick test_overlap;
        Alcotest.test_case "csc outcome extras" `Quick test_csc_outcome_extras;
        Alcotest.test_case "workload end-to-end" `Slow test_workload_end_to_end;
      ] );
  ]

(** Tests for the generic Datalog engine. *)

module E = Csc_datalog.Engine
open E

let v x = V x
let c x = C x

let test_transitive_closure () =
  let t = create () in
  fact t "edge" [ 1; 2 ];
  fact t "edge" [ 2; 3 ];
  fact t "edge" [ 3; 4 ];
  add_rule t (atom "path" [ v "x"; v "y" ] <-- [ atom "edge" [ v "x"; v "y" ] ]);
  add_rule t
    (atom "path" [ v "x"; v "z" ]
    <-- [ atom "path" [ v "x"; v "y" ]; atom "edge" [ v "y"; v "z" ] ]);
  solve t;
  Alcotest.(check int) "path count" 6 (count t "path");
  Alcotest.(check bool) "1->4" true
    (List.exists (fun tup -> tup = [| 1; 4 |]) (tuples t "path"))

let test_constants_in_rules () =
  let t = create () in
  fact t "n" [ 1 ];
  fact t "n" [ 2 ];
  add_rule t (atom "one" [ v "x" ] <-- [ atom "n" [ v "x" ]; atom "n" [ c 1 ] ]);
  add_rule t (atom "self" [ c 7 ] <-- [ atom "n" [ c 2 ] ]);
  solve t;
  Alcotest.(check int) "one" 2 (count t "one");
  Alcotest.(check bool) "self(7)" true
    (List.exists (fun tup -> tup = [| 7 |]) (tuples t "self"))

let test_join_order_independent () =
  let t = create () in
  for i = 0 to 30 do
    fact t "a" [ i; i + 1 ];
    fact t "b" [ i + 1; i + 2 ]
  done;
  add_rule t
    (atom "j" [ v "x"; v "z" ]
    <-- [ atom "a" [ v "x"; v "y" ]; atom "b" [ v "y"; v "z" ] ]);
  solve t;
  Alcotest.(check int) "join size" 31 (count t "j")

let test_stratified_negation () =
  let t = create () in
  fact t "node" [ 1 ];
  fact t "node" [ 2 ];
  fact t "node" [ 3 ];
  fact t "bad" [ 2 ];
  add_rule t
    (atom "good" [ v "x" ]
    <-- [ atom "node" [ v "x" ]; atom ~neg:true "bad" [ v "x" ] ]);
  solve t;
  Alcotest.(check int) "good" 2 (count t "good")

let test_negation_on_derived () =
  (* negation on a relation fully computed in a lower stratum *)
  let t = create () in
  fact t "edge" [ 1; 2 ];
  fact t "edge" [ 2; 3 ];
  fact t "node" [ 1 ];
  fact t "node" [ 2 ];
  fact t "node" [ 3 ];
  add_rule t
    (atom "has_succ" [ v "x" ] <-- [ atom "edge" [ v "x"; v "y" ] ]);
  add_rule t
    (atom "sink" [ v "x" ]
    <-- [ atom "node" [ v "x" ]; atom ~neg:true "has_succ" [ v "x" ] ]);
  solve t;
  Alcotest.(check int) "sinks" 1 (count t "sink");
  Alcotest.(check bool) "3 is sink" true
    (List.exists (fun tup -> tup = [| 3 |]) (tuples t "sink"))

let test_unstratifiable_rejected () =
  let t = create () in
  fact t "n" [ 1 ];
  add_rule t
    (atom "p" [ v "x" ] <-- [ atom "n" [ v "x" ]; atom ~neg:true "q" [ v "x" ] ]);
  add_rule t
    (atom "q" [ v "x" ] <-- [ atom "n" [ v "x" ]; atom ~neg:true "p" [ v "x" ] ]);
  match solve t with
  | _ -> Alcotest.fail "expected stratification error"
  | exception E.Error _ -> ()

let test_unbound_head_var_rejected () =
  let t = create () in
  fact t "n" [ 1 ];
  match add_rule t (atom "p" [ v "x"; v "y" ] <-- [ atom "n" [ v "x" ] ]) with
  | _ -> Alcotest.fail "expected safety error"
  | exception E.Error _ -> ()

let test_mutual_recursion () =
  (* even/odd over a successor chain *)
  let t = create () in
  for i = 0 to 9 do
    fact t "succ" [ i; i + 1 ]
  done;
  fact t "even" [ 0 ];
  add_rule t
    (atom "odd" [ v "y" ] <-- [ atom "even" [ v "x" ]; atom "succ" [ v "x"; v "y" ] ]);
  add_rule t
    (atom "even" [ v "y" ] <-- [ atom "odd" [ v "x" ]; atom "succ" [ v "x"; v "y" ] ]);
  solve t;
  Alcotest.(check int) "evens" 6 (count t "even");
  Alcotest.(check int) "odds" 5 (count t "odd")

let test_large_chain_performance () =
  (* linear-time reachability over a long chain; also exercises indices *)
  let t = create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    fact t "edge" [ i; i + 1 ]
  done;
  fact t "reach" [ 0 ];
  add_rule t
    (atom "reach" [ v "y" ]
    <-- [ atom "reach" [ v "x" ]; atom "edge" [ v "x"; v "y" ] ]);
  solve t;
  Alcotest.(check int) "reach" (n + 1) (count t "reach")

let prop_tc_matches_model =
  QCheck2.Test.make ~name:"datalog TC = floyd-warshall model" ~count:30
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_bound 12) (int_bound 12)))
    (fun edges ->
      let t = create () in
      ignore (relation t "edge" 2);
      ignore (relation t "path" 2);
      List.iter (fun (a, b) -> fact t "edge" [ a; b ]) edges;
      add_rule t (atom "path" [ v "x"; v "y" ] <-- [ atom "edge" [ v "x"; v "y" ] ]);
      add_rule t
        (atom "path" [ v "x"; v "z" ]
        <-- [ atom "edge" [ v "x"; v "y" ]; atom "path" [ v "y"; v "z" ] ]);
      solve t;
      (* model: boolean matrix closure *)
      let m = Array.make_matrix 13 13 false in
      List.iter (fun (a, b) -> m.(a).(b) <- true) edges;
      for k = 0 to 12 do
        for i = 0 to 12 do
          for j = 0 to 12 do
            if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
          done
        done
      done;
      let expected = ref 0 in
      Array.iter (Array.iter (fun b -> if b then incr expected)) m;
      count t "path" = !expected)

let suite =
  [
    ( "datalog.engine",
      [
        Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
        Alcotest.test_case "constants" `Quick test_constants_in_rules;
        Alcotest.test_case "join" `Quick test_join_order_independent;
        Alcotest.test_case "stratified negation" `Quick test_stratified_negation;
        Alcotest.test_case "negation on derived" `Quick test_negation_on_derived;
        Alcotest.test_case "unstratifiable rejected" `Quick
          test_unstratifiable_rejected;
        Alcotest.test_case "unsafe rule rejected" `Quick
          test_unbound_head_var_rejected;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "long chain" `Quick test_large_chain_performance;
        QCheck_alcotest.to_alcotest prop_tc_matches_model;
      ] );
  ]

(** Tests for the declarative (Doop-analog) analyses: equivalence with the
    imperative engine for CI and 2obj, faithfulness of the Doop CSC variant
    (no load pattern), and soundness. *)

open Helpers
module A = Csc_datalog.Analysis
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits
module Csc = Csc_core.Csc

let dl_run kind src =
  let p = compile src in
  (p, A.run p kind)

let same_result (p : Ir.program) (a : Solver.result) (b : Solver.result) =
  if not (Bits.equal a.r_reach b.r_reach) then
    Alcotest.fail
      (Printf.sprintf "%s vs %s: reachable methods differ (%d vs %d)" a.r_name
         b.r_name (Bits.cardinal a.r_reach) (Bits.cardinal b.r_reach));
  let sort = List.sort_uniq compare in
  if sort a.r_edges <> sort b.r_edges then
    Alcotest.fail
      (Printf.sprintf "%s vs %s: call edges differ (%d vs %d)" a.r_name b.r_name
         (List.length (sort a.r_edges))
         (List.length (sort b.r_edges)));
  Array.iter
    (fun (vr : Ir.var) ->
      if not (Bits.equal (a.r_pt vr.v_id) (b.r_pt vr.v_id)) then
        Alcotest.fail
          (Printf.sprintf "%s vs %s: pt(%s.%s) differs" a.r_name b.r_name
             (Ir.method_name p vr.v_method) vr.v_name))
    p.vars

let test_ci_matches_imperative () =
  List.iter
    (fun (_, src) ->
      let p = compile src in
      let imp = Solver.(result (analyze p)) in
      let dl = A.run p A.Ci in
      same_result p imp dl)
    Fixtures.all

let test_2obj_matches_imperative () =
  List.iter
    (fun (name, src) ->
      if name <> "soot" then begin
        let p = compile src in
        let imp =
          Solver.(result (analyze ~sel:(Csc_pta.Context.kobj ~k:2 ~hk:1) p))
        in
        let dl = A.run p A.Obj2 in
        same_result p imp dl
      end)
    Fixtures.all

let test_2type_matches_imperative () =
  List.iter
    (fun (_, src) ->
      let p = compile src in
      let imp =
        Solver.(result (analyze ~sel:(Csc_pta.Context.ktype ~k:2 ~hk:1) p))
      in
      let dl = A.run p A.Type2 in
      same_result p imp dl)
    Fixtures.all

(* the Doop CSC variant: container + store + local flow, but NO load
   handling (paper §5, "Implementation") *)

let test_doop_csc_store_side () =
  let p, r = dl_run A.Csc_doop Fixtures.carton in
  (* store pattern works: result1 is still merged because load handling is
     omitted on Doop... but o.item fields are precise, so getItem returns
     both - check the LHS merged (2) while CSC-on-Tai-e gives 1 *)
  Alcotest.(check int) "result1 merged (no load pattern on Doop)" 2
    (pt_size r (var p "Main.main" "result1"))

let test_doop_csc_containers () =
  let p, r = dl_run A.Csc_doop Fixtures.containers in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"));
  Alcotest.(check int) "iterator r1 precise" 1 (pt_size r (var p "Main.main" "r1"))

let test_doop_csc_localflow () =
  let p, r = dl_run A.Csc_doop Fixtures.localflow in
  Alcotest.(check int) "r1 precise" 2 (pt_size r (var p "C.main" "r1"))

let test_doop_csc_maps () =
  let p, r = dl_run A.Csc_doop Fixtures.maps in
  Alcotest.(check int) "v1 precise" 1 (pt_size r (var p "Main.main" "v1"));
  Alcotest.(check int) "kk precise" 1 (pt_size r (var p "Main.main" "kk"))

let test_doop_csc_recall () =
  List.iter
    (fun (_, src) ->
      let p, r = dl_run A.Csc_doop src in
      check_recall p r)
    Fixtures.all

let test_doop_csc_refines_ci () =
  List.iter
    (fun (_, src) ->
      let p = compile src in
      let ci = A.run p A.Ci in
      let csc = A.run p A.Csc_doop in
      Array.iter
        (fun (vr : Ir.var) ->
          if not (Bits.subset (csc.r_pt vr.v_id) (ci.r_pt vr.v_id)) then
            Alcotest.fail
              (Printf.sprintf "doop-csc larger than doop-ci for %s" vr.v_name))
        p.vars)
    Fixtures.all

let test_selective_between_ci_and_2obj () =
  let p = compile Fixtures.carton in
  (* select only Carton's methods *)
  let sel = Bits.create () in
  Array.iter
    (fun (m : Ir.metho) ->
      if Ir.class_name p m.m_class = "Carton" then ignore (Bits.add sel m.m_id))
    p.methods;
  let r = A.run p (A.Selective2obj sel) in
  Alcotest.(check int) "selective 2obj recovers carton precision" 1
    (pt_size r (var p "Main.main" "result1"))

let test_timeout () =
  let p = compile Fixtures.containers in
  let budget = Csc_common.Timer.budget_of_seconds (-1.0) in
  match A.run ~budget p A.Ci with
  | _ -> Alcotest.fail "expected timeout"
  | exception A.Timeout -> ()

let suite =
  [
    ( "datalog.analysis",
      [
        Alcotest.test_case "CI = imperative CI" `Quick test_ci_matches_imperative;
        Alcotest.test_case "2obj = imperative 2obj" `Quick
          test_2obj_matches_imperative;
        Alcotest.test_case "2type = imperative 2type" `Quick
          test_2type_matches_imperative;
        Alcotest.test_case "doop-csc: no load pattern" `Quick
          test_doop_csc_store_side;
        Alcotest.test_case "doop-csc: containers" `Quick test_doop_csc_containers;
        Alcotest.test_case "doop-csc: local flow" `Quick test_doop_csc_localflow;
        Alcotest.test_case "doop-csc: maps" `Quick test_doop_csc_maps;
        Alcotest.test_case "doop-csc: recall" `Quick test_doop_csc_recall;
        Alcotest.test_case "doop-csc refines doop-ci" `Quick
          test_doop_csc_refines_ci;
        Alcotest.test_case "selective 2obj" `Quick
          test_selective_between_ci_and_2obj;
        Alcotest.test_case "budget timeout" `Quick test_timeout;
      ] );
  ]

(** Unit tests for the static ingredients of the Cut-Shortcut patterns
    (Csc_core.Static): parameter-redefinition tests, store/load pattern
    detection, the CHA load closure, and local-flow sources. *)

open Helpers
module Static = Csc_core.Static
module Bits = Csc_common.Bits

let meth = find_method

let test_param_index () =
  let p = compile Fixtures.carton in
  let set = meth p "Carton.setItem" in
  (match set.m_this with
  | Some this -> Alcotest.(check (option int)) "this is 0" (Some 0)
                   (Static.param_index p this)
  | None -> Alcotest.fail "no this");
  Alcotest.(check (option int)) "param is 1" (Some 1)
    (Static.param_index p set.m_params.(0))

let test_param_index_redefined () =
  let src =
    {|
class A {
  void m(Object x) {
    x = new Object();   // redefined: Arg2Var must not apply
    System.print(x);
  }
}
class Main { static void main() { A a = new A(); a.m(new Object()); } }
|}
  in
  let p = compile src in
  let m = meth p "A.m" in
  Alcotest.(check (option int)) "redefined param excluded" None
    (Static.param_index p m.m_params.(0))

let test_store_patterns () =
  let p = compile Fixtures.carton in
  let pats = Static.store_patterns p (meth p "Carton.setItem") in
  Alcotest.(check int) "one pattern" 1 (List.length pats);
  let k1, _, k2 = List.hd pats in
  Alcotest.(check int) "base is this" 0 k1;
  Alcotest.(check int) "rhs is param 1" 1 k2

let test_store_pattern_rejects_locals () =
  let src =
    {|
class A {
  Object f;
  void m(Object x) {
    Object y = new Object();
    this.f = y;          // rhs not a param: no pattern
  }
}
class Main { static void main() { A a = new A(); a.m(null); } }
|}
  in
  let p = compile src in
  Alcotest.(check int) "no pattern" 0
    (List.length (Static.store_patterns p (meth p "A.m")))

let test_load_patterns () =
  let p = compile Fixtures.carton in
  let pats = Static.load_patterns p (meth p "Carton.getItem") in
  Alcotest.(check int) "one load pattern" 1 (List.length pats);
  let k, _ = List.hd pats in
  Alcotest.(check int) "base is this" 0 k

let test_load_closure_nested () =
  (* outer() returns inner(), which loads this.f: the CHA closure must cut
     both return variables *)
  let src =
    {|
class W {
  Object f;
  Object inner() {
    Object r = this.f;
    return r;
  }
  Object outer() {
    Object r = this.inner();
    return r;
  }
  Object unrelated() {
    Object r = new Object();
    return r;
  }
}
class Main {
  static void main() {
    W w = new W();
    System.print(w.outer());
    System.print(w.unrelated());
  }
}
|}
  in
  let p = compile src in
  let li = Static.load_info p in
  Alcotest.(check bool) "inner cut" true (Bits.mem li.li_cut (meth p "W.inner").m_id);
  Alcotest.(check bool) "outer cut (closure)" true
    (Bits.mem li.li_cut (meth p "W.outer").m_id);
  Alcotest.(check bool) "unrelated not cut" false
    (Bits.mem li.li_cut (meth p "W.unrelated").m_id)

let test_load_closure_classification_guard () =
  (* two loads of the same field into the return var from different bases:
     classification must be disabled (edges will be relayed) *)
  let src =
    {|
class W {
  Object f;
  Object pickF(boolean b, W other) {
    Object r = this.f;
    if (b) {
      r = other.f;
    }
    return r;
  }
}
class Main {
  static void main() {
    W w1 = new W();
    W w2 = new W();
    System.print(w1.pickF(true, w2));
  }
}
|}
  in
  let p = compile src in
  let li = Static.load_info p in
  let m = meth p "W.pickF" in
  (* still cut (patterns exist for both) but no (m, f) static classification *)
  Alcotest.(check bool) "cut" true (Bits.mem li.li_cut m.m_id);
  let fld = (List.hd (Static.load_patterns p m) : int * int) |> snd in
  Alcotest.(check bool) "classification disabled" false
    (Hashtbl.mem li.li_static_ok (m.m_id, fld))

let test_cha_callees_virtual () =
  let p = compile Fixtures.poly in
  let site =
    (* find the a.speak() call site *)
    let found = ref None in
    Array.iter
      (fun (cs : Ir.call_site) ->
        if
          cs.cs_kind = Ir.Virtual
          && (Ir.metho p cs.cs_target).m_name = "speak"
        then found := Some cs)
      p.calls;
    Option.get !found
  in
  let callees = Static.cha_callees p site in
  Alcotest.(check int) "CHA sees all three speaks" 3 (List.length callees)

let test_local_flow_sources () =
  let p = compile Fixtures.localflow in
  match Static.local_flow_sources p (meth p "C.select") with
  | Some srcs ->
    Alcotest.(check (list int)) "params 2 and 3" [ 2; 3 ] (List.sort compare srcs)
  | None -> Alcotest.fail "select should be a local-flow method"

let test_local_flow_rejects_load () =
  let p = compile Fixtures.carton in
  Alcotest.(check bool) "getter is not local flow" true
    (Static.local_flow_sources p (meth p "Carton.getItem") = None)

let test_local_flow_identity () =
  let p = compile Fixtures.localflow in
  (* Util.id in the jdk: return x directly *)
  match Static.local_flow_sources p (meth p "Util.id") with
  | Some [ 1 ] -> ()
  | _ -> Alcotest.fail "Util.id should flow from param 1"

let test_local_flow_with_null_default () =
  let src =
    {|
class U {
  static Object orNull(boolean b, Object a) {
    Object r = null;
    if (b) {
      r = a;
    }
    return r;
  }
}
class Main { static void main() { System.print(U.orNull(true, new Object())); } }
|}
  in
  let p = compile src in
  match Static.local_flow_sources p (meth p "U.orNull") with
  | Some [ 2 ] -> ()  (* b is parameter 1, a is parameter 2 *)
  | Some l ->
    Alcotest.fail
      (Printf.sprintf "unexpected sources [%s]"
         (String.concat ";" (List.map string_of_int l)))
  | None -> Alcotest.fail "null defaults should be allowed"

let test_local_flow_copy_cycle () =
  (* a cycle of copies with no parameter source is not pure *)
  let src =
    {|
class U {
  static Object weird(Object a) {
    Object x = null;
    Object y = null;
    x = y;
    y = x;
    return x;
  }
}
class Main { static void main() { System.print(U.weird(null)); } }
|}
  in
  let p = compile src in
  (* x and y only support each other: the least fixpoint never proves either
     parameter-pure, so the pattern conservatively does not apply *)
  match Static.local_flow_sources p (meth p "U.weird") with
  | None -> ()
  | Some _ -> Alcotest.fail "copy cycle must not be proven pure"

let suite =
  [
    ( "csc.static",
      [
        Alcotest.test_case "param_index" `Quick test_param_index;
        Alcotest.test_case "param_index: redefined" `Quick
          test_param_index_redefined;
        Alcotest.test_case "store patterns" `Quick test_store_patterns;
        Alcotest.test_case "store patterns reject locals" `Quick
          test_store_pattern_rejects_locals;
        Alcotest.test_case "load patterns" `Quick test_load_patterns;
        Alcotest.test_case "load closure: nested" `Quick test_load_closure_nested;
        Alcotest.test_case "load closure: ambiguity guard" `Quick
          test_load_closure_classification_guard;
        Alcotest.test_case "CHA callees" `Quick test_cha_callees_virtual;
        Alcotest.test_case "local flow sources" `Quick test_local_flow_sources;
        Alcotest.test_case "local flow rejects loads" `Quick
          test_local_flow_rejects_load;
        Alcotest.test_case "local flow: identity" `Quick test_local_flow_identity;
        Alcotest.test_case "local flow: null default" `Quick
          test_local_flow_with_null_default;
        Alcotest.test_case "local flow: copy cycle" `Quick
          test_local_flow_copy_cycle;
      ] );
  ]

(** Tests for the concrete interpreter. *)

module Ir = Csc_ir.Ir
module Interp = Csc_interp.Interp

let run src = Interp.run (Csc_lang.Frontend.compile_string src)

let test_arith () =
  let o = run Fixtures.arith in
  Alcotest.(check (list string)) "output" [ "120"; "10" ] o.output

let test_carton () =
  let o = run Fixtures.carton in
  (* result1/result2 should be the two distinct Item objects *)
  match o.output with
  | [ a; b ] ->
    Alcotest.(check bool) "item 1" true (String.length a > 4 && String.sub a 0 4 = "Item");
    Alcotest.(check bool) "distinct objects" true (a <> b)
  | _ -> Alcotest.fail "expected two lines"

let test_containers_semantics () =
  let o = run Fixtures.containers in
  (* x = l1.get(0) must be the object added to l1, same for iterators *)
  match o.output with
  | [ x; y; r1; r2 ] ->
    Alcotest.(check string) "x = r1 (same object via list and iterator)" x r1;
    Alcotest.(check string) "y = r2" y r2;
    Alcotest.(check bool) "x <> y" true (x <> y)
  | _ -> Alcotest.fail "expected four lines"

let test_map_semantics () =
  let o = run Fixtures.maps in
  match o.output with
  | [ v1; v2; kk; vv ] ->
    Alcotest.(check bool) "v1 is the W stored in m1" true
      (String.length v1 > 1 && String.sub v1 0 1 = "W");
    Alcotest.(check bool) "v2 distinct" true (v1 <> v2);
    Alcotest.(check bool) "key iterator yields a K" true
      (String.length kk > 1 && String.sub kk 0 1 = "K");
    Alcotest.(check bool) "value iterator yields a W" true
      (String.length vv > 1 && String.sub vv 0 1 = "W")
  | _ -> Alcotest.fail "expected four lines"

let test_dynamic_callgraph () =
  let p = Csc_lang.Frontend.compile_string Fixtures.carton in
  let o = Interp.run p in
  let reach_names =
    Csc_common.Bits.fold
      (fun m acc -> Ir.method_name p m :: acc)
      o.dyn_reachable []
  in
  Alcotest.(check bool) "setItem reached" true
    (List.mem "Carton.setItem" reach_names);
  Alcotest.(check bool) "getItem reached" true
    (List.mem "Carton.getItem" reach_names);
  Alcotest.(check bool) "edges recorded" true (List.length o.dyn_edges >= 4)

let test_virtual_dispatch () =
  let o = run Fixtures.poly in
  Alcotest.(check int) "three prints" 3 (List.length o.output)

let test_cast_failure () =
  let src =
    {|
class A { }
class B extends A { }
class Main {
  static void main() {
    A a = new A();
    B b = (B) a;
    System.print(b);
  }
}
|}
  in
  match run src with
  | _ -> Alcotest.fail "expected ClassCastException"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions cast" true
      (Astring.String.is_infix ~affix:"Cast" msg)

let test_npe () =
  let src =
    {|
class A { Object f; }
class Main {
  static void main() {
    A a = null;
    Object x = a.f;
    System.print(x);
  }
}
|}
  in
  match run src with
  | _ -> Alcotest.fail "expected NPE"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "mentions NPE" true
      (Astring.String.is_infix ~affix:"NullPointer" msg)

let test_step_budget () =
  let src =
    {|
class Main {
  static void main() {
    int i = 0;
    while (i < 10) {
      i = i - 1;   // never terminates
    }
  }
}
|}
  in
  let p = Csc_lang.Frontend.compile_string src in
  match Interp.run ~max_steps:10_000 p with
  | _ -> Alcotest.fail "expected budget exhaustion"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "budget message" true
      (Astring.String.is_infix ~affix:"budget" msg)

let test_array_bounds () =
  let src =
    {|
class Main {
  static void main() {
    Object[] a = new Object[2];
    Object x = a[5];
    System.print(x);
  }
}
|}
  in
  match run src with
  | _ -> Alcotest.fail "expected bounds error"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "bounds message" true
      (Astring.String.is_infix ~affix:"Bounds" msg)

let test_field_defaults () =
  let src =
    {|
class A { int n; boolean b; Object o; }
class Main {
  static void main() {
    A a = new A();
    System.print(a.n);
    System.print(a.b);
    System.print(a.o);
  }
}
|}
  in
  let o = run src in
  Alcotest.(check (list string)) "defaults" [ "0"; "false"; "null" ] o.output

let test_linkedlist_order () =
  let src =
    {|
class Main {
  static void main() {
    LinkedList l = new LinkedList();
    l.add("a");
    l.add("b");
    l.add("c");
    System.print(l.get(0));
    System.print(l.get(2));
    System.print(l.size());
    Iterator it = l.iterator();
    while (it.hasNext()) {
      System.print(it.next());
    }
  }
}
|}
  in
  let o = run src in
  Alcotest.(check (list string)) "list semantics"
    [ "a"; "c"; "3"; "c"; "b"; "a" ] o.output

let test_hashset_dedup () =
  let src =
    {|
class Main {
  static void main() {
    HashSet s = new HashSet();
    Object a = new Object();
    s.add(a);
    s.add(a);
    System.print(s.size());
    System.print(s.contains(a));
  }
}
|}
  in
  let o = run src in
  Alcotest.(check (list string)) "set semantics" [ "1"; "true" ] o.output

let test_arraylist_growth () =
  let src =
    {|
class Main {
  static void main() {
    ArrayList l = new ArrayList();
    int i = 0;
    while (i < 100) {
      l.add(new Object());
      i = i + 1;
    }
    System.print(l.size());
    Object last = l.get(99);
    System.print(last != null);
  }
}
|}
  in
  let o = run src in
  Alcotest.(check (list string)) "growth" [ "100"; "true" ] o.output

let test_hashmap_overwrite () =
  let src =
    {|
class Main {
  static void main() {
    HashMap m = new HashMap();
    Object k = new Object();
    m.put(k, "one");
    m.put(k, "two");
    System.print(m.get(k));
    System.print(m.size());
  }
}
|}
  in
  let o = run src in
  Alcotest.(check (list string)) "overwrite" [ "two"; "1" ] o.output

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "arithmetic & loops" `Quick test_arith;
        Alcotest.test_case "carton example" `Quick test_carton;
        Alcotest.test_case "container semantics" `Quick test_containers_semantics;
        Alcotest.test_case "map semantics" `Quick test_map_semantics;
        Alcotest.test_case "dynamic call graph" `Quick test_dynamic_callgraph;
        Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
        Alcotest.test_case "cast failure raises" `Quick test_cast_failure;
        Alcotest.test_case "null dereference raises" `Quick test_npe;
        Alcotest.test_case "step budget" `Quick test_step_budget;
        Alcotest.test_case "array bounds" `Quick test_array_bounds;
        Alcotest.test_case "field defaults" `Quick test_field_defaults;
        Alcotest.test_case "linked list order" `Quick test_linkedlist_order;
        Alcotest.test_case "hashset dedup" `Quick test_hashset_dedup;
        Alcotest.test_case "arraylist growth" `Quick test_arraylist_growth;
        Alcotest.test_case "hashmap overwrite" `Quick test_hashmap_overwrite;
      ] );
  ]

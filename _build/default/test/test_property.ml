(** End-to-end property tests: random small programs from the workload
    generator, checked for (1) frontend totality, (2) interpreter
    termination, (3) 100% recall of dynamic behaviour by CI and CSC on both
    engines, (4) the refinement ordering CSC ⊆ CI, and (5) engine agreement
    (imperative CI = Datalog CI). These are the repository's strongest
    soundness guards: every random program exercises the full stack. *)

module Gen = Csc_workloads.Gen
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits

let shape_gen : Gen.shape QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* seed = int_range 1 1_000_000 in
  let* n_entity = int_range 2 6 in
  let* n_fields = int_range 1 3 in
  let* n_wrap = int_range 1 3 in
  let* n_hier = int_range 1 2 in
  let* hier_width = int_range 2 3 in
  let* n_registry = int_range 1 3 in
  let* n_driver = int_range 1 3 in
  let* ops = int_range 2 5 in
  let* fork = int_range 0 6 in
  let* mesh = int_range 4 6 in
  return
    Gen.
      {
        seed;
        n_entity;
        n_fields;
        n_wrap;
        n_hier;
        hier_width;
        n_registry;
        n_util = 1;
        n_driver;
        ops_per_driver = ops;
        loop_iters = 2;
        fork_sites = fork;
        mesh_classes = mesh;
      }

let compile_shape shape =
  Csc_lang.Frontend.compile_string (Gen.generate shape)

let prop_compiles_and_runs =
  QCheck2.Test.make ~name:"random programs compile and terminate" ~count:15
    shape_gen (fun shape ->
      let p = compile_shape shape in
      let o = Csc_interp.Interp.run ~max_steps:20_000_000 p in
      o.steps > 0 && o.output <> [])

let prop_recall =
  QCheck2.Test.make ~name:"CI and CSC recall all dynamic behaviour" ~count:10
    shape_gen (fun shape ->
      let p = compile_shape shape in
      let dyn = Csc_interp.Interp.run ~max_steps:20_000_000 p in
      let check (r : Solver.result) =
        Bits.for_all (fun m -> Bits.mem r.r_reach m) dyn.dyn_reachable
        && List.for_all (fun e -> List.mem e r.r_edges) dyn.dyn_edges
      in
      check (Solver.result (Solver.analyze p))
      && check (Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p)))

let prop_csc_refines_ci =
  QCheck2.Test.make ~name:"CSC points-to sets refine CI's" ~count:10 shape_gen
    (fun shape ->
      let p = compile_shape shape in
      let ci = Solver.result (Solver.analyze p) in
      let csc = Solver.result (Solver.analyze ~plugin_of:Csc_core.Csc.plugin p) in
      Array.for_all
        (fun (v : Ir.var) -> Bits.subset (csc.r_pt v.v_id) (ci.r_pt v.v_id))
        p.vars
      && Bits.subset csc.r_reach ci.r_reach)

let prop_engines_agree =
  QCheck2.Test.make ~name:"imperative CI = Datalog CI" ~count:6 shape_gen
    (fun shape ->
      let p = compile_shape shape in
      let imp = Solver.result (Solver.analyze p) in
      let dl = Csc_datalog.Analysis.run p Csc_datalog.Analysis.Ci in
      Bits.equal imp.r_reach dl.r_reach
      && List.sort_uniq compare imp.r_edges = List.sort_uniq compare dl.r_edges
      && Array.for_all
           (fun (v : Ir.var) -> Bits.equal (imp.r_pt v.v_id) (dl.r_pt v.v_id))
           p.vars)

let prop_doop_csc_sound =
  QCheck2.Test.make ~name:"Datalog CSC recalls dynamic behaviour" ~count:6
    shape_gen (fun shape ->
      let p = compile_shape shape in
      let dyn = Csc_interp.Interp.run ~max_steps:20_000_000 p in
      let r = Csc_datalog.Analysis.run p Csc_datalog.Analysis.Csc_doop in
      Bits.for_all (fun m -> Bits.mem r.r_reach m) dyn.dyn_reachable
      && List.for_all (fun e -> List.mem e r.r_edges) dyn.dyn_edges)

let suite =
  [
    ( "property",
      [
        QCheck_alcotest.to_alcotest ~long:true prop_compiles_and_runs;
        QCheck_alcotest.to_alcotest ~long:true prop_recall;
        QCheck_alcotest.to_alcotest ~long:true prop_csc_refines_ci;
        QCheck_alcotest.to_alcotest ~long:true prop_engines_agree;
        QCheck_alcotest.to_alcotest ~long:true prop_doop_csc_sound;
      ] );
  ]

(** Tests for the workload generator and suite. *)

module Suite = Csc_workloads.Suite
module Gen = Csc_workloads.Gen
module Ir = Csc_ir.Ir

let test_deterministic () =
  let a = Suite.source "hsqldb" and b = Suite.source "hsqldb" in
  Alcotest.(check bool) "same source" true (a = b);
  let c = Suite.source "findbugs" in
  Alcotest.(check bool) "different programs differ" true (a <> c)

let test_small_shape_compiles_and_runs () =
  let src = Gen.generate Gen.small_shape in
  let p = Csc_lang.Frontend.compile_string src in
  let o = Csc_interp.Interp.run p in
  Alcotest.(check bool) "program prints" true (List.length o.output > 0);
  Alcotest.(check string) "last line is done"
    "done"
    (List.nth o.output (List.length o.output - 1))

let test_all_programs_compile () =
  List.iter
    (fun name ->
      match Suite.compile name with
      | p ->
        let s = Ir.stats p in
        if s.n_methods < 100 then
          Alcotest.fail (name ^ ": suspiciously small program")
      | exception e ->
        Alcotest.fail
          (Printf.sprintf "%s failed to compile: %s" name (Printexc.to_string e)))
    Suite.names

let test_small_programs_run () =
  (* executing the big ones is the bench's job; test the three smallest *)
  List.iter
    (fun name ->
      let p = Suite.compile name in
      let o = Csc_interp.Interp.run p in
      Alcotest.(check bool) (name ^ " terminates") true (o.steps > 0))
    [ "hsqldb"; "findbugs"; "jython" ]

let test_sizes_ordered () =
  let stmts name = (Ir.stats (Suite.compile name)).n_stmts in
  Alcotest.(check bool) "hsqldb < eclipse" true (stmts "hsqldb" < stmts "eclipse");
  Alcotest.(check bool) "eclipse < soot" true (stmts "eclipse" < stmts "soot");
  Alcotest.(check bool) "soot < columba approx" true
    (stmts "soot" < stmts "columba" * 2)

let test_shape_knobs () =
  let base = Gen.small_shape in
  let bigger = { base with Gen.n_entity = base.Gen.n_entity * 4 } in
  let s1 = Ir.stats (Csc_lang.Frontend.compile_string (Gen.generate base)) in
  let s2 = Ir.stats (Csc_lang.Frontend.compile_string (Gen.generate bigger)) in
  Alcotest.(check bool) "more entities -> more classes" true
    (s2.n_classes > s1.n_classes)

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "small shape compiles+runs" `Quick
          test_small_shape_compiles_and_runs;
        Alcotest.test_case "all suite programs compile" `Slow
          test_all_programs_compile;
        Alcotest.test_case "small programs run" `Slow test_small_programs_run;
        Alcotest.test_case "sizes ordered" `Slow test_sizes_ordered;
        Alcotest.test_case "shape knobs" `Quick test_shape_knobs;
      ] );
  ]

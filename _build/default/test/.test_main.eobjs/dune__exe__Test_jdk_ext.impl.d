test/test_jdk_ext.ml: Alcotest Csc_common Csc_core Csc_interp Csc_pta Helpers List

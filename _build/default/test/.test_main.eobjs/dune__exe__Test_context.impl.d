test/test_context.ml: Alcotest Csc_common Csc_ir Csc_pta Fixtures Helpers

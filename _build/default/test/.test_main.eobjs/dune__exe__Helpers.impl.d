test/helpers.ml: Alcotest Array Csc_common Csc_interp Csc_ir Csc_lang Csc_pta List Printf

test/test_workloads.ml: Alcotest Csc_interp Csc_ir Csc_lang Csc_workloads List Printexc Printf

test/test_datalog_analysis.ml: Alcotest Array Csc_common Csc_core Csc_datalog Csc_pta Fixtures Helpers Ir List Printf

test/test_misc.ml: Alcotest Astring Buffer Csc_common Csc_driver Csc_interp Csc_pta Fixtures Fmt Helpers List String

test/test_csc.ml: Alcotest Array Csc_common Csc_core Csc_pta Fixtures Helpers Ir List Printf

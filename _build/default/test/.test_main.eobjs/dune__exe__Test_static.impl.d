test/test_static.ml: Alcotest Array Csc_common Csc_core Fixtures Hashtbl Helpers Ir List Option Printf String

test/test_driver.ml: Alcotest Csc_clients Csc_common Csc_driver Csc_pta Csc_workloads Fixtures Helpers List Option

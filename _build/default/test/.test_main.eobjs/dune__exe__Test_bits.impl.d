test/test_bits.ml: Alcotest Bits Csc_common List QCheck2 QCheck_alcotest Rng

test/test_datalog_more.ml: Alcotest Array Csc_clients Csc_common Csc_core Csc_datalog Csc_pta Fixtures Helpers List

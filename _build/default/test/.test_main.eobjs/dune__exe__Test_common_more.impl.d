test/test_common_more.ml: Alcotest Csc_common Csc_interp Csc_lang Helpers Interner List QCheck2 QCheck_alcotest Vec

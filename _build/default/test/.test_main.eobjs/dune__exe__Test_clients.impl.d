test/test_clients.ml: Alcotest Csc_clients Csc_common Csc_interp Csc_pta Fixtures Helpers List

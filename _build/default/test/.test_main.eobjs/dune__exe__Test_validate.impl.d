test/test_validate.ml: Alcotest Array Csc_ir Csc_workloads Fixtures Helpers Ir List Printf String

test/test_lang_ext.ml: Alcotest Array Csc_clients Csc_interp Csc_pta Helpers Ir

test/test_csc_containers.ml: Alcotest Csc_common Csc_core Csc_pta Helpers Printf

test/test_frontend.ml: Alcotest Array Astring Csc_ir Csc_lang Fixtures List Printexc Printf

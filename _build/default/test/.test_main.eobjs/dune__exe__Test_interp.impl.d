test/test_interp.ml: Alcotest Astring Csc_common Csc_interp Csc_ir Csc_lang Fixtures List String

test/test_solver.ml: Alcotest Array Csc_common Csc_pta Fixtures Helpers Ir List Printf

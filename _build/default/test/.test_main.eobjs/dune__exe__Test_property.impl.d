test/test_property.ml: Array Csc_common Csc_core Csc_datalog Csc_interp Csc_ir Csc_lang Csc_pta Csc_workloads List QCheck2 QCheck_alcotest

test/test_datalog.ml: Alcotest Array Csc_datalog List QCheck2 QCheck_alcotest

test/test_robustness.ml: Alcotest Array Buffer Csc_common Csc_core Csc_interp Csc_ir Csc_pta Helpers Ir List Printf

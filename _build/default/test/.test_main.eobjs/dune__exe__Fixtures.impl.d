test/fixtures.ml:

(** Robustness suite: tricky program shapes end to end (frontend →
    interpreter → CI/CSC/2obj), checking termination, soundness and
    precision on each. *)

open Helpers
module Solver = Csc_pta.Solver
module Csc = Csc_core.Csc
module Bits = Csc_common.Bits

let full_check ?(expect_output = None) src =
  let p = compile src in
  (match Csc_ir.Validate.check p with
  | [] -> ()
  | errs -> Alcotest.fail ("invalid IR: " ^ List.hd errs));
  let o = Csc_interp.Interp.run p in
  (match expect_output with
  | Some exp -> Alcotest.(check (list string)) "output" exp o.output
  | None -> ());
  let ci = Solver.result (Solver.analyze p) in
  let csc = Solver.result (Solver.analyze ~plugin_of:Csc.plugin p) in
  let tobj =
    Solver.result (Solver.analyze ~sel:(Csc_pta.Context.kobj ~k:2 ~hk:1) p)
  in
  List.iter (fun r -> check_recall p r) [ ci; csc; tobj ];
  Array.iter
    (fun (v : Ir.var) ->
      if not (Bits.subset (csc.r_pt v.v_id) (ci.r_pt v.v_id)) then
        Alcotest.fail ("CSC not a refinement at " ^ v.v_name))
    p.vars;
  (p, ci, csc)

let test_direct_recursion () =
  let src =
    {|
class Tree {
  Tree left;
  Tree right;
  Object tag;
  int depth() {
    int l = 0;
    int r = 0;
    if (this.left != null) { l = this.left.depth(); }
    if (this.right != null) { r = this.right.depth(); }
    int best = l;
    if (r > l) { best = r; }
    return best + 1;
  }
}
class Main {
  static void main() {
    Tree root = new Tree();
    root.left = new Tree();
    root.left.right = new Tree();
    System.print(root.depth());
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "3" ]) src)

let test_mutual_recursion () =
  let src =
    {|
class M {
  static boolean isEven(int n) {
    if (n == 0) { return true; }
    return M.isOdd(n - 1);
  }
  static boolean isOdd(int n) {
    if (n == 0) { return false; }
    return M.isEven(n - 1);
  }
  static void main() {
    System.print(M.isEven(10));
    System.print(M.isOdd(7));
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "true"; "true" ]) src)

let test_cyclic_heap () =
  (* a cyclic linked structure must not diverge anywhere *)
  let src =
    {|
class Node {
  Node next;
  Object payload;
}
class Main {
  static void main() {
    Node a = new Node();
    Node b = new Node();
    a.next = b;
    b.next = a;          // cycle
    a.payload = new Object();
    Node cur = a;
    for (int i = 0; i < 6; i = i + 1) {
      cur = cur.next;
    }
    System.print(cur == a);
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "true" ]) src)

let test_recursive_wrapper_pattern () =
  (* the load pattern on a recursive getter chain *)
  let src =
    {|
class Chain {
  Chain inner;
  Object v;
  Object deepGet(int d) {
    if (d > 0) {
      return this.inner.deepGet(d - 1);
    }
    return this.v;
  }
}
class Main {
  static void main() {
    Chain c2 = new Chain();
    c2.v = "bottom";
    Chain c1 = new Chain();
    c1.inner = c2;
    System.print(c1.deepGet(1));
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "bottom" ]) src)

let test_deep_inheritance () =
  let depth = 12 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "class L0 { int level() { return 0; } }\n";
  for i = 1 to depth do
    Buffer.add_string buf
      (Printf.sprintf "class L%d extends L%d { int level() { return %d; } }\n" i
         (i - 1) i)
  done;
  Buffer.add_string buf
    (Printf.sprintf
       {|
class Main {
  static void main() {
    L0 x = new L%d();
    System.print(x.level());
  }
}
|}
       depth);
  ignore (full_check ~expect_output:(Some [ string_of_int depth ]) (Buffer.contents buf))

let test_shadowing_scopes () =
  let src =
    {|
class Main {
  static void main() {
    int x = 1;
    if (true) {
      int y = 10;
      x = x + y;
    }
    while (x < 20) {
      int y = 2;      // same name, sibling scope: fine
      x = x + y;
    }
    System.print(x);
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "21" ]) src)

let test_array_of_arrays () =
  let src =
    {|
class Main {
  static void main() {
    Object[][] grid = new Object[2][];
    grid[0] = new Object[2];
    grid[1] = new Object[3];
    Object[] row = grid[1];
    row[2] = "corner";
    Object[] again = grid[1];
    System.print(again[2]);
    System.print(grid.length);
    System.print(row.length);
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "corner"; "2"; "3" ]) src)

let test_interleaved_containers () =
  (* containers stored in containers, iterated, with casts *)
  let src =
    {|
class Main {
  static void main() {
    ArrayList outer = new ArrayList();
    ArrayList in1 = new ArrayList();
    in1.add("a");
    ArrayList in2 = new ArrayList();
    in2.add("b");
    outer.add(in1);
    outer.add(in2);
    Iterator it = outer.iterator();
    while (it.hasNext()) {
      ArrayList inner = (ArrayList) it.next();
      System.print(inner.get(0));
    }
  }
}
|}
  in
  let _, _, csc = full_check ~expect_output:(Some [ "a"; "b" ]) src in
  ignore csc

let test_this_escape () =
  (* an object registers *itself* in a container from its constructor *)
  let src =
    {|
class Registry2 {
  static ArrayList all;
}
class Agent {
  Object name;
  Agent(Object n) {
    this.name = n;
    Registry2.all.add(this);
  }
}
class Main {
  static void main() {
    Registry2.all = new ArrayList();
    Agent a = new Agent("a1");
    Agent b = new Agent("a2");
    Agent first = (Agent) Registry2.all.get(0);
    System.print(first.name);
    System.print(Registry2.all.size());
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "a1"; "2" ]) src)

let test_polymorphic_array () =
  let src =
    {|
class Shape { int sides() { return 0; } }
class Tri extends Shape { int sides() { return 3; } }
class Quad extends Shape { int sides() { return 4; } }
class Main {
  static void main() {
    Shape[] shapes = new Shape[2];
    shapes[0] = new Tri();
    shapes[1] = new Quad();
    int total = 0;
    for (int i = 0; i < shapes.length; i = i + 1) {
      total = total + shapes[i].sides();
    }
    System.print(total);
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "7" ]) src)

let test_long_copy_chain_local_flow () =
  (* long local copy chains still detected by Param2VarRec *)
  let src =
    {|
class U {
  static Object relay(Object p) {
    Object a = p;
    Object b = a;
    Object c = b;
    Object d = c;
    Object e = d;
    return e;
  }
}
class Main {
  static void main() {
    Object o1 = new Object();
    Object o2 = new Object();
    Object x = U.relay(o1);
    Object y = U.relay(o2);
    System.print(x == o1);
    System.print(y == o2);
  }
}
|}
  in
  let p, _, csc = full_check ~expect_output:(Some [ "true"; "true" ]) src in
  Alcotest.(check int) "x precise through the chain" 1
    (pt_size csc (var p "Main.main" "x"))

let test_string_identity () =
  let src =
    {|
class Main {
  static void main() {
    String s1 = "hello";
    String s2 = "hello";   // distinct allocation sites, distinct objects
    System.print(s1 == s2);
    System.print(s1 == s1);
  }
}
|}
  in
  ignore (full_check ~expect_output:(Some [ "false"; "true" ]) src)

let test_interface_style_dispatch () =
  (* Collection-typed variables dispatching across implementations *)
  let src =
    {|
class Main {
  static void main() {
    Collection c1 = new ArrayList();
    Collection c2 = new LinkedList();
    c1.add("x");
    c2.add("y");
    System.print(c1.size());
    System.print(c2.size());
    Object x = c1.get(0);
    Object y = c2.get(0);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, _, csc = full_check ~expect_output:(Some [ "1"; "1"; "x"; "y" ]) src in
  (* the two collections' contents must not be conflated by CSC, even when
     accessed through base-typed (interface-style) variables *)
  Alcotest.(check int) "x precise" 1 (pt_size csc (var p "Main.main" "x"));
  Alcotest.(check bool) "contents separated" false
    (Bits.inter_nonempty
       (csc.r_pt (var p "Main.main" "x"))
       (csc.r_pt (var p "Main.main" "y")))

let suite =
  [
    ( "robustness",
      [
        Alcotest.test_case "direct recursion" `Quick test_direct_recursion;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "cyclic heap" `Quick test_cyclic_heap;
        Alcotest.test_case "recursive getter chain" `Quick
          test_recursive_wrapper_pattern;
        Alcotest.test_case "deep inheritance" `Quick test_deep_inheritance;
        Alcotest.test_case "shadowing scopes" `Quick test_shadowing_scopes;
        Alcotest.test_case "array of arrays" `Quick test_array_of_arrays;
        Alcotest.test_case "containers of containers" `Quick
          test_interleaved_containers;
        Alcotest.test_case "this-escape via ctor" `Quick test_this_escape;
        Alcotest.test_case "polymorphic array" `Quick test_polymorphic_array;
        Alcotest.test_case "long copy chain" `Quick test_long_copy_chain_local_flow;
        Alcotest.test_case "string identity" `Quick test_string_identity;
        Alcotest.test_case "interface-style dispatch" `Quick
          test_interface_style_dispatch;
      ] );
  ]

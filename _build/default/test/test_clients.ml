(** Unit tests for the precision-metric clients. *)

open Helpers
module Metrics = Csc_clients.Metrics
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits

let test_fail_cast_counts () =
  let p, r = analyze Fixtures.poly in
  let m = Metrics.compute p r in
  (* poly fixture: one safe cast, one may-fail cast *)
  Alcotest.(check int) "one may-fail cast under CI" 1 m.fail_cast

let test_fail_cast_cs_drops () =
  let p, r = analyze ~sel:(Csc_pta.Context.kcall ~k:2 ~hk:1) Fixtures.poly in
  let m = Metrics.compute p r in
  (* under 2call, pick(true)/pick(false) still merge both allocations inside
     pick (single method body, both New sites reachable), so the downcast
     stays flagged; the safe cast stays safe *)
  Alcotest.(check bool) "still flags the real downcast" true (m.fail_cast >= 1)

let test_poly_call () =
  let p, r = analyze Fixtures.poly in
  let m = Metrics.compute p r in
  Alcotest.(check int) "one polymorphic site" 1 m.poly_call

let test_reach_and_edges_consistent () =
  let p, r = analyze Fixtures.containers in
  let m = Metrics.compute p r in
  Alcotest.(check int) "#reach-mtd = |reach|" (Bits.cardinal r.r_reach) m.reach_mtd;
  Alcotest.(check int) "#call-edge = |edges|" (List.length r.r_edges) m.call_edge;
  (* every edge's callee is reachable *)
  List.iter
    (fun (_, callee) ->
      Alcotest.(check bool) "callee reachable" true (Bits.mem r.r_reach callee))
    r.r_edges

let test_unreachable_casts_not_counted () =
  let src =
    {|
class A { }
class B extends A { }
class Dead {
  void never() {
    A a = new A();
    B b = (B) a;
    System.print(b);
  }
}
class Main { static void main() { System.print(1); } }
|}
  in
  let p, r = analyze src in
  let m = Metrics.compute p r in
  Alcotest.(check int) "dead cast not flagged" 0 m.fail_cast

let test_better_or_equal () =
  let a = Metrics.{ fail_cast = 1; reach_mtd = 10; poly_call = 2; call_edge = 50 } in
  let b = Metrics.{ fail_cast = 2; reach_mtd = 10; poly_call = 2; call_edge = 55 } in
  Alcotest.(check bool) "a <= b" true (Metrics.better_or_equal a b);
  Alcotest.(check bool) "b !<= a" false (Metrics.better_or_equal b a)

let test_recall_perfect_and_partial () =
  let p, r = analyze Fixtures.carton in
  let dyn = Csc_interp.Interp.run p in
  let rc =
    Metrics.recall r ~dyn_reach:dyn.dyn_reachable ~dyn_edges:dyn.dyn_edges
  in
  Alcotest.(check (float 0.001)) "methods 100%" 1.0 rc.recall_methods;
  Alcotest.(check (float 0.001)) "edges 100%" 1.0 rc.recall_edges;
  (* a fake result missing everything scores 0 *)
  let empty =
    {
      r with
      Solver.r_reach = Bits.create ();
      r_edges = [];
    }
  in
  let rc0 =
    Metrics.recall empty ~dyn_reach:dyn.dyn_reachable ~dyn_edges:dyn.dyn_edges
  in
  Alcotest.(check (float 0.001)) "methods 0%" 0.0 rc0.recall_methods

let suite =
  [
    ( "clients",
      [
        Alcotest.test_case "fail-cast CI" `Quick test_fail_cast_counts;
        Alcotest.test_case "fail-cast under cs" `Quick test_fail_cast_cs_drops;
        Alcotest.test_case "poly-call" `Quick test_poly_call;
        Alcotest.test_case "reach/edges consistent" `Quick
          test_reach_and_edges_consistent;
        Alcotest.test_case "dead casts not counted" `Quick
          test_unreachable_casts_not_counted;
        Alcotest.test_case "better_or_equal" `Quick test_better_or_equal;
        Alcotest.test_case "recall scoring" `Quick test_recall_perfect_and_partial;
      ] );
  ]

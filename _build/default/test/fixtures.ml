(** MiniJava fixture programs used across the test suites. The first four are
    transcriptions of the paper's running examples (Figures 1, 3, 4, 5). *)

(* Figure 1: the Carton/Item motivating example. *)
let carton =
  {|
class Item { }

class Carton {
  Item item;
  void setItem(Item item) { this.item = item; }
  Item getItem() {
    Item r = this.item;
    return r;
  }
}

class Main {
  static void main() {
    Carton c1 = new Carton();      // o15
    Item item1 = new Item();       // o16
    c1.setItem(item1);
    Item result1 = c1.getItem();

    Carton c2 = new Carton();      // o20
    Item item2 = new Item();       // o21
    c2.setItem(item2);
    Item result2 = c2.getItem();
    System.print(result1);
    System.print(result2);
  }
}
|}

(* Figure 3: nested calls for field access. *)
let nested =
  {|
class T { }

class A {
  T f;
  A(T t) { this.set(t); }
  void set(T p) { this.f = p; }
  T get() {
    T r = this.f;
    return r;
  }
}

class Main {
  static void main() {
    T t1 = new T();        // o7
    A a1 = new A(t1);      // o8
    T t2 = new T();        // o9
    A a2 = new A(t2);      // o10
    T r1 = a1.get();
    T r2 = a2.get();
    System.print(r1);
    System.print(r2);
  }
}
|}

(* Figure 4: ArrayList and iterators. *)
let containers =
  {|
class Main {
  static void main() {
    ArrayList l1 = new ArrayList();    // host o1
    Object a = new Object();           // o2
    l1.add(a);
    Object x = l1.get(0);

    ArrayList l2 = new ArrayList();    // host o6
    Object b = new Object();           // o7
    l2.add(b);
    Object y = l2.get(0);

    Iterator it1 = l1.iterator();
    Object r1 = it1.next();
    Iterator it2 = l2.iterator();
    Object r2 = it2.next();
    System.print(x);
    System.print(y);
    System.print(r1);
    System.print(r2);
  }
}
|}

(* Figure 5: local flow pattern. *)
let localflow =
  {|
class V { }

class C {
  static V select(boolean b, V p1, V p2) {
    V r = p2;
    if (b) {
      r = p1;
    }
    return r;
  }

  static void main() {
    V o10 = new V();
    V o11 = new V();
    V r1 = C.select(true, o10, o11);

    V o14 = new V();
    V o15 = new V();
    V r2 = C.select(false, o14, o15);
    System.print(r1);
    System.print(r2);
  }
}
|}

(* Map usage: keys/values/views, exercising categories in the container
   pattern. *)
let maps =
  {|
class K { }
class W { }

class Main {
  static void main() {
    HashMap m1 = new HashMap();
    K k1 = new K();
    W w1 = new W();
    m1.put(k1, w1);
    Object v1 = m1.get(k1);

    HashMap m2 = new HashMap();
    K k2 = new K();
    W w2 = new W();
    m2.put(k2, w2);
    Object v2 = m2.get(k2);

    Iterator kit = m1.keySet().iterator();
    Object kk = kit.next();
    Iterator vit = m2.values().iterator();
    Object vv = vit.next();
    System.print(v1);
    System.print(v2);
    System.print(kk);
    System.print(vv);
  }
}
|}

(* Polymorphism: virtual dispatch, casts (one safe, one that may fail). *)
let poly =
  {|
class Animal {
  Object speak() { return null; }
}
class Dog extends Animal {
  Object speak() {
    Object r = new Object();
    return r;
  }
}
class Cat extends Animal {
  Object speak() {
    Object r = new Object();
    return r;
  }
}

class Main {
  static Animal pick(boolean b) {
    Animal a = new Dog();
    if (b) {
      a = new Cat();
    }
    return a;
  }

  static void main() {
    Animal a = Main.pick(true);
    Object s = a.speak();
    Animal d = new Dog();
    Dog dd = (Dog) d;          // safe cast
    Animal c = Main.pick(false);
    Dog maybe = (Dog) c;       // may fail
    System.print(s);
    System.print(dd);
    System.print(maybe);
  }
}
|}

(* A small executable program with loops and arithmetic, for the
   interpreter tests. *)
let arith =
  {|
class Main {
  static int fact(int n) {
    int acc = 1;
    int i = 1;
    while (i <= n) {
      acc = acc * i;
      i = i + 1;
    }
    return acc;
  }

  static void main() {
    int x = Main.fact(5);
    System.print(x);
    ArrayList l = new ArrayList();
    int i = 0;
    while (i < 10) {
      l.add(new Object());
      i = i + 1;
    }
    System.print(l.size());
  }
}
|}

let all =
  [ ("carton", carton); ("nested", nested); ("containers", containers);
    ("localflow", localflow); ("maps", maps); ("poly", poly); ("arith", arith) ]

(** Tests for the Cut-Shortcut analysis: precision on the paper's running
    examples (Figures 1, 3, 4, 5), soundness (recall vs the interpreter),
    per-pattern ablations, and the refinement relation vs CI. *)

open Helpers
module Csc = Csc_core.Csc
module Solver = Csc_pta.Solver
module Bits = Csc_common.Bits

let csc_analyze ?config src =
  let p = compile src in
  let t = Solver.analyze ~plugin_of:(Csc.plugin ?config) p in
  (p, Solver.result t)

(* --- Figure 1: field access pattern ---------------------------------- *)

let test_carton_precise () =
  let p, r = csc_analyze Fixtures.carton in
  Alcotest.(check int) "result1 precise" 1 (pt_size r (var p "Main.main" "result1"));
  Alcotest.(check int) "result2 precise" 1 (pt_size r (var p "Main.main" "result2"));
  Alcotest.(check bool) "distinct" true
    (not
       (Bits.equal
          (r.r_pt (var p "Main.main" "result1"))
          (r.r_pt (var p "Main.main" "result2"))))

let test_carton_field_pattern_only () =
  let config = Csc.{ field_pattern = true; container_pattern = false; local_flow = false } in
  let p, r = csc_analyze ~config Fixtures.carton in
  Alcotest.(check int) "field pattern alone suffices" 1
    (pt_size r (var p "Main.main" "result1"))

(* --- Figure 3: nested calls for field access -------------------------- *)

let test_nested_precise () =
  let p, r = csc_analyze Fixtures.nested in
  Alcotest.(check int) "r1 precise" 1 (pt_size r (var p "Main.main" "r1"));
  Alcotest.(check int) "r2 precise" 1 (pt_size r (var p "Main.main" "r2"));
  Alcotest.(check bool) "r1 <> r2" true
    (not (Bits.equal (r.r_pt (var p "Main.main" "r1")) (r.r_pt (var p "Main.main" "r2"))))

(* --- Figure 4: container access pattern ------------------------------- *)

let test_containers_precise () =
  let p, r = csc_analyze Fixtures.containers in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"));
  Alcotest.(check int) "iterator r1 precise" 1 (pt_size r (var p "Main.main" "r1"));
  Alcotest.(check int) "iterator r2 precise" 1 (pt_size r (var p "Main.main" "r2"))

let test_containers_need_container_pattern () =
  (* with the container pattern disabled, results are as imprecise as CI *)
  let config = Csc.{ field_pattern = true; container_pattern = false; local_flow = true } in
  let p, r = csc_analyze ~config Fixtures.containers in
  Alcotest.(check int) "x merged without container pattern" 2
    (pt_size r (var p "Main.main" "x"))

let test_maps_precise () =
  let p, r = csc_analyze Fixtures.maps in
  Alcotest.(check int) "map value v1 precise" 1 (pt_size r (var p "Main.main" "v1"));
  Alcotest.(check int) "map value v2 precise" 1 (pt_size r (var p "Main.main" "v2"));
  (* key iterator sees only keys of m1; value iterator only values of m2 *)
  Alcotest.(check int) "keySet iterator precise" 1
    (pt_size r (var p "Main.main" "kk"));
  Alcotest.(check int) "values iterator precise" 1
    (pt_size r (var p "Main.main" "vv"))

let test_map_categories_dont_mix () =
  let src =
    {|
class K { }
class W { }
class Main {
  static void main() {
    HashMap m = new HashMap();
    m.put(new K(), new W());
    Iterator kit = m.keySet().iterator();
    Object kk = kit.next();
    Iterator vit = m.values().iterator();
    Object vv = vit.next();
    System.print(kk);
    System.print(vv);
  }
}
|}
  in
  let p, r = csc_analyze src in
  let kk = r.r_pt (var p "Main.main" "kk") in
  let vv = r.r_pt (var p "Main.main" "vv") in
  Alcotest.(check int) "kk only the key" 1 (Bits.cardinal kk);
  Alcotest.(check int) "vv only the value" 1 (Bits.cardinal vv);
  Alcotest.(check bool) "keys and values disjoint" false (Bits.inter_nonempty kk vv)

(* --- Figure 5: local flow pattern ------------------------------------- *)

let test_localflow_precise () =
  let p, r = csc_analyze Fixtures.localflow in
  Alcotest.(check int) "r1 = its two args" 2 (pt_size r (var p "C.main" "r1"));
  Alcotest.(check int) "r2 = its two args" 2 (pt_size r (var p "C.main" "r2"));
  Alcotest.(check bool) "r1 and r2 disjoint" false
    (Bits.inter_nonempty (r.r_pt (var p "C.main" "r1")) (r.r_pt (var p "C.main" "r2")))

let test_localflow_needs_pattern () =
  let config = Csc.{ field_pattern = true; container_pattern = true; local_flow = false } in
  let p, r = csc_analyze ~config Fixtures.localflow in
  Alcotest.(check int) "merged without the pattern" 4
    (pt_size r (var p "C.main" "r1"))

let test_localflow_identity () =
  let src =
    {|
class Main {
  static void main() {
    Object a = new Object();
    Object b = new Object();
    Object x = Util.id(a);
    Object y = Util.id(b);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise through id()" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise through id()" 1 (pt_size r (var p "Main.main" "y"))

(* --- relay soundness: methods cut but with extra return sources -------- *)

let test_relay_mixed_returns () =
  (* get() both loads a field and may return a fresh object: the load is
     covered by shortcuts, the allocation must be relayed *)
  let src =
    {|
class Holder {
  Object v;
  Holder(Object x) { this.v = x; }
  Object get(boolean fresh) {
    Object r = this.v;
    if (fresh) {
      r = new Object();   // relayed source
    }
    return r;
  }
}
class Main {
  static void main() {
    Object a = new Object();
    Holder h1 = new Holder(a);
    Object x = h1.get(false);
    Object b = new Object();
    Holder h2 = new Holder(b);
    Object y = h2.get(true);
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  (* soundness: x must contain a and the fresh object; y must contain b and
     the fresh object *)
  let x = r.r_pt (var p "Main.main" "x") in
  let y = r.r_pt (var p "Main.main" "y") in
  Alcotest.(check bool) "x sees its own item" true
    (Bits.subset (r.r_pt (var p "Main.main" "a")) x);
  Alcotest.(check bool) "y sees its own item" true
    (Bits.subset (r.r_pt (var p "Main.main" "b")) y);
  Alcotest.(check int) "x = {a, fresh}" 2 (Bits.cardinal x);
  Alcotest.(check int) "y = {b, fresh}" 2 (Bits.cardinal y);
  (* precision: x must NOT see b, y must NOT see a *)
  Alcotest.(check bool) "x does not see b" false
    (Bits.subset (r.r_pt (var p "Main.main" "b")) x)

let test_relay_call_chain () =
  (* nested load pattern: outer() returns inner(), which loads this.f *)
  let src =
    {|
class W {
  Object f;
  W(Object x) { this.f = x; }
  Object inner() {
    Object r = this.f;
    return r;
  }
  Object outer() {
    Object r = this.inner();
    return r;
  }
}
class Main {
  static void main() {
    Object a = new Object();
    W w1 = new W(a);
    Object x = w1.outer();
    Object b = new Object();
    W w2 = new W(b);
    Object y = w2.outer();
    System.print(x);
    System.print(y);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "x precise through nested load" 1
    (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise through nested load" 1
    (pt_size r (var p "Main.main" "y"));
  Alcotest.(check bool) "x sees a" true
    (Bits.subset (r.r_pt (var p "Main.main" "a")) (r.r_pt (var p "Main.main" "x")))

(* --- nested store (Figure 3 shape, deeper) ----------------------------- *)

let test_nested_store_chain () =
  let src =
    {|
class T { }
class Inner {
  T f;
  void set(T p) { this.f = p; }
}
class Outer {
  Inner inner;
  Outer(Inner i, T t) { this.init(i, t); }
  void init(Inner i, T t) { i.set(t); this.inner = i; }
}
class Main {
  static void main() {
    T t1 = new T();
    Inner i1 = new Inner();
    Outer o1 = new Outer(i1, t1);
    T t2 = new T();
    Inner i2 = new Inner();
    Outer o2 = new Outer(i2, t2);
    T r1 = i1.f;
    T r2 = i2.f;
    System.print(r1);
    System.print(r2);
  }
}
|}
  in
  let p, r = csc_analyze src in
  Alcotest.(check int) "r1 precise (3-deep store chain)" 1
    (pt_size r (var p "Main.main" "r1"));
  Alcotest.(check int) "r2 precise" 1 (pt_size r (var p "Main.main" "r2"))

(* --- soundness: recall + refinement ------------------------------------ *)

let test_recall_all_fixtures () =
  List.iter
    (fun (_, src) ->
      let p, r = csc_analyze src in
      check_recall p r)
    Fixtures.all

let test_recall_ablations () =
  let configs =
    Csc.
      [
        { field_pattern = true; container_pattern = false; local_flow = false };
        { field_pattern = false; container_pattern = true; local_flow = false };
        { field_pattern = false; container_pattern = false; local_flow = true };
        { field_pattern = true; container_pattern = true; local_flow = false };
        { field_pattern = false; container_pattern = true; local_flow = true };
        { field_pattern = true; container_pattern = false; local_flow = true };
      ]
  in
  List.iter
    (fun config ->
      List.iter
        (fun (_, src) ->
          let p, r = csc_analyze ~config src in
          check_recall p r)
        Fixtures.all)
    configs

let test_csc_refines_ci () =
  (* CSC points-to sets must be subsets of CI's *)
  List.iter
    (fun (_, src) ->
      let p = compile src in
      let ci = Solver.(result (analyze p)) in
      let csc = Solver.(result (analyze ~plugin_of:Csc.plugin p)) in
      Array.iter
        (fun (v : Ir.var) ->
          if not (Bits.subset (csc.r_pt v.v_id) (ci.r_pt v.v_id)) then
            Alcotest.fail
              (Printf.sprintf "CSC larger than CI for %s.%s"
                 (Ir.method_name p v.v_method) v.v_name))
        p.vars)
    Fixtures.all

(* --- inspection handles ------------------------------------------------- *)

let test_involved_methods () =
  let p = compile Fixtures.carton in
  let handle = ref None in
  let t =
    Solver.analyze
      ~plugin_of:(fun s ->
        let pl, h = Csc.plugin_with_handle s in
        handle := Some h;
        pl)
      p
  in
  ignore t;
  match !handle with
  | None -> Alcotest.fail "no handle"
  | Some h ->
    let inv = Csc.involved_methods h in
    Alcotest.(check bool) "setItem involved" true
      (Bits.mem inv (find_method p "Carton.setItem").m_id);
    Alcotest.(check bool) "getItem involved" true
      (Bits.mem inv (find_method p "Carton.getItem").m_id);
    Alcotest.(check bool) "shortcuts added" true (Csc.shortcut_count h > 0);
    Alcotest.(check bool) "stores cut" true (Csc.cut_store_count h > 0)

let suite =
  [
    ( "csc.patterns",
      [
        Alcotest.test_case "fig1: carton precise" `Quick test_carton_precise;
        Alcotest.test_case "fig1: field pattern alone" `Quick
          test_carton_field_pattern_only;
        Alcotest.test_case "fig3: nested calls precise" `Quick test_nested_precise;
        Alcotest.test_case "fig4: containers precise" `Quick test_containers_precise;
        Alcotest.test_case "fig4: needs container pattern" `Quick
          test_containers_need_container_pattern;
        Alcotest.test_case "maps precise" `Quick test_maps_precise;
        Alcotest.test_case "map categories don't mix" `Quick
          test_map_categories_dont_mix;
        Alcotest.test_case "fig5: local flow precise" `Quick test_localflow_precise;
        Alcotest.test_case "fig5: needs local flow pattern" `Quick
          test_localflow_needs_pattern;
        Alcotest.test_case "local flow: Util.id" `Quick test_localflow_identity;
        Alcotest.test_case "relay: mixed return sources" `Quick
          test_relay_mixed_returns;
        Alcotest.test_case "relay: nested load chain" `Quick test_relay_call_chain;
        Alcotest.test_case "nested store chain" `Quick test_nested_store_chain;
      ] );
    ( "csc.soundness",
      [
        Alcotest.test_case "recall: all fixtures" `Quick test_recall_all_fixtures;
        Alcotest.test_case "recall: ablations" `Quick test_recall_ablations;
        Alcotest.test_case "CSC refines CI" `Quick test_csc_refines_ci;
        Alcotest.test_case "involved methods tracked" `Quick test_involved_methods;
      ] );
  ]

(** IR well-formedness checker: variable ownership, call-site table
    consistency, arity agreement, site back-references, vtable sanity.
    Run over every frontend output in the test suite. *)

(** Human-readable violations; empty means valid. *)
val check : Ir.program -> string list

(** Raises [Failure] listing all violations if the program is malformed. *)
val check_exn : Ir.program -> unit

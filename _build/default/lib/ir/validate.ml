(** IR well-formedness checker.

    Run after lowering (and over generated workloads) to catch frontend or
    generator bugs early: variable ownership, call-site table consistency,
    arity agreement, site back-references, vtable sanity. Returns a list of
    human-readable violations (empty = valid). *)

let check (p : Ir.program) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let n_vars = Array.length p.vars in
  let n_methods = Array.length p.methods in
  let n_fields = Array.length p.fields in
  let n_classes = Array.length p.classes in
  let check_var ~owner v what =
    if v < 0 || v >= n_vars then err "%s: variable id %d out of range" what v
    else begin
      let vr = p.vars.(v) in
      if vr.v_id <> v then err "%s: variable %d has inconsistent id" what v;
      if vr.v_method <> owner then
        err "%s: variable %s belongs to %s, used in %s" what vr.v_name
          (Ir.method_name p vr.v_method) (Ir.method_name p owner)
    end
  in
  let check_field f what =
    if f < 0 || f >= n_fields then err "%s: field id %d out of range" what f
  in
  (* ---- classes ---- *)
  Array.iteri
    (fun i (k : Ir.klass) ->
      if k.c_id <> i then err "class %s: inconsistent id" k.c_name;
      (match k.c_super with
      | Some s when s < 0 || s >= n_classes ->
        err "class %s: super out of range" k.c_name
      | Some s when s = i -> err "class %s: is its own superclass" k.c_name
      | _ -> ());
      List.iter
        (fun m ->
          if m < 0 || m >= n_methods then
            err "class %s: method id out of range" k.c_name
          else if (Ir.metho p m).m_class <> i then
            err "class %s: declares method %s of another class" k.c_name
              (Ir.method_name p m))
        k.c_methods;
      List.iter
        (fun f ->
          check_field f ("class " ^ k.c_name);
          if f >= 0 && f < n_fields && p.fields.(f).f_class <> i then
            err "class %s: declares field of another class" k.c_name)
        k.c_fields)
    p.classes;
  (* ---- methods & bodies ---- *)
  Array.iteri
    (fun i (m : Ir.metho) ->
      let name = Ir.method_name p i in
      if m.m_id <> i then err "method %s: inconsistent id" name;
      if m.m_static && m.m_this <> None then err "method %s: static with this" name;
      if (not m.m_static) && m.m_this = None then
        err "method %s: instance method without this" name;
      (match m.m_this with Some t -> check_var ~owner:i t name | None -> ());
      Array.iter (fun v -> check_var ~owner:i v name) m.m_params;
      (match m.m_ret_var with
      | Some rv ->
        check_var ~owner:i rv name;
        if m.m_ret_ty = Tvoid then err "method %s: void with return var" name
      | None -> ());
      Ir.iter_stmts
        (fun s ->
          (match Ir.def_of s with Some v -> check_var ~owner:i v name | None -> ());
          match s with
          | Copy { rhs; _ } | Cast { rhs; _ } | InstanceOf { rhs; _ } ->
            check_var ~owner:i rhs name
          | Load { base; fld; _ } ->
            check_var ~owner:i base name;
            check_field fld name
          | Store { base; fld; rhs } ->
            check_var ~owner:i base name;
            check_var ~owner:i rhs name;
            check_field fld name
          | ALoad { arr; idx; _ } ->
            check_var ~owner:i arr name;
            check_var ~owner:i idx name
          | AStore { arr; idx; rhs } ->
            check_var ~owner:i arr name;
            check_var ~owner:i idx name;
            check_var ~owner:i rhs name
          | SLoad { fld; _ } | SStore { fld; _ } -> check_field fld name
          | Invoke { kind; recv; target; args; site; lhs } -> (
            if target < 0 || target >= n_methods then
              err "%s: call target out of range" name
            else begin
              let callee = Ir.metho p target in
              if Array.length args <> Array.length callee.m_params then
                err "%s: arity mismatch calling %s" name (Ir.method_name p target);
              (match (kind, recv) with
              | Ir.Static, Some _ -> err "%s: static call with receiver" name
              | (Ir.Virtual | Ir.Special), None ->
                err "%s: instance call without receiver" name
              | _ -> ());
              Option.iter (fun r -> check_var ~owner:i r name) recv;
              Array.iter (fun a -> check_var ~owner:i a name) args
            end;
            if site < 0 || site >= Array.length p.calls then
              err "%s: call site out of range" name
            else
              let cs = Ir.call p site in
              if cs.cs_method <> i then err "%s: call site owned elsewhere" name;
              if cs.cs_target <> target || cs.cs_lhs <> lhs || cs.cs_recv <> recv
              then err "%s: call site table disagrees with statement" name)
          | If { cond; _ } | While { cond; _ } -> check_var ~owner:i cond name
          | Return (Some v) -> check_var ~owner:i v name
          | _ -> ())
        m.m_body)
    p.methods;
  (* ---- sites ---- *)
  Array.iteri
    (fun i (a : Ir.alloc_site) ->
      if a.a_id <> i then err "alloc site %d: inconsistent id" i;
      if a.a_method < 0 || a.a_method >= n_methods then
        err "alloc site %d: method out of range" i)
    p.allocs;
  Array.iteri
    (fun i (x : Ir.cast_site) ->
      if x.x_id <> i then err "cast site %d: inconsistent id" i;
      if x.x_method < 0 || x.x_method >= n_methods then
        err "cast site %d: method out of range" i)
    p.casts;
  (* ---- entry ---- *)
  if p.main < 0 || p.main >= n_methods then err "main out of range"
  else begin
    let m = Ir.metho p p.main in
    if not m.m_static then err "main is not static";
    if Array.length m.m_params <> 0 then err "main takes parameters"
  end;
  (* ---- vtables ---- *)
  Array.iteri
    (fun c vt ->
      Hashtbl.iter
        (fun mname mid ->
          if mid < 0 || mid >= n_methods then
            err "vtable of %s: method out of range" (Ir.class_name p c)
          else begin
            let m = Ir.metho p mid in
            if m.m_name <> mname then
              err "vtable of %s: name mismatch for %s" (Ir.class_name p c) mname;
            if not (Ir.subclass_of p c m.m_class) then
              err "vtable of %s: impl from non-ancestor %s" (Ir.class_name p c)
                (Ir.method_name p mid)
          end)
        vt)
    p.vtables;
  List.rev !errs

(** Raises [Failure] with all violations if the program is malformed. *)
let check_exn (p : Ir.program) : unit =
  match check p with
  | [] -> ()
  | errs -> failwith ("invalid IR:\n  " ^ String.concat "\n  " errs)

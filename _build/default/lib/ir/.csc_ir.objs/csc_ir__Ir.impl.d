lib/ir/ir.ml: Array Csc_common Fmt Hashtbl Printf

lib/ir/validate.ml: Array Fmt Hashtbl Ir List Option String

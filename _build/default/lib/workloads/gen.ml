(** Deterministic generator of executable MiniJava workloads (DESIGN.md S11,
    substitution 3).

    Each generated program mixes the precision-loss shapes the paper's three
    patterns target, at a controlled scale:
    - an *entity* layer: classes with fields wrapped in setters/getters
      (field access pattern), some in small inheritance chains;
    - a *wrapper* layer: Box-like classes whose constructors delegate to an
      init method (nested calls for field access, Figure 3);
    - a *hierarchy* layer: polymorphic base/sub classes driving virtual
      dispatch and the #poly-call client;
    - a *registry* layer: classes owning ArrayLists/HashMaps of entities
      (container access pattern), plus direct container usage with iterators
      and map views in driver code;
    - a *utility* layer: static methods whose return values flow from their
      parameters (local flow pattern, Figure 5);
    - *driver* classes + a main that populate and query everything inside
      bounded loops, with downcasts after container reads (#fail-cast).

    Programs are generated from a {!shape} and a seed; the same inputs yield
    byte-identical sources. Every program terminates under the interpreter
    (all loops are bounded), which the recall experiment requires. *)

open Csc_common

type shape = {
  seed : int;
  n_entity : int;      (** entity classes *)
  n_fields : int;      (** fields (and setter/getter pairs) per entity *)
  n_wrap : int;        (** wrapper classes *)
  n_hier : int;        (** polymorphic hierarchies *)
  hier_width : int;    (** subclasses per hierarchy *)
  n_registry : int;    (** container-owning classes *)
  n_util : int;        (** static utility classes *)
  n_driver : int;      (** driver classes *)
  ops_per_driver : int;(** operation methods per driver *)
  loop_iters : int;    (** runtime loop bound in main *)
  fork_sites : int;
      (** size of the single-class factory web: quadratic context blow-up
          for object sensitivity (type sensitivity is immune: one class) *)
  mesh_classes : int;
      (** size of the multi-class factory mesh: context blow-up for type
          sensitivity too *)
}

let small_shape =
  { seed = 42; n_entity = 6; n_fields = 2; n_wrap = 3; n_hier = 2;
    hier_width = 3; n_registry = 3; n_util = 2; n_driver = 3;
    ops_per_driver = 4; loop_iters = 3; fork_sites = 6; mesh_classes = 4 }

(* ------------------------------------------------------------ emission *)

type ctx = {
  buf : Buffer.t;
  rng : Rng.t;
  shape : shape;
}

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let entity c k = Printf.sprintf "Ent%d_%d" c k
(* class names are namespaced by a numeric component id [c] so that multiple
   generated units could coexist; we use c = 0 throughout *)

let ent ctx k = entity 0 (k mod ctx.shape.n_entity)
let wrap_cls k = Printf.sprintf "Wrap%d" k
let base_cls h = Printf.sprintf "Base%d" h
let sub_cls h i = Printf.sprintf "Sub%d_%d" h i
let reg_cls k = Printf.sprintf "Reg%d" k
let util_cls k = Printf.sprintf "Util%d" k
let driver_cls k = Printf.sprintf "Driver%d" k

(* ---- entity layer ---- *)

let emit_entities ctx =
  let s = ctx.shape in
  for k = 0 to s.n_entity - 1 do
    let name = ent ctx k in
    (* a third of the entities extend the previous one, forming chains *)
    let extends =
      if k > 0 && Rng.chance ctx.rng 33 then
        Printf.sprintf " extends %s" (ent ctx (k - 1))
      else ""
    in
    pf ctx "class %s%s {\n" name extends;
    for f = 0 to s.n_fields - 1 do
      pf ctx "  Object fld%d_%d;\n" k f;
      pf ctx "  void set%d(Object v) { this.fld%d_%d = v; }\n" f k f;
      pf ctx "  Object get%d() { return this.fld%d_%d; }\n" f k f
    done;
    (* an identity-ish method: direct flow through an instance method *)
    pf ctx "  Object self%d(Object x) { Object r = x; return r; }\n" k;
    pf ctx "}\n\n"
  done

(* ---- wrapper layer (nested constructor stores, Figure 3) ---- *)

let emit_wrappers ctx =
  let s = ctx.shape in
  for k = 0 to s.n_wrap - 1 do
    pf ctx "class %s {\n" (wrap_cls k);
    pf ctx "  Object value%d;\n" k;
    pf ctx "  %s(Object v) { this.init%d(v); }\n" (wrap_cls k) k;
    pf ctx "  void init%d(Object v) { this.value%d = v; }\n" k k;
    pf ctx "  Object unwrap%d() { return this.value%d; }\n" k k;
    (* a re-wrapping helper: deepens call chains *)
    pf ctx "  Object viaUtil%d(Object x) { return Util%d.ident(x); }\n" k
      (k mod (max 1 s.n_util));
    pf ctx "}\n\n"
  done

(* ---- polymorphic hierarchies ---- *)

let emit_hierarchies ctx =
  let s = ctx.shape in
  for h = 0 to s.n_hier - 1 do
    pf ctx "class %s {\n" (base_cls h);
    pf ctx "  Object payload%d;\n" h;
    pf ctx "  Object act() { return this.payload%d; }\n" h;
    pf ctx "  void load(Object p) { this.payload%d = p; }\n" h;
    pf ctx "  int kindId() { return 0; }\n";
    pf ctx "}\n\n";
    for i = 0 to s.hier_width - 1 do
      pf ctx "class %s extends %s {\n" (sub_cls h i) (base_cls h);
      pf ctx "  Object state%d_%d;\n" h i;
      if i mod 2 = 0 then
        pf ctx "  Object act() { Object r = this.state%d_%d; if (r == null) { r = new Object(); } return r; }\n"
          h i
      else
        (* odd subclasses defer to the superclass implementation *)
        pf ctx "  Object act() { Object r = super.act(); if (r == null) { r = this.state%d_%d; } return r; }\n"
          h i;
      pf ctx "  void prime() { this.state%d_%d = new Object(); }\n" h i;
      pf ctx "  int kindId() { return %d; }\n" (i + 1);
      pf ctx "}\n\n"
    done
  done

(* ---- registry layer (containers behind methods) ---- *)

let emit_registries ctx =
  let s = ctx.shape in
  for k = 0 to s.n_registry - 1 do
    let name = reg_cls k in
    pf ctx "class %s {\n" name;
    pf ctx "  ArrayList items%d;\n" k;
    pf ctx "  HashMap index%d;\n" k;
    pf ctx "  %s() { this.items%d = new ArrayList(); this.index%d = new HashMap(); }\n"
      name k k;
    pf ctx "  void register(Object o) { this.items%d.add(o); }\n" k;
    pf ctx "  void assoc(Object key, Object v) { this.index%d.put(key, v); }\n" k;
    pf ctx "  Object at(int i) { return this.items%d.get(i); }\n" k;
    pf ctx "  Object find(Object key) { return this.index%d.get(key); }\n" k;
    pf ctx "  int count() { return this.items%d.size(); }\n" k;
    pf ctx "  Iterator all() { return this.items%d.iterator(); }\n" k;
    pf ctx "  Iterator keys() { return this.index%d.keySet().iterator(); }\n" k;
    pf ctx "}\n\n"
  done

(* ---- utility layer (local flow) ---- *)

let emit_utils ctx =
  let s = ctx.shape in
  for k = 0 to s.n_util - 1 do
    pf ctx "class %s {\n" (util_cls k);
    pf ctx "  static Object ident(Object x) { return x; }\n";
    pf ctx "  static Object choose(boolean c, Object a, Object b) { Object r = b; if (c) { r = a; } return r; }\n";
    pf ctx "  static Object orElse(Object a, Object b) { Object r = b; if (a != null) { r = a; } return r; }\n";
    pf ctx "}\n\n"
  done

(* ---- factory web: the object-sensitivity context bomb ----

   A single class whose [fork_k] methods allocate fresh [Web] nodes, copy
   per-object state across, and call further forks on them. Under 2obj the
   abstract objects are (site, allocator-site) pairs, so the web induces
   quadratically many contexts, each re-analyzing stores/loads of [cargo] -
   the cost profile that makes conventional object sensitivity explode on
   real code. Context insensitivity (and Cut-Shortcut, which adds no
   contexts) walks this code once. Type sensitivity collapses it to a single
   context element (one class). Runtime recursion is bounded by [d]. *)

let emit_fork_web ctx =
  let s = ctx.shape in
  let n = s.fork_sites in
  if n > 0 then begin
    pf ctx "class Web {\n";
    pf ctx "  Object cargo;\n";
    pf ctx "  Object grab() { return this.cargo; }\n";
    pf ctx "  void put(Object c) { this.cargo = c; }\n";
    for k = 0 to n - 1 do
      let j1 = ((k * 7) + 1) mod n in
      pf ctx "  Web fork%d(int d) {\n" k;
      pf ctx "    Web n = new Web();\n";
      pf ctx "    n.put(this.grab());\n";
      pf ctx "    if (d > 0) {\n";
      pf ctx "      Web a = n.fork%d(d - 1);\n" j1;
      pf ctx "      n.put(a.grab());\n";
      pf ctx "    }\n";
      pf ctx "    return n;\n";
      pf ctx "  }\n"
    done;
    pf ctx "}\n\n";
    (* the driver: all webs live in one ArrayList, so every fork call site
       dispatches on every web variant - under 2obj that saturates the
       (site, allocator-site) context product, while CI/CSC walk the code
       once. The payload pool scales per-context work. *)
    pf ctx "class WebMain {\n";
    pf ctx "  static void drive() {\n";
    pf ctx "    ArrayList webs = new ArrayList();\n";
    pf ctx "    ArrayList pool = new ArrayList();\n";
    for _ = 0 to (n / 2) - 1 do
      pf ctx "    pool.add(new Object());\n"
    done;
    for k = 0 to n - 1 do
      pf ctx "    Web w%d = new Web();\n" k;
      pf ctx "    w%d.put(pool.get(%d));\n" k (k mod max 1 (n / 2));
      pf ctx "    webs.add(w%d);\n" k
    done;
    for k = 0 to n - 1 do
      pf ctx "    Web x%d = (Web) webs.get(%d);\n" k (k mod n);
      pf ctx "    Web y%d = x%d.fork%d(1);\n" k k k;
      pf ctx "    y%d.put(x%d.grab());\n" k k;
      pf ctx "    webs.add(y%d);\n" k
    done;
    pf ctx "    System.print(webs.size());\n";
    pf ctx "  }\n";
    pf ctx "}\n\n"
  end

(* ---- factory mesh: the type-sensitivity context bomb ----

   As above but across many classes, so type contexts (class pairs) multiply
   as well. *)

let mesh_cls i = Printf.sprintf "Mesh%d" i

(* The shared [MeshCore] is allocated by each of the [mesh_classes] spawner
   classes (so core objects carry distinct *type* context elements: the
   allocating class). All cores live in one merged list, and every [spin_k]
   call site dispatches on all of them: both 2obj and 2type saturate their
   context products here, while CI/CSC stay linear. *)
let emit_mesh ctx =
  let s = ctx.shape in
  let n = s.mesh_classes in
  if n > 0 then begin
    pf ctx "class MeshCore {\n";
    pf ctx "  Object freight;\n";
    pf ctx "  Object pull() { return this.freight; }\n";
    pf ctx "  void push(Object c) { this.freight = c; }\n";
    for k = 0 to n - 1 do
      let j = ((k * 7) + 1) mod n in
      pf ctx "  MeshCore spin%d(int d) {\n" k;
      pf ctx "    MeshCore n = new MeshCore();\n";
      pf ctx "    n.push(this.pull());\n";
      pf ctx "    if (d > 0) {\n";
      pf ctx "      MeshCore a = n.spin%d(d - 1);\n" j;
      pf ctx "      n.push(a.pull());\n";
      pf ctx "    }\n";
      pf ctx "    return n;\n";
      pf ctx "  }\n"
    done;
    pf ctx "}\n\n";
    for i = 0 to n - 1 do
      pf ctx "class %s {\n" (mesh_cls i);
      pf ctx "  MeshCore spawn(Object payload) {\n";
      pf ctx "    MeshCore core = new MeshCore();\n";
      pf ctx "    core.push(payload);\n";
      pf ctx "    return core;\n";
      pf ctx "  }\n";
      pf ctx "}\n\n"
    done;
    pf ctx "class MeshMain {\n";
    pf ctx "  static void drive() {\n";
    pf ctx "    ArrayList cores = new ArrayList();\n";
    pf ctx "    ArrayList pool = new ArrayList();\n";
    for _ = 0 to (n / 2) - 1 do
      pf ctx "    pool.add(new Object());\n"
    done;
    for i = 0 to n - 1 do
      pf ctx "    %s g%d = new %s();\n" (mesh_cls i) i (mesh_cls i);
      pf ctx "    cores.add(g%d.spawn(pool.get(%d)));\n" i
        (i mod max 1 (n / 2))
    done;
    for i = 0 to n - 1 do
      pf ctx "    MeshCore c%d = (MeshCore) cores.get(%d);\n" i (i mod n);
      pf ctx "    MeshCore k%d = c%d.spin%d(1);\n" i i i;
      pf ctx "    k%d.push(c%d.pull());\n" i i;
      pf ctx "    cores.add(k%d);\n" i
    done;
    pf ctx "    System.print(cores.size());\n";
    pf ctx "  }\n";
    pf ctx "}\n\n"
  end

(* ---- driver layer ---- *)

(* Each driver op method exercises one scenario. They receive an int salt so
   the interpreter runs them with slightly different data. *)
let emit_driver_op ctx ~d ~j =
  let s = ctx.shape in
  let rng = ctx.rng in
  let e1 = Rng.int rng s.n_entity and e2 = Rng.int rng s.n_entity in
  let f1 = Rng.int rng s.n_fields in
  let w = Rng.int rng (max 1 s.n_wrap) in
  let h = Rng.int rng (max 1 s.n_hier) in
  let sub1 = Rng.int rng s.hier_width and sub2 = Rng.int rng s.hier_width in
  let r1 = Rng.int rng (max 1 s.n_registry) in
  let u = Rng.int rng (max 1 s.n_util) in
  let scenario = Rng.int rng 8 in
  pf ctx "  void op%d_%d(int salt) {\n" d j;
  (match scenario with
  | 0 ->
    (* setter/getter pairs on two distinct entities *)
    pf ctx "    %s a = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s b = new %s();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    a.set%d(new Object());\n" f1;
    pf ctx "    b.set%d(\"tag%d_%d\");\n" f1 d j;
    pf ctx "    Object ra = a.get%d();\n" f1;
    pf ctx "    Object rb = b.get%d();\n" f1;
    pf ctx "    if (ra == rb) { System.print(\"alias%d_%d\"); }\n" d j
  | 1 ->
    (* wrappers + nested constructor stores *)
    pf ctx "    %s ent = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s w1 = new %s(ent);\n" (wrap_cls w) (wrap_cls w);
    pf ctx "    %s w2 = new %s(new Object());\n" (wrap_cls w) (wrap_cls w);
    pf ctx "    Object u1 = w1.unwrap%d();\n" w;
    pf ctx "    Object u2 = w2.unwrap%d();\n" w;
    pf ctx "    %s back = (%s) u1;\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    back.set%d(u2);\n" f1
  | 2 ->
    (* direct container usage with iterator + cast *)
    pf ctx "    ArrayList list = new ArrayList();\n";
    pf ctx "    int i = 0;\n";
    pf ctx "    while (i < 2 + (salt %% 3)) {\n";
    pf ctx "      list.add(new %s());\n" (ent ctx e1);
    pf ctx "      i = i + 1;\n";
    pf ctx "    }\n";
    pf ctx "    %s first = (%s) list.get(0);\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    first.set%d(list.get(list.size() - 1));\n" f1;
    pf ctx "    Iterator it = list.iterator();\n";
    pf ctx "    while (it.hasNext()) {\n";
    pf ctx "      %s cur = (%s) it.next();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      Object got = cur.get%d();\n" f1;
    pf ctx "      if (got != null) { System.print(\"hit%d_%d\"); }\n" d j;
    pf ctx "    }\n"
  | 3 ->
    (* registries + maps + key iteration *)
    pf ctx "    %s reg = new %s();\n" (reg_cls r1) (reg_cls r1);
    pf ctx "    %s k1 = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s v1 = new %s();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    reg.register(v1);\n";
    pf ctx "    reg.register(new %s());\n" (ent ctx e2);
    pf ctx "    reg.assoc(k1, v1);\n";
    pf ctx "    %s out = (%s) reg.at(0);\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    Object hit = reg.find(k1);\n";
    pf ctx "    Iterator keys = reg.keys();\n";
    pf ctx "    while (keys.hasNext()) {\n";
    pf ctx "      %s kk = (%s) keys.next();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      kk.set%d(hit);\n" f1;
    pf ctx "    }\n";
    pf ctx "    out.set%d(hit);\n" (f1 mod s.n_fields)
  | 5 ->
    (* stacks and queues of entities *)
    pf ctx "    Stack st = new Stack();\n";
    pf ctx "    Queue qu = new Queue();\n";
    pf ctx "    for (int i = 0; i < 2 + (salt %% 2); i = i + 1) {\n";
    pf ctx "      st.push(new %s());\n" (ent ctx e1);
    pf ctx "      qu.enqueue(new %s());\n" (ent ctx e2);
    pf ctx "    }\n";
    pf ctx "    %s top = (%s) st.pop();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    %s head = (%s) qu.dequeue();\n" (ent ctx e2) (ent ctx e2);
    pf ctx "    top.set%d(head);\n" f1;
    pf ctx "    Object back = top.get%d();\n" f1;
    pf ctx "    if (back instanceof %s) { System.print(\"q%d_%d\"); }\n"
      (ent ctx e2) d j
  | 6 ->
    (* deques + builders *)
    pf ctx "    ArrayDeque dq = new ArrayDeque();\n";
    pf ctx "    dq.addFirst(new %s());\n" (ent ctx e1);
    pf ctx "    dq.addLast(new %s());\n" (ent ctx e2);
    pf ctx "    StringBuilder sb = new StringBuilder();\n";
    pf ctx "    sb.append(dq.peekFirst()).append(dq.peekLast());\n";
    pf ctx "    Object first = sb.part(0);\n";
    pf ctx "    if (first instanceof %s) {\n" (ent ctx e1);
    pf ctx "      %s fe = (%s) first;\n" (ent ctx e1) (ent ctx e1);
    pf ctx "      fe.set%d(dq.removeLast());\n" f1;
    pf ctx "    }\n"
  | 7 ->
    (* optionals wrapping registry lookups *)
    pf ctx "    %s reg7 = new %s();\n" (reg_cls r1) (reg_cls r1);
    pf ctx "    %s key7 = new %s();\n" (ent ctx e1) (ent ctx e1);
    pf ctx "    reg7.assoc(key7, new %s());\n" (ent ctx e2);
    pf ctx "    Optional found = Optional.of(reg7.find(key7));\n";
    pf ctx "    Object v7 = found.orElse(new %s());\n" (ent ctx e2);
    pf ctx "    if (v7 instanceof %s) {\n" (ent ctx e2);
    pf ctx "      %s typed = (%s) v7;\n" (ent ctx e2) (ent ctx e2);
    pf ctx "      typed.set%d(key7);\n" f1;
    pf ctx "    }\n"
  | _ ->
    (* polymorphism + local flow utilities *)
    pf ctx "    %s n1 = new %s();\n" (sub_cls h sub1) (sub_cls h sub1);
    pf ctx "    %s n2 = new %s();\n" (sub_cls h sub2) (sub_cls h sub2);
    pf ctx "    n1.prime();\n";
    pf ctx "    n2.load(new Object());\n";
    pf ctx "    %s pick = (%s) %s.choose(salt %% 2 == 0, n1, n2);\n" (base_cls h)
      (base_cls h) (util_cls u);
    pf ctx "    Object res = pick.act();\n";
    pf ctx "    Object res2 = %s.orElse(res, new Object());\n" (util_cls u);
    pf ctx "    ArrayList bag = new ArrayList();\n";
    pf ctx "    bag.add(n1);\n";
    pf ctx "    bag.add(n2);\n";
    pf ctx "    Iterator bit = bag.iterator();\n";
    pf ctx "    while (bit.hasNext()) {\n";
    pf ctx "      %s node = (%s) bit.next();\n" (base_cls h) (base_cls h);
    pf ctx "      if (node.kindId() > %d) { node.load(res2); }\n" (s.hier_width / 2);
    pf ctx "    }\n");
  pf ctx "  }\n"

let emit_drivers ctx =
  let s = ctx.shape in
  for d = 0 to s.n_driver - 1 do
    pf ctx "class %s {\n" (driver_cls d);
    for j = 0 to s.ops_per_driver - 1 do
      emit_driver_op ctx ~d ~j
    done;
    pf ctx "  void runAll%d(int salt) {\n" d;
    for j = 0 to s.ops_per_driver - 1 do
      pf ctx "    this.op%d_%d(salt + %d);\n" d j j
    done;
    pf ctx "  }\n";
    pf ctx "}\n\n"
  done

let emit_main ctx =
  let s = ctx.shape in
  pf ctx "class Main {\n";
  pf ctx "  static void main() {\n";
  pf ctx "    int round = 0;\n";
  pf ctx "    while (round < %d) {\n" s.loop_iters;
  for d = 0 to s.n_driver - 1 do
    pf ctx "      %s d%d = new %s();\n" (driver_cls d) d (driver_cls d);
    pf ctx "      d%d.runAll%d(round);\n" d d
  done;
  pf ctx "      round = round + 1;\n";
  pf ctx "    }\n";
  if s.fork_sites > 0 then pf ctx "    WebMain.drive();\n";
  if s.mesh_classes > 0 then pf ctx "    MeshMain.drive();\n";
  pf ctx "    System.print(\"done\");\n";
  pf ctx "  }\n";
  pf ctx "}\n"

(** Generate a full MiniJava program (without the mini-JDK, which the
    frontend prepends). *)
let generate (shape : shape) : string =
  let ctx = { buf = Buffer.create 65536; rng = Rng.create shape.seed; shape } in
  emit_entities ctx;
  emit_wrappers ctx;
  emit_hierarchies ctx;
  emit_registries ctx;
  emit_utils ctx;
  emit_fork_web ctx;
  emit_mesh ctx;
  emit_drivers ctx;
  emit_main ctx;
  Buffer.contents ctx.buf

(** Deterministic generator of executable MiniJava workloads (DESIGN.md,
    substitution 3).

    Each program mixes the shapes the paper's three patterns target —
    setter/getter entities, nested-constructor wrappers, polymorphic
    hierarchies, registry classes over containers, direct container use with
    iterators/views/downcasts, local-flow utilities — plus two calibrated
    "context bombs": a single-class factory web (blows up object-sensitive
    contexts; type sensitivity is immune) and a multi-class mesh (blows up
    both). Same shape + seed, byte-identical source; all loops are bounded
    so every program terminates under the interpreter. *)

type shape = {
  seed : int;
  n_entity : int;       (** entity classes *)
  n_fields : int;       (** fields (and accessor pairs) per entity *)
  n_wrap : int;         (** wrapper classes *)
  n_hier : int;         (** polymorphic hierarchies *)
  hier_width : int;     (** subclasses per hierarchy *)
  n_registry : int;     (** container-owning classes *)
  n_util : int;         (** static utility classes *)
  n_driver : int;       (** driver classes *)
  ops_per_driver : int; (** operation methods per driver *)
  loop_iters : int;     (** runtime loop bound in main *)
  fork_sites : int;     (** size of the object-sensitivity context bomb *)
  mesh_classes : int;   (** size of the type-sensitivity context bomb *)
}

(** A small shape used by tests and micro-benchmarks. *)
val small_shape : shape

(** Generate a full MiniJava program (the frontend prepends the JDK). *)
val generate : shape -> string

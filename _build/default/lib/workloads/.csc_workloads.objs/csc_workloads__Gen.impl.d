lib/workloads/gen.ml: Buffer Csc_common Printf Rng

lib/workloads/suite.ml: Csc_ir Csc_lang Gen List

lib/workloads/gen.mli:

lib/workloads/suite.mli: Csc_ir Gen

(** Recursive-descent parser for MiniJava.

    Precedence climbing for binary operators; the classic one-token lookahead
    trick disambiguates casts [(T) e] from parenthesized expressions. *)

open Ast

type state = {
  toks : Lexer.loc_token array;
  mutable k : int;
}

let peek st = st.toks.(st.k)
let peek2 st =
  if st.k + 1 < Array.length st.toks then st.toks.(st.k + 1) else st.toks.(st.k)
let peekn st n =
  if st.k + n < Array.length st.toks then st.toks.(st.k + n)
  else st.toks.(Array.length st.toks - 1)

let advance st = st.k <- st.k + 1

let cur_pos st = (peek st).pos

let describe = function
  | Lexer.INT n -> Printf.sprintf "integer %d" n
  | Lexer.STRING _ -> "string literal"
  | Lexer.IDENT s -> Printf.sprintf "identifier %S" s
  | Lexer.KW s -> Printf.sprintf "keyword %S" s
  | Lexer.PUNCT s -> Printf.sprintf "%S" s
  | Lexer.EOF -> "end of input"

let expect st (t : Lexer.token) =
  let lt = peek st in
  if lt.tok = t then advance st
  else syntax_error lt.pos "expected %s but found %s" (describe t) (describe lt.tok)

let expect_punct st s = expect st (Lexer.PUNCT s)
let expect_kw st s = expect st (Lexer.KW s)

let eat_punct st s =
  match (peek st).tok with
  | Lexer.PUNCT p when p = s ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  let lt = peek st in
  match lt.tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> syntax_error lt.pos "expected identifier but found %s" (describe t)

(* ------------------------------------------------------------------ types *)

let parse_base_type st : ty =
  let lt = peek st in
  match lt.tok with
  | Lexer.KW "int" -> advance st; Ty_int
  | Lexer.KW "boolean" -> advance st; Ty_bool
  | Lexer.KW "void" -> advance st; Ty_void
  | Lexer.IDENT s -> advance st; Ty_class s
  | t -> syntax_error lt.pos "expected a type but found %s" (describe t)

let rec add_dims st ty =
  match ((peek st).tok, (peek2 st).tok) with
  | Lexer.PUNCT "[", Lexer.PUNCT "]" ->
    advance st;
    advance st;
    add_dims st (Ty_array ty)
  | _ -> ty

let parse_type st : ty = add_dims st (parse_base_type st)

(* ------------------------------------------------------------ expressions *)

(* Tokens that may legally follow a cast's closing paren. *)
let starts_cast_operand (t : Lexer.token) =
  match t with
  | Lexer.IDENT _ | Lexer.INT _ | Lexer.STRING _ | Lexer.PUNCT "("
  | Lexer.KW ("new" | "this" | "true" | "false" | "null") ->
    true
  | _ -> false

(* Detect `(T)` at the current position (which must be at `(`), returning the
   number of tokens the type occupies, without consuming anything. *)
let cast_lookahead st =
  let is_type_tok n =
    match (peekn st n).tok with
    | Lexer.KW ("int" | "boolean") | Lexer.IDENT _ -> true
    | _ -> false
  in
  if not (is_type_tok 1) then None
  else begin
    (* count array dims *)
    let n = ref 2 in
    while
      (match (peekn st !n).tok with Lexer.PUNCT "[" -> true | _ -> false)
      && match (peekn st (!n + 1)).tok with Lexer.PUNCT "]" -> true | _ -> false
    do
      n := !n + 2
    done;
    match ((peekn st !n).tok, (peekn st (!n + 1)).tok) with
    | Lexer.PUNCT ")", after when starts_cast_operand after ->
      (* `(Ident)` with a primitive keyword is always a cast; `(Ident)(..)`
         could be a call of a parenthesized function, which MiniJava does not
         have, so treating it as a cast is safe. *)
      Some !n
    | _ -> None
  end

let binop_of_punct = function
  | "+" -> Some (Add, 6)
  | "-" -> Some (Sub, 6)
  | "*" -> Some (Mul, 7)
  | "/" -> Some (Div, 7)
  | "%" -> Some (Mod, 7)
  | "<" -> Some (Lt, 5)
  | "<=" -> Some (Le, 5)
  | ">" -> Some (Gt, 5)
  | ">=" -> Some (Ge, 5)
  | "==" -> Some (Eq, 4)
  | "!=" -> Some (Ne, 4)
  | "&&" -> Some (And, 3)
  | "||" -> Some (Or, 2)
  | _ -> None

let rec parse_expr st : expr = parse_binary st 0

and parse_binary st min_prec : expr =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | Lexer.KW "instanceof" when min_prec <= 5 ->
      let pos = cur_pos st in
      advance st;
      let ty = parse_type st in
      lhs := { e = Instanceof (!lhs, ty); e_pos = pos }
    | Lexer.PUNCT p ->
      (match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        let pos = cur_pos st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := { e = Binop (op, !lhs, rhs); e_pos = pos }
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : expr =
  let lt = peek st in
  match lt.tok with
  | Lexer.PUNCT "!" ->
    advance st;
    { e = Unop (Not, parse_unary st); e_pos = lt.pos }
  | Lexer.PUNCT "-" ->
    advance st;
    { e = Unop (Neg, parse_unary st); e_pos = lt.pos }
  | _ -> parse_postfix st

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let lt = peek st in
    match lt.tok with
    | Lexer.PUNCT "." ->
      advance st;
      let name = expect_ident st in
      if eat_punct st "(" then begin
        let args = parse_args st in
        e := { e = Call (!e, name, args); e_pos = lt.pos }
      end
      else e := { e = Field (!e, name); e_pos = lt.pos }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      e := { e = Index (!e, idx); e_pos = lt.pos }
    | _ -> continue_ := false
  done;
  !e

and parse_args st : expr list =
  (* '(' already consumed *)
  if eat_punct st ")" then []
  else begin
    let args = ref [ parse_expr st ] in
    while eat_punct st "," do
      args := parse_expr st :: !args
    done;
    expect_punct st ")";
    List.rev !args
  end

and parse_primary st : expr =
  let lt = peek st in
  let mk e = { e; e_pos = lt.pos } in
  match lt.tok with
  | Lexer.INT n -> advance st; mk (Int_lit n)
  | Lexer.STRING s -> advance st; mk (Str_lit s)
  | Lexer.KW "true" -> advance st; mk (Bool_lit true)
  | Lexer.KW "false" -> advance st; mk (Bool_lit false)
  | Lexer.KW "null" -> advance st; mk Null_lit
  | Lexer.KW "this" -> advance st; mk This
  | Lexer.KW "super" ->
    advance st;
    if eat_punct st "(" then
      (* super(args): super-constructor invocation *)
      mk (Super_call ("<init>", parse_args st))
    else begin
      expect_punct st ".";
      let name = expect_ident st in
      expect_punct st "(";
      mk (Super_call (name, parse_args st))
    end
  | Lexer.KW "new" ->
    advance st;
    let base = parse_base_type st in
    (match (peek st).tok with
    | Lexer.PUNCT "[" ->
      advance st;
      let len = parse_expr st in
      expect_punct st "]";
      (* allow multi-dim declarators to degrade to 1-D of arrays *)
      let elem = add_dims st base in
      mk (New_array (elem, len))
    | _ ->
      (match base with
      | Ty_class c ->
        expect_punct st "(";
        let args = parse_args st in
        mk (New (c, args))
      | _ -> syntax_error lt.pos "cannot 'new' a primitive without []"))
  | Lexer.PUNCT "(" ->
    (match cast_lookahead st with
    | Some ntype_end ->
      advance st;
      let ty = parse_type st in
      ignore ntype_end;
      expect_punct st ")";
      let operand = parse_postfix st in
      mk (Cast (ty, operand))
    | None ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e)
  | Lexer.IDENT name -> (
    (* Could be: variable, self-call m(...), static call C.m(...) or static
       field C.f — the latter two are resolved later; here we produce
       Static_call/Static_field only when the identifier is followed by
       `.x` where the identifier is known to be a class name. That knowledge
       lives in the resolver, so the parser emits Var/Field/Call and the
       resolver reinterprets `Field (Var C, f)` when C names a class. *)
    advance st;
    match (peek st).tok with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      mk (Self_call (name, args))
    | _ -> mk (Var name))
  | t -> syntax_error lt.pos "expected an expression but found %s" (describe t)

(* -------------------------------------------------------------- statements *)

let rec parse_stmt st : stmt =
  let lt = peek st in
  let mk s = { s; s_pos = lt.pos } in
  match lt.tok with
  | Lexer.PUNCT "{" -> mk (Block (parse_block st))
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block_or_stmt st in
    let else_ =
      if (peek st).tok = Lexer.KW "else" then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    mk (If (cond, then_, else_))
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    mk (While (cond, body))
  | Lexer.KW "for" ->
    (* desugared to { init; while (cond) { body; update } } *)
    advance st;
    expect_punct st "(";
    let init =
      if eat_punct st ";" then []
      else [ parse_stmt st ] (* decl or assignment; consumes the ';' *)
    in
    let cond =
      if (peek st).tok = Lexer.PUNCT ";" then { e = Bool_lit true; e_pos = lt.pos }
      else parse_expr st
    in
    expect_punct st ";";
    let update =
      if (peek st).tok = Lexer.PUNCT ")" then []
      else begin
        let e = parse_expr st in
        if eat_punct st "=" then
          let rhs = parse_expr st in
          [ { s = Assign (e, rhs); s_pos = lt.pos } ]
        else [ { s = Expr e; s_pos = lt.pos } ]
      end
    in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    mk (Block (init @ [ { s = While (cond, body @ update); s_pos = lt.pos } ]))
  | Lexer.KW "return" ->
    advance st;
    if eat_punct st ";" then mk (Return None)
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      mk (Return (Some e))
    end
  | Lexer.KW ("int" | "boolean") -> parse_decl st
  | Lexer.IDENT _ when is_decl_lookahead st -> parse_decl st
  | _ ->
    let e = parse_expr st in
    if eat_punct st "=" then begin
      let rhs = parse_expr st in
      expect_punct st ";";
      mk (Assign (e, rhs))
    end
    else begin
      expect_punct st ";";
      match e.e with
      | Call ({ e = Var "System"; _ }, "print", [ arg ]) -> mk (Print arg)
      | _ -> mk (Expr e)
    end

(* `Foo x ...` or `Foo[] x ...` begins a declaration; `Foo[0] = ...`,
   `Foo.m()` etc. begin expressions. *)
and is_decl_lookahead st =
  match ((peek2 st).tok, (peekn st 2).tok, (peekn st 3).tok) with
  | Lexer.IDENT _, _, _ -> true
  | Lexer.PUNCT "[", Lexer.PUNCT "]", _ -> true
  | _ -> false

and parse_decl st : stmt =
  let pos = cur_pos st in
  let ty = parse_type st in
  let name = expect_ident st in
  let init =
    if eat_punct st "=" then Some (parse_expr st) else None
  in
  expect_punct st ";";
  { s = Decl (ty, name, init); s_pos = pos }

and parse_block st : stmt list =
  expect_punct st "{";
  let stmts = ref [] in
  while not (eat_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_block_or_stmt st : stmt list =
  if (peek st).tok = Lexer.PUNCT "{" then parse_block st
  else [ parse_stmt st ]

(* ----------------------------------------------------------------- classes *)

let rec parse_member st ~class_name : member =
  let pos = cur_pos st in
  let static = (peek st).tok = Lexer.KW "static" in
  if static then advance st;
  (* constructor: `ClassName ( ...` *)
  match ((peek st).tok, (peek2 st).tok) with
  | Lexer.IDENT n, Lexer.PUNCT "(" when n = class_name && not static ->
    advance st;
    expect_punct st "(";
    let params = parse_params st in
    let body = parse_block st in
    M_method
      { mm_static = false; mm_ret = Ty_void; mm_name = "<init>";
        mm_params = params; mm_body = body; mm_pos = pos }
  | _ ->
    let ty = parse_type st in
    let name = expect_ident st in
    if eat_punct st "(" then begin
      let params = parse_params st in
      let body = parse_block st in
      M_method
        { mm_static = static; mm_ret = ty; mm_name = name;
          mm_params = params; mm_body = body; mm_pos = pos }
    end
    else begin
      expect_punct st ";";
      M_field { mf_static = static; mf_ty = ty; mf_name = name; mf_pos = pos }
    end

and parse_params st : (ty * string) list =
  if eat_punct st ")" then []
  else begin
    let one () =
      let ty = parse_type st in
      let name = expect_ident st in
      (ty, name)
    in
    let ps = ref [ one () ] in
    while eat_punct st "," do
      ps := one () :: !ps
    done;
    expect_punct st ")";
    List.rev !ps
  end

let parse_class st : class_decl =
  let pos = cur_pos st in
  expect_kw st "class";
  let name = expect_ident st in
  let super =
    if (peek st).tok = Lexer.KW "extends" then begin
      advance st;
      Some (expect_ident st)
    end
    else None
  in
  expect_punct st "{";
  let members = ref [] in
  while not (eat_punct st "}") do
    members := parse_member st ~class_name:name :: !members
  done;
  { cd_name = name; cd_super = super; cd_members = List.rev !members; cd_pos = pos }

let parse_program (src : string) : program =
  let st = { toks = Lexer.tokenize src; k = 0 } in
  let classes = ref [] in
  while (peek st).tok <> Lexer.EOF do
    classes := parse_class st :: !classes
  done;
  List.rev !classes

(** Recursive-descent parser for MiniJava.

    Precedence-climbing expressions; the classic one-token lookahead
    disambiguates casts [(T) e] from parenthesized expressions; [for] loops
    are desugared to [while] during parsing.

    Raises {!Ast.Syntax_error} with a source position on malformed input. *)

val parse_program : string -> Ast.program

(** Entry points: compile MiniJava source text (plus the mini-JDK) into an
    {!Csc_ir.Ir.program}.

    Raises {!Ast.Syntax_error} or {!Ast.Semantic_error} (both carry source
    positions) on malformed input. *)

(** [compile ?with_jdk sources] parses, resolves and lowers the given
    [(unit_name, source_text)] pairs into one program. The mini-JDK
    ({!Jdk.source}) is prepended unless [with_jdk:false]; programs compiled
    without it cannot use containers, [String] literals still work via a
    synthesized [Object]-rooted class table. *)
val compile : ?with_jdk:bool -> (string * string) list -> Csc_ir.Ir.program

(** Convenience wrapper for a single compilation unit. *)
val compile_string :
  ?with_jdk:bool -> ?name:string -> string -> Csc_ir.Ir.program

(** Name resolution, light type checking, and lowering of MiniJava ASTs into
    the typed TAC {!Csc_ir.Ir} used by every analysis and the interpreter.

    Design points that matter to the Cut-Shortcut patterns downstream:
    - [x = e] and [T x = e] lower the expression *directly into* [x]
      (no spurious temporary + copy), so parameter/def counts and local
      copy chains in the IR mirror the source;
    - methods keep a single return variable where possible ([m_ret_var]);
      multiple distinct returned variables are funnelled through a
      synthesized [$ret] (see DESIGN.md §3). *)

open Csc_common
module A = Ast
module Ir = Csc_ir.Ir

type class_info = {
  ci_id : int;
  ci_decl : A.class_decl option;        (* None for synthesized Object *)
  mutable ci_super : int option;
  mutable ci_fields : (string * Ir.field_id) list;  (* declared *)
  mutable ci_methods : (string * Ir.method_id) list; (* declared, incl <init> *)
}

type t = {
  class_by_name : (string, class_info) Hashtbl.t;
  class_by_id : (int, class_info) Hashtbl.t;
  mutable class_list : class_info list;              (* reverse order *)
  fields : Ir.field Vec.t;
  methods : Ir.metho Vec.t;
  vars : Ir.var Vec.t;
  allocs : Ir.alloc_site Vec.t;
  calls : Ir.call_site Vec.t;
  casts : Ir.cast_site Vec.t;
  mutable main : Ir.method_id option;
}

let dummy_var : Ir.var =
  { v_id = -1; v_name = ""; v_ty = Tvoid; v_method = -1; v_kind = `Local }

let dummy_method : Ir.metho =
  { m_id = -1; m_class = -1; m_name = ""; m_static = true; m_this = None;
    m_params = [||]; m_ret_ty = Tvoid; m_ret_var = None; m_body = [||] }

let dummy_field : Ir.field =
  { f_id = -1; f_class = -1; f_name = ""; f_ty = Tvoid; f_static = false }

let dummy_alloc : Ir.alloc_site = { a_id = -1; a_kind = `String; a_method = -1; a_line = 0 }

let dummy_call : Ir.call_site =
  { cs_id = -1; cs_method = -1; cs_line = 0; cs_kind = Static; cs_lhs = None;
    cs_recv = None; cs_args = [||]; cs_target = -1 }

let dummy_cast : Ir.cast_site =
  { x_id = -1; x_method = -1; x_ty = Tvoid; x_line = 0; x_kind = `Cast }

(* ----------------------------------------------------------- class table *)

let create () : t =
  {
    class_by_name = Hashtbl.create 64;
    class_by_id = Hashtbl.create 64;
    class_list = [];
    fields = Vec.create dummy_field;
    methods = Vec.create dummy_method;
    vars = Vec.create dummy_var;
    allocs = Vec.create dummy_alloc;
    calls = Vec.create dummy_call;
    casts = Vec.create dummy_cast;
    main = None;
  }

let n_classes t = List.length t.class_list

let add_class t (decl : A.class_decl option) name : class_info =
  if Hashtbl.mem t.class_by_name name then
    A.semantic_error
      (match decl with Some d -> d.cd_pos | None -> A.dummy_pos)
      "duplicate class %s" name;
  let ci =
    { ci_id = n_classes t; ci_decl = decl; ci_super = None;
      ci_fields = []; ci_methods = [] }
  in
  Hashtbl.add t.class_by_name name ci;
  Hashtbl.add t.class_by_id ci.ci_id ci;
  t.class_list <- ci :: t.class_list;
  ci

let find_class t pos name : class_info =
  match Hashtbl.find_opt t.class_by_name name with
  | Some ci -> ci
  | None -> A.semantic_error pos "unknown class %s" name

let class_info_by_id t id = Hashtbl.find t.class_by_id id

let class_name_of t id =
  let ci = class_info_by_id t id in
  match ci.ci_decl with Some d -> d.cd_name | None -> "Object"

(* type conversion *)
let rec conv_ty t pos : A.ty -> Ir.typ = function
  | A.Ty_int -> Tint
  | A.Ty_bool -> Tbool
  | A.Ty_void -> Tvoid
  | A.Ty_class c -> Tclass (find_class t pos c).ci_id
  | A.Ty_array e -> Tarray (conv_ty t pos e)

let rec lookup_field t (cid : int) name : Ir.field_id option =
  let ci = class_info_by_id t cid in
  match List.assoc_opt name ci.ci_fields with
  | Some f -> Some f
  | None -> (
    match ci.ci_super with
    | Some s -> lookup_field t s name
    | None -> None)

let rec lookup_method t (cid : int) name : Ir.method_id option =
  let ci = class_info_by_id t cid in
  match List.assoc_opt name ci.ci_methods with
  | Some m -> Some m
  | None -> (
    match ci.ci_super with
    | Some s -> lookup_method t s name
    | None -> None)

(* --------------------------------------------------------- declarations *)

let declare_classes t (prog : A.program) =
  (* synthesize Object if the sources don't define it *)
  if not (List.exists (fun (c : A.class_decl) -> c.cd_name = "Object") prog)
  then ignore (add_class t None "Object");
  List.iter (fun (c : A.class_decl) -> ignore (add_class t (Some c) c.cd_name)) prog;
  (* resolve supers, defaulting to Object *)
  let obj = (Hashtbl.find t.class_by_name "Object").ci_id in
  List.iter
    (fun (c : A.class_decl) ->
      let ci = Hashtbl.find t.class_by_name c.cd_name in
      match c.cd_super with
      | Some s ->
        let sci = find_class t c.cd_pos s in
        ci.ci_super <- Some sci.ci_id
      | None -> if ci.ci_id <> obj then ci.ci_super <- Some obj)
    prog;
  (* cycle check *)
  List.iter
    (fun ci ->
      let seen = Hashtbl.create 8 in
      let rec go c =
        if Hashtbl.mem seen c.ci_id then
          A.semantic_error A.dummy_pos "inheritance cycle involving class %s"
            (class_name_of t c.ci_id);
        Hashtbl.add seen c.ci_id ();
        match c.ci_super with Some s -> go (class_info_by_id t s) | None -> ()
      in
      go ci)
    t.class_list

let fresh_var t ~method_id ~name ~ty ~kind : Ir.var_id =
  let v_id = Vec.length t.vars in
  Vec.push t.vars { v_id; v_name = name; v_ty = ty; v_method = method_id; v_kind = kind };
  v_id

let declare_members t (prog : A.program) =
  List.iter
    (fun (c : A.class_decl) ->
      let ci = Hashtbl.find t.class_by_name c.cd_name in
      List.iter
        (fun (m : A.member) ->
          match m with
          | A.M_field { mf_static; mf_ty; mf_name; mf_pos } ->
            if List.mem_assoc mf_name ci.ci_fields then
              A.semantic_error mf_pos "duplicate field %s.%s" c.cd_name mf_name;
            let f_id = Vec.length t.fields in
            Vec.push t.fields
              { f_id; f_class = ci.ci_id; f_name = mf_name;
                f_ty = conv_ty t mf_pos mf_ty; f_static = mf_static };
            ci.ci_fields <- (mf_name, f_id) :: ci.ci_fields
          | A.M_method { mm_static; mm_ret; mm_name; mm_params; mm_pos; _ } ->
            if List.mem_assoc mm_name ci.ci_methods then
              A.semantic_error mm_pos "duplicate method %s.%s" c.cd_name mm_name;
            let m_id = Vec.length t.methods in
            let ret_ty = conv_ty t mm_pos mm_ret in
            let this =
              if mm_static then None
              else
                Some (fresh_var t ~method_id:m_id ~name:"this"
                        ~ty:(Tclass ci.ci_id) ~kind:`This)
            in
            let params =
              List.mapi
                (fun k (ty, name) ->
                  fresh_var t ~method_id:m_id ~name ~ty:(conv_ty t mm_pos ty)
                    ~kind:(`Param (k + 1)))
                mm_params
            in
            Vec.push t.methods
              { m_id; m_class = ci.ci_id; m_name = mm_name; m_static = mm_static;
                m_this = this; m_params = Array.of_list params;
                m_ret_ty = ret_ty; m_ret_var = None; m_body = [||] };
            ci.ci_methods <- (mm_name, m_id) :: ci.ci_methods;
            if mm_static && mm_name = "main" then begin
              match t.main with
              | Some _ -> A.semantic_error mm_pos "duplicate main method"
              | None -> t.main <- Some m_id
            end)
        c.cd_members)
    prog

(* ------------------------------------------------------------- lowering *)

type env = {
  t : t;
  meth : Ir.metho;
  cls : class_info;
  mutable scopes : (string * Ir.var_id) list list;
  buf : Ir.stmt Vec.t;
  mutable tmp_count : int;
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare_local env pos name ty =
  (match env.scopes with
  | scope :: _ when List.mem_assoc name scope ->
    A.semantic_error pos "duplicate local variable %s" name
  | _ -> ());
  let v = fresh_var env.t ~method_id:env.meth.m_id ~name ~ty ~kind:`Local in
  env.scopes <- ((name, v) :: List.hd env.scopes) :: List.tl env.scopes;
  v

let lookup_var env name : Ir.var_id option =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some v -> Some v
      | None -> go rest)
  in
  go env.scopes

let fresh_temp env ty : Ir.var_id =
  let name = Printf.sprintf "$t%d" env.tmp_count in
  env.tmp_count <- env.tmp_count + 1;
  fresh_var env.t ~method_id:env.meth.m_id ~name ~ty ~kind:`Temp

let emit env s = Vec.push env.buf s

let var_ty env v = (Vec.get env.t.vars v).Ir.v_ty

let new_alloc env pos kind : Ir.alloc_id =
  let a_id = Vec.length env.t.allocs in
  Vec.push env.t.allocs
    { a_id; a_kind = kind; a_method = env.meth.m_id; a_line = pos.A.line };
  a_id

let new_cast_site ?(kind = `Cast) env pos ty : Ir.cast_id =
  let x_id = Vec.length env.t.casts in
  Vec.push env.t.casts
    { x_id; x_method = env.meth.m_id; x_ty = ty; x_line = pos.A.line;
      x_kind = kind };
  x_id

let new_call_site env pos ~kind ~lhs ~recv ~args ~target : Ir.call_id =
  let cs_id = Vec.length env.t.calls in
  Vec.push env.t.calls
    { cs_id; cs_method = env.meth.m_id; cs_line = pos.A.line; cs_kind = kind;
      cs_lhs = lhs; cs_recv = recv; cs_args = args; cs_target = target };
  cs_id

let class_of_ty env pos (ty : Ir.typ) : class_info =
  match ty with
  | Tclass c -> class_info_by_id env.t c
  | _ -> A.semantic_error pos "expected an object type"

let check_args _env pos (m : Ir.metho) args =
  if Array.length m.m_params <> List.length args then
    A.semantic_error pos "method %s expects %d argument(s), got %d"
      m.m_name (Array.length m.m_params) (List.length args)

(** Lower [e] and return the variable holding its value. [dst], when given,
    is used as that variable (avoiding temporaries). *)
let rec lower_expr ?dst env (e : A.expr) : Ir.var_id =
  let pos = e.A.e_pos in
  let into ty mk =
    let d = match dst with Some d -> d | None -> fresh_temp env ty in
    emit env (mk d);
    d
  in
  match e.A.e with
  | A.Int_lit v -> into Tint (fun lhs -> ConstInt { lhs; value = v })
  | A.Bool_lit v -> into Tbool (fun lhs -> ConstBool { lhs; value = v })
  | A.Null_lit -> into Tnull (fun lhs -> ConstNull { lhs })
  | A.Str_lit value ->
    let strc = (find_class env.t pos "String").ci_id in
    let site = new_alloc env pos `String in
    into (Tclass strc) (fun lhs -> StrConst { lhs; value; site })
  | A.This -> (
    match env.meth.m_this with
    | Some v -> copy_to ?dst env v
    | None -> A.semantic_error pos "'this' in a static method")
  | A.Var name -> (
    match lookup_var env name with
    | Some v -> copy_to ?dst env v
    | None -> A.semantic_error pos "unknown variable %s" name)
  | A.Field (b, fname) -> lower_field_access ?dst env pos b fname
  | A.Static_field (cname, fname) -> lower_static_field ?dst env pos cname fname
  | A.Index (b, idx) ->
    let arr = lower_expr env b in
    let idx_v = lower_expr env idx in
    let elem_ty =
      match var_ty env arr with
      | Tarray e -> e
      | _ -> A.semantic_error pos "indexing a non-array"
    in
    into elem_ty (fun lhs -> ALoad { lhs; arr; idx = idx_v })
  | A.Call (b, mname, args) -> (
    match b.A.e with
    | A.Var cname
      when lookup_var env cname = None && Hashtbl.mem env.t.class_by_name cname ->
      (* `C.m(args)` static call *)
      lower_static_call ?dst env pos cname mname args
    | _ -> lower_virtual_call ?dst env pos b mname args)
  | A.Self_call (mname, args) -> (
    (* m(args): instance method on this, or static method of this class *)
    match lookup_method env.t env.cls.ci_id mname with
    | None -> A.semantic_error pos "unknown method %s in class %s" mname
                (class_name_of env.t env.cls.ci_id)
    | Some mid ->
      let m = Vec.get env.t.methods mid in
      if m.m_static then lower_call ?dst env pos Ir.Static None mid args
      else begin
        match env.meth.m_this with
        | None ->
          A.semantic_error pos "instance method %s called from static context" mname
        | Some this -> lower_call ?dst env pos Ir.Virtual (Some this) mid args
      end)
  | A.Static_call (cname, mname, args) -> lower_static_call ?dst env pos cname mname args
  | A.New (cname, args) -> lower_new ?dst env pos cname args
  | A.New_array (elem_ast, len) ->
    let elem = conv_ty env.t pos elem_ast in
    let len_v = lower_expr env len in
    let site = new_alloc env pos (`Array elem) in
    into (Tarray elem) (fun lhs -> NewArray { lhs; elem; len = len_v; site })
  | A.Cast (ty_ast, inner) -> (
    let ty = conv_ty env.t pos ty_ast in
    let rhs = lower_expr env inner in
    match ty with
    | Tclass _ | Tarray _ ->
      let site = new_cast_site env pos ty in
      into ty (fun lhs -> Cast { lhs; ty; rhs; site })
    | _ -> copy_to ?dst env rhs)
  | A.Instanceof (inner, ty_ast) -> (
    let ty = conv_ty env.t pos ty_ast in
    let rhs = lower_expr env inner in
    match ty with
    | Tclass _ | Tarray _ ->
      if not (Ir.is_ref_type (var_ty env rhs)) then
        A.semantic_error pos "instanceof on a primitive value";
      let site = new_cast_site ~kind:`InstanceOf env pos ty in
      into Tbool (fun lhs -> InstanceOf { lhs; ty; rhs; site })
    | _ -> A.semantic_error pos "instanceof requires a reference type")
  | A.Super_call (mname, args) -> (
    match env.meth.m_this with
    | None -> A.semantic_error pos "'super' in a static method"
    | Some this -> (
      let super =
        match (class_info_by_id env.t env.cls.ci_id).ci_super with
        | Some s -> s
        | None -> A.semantic_error pos "class has no superclass"
      in
      match lookup_method env.t super mname with
      | None ->
        A.semantic_error pos "no method %s in superclasses of %s" mname
          (class_name_of env.t env.cls.ci_id)
      | Some mid ->
        let m = Vec.get env.t.methods mid in
        if m.m_static then
          A.semantic_error pos "super call to a static method";
        lower_call ?dst env pos Ir.Special (Some this) mid args))
  | A.Binop (op, a, b) ->
    let a_v = lower_expr env a in
    let b_v = lower_expr env b in
    let op' : Ir.binop =
      match op with
      | A.Add -> Add | A.Sub -> Sub | A.Mul -> Mul | A.Div -> Div | A.Mod -> Mod
      | A.Lt -> Lt | A.Le -> Le | A.Gt -> Gt | A.Ge -> Ge | A.Eq -> Eq
      | A.Ne -> Ne | A.And -> And | A.Or -> Or
    in
    let ty : Ir.typ =
      match op with A.Add | A.Sub | A.Mul | A.Div | A.Mod -> Tint | _ -> Tbool
    in
    into ty (fun lhs -> Binop { lhs; op = op'; a = a_v; b = b_v })
  | A.Unop (op, a) ->
    let a_v = lower_expr env a in
    let op' : Ir.unop = match op with A.Not -> Not | A.Neg -> Neg in
    let ty : Ir.typ = match op with A.Not -> Tbool | A.Neg -> Tint in
    into ty (fun lhs -> Unop { lhs; op = op'; a = a_v })
  | A.Array_len a ->
    let arr = lower_expr env a in
    into Tint (fun lhs -> ALen { lhs; arr })

and copy_to ?dst env v : Ir.var_id =
  match dst with
  | None -> v
  | Some d ->
    emit env (Copy { lhs = d; rhs = v });
    d

and lower_field_access ?dst env pos base fname : Ir.var_id =
  (* `C.f` static field parses as Field(Var C, f) *)
  match base.A.e with
  | A.Var cname
    when lookup_var env cname = None && Hashtbl.mem env.t.class_by_name cname ->
    lower_static_field ?dst env pos cname fname
  | _ -> (
    let b = lower_expr env base in
    match var_ty env b with
    | Tarray _ when fname = "length" ->
      let d = match dst with Some d -> d | None -> fresh_temp env Tint in
      emit env (ALen { lhs = d; arr = b });
      d
    | bty ->
      let ci = class_of_ty env pos bty in
      (match lookup_field env.t ci.ci_id fname with
      | None ->
        A.semantic_error pos "unknown field %s in class %s" fname
          (class_name_of env.t ci.ci_id)
      | Some fld ->
        let f = Vec.get env.t.fields fld in
        if f.f_static then
          A.semantic_error pos "static field %s accessed via instance" fname;
        let d = match dst with Some d -> d | None -> fresh_temp env f.f_ty in
        emit env (Load { lhs = d; base = b; fld });
        d))

and lower_static_field ?dst env pos cname fname : Ir.var_id =
  let ci = find_class env.t pos cname in
  match lookup_field env.t ci.ci_id fname with
  | None -> A.semantic_error pos "unknown static field %s.%s" cname fname
  | Some fld ->
    let f = Vec.get env.t.fields fld in
    if not f.f_static then
      A.semantic_error pos "instance field %s.%s used statically" cname fname;
    let d = match dst with Some d -> d | None -> fresh_temp env f.f_ty in
    emit env (SLoad { lhs = d; fld });
    d

and lower_virtual_call ?dst env pos base mname args : Ir.var_id =
  let recv = lower_expr env base in
  let ci = class_of_ty env pos (var_ty env recv) in
  match lookup_method env.t ci.ci_id mname with
  | None ->
    A.semantic_error pos "unknown method %s in class %s" mname
      (class_name_of env.t ci.ci_id)
  | Some mid ->
    let m = Vec.get env.t.methods mid in
    if m.m_static then
      A.semantic_error pos "static method %s called via instance" mname;
    lower_call ?dst env pos Ir.Virtual (Some recv) mid args

and lower_static_call ?dst env pos cname mname args : Ir.var_id =
  let ci = find_class env.t pos cname in
  match lookup_method env.t ci.ci_id mname with
  | None -> A.semantic_error pos "unknown static method %s.%s" cname mname
  | Some mid ->
    let m = Vec.get env.t.methods mid in
    if not m.m_static then
      A.semantic_error pos "instance method %s.%s called statically" cname mname;
    lower_call ?dst env pos Ir.Static None mid args

and lower_call ?dst env pos (kind : Ir.invoke_kind) recv target args : Ir.var_id =
  let m = Vec.get env.t.methods target in
  check_args env pos m args;
  let arg_vs = Array.of_list (List.map (lower_expr env) args) in
  let lhs =
    match (dst, m.m_ret_ty) with
    | _, Tvoid -> None
    | Some d, _ -> Some d
    | None, ty -> Some (fresh_temp env ty)
  in
  let site = new_call_site env pos ~kind ~lhs ~recv ~args:arg_vs ~target in
  emit env (Invoke { lhs; kind; recv; target; args = arg_vs; site });
  match lhs with
  | Some d -> d
  | None ->
    (* void call in expression position: only legal as a statement *)
    fresh_temp env Tvoid

and lower_new ?dst env pos cname args : Ir.var_id =
  let ci = find_class env.t pos cname in
  let site = new_alloc env pos (`Class ci.ci_id) in
  let d =
    match dst with Some d -> d | None -> fresh_temp env (Tclass ci.ci_id)
  in
  emit env (New { lhs = d; cls = ci.ci_id; site });
  (match lookup_method env.t ci.ci_id "<init>" with
  | Some ctor ->
    let m = Vec.get env.t.methods ctor in
    check_args env pos m args;
    let arg_vs = Array.of_list (List.map (lower_expr env) args) in
    let csite =
      new_call_site env pos ~kind:Special ~lhs:None ~recv:(Some d) ~args:arg_vs
        ~target:ctor
    in
    emit env
      (Invoke { lhs = None; kind = Special; recv = Some d; target = ctor;
                args = arg_vs; site = csite })
  | None ->
    if args <> [] then
      A.semantic_error pos "class %s has no constructor but got arguments" cname);
  d

(* statements *)

let rec lower_stmt env (s : A.stmt) : unit =
  let pos = s.A.s_pos in
  match s.A.s with
  | A.Decl (ty_ast, name, init) -> (
    let ty = conv_ty env.t pos ty_ast in
    let v = declare_local env pos name ty in
    match init with
    | None -> ()
    | Some e -> ignore (lower_expr ~dst:v env e))
  | A.Assign (lv, rhs) -> (
    match lv.A.e with
    | A.Var name -> (
      match lookup_var env name with
      | Some v -> ignore (lower_expr ~dst:v env rhs)
      | None -> A.semantic_error pos "unknown variable %s" name)
    | A.Field (b, fname) -> (
      match b.A.e with
      | A.Var cname
        when lookup_var env cname = None && Hashtbl.mem env.t.class_by_name cname
        -> (
        let ci = find_class env.t pos cname in
        match lookup_field env.t ci.ci_id fname with
        | Some fld when (Vec.get env.t.fields fld).f_static ->
          let r = lower_expr env rhs in
          emit env (SStore { fld; rhs = r })
        | _ -> A.semantic_error pos "unknown static field %s.%s" cname fname)
      | _ ->
        let bv = lower_expr env b in
        let ci = class_of_ty env pos (var_ty env bv) in
        (match lookup_field env.t ci.ci_id fname with
        | None ->
          A.semantic_error pos "unknown field %s in class %s" fname
            (class_name_of env.t ci.ci_id)
        | Some fld ->
          let r = lower_expr env rhs in
          emit env (Store { base = bv; fld; rhs = r })))
    | A.Index (b, idx) ->
      let arr = lower_expr env b in
      let idx_v = lower_expr env idx in
      let r = lower_expr env rhs in
      emit env (AStore { arr; idx = idx_v; rhs = r })
    | _ -> A.semantic_error pos "invalid assignment target")
  | A.Expr e -> ignore (lower_expr env e)
  | A.Print e ->
    let v = lower_expr env e in
    emit env (Print { arg = v })
  | A.Return None -> emit env (Return None)
  | A.Return (Some e) ->
    let v = lower_expr env e in
    emit env (Return (Some v))
  | A.Block body ->
    push_scope env;
    List.iter (lower_stmt env) body;
    pop_scope env
  | A.If (cond, then_, else_) ->
    let c = lower_expr env cond in
    let then_a = lower_block env then_ in
    let else_a = lower_block env else_ in
    emit env (If { cond = c; cond_pre = [||]; then_ = then_a; else_ = else_a })
  | A.While (cond, body) ->
    (* the condition is lowered into its own buffer so the interpreter can
       re-evaluate it at each iteration *)
    let saved = Vec.to_list env.buf in
    Vec.clear env.buf;
    let c = lower_expr env cond in
    let cond_pre = Array.of_list (Vec.to_list env.buf) in
    Vec.clear env.buf;
    List.iter (Vec.push env.buf) saved;
    let body_a = lower_block env body in
    emit env (While { cond = c; cond_pre; body = body_a })

and lower_block env (body : A.stmt list) : Ir.stmt array =
  let saved = Vec.to_list env.buf in
  Vec.clear env.buf;
  push_scope env;
  List.iter (lower_stmt env) body;
  pop_scope env;
  let out = Array.of_list (Vec.to_list env.buf) in
  Vec.clear env.buf;
  List.iter (Vec.push env.buf) saved;
  out

(* single-return funnelling *)

let returned_vars (body : Ir.stmt array) : Ir.var_id list =
  let acc = ref [] in
  Ir.iter_stmts
    (fun s ->
      match s with
      | Return (Some v) when not (List.mem v !acc) -> acc := v :: !acc
      | _ -> ())
    body;
  !acc

let rec rewrite_returns (ret : Ir.var_id) (body : Ir.stmt array) : Ir.stmt array =
  Array.of_list
    (List.concat_map
       (fun (s : Ir.stmt) ->
         match s with
         | Return (Some v) when v <> ret ->
           [ Ir.Copy { lhs = ret; rhs = v }; Ir.Return (Some ret) ]
         | If i ->
           [ Ir.If { i with then_ = rewrite_returns ret i.then_;
                     else_ = rewrite_returns ret i.else_ } ]
         | While w -> [ Ir.While { w with body = rewrite_returns ret w.body } ]
         | s -> [ s ])
       (Array.to_list body))

let lower_method t (ci : class_info) (mid : Ir.method_id) (decl : A.member) : unit
    =
  match decl with
  | A.M_field _ -> ()
  | A.M_method { mm_body; mm_params; _ } ->
    let meth = Vec.get t.methods mid in
    let env =
      { t; meth; cls = ci; scopes = [ [] ]; buf = Vec.create Ir.Nop;
        tmp_count = 0 }
    in
    (* params are pre-declared vars; bring them into scope *)
    let scope =
      List.map2
        (fun (_, name) v -> (name, v))
        mm_params
        (Array.to_list meth.m_params)
    in
    env.scopes <- [ scope ];
    push_scope env;
    List.iter (lower_stmt env) mm_body;
    let body = Array.of_list (Vec.to_list env.buf) in
    let ret_var, body =
      if meth.m_ret_ty = Tvoid then (None, body)
      else
        match returned_vars body with
        | [] -> (None, body) (* falls off the end; treated as returning null *)
        | [ v ] -> (Some v, body)
        | _ ->
          let ret =
            fresh_var t ~method_id:mid ~name:"$ret" ~ty:meth.m_ret_ty ~kind:`Ret
          in
          (Some ret, rewrite_returns ret body)
    in
    Vec.set t.methods mid { meth with m_ret_var = ret_var; m_body = body }

(* ------------------------------------------------------------- finishing *)

let finish t : Ir.program =
  let classes =
    Array.of_list
      (List.rev_map
         (fun ci : Ir.klass ->
           {
             c_id = ci.ci_id;
             c_name =
               (match ci.ci_decl with Some d -> d.cd_name | None -> "Object");
             c_super = ci.ci_super;
             c_fields = List.rev_map snd ci.ci_fields;
             c_methods = List.rev_map snd ci.ci_methods;
           })
         t.class_list)
  in
  Array.sort (fun (a : Ir.klass) b -> compare a.c_id b.c_id) classes;
  let methods = Array.of_list (Vec.to_list t.methods) in
  let vars = Array.of_list (Vec.to_list t.vars) in
  let fields = Array.of_list (Vec.to_list t.fields) in
  let nclasses = Array.length classes in
  (* vtables *)
  let vtables = Array.init nclasses (fun _ -> Hashtbl.create 8) in
  let rec fill_vtable c =
    let k = classes.(c) in
    if Hashtbl.length vtables.(c) = 0 then begin
      (match k.c_super with
      | Some s ->
        fill_vtable s;
        Hashtbl.iter (fun name m -> Hashtbl.replace vtables.(c) name m) vtables.(s)
      | None -> ());
      List.iter
        (fun mid ->
          let m = methods.(mid) in
          if (not m.m_static) && m.m_name <> "<init>" then
            Hashtbl.replace vtables.(c) m.m_name mid)
        k.c_methods
    end
  in
  for c = 0 to nclasses - 1 do fill_vtable c done;
  (* subtype bitsets: subtypes.(b) = { a | a <: b } *)
  let subtypes = Array.init nclasses (fun _ -> Bits.create ()) in
  for a = 0 to nclasses - 1 do
    let rec up c =
      ignore (Bits.add subtypes.(c) a);
      match classes.(c).c_super with Some s -> up s | None -> ()
    in
    up a
  done;
  (* def counts *)
  let def_counts = Array.make (Array.length vars) 0 in
  Array.iter
    (fun (m : Ir.metho) ->
      Ir.iter_stmts
        (fun s ->
          match Ir.def_of s with
          | Some v -> def_counts.(v) <- def_counts.(v) + 1
          | None -> ())
        m.m_body)
    methods;
  let main =
    match t.main with
    | Some m -> m
    | None -> A.semantic_error A.dummy_pos "no static main method found"
  in
  let object_cls = (Hashtbl.find t.class_by_name "Object").ci_id in
  let string_cls =
    match Hashtbl.find_opt t.class_by_name "String" with
    | Some ci -> ci.ci_id
    | None -> object_cls
  in
  {
    classes;
    fields;
    methods;
    vars;
    allocs = Array.of_list (Vec.to_list t.allocs);
    calls = Array.of_list (Vec.to_list t.calls);
    casts = Array.of_list (Vec.to_list t.casts);
    main;
    object_cls;
    string_cls;
    def_counts;
    vtables;
    subtypes;
  }

(** Compile a list of (unit-name, source) pairs into one program. *)
let compile (sources : (string * string) list) : Ir.program =
  let asts =
    List.concat_map (fun (_name, src) -> Parser.parse_program src) sources
  in
  let t = create () in
  declare_classes t asts;
  declare_members t asts;
  List.iter
    (fun (c : A.class_decl) ->
      let ci = Hashtbl.find t.class_by_name c.cd_name in
      (* pair declared methods with their ids, in declaration order *)
      let mids =
        List.filter
          (fun (_, mid) -> (Vec.get t.methods mid).Ir.m_class = ci.ci_id)
          (List.rev ci.ci_methods)
      in
      let decls =
        List.filter (function A.M_method _ -> true | _ -> false) c.cd_members
      in
      List.iter2 (fun (_, mid) d -> lower_method t ci mid d) mids decls)
    asts;
  finish t

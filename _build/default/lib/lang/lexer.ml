(** Hand-written lexer for MiniJava.

    Works over an in-memory string (all workloads are generated or embedded,
    no file IO needed at this layer) and produces a token array consumed by
    the recursive-descent parser. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string       (* class extends new return if else while true false null this static void int boolean *)
  | PUNCT of string    (* { } ( ) [ ] ; , . = == != < <= > >= + - * / % && || ! *)
  | EOF

type loc_token = { tok : token; pos : Ast.pos }

let keywords =
  [ "class"; "extends"; "new"; "return"; "if"; "else"; "while"; "for";
    "instanceof"; "super"; "true"; "false"; "null"; "this"; "static"; "void";
    "int"; "boolean" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : loc_token array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let pos i = Ast.{ line = !line; col = i - !bol + 1 } in
  let emit p t = toks := { tok = t; pos = p } :: !toks in
  let i = ref 0 in
  let err p fmt = Ast.syntax_error p fmt in
  while !i < n do
    let c = src.[!i] in
    let p = pos !i in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then err p "unterminated comment";
        if src.[!i] = '\n' then begin
          incr line;
          bol := !i + 1
        end;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else incr i
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      emit p (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let s = String.sub src !i (!j - !i) in
      emit p (if List.mem s keywords then KW s else IDENT s);
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then err p "unterminated string literal";
        if src.[!j] = '\\' && !j + 1 < n then begin
          (match src.[!j + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | ch -> Buffer.add_char buf ch);
          j := !j + 2
        end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      if !j >= n then err p "unterminated string literal";
      emit p (STRING (Buffer.contents buf));
      i := !j + 1
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
        emit p (PUNCT two);
        i := !i + 2
      | _ ->
        (match c with
        | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '.' | '=' | '<'
        | '>' | '+' | '-' | '*' | '/' | '%' | '!' ->
          emit p (PUNCT (String.make 1 c));
          incr i
        | _ -> err p "unexpected character %C" c)
    end
  done;
  emit (pos !i) EOF;
  Array.of_list (List.rev !toks)

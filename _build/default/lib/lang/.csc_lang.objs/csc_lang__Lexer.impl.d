lib/lang/lexer.ml: Array Ast Buffer List String

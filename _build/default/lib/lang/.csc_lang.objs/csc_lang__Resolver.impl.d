lib/lang/resolver.ml: Array Ast Bits Csc_common Csc_ir Hashtbl List Parser Printf Vec

lib/lang/frontend.mli: Csc_ir

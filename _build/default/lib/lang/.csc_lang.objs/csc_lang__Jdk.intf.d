lib/lang/jdk.mli:

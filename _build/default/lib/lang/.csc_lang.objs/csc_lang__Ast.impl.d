lib/lang/ast.ml: Fmt

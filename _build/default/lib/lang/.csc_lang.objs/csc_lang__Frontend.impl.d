lib/lang/frontend.ml: Csc_ir Jdk Resolver

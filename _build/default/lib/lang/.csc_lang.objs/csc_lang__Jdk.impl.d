lib/lang/jdk.ml:

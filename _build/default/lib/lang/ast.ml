(** Abstract syntax of MiniJava, the Java-like source language that stands in
    for Java bytecode (see DESIGN.md, substitution 1).

    The language covers exactly the features the Cut-Shortcut rules mention:
    classes with single inheritance, instance/static fields and methods,
    virtual dispatch, object and array allocation, field and array accesses,
    casts, and enough arithmetic/control flow for programs to be executable by
    the concrete interpreter (recall experiment). *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type ty =
  | Ty_int
  | Ty_bool
  | Ty_void
  | Ty_class of string  (** includes "Object" and "String" *)
  | Ty_array of ty

let rec pp_ty ppf = function
  | Ty_int -> Fmt.string ppf "int"
  | Ty_bool -> Fmt.string ppf "boolean"
  | Ty_void -> Fmt.string ppf "void"
  | Ty_class c -> Fmt.string ppf c
  | Ty_array t -> Fmt.pf ppf "%a[]" pp_ty t

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Not | Neg

type expr = { e : expr_desc; e_pos : pos }

and expr_desc =
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Null_lit
  | This
  | Var of string
  | Field of expr * string               (** e.f *)
  | Static_field of string * string      (** C.f *)
  | Index of expr * expr                 (** e[i] *)
  | Call of expr * string * expr list    (** e.m(args): virtual *)
  | Self_call of string * expr list      (** m(args): this-call or same-class static *)
  | Static_call of string * string * expr list  (** C.m(args) *)
  | New of string * expr list            (** new C(args) *)
  | New_array of ty * expr               (** new T[n] *)
  | Cast of ty * expr                    (** (T) e *)
  | Instanceof of expr * ty              (** e instanceof T *)
  | Super_call of string * expr list     (** super.m(args); "<init>" = super(args) *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Array_len of expr                    (** e.length *)

type stmt = { s : stmt_desc; s_pos : pos }

and stmt_desc =
  | Decl of ty * string * expr option    (** T x; or T x = e; *)
  | Assign of expr * expr                (** lvalue = e; lvalue is Var/Field/Index/Static_field *)
  | Expr of expr                         (** expression statement (calls) *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Block of stmt list
  | Print of expr                        (** System.print(e) intrinsic *)

type member =
  | M_field of { mf_static : bool; mf_ty : ty; mf_name : string; mf_pos : pos }
  | M_method of {
      mm_static : bool;
      mm_ret : ty;
      mm_name : string;  (** "<init>" for constructors *)
      mm_params : (ty * string) list;
      mm_body : stmt list;
      mm_pos : pos;
    }

type class_decl = {
  cd_name : string;
  cd_super : string option;
  cd_members : member list;
  cd_pos : pos;
}

type program = class_decl list

exception Syntax_error of pos * string
exception Semantic_error of pos * string

let syntax_error pos fmt =
  Fmt.kstr (fun s -> raise (Syntax_error (pos, s))) fmt

let semantic_error pos fmt =
  Fmt.kstr (fun s -> raise (Semantic_error (pos, s))) fmt

lib/driver/export.mli: Csc_ir Csc_pta Format

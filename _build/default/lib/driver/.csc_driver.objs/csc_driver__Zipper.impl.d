lib/driver/zipper.ml: Array Bits Csc_common Csc_core Csc_ir Csc_pta Hashtbl List

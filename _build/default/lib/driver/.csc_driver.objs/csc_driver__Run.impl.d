lib/driver/run.ml: Bits Csc_clients Csc_common Csc_core Csc_datalog Csc_interp Csc_ir Csc_pta List Printf Timer Zipper

lib/driver/run.mli: Bits Csc_clients Csc_common Csc_core Csc_ir Csc_pta

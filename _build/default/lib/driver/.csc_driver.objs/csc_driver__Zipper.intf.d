lib/driver/zipper.mli: Bits Csc_common Csc_ir Csc_pta Hashtbl

lib/driver/export.ml: Array Bits Buffer Csc_common Csc_ir Csc_pta Fmt Hashtbl List Printf String

(** Zipper^e-style selective context sensitivity (the paper's main selective
    baseline; DESIGN.md substitution 4).

    Selects precision-critical methods from a context-insensitive
    pre-analysis via direct / wrapped / unwrapped object-flow patterns, then
    drops scalability threats by points-to volume (the "express" cap). The
    main analysis applies 2obj to the selected methods only
    ({!Csc_pta.Context.selective}). *)

open Csc_common
module Ir = Csc_ir.Ir

type selection = {
  selected : Bits.t;
  n_candidates : int;  (** precision-critical methods before the cap *)
  n_dropped : int;     (** dropped as scalability threats *)
}

(** Parameter-derived variables of a method (params closed under copies,
    casts and loads) — the intra-procedural stand-in for Zipper's object
    flow graph. Exposed for tests. *)
val derived_vars : Ir.program -> Ir.metho -> (Ir.var_id, unit) Hashtbl.t

val has_wrapped_flow : Ir.program -> Ir.metho -> bool
val has_unwrapped_flow : Ir.program -> Ir.metho -> bool
val has_direct_flow : Ir.program -> Ir.metho -> bool

(** Select methods from a CI pre-analysis result. [cap_fraction] (default
    0.05) bounds any single method's share of the total points-to volume. *)
val select :
  ?cap_fraction:float -> Ir.program -> Csc_pta.Solver.result -> selection

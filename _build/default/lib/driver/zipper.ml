(** A Zipper^e-style selective context-sensitivity baseline (DESIGN.md S7,
    substitution 4).

    Zipper [Li et al. 2020a] selects *precision-critical* methods by finding
    object-flow patterns over a context-insensitive pre-analysis — direct
    flows (parameter to return), wrapped flows (parameter stored into a heap
    reachable from a parameter) and unwrapped flows (heap of a parameter
    loaded towards the return) — and its express variant (Zipper^e)
    additionally drops *scalability-threatening* methods whose
    points-to volume exceeds a budget. The main analysis then applies 2obj
    only to the selected methods.

    This module implements that recipe against our IR: the three flow
    patterns are detected syntactically on the IR (the paper's are computed
    on a precision-flow graph; ours is a faithful simplification), and the
    express cap drops the heaviest methods by CI points-to volume. *)

open Csc_common
module Ir = Csc_ir.Ir
module Solver = Csc_pta.Solver
module Static = Csc_core.Static

type selection = {
  selected : Bits.t;
  n_candidates : int;      (** precision-critical before the express cap *)
  n_dropped : int;         (** dropped as scalability threats *)
}

(* Intra-procedural "parameter-derived" variables: parameters, plus anything
   reached from them through copies, casts and (array) loads. This is a
   cheap stand-in for Zipper's object flow graph reachability. *)
let derived_vars (p : Ir.program) (m : Ir.metho) : (Ir.var_id, unit) Hashtbl.t =
  let d = Hashtbl.create 16 in
  (match m.m_this with Some t -> Hashtbl.replace d t () | None -> ());
  Array.iter (fun v -> Hashtbl.replace d v ()) m.m_params;
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.iter_stmts
      (fun s ->
        let flow from into =
          if Hashtbl.mem d from && not (Hashtbl.mem d into) then begin
            Hashtbl.replace d into ();
            changed := true
          end
        in
        match s with
        | Copy { lhs; rhs } -> flow rhs lhs
        | Cast { lhs; rhs; _ } -> flow rhs lhs
        | Load { lhs; base; _ } -> flow base lhs
        | ALoad { lhs; arr; _ } -> flow arr lhs
        | _ -> ())
      m.m_body;
    ignore p
  done;
  d

(** Wrapped flow: a parameter-derived value is stored into the heap, or
    something is stored into parameter-derived heap (covers constructors
    installing backing stores, container add/grow, setters). *)
let has_wrapped_flow (p : Ir.program) (m : Ir.metho) : bool =
  let d = derived_vars p m in
  let found = ref false in
  Ir.iter_stmts
    (fun s ->
      match s with
      | Store { base; rhs; _ } ->
        if Hashtbl.mem d rhs || Hashtbl.mem d base then found := true
      | AStore { arr; rhs; _ } ->
        if Hashtbl.mem d rhs || Hashtbl.mem d arr then found := true
      | _ -> ())
    m.m_body;
  !found

(** Unwrapped flow: the method returns values loaded out of
    parameter-derived heap (getters, container get/next). *)
let has_unwrapped_flow (p : Ir.program) (m : Ir.metho) : bool =
  m.m_ret_var <> None
  &&
  let d = derived_vars p m in
  let found = ref false in
  Ir.iter_stmts
    (fun s ->
      match s with
      | Load { base; _ } -> if Hashtbl.mem d base then found := true
      | ALoad { arr; _ } -> if Hashtbl.mem d arr then found := true
      | _ -> ())
    m.m_body;
  !found

(** Direct flow: parameter values reach the return variable. *)
let has_direct_flow (p : Ir.program) (m : Ir.metho) : bool =
  Static.local_flow_sources p m <> None
  ||
  match m.m_ret_var with
  | Some rv -> Hashtbl.mem (derived_vars p m) rv
  | None -> false

(** Points-to volume of a method under the pre-analysis: the size of its
    variables' points-to sets. Zipper^e's scalability heuristic. *)
let volume (p : Ir.program) (pre : Solver.result) (m : Ir.metho) : int =
  let vol = ref 0 in
  Array.iter
    (fun (v : Ir.var) ->
      if v.v_method = m.m_id then vol := !vol + Bits.cardinal (pre.r_pt v.v_id))
    p.vars;
  !vol

(** Select methods from a CI pre-analysis result.
    [cap_fraction] bounds any single method's share of the total points-to
    volume (the "express" part); methods above it are not selected. *)
let select ?(cap_fraction = 0.05) (p : Ir.program) (pre : Solver.result) :
    selection =
  let candidates = ref [] in
  Array.iter
    (fun (m : Ir.metho) ->
      if
        Bits.mem pre.r_reach m.m_id
        && (has_wrapped_flow p m || has_unwrapped_flow p m || has_direct_flow p m)
      then candidates := m :: !candidates)
    p.methods;
  let total_volume =
    Array.fold_left
      (fun acc (m : Ir.metho) ->
        if Bits.mem pre.r_reach m.m_id then acc + volume p pre m else acc)
      0 p.methods
  in
  let cap =
    max 100 (int_of_float (cap_fraction *. float total_volume))
  in
  let selected = Bits.create () in
  let dropped = ref 0 in
  List.iter
    (fun (m : Ir.metho) ->
      if volume p pre m <= cap then ignore (Bits.add selected m.m_id)
      else incr dropped)
    !candidates;
  { selected; n_candidates = List.length !candidates; n_dropped = !dropped }

lib/datalog/analysis.ml: Array Bits Csc_common Csc_ir Csc_pta Engine Facts Hashtbl Interner Printf Timer

lib/datalog/engine.ml: Array Csc_common Fmt Fun Hashtbl List Option String Sys Timer

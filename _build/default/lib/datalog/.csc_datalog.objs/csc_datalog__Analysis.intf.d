lib/datalog/analysis.mli: Bits Csc_common Csc_ir Csc_pta Timer

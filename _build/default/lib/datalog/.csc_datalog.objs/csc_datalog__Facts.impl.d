lib/datalog/facts.ml: Array Bits Csc_common Csc_core Csc_ir Engine Hashtbl Interner List

(** EDB extraction: encode an IR program as Datalog input relations,
    mirroring Doop's fact generation.

    All extracted relations are listed below; ids are the IR's dense ids
    (vars, fields, methods, alloc sites, call sites, cast sites), method
    names are interned to ints for the dispatch join.

    Pointer-analysis core:
    - AllocIn(m, v, h)              allocation in method m
    - Assign(to, from)              local copy (ref-typed)
    - CastAssign(to, from, x)       cast at site x
    - CastOk(x, h)                  allocation h passes cast x's type check
    - Store(s, base, f, from)       field store statement s
    - Load(to, base, f)
    - AStoreR(arr, from) / ALoadR(to, arr)
    - SStoreR(f, from) / SLoadR(to, f)
    - VCallIn(m, site, recv, name)  virtual call
    - SpecialIn(m, site, recv, tgt) constructor call
    - StaticIn(m, site, tgt)
    - SiteIn(site, m), SiteRecv(site, recv), CallLhs(site, lhs)
    - ArgVar(site, k, var)          k >= 1, ref-typed
    - ArgOrRecv(site, k, var)       k = 0 is the receiver
    - FormalParam(m, k, param)      k = 0 is `this`
    - MethodRet(m, ret)
    - Dispatch(cls, name, m), HeapClass(h, cls), HeapIsArray(h)
    - EntryMethod(m)

    Cut-Shortcut statics (stratum 0, all negations refer here):
    - CutStore(s), CutReturn(m)
    - StorePattern(m, k1, f, k2)
    - ArgParamIdx(site, k, k'), ArgNotParam(site, k)
    - LFlowSrc(m, k)
    - Entrance(m, k, cat), ExitR(m, cat), TransferR(m), HostHeap(h) *)

open Csc_common
module Ir = Csc_ir.Ir
module Static = Csc_core.Static
module Spec = Csc_core.Spec
module E = Engine

let cat_id : Spec.category -> int = function
  | Coll_val -> 0
  | Map_key -> 1
  | Map_val -> 2

let is_ref (p : Ir.program) v = Ir.is_ref_type (Ir.var p v).v_ty

(** Declare every relation (so rules can reference empty ones) and load the
    EDB facts of [p]. Returns the method-name interner used by Dispatch. *)
let load ?(csc = true) (t : E.t) (p : Ir.program) : string Interner.t =
  let names = Interner.create "" in
  let decl name arity = ignore (E.relation t name arity) in
  List.iter
    (fun (n, a) -> decl n a)
    [
      ("AllocIn", 3); ("Assign", 2); ("CastAssign", 3); ("CastOk", 2);
      ("Store", 4); ("Load", 3); ("AStoreR", 2); ("ALoadR", 2);
      ("SStoreR", 2); ("SLoadR", 2); ("VCallIn", 4); ("SpecialIn", 4);
      ("StaticIn", 3); ("SiteIn", 2); ("SiteRecv", 2); ("CallLhs", 2);
      ("ArgVar", 3); ("ArgOrRecv", 3); ("FormalParam", 3); ("MethodRet", 2);
      ("Dispatch", 3); ("HeapClass", 2); ("HeapIsArray", 1); ("EntryMethod", 1);
      ("CutStore", 1); ("CutReturn", 1); ("StorePattern", 4);
      ("ArgParamIdx", 3); ("ArgNotParam", 2); ("LFlowSrc", 2);
      ("Entrance", 3); ("ExitR", 2); ("TransferR", 1); ("HostHeap", 1);
      ("VarMeth", 2);
    ];
  let store_count = ref 0 in
  (* ---- statements ---- *)
  Array.iter
    (fun (m : Ir.metho) ->
      Ir.iter_stmts
        (fun s ->
          match s with
          | New { lhs; site; _ } | NewArray { lhs; site; _ }
          | StrConst { lhs; site; _ } ->
            E.fact t "AllocIn" [ m.m_id; lhs; site ]
          | Copy { lhs; rhs } ->
            if is_ref p lhs || is_ref p rhs then E.fact t "Assign" [ lhs; rhs ]
          | Cast { lhs; rhs; site; _ } ->
            E.fact t "CastAssign" [ lhs; rhs; site ]
          | Store { base; fld; rhs } ->
            let sid = !store_count in
            incr store_count;
            if is_ref p rhs then begin
              E.fact t "Store" [ sid; base; fld; rhs ];
              if csc && Static.is_cut_store p ~base ~rhs then
                E.fact t "CutStore" [ sid ]
            end
          | Load { lhs; base; fld } ->
            if is_ref p lhs then E.fact t "Load" [ lhs; base; fld ]
          | AStore { arr; rhs; _ } ->
            if is_ref p rhs then E.fact t "AStoreR" [ arr; rhs ]
          | ALoad { lhs; arr; _ } ->
            if is_ref p lhs then E.fact t "ALoadR" [ lhs; arr ]
          | SStore { fld; rhs } ->
            if is_ref p rhs then E.fact t "SStoreR" [ fld; rhs ]
          | SLoad { lhs; fld } ->
            if is_ref p lhs then begin
              E.fact t "SLoadR" [ lhs; fld ];
              E.fact t "VarMeth" [ lhs; m.m_id ]
            end
          | Invoke { kind; recv; target; site; _ } -> (
            match (kind, recv) with
            | Ir.Virtual, Some r ->
              let name = Interner.intern names (Ir.metho p target).m_name in
              E.fact t "VCallIn" [ m.m_id; site; r; name ]
            | Ir.Special, Some r -> E.fact t "SpecialIn" [ m.m_id; site; r; target ]
            | Ir.Static, _ -> E.fact t "StaticIn" [ m.m_id; site; target ]
            | _ -> ())
          | Return _ | If _ | While _ | Print _ | Nop | ConstInt _ | ConstBool _ | InstanceOf _
          | ConstNull _ | Binop _ | Unop _ | ALen _ ->
            ())
        m.m_body)
    p.methods;
  (* ---- call sites ---- *)
  Array.iter
    (fun (cs : Ir.call_site) ->
      E.fact t "SiteIn" [ cs.cs_id; cs.cs_method ];
      (match cs.cs_recv with
      | Some r ->
        E.fact t "SiteRecv" [ cs.cs_id; r ];
        E.fact t "ArgOrRecv" [ cs.cs_id; 0; r ]
      | None -> ());
      (match cs.cs_lhs with
      | Some l when is_ref p l -> E.fact t "CallLhs" [ cs.cs_id; l ]
      | _ -> ());
      Array.iteri
        (fun i a ->
          E.fact t "ArgOrRecv" [ cs.cs_id; i + 1; a ];
          if is_ref p a then E.fact t "ArgVar" [ cs.cs_id; i + 1; a ])
        cs.cs_args;
      if csc then begin
        (* Arg2Var helpers for the temp-store propagation *)
        let classify k v =
          match Static.param_index p v with
          | Some k' -> E.fact t "ArgParamIdx" [ cs.cs_id; k; k' ]
          | None -> E.fact t "ArgNotParam" [ cs.cs_id; k ]
        in
        (match cs.cs_recv with Some r -> classify 0 r | None -> ());
        Array.iteri (fun i a -> classify (i + 1) a) cs.cs_args
      end)
    p.calls;
  (* ---- methods ---- *)
  Array.iter
    (fun (m : Ir.metho) ->
      (match m.m_this with
      | Some this -> E.fact t "FormalParam" [ m.m_id; 0; this ]
      | None -> ());
      Array.iteri
        (fun i v ->
          if is_ref p v then E.fact t "FormalParam" [ m.m_id; i + 1; v ])
        m.m_params;
      match m.m_ret_var with
      | Some rv when is_ref p rv -> E.fact t "MethodRet" [ m.m_id; rv ]
      | _ -> ())
    p.methods;
  E.fact t "EntryMethod" [ p.main ];
  (* ---- type hierarchy / dispatch ---- *)
  Array.iteri
    (fun c vt ->
      Hashtbl.iter
        (fun name m ->
          E.fact t "Dispatch" [ c; Interner.intern names name; m ])
        vt)
    p.vtables;
  Array.iter
    (fun (a : Ir.alloc_site) ->
      match a.a_kind with
      | `Class c -> E.fact t "HeapClass" [ a.a_id; c ]
      | `String -> E.fact t "HeapClass" [ a.a_id; p.string_cls ]
      | `Array _ -> E.fact t "HeapIsArray" [ a.a_id ])
    p.allocs;
  (* ---- cast compatibility (instanceof sites generate no flow) ---- *)
  Array.iter
    (fun (x : Ir.cast_site) ->
      if x.x_kind = `Cast then
        Array.iter
          (fun (a : Ir.alloc_site) ->
            if Ir.subtype p (Ir.alloc_typ p a.a_id) x.x_ty then
              E.fact t "CastOk" [ x.x_id; a.a_id ])
          p.allocs)
    p.casts;
  (* ---- Cut-Shortcut statics ---- *)
  if csc then begin
    let spec = Spec.of_program p in
    Array.iter
      (fun (m : Ir.metho) ->
        List.iter
          (fun (k1, f, k2) -> E.fact t "StorePattern" [ m.m_id; k1; f; k2 ])
          (Static.store_patterns p m);
        (* local flow, with the same exclusions as the imperative plugin *)
        if not (Spec.is_exit spec m.m_id) then begin
          match Static.local_flow_sources p m with
          | Some srcs ->
            E.fact t "CutReturn" [ m.m_id ];
            List.iter (fun k -> E.fact t "LFlowSrc" [ m.m_id; k ]) srcs
          | None -> ()
        end)
      p.methods;
    Hashtbl.iter
      (fun m roles ->
        ignore roles;
        List.iter
          (fun (k, cat) -> E.fact t "Entrance" [ m; k; cat_id cat ])
          (Spec.entrance_roles spec m))
      spec.Spec.entrances;
    Hashtbl.iter
      (fun m cat ->
        E.fact t "ExitR" [ m; cat_id cat ];
        E.fact t "CutReturn" [ m ])
      spec.Spec.exits;
    Bits.iter (fun m -> E.fact t "TransferR" [ m ]) spec.Spec.transfers;
    Array.iter
      (fun (a : Ir.alloc_site) ->
        match a.a_kind with
        | `Class c when Spec.is_host_class spec c -> E.fact t "HostHeap" [ a.a_id ]
        | _ -> ())
      p.allocs
  end;
  names

(** Context abstractions for the context-sensitive baselines.

    A context is an interned tuple of ints, most-recent-first: allocation
    sites for object sensitivity, class ids for type sensitivity, call-site
    ids for call-site sensitivity. Selecting the empty tuple everywhere
    yields context insensitivity — one solver implements every analysis. *)

open Csc_common
module Ir = Csc_ir.Ir

(** What a selector may query about the running solver. *)
type env = {
  prog : Ir.program;
  ctx_elems : int -> int list;   (** interned context id -> elements *)
  intern_ctx : int list -> int;
  obj_alloc : int -> Ir.alloc_id;
  obj_hctx : int -> int;         (** object id -> its heap context id *)
}

type t = {
  sel_name : string;
  sel_callee_ctx :
    env ->
    caller_ctx:int ->
    site:Ir.call_id ->
    recv:int option ->
    callee:Ir.method_id ->
    int;
      (** context for a callee instance; [recv] is the dispatching abstract
          object (None for static calls) *)
  sel_heap_ctx : env -> mctx:int -> site:Ir.alloc_id -> int;
      (** heap context for an allocation under method context [mctx] *)
}

(** [take k l] keeps the k most recent context elements. *)
val take : int -> int list -> int list

(** Context insensitivity: the empty context everywhere. *)
val ci : t

(** k-object sensitivity with heap depth [hk] [Milanova et al. 2005]. *)
val kobj : k:int -> hk:int -> t

(** k-type sensitivity: receiver objects abstracted to the class containing
    their allocation site [Smaragdakis et al. 2011]. *)
val ktype : k:int -> hk:int -> t

(** k-call-site sensitivity (k-CFA). *)
val kcall : k:int -> hk:int -> t

(** Apply [base] only to methods in [selected] (and heap contexts only to
    allocations inside them): the main-analysis half of Zipper^e. *)
val selective : selected:Bits.t -> base:t -> t

lib/pta/context.mli: Bits Csc_common Csc_ir

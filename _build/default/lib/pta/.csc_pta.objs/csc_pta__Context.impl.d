lib/pta/context.ml: Bits Csc_common Csc_ir Printf

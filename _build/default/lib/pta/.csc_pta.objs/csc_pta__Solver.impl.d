lib/pta/solver.ml: Array Bits Context Csc_common Csc_ir Hashtbl Interner List Logs Printf Queue Timer Vec

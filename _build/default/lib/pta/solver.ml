(** The pointer-analysis engine (the "Tai-e analog" of DESIGN.md S4).

    A worklist-driven Andersen-style solver over an explicit pointer flow
    graph (PFG), with on-the-fly call-graph construction. It is parameterized
    by a {!Context.t} selector — the empty selector gives the
    context-insensitive analysis — and by an optional {!type-plugin} through
    which Cut-Shortcut observes the analysis and manipulates the PFG
    (cutting = refusing edges before they are added, shortcutting = adding
    extra edges), exactly as in Figure 7 of the paper. *)

open Csc_common
module Ir = Csc_ir.Ir

(* ------------------------------------------------------------- pointers *)

type ptr_desc =
  | PVar of int * Ir.var_id        (** context id, variable *)
  | PField of int * Ir.field_id    (** abstract object id, instance field *)
  | PArr of int                    (** abstract object id: its array cells *)
  | PStatic of Ir.field_id

type edge_kind =
  | KNormal
  | KReturn of Ir.method_id  (** return edge out of this callee *)
  | KShortcut

type edge = { e_dst : int; e_filter : Ir.typ option; e_kind : edge_kind }

(* --------------------------------------------------------------- plugin *)

type plugin = {
  pl_name : string;
  pl_on_reachable : Ir.method_id -> unit;
      (** a method became reachable (first time, any context) *)
  pl_on_call_edge : Ir.call_id -> Ir.method_id -> unit;
      (** a (site, callee) call edge appeared (first time, any context) *)
  pl_on_new_pts : int -> Bits.t -> unit;
      (** pointer id, delta of newly added objects *)
  pl_on_edge : src:int -> edge -> unit;
      (** a PFG edge was added *)
  pl_is_cut_store : base:Ir.var_id -> fld:Ir.field_id -> rhs:Ir.var_id -> bool;
      (** [cutStores]: refuse the store edges of this statement *)
  pl_is_cut_return : Ir.method_id -> bool;
      (** [cutReturns]: refuse return edges out of this callee *)
}

let no_plugin : plugin =
  {
    pl_name = "none";
    pl_on_reachable = (fun _ -> ());
    pl_on_call_edge = (fun _ _ -> ());
    pl_on_new_pts = (fun _ _ -> ());
    pl_on_edge = (fun ~src:_ _ -> ());
    pl_is_cut_store = (fun ~base:_ ~fld:_ ~rhs:_ -> false);
    pl_is_cut_return = (fun _ -> false);
  }

(* -------------------------------------------------------------- watches *)

type watch =
  | WLoad of { ctx : int; lhs : Ir.var_id; fld : Ir.field_id }
  | WStore of { ctx : int; fld : Ir.field_id; rhs : Ir.var_id }
  | WALoad of { ctx : int; lhs : Ir.var_id }
  | WAStore of { ctx : int; rhs : Ir.var_id }
  | WInvoke of { ctx : int; site : Ir.call_id }

(* ---------------------------------------------------------------- state *)

type stats = {
  mutable st_ptrs : int;
  mutable st_edges : int;
  mutable st_prop : int;         (** total objects propagated *)
  mutable st_call_edges : int;   (** context-full call edges *)
  mutable st_reach_ctx : int;    (** (ctx, method) pairs *)
  mutable st_time : float;
}

type t = {
  prog : Ir.program;
  sel : Context.t;
  mutable plugin : plugin;
  budget : Timer.budget;
  (* interners *)
  ctxs : int list Interner.t;
  objs : (int * Ir.alloc_id) Interner.t;  (* (hctx, site) *)
  ptrs : ptr_desc Interner.t;
  (* per-pointer tables *)
  pts : Bits.t Vec.t;
  succs : edge list Vec.t;
  edge_seen : (int * int, unit) Hashtbl.t;
  watches : watch list Vec.t;
  (* worklist *)
  wl : (int * Bits.t) Queue.t;
  (* reachability / call graph *)
  reached : (int * Ir.method_id, unit) Hashtbl.t;
  reached_methods : Bits.t;
  call_edges : (int * Ir.call_id * int * Ir.method_id, unit) Hashtbl.t;
  call_edges_proj : (Ir.call_id * Ir.method_id, unit) Hashtbl.t;
  stats : stats;
}

exception Timeout

let log_src = Logs.Src.create "csc.solver" ~doc:"pointer analysis solver"

module Log = (val Logs.src_log log_src)

let create ?(budget = Timer.no_budget) ?(sel = Context.ci) (prog : Ir.program) : t
    =
  {
    prog;
    sel;
    plugin = no_plugin;
    budget;
    ctxs = Interner.create [];
    objs = Interner.create (-1, -1);
    ptrs = Interner.create (PStatic (-1));
    pts = Vec.create (Bits.create ());
    succs = Vec.create [];
    edge_seen = Hashtbl.create 4096;
    watches = Vec.create [];
    wl = Queue.create ();
    reached = Hashtbl.create 256;
    reached_methods = Bits.create ();
    call_edges = Hashtbl.create 1024;
    call_edges_proj = Hashtbl.create 1024;
    stats =
      { st_ptrs = 0; st_edges = 0; st_prop = 0; st_call_edges = 0;
        st_reach_ctx = 0; st_time = 0. };
  }

let set_plugin t p = t.plugin <- p

(* environment handed to context selectors *)
let env_of t : Context.env =
  {
    prog = t.prog;
    ctx_elems = (fun c -> Interner.get t.ctxs c);
    intern_ctx = (fun l -> Interner.intern t.ctxs l);
    obj_alloc = (fun o -> snd (Interner.get t.objs o));
    obj_hctx = (fun o -> fst (Interner.get t.objs o));
  }

(* ------------------------------------------------------------ accessors *)

let intern_ptr t d : int =
  let n_before = Interner.count t.ptrs in
  let id = Interner.intern t.ptrs d in
  if Interner.count t.ptrs > n_before then begin
    Vec.push t.pts (Bits.create ~capacity:8 ());
    Vec.push t.succs [];
    Vec.push t.watches [];
    t.stats.st_ptrs <- t.stats.st_ptrs + 1
  end;
  id

let ptr_var t ~ctx v = intern_ptr t (PVar (ctx, v))
let ptr_field t ~obj ~fld = intern_ptr t (PField (obj, fld))
let ptr_arr t ~obj = intern_ptr t (PArr obj)
let ptr_static t ~fld = intern_ptr t (PStatic fld)

let pts t p = Vec.get t.pts p
let succs t p = Vec.get t.succs p
let ptr_desc t p = Interner.get t.ptrs p

let intern_obj t ~hctx ~site : int = Interner.intern t.objs (hctx, site)
let obj_alloc t o = snd (Interner.get t.objs o)
let obj_hctx t o = fst (Interner.get t.objs o)

(** Object's runtime class, [None] for arrays. *)
let obj_class t o = Ir.alloc_class t.prog (obj_alloc t o)

let obj_typ t o = Ir.alloc_typ t.prog (obj_alloc t o)

let filter_delta t (filter : Ir.typ option) (delta : Bits.t) : Bits.t =
  match filter with
  | None -> delta
  | Some ty ->
    let out = Bits.create () in
    Bits.iter
      (fun o -> if Ir.subtype t.prog (obj_typ t o) ty then ignore (Bits.add out o))
      delta;
    out

let wl_push t p (objs : Bits.t) =
  if not (Bits.is_empty objs) then Queue.push (p, objs) t.wl

(** Add an edge src->dst to the PFG; existing points-to facts of [src] flow
    immediately. No-op if the edge exists. *)
let add_edge ?(kind = KNormal) ?filter t ~src ~dst =
  if src <> dst && not (Hashtbl.mem t.edge_seen (src, dst)) then begin
    Hashtbl.add t.edge_seen (src, dst) ();
    let e = { e_dst = dst; e_filter = filter; e_kind = kind } in
    Vec.set t.succs src (e :: Vec.get t.succs src);
    t.stats.st_edges <- t.stats.st_edges + 1;
    t.plugin.pl_on_edge ~src e;
    let cur = pts t src in
    if not (Bits.is_empty cur) then wl_push t dst (filter_delta t filter cur)
  end

let seed t p (objs : Bits.t) = wl_push t p objs

let seed1 t p o =
  let b = Bits.create () in
  ignore (Bits.add b o);
  wl_push t p b

(* --------------------------------------------------- reachable methods *)

let add_watch t p w =
  Vec.set t.watches p (w :: Vec.get t.watches p)

let rec add_reachable t ~ctx ~(mid : Ir.method_id) =
  if not (Hashtbl.mem t.reached (ctx, mid)) then begin
    Hashtbl.add t.reached (ctx, mid) ();
    t.stats.st_reach_ctx <- t.stats.st_reach_ctx + 1;
    (* context-explosion cascades can spend a long time inside one worklist
       iteration; keep the budget honest here too *)
    if t.stats.st_reach_ctx land 255 = 0 then Timer.check t.budget;
    if Bits.add t.reached_methods mid then t.plugin.pl_on_reachable mid;
    let m = Ir.metho t.prog mid in
    Ir.iter_stmts (process_stmt t ~ctx) m.m_body
  end

and process_stmt t ~ctx (s : Ir.stmt) =
  let pv v = ptr_var t ~ctx v in
  match s with
  | New { lhs; site; _ } | NewArray { lhs; site; _ } | StrConst { lhs; site; _ }
    ->
    let hctx = t.sel.sel_heap_ctx (env_of t) ~mctx:ctx ~site in
    let o = intern_obj t ~hctx ~site in
    seed1 t (pv lhs) o
  | Copy { lhs; rhs } ->
    if Ir.is_ref_type (Ir.var t.prog rhs).v_ty || Ir.is_ref_type (Ir.var t.prog lhs).v_ty
    then add_edge t ~src:(pv rhs) ~dst:(pv lhs)
  | Cast { lhs; ty; rhs; _ } -> add_edge ~filter:ty t ~src:(pv rhs) ~dst:(pv lhs)
  | Load { lhs; base; fld } ->
    let bp = pv base in
    add_watch t bp (WLoad { ctx; lhs; fld });
    process_watch t (WLoad { ctx; lhs; fld }) (pts t bp)
  | Store { base; fld; rhs } ->
    if not (t.plugin.pl_is_cut_store ~base ~fld ~rhs) then begin
      let bp = pv base in
      add_watch t bp (WStore { ctx; fld; rhs });
      process_watch t (WStore { ctx; fld; rhs }) (pts t bp)
    end
  | ALoad { lhs; arr; _ } ->
    let ap = pv arr in
    add_watch t ap (WALoad { ctx; lhs });
    process_watch t (WALoad { ctx; lhs }) (pts t ap)
  | AStore { arr; rhs; _ } ->
    let ap = pv arr in
    add_watch t ap (WAStore { ctx; rhs });
    process_watch t (WAStore { ctx; rhs }) (pts t ap)
  | SLoad { lhs; fld } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(ptr_static t ~fld) ~dst:(pv lhs)
  | SStore { fld; rhs } ->
    if Ir.is_ref_type (Ir.field t.prog fld).f_ty then
      add_edge t ~src:(pv rhs) ~dst:(ptr_static t ~fld)
  | Invoke { kind = Static; target; site; _ } ->
    let cctx =
      t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site ~recv:None
        ~callee:target
    in
    add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee:target
      ~recv_obj:None
  | Invoke { kind = Virtual | Special; recv; site; _ } -> (
    match recv with
    | Some r ->
      let rp = pv r in
      add_watch t rp (WInvoke { ctx; site });
      process_watch t (WInvoke { ctx; site }) (pts t rp)
    | None -> ())
  | Return _ | If _ | While _ | Print _ | Nop | ConstInt _ | ConstBool _
  | ConstNull _ | Binop _ | Unop _ | ALen _ | InstanceOf _ ->
    ()

and process_watch t (w : watch) (delta : Bits.t) =
  if not (Bits.is_empty delta) then
    match w with
    | WLoad { ctx; lhs; fld } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_field t ~obj:o ~fld) ~dst:(ptr_var t ~ctx lhs))
        delta
    | WStore { ctx; fld; rhs } ->
      Bits.iter
        (fun o ->
          if obj_class t o <> None then
            add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_field t ~obj:o ~fld))
        delta
    | WALoad { ctx; lhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_arr t ~obj:o) ~dst:(ptr_var t ~ctx lhs)
          | _ -> ())
        delta
    | WAStore { ctx; rhs } ->
      Bits.iter
        (fun o ->
          match obj_typ t o with
          | Tarray _ -> add_edge t ~src:(ptr_var t ~ctx rhs) ~dst:(ptr_arr t ~obj:o)
          | _ -> ())
        delta
    | WInvoke { ctx; site } ->
      let cs = Ir.call t.prog site in
      Bits.iter
        (fun o ->
          let callee =
            match cs.cs_kind with
            | Special -> Some cs.cs_target
            | Static -> None (* unreachable: statics have no receiver watch *)
            | Virtual -> (
              match obj_class t o with
              | Some cls ->
                Ir.dispatch t.prog cls (Ir.metho t.prog cs.cs_target).m_name
              | None -> None)
          in
          match callee with
          | Some callee
            when Array.length (Ir.metho t.prog callee).m_params
                 = Array.length cs.cs_args ->
            let cctx =
              t.sel.sel_callee_ctx (env_of t) ~caller_ctx:ctx ~site
                ~recv:(Some o) ~callee
            in
            add_call_edge t ~caller_ctx:ctx ~site ~callee_ctx:cctx ~callee
              ~recv_obj:(Some o)
          | _ -> ())
        delta

and add_call_edge t ~caller_ctx ~site ~callee_ctx ~callee ~recv_obj =
  let key = (caller_ctx, site, callee_ctx, callee) in
  let first_full = not (Hashtbl.mem t.call_edges key) in
  if first_full then begin
    Hashtbl.add t.call_edges key ();
    t.stats.st_call_edges <- t.stats.st_call_edges + 1;
    if not (Hashtbl.mem t.call_edges_proj (site, callee)) then begin
      Hashtbl.add t.call_edges_proj (site, callee) ();
      t.plugin.pl_on_call_edge site callee
    end;
    add_reachable t ~ctx:callee_ctx ~mid:callee;
    let cs = Ir.call t.prog site in
    let m = Ir.metho t.prog callee in
    (* arguments *)
    Array.iteri
      (fun i arg ->
        if Ir.is_ref_type (Ir.var t.prog arg).v_ty then
          add_edge t
            ~src:(ptr_var t ~ctx:caller_ctx arg)
            ~dst:(ptr_var t ~ctx:callee_ctx m.m_params.(i)))
      cs.cs_args;
    (* return edge, unless cut *)
    (match (cs.cs_lhs, m.m_ret_var) with
    | Some lhs, Some rv when Ir.is_ref_type (Ir.var t.prog rv).v_ty ->
      if not (t.plugin.pl_is_cut_return callee) then
        add_edge ~kind:(KReturn callee) t
          ~src:(ptr_var t ~ctx:callee_ctx rv)
          ~dst:(ptr_var t ~ctx:caller_ctx lhs)
    | _ -> ())
  end;
  (* the triggering receiver flows to `this` even on a repeat edge *)
  match (recv_obj, (Ir.metho t.prog callee).m_this) with
  | Some o, Some this -> seed1 t (ptr_var t ~ctx:callee_ctx this) o
  | _ -> ()

(* ------------------------------------------------------------ main loop *)

let run (t : t) : unit =
  let t0 = Timer.now () in
  let entry_ctx = Interner.intern t.ctxs [] in
  let iter = ref 0 in
  (try
     Timer.check t.budget;
     add_reachable t ~ctx:entry_ctx ~mid:t.prog.main;
     while not (Queue.is_empty t.wl) do
       incr iter;
       if !iter land 255 = 0 then Timer.check t.budget;
       let p, objs = Queue.pop t.wl in
       let cur = pts t p in
       match Bits.union_into ~into:cur objs with
       | None -> ()
       | Some delta ->
         t.stats.st_prop <- t.stats.st_prop + Bits.cardinal delta;
         (* flow along PFG edges *)
         List.iter
           (fun e -> wl_push t e.e_dst (filter_delta t e.e_filter delta))
           (succs t p);
         (* statement watches *)
         List.iter (fun w -> process_watch t w delta) (Vec.get t.watches p);
         t.plugin.pl_on_new_pts p delta
     done
   with Timer.Out_of_budget ->
     t.stats.st_time <- Timer.now () -. t0;
     Log.info (fun m ->
         m "%s+%s: out of budget after %.1fs (%d ctx-methods, %d edges)"
           t.sel.sel_name t.plugin.pl_name t.stats.st_time t.stats.st_reach_ctx
           t.stats.st_edges);
     raise Timeout);
  t.stats.st_time <- Timer.now () -. t0;
  Log.info (fun m ->
      m "%s+%s: done in %.3fs (%d methods, %d ptrs, %d pfg edges, %d props)"
        t.sel.sel_name t.plugin.pl_name t.stats.st_time
        (Bits.cardinal t.reached_methods)
        t.stats.st_ptrs t.stats.st_edges t.stats.st_prop)

(* --------------------------------------------------------------- results *)

(** Context-projected analysis results, shared with the Datalog engine so the
    precision clients are engine-agnostic. *)
type result = {
  r_name : string;
  r_time : float;
  r_reach : Bits.t;                               (** reachable methods *)
  r_edges : (Ir.call_id * Ir.method_id) list;     (** projected call edges *)
  r_pt : Ir.var_id -> Bits.t;                     (** var -> alloc sites *)
  r_stats : string;                               (** one-line engine stats *)
}

let result (t : t) : result =
  (* project pointer facts onto variables, merging contexts and abstracting
     objects to their allocation sites *)
  let var_pt : (Ir.var_id, Bits.t) Hashtbl.t = Hashtbl.create 1024 in
  Interner.iteri
    (fun p desc ->
      match desc with
      | PVar (_, v) ->
        let tgt =
          match Hashtbl.find_opt var_pt v with
          | Some b -> b
          | None ->
            let b = Bits.create () in
            Hashtbl.add var_pt v b;
            b
        in
        Bits.iter (fun o -> ignore (Bits.add tgt (obj_alloc t o))) (pts t p)
      | _ -> ())
    t.ptrs;
  let empty = Bits.create () in
  {
    r_name =
      (if t.plugin.pl_name = "none" then t.sel.sel_name
       else t.sel.sel_name ^ "+" ^ t.plugin.pl_name);
    r_time = t.stats.st_time;
    r_reach = Bits.copy t.reached_methods;
    r_edges = Hashtbl.fold (fun k () acc -> k :: acc) t.call_edges_proj [];
    r_pt =
      (fun v -> match Hashtbl.find_opt var_pt v with Some b -> b | None -> empty);
    r_stats =
      Printf.sprintf
        "ptrs=%d pfg-edges=%d props=%d cs-call-edges=%d ctx-methods=%d"
        t.stats.st_ptrs t.stats.st_edges t.stats.st_prop t.stats.st_call_edges
        t.stats.st_reach_ctx;
  }

(** Run an analysis end to end. Raises {!Timeout} if the budget expires. *)
let analyze ?budget ?sel ?plugin_of (prog : Ir.program) : t =
  let t = create ?budget ?sel prog in
  (match plugin_of with Some f -> set_plugin t (f t) | None -> ());
  run t;
  t

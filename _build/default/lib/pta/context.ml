(** Context abstractions for the context-sensitive baselines.

    A context is an interned tuple of ints whose meaning depends on the
    selector: abstract object ids for object sensitivity, class ids for type
    sensitivity, call-site ids for call-site sensitivity. Tuples are stored
    most-recent-first, so k-limiting is [take k]. Selecting the empty tuple
    everywhere yields context insensitivity — the solver is the same for all
    analyses (DESIGN.md §3). *)

open Csc_common
module Ir = Csc_ir.Ir

(** The solver-side environment a selector can query. *)
type env = {
  prog : Ir.program;
  ctx_elems : int -> int list;   (** interned context id -> elements *)
  intern_ctx : int list -> int;
  obj_alloc : int -> Ir.alloc_id;
  obj_hctx : int -> int;         (** object id -> its heap context id *)
}

type t = {
  sel_name : string;
  sel_callee_ctx :
    env ->
    caller_ctx:int ->
    site:Ir.call_id ->
    recv:int option ->
    callee:Ir.method_id ->
    int;
  sel_heap_ctx : env -> mctx:int -> site:Ir.alloc_id -> int;
}

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let empty_ctx (env : env) = env.intern_ctx []

(** Context insensitivity: the empty context everywhere. *)
let ci : t =
  {
    sel_name = "ci";
    sel_callee_ctx = (fun env ~caller_ctx:_ ~site:_ ~recv:_ ~callee:_ -> empty_ctx env);
    sel_heap_ctx = (fun env ~mctx:_ ~site:_ -> empty_ctx env);
  }

(* k-object sensitivity: context elements are allocation sites [Milanova
   et al. 2005; Smaragdakis et al. 2011]. A callee's context is its receiver
   object's allocation site consed onto that object's heap context; heap
   contexts are the allocating method's context truncated to [hk]. *)
let kobj ~k ~hk : t =
  {
    sel_name = Printf.sprintf "%dobj" k;
    sel_callee_ctx =
      (fun env ~caller_ctx ~site:_ ~recv ~callee:_ ->
        match recv with
        | None -> env.intern_ctx (take k (env.ctx_elems caller_ctx))
          (* static call: inherit the caller's context *)
        | Some o ->
          env.intern_ctx
            (take k (env.obj_alloc o :: env.ctx_elems (env.obj_hctx o))));
    sel_heap_ctx =
      (fun env ~mctx ~site:_ -> env.intern_ctx (take hk (env.ctx_elems mctx)));
  }

(* k-type sensitivity: as object sensitivity, but each receiver object is
   abstracted to the class that (lexically) contains its allocation site
   [Smaragdakis et al. 2011]. *)
let ktype ~k ~hk : t =
  let type_of_obj env o =
    let a = Ir.alloc env.prog (env.obj_alloc o) in
    (Ir.metho env.prog a.a_method).m_class
  in
  {
    sel_name = Printf.sprintf "%dtype" k;
    sel_callee_ctx =
      (fun env ~caller_ctx ~site:_ ~recv ~callee:_ ->
        match recv with
        | None -> env.intern_ctx (take k (env.ctx_elems caller_ctx))
        | Some o ->
          env.intern_ctx
            (take k (type_of_obj env o :: env.ctx_elems (env.obj_hctx o))));
    sel_heap_ctx =
      (fun env ~mctx ~site:_ -> env.intern_ctx (take hk (env.ctx_elems mctx)));
  }

(* k-call-site sensitivity (k-CFA). *)
let kcall ~k ~hk : t =
  {
    sel_name = Printf.sprintf "%dcall" k;
    sel_callee_ctx =
      (fun env ~caller_ctx ~site ~recv:_ ~callee:_ ->
        env.intern_ctx (take k (site :: env.ctx_elems caller_ctx)));
    sel_heap_ctx =
      (fun env ~mctx ~site:_ -> env.intern_ctx (take hk (env.ctx_elems mctx)));
  }

(** Selective context sensitivity: apply [base] only to methods in
    [selected]; everything else is analyzed context-insensitively. Heap
    contexts likewise apply only to allocations in selected methods. This is
    the main-analysis half of Zipper^e. *)
let selective ~(selected : Bits.t) ~(base : t) : t =
  {
    sel_name = base.sel_name ^ "-sel";
    sel_callee_ctx =
      (fun env ~caller_ctx ~site ~recv ~callee ->
        if Bits.mem selected callee then
          base.sel_callee_ctx env ~caller_ctx ~site ~recv ~callee
        else empty_ctx env);
    sel_heap_ctx =
      (fun env ~mctx ~site ->
        let m = (Ir.alloc env.prog site).a_method in
        if Bits.mem selected m then base.sel_heap_ctx env ~mctx ~site
        else empty_ctx env);
  }

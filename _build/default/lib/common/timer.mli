(** Wall-clock timing and analysis budgets.

    Budgets reproduce the paper's ">2h" timeout cells: long-running analyses
    call {!check} periodically and abort with {!Out_of_budget} past the
    deadline. *)

val now : unit -> float

(** [time f] runs [f ()]; returns its result and the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

type budget

(** Never expires. *)
val no_budget : budget

(** Expires [s] seconds from now, or as soon as the OCaml major heap exceeds
    [max_gb] (default 4.0) gigabytes — analyses that exhaust memory count as
    unscalable, like the paper's ">2h" entries. *)
val budget_of_seconds : ?max_gb:float -> float -> budget

exception Out_of_budget

(** Raises {!Out_of_budget} iff the deadline has passed. *)
val check : budget -> unit

(** Generic hash-consing of values into dense ids, plus reverse lookup.

    Every entity in the system (class names, method signatures, pointers,
    contexts, abstract objects) is interned through one of these so the rest
    of the code can use arrays and bitsets keyed by int. *)

type 'a t = {
  tbl : ('a, int) Hashtbl.t;
  back : 'a Vec.t;
}

let create ?(capacity = 64) dummy =
  { tbl = Hashtbl.create capacity; back = Vec.create ~capacity dummy }

let intern t x =
  match Hashtbl.find_opt t.tbl x with
  | Some i -> i
  | None ->
    let i = Vec.push_idx t.back x in
    Hashtbl.add t.tbl x i;
    i

let find_opt t x = Hashtbl.find_opt t.tbl x
let mem t x = Hashtbl.mem t.tbl x
let get t i = Vec.get t.back i
let count t = Vec.length t.back
let iteri f t = Vec.iteri f t.back

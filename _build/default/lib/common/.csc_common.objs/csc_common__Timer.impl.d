lib/common/timer.ml: Gc Sys Unix

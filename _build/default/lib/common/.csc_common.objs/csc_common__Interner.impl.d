lib/common/interner.ml: Hashtbl Vec

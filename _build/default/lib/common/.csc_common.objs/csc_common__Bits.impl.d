lib/common/bits.ml: Array Fmt List Sys

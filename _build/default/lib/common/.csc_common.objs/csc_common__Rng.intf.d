lib/common/rng.mli:

lib/common/vec.mli:

lib/common/interner.mli:

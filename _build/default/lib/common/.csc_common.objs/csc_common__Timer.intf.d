lib/common/timer.mli:

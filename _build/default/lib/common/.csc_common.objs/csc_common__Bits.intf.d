lib/common/bits.mli: Format

(** Generic hash-consing of values into dense ids with reverse lookup.

    Every entity in the system (names, pointers, contexts, abstract objects)
    is interned so the rest of the code can use arrays and bitsets keyed by
    int. Ids are assigned densely from 0 in first-interning order. *)

type 'a t

(** [create ?capacity dummy] — [dummy] backs the reverse table's growth and
    is never returned for a valid id. *)
val create : ?capacity:int -> 'a -> 'a t

(** Id of [x], interning it if new. *)
val intern : 'a t -> 'a -> int

val find_opt : 'a t -> 'a -> int option
val mem : 'a t -> 'a -> bool

(** Reverse lookup; undefined for ids never returned by [intern]. *)
val get : 'a t -> int -> 'a

val count : 'a t -> int
val iteri : (int -> 'a -> unit) -> 'a t -> unit

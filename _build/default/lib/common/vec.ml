(** Growable arrays ("vectors"), used for dense id-indexed tables. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data * 2) in
    while n > !cap do cap := !cap * 2 done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

(** [push_idx t x] pushes and returns the index of the new element. *)
let push_idx t x =
  push t x;
  t.len - 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

(** [get_or t i] auto-grows with the dummy up to index [i]. *)
let get_or t i =
  if i < t.len then t.data.(i) else t.dummy

let set_grow t i x =
  if i >= t.len then begin
    ensure t (i + 1);
    for j = t.len to i do t.data.(j) <- t.dummy done;
    t.len <- i + 1
  end;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i t.data.(i) done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
let of_list dummy l =
  let t = create dummy in
  List.iter (push t) l;
  t

let clear t = t.len <- 0

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

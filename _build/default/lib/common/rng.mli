(** Deterministic splitmix64 PRNG (Steele et al.).

    The workload generator must be reproducible across runs and platforms,
    so [Stdlib.Random] is avoided. Same seed, same sequence, everywhere. *)

type t

val create : int -> t

(** Next raw 64-bit output. *)
val next : t -> int64

(** Uniform in [0, bound); raises on [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** True with probability [p] percent. *)
val chance : t -> int -> bool

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

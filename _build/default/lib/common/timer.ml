(** Wall-clock timing helpers and analysis budgets. *)

let now () = Unix.gettimeofday ()

(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(** Budgets let long analyses abort, reproducing the paper's ">2h" cells.
    Besides the deadline, a major-heap cap guards against analyses that
    exhaust memory before they exhaust time (the paper's machine had 128 GB;
    context-sensitive analyses routinely hit whichever limit comes first). *)
type budget = {
  deadline : float option;
  max_heap_words : int option;
}

let no_budget = { deadline = None; max_heap_words = None }

(** [budget_of_seconds ?max_gb s]: expires [s] seconds from now or when the
    OCaml major heap exceeds [max_gb] (default 4.0) gigabytes. *)
let budget_of_seconds ?(max_gb = 4.0) s =
  {
    deadline = Some (now () +. s);
    max_heap_words =
      Some (int_of_float (max_gb *. 1024. *. 1024. *. 1024. /. float (Sys.word_size / 8)));
  }

exception Out_of_budget

let check b =
  (match b.deadline with
  | Some d when now () > d -> raise Out_of_budget
  | _ -> ());
  match b.max_heap_words with
  | Some cap when (Gc.quick_stat ()).heap_words > cap -> raise Out_of_budget
  | _ -> ()

(** Growable arrays ("vectors") used for dense id-indexed tables. *)

type 'a t

(** [create ?capacity dummy] — [dummy] fills auto-grown slots and backs the
    storage; it is never returned unless stored or grown into. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** Push and return the new element's index. *)
val push_idx : 'a t -> 'a -> int

(** Bounds-checked access; raises [Invalid_argument]. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Like [get] but returns the dummy beyond the end. *)
val get_or : 'a t -> int -> 'a

(** [set_grow t i x] extends with the dummy up to [i] if needed. *)
val set_grow : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : 'a -> 'a list -> 'a t
val clear : 'a t -> unit
val pop : 'a t -> 'a option

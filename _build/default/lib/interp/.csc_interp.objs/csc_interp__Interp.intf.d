lib/interp/interp.mli: Csc_common Csc_ir

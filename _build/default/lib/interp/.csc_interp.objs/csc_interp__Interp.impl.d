lib/interp/interp.ml: Array Bits Csc_common Csc_ir Fmt Hashtbl List Option Printf String Vec

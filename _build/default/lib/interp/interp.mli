(** Concrete interpreter for the IR — the substrate of the paper's §5.1
    recall experiment and of the runnable examples.

    Executes a program from its [main], recording output, dynamically
    reachable methods and dynamic call edges. Any sound static analysis must
    over-approximate the latter two. *)

module Ir = Csc_ir.Ir

type value =
  | VNull
  | VInt of int
  | VBool of bool
  | VRef of int  (** heap address *)

type outcome = {
  output : string list;  (** [System.print] lines, in order *)
  dyn_reachable : Csc_common.Bits.t;  (** method ids entered at least once *)
  dyn_edges : (Ir.call_id * Ir.method_id) list;  (** dynamic call edges *)
  steps : int;
}

(** Raised on runtime errors: null dereference, failing cast, index out of
    bounds, division by zero, or an exhausted step budget. *)
exception Runtime_error of string

(** [run ?max_steps prog] executes [prog.main] to completion.
    [max_steps] (default 50M) bounds execution so generator or frontend bugs
    surface as {!Runtime_error} instead of hangs. *)
val run : ?max_steps:int -> Ir.program -> outcome

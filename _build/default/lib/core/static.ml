(** Static (IR-only) ingredients of the three Cut-Shortcut patterns:

    - the [Arg2Var]/def-count test ("parameter never redefined", Figure 8);
    - the per-method field-store patterns seeding [cutStores]/[tempStores];
    - the per-method field-load patterns seeding [tempLoads], plus a
      CHA-based closure that over-approximates which return variables the
      load pattern may cut ([cutReturns] must be decided before any return
      edge is added — over-cutting is sound because every uncovered in-edge
      of a cut return variable is relayed, see [Csc.relay]);
    - the local-flow analysis [Param2Var]/[Param2VarRec] (Figure 11). *)

open Csc_common
module Ir = Csc_ir.Ir

(** Parameter index of a variable: 0 for [this], k for the k-th parameter —
    [None] if the variable is not a parameter or is redefined in the body
    (i.e. the [def_x = ∅] premise of [Arg2Var] fails). *)
let param_index (p : Ir.program) (v : Ir.var_id) : int option =
  if p.def_counts.(v) > 0 then None
  else
    match (Ir.var p v).v_kind with
    | `This -> Some 0
    | `Param k -> Some k
    | _ -> None

let is_unredefined_param p v = param_index p v <> None

(** The variable at argument position [k] of a call site (0 = receiver). *)
let arg_at (_p : Ir.program) (cs : Ir.call_site) (k : int) : Ir.var_id option =
  if k = 0 then cs.cs_recv
  else if k <= Array.length cs.cs_args then Some cs.cs_args.(k - 1)
  else None

(* ------------------------------------------------------- store patterns *)

(** Store patterns of a method: [(k_base, field, k_rhs)] for each statement
    [x.f = y] whose base and rhs are both never-redefined parameters. These
    statements are exactly [cutStores] (Figure 8, [CutStores]). *)
let store_patterns (p : Ir.program) (m : Ir.metho) : (int * Ir.field_id * int) list
    =
  let acc = ref [] in
  Ir.iter_stmts
    (fun s ->
      match s with
      | Store { base; fld; rhs } -> (
        match (param_index p base, param_index p rhs) with
        | Some k1, Some k2 when not (List.mem (k1, fld, k2) !acc) ->
          acc := (k1, fld, k2) :: !acc
        | _ -> ())
      | _ -> ())
    m.m_body;
  !acc

let is_cut_store (p : Ir.program) ~(base : Ir.var_id) ~(rhs : Ir.var_id) : bool =
  is_unredefined_param p base && is_unredefined_param p rhs

(* -------------------------------------------------------- load patterns *)

(** Load patterns of a method: [(k_base, field)] for statements
    [ret = base.f] where [base] is a never-redefined parameter and [ret] is
    the method's (single) return variable ([CutPropLoad], base case). *)
let load_patterns (p : Ir.program) (m : Ir.metho) : (int * Ir.field_id) list =
  match m.m_ret_var with
  | None -> []
  | Some rv ->
    let acc = ref [] in
    Ir.iter_stmts
      (fun s ->
        match s with
        | Load { lhs; base; fld } when lhs = rv -> (
          match param_index p base with
          | Some k when not (List.mem (k, fld) !acc) -> acc := (k, fld) :: !acc
          | _ -> ())
        | _ -> ())
      m.m_body;
    !acc

(** CHA possible callees of a call site. *)
let cha_callees (p : Ir.program) (cs : Ir.call_site) : Ir.method_id list =
  match cs.cs_kind with
  | Static | Special -> [ cs.cs_target ]
  | Virtual ->
    let tgt = Ir.metho p cs.cs_target in
    let name = tgt.m_name in
    let acc = ref [] in
    Bits.iter
      (fun sub ->
        match Ir.dispatch p sub name with
        | Some m when not (List.mem m !acc) -> acc := m :: !acc
        | _ -> ())
      p.subtypes.(tgt.m_class);
    !acc

(** Static pre-computation for the field-load pattern.

    [cutReturns] must be decided before the solver adds any return edge, so
    we over-approximate the dynamic [CutPropLoad] fixpoint with a CHA-based
    closure over (parameter-index, field) patterns: a method gains pattern
    (k', f) if its return variable is the LHS of a call site some CHA callee
    of which has a pattern (k, f) whose base argument at that site is the
    method's never-redefined parameter k'. Over-cutting is sound because
    uncovered in-edges of a cut return variable are relayed ([RelayEdge]).

    We also pre-compute, per (method, field), whether the returnLoadEdges
    classification is unambiguous: an in-edge [o.f -> ret] may be skipped by
    [RelayEdge] only when exactly one mechanism can produce such edges —
    either the single in-method load of [f] ([ls_static_ok]) or a single
    call site whose callees may be cut ([ls_site_ok]); otherwise edges are
    conservatively relayed. *)
type load_info = {
  li_pats : (Ir.method_id, (int * Ir.field_id) list) Hashtbl.t;
      (** closure patterns (includes the static in-method ones) *)
  li_cut : Bits.t;
  li_static_ok : (Ir.method_id * Ir.field_id, unit) Hashtbl.t;
  li_site_ok : (Ir.call_id * Ir.field_id, unit) Hashtbl.t;
}

let load_info (p : Ir.program) : load_info =
  let li_pats = Hashtbl.create 64 in
  Array.iter
    (fun (m : Ir.metho) ->
      match load_patterns p m with
      | [] -> ()
      | pats -> Hashtbl.replace li_pats m.m_id pats)
    p.methods;
  (* ret-lhs call sites per method *)
  let ret_calls : (Ir.method_id, Ir.call_site list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (cs : Ir.call_site) ->
      let m = Ir.metho p cs.cs_method in
      match (cs.cs_lhs, m.m_ret_var) with
      | Some l, Some rv when l = rv ->
        Hashtbl.replace ret_calls cs.cs_method
          (cs :: Option.value ~default:[] (Hashtbl.find_opt ret_calls cs.cs_method))
      | _ -> ())
    p.calls;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun mid css ->
        List.iter
          (fun (cs : Ir.call_site) ->
            List.iter
              (fun callee ->
                List.iter
                  (fun (k, fld) ->
                    match arg_at p cs k with
                    | Some a -> (
                      match param_index p a with
                      | Some k' ->
                        let cur =
                          Option.value ~default:[] (Hashtbl.find_opt li_pats mid)
                        in
                        if not (List.mem (k', fld) cur) then begin
                          Hashtbl.replace li_pats mid ((k', fld) :: cur);
                          changed := true
                        end
                      | None -> ())
                    | None -> ())
                  (Option.value ~default:[] (Hashtbl.find_opt li_pats callee)))
              (cha_callees p cs))
          css)
      ret_calls
  done;
  let li_cut = Bits.create () in
  Hashtbl.iter (fun m _ -> ignore (Bits.add li_cut m)) li_pats;
  (* classification guards: per (method, field), list the mechanisms that
     can generate [·.f -> ret] edges *)
  let li_static_ok = Hashtbl.create 64 in
  let li_site_ok = Hashtbl.create 64 in
  Array.iter
    (fun (m : Ir.metho) ->
      match m.m_ret_var with
      | None -> ()
      | Some rv ->
        (* loads of each field into rv *)
        let load_srcs : (Ir.field_id, Ir.var_id list) Hashtbl.t = Hashtbl.create 4 in
        Ir.iter_stmts
          (fun s ->
            match s with
            | Load { lhs; base; fld } when lhs = rv ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt load_srcs fld) in
              if not (List.mem base cur) then Hashtbl.replace load_srcs fld (base :: cur)
            | _ -> ())
          m.m_body;
        (* call sites with lhs = rv whose CHA callees may be cut: these can
           inject arbitrary-field shortcut/relay edges into rv *)
        let cut_sites =
          List.filter
            (fun cs -> List.exists (Bits.mem li_cut) (cha_callees p cs))
            (Option.value ~default:[] (Hashtbl.find_opt ret_calls m.m_id))
        in
        (* static classification: single load of f, base is a parameter, and
           no cut call site can interfere *)
        Hashtbl.iter
          (fun fld bases ->
            match bases with
            | [ b ] when param_index p b <> None && cut_sites = [] ->
              Hashtbl.replace li_static_ok (m.m_id, fld) ()
            | _ -> ())
          load_srcs;
        (* site classification: a single cut call site and no load of f *)
        (match cut_sites with
        | [ cs ] ->
          (* any field a callee pattern might carry is fine as long as no
             load of that field into rv exists *)
          List.iter
            (fun callee ->
              List.iter
                (fun (_, fld) ->
                  if not (Hashtbl.mem load_srcs fld) then
                    Hashtbl.replace li_site_ok (cs.cs_id, fld) ())
                (Option.value ~default:[] (Hashtbl.find_opt li_pats callee)))
            (cha_callees p cs)
        | _ -> ()))
    p.methods;
  { li_pats; li_cut; li_static_ok; li_site_ok }

(* ------------------------------------------------------------ local flow *)

(** Local-flow analysis of one method ([Param2Var], [Param2VarRec]): for the
    return variable, the set of parameter indices its values may come from,
    or [None] if some value may come from a non-parameter source. *)
let local_flow_sources (p : Ir.program) (m : Ir.metho) : int list option =
  match m.m_ret_var with
  | None -> None
  | Some rv ->
    if not (Ir.is_ref_type (Ir.var p rv).v_ty) then None
    else begin
      (* defs per var, restricted to this method's body *)
      let defs : (Ir.var_id, Ir.stmt list) Hashtbl.t = Hashtbl.create 16 in
      Ir.iter_stmts
        (fun s ->
          match Ir.def_of s with
          | Some v ->
            Hashtbl.replace defs v (s :: Option.value ~default:[] (Hashtbl.find_opt defs v))
          | None -> ())
        m.m_body;
      (* pure(x) + param sources, least fixpoint over copy chains *)
      let pure : (Ir.var_id, int list) Hashtbl.t = Hashtbl.create 16 in
      (match m.m_this with
      | Some this when not (Hashtbl.mem defs this) -> Hashtbl.replace pure this [ 0 ]
      | _ -> ());
      Array.iteri
        (fun i v ->
          if not (Hashtbl.mem defs v) then Hashtbl.replace pure v [ i + 1 ])
        m.m_params;
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun v ds ->
            if not (Hashtbl.mem pure v) then begin
              let ok = ref true in
              let srcs = ref [] in
              List.iter
                (fun (s : Ir.stmt) ->
                  match s with
                  | Copy { rhs; _ } -> (
                    match Hashtbl.find_opt pure rhs with
                    | Some ks ->
                      List.iter
                        (fun k -> if not (List.mem k !srcs) then srcs := k :: !srcs)
                        ks
                    | None -> ok := false)
                  | ConstNull _ -> () (* null adds no object sources *)
                  | _ -> ok := false)
                ds;
              if !ok then begin
                Hashtbl.replace pure v !srcs;
                changed := true
              end
            end)
          defs
      done;
      Hashtbl.find_opt pure rv
    end

(** Container API classification for the container access pattern (§3.3,
    Figure 10): the input relations Entrances, Exits and Transfers, plus the
    host classes used by [ColHost]/[MapHost].

    Per Assumption 1 of the paper, the container pattern is sound only if
    this table is complete for the covered container classes; it covers the
    whole mini-JDK ({!Csc_lang.Jdk}). *)

open Csc_common
module Ir = Csc_ir.Ir

(** Element category: values of a collection, keys of a map, values of a
    map. Shortcuts only connect Sources and Targets of equal category. *)
type category = Coll_val | Map_key | Map_val

val pp_category : Format.formatter -> category -> unit

type t = {
  entrances : (Ir.method_id, (int * category) list) Hashtbl.t;
      (** method -> (parameter index, category); index 0 is [this] *)
  exits : (Ir.method_id, category) Hashtbl.t;
  transfers : Bits.t;
  host_classes : Bits.t;  (** classes whose instances are hosts *)
}

(** By-name classification tables (class, method, ...): exposed for tests
    and documentation. *)
val entrance_names : (string * string * int * category) list

val exit_names : (string * string * category) list
val transfer_names : (string * string) list
val host_class_names : string list

(** Resolve the tables against a program; entries whose class or method is
    absent are skipped (e.g. when compiling without the JDK). *)
val of_program : Ir.program -> t

val is_host_class : t -> Ir.class_id -> bool
val is_transfer : t -> Ir.method_id -> bool
val is_exit : t -> Ir.method_id -> bool
val exit_category : t -> Ir.method_id -> category option
val entrance_roles : t -> Ir.method_id -> (int * category) list

lib/core/spec.mli: Bits Csc_common Csc_ir Format Hashtbl

lib/core/static.mli: Bits Csc_common Csc_ir Hashtbl

lib/core/csc.ml: Array Bits Csc_common Csc_ir Csc_pta Hashtbl Interner List Option Printf Spec Static

lib/core/static.ml: Array Bits Csc_common Csc_ir Hashtbl List Option

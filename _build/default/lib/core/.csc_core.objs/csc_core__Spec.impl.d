lib/core/spec.ml: Array Bits Csc_common Csc_ir Fmt Hashtbl List Option

(** Container API classification for the container access pattern (§3.3,
    Figure 10): the input relations Entrances, Exits and Transfers, plus the
    host classes (Collection / Map) used by [ColHost]/[MapHost].

    The paper specifies these for the JDK by hand ("five hours of one
    author's time"); here they cover the mini-JDK of [Csc_lang.Jdk]. Per
    Assumption 1 of the paper, soundness of the container pattern requires
    this table to be complete w.r.t. the covered container classes. *)

open Csc_common
module Ir = Csc_ir.Ir

(** Element category: values of a collection, keys of a map, values of a
    map. Shortcuts only connect Sources and Targets of the same category. *)
type category = Coll_val | Map_key | Map_val

let pp_category ppf c =
  Fmt.string ppf
    (match c with Coll_val -> "coll" | Map_key -> "key" | Map_val -> "val")

type t = {
  entrances : (Ir.method_id, (int * category) list) Hashtbl.t;
      (** method -> (parameter index (1-based, 0 = this), category) *)
  exits : (Ir.method_id, category) Hashtbl.t;
  transfers : Bits.t;
  host_classes : Bits.t;  (** class ids whose instances are hosts *)
}

(* (class, method, spec) table for the mini-JDK *)
let entrance_names =
  [
    ("Collection", "add", 1, Coll_val);
    ("ArrayList", "add", 1, Coll_val);
    ("ArrayList", "set", 2, Coll_val);
    ("LinkedList", "add", 1, Coll_val);
    ("HashSet", "add", 1, Coll_val);
    ("Stack", "push", 1, Coll_val);
    ("ArrayDeque", "add", 1, Coll_val);
    ("ArrayDeque", "addFirst", 1, Coll_val);
    ("ArrayDeque", "addLast", 1, Coll_val);
    ("Queue", "enqueue", 1, Coll_val);
    ("Queue", "add", 1, Coll_val);
    ("StringBuilder", "append", 1, Coll_val);
    ("Map", "put", 1, Map_key);
    ("Map", "put", 2, Map_val);
    ("HashMap", "put", 1, Map_key);
    ("HashMap", "put", 2, Map_val);
  ]

let exit_names =
  [
    ("Collection", "get", Coll_val);
    ("ArrayList", "get", Coll_val);
    ("ArrayList", "removeLast", Coll_val);
    ("LinkedList", "get", Coll_val);
    ("LinkedList", "removeFirst", Coll_val);
    ("ArrayListIterator", "next", Coll_val);
    ("LinkedListIterator", "next", Coll_val);
    ("Iterator", "next", Coll_val);
    ("Stack", "pop", Coll_val);
    ("Stack", "peek", Coll_val);
    ("ArrayDeque", "removeFirst", Coll_val);
    ("ArrayDeque", "removeLast", Coll_val);
    ("ArrayDeque", "peekFirst", Coll_val);
    ("ArrayDeque", "peekLast", Coll_val);
    ("DequeIterator", "next", Coll_val);
    ("Queue", "dequeue", Coll_val);
    ("Queue", "front", Coll_val);
    ("StringBuilder", "part", Coll_val);
    ("Map", "get", Map_val);
    ("HashMap", "get", Map_val);
    ("KeyIterator", "next", Map_key);
    ("ValueIterator", "next", Map_val);
  ]

let transfer_names =
  [
    ("Collection", "iterator");
    ("ArrayList", "iterator");
    ("LinkedList", "iterator");
    ("HashSet", "iterator");
    ("Stack", "iterator");
    ("ArrayDeque", "iterator");
    ("Queue", "iterator");
    ("Map", "keySet");
    ("Map", "values");
    ("HashMap", "keySet");
    ("HashMap", "values");
    ("KeySetView", "iterator");
    ("ValuesView", "iterator");
  ]

let host_class_names = [ "Collection"; "Map"; "StringBuilder" ]

(** Resolve the by-name tables against a program. Classes or methods missing
    from the program (e.g. when compiled without the JDK) are skipped. *)
let of_program (p : Ir.program) : t =
  let class_by_name = Hashtbl.create 32 in
  Array.iter
    (fun (k : Ir.klass) -> Hashtbl.replace class_by_name k.c_name k.c_id)
    p.classes;
  let declared_method cls name : Ir.method_id option =
    match Hashtbl.find_opt class_by_name cls with
    | None -> None
    | Some cid ->
      List.find_opt
        (fun m -> (Ir.metho p m).m_name = name)
        (Ir.klass p cid).c_methods
  in
  let entrances = Hashtbl.create 16 in
  List.iter
    (fun (cls, name, k, cat) ->
      match declared_method cls name with
      | Some m ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt entrances m) in
        if not (List.mem (k, cat) cur) then
          Hashtbl.replace entrances m ((k, cat) :: cur)
      | None -> ())
    entrance_names;
  let exits = Hashtbl.create 16 in
  List.iter
    (fun (cls, name, cat) ->
      match declared_method cls name with
      | Some m -> Hashtbl.replace exits m cat
      | None -> ())
    exit_names;
  let transfers = Bits.create () in
  List.iter
    (fun (cls, name) ->
      match declared_method cls name with
      | Some m -> ignore (Bits.add transfers m)
      | None -> ())
    transfer_names;
  let host_classes = Bits.create () in
  List.iter
    (fun cls ->
      match Hashtbl.find_opt class_by_name cls with
      | Some cid ->
        (* all subclasses are hosts too *)
        Bits.iter (fun sub -> ignore (Bits.add host_classes sub)) p.subtypes.(cid)
      | None -> ())
    host_class_names;
  { entrances; exits; transfers; host_classes }

let is_host_class t (c : Ir.class_id) = Bits.mem t.host_classes c
let is_transfer t m = Bits.mem t.transfers m
let is_exit t m = Hashtbl.mem t.exits m
let exit_category t m = Hashtbl.find_opt t.exits m
let entrance_roles t m = Option.value ~default:[] (Hashtbl.find_opt t.entrances m)

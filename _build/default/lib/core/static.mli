(** Static (IR-only) ingredients of the Cut-Shortcut patterns: the
    [Arg2Var] parameter test, per-method store/load patterns, the CHA-based
    pre-approximation of the load pattern's [cutReturns], and the local-flow
    analysis ([Param2Var]/[Param2VarRec], Figure 11). See csc.ml for how
    the dynamic machinery consumes these. *)

open Csc_common
module Ir = Csc_ir.Ir

(** Parameter index of a never-redefined parameter (0 = [this]); [None] if
    the variable is not a parameter or is redefined (the [def_x = ∅] premise
    of [Arg2Var]). *)
val param_index : Ir.program -> Ir.var_id -> int option

val is_unredefined_param : Ir.program -> Ir.var_id -> bool

(** Variable at argument position [k] of a call site (0 = receiver). *)
val arg_at : Ir.program -> Ir.call_site -> int -> Ir.var_id option

(** [(k_base, field, k_rhs)] for each store [x.f = y] whose base and rhs are
    never-redefined parameters — exactly the statements in [cutStores]. *)
val store_patterns : Ir.program -> Ir.metho -> (int * Ir.field_id * int) list

(** Is the store [base.f = rhs] in [cutStores]? *)
val is_cut_store : Ir.program -> base:Ir.var_id -> rhs:Ir.var_id -> bool

(** [(k_base, field)] for loads [ret = base.f] of the single return variable
    from a never-redefined parameter ([CutPropLoad]'s base case). *)
val load_patterns : Ir.program -> Ir.metho -> (int * Ir.field_id) list

(** CHA possible callees of a call site. *)
val cha_callees : Ir.program -> Ir.call_site -> Ir.method_id list

type load_info = {
  li_pats : (Ir.method_id, (int * Ir.field_id) list) Hashtbl.t;
      (** closure patterns (static + CHA-propagated) *)
  li_cut : Bits.t;
      (** methods whose return the load pattern may cut; over-approximates
          the dynamic [cutReturns] (sound: uncovered in-edges are relayed) *)
  li_static_ok : (Ir.method_id * Ir.field_id, unit) Hashtbl.t;
      (** (m, f) whose in-method load edges may be classified as
          returnLoadEdges (exempt from relaying) without ambiguity *)
  li_site_ok : (Ir.call_id * Ir.field_id, unit) Hashtbl.t;
      (** likewise for propagated ShortcutLoad edges at a call site *)
}

val load_info : Ir.program -> load_info

(** For the return variable: the set of parameter indices its values may
    come from via local copies (and null constants) only, or [None] if some
    value may come from another source. [Some ks] makes the method a
    local-flow cut with [ShortcutLFlow] sources [ks]. *)
val local_flow_sources : Ir.program -> Ir.metho -> int list option

lib/clients/metrics.ml: Bits Csc_common Csc_ir Csc_pta Fmt Hashtbl List Option

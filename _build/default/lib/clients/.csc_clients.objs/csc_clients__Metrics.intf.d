lib/clients/metrics.mli: Csc_common Csc_ir Csc_pta Format

(** Unit + property tests for the union-find backing the solver's online
    cycle collapsing. The property tests check against a naive partition
    model (list of classes). *)

open Csc_common

let test_singletons () =
  let u = Uf.create () in
  Alcotest.(check int) "find fresh" 42 (Uf.find u 42);
  Alcotest.(check bool) "fresh is rep" true (Uf.is_rep u 42);
  Alcotest.(check int) "nothing merged" 0 (Uf.merged_count u);
  Alcotest.(check (list (pair int (list int))))
    "no classes" []
    (Uf.members u ~universe:50)

let test_union_basic () =
  let u = Uf.create () in
  (match Uf.union u 1 2 with
  | None -> Alcotest.fail "expected a merge"
  | Some (rep, absorbed) ->
      Alcotest.(check bool) "rep is one of the two" true
        (rep = 1 || rep = 2);
      Alcotest.(check bool) "absorbed is the other" true
        (absorbed = 1 || absorbed = 2);
      Alcotest.(check bool) "distinct" true (rep <> absorbed));
  Alcotest.(check int) "same class" (Uf.find u 1) (Uf.find u 2);
  Alcotest.(check bool) "redundant union" true (Uf.union u 2 1 = None);
  Alcotest.(check int) "merged_count" 1 (Uf.merged_count u)

let test_members () =
  let u = Uf.create () in
  ignore (Uf.union u 0 1);
  ignore (Uf.union u 1 2);
  ignore (Uf.union u 5 6);
  let classes = Uf.members u ~universe:8 in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  let sorted =
    List.map (fun (_, ms) -> List.sort compare ms) classes
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "class members" [ [ 0; 1; 2 ]; [ 5; 6 ] ]
    sorted;
  List.iter
    (fun (rep, ms) ->
      Alcotest.(check bool) "rep in class" true (List.mem rep ms);
      Alcotest.(check bool) "rep is rep" true (Uf.is_rep u rep))
    classes

let test_growth () =
  let u = Uf.create ~capacity:2 () in
  ignore (Uf.union u 100 3);
  Alcotest.(check int) "beyond capacity" (Uf.find u 100) (Uf.find u 3)

(* --- property: agrees with a naive partition model ------------------- *)

let universe = 40

(* the model: for each id, the smallest member of its class *)
let model_classes (unions : (int * int) list) =
  let cls = Array.init universe (fun i -> i) in
  let merge a b =
    let ca = cls.(a) and cb = cls.(b) in
    if ca <> cb then
      Array.iteri (fun i c -> if c = cb then cls.(i) <- ca) cls
  in
  List.iter (fun (a, b) -> merge a b) unions;
  cls

let gen_unions =
  QCheck2.Gen.(
    list_size (int_bound 60)
      (pair (int_bound (universe - 1)) (int_bound (universe - 1))))

let prop_same_partition =
  QCheck2.Test.make ~name:"uf partition = model partition" ~count:300
    gen_unions (fun unions ->
      let u = Uf.create () in
      List.iter (fun (a, b) -> ignore (Uf.union u a b)) unions;
      let cls = model_classes unions in
      (* same-class iff same model class, for every pair *)
      let ok = ref true in
      for i = 0 to universe - 1 do
        for j = 0 to universe - 1 do
          if (Uf.find u i = Uf.find u j) <> (cls.(i) = cls.(j)) then
            ok := false
        done
      done;
      !ok)

let prop_merged_count =
  QCheck2.Test.make ~name:"merged_count = universe - #classes" ~count:300
    gen_unions (fun unions ->
      let u = Uf.create () in
      List.iter (fun (a, b) -> ignore (Uf.union u a b)) unions;
      let cls = model_classes unions in
      let n_classes =
        Array.to_list cls |> List.sort_uniq compare |> List.length
      in
      Uf.merged_count u = universe - n_classes)

let prop_members_cover =
  QCheck2.Test.make ~name:"members lists every non-singleton exactly once"
    ~count:300 gen_unions (fun unions ->
      let u = Uf.create () in
      List.iter (fun (a, b) -> ignore (Uf.union u a b)) unions;
      let classes = Uf.members u ~universe in
      let listed = List.concat_map snd classes in
      List.length listed = List.length (List.sort_uniq compare listed)
      && List.for_all
           (fun (rep, ms) ->
             List.length ms >= 2
             && List.mem rep ms
             && List.for_all (fun m -> Uf.find u m = Uf.find u rep) ms)
           classes
      && (* every merged-away id appears in some class *)
      List.for_all
        (fun i -> Uf.find u i = i || List.mem i listed)
        (List.init universe (fun i -> i)))

let suite =
  [
    ( "common.uf",
      [
        Alcotest.test_case "singletons" `Quick test_singletons;
        Alcotest.test_case "union basics" `Quick test_union_basic;
        Alcotest.test_case "members" `Quick test_members;
        Alcotest.test_case "growth" `Quick test_growth;
        QCheck_alcotest.to_alcotest prop_same_partition;
        QCheck_alcotest.to_alcotest prop_merged_count;
        QCheck_alcotest.to_alcotest prop_members_cover;
      ] );
  ]

(** Cost-attribution layer coverage: histogram bucket laws, counter
    monotonicity observed from inside a solve, the disabled path's
    zero-allocation guarantee, profile rendering determinism, the provenance
    memory cap, and the enable_provenance/collapse interaction. *)

open Helpers
module Attr = Csc_obs.Attr
module Json = Csc_obs.Json
module Prov = Csc_obs.Provenance
module Snapshot = Csc_obs.Snapshot
module Solver = Csc_pta.Solver
module Run = Csc_driver.Run
module Gen = Csc_workloads.Gen

(* ---------------------------------------------------------- histogram *)

let test_bucket_boundaries () =
  let cases =
    [ (0, 0); (1, 0);            (* bucket 0: delta <= 1 *)
      (2, 1);                    (* bucket i: (2^(i-1), 2^i] *)
      (3, 2); (4, 2);
      (5, 3); (8, 3);
      (9, 4); (16, 4);
      (1024, 10); (1025, 11);
      (1 lsl 22, 22) ]
  in
  List.iter
    (fun (d, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" d) b (Attr.bucket_of d))
    cases;
  (* everything past the last boundary clamps into the final bucket *)
  Alcotest.(check int) "clamped" (Attr.n_buckets - 1)
    (Attr.bucket_of ((1 lsl 22) + 1));
  Alcotest.(check int) "clamped max_int" (Attr.n_buckets - 1)
    (Attr.bucket_of max_int);
  (* labels: every bucket has one, the last is open-ended *)
  for i = 0 to Attr.n_buckets - 1 do
    Alcotest.(check bool) "label non-empty" true
      (String.length (Attr.bucket_label i) > 0)
  done;
  Alcotest.(check bool) "last label open-ended" true
    (String.length (Attr.bucket_label (Attr.n_buckets - 1)) > 0
    && (Attr.bucket_label (Attr.n_buckets - 1)).[0] = '>')

let test_observe_totals () =
  let a = Attr.create () in
  Attr.observe_pop a ~meth:1 ~ptr:10 ~delta:3;
  Attr.observe_pop a ~meth:1 ~ptr:11 ~delta:1;
  Attr.observe_pop a ~meth:2 ~ptr:12 ~delta:64;
  Attr.observe_merge a ~meth:1 ~ptr:10 ~absorbed:4;
  Attr.observe_shortcut a ~meth:2 ~ptr:12;
  Alcotest.(check int) "pops" 3 (Attr.pops a);
  Alcotest.(check int) "props" 68 (Attr.props a);
  Alcotest.(check int) "merges" 4 (Attr.merges a);
  Alcotest.(check int) "shortcuts" 1 (Attr.shortcuts a);
  let p =
    Attr.render a ~engine:"test" ~meth_name:string_of_int
      ~ptr_name:string_of_int
  in
  (* per-row attribution sums back to the totals *)
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 p.Attr.p_methods in
  Alcotest.(check int) "method props sum" 68 (sum (fun e -> e.Attr.e_props));
  Alcotest.(check int) "method pops sum" 3 (sum (fun e -> e.Attr.e_pops));
  (* the histogram saw one delta in each of buckets 0, 2 and 6 *)
  Alcotest.(check int) "hist mass" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 p.Attr.p_hist);
  (* hottest method first: meth 2 propagated 64, meth 1 only 4 *)
  (match p.Attr.p_methods with
  | e :: _ -> Alcotest.(check string) "hottest method" "2" e.Attr.e_name
  | [] -> Alcotest.fail "no method rows")

let test_rule_rows_memoized () =
  let a = Attr.create () in
  let r = Attr.rule a "R" in
  Attr.rule_fire r;
  Attr.rule_tuples ~by:5 r;
  (* a second handle for the same name hits the same row *)
  let r' = Attr.rule a "R" in
  Attr.rule_fire r';
  Attr.rule_time r' 0.25;
  let p =
    Attr.render a ~engine:"test" ~meth_name:string_of_int
      ~ptr_name:string_of_int
  in
  match p.Attr.p_rules with
  | [ re ] ->
    Alcotest.(check string) "name" "R" re.Attr.re_name;
    Alcotest.(check int) "fires merged" 2 re.Attr.re_fires;
    Alcotest.(check int) "tuples" 5 re.Attr.re_tuples;
    Alcotest.(check (float 1e-9)) "time" 0.25 re.Attr.re_time
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 rule row, got %d" (List.length rs))

(* ------------------------------------------------------- monotonicity *)

(* attribution totals only ever move up, observed from inside the run via a
   plugin callback — merges and collapses must never make them regress *)
let prop_attr_monotone =
  QCheck2.Test.make ~name:"attribution totals are monotone during solving"
    ~count:5
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let src = Gen.generate { Gen.small_shape with Gen.seed } in
      let p = compile src in
      let t = Solver.create p in
      Solver.enable_attr t;
      let a =
        match Solver.attr t with
        | Some a -> a
        | None -> QCheck2.Test.fail_report "enable_attr did not install a table"
      in
      let ok = ref true in
      let last = ref (0, 0, 0, 0) in
      let probe =
        {
          Solver.no_plugin with
          Solver.pl_name = "probe";
          pl_on_new_pts =
            (fun _ _ ->
              let cur =
                (Attr.pops a, Attr.props a, Attr.merges a, Attr.shortcuts a)
              in
              let w, x, y, z = !last and w', x', y', z' = cur in
              if w' < w || x' < x || y' < y || z' < z then ok := false;
              last := cur);
        }
      in
      Solver.set_plugin t probe;
      Solver.run t;
      let w, x, y, z = !last in
      !ok && Attr.pops a >= w && Attr.props a >= x && Attr.merges a >= y
      && Attr.shortcuts a >= z
      (* the run did real work and the table saw it *)
      && Attr.pops a > 0 && Attr.props a > 0)

(* ------------------------------------------------------ disabled path *)

(* the [None] guard every instrumentation site sits behind must not allocate:
   that is the whole near-zero-overhead contract of the disabled mode *)
let test_disabled_path_no_alloc () =
  (* a solver without enable_attr holds no table *)
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  Alcotest.(check bool) "attr off by default" true (Solver.attr t = None);
  let attr = ref None in
  let sink = ref 0 in
  (* warm up so the closure and ref are allocated before measuring *)
  (match !attr with None -> incr sink | Some a -> Attr.observe_shortcut a ~meth:0 ~ptr:0);
  let before = Gc.allocated_bytes () in
  for i = 1 to 1_000_000 do
    match !attr with
    | None -> sink := !sink + (i land 1)
    | Some a -> Attr.observe_pop a ~meth:0 ~ptr:0 ~delta:1
  done;
  let after = Gc.allocated_bytes () in
  (* allocated_bytes itself boxes a float; allow a small slop, nothing like
     1M iterations' worth *)
  Alcotest.(check bool) "no allocation on the disabled branch" true
    (after -. before < 4096.);
  Alcotest.(check bool) "loop ran" true (!sink > 0)

(* -------------------------------------------------------- determinism *)

let profile_of_run analysis =
  let p = compile Fixtures.carton in
  match (Run.run ~validate:true ~profile:true p analysis).Run.o_profile with
  | Some pr -> pr
  | None -> Alcotest.fail "profiled run produced no profile"

let test_profile_json_deterministic () =
  let p1 = profile_of_run Run.Imp_csc in
  let p2 = profile_of_run Run.Imp_csc in
  let s1 = Json.to_string ~pretty:true (Attr.profile_json p1) in
  let s2 = Json.to_string ~pretty:true (Attr.profile_json p2) in
  Alcotest.(check string) "identical across runs" s1 s2;
  (* the document parses back and carries the stable top-level keys *)
  (match Json.parse s1 with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check (option string)) "engine" (Some "imperative")
      (Option.bind (Json.member "engine" j) Json.get_string);
    List.iter
      (fun k ->
        if Json.member k j = None then Alcotest.fail ("missing key " ^ k))
      [ "totals"; "methods"; "pointers"; "rules"; "delta_hist" ]);
  (* rendered tables are sorted hottest-first *)
  let rec descending = function
    | (a : Attr.entry) :: (b : Attr.entry) :: rest ->
      a.e_props >= b.e_props && descending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "methods hottest-first" true (descending p1.p_methods);
  Alcotest.(check bool) "pointers hottest-first" true (descending p1.p_pointers);
  (* text rendering is stable too, and mentions every section *)
  let t1 = Attr.profile_text p1 and t2 = Attr.profile_text p2 in
  Alcotest.(check string) "text identical" t1 t2;
  List.iter
    (fun section ->
      Alcotest.(check bool) section true
        (Astring.String.is_infix ~affix:section t1))
    [ "hot methods"; "hot pointers"; "rules"; "delta size histogram" ]

let test_profile_top_trims () =
  let pr = profile_of_run Run.Imp_ci in
  Alcotest.(check bool) "several method rows" true
    (List.length pr.Attr.p_methods > 1);
  let p = compile Fixtures.carton in
  let o = Run.run ~validate:true ~profile:true ~profile_top:1 p Run.Imp_ci in
  match o.Run.o_profile with
  | Some pr1 ->
    Alcotest.(check int) "top=1 keeps one method row" 1
      (List.length pr1.Attr.p_methods);
    Alcotest.(check int) "top=1 keeps one pointer row" 1
      (List.length pr1.Attr.p_pointers)
  | None -> Alcotest.fail "no profile"

(* the Datalog engine fills the rule table (per-rule and per-stratum rows) *)
let test_datalog_rule_attr () =
  let pr = profile_of_run Run.Doop_ci in
  Alcotest.(check string) "engine" "datalog" pr.Attr.p_engine;
  Alcotest.(check bool) "rule rows present" true (pr.Attr.p_rules <> []);
  Alcotest.(check bool) "stratum rows present" true
    (List.exists
       (fun (re : Attr.rule_entry) ->
         Astring.String.is_prefix ~affix:"stratum:" re.Attr.re_name)
       pr.Attr.p_rules);
  Alcotest.(check bool) "some tuples attributed" true
    (List.exists (fun (re : Attr.rule_entry) -> re.Attr.re_tuples > 0)
       pr.Attr.p_rules)

(* the imperative CSC plugin attributes shortcut firings per pattern *)
let test_csc_pattern_attr () =
  let pr = profile_of_run Run.Imp_csc in
  Alcotest.(check bool) "csc:* rule rows present" true
    (List.exists
       (fun (re : Attr.rule_entry) ->
         Astring.String.is_prefix ~affix:"csc:" re.Attr.re_name
         && re.Attr.re_fires > 0)
       pr.Attr.p_rules)

(* --------------------------------------------------- provenance bound *)

let test_provenance_cap () =
  let pr = Prov.create ~max_records:3 () in
  for i = 0 to 9 do
    Prov.record_seed pr ~ptr:i ~obj:i ~label:"alloc"
  done;
  Alcotest.(check int) "size bounded" 3 (Prov.size pr);
  Alcotest.(check int) "drops counted" 7 (Prov.dropped pr);
  (* first-write-wins is unaffected below the bound *)
  Prov.record_flow pr ~ptr:0 ~obj:0 ~src:1 ~via:"flow";
  (match Prov.reason pr ~ptr:0 ~obj:0 with
  | Some (Prov.Seed _) -> ()
  | _ -> Alcotest.fail "retained record overwritten");
  (* duplicate records of a retained fact are ignores, not drops *)
  Alcotest.(check int) "dup is not a drop" 7 (Prov.dropped pr)

let test_provenance_cap_in_solver () =
  let p = compile Fixtures.carton in
  let t = Solver.create p in
  ignore (Solver.enable_provenance ~max_records:5 t : bool);
  Solver.run t;
  let pr =
    match Solver.provenance t with
    | Some pr -> pr
    | None -> Alcotest.fail "provenance not enabled"
  in
  Alcotest.(check bool) "size respects the cap" true (Prov.size pr <= 5);
  Alcotest.(check bool) "drops observed" true (Prov.dropped pr > 0);
  (* the dropped count surfaces in the snapshot next to prov_records *)
  let s = Solver.snapshot t in
  Alcotest.(check (option int)) "prov_records counter" (Some (Prov.size pr))
    (Snapshot.counter_value s "prov_records");
  match Snapshot.counter_value s "prov_dropped" with
  | Some n when n > 0 -> ()
  | v ->
    Alcotest.fail
      (Printf.sprintf "prov_dropped missing or zero (%s)"
         (match v with None -> "absent" | Some n -> string_of_int n))

(* ------------------------------------------- provenance vs collapsing *)

let test_enable_provenance_reports_collapse () =
  let p = compile Fixtures.carton in
  (* collapsing was on: enabling provenance turns it off and says so *)
  let t = Solver.create p in
  Alcotest.(check bool) "disables collapsing" true
    (Solver.enable_provenance t);
  (* a second call changes nothing *)
  Alcotest.(check bool) "idempotent" false (Solver.enable_provenance t);
  (* collapsing already off: nothing to disable *)
  let t' = Solver.create ~collapse:false p in
  Alcotest.(check bool) "no-op when collapse already off" false
    (Solver.enable_provenance t')

let suite =
  [
    ( "attr",
      [
        Alcotest.test_case "histogram bucket boundaries" `Quick
          test_bucket_boundaries;
        Alcotest.test_case "observe totals and rows" `Quick test_observe_totals;
        Alcotest.test_case "rule rows memoized by name" `Quick
          test_rule_rows_memoized;
        QCheck_alcotest.to_alcotest ~long:true prop_attr_monotone;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_no_alloc;
        Alcotest.test_case "profile JSON deterministic" `Quick
          test_profile_json_deterministic;
        Alcotest.test_case "profile_top trims tables" `Quick
          test_profile_top_trims;
        Alcotest.test_case "datalog rule attribution" `Quick
          test_datalog_rule_attr;
        Alcotest.test_case "csc pattern attribution" `Quick
          test_csc_pattern_attr;
      ] );
    ( "attr-provenance",
      [
        Alcotest.test_case "recorder respects max_records" `Quick
          test_provenance_cap;
        Alcotest.test_case "cap surfaces in solver snapshot" `Quick
          test_provenance_cap_in_solver;
        Alcotest.test_case "enable_provenance reports collapse change" `Quick
          test_enable_provenance_reports_collapse;
      ] );
  ]

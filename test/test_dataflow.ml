(** Dataflow framework tests: liveness and reaching-definition fixpoints on
    compiled methods — branch joins, loop-carried facts, and entry facts
    (used-before-defined detection). *)

module Ir = Csc_ir.Ir
module Bits = Csc_common.Bits
module Cfg = Csc_checks.Cfg
module Liveness = Csc_checks.Liveness
module Reaching = Csc_checks.Reaching

let cfg_of (p : Ir.program) mname =
  Cfg.of_method p (Helpers.find_method p mname).Ir.m_id

(* ------------------------------------------------------------ liveness *)

let test_param_live_at_entry () =
  let p =
    Helpers.compile
      {|
class Main {
  static int id(int n) { return n; }
  static void main() { System.print(Main.id(3)); }
}
|}
  in
  let cfg = cfg_of p "Main.id" in
  let live = Liveness.live_at_entry (Liveness.compute cfg) cfg in
  let n = Helpers.var p "Main.id" "n" in
  Alcotest.(check bool) "param live at entry" true (Bits.mem live n)

let test_overwritten_def_not_live () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    int a = 1;
    a = 2;
    System.print(a);
  }
}
|}
  in
  let cfg = cfg_of p "Main.main" in
  let t = Liveness.compute cfg in
  let a = Helpers.var p "Main.main" "a" in
  (* after [a = 1] (the first def of a), a is dead: it is overwritten *)
  let first_seen = ref false in
  Liveness.iter t cfg (fun _path s ~live_before:_ ~live_after ->
      match s with
      | Ir.ConstInt { lhs; value = 1 } when lhs = a && not !first_seen ->
        first_seen := true;
        Alcotest.(check bool) "dead after first def" false
          (Bits.mem live_after a)
      | Ir.ConstInt { lhs; value = 2 } when lhs = a ->
        Alcotest.(check bool) "live after second def" true
          (Bits.mem live_after a)
      | _ -> ());
  Alcotest.(check bool) "saw the first def" true !first_seen

let test_loop_carried_liveness () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    int i = 0;
    int n = 10;
    while (i < n) { i = i + 1; }
    System.print(i);
  }
}
|}
  in
  let cfg = cfg_of p "Main.main" in
  let t = Liveness.compute cfg in
  let i = Helpers.var p "Main.main" "i" in
  let n = Helpers.var p "Main.main" "n" in
  (* just before the While test both i and n must be live: the loop re-tests
     the condition after every iteration (loop-carried fact) *)
  Liveness.iter t cfg (fun _path s ~live_before ~live_after:_ ->
      match s with
      | Ir.While _ ->
        Alcotest.(check bool) "i live at test" true (Bits.mem live_before i);
        Alcotest.(check bool) "n live at test" true (Bits.mem live_before n)
      | _ -> ())

(* ------------------------------------------------- reaching definitions *)

(* count the definitions of [v] reaching its use in the statement whose
   uses contain [v], maximized over all such statements *)
let max_reaching_defs (p : Ir.program) mname vname =
  let cfg = cfg_of p mname in
  let t = Reaching.compute cfg in
  let v = Helpers.var p mname vname in
  let best = ref 0 in
  Reaching.iter t cfg (fun _path s ~reaching ->
      if List.mem v (Ir.uses_of s) then
        best := max !best (List.length (Reaching.defs_of_var t reaching v)));
  !best

let test_branch_defs_merge () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    boolean b = true;
    int x = 1;
    if (b) { x = 2; }
    System.print(x);
  }
}
|}
  in
  (* both [x = 1] (fall-through) and [x = 2] (then-branch) reach the use *)
  Alcotest.(check int) "two defs reach the join use" 2
    (max_reaching_defs p "Main.main" "x")

let test_straight_defs_kill () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    int x = 1;
    x = 2;
    System.print(x);
  }
}
|}
  in
  (* the second def kills the first: exactly one reaches the use *)
  Alcotest.(check int) "overwrite kills" 1
    (max_reaching_defs p "Main.main" "x")

let test_loop_defs_reach_header () =
  let p =
    Helpers.compile
      {|
class Main {
  static void main() {
    int i = 0;
    while (i < 3) { i = i + 1; }
    System.print(i);
  }
}
|}
  in
  (* at the loop test, both the init and the loop-body increment reach *)
  let cfg = cfg_of p "Main.main" in
  let t = Reaching.compute cfg in
  let i = Helpers.var p "Main.main" "i" in
  let at_test = ref 0 in
  Reaching.iter t cfg (fun _path s ~reaching ->
      match s with
      | Ir.While _ -> at_test := List.length (Reaching.defs_of_var t reaching i)
      | _ -> ());
  Alcotest.(check int) "init + increment reach the test" 2 !at_test

let suite =
  [
    ( "dataflow",
      [
        Alcotest.test_case "param live at entry" `Quick
          test_param_live_at_entry;
        Alcotest.test_case "overwritten def not live" `Quick
          test_overwritten_def_not_live;
        Alcotest.test_case "loop-carried liveness" `Quick
          test_loop_carried_liveness;
        Alcotest.test_case "branch defs merge" `Quick test_branch_defs_merge;
        Alcotest.test_case "straight-line kill" `Quick test_straight_defs_kill;
        Alcotest.test_case "loop defs reach header" `Quick
          test_loop_defs_reach_header;
      ] );
  ]

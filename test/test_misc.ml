(** Miscellaneous coverage: exporters, analysis edge cases, interpreter
    corners, and the involved/overlap accounting used by Table 3. *)

open Helpers
module Solver = Csc_pta.Solver
module Export = Csc_driver.Export
module Bits = Csc_common.Bits

let test_dot_export () =
  let p = compile Fixtures.carton in
  let r = Solver.result (Solver.analyze p) in
  let dot = Export.callgraph_dot p r in
  Alcotest.(check bool) "digraph" true
    (Astring.String.is_prefix ~affix:"digraph" dot);
  Alcotest.(check bool) "has main node" true
    (Astring.String.is_infix ~affix:"Main.main" dot);
  Alcotest.(check bool) "has setter" true
    (Astring.String.is_infix ~affix:"Carton.setItem" dot);
  (* jdk hidden by default *)
  Alcotest.(check bool) "no jdk node" false
    (Astring.String.is_infix ~affix:"ArrayList.add" dot);
  let dot_jdk = Export.callgraph_dot ~include_jdk:true p r in
  Alcotest.(check bool) "jdk nodes when asked" true
    (String.length dot_jdk >= String.length dot)

let test_pts_dump () =
  let p = compile Fixtures.carton in
  let r = Solver.result (Solver.analyze p) in
  let buf = Buffer.create 256 in
  let ppf = Fmt.with_buffer buf in
  Export.pts_dump ~method_filter:"Main.main" p r ppf;
  Fmt.flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions result1" true
    (Astring.String.is_infix ~affix:"result1" out);
  Alcotest.(check bool) "filtered to Main.main" false
    (Astring.String.is_infix ~affix:"getItem" out)

let test_null_receiver_no_edges () =
  (* calls on a definitely-null receiver produce no call edge statically *)
  let src =
    {|
class A { void m() { } }
class Dead {
  static void helper() {
    A a = null;
    a.m();
  }
}
class Main { static void main() { Dead.helper(); } }
|}
  in
  let p, r = analyze src in
  Alcotest.(check bool) "A.m unreachable" false (reaches p r "A.m");
  Alcotest.(check bool) "helper reachable" true (reaches p r "Dead.helper")

let test_empty_main () =
  let _p, r = analyze "class Main { static void main() { } }" in
  Alcotest.(check int) "one reachable method" 1 (Bits.cardinal r.r_reach);
  Alcotest.(check int) "no call edges" 0 (List.length r.r_edges)

let test_interp_recursive_tostring_safety () =
  (* printing a cyclic object must not recurse *)
  let src =
    {|
class N { N self; }
class Main {
  static void main() {
    N n = new N();
    n.self = n;
    System.print(n);
  }
}
|}
  in
  let o = Csc_interp.Interp.run (compile src) in
  Alcotest.(check int) "one line" 1 (List.length o.output)

let test_interp_void_method_result () =
  let src =
    {|
class A {
  int count;
  void bump() { this.count = this.count + 1; }
}
class Main {
  static void main() {
    A a = new A();
    a.bump();
    a.bump();
    System.print(a.count);
  }
}
|}
  in
  let o = Csc_interp.Interp.run (compile src) in
  Alcotest.(check (list string)) "void calls" [ "2" ] o.output

let test_fall_off_end_returns_null () =
  let src =
    {|
class A {
  Object maybe(boolean b) {
    if (b) {
      return "yes";
    }
    return null;
  }
}
class Main {
  static void main() {
    A a = new A();
    System.print(a.maybe(false));
    System.print(a.maybe(true));
  }
}
|}
  in
  let o = Csc_interp.Interp.run (compile src) in
  Alcotest.(check (list string)) "null path" [ "null"; "yes" ] o.output

let test_involved_vs_selected_accounting () =
  (* the Table 3 machinery end to end on a fixture *)
  let p = compile Fixtures.containers in
  let csc = Csc_driver.Run.run p Csc_driver.Run.Imp_csc in
  let zip = Csc_driver.Run.run p Csc_driver.Run.Imp_zipper in
  match (csc.o_involved, zip.o_selected) with
  | Some involved, Some selected ->
    Alcotest.(check bool) "some methods involved" true (Bits.cardinal involved > 0);
    Alcotest.(check bool) "some methods selected" true (Bits.cardinal selected > 0);
    let ov = Csc_driver.Run.overlap ~involved ~selected in
    Alcotest.(check bool) "overlap within [0,1]" true (ov >= 0. && ov <= 1.)
  | _ -> Alcotest.fail "missing accounting sets"

let test_solver_stats_string () =
  let p = compile Fixtures.carton in
  let t = Solver.analyze p in
  let r = Solver.result t in
  let module Snapshot = Csc_obs.Snapshot in
  (match Snapshot.counter_value r.r_snapshot "ptrs" with
  | Some n -> Alcotest.(check bool) "ptrs counter positive" true (n > 0)
  | None -> Alcotest.fail "snapshot has no ptrs counter");
  Alcotest.(check bool) "rendered line mentions ptrs" true
    (Astring.String.is_infix ~affix:"ptrs=" (Snapshot.to_line r.r_snapshot))

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "pts dump" `Quick test_pts_dump;
        Alcotest.test_case "null receiver" `Quick test_null_receiver_no_edges;
        Alcotest.test_case "empty main" `Quick test_empty_main;
        Alcotest.test_case "print cyclic object" `Quick
          test_interp_recursive_tostring_safety;
        Alcotest.test_case "void methods" `Quick test_interp_void_method_result;
        Alcotest.test_case "null return path" `Quick test_fall_off_end_returns_null;
        Alcotest.test_case "table3 accounting" `Quick
          test_involved_vs_selected_accounting;
        Alcotest.test_case "stats string" `Quick test_solver_stats_string;
      ] );
  ]

(** Unit + property tests for the bitset and other common substrate pieces. *)

open Csc_common

let test_add_mem () =
  let b = Bits.create () in
  Alcotest.(check bool) "empty" true (Bits.is_empty b);
  Alcotest.(check bool) "add 5" true (Bits.add b 5);
  Alcotest.(check bool) "re-add 5" false (Bits.add b 5);
  Alcotest.(check bool) "mem 5" true (Bits.mem b 5);
  Alcotest.(check bool) "mem 6" false (Bits.mem b 6);
  Alcotest.(check int) "card" 1 (Bits.cardinal b)

let test_growth () =
  let b = Bits.create () in
  ignore (Bits.add b 0);
  ignore (Bits.add b 1000);
  ignore (Bits.add b 100000);
  Alcotest.(check int) "card" 3 (Bits.cardinal b);
  Alcotest.(check (list int)) "elems" [ 0; 1000; 100000 ] (Bits.to_list b)

let test_union_into () =
  let a = Bits.of_list [ 1; 2; 3 ] in
  let b = Bits.of_list [ 3; 4; 5 ] in
  (match Bits.union_into ~into:a b with
  | None -> Alcotest.fail "expected a delta"
  | Some d -> Alcotest.(check (list int)) "delta" [ 4; 5 ] (Bits.to_list d));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ] (Bits.to_list a);
  (* second union is a no-op *)
  match Bits.union_into ~into:a b with
  | None -> ()
  | Some _ -> Alcotest.fail "expected no delta"

let test_inter_nonempty () =
  let a = Bits.of_list [ 1; 64; 128 ] in
  let b = Bits.of_list [ 2; 65; 128 ] in
  Alcotest.(check bool) "overlap" true (Bits.inter_nonempty a b);
  let c = Bits.of_list [ 3; 66 ] in
  Alcotest.(check bool) "no overlap" false (Bits.inter_nonempty a c)

let test_remove () =
  let a = Bits.of_list [ 1; 2 ] in
  Bits.remove a 1;
  Alcotest.(check (list int)) "after remove" [ 2 ] (Bits.to_list a);
  Bits.remove a 77;
  Alcotest.(check int) "card stable" 1 (Bits.cardinal a)

let test_iter_diff () =
  let src = Bits.of_list [ 1; 2; 63; 64; 200 ] in
  let excl = Bits.of_list [ 2; 64; 300 ] in
  let seen = ref [] in
  Bits.iter_diff (fun i -> seen := i :: !seen) src excl;
  Alcotest.(check (list int)) "src \\ excl" [ 1; 63; 200 ] (List.rev !seen);
  (* excl shorter than src in words; and vice versa *)
  let seen = ref [] in
  Bits.iter_diff (fun i -> seen := i :: !seen) (Bits.of_list [ 500 ]) excl;
  Alcotest.(check (list int)) "excl shorter" [ 500 ] (List.rev !seen)

(* property tests *)

let gen_small_list = QCheck2.Gen.(list_size (int_bound 200) (int_bound 500))

let prop_model =
  QCheck2.Test.make ~name:"bits agrees with list-set model" ~count:300
    gen_small_list (fun l ->
      let b = Bits.of_list l in
      let model = List.sort_uniq compare l in
      Bits.to_list b = model
      && Bits.cardinal b = List.length model
      && List.for_all (Bits.mem b) model)

let prop_union =
  QCheck2.Test.make ~name:"union_into = set union, delta = difference"
    ~count:300
    QCheck2.Gen.(pair gen_small_list gen_small_list)
    (fun (l1, l2) ->
      let a = Bits.of_list l1 and b = Bits.of_list l2 in
      let delta = Bits.union_into ~into:a b in
      let s1 = List.sort_uniq compare l1 and s2 = List.sort_uniq compare l2 in
      let union = List.sort_uniq compare (s1 @ s2) in
      let diff = List.filter (fun x -> not (List.mem x s1)) s2 in
      Bits.to_list a = union
      &&
      match delta with
      | None -> diff = []
      | Some d -> Bits.to_list d = diff)

let prop_subset =
  QCheck2.Test.make ~name:"after union_into, src subset of dst" ~count:200
    QCheck2.Gen.(pair gen_small_list gen_small_list)
    (fun (l1, l2) ->
      let a = Bits.of_list l1 and b = Bits.of_list l2 in
      ignore (Bits.union_into ~into:a b);
      Bits.subset b a)

let prop_union_quiet =
  QCheck2.Test.make ~name:"union_quiet = union_into minus the delta"
    ~count:300
    QCheck2.Gen.(pair gen_small_list gen_small_list)
    (fun (l1, l2) ->
      let a = Bits.of_list l1 and b = Bits.of_list l2 in
      Bits.union_quiet ~into:a b;
      let union = List.sort_uniq compare (l1 @ l2) in
      Bits.to_list a = union && Bits.cardinal a = List.length union)

let prop_iter_diff =
  QCheck2.Test.make ~name:"iter_diff visits exactly src \\ excl, in order"
    ~count:300
    QCheck2.Gen.(pair gen_small_list gen_small_list)
    (fun (l1, l2) ->
      let src = Bits.of_list l1 and excl = Bits.of_list l2 in
      let seen = ref [] in
      Bits.iter_diff (fun i -> seen := i :: !seen) src excl;
      let s2 = List.sort_uniq compare l2 in
      let expect =
        List.filter (fun x -> not (List.mem x s2)) (List.sort_uniq compare l1)
      in
      List.rev !seen = expect)

let prop_subset_model =
  QCheck2.Test.make ~name:"subset agrees with list-set model" ~count:300
    QCheck2.Gen.(pair gen_small_list gen_small_list)
    (fun (l1, l2) ->
      let a = Bits.of_list l1 and b = Bits.of_list l2 in
      let s2 = List.sort_uniq compare l2 in
      Bits.subset a b = List.for_all (fun x -> List.mem x s2) l1)

let prop_rng_deterministic =
  QCheck2.Test.make ~name:"rng is deterministic per seed" ~count:50
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let r1 = Rng.create seed and r2 = Rng.create seed in
      List.init 20 (fun _ -> Rng.int r1 1000)
      = List.init 20 (fun _ -> Rng.int r2 1000))

let prop_rng_bounds =
  QCheck2.Test.make ~name:"rng int stays in bounds" ~count:100
    QCheck2.Gen.(pair (int_bound 1000) (int_range 1 500))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      List.init 50 (fun _ -> Rng.int r bound)
      |> List.for_all (fun x -> x >= 0 && x < bound))

let suite =
  [
    ( "common.bits",
      [
        Alcotest.test_case "add/mem/cardinal" `Quick test_add_mem;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "union_into" `Quick test_union_into;
        Alcotest.test_case "inter_nonempty" `Quick test_inter_nonempty;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "iter_diff" `Quick test_iter_diff;
        QCheck_alcotest.to_alcotest prop_model;
        QCheck_alcotest.to_alcotest prop_union;
        QCheck_alcotest.to_alcotest prop_subset;
        QCheck_alcotest.to_alcotest prop_union_quiet;
        QCheck_alcotest.to_alcotest prop_iter_diff;
        QCheck_alcotest.to_alcotest prop_subset_model;
      ] );
    ( "common.rng",
      [
        QCheck_alcotest.to_alcotest prop_rng_deterministic;
        QCheck_alcotest.to_alcotest prop_rng_bounds;
      ] );
  ]

let () =
  Alcotest.run "cutshortcut"
    (Test_bits.suite @ Test_uf.suite @ Test_frontend.suite @ Test_interp.suite @ Test_solver.suite @ Test_differential.suite @ Test_csc.suite @ Test_datalog.suite @ Test_datalog_analysis.suite @ Test_workloads.suite @ Test_driver.suite @ Test_clients.suite @ Test_static.suite @ Test_property.suite @ Test_lang_ext.suite @ Test_jdk_ext.suite @ Test_validate.suite @ Test_robustness.suite @ Test_common_more.suite @ Test_csc_containers.suite @ Test_datalog_more.suite @ Test_context.suite @ Test_misc.suite @ Test_cfg.suite
    @ Test_dataflow.suite @ Test_checks.suite @ Test_obs.suite @ Test_attr.suite
    @ Test_fuzz.suite @ Test_taint.suite @ Test_par.suite @ Test_server.suite @ Test_inc.suite)

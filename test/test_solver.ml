(** Tests for the imperative pointer-analysis engine: context-insensitive
    baseline, context-sensitive selectors, call-graph construction, and
    soundness against the concrete interpreter. *)

open Helpers
module Context = Csc_pta.Context
module Bits = Csc_common.Bits

let sel_2obj = Context.kobj ~k:2 ~hk:1
let sel_2type = Context.ktype ~k:2 ~hk:1
let sel_2call = Context.kcall ~k:2 ~hk:1

(* --- carton (Figure 1): CI merges, 2obj separates ------------------- *)

let test_ci_carton_imprecise () =
  let p, r = analyze Fixtures.carton in
  Alcotest.(check int) "result1 has both items" 2
    (pt_size r (var p "Main.main" "result1"));
  Alcotest.(check int) "result2 has both items" 2
    (pt_size r (var p "Main.main" "result2"))

let test_2obj_carton_precise () =
  let p, r = analyze ~sel:sel_2obj Fixtures.carton in
  Alcotest.(check int) "result1 precise" 1 (pt_size r (var p "Main.main" "result1"));
  Alcotest.(check int) "result2 precise" 1 (pt_size r (var p "Main.main" "result2"));
  Alcotest.(check bool) "distinct" true
    (not
       (Bits.equal
          (r.r_pt (var p "Main.main" "result1"))
          (r.r_pt (var p "Main.main" "result2"))))

let test_2type_carton () =
  (* both Cartons are allocated in the same class, so 2type cannot separate
     them here - it behaves like CI on this example *)
  let p, r = analyze ~sel:sel_2type Fixtures.carton in
  Alcotest.(check int) "result1 merged under 2type" 2
    (pt_size r (var p "Main.main" "result1"))

(* --- nested constructors (Figure 3) --------------------------------- *)

let test_2obj_nested_precise () =
  let p, r = analyze ~sel:sel_2obj Fixtures.nested in
  Alcotest.(check int) "r1 precise" 1 (pt_size r (var p "Main.main" "r1"));
  Alcotest.(check int) "r2 precise" 1 (pt_size r (var p "Main.main" "r2"))

let test_ci_nested_imprecise () =
  let p, r = analyze Fixtures.nested in
  Alcotest.(check int) "r1 merged" 2 (pt_size r (var p "Main.main" "r1"))

(* --- containers (Figure 4) ------------------------------------------ *)

let test_ci_containers_imprecise () =
  let p, r = analyze Fixtures.containers in
  Alcotest.(check int) "x merged" 2 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "iterator result merged" 2
    (pt_size r (var p "Main.main" "r1"))

let test_2obj_containers_precise () =
  let p, r = analyze ~sel:sel_2obj Fixtures.containers in
  Alcotest.(check int) "x precise" 1 (pt_size r (var p "Main.main" "x"));
  Alcotest.(check int) "y precise" 1 (pt_size r (var p "Main.main" "y"));
  Alcotest.(check int) "r1 precise" 1 (pt_size r (var p "Main.main" "r1"));
  Alcotest.(check int) "r2 precise" 1 (pt_size r (var p "Main.main" "r2"))

(* --- local flow (Figure 5) ------------------------------------------- *)

let test_ci_localflow_imprecise () =
  let p, r = analyze Fixtures.localflow in
  Alcotest.(check int) "r1 merged" 4 (pt_size r (var p "C.main" "r1"))

let test_2obj_localflow_still_imprecise () =
  (* static methods get no receiver contexts: 2obj cannot help here *)
  let p, r = analyze ~sel:sel_2obj Fixtures.localflow in
  Alcotest.(check int) "r1 merged even under 2obj" 4
    (pt_size r (var p "C.main" "r1"))

let test_2call_localflow_precise () =
  let p, r = analyze ~sel:sel_2call Fixtures.localflow in
  Alcotest.(check int) "r1 has its two args" 2 (pt_size r (var p "C.main" "r1"));
  Alcotest.(check int) "r2 has its two args" 2 (pt_size r (var p "C.main" "r2"))

(* --- call graph ------------------------------------------------------ *)

let test_callgraph_virtual_dispatch () =
  let p, r = analyze Fixtures.poly in
  Alcotest.(check bool) "Dog.speak reachable" true (reaches p r "Dog.speak");
  Alcotest.(check bool) "Cat.speak reachable" true (reaches p r "Cat.speak");
  Alcotest.(check bool) "Animal.speak NOT reachable" false
    (reaches p r "Animal.speak")

let test_callgraph_poly_site () =
  let p, r = analyze Fixtures.poly in
  (* the `a.speak()` site must have two callees *)
  let speak_edges =
    List.filter
      (fun (_, callee) ->
        let n = Ir.method_name p callee in
        n = "Dog.speak" || n = "Cat.speak")
      r.r_edges
  in
  let sites = List.sort_uniq compare (List.map fst speak_edges) in
  Alcotest.(check int) "one speak() call site" 1 (List.length sites);
  Alcotest.(check int) "two targets" 2 (List.length speak_edges)

let test_unreachable_code_not_analyzed () =
  let src =
    {|
class Dead { void never() { Object x = new Object(); System.print(x); } }
class Main { static void main() { Object o = new Object(); System.print(o); } }
|}
  in
  let p, r = analyze src in
  Alcotest.(check bool) "Dead.never not reachable" false (reaches p r "Dead.never")

(* --- cast filtering --------------------------------------------------- *)

let test_cast_filters () =
  let src =
    {|
class A { }
class B extends A { }
class C extends A { }
class Main {
  static void main() {
    A a = new B();
    if (true) {
      a = new C();
    }
    B b = (B) a;
    System.print(b);
  }
}
|}
  in
  let p, r = analyze src in
  (* the cast must filter the C object out of b *)
  Alcotest.(check int) "b only gets B" 1 (pt_size r (var p "Main.main" "b"))

(* --- static fields ----------------------------------------------------- *)

let test_static_fields () =
  let src =
    {|
class G {
  static Object cache;
}
class Main {
  static void main() {
    G.cache = new Object();
    Object x = G.cache;
    System.print(x);
  }
}
|}
  in
  let p, r = analyze src in
  Alcotest.(check int) "x via static field" 1 (pt_size r (var p "Main.main" "x"))

(* --- arrays ------------------------------------------------------------ *)

let test_array_flow () =
  let src =
    {|
class Main {
  static void main() {
    Object[] a = new Object[2];
    Object o1 = new Object();
    a[0] = o1;
    Object x = a[1];
    System.print(x);
  }
}
|}
  in
  let p, r = analyze src in
  (* indices are smashed: x sees o1 *)
  Alcotest.(check int) "array smashing" 1 (pt_size r (var p "Main.main" "x"))

(* --- soundness against the interpreter -------------------------------- *)

let test_recall_all_fixtures_ci () =
  List.iter
    (fun (_, src) ->
      let p, r = analyze src in
      check_recall p r)
    Fixtures.all

let test_recall_all_fixtures_2obj () =
  List.iter
    (fun (_, src) ->
      let p, r = analyze ~sel:sel_2obj src in
      check_recall p r)
    Fixtures.all

let test_recall_all_fixtures_2call () =
  List.iter
    (fun (_, src) ->
      let p, r = analyze ~sel:sel_2call src in
      check_recall p r)
    Fixtures.all

(* --- precision ordering: cs results must be subsets of ci -------------- *)

let test_cs_refines_ci () =
  List.iter
    (fun (_, src) ->
      let p = compile src in
      let ci = Csc_pta.Solver.(result (analyze p)) in
      let cs = Csc_pta.Solver.(result (analyze ~sel:sel_2obj p)) in
      (* every var's cs points-to set is a subset of its ci set *)
      Array.iter
        (fun (v : Ir.var) ->
          if not (Bits.subset (cs.r_pt v.v_id) (ci.r_pt v.v_id)) then
            Alcotest.fail
              (Printf.sprintf "2obj larger than CI for %s" v.v_name))
        p.vars;
      (* and the cs call graph is a subgraph *)
      List.iter
        (fun e ->
          if not (List.mem e ci.r_edges) then Alcotest.fail "extra cs call edge")
        cs.r_edges)
    Fixtures.all

(* --- timeout ----------------------------------------------------------- *)

let test_budget_timeout () =
  let p = compile Fixtures.containers in
  let budget = Csc_common.Timer.budget_of_seconds (-1.0) in
  match Csc_pta.Solver.analyze ~budget p with
  | _ -> Alcotest.fail "expected timeout"
  | exception Csc_pta.Solver.Timeout -> ()

(* --- solver hot path: coalescing worklist + online cycle collapsing --- *)

module Snapshot = Csc_obs.Snapshot

let counter t n =
  Option.value ~default:0 (Snapshot.counter_value (Solver.snapshot t) n)

(* a = new; b = a; a = b — an unfiltered copy cycle the LCD heuristic must
   detect and collapse, without changing any points-to set *)
let cycle_src =
  {|
class A { }
class Main {
  static void main() {
    A a = new A();
    A b = a;
    a = b;
    System.print(a);
    System.print(b);
  }
}
|}

let test_cycle_collapsing () =
  let p = compile cycle_src in
  let t = Solver.analyze p in
  Alcotest.(check bool) "a cycle was collapsed" true
    (counter t "cycles_collapsed" > 0);
  Alcotest.(check bool) "pointers were merged" true
    (counter t "ptrs_merged" > 0);
  Alcotest.(check bool) "rep -> members mapping exposed" true
    (Solver.collapse_classes t <> []);
  let r = Solver.result t in
  Alcotest.(check int) "a unchanged" 1 (pt_size r (var p "Main.main" "a"));
  Alcotest.(check int) "b unchanged" 1 (pt_size r (var p "Main.main" "b"))

(* three allocations seed the same pointer before it is ever popped: the
   pending-delta table must merge them into one worklist entry *)
let coalesce_src =
  {|
class A { }
class Main {
  static void main() {
    A x = new A();
    x = new A();
    x = new A();
    System.print(x);
  }
}
|}

let test_worklist_coalescing () =
  let p = compile coalesce_src in
  let t = Solver.analyze p in
  Alcotest.(check bool) "pushes were coalesced" true
    (counter t "wl_coalesced" > 0);
  let r = Solver.result t in
  Alcotest.(check int) "x keeps all three sites" 3
    (pt_size r (var p "Main.main" "x"))

(* pushing objects a pointer already has must be a complete no-op: no queue
   entry, no counter movement, no pending-slot allocation *)
let test_redundant_push_skipped () =
  let p = compile coalesce_src in
  let t = Solver.analyze p in
  let xp = ref (-1) in
  Solver.iter_ptrs t (fun ptr desc ->
      match desc with
      | Solver.PVar (_, v) when v = var p "Main.main" "x" -> xp := ptr
      | _ -> ());
  Alcotest.(check bool) "found ptr for x" true (!xp >= 0);
  let before = counter t "wl_pushes" in
  Solver.wl_push t !xp (Solver.pts t !xp);
  Bits.iter (fun o -> Solver.wl_push1 t !xp o) (Solver.pts t !xp);
  Alcotest.(check int) "redundant pushes skipped" before
    (counter t "wl_pushes")

let suite =
  [
    ( "pta.ci",
      [
        Alcotest.test_case "carton imprecise" `Quick test_ci_carton_imprecise;
        Alcotest.test_case "nested imprecise" `Quick test_ci_nested_imprecise;
        Alcotest.test_case "containers imprecise" `Quick test_ci_containers_imprecise;
        Alcotest.test_case "localflow imprecise" `Quick test_ci_localflow_imprecise;
        Alcotest.test_case "virtual dispatch" `Quick test_callgraph_virtual_dispatch;
        Alcotest.test_case "poly call site" `Quick test_callgraph_poly_site;
        Alcotest.test_case "unreachable code skipped" `Quick
          test_unreachable_code_not_analyzed;
        Alcotest.test_case "casts filter" `Quick test_cast_filters;
        Alcotest.test_case "static fields" `Quick test_static_fields;
        Alcotest.test_case "array smashing" `Quick test_array_flow;
        Alcotest.test_case "budget timeout" `Quick test_budget_timeout;
      ] );
    ( "pta.cs",
      [
        Alcotest.test_case "2obj carton precise" `Quick test_2obj_carton_precise;
        Alcotest.test_case "2type carton merged" `Quick test_2type_carton;
        Alcotest.test_case "2obj nested precise" `Quick test_2obj_nested_precise;
        Alcotest.test_case "2obj containers precise" `Quick
          test_2obj_containers_precise;
        Alcotest.test_case "2obj localflow merged" `Quick
          test_2obj_localflow_still_imprecise;
        Alcotest.test_case "2call localflow precise" `Quick
          test_2call_localflow_precise;
      ] );
    ( "pta.soundness",
      [
        Alcotest.test_case "recall: CI" `Quick test_recall_all_fixtures_ci;
        Alcotest.test_case "recall: 2obj" `Quick test_recall_all_fixtures_2obj;
        Alcotest.test_case "recall: 2call" `Quick test_recall_all_fixtures_2call;
        Alcotest.test_case "2obj refines CI" `Quick test_cs_refines_ci;
      ] );
    ( "pta.hotpath",
      [
        Alcotest.test_case "cycle collapsing" `Quick test_cycle_collapsing;
        Alcotest.test_case "worklist coalescing" `Quick
          test_worklist_coalescing;
        Alcotest.test_case "redundant push skipped" `Quick
          test_redundant_push_skipped;
      ] );
  ]

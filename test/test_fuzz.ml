(** Tests for the soundness fuzzer: generator determinism, compileability
    of random programs, seed-corpus replay, a clean mini-campaign, and a
    self-test that an injected unsoundness is caught and minimized. *)

module Gen = Csc_workloads.Gen
module Frontend = Csc_lang.Frontend
module Validate = Csc_ir.Validate
module Soundness = Csc_fuzz.Soundness
module Campaign = Csc_fuzz.Campaign

let compile src =
  let p = Frontend.compile_string ~name:"fuzz-test" src in
  Validate.check_exn p;
  p

(* ------------------------------------------------------------ generator *)

let test_deterministic () =
  let render seed = Gen.Rand.render (Gen.Rand.generate ~seed ~max_size:30) in
  Alcotest.(check string) "same seed, same source" (render 7) (render 7);
  Alcotest.(check bool) "different seeds differ" true (render 7 <> render 8)

let test_generated_programs_compile () =
  (* every generated program must compile, validate, and replay through the
     oracle without a violation — this is the PR-loop slice of the nightly
     campaign *)
  for seed = 100 to 119 do
    let plan = Gen.Rand.generate ~seed ~max_size:25 in
    let p = compile (Gen.Rand.render plan) in
    match Soundness.check ~max_steps:2_000_000 p with
    | [] -> ()
    | vs ->
      Alcotest.failf "seed %d: %a" seed
        (Fmt.list ~sep:Fmt.comma Soundness.pp_violation)
        vs
  done

(* ------------------------------------------------------------- seed corpus *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let seed_files = [ "seed_1"; "seed_2"; "seed_4"; "seed_13"; "seed_15" ]

let test_seed_corpus_replay () =
  List.iter
    (fun name ->
      let src = read_file ("fuzz_seeds/" ^ name ^ ".mjava") in
      let p = compile src in
      match Soundness.check p with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: %a" name
          (Fmt.list ~sep:Fmt.comma Soundness.pp_violation)
          vs)
    seed_files

let test_seed_corpus_features () =
  (* the hand-picked corpus must keep covering the language features it was
     chosen for; regenerating it with a changed generator can silently lose
     coverage otherwise *)
  let all = String.concat "\n" (List.map (fun n -> read_file ("fuzz_seeds/" ^ n ^ ".mjava")) seed_files) in
  let has sub =
    Astring.String.find_sub ~sub all <> None
  in
  Alcotest.(check bool) "guarded cast" true (has "instanceof");
  Alcotest.(check bool) "containers: list" true (has "ArrayList");
  Alcotest.(check bool) "containers: map" true (has "HashMap");
  Alcotest.(check bool) "containers: iterator" true (has "Iterator");
  Alcotest.(check bool) "arrays" true (has "Object[");
  Alcotest.(check bool) "virtual dispatch" true (has ".act()")

(* ------------------------------------------------------------- campaigns *)

let test_clean_campaign () =
  let cfg = { Campaign.default_cfg with n = 30; seed = 7; progress = false } in
  let r = Campaign.run cfg in
  Alcotest.(check int) "all programs checked" 30 r.r_total;
  Alcotest.(check int) "no violations" 0 (List.length r.r_failed);
  Alcotest.(check int) "no generator errors" 0 r.r_gen_errors

let test_injected_unsoundness_caught () =
  (* drop store-pattern shortcut edges for the whole campaign: the oracle
     must notice, and the shrinker must bring a counterexample under the
     30-app-statement bar from the acceptance criteria *)
  let cfg =
    { Campaign.default_cfg with
      n = 40;
      seed = 42;
      inject_unsound = true;
      minimize = true;
      progress = false;
    }
  in
  let r = Campaign.run cfg in
  Alcotest.(check bool) "sabotage flag restored" false
    !Csc_core.Csc.sabotage_drop_shortcuts;
  Alcotest.(check bool) "violations found" true (r.r_failed <> []);
  let minimized =
    List.filter_map (fun c -> c.Campaign.c_min_app_stmts) r.r_failed
  in
  Alcotest.(check bool) "at least one case minimized" true (minimized <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "minimized to %d app statements (< 30)" n)
        true (n < 30))
    minimized

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator deterministic" `Quick test_deterministic;
        Alcotest.test_case "generated programs compile and replay clean" `Slow
          test_generated_programs_compile;
        Alcotest.test_case "seed corpus replays clean" `Slow
          test_seed_corpus_replay;
        Alcotest.test_case "seed corpus covers target features" `Quick
          test_seed_corpus_features;
        Alcotest.test_case "clean mini-campaign" `Slow test_clean_campaign;
        Alcotest.test_case "injected unsoundness caught and minimized" `Slow
          test_injected_unsoundness_caught;
      ] );
  ]
